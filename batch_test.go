package osars

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestSummarizeBatchMatchesSequential(t *testing.T) {
	s := testSummarizer(t)
	var reqs []BatchRequest
	for i := 0; i < 12; i++ {
		item := s.AnnotateItem(fmt.Sprintf("p%d", i), "Phone", testReviews())
		reqs = append(reqs, BatchRequest{
			Item:        item,
			K:           1 + i%3,
			Granularity: Granularity(i % 3),
			Method:      MethodGreedy,
		})
	}
	results := s.SummarizeBatch(reqs, 4)
	if len(results) != len(reqs) {
		t.Fatalf("results = %d, want %d", len(results), len(reqs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		want, err := s.Summarize(reqs[i].Item, reqs[i].K, reqs[i].Granularity, reqs[i].Method)
		if err != nil {
			t.Fatal(err)
		}
		if r.Summary.Cost != want.Cost {
			t.Fatalf("request %d: batch cost %v, sequential %v", i, r.Summary.Cost, want.Cost)
		}
		if len(r.Summary.Indices) != len(want.Indices) {
			t.Fatalf("request %d: selections differ", i)
		}
	}
}

func TestSummarizeBatchPropagatesErrors(t *testing.T) {
	s := testSummarizer(t)
	item := s.AnnotateItem("p", "Phone", testReviews())
	results := s.SummarizeBatch([]BatchRequest{
		{Item: item, K: 2, Granularity: Sentences, Method: MethodGreedy},
		{Item: item, K: -1, Granularity: Sentences, Method: MethodGreedy}, // invalid k
		{Item: item, K: 1, Granularity: Pairs, Method: Method(42)},        // invalid method
	}, 2)
	if results[0].Err != nil || results[0].Summary == nil {
		t.Fatalf("valid request failed: %+v", results[0])
	}
	if results[1].Err == nil || results[2].Err == nil {
		t.Fatal("invalid requests did not error")
	}
}

// TestSummarizeBatchCtxPreCancelled: with an already-cancelled
// context, no work runs and every slot carries ctx.Err().
func TestSummarizeBatchCtxPreCancelled(t *testing.T) {
	s := testSummarizer(t)
	item := s.AnnotateItem("p", "Phone", testReviews())
	reqs := make([]BatchRequest, 8)
	for i := range reqs {
		reqs[i] = BatchRequest{Item: item, K: 2, Granularity: Sentences, Method: MethodGreedy}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := s.SummarizeBatchCtx(ctx, reqs, 3)
	if len(results) != len(reqs) {
		t.Fatalf("results = %d, want %d", len(results), len(reqs))
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) || r.Summary != nil {
			t.Fatalf("slot %d = %+v, want context.Canceled", i, r)
		}
	}
}

// TestSummarizeBatchCtxMidCancel cancels while the batch is running:
// the pool must drain promptly, every slot must be populated, and each
// result is exactly one of {summary, ctx error}.
func TestSummarizeBatchCtxMidCancel(t *testing.T) {
	s := testSummarizer(t)
	// A corpus big enough that a single solve outlasts the deadline,
	// so cancellation reliably lands mid-batch.
	var big []Review
	for i := 0; i < 100; i++ {
		for _, r := range testReviews() {
			r.ID = fmt.Sprintf("%s-%d", r.ID, i)
			big = append(big, r)
		}
	}
	item := s.AnnotateItem("p", "Phone", big)
	reqs := make([]BatchRequest, 64)
	for i := range reqs {
		reqs[i] = BatchRequest{Item: item, K: 3, Granularity: Sentences, Method: MethodGreedy}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	results := s.SummarizeBatchCtx(ctx, reqs, 2)
	if len(results) != len(reqs) {
		t.Fatalf("results = %d, want %d", len(results), len(reqs))
	}
	cancelled := 0
	for i, r := range results {
		switch {
		case r.Err == nil && r.Summary != nil: // completed before the deadline
		case errors.Is(r.Err, context.DeadlineExceeded) && r.Summary == nil:
			cancelled++
		default:
			t.Fatalf("slot %d = %+v: neither success nor ctx error", i, r)
		}
	}
	if cancelled == 0 {
		t.Fatal("no slot was cancelled — deadline did not land mid-batch")
	}
}

// TestSummarizeBatchRawReviews exercises the raw-review batch path:
// requests carrying Reviews instead of a pre-annotated Item are
// annotated by the batch's shared pool and must produce exactly the
// same summaries as annotate-then-batch.
func TestSummarizeBatchRawReviews(t *testing.T) {
	s := testSummarizer(t)
	raws := testReviews()
	var reqs []BatchRequest
	for i := 0; i < 9; i++ {
		reqs = append(reqs, BatchRequest{
			ItemID:      fmt.Sprintf("p%d", i),
			ItemName:    "Phone",
			Reviews:     raws,
			K:           1 + i%3,
			Granularity: Granularity(i % 3),
			Method:      MethodGreedy,
		})
	}
	results := s.SummarizeBatch(reqs, 3)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		item := s.AnnotateItem(reqs[i].ItemID, reqs[i].ItemName, raws)
		want, err := s.Summarize(item, reqs[i].K, reqs[i].Granularity, reqs[i].Method)
		if err != nil {
			t.Fatal(err)
		}
		if r.Summary.Cost != want.Cost {
			t.Fatalf("request %d: raw-review batch cost %v, sequential %v", i, r.Summary.Cost, want.Cost)
		}
	}
}

// TestSummarizeBatchItemWinsOverReviews pins the documented precedence:
// when both Item and Reviews are set, Item is used and Reviews ignored.
func TestSummarizeBatchItemWinsOverReviews(t *testing.T) {
	s := testSummarizer(t)
	item := s.AnnotateItem("p", "Phone", testReviews())
	garbage := []Review{{ID: "g", Text: "zzzz qqqq", Rating: 0}}
	results := s.SummarizeBatch([]BatchRequest{
		{Item: item, Reviews: garbage, K: 2, Granularity: Sentences, Method: MethodGreedy},
	}, 1)
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	want, err := s.Summarize(item, 2, Sentences, MethodGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Summary.Cost != want.Cost {
		t.Fatal("Item did not take precedence over Reviews")
	}
}

// TestSummarizeBatchMoreWorkersThanRequests: the worker count must be
// clamped to len(reqs); results stay correct and complete.
func TestSummarizeBatchMoreWorkersThanRequests(t *testing.T) {
	s := testSummarizer(t)
	item := s.AnnotateItem("p", "Phone", testReviews())
	reqs := []BatchRequest{
		{Item: item, K: 1, Granularity: Pairs, Method: MethodGreedy},
		{ItemID: "raw", ItemName: "Phone", Reviews: testReviews(), K: 2, Granularity: Sentences, Method: MethodGreedy},
	}
	results := s.SummarizeBatch(reqs, 64) // far more workers than requests
	if len(results) != len(reqs) {
		t.Fatalf("results = %d, want %d", len(results), len(reqs))
	}
	for i, r := range results {
		if r.Err != nil || r.Summary == nil {
			t.Fatalf("slot %d = %+v", i, r)
		}
	}
}

func TestSummarizeBatchEmptyAndDefaults(t *testing.T) {
	s := testSummarizer(t)
	if got := s.SummarizeBatch(nil, 0); len(got) != 0 {
		t.Fatalf("empty batch = %v", got)
	}
	item := s.AnnotateItem("p", "Phone", testReviews())
	// workers <= 0 must still work (defaults to GOMAXPROCS).
	results := s.SummarizeBatch([]BatchRequest{
		{Item: item, K: 1, Granularity: Pairs, Method: MethodGreedy},
	}, -3)
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
}
