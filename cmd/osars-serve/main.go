// Command osars-serve runs the summarization HTTP service:
//
//	osars-serve -addr :8080 -domain phone
//	osars-serve -addr :8080 -ontology data/phone-ontology.json
//
// Then:
//
//	curl -s localhost:8080/v1/summarize -d '{
//	  "item_id": "p1", "k": 3,
//	  "reviews": [{"id":"r1","text":"The screen is excellent. The battery is awful."}]
//	}'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"osars"
	"osars/internal/dataset"
	"osars/internal/ontology"
	"osars/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		domain  = flag.String("domain", "phone", "built-in ontology when -ontology is not given: phone|doctor")
		ontPath = flag.String("ontology", "", "path to an ontology JSON file (overrides -domain)")
		eps     = flag.Float64("eps", 0.5, "sentiment threshold ε")
	)
	flag.Parse()

	var ont *ontology.Ontology
	switch {
	case *ontPath != "":
		data, err := os.ReadFile(*ontPath)
		if err != nil {
			log.Fatalf("osars-serve: %v", err)
		}
		ont = new(ontology.Ontology)
		if err := json.Unmarshal(data, ont); err != nil {
			log.Fatalf("osars-serve: parse ontology: %v", err)
		}
	case *domain == "phone":
		ont = dataset.CellPhoneOntology()
	case *domain == "doctor":
		ont = dataset.MedicalOntology(dataset.MedicalOntologyConfig{Seed: 1})
	default:
		log.Fatalf("osars-serve: unknown -domain %q", *domain)
	}

	sum, err := osars.New(osars.Config{Ontology: ont, Epsilon: *eps})
	if err != nil {
		log.Fatalf("osars-serve: %v", err)
	}
	h := server.New(sum)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("osars-serve: listening on %s with %v (ε=%.2f)\n", *addr, ont, *eps)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("osars-serve: %v", err)
	}
}
