// Command osars-serve runs the summarization HTTP service:
//
//	osars-serve -addr :8080 -domain phone
//	osars-serve -addr :8080 -ontology data/phone-ontology.json
//
// Stateless, one-shot (the request carries the reviews):
//
//	curl -s localhost:8080/v1/summarize -d '{
//	  "item_id": "p1", "k": 3,
//	  "reviews": [{"id":"r1","text":"The screen is excellent. The battery is awful."}]
//	}'
//
// Stateful (the server accumulates the corpus; reads hit the
// generation-aware summary cache):
//
//	curl -s -X PUT localhost:8080/v1/items/p1/reviews -d '{
//	  "reviews": [{"id":"r1","text":"The screen is excellent. The battery is awful."}]
//	}'
//	curl -s 'localhost:8080/v1/items/p1/summary?k=3'
//	curl -s localhost:8080/v1/items
//	curl -s -X DELETE localhost:8080/v1/items/p1
//
// The store is tuned with -cache-entries / -cache-bytes and disabled
// entirely with -stateless.
//
// Profiling: -pprof addr serves net/http/pprof on a SEPARATE listener
// (keep it loopback-only; it is never mixed into the service mux):
//
//	osars-serve -addr :8080 -pprof localhost:6060
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"osars"
	"osars/internal/dataset"
	"osars/internal/ontology"
	"osars/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		domain       = flag.String("domain", "phone", "built-in ontology when -ontology is not given: phone|doctor")
		ontPath      = flag.String("ontology", "", "path to an ontology JSON file (overrides -domain)")
		eps          = flag.Float64("eps", 0.5, "sentiment threshold ε")
		stateless    = flag.Bool("stateless", false, "disable the stateful /v1/items API")
		cacheEntries = flag.Int("cache-entries", 1024, "summary cache entry budget (negative disables caching)")
		cacheBytes   = flag.Int64("cache-bytes", 64<<20, "summary cache byte budget (negative: entry-count only)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty disables")
	)
	flag.Parse()

	var ont *ontology.Ontology
	switch {
	case *ontPath != "":
		data, err := os.ReadFile(*ontPath)
		if err != nil {
			log.Fatalf("osars-serve: %v", err)
		}
		ont = new(ontology.Ontology)
		if err := json.Unmarshal(data, ont); err != nil {
			log.Fatalf("osars-serve: parse ontology: %v", err)
		}
	case *domain == "phone":
		ont = dataset.CellPhoneOntology()
	case *domain == "doctor":
		ont = dataset.MedicalOntology(dataset.MedicalOntologyConfig{Seed: 1})
	default:
		log.Fatalf("osars-serve: unknown -domain %q", *domain)
	}

	sum, err := osars.New(osars.Config{Ontology: ont, Epsilon: *eps})
	if err != nil {
		log.Fatalf("osars-serve: %v", err)
	}
	var st *osars.Store
	if !*stateless {
		st = sum.NewStore(osars.StoreOptions{
			MaxCacheEntries: *cacheEntries,
			MaxCacheBytes:   *cacheBytes,
		})
	}
	if *pprofAddr != "" {
		// A dedicated mux on a dedicated listener: the profiling
		// endpoints never share a port (or a handler tree) with the
		// public API, so exposing the service does not expose pprof.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			psrv := &http.Server{
				Addr:              *pprofAddr,
				Handler:           pm,
				ReadHeaderTimeout: 10 * time.Second,
			}
			fmt.Printf("osars-serve: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("osars-serve: pprof listener: %v", err)
			}
		}()
	}
	h := server.NewWithStore(sum, st)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	mode := fmt.Sprintf("stateful, cache %d entries / %d MiB", *cacheEntries, *cacheBytes>>20)
	if *stateless {
		mode = "stateless"
	}
	fmt.Printf("osars-serve: listening on %s with %v (ε=%.2f, %s)\n", *addr, ont, *eps, mode)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("osars-serve: %v", err)
	}
}
