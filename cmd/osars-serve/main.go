// Command osars-serve runs the summarization HTTP service:
//
//	osars-serve -addr :8080 -domain phone
//	osars-serve -addr :8080 -ontology data/phone-ontology.json
//
// Stateless, one-shot (the request carries the reviews):
//
//	curl -s localhost:8080/v1/summarize -d '{
//	  "item_id": "p1", "k": 3,
//	  "reviews": [{"id":"r1","text":"The screen is excellent. The battery is awful."}]
//	}'
//
// Stateful (the server accumulates the corpus; reads hit the
// generation-aware summary cache):
//
//	curl -s -X PUT localhost:8080/v1/items/p1/reviews -d '{
//	  "reviews": [{"id":"r1","text":"The screen is excellent. The battery is awful."}]
//	}'
//	curl -s 'localhost:8080/v1/items/p1/summary?k=3'
//	curl -s localhost:8080/v1/items
//	curl -s -X DELETE localhost:8080/v1/items/p1
//
// The store is tuned with -cache-entries / -cache-bytes and disabled
// entirely with -stateless.
//
// Sharding: -shards N partitions the corpus across N independent
// stores (per-shard lock, generation counter, summary-cache slice and
// WAL stream), routed by a seeded consistent hash of the item ID.
// A durable sharded store keeps shard i under <data-dir>/shard-NNNN
// and pins the layout in <data-dir>/shard-layout.json; reopening with
// a different -shards count is refused (use a fresh -data-dir to
// change the layout).
//
// Admission control: -max-inflight-solves bounds concurrently running
// solve-class requests (POST /v1/summarize, GET /v1/items/{id}/summary);
// excess requests wait at most -queue-wait in a bounded queue and are
// then shed with 429 + Retry-After. GET /v1/stats exposes the
// admission counters (inflight, queue depth high-water, shed counts)
// and the per-shard store breakdown.
//
// Durable mode: with -data-dir the corpus survives restarts. Every
// acknowledged write is appended to a CRC32C-framed write-ahead log
// before the reply goes out (flush policy: -fsync always|interval|never),
// snapshots bound recovery time (-snapshot-every), and on boot the
// server restores latest-snapshot-then-replay:
//
//	osars-serve -addr :8080 -data-dir /var/lib/osars -fsync always
//
// Replication: a durable server is a replication primary by default —
// it serves its WAL streams under /v1/repl/ so read replicas can
// follow. A replica runs with -role=replica -follow=<primary URL>:
// it tails every shard's WAL from the primary, applies the records
// locally, serves the full read/summary API, and rejects writes with
// 403 naming the primary:
//
//	osars-serve -addr :8080 -data-dir /var/lib/osars -shards 4
//	osars-serve -addr :8081 -data-dir /var/lib/osars-replica -shards 4 \
//	    -role=replica -follow=http://localhost:8080
//
// /readyz (as opposed to the pure-liveness /healthz) answers 503
// while boot recovery runs, and on a replica while the replication
// lag exceeds -max-lag-for-ready — so a load balancer stops routing
// reads to a node that would serve stale data. GET /v1/repl/status
// reports the per-shard positions on either role.
//
// On SIGINT/SIGTERM the server drains in-flight requests
// (-shutdown-timeout), flushes the WAL and writes a final snapshot
// before exiting, so the next boot replays nothing.
//
// Profiling: -pprof addr serves net/http/pprof on a SEPARATE listener
// (keep it loopback-only; it is never mixed into the service mux):
//
//	osars-serve -addr :8080 -pprof localhost:6060
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//
// Ontology lifecycle: the boot-time ontology (-domain / -ontology /
// -eps) is only the starting point. Versioned (ontology, lexicon, ε)
// bundles in the osars-ontology/v1 JSON format (generate one with
// osars-gen -entry) can be uploaded and hot-activated on the running
// server with NO restart — in-flight requests finish on the version
// they started with, stored items re-annotate lazily, and activations
// are WAL-logged so they survive restarts and replicate to followers:
//
//	osars-serve -addr :8080 -data-dir /var/lib/osars -ontology-dir /var/lib/osars-onto
//	curl -s -X PUT localhost:8080/v1/ontologies/phone --data-binary @phone-entry.json
//	curl -s -X POST localhost:8080/v1/ontologies/phone/activate
//	curl -s localhost:8080/v1/ontologies
//
// -active-ontology name[@version] activates a registry entry right
// after boot recovery (primary only; replicas adopt the primary's
// active version through the replication stream). Stateless requests
// may pin a registered domain per call with {"ontology": "name"}.
//
// Monitoring: -metrics exposes Prometheus text metrics on GET /metrics
// (on the main listener, and on the -pprof listener too when one is
// configured) covering every layer: HTTP routes, admission control,
// store/cache, WAL and replication. The endpoint is never admission-
// or boot-gated. -slow-request-threshold additionally logs one
// structured line per request over the threshold:
//
//	osars-serve -addr :8080 -metrics -slow-request-threshold 500ms
//	curl -s localhost:8080/metrics | grep osars_http
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"osars"
	"osars/internal/dataset"
	"osars/internal/ontology"
	"osars/internal/repl"
	"osars/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		domain       = flag.String("domain", "phone", "built-in ontology when -ontology is not given: phone|doctor")
		ontPath      = flag.String("ontology", "", "path to an ontology JSON file (overrides -domain)")
		eps          = flag.Float64("eps", 0.5, "sentiment threshold ε")
		ontoDir      = flag.String("ontology-dir", "", "ontology registry persistence: entries uploaded via PUT /v1/ontologies/{name} land here and reload on boot; empty keeps uploads in memory only")
		activeOnt    = flag.String("active-ontology", "", "activate this registry entry (\"name\" or \"name@version\", resolved against -ontology-dir) on the store after boot recovery")
		stateless    = flag.Bool("stateless", false, "disable the stateful /v1/items API")
		cacheEntries = flag.Int("cache-entries", 1024, "summary cache entry budget (negative disables caching)")
		cacheBytes   = flag.Int64("cache-bytes", 64<<20, "summary cache byte budget (negative: entry-count only)")
		covIndex     = flag.Bool("coverage-index", true, "maintain per-item incremental coverage indexes so append→summarize is O(delta); false rebuilds the coverage graph on every solve")
		dataDir      = flag.String("data-dir", "", "durable mode: persist the corpus (WAL + snapshots) in this directory; empty keeps the store in memory")
		fsyncMode    = flag.String("fsync", "always", "WAL flush policy: always (sync before every ack), interval (background timer), never (OS page cache)")
		fsyncEvery   = flag.Duration("fsync-interval", 100*time.Millisecond, "flush period under -fsync interval")
		snapEvery    = flag.Int("snapshot-every", 4096, "write a snapshot and compact the WAL after this many logged records (negative disables automatic snapshots)")
		segBytes     = flag.Int64("wal-segment-bytes", 8<<20, "WAL segment rotation threshold")
		shutdownWait = flag.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown deadline for draining in-flight requests")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty disables")
		shards       = flag.Int("shards", 1, "partition the corpus across this many independent stores (per-shard lock + WAL); 1 keeps the single-partition layout")
		maxSolves    = flag.Int("max-inflight-solves", 0, "admission control: max concurrently running solve requests (summarize + item summary); 0 disables (unlimited)")
		maxReads     = flag.Int("max-inflight-reads", 0, "admission control: max concurrently running cheap-read requests (item stats + listings); 0 disables (unlimited)")
		queueWait    = flag.Duration("queue-wait", server.DefaultQueueWait, "admission control: longest a request may wait for a slot before being shed with 429")
		role         = flag.String("role", "primary", "replication role: primary (serves WAL streams under /v1/repl/ when durable) or replica (read-only, follows -follow)")
		follow       = flag.String("follow", "", "replica mode: base URL of the primary to follow, e.g. http://primary:8080")
		maxLagReady  = flag.Uint64("max-lag-for-ready", 1024, "replica readiness: /readyz answers 503 while the worst per-shard replication lag exceeds this many WAL records")
		metricsOn    = flag.Bool("metrics", false, "expose Prometheus text metrics on GET /metrics (and on the -pprof listener when set)")
		slowThresh   = flag.Duration("slow-request-threshold", 0, "log one structured line per request at least this slow (method, route, status, duration, queue wait, shard); 0 disables")
	)
	flag.Parse()

	switch *role {
	case "primary":
		if *follow != "" {
			log.Fatalf("osars-serve: -follow is only valid with -role=replica")
		}
	case "replica":
		if *follow == "" {
			log.Fatalf("osars-serve: -role=replica requires -follow=<primary URL>")
		}
		if *stateless {
			log.Fatalf("osars-serve: -role=replica needs the stateful store (drop -stateless)")
		}
		if *activeOnt != "" {
			log.Fatalf("osars-serve: -active-ontology is primary-only; replicas adopt the primary's active ontology through replication")
		}
	default:
		log.Fatalf("osars-serve: unknown -role %q (primary|replica)", *role)
	}

	var ont *ontology.Ontology
	switch {
	case *ontPath != "":
		data, err := os.ReadFile(*ontPath)
		if err != nil {
			log.Fatalf("osars-serve: %v", err)
		}
		ont = new(ontology.Ontology)
		if err := json.Unmarshal(data, ont); err != nil {
			log.Fatalf("osars-serve: parse ontology: %v", err)
		}
	case *domain == "phone":
		ont = dataset.CellPhoneOntology()
	case *domain == "doctor":
		ont = dataset.MedicalOntology(dataset.MedicalOntologyConfig{Seed: 1})
	default:
		log.Fatalf("osars-serve: unknown -domain %q", *domain)
	}

	sum, err := osars.New(osars.Config{Ontology: ont, Epsilon: *eps})
	if err != nil {
		log.Fatalf("osars-serve: %v", err)
	}
	fsync, err := osars.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		log.Fatalf("osars-serve: %v", err)
	}
	if *stateless && *dataDir != "" {
		log.Fatalf("osars-serve: -data-dir requires the stateful store (drop -stateless)")
	}
	if *stateless && *activeOnt != "" {
		log.Fatalf("osars-serve: -active-ontology activates on the stateful store (drop -stateless)")
	}
	// One registry for the whole process: the HTTP layer, admission,
	// every store shard, the WAL and the replication follower all
	// register into it, so a single scrape covers the full stack.
	var reg *osars.MetricsRegistry
	if *metricsOn {
		reg = osars.NewMetricsRegistry()
	}
	if *pprofAddr != "" {
		// A dedicated mux on a dedicated listener: the profiling
		// endpoints never share a port (or a handler tree) with the
		// public API, so exposing the service does not expose pprof.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		if reg != nil {
			// Metrics ride on the ops listener too: a scraper pointed at
			// the loopback pprof port works even if the public port is
			// firewalled away from the monitoring network.
			pm.Handle("GET /metrics", reg.Handler())
		}
		go func() {
			psrv := &http.Server{
				Addr:              *pprofAddr,
				Handler:           pm,
				ReadHeaderTimeout: 10 * time.Second,
				ReadTimeout:       30 * time.Second,
				// Profiles stream for up to ?seconds=N; give them
				// room, but never an unbounded connection.
				WriteTimeout:   5 * time.Minute,
				IdleTimeout:    2 * time.Minute,
				MaxHeaderBytes: 1 << 20,
			}
			fmt.Printf("osars-serve: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("osars-serve: pprof listener: %v", err)
			}
		}()
	}

	// The handler mounts before the store exists so the listener can
	// answer /healthz (and the repl endpoints can answer 503) while a
	// large WAL recovery runs; FinishBoot installs the store when it is
	// ready.
	h := server.NewWithStore(sum, nil)
	if *maxSolves > 0 || *maxReads > 0 {
		h.ConfigureAdmission(server.AdmissionConfig{
			MaxInflightSolves: *maxSolves,
			MaxInflightReads:  *maxReads,
			QueueWait:         *queueWait,
		})
	}
	if reg != nil || *slowThresh > 0 {
		h.ConfigureObservability(server.ObservabilityConfig{
			Metrics:              reg,
			SlowRequestThreshold: *slowThresh,
		})
	}
	// The ontology lifecycle API is always armed: a memory-only registry
	// still allows upload + hot-activate, it just forgets uploads on
	// restart (the ACTIVE version itself survives via the store's WAL).
	ontoReg := osars.NewOntologyRegistry(osars.OntologyRegistryOptions{Dir: *ontoDir, Obs: reg})
	if *ontoDir != "" {
		n, err := ontoReg.LoadDir()
		if err != nil {
			// Partial load: bad files are skipped, everything valid is
			// registered. Keep serving rather than refuse to boot over one
			// torn upload.
			log.Printf("osars-serve: ontology registry: %v (serving the %d entries that loaded)", err, n)
		} else if n > 0 {
			fmt.Printf("osars-serve: ontology registry: %d entries from %s\n", n, *ontoDir)
		}
	}
	h.ConfigureOntologies(ontoReg)
	var (
		primaryH    *repl.PrimaryHandler
		replicaH    *repl.ReplicaHandler
		followerRef atomic.Pointer[repl.Follower]
	)
	if !*stateless {
		h.BeginBoot()
		switch {
		case *role == "replica":
			replicaH = repl.NewReplicaHandler()
			h.HandleRepl(replicaH)
			h.SetPrimary(*follow)
			h.ConfigureReadiness(func() error {
				f := followerRef.Load()
				if f == nil {
					return errors.New("replication follower not started")
				}
				if lag := f.MaxLagSeqs(); lag > *maxLagReady {
					return fmt.Errorf("replication lag %d records exceeds -max-lag-for-ready=%d", lag, *maxLagReady)
				}
				return nil
			})
		case *dataDir != "":
			primaryH = repl.NewPrimaryHandler()
			h.HandleRepl(primaryH)
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		// A slow (or malicious) client must never pin a connection
		// forever: bound the whole request read, the whole response
		// write and keep-alive idling. The write timeout leaves room
		// for a queued admission wait plus a worst-case ILP solve; the
		// replication stream handler extends its own deadline per
		// flushed batch via http.ResponseController.
		ReadTimeout:    1 * time.Minute,
		WriteTimeout:   2 * time.Minute,
		IdleTimeout:    2 * time.Minute,
		MaxHeaderBytes: 1 << 20,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	// Boot the store with the listener already accepting connections:
	// /healthz answers, /readyz and the stateful endpoints say 503
	// until FinishBoot.
	var st osars.Store
	var follower *repl.Follower
	if !*stateless {
		st, err = sum.OpenStore(osars.StoreOptions{
			MaxCacheEntries:      *cacheEntries,
			MaxCacheBytes:        *cacheBytes,
			DisableCoverageIndex: !*covIndex,
			Shards:               *shards,
			DataDir:              *dataDir,
			Fsync:                fsync,
			FsyncInterval:        *fsyncEvery,
			SnapshotEvery:        *snapEvery,
			WALSegmentBytes:      *segBytes,
			Replica:              *role == "replica",
			Metrics:              reg,
		})
		if err != nil {
			log.Fatalf("osars-serve: open store: %v", err)
		}
		if rec, ok := st.Recovery(); ok {
			fmt.Printf("osars-serve: recovered %d items from %s in %v "+
				"(snapshot seq %d with %d items, %d WAL records replayed, wal seq %d",
				rec.Items, *dataDir, rec.Duration.Round(time.Microsecond),
				rec.SnapshotSeq, rec.SnapshotItems, rec.ReplayedRecords, rec.LastSeq)
			if rec.TruncatedBytes > 0 {
				fmt.Printf("; torn tail: %d bytes truncated, %d segments dropped", rec.TruncatedBytes, rec.DroppedSegments)
			}
			fmt.Println(")")
		}
		h.FinishBoot(st)
		if *activeOnt != "" {
			_, rt, ok := ontoReg.Lookup(*activeOnt)
			if !ok {
				log.Fatalf("osars-serve: -active-ontology: no entry %q in the registry (check -ontology-dir)", *activeOnt)
			}
			start := time.Now()
			if err := st.ActivateOntology(rt); err != nil {
				log.Fatalf("osars-serve: -active-ontology: %v", err)
			}
			ontoReg.SetActive(rt)
			ontoReg.RecordActivation(rt, time.Since(start))
			fmt.Printf("osars-serve: activated ontology %s@%s\n", rt.Name, rt.Version)
		}
		if primaryH != nil {
			src, err := repl.NewSource(st)
			if err != nil {
				log.Fatalf("osars-serve: %v", err)
			}
			primaryH.Attach(src)
		}
		if *role == "replica" {
			tgt, err := repl.NewTarget(st)
			if err != nil {
				log.Fatalf("osars-serve: %v", err)
			}
			follower, err = repl.StartFollower(repl.FollowerConfig{
				PrimaryURL: *follow,
				Target:     tgt,
				Logf:       log.Printf,
				Obs:        reg,
			})
			if err != nil {
				log.Fatalf("osars-serve: %v", err)
			}
			followerRef.Store(follower)
			replicaH.Attach(follower, *follow)
		}
	}

	mode := fmt.Sprintf("stateful, cache %d entries / %d MiB", *cacheEntries, *cacheBytes>>20)
	if *stateless {
		mode = "stateless"
	} else if *dataDir != "" {
		mode += fmt.Sprintf(", durable in %s (fsync=%s)", *dataDir, fsync)
	}
	if !*stateless && *shards > 1 {
		mode += fmt.Sprintf(", %d shards", *shards)
	}
	if *maxSolves > 0 {
		mode += fmt.Sprintf(", admission %d solves/queue-wait %v", *maxSolves, *queueWait)
	}
	if *ontoDir != "" {
		mode += fmt.Sprintf(", ontology registry in %s", *ontoDir)
	}
	if reg != nil {
		mode += ", metrics on /metrics"
	}
	if *slowThresh > 0 {
		mode += fmt.Sprintf(", slow-log ≥%v", *slowThresh)
	}
	switch {
	case *role == "replica":
		mode += fmt.Sprintf(", replica of %s (ready under %d lag)", *follow, *maxLagReady)
	case primaryH != nil:
		mode += ", replication primary"
	}
	fmt.Printf("osars-serve: listening on %s with %v (ε=%.2f, %s)\n", *addr, ont, *eps, mode)

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections,
	// drain in-flight requests under a deadline, then flush + fsync
	// the WAL and write a final snapshot. A second signal aborts
	// immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("osars-serve: %v", err)
		}
	case <-ctx.Done():
		stop() // restore default handling: a second signal kills us
		fmt.Printf("osars-serve: shutting down (deadline %v)\n", *shutdownWait)
		shCtx, cancel := context.WithTimeout(context.Background(), *shutdownWait)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("osars-serve: drain: %v (closing anyway)", err)
			srv.Close()
		}
	}
	// Stop the follower before closing the store: an apply racing the
	// close would fail spuriously.
	if follower != nil {
		follower.Stop()
	}
	if st != nil {
		if err := st.Close(); err != nil {
			log.Fatalf("osars-serve: close store: %v", err)
		}
		fmt.Println("osars-serve: store flushed and snapshotted; bye")
	}
}
