// Command osars-serve runs the summarization HTTP service:
//
//	osars-serve -addr :8080 -domain phone
//	osars-serve -addr :8080 -ontology data/phone-ontology.json
//
// Stateless, one-shot (the request carries the reviews):
//
//	curl -s localhost:8080/v1/summarize -d '{
//	  "item_id": "p1", "k": 3,
//	  "reviews": [{"id":"r1","text":"The screen is excellent. The battery is awful."}]
//	}'
//
// Stateful (the server accumulates the corpus; reads hit the
// generation-aware summary cache):
//
//	curl -s -X PUT localhost:8080/v1/items/p1/reviews -d '{
//	  "reviews": [{"id":"r1","text":"The screen is excellent. The battery is awful."}]
//	}'
//	curl -s 'localhost:8080/v1/items/p1/summary?k=3'
//	curl -s localhost:8080/v1/items
//	curl -s -X DELETE localhost:8080/v1/items/p1
//
// The store is tuned with -cache-entries / -cache-bytes and disabled
// entirely with -stateless.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"osars"
	"osars/internal/dataset"
	"osars/internal/ontology"
	"osars/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		domain       = flag.String("domain", "phone", "built-in ontology when -ontology is not given: phone|doctor")
		ontPath      = flag.String("ontology", "", "path to an ontology JSON file (overrides -domain)")
		eps          = flag.Float64("eps", 0.5, "sentiment threshold ε")
		stateless    = flag.Bool("stateless", false, "disable the stateful /v1/items API")
		cacheEntries = flag.Int("cache-entries", 1024, "summary cache entry budget (negative disables caching)")
		cacheBytes   = flag.Int64("cache-bytes", 64<<20, "summary cache byte budget (negative: entry-count only)")
	)
	flag.Parse()

	var ont *ontology.Ontology
	switch {
	case *ontPath != "":
		data, err := os.ReadFile(*ontPath)
		if err != nil {
			log.Fatalf("osars-serve: %v", err)
		}
		ont = new(ontology.Ontology)
		if err := json.Unmarshal(data, ont); err != nil {
			log.Fatalf("osars-serve: parse ontology: %v", err)
		}
	case *domain == "phone":
		ont = dataset.CellPhoneOntology()
	case *domain == "doctor":
		ont = dataset.MedicalOntology(dataset.MedicalOntologyConfig{Seed: 1})
	default:
		log.Fatalf("osars-serve: unknown -domain %q", *domain)
	}

	sum, err := osars.New(osars.Config{Ontology: ont, Epsilon: *eps})
	if err != nil {
		log.Fatalf("osars-serve: %v", err)
	}
	var st *osars.Store
	if !*stateless {
		st = sum.NewStore(osars.StoreOptions{
			MaxCacheEntries: *cacheEntries,
			MaxCacheBytes:   *cacheBytes,
		})
	}
	h := server.NewWithStore(sum, st)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	mode := fmt.Sprintf("stateful, cache %d entries / %d MiB", *cacheEntries, *cacheBytes>>20)
	if *stateless {
		mode = "stateless"
	}
	fmt.Printf("osars-serve: listening on %s with %v (ε=%.2f, %s)\n", *addr, ont, *eps, mode)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("osars-serve: %v", err)
	}
}
