// Command osars-serve runs the summarization HTTP service:
//
//	osars-serve -addr :8080 -domain phone
//	osars-serve -addr :8080 -ontology data/phone-ontology.json
//
// Stateless, one-shot (the request carries the reviews):
//
//	curl -s localhost:8080/v1/summarize -d '{
//	  "item_id": "p1", "k": 3,
//	  "reviews": [{"id":"r1","text":"The screen is excellent. The battery is awful."}]
//	}'
//
// Stateful (the server accumulates the corpus; reads hit the
// generation-aware summary cache):
//
//	curl -s -X PUT localhost:8080/v1/items/p1/reviews -d '{
//	  "reviews": [{"id":"r1","text":"The screen is excellent. The battery is awful."}]
//	}'
//	curl -s 'localhost:8080/v1/items/p1/summary?k=3'
//	curl -s localhost:8080/v1/items
//	curl -s -X DELETE localhost:8080/v1/items/p1
//
// The store is tuned with -cache-entries / -cache-bytes and disabled
// entirely with -stateless.
//
// Sharding: -shards N partitions the corpus across N independent
// stores (per-shard lock, generation counter, summary-cache slice and
// WAL stream), routed by a seeded consistent hash of the item ID.
// A durable sharded store keeps shard i under <data-dir>/shard-NNNN
// and pins the layout in <data-dir>/shard-layout.json; reopening with
// a different -shards count is refused (use a fresh -data-dir to
// change the layout).
//
// Admission control: -max-inflight-solves bounds concurrently running
// solve-class requests (POST /v1/summarize, GET /v1/items/{id}/summary);
// excess requests wait at most -queue-wait in a bounded queue and are
// then shed with 429 + Retry-After. GET /v1/stats exposes the
// admission counters (inflight, queue depth high-water, shed counts)
// and the per-shard store breakdown.
//
// Durable mode: with -data-dir the corpus survives restarts. Every
// acknowledged write is appended to a CRC32C-framed write-ahead log
// before the reply goes out (flush policy: -fsync always|interval|never),
// snapshots bound recovery time (-snapshot-every), and on boot the
// server restores latest-snapshot-then-replay:
//
//	osars-serve -addr :8080 -data-dir /var/lib/osars -fsync always
//
// On SIGINT/SIGTERM the server drains in-flight requests
// (-shutdown-timeout), flushes the WAL and writes a final snapshot
// before exiting, so the next boot replays nothing.
//
// Profiling: -pprof addr serves net/http/pprof on a SEPARATE listener
// (keep it loopback-only; it is never mixed into the service mux):
//
//	osars-serve -addr :8080 -pprof localhost:6060
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"osars"
	"osars/internal/dataset"
	"osars/internal/ontology"
	"osars/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		domain       = flag.String("domain", "phone", "built-in ontology when -ontology is not given: phone|doctor")
		ontPath      = flag.String("ontology", "", "path to an ontology JSON file (overrides -domain)")
		eps          = flag.Float64("eps", 0.5, "sentiment threshold ε")
		stateless    = flag.Bool("stateless", false, "disable the stateful /v1/items API")
		cacheEntries = flag.Int("cache-entries", 1024, "summary cache entry budget (negative disables caching)")
		cacheBytes   = flag.Int64("cache-bytes", 64<<20, "summary cache byte budget (negative: entry-count only)")
		dataDir      = flag.String("data-dir", "", "durable mode: persist the corpus (WAL + snapshots) in this directory; empty keeps the store in memory")
		fsyncMode    = flag.String("fsync", "always", "WAL flush policy: always (sync before every ack), interval (background timer), never (OS page cache)")
		fsyncEvery   = flag.Duration("fsync-interval", 100*time.Millisecond, "flush period under -fsync interval")
		snapEvery    = flag.Int("snapshot-every", 4096, "write a snapshot and compact the WAL after this many logged records (negative disables automatic snapshots)")
		segBytes     = flag.Int64("wal-segment-bytes", 8<<20, "WAL segment rotation threshold")
		shutdownWait = flag.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown deadline for draining in-flight requests")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty disables")
		shards       = flag.Int("shards", 1, "partition the corpus across this many independent stores (per-shard lock + WAL); 1 keeps the single-partition layout")
		maxSolves    = flag.Int("max-inflight-solves", 0, "admission control: max concurrently running solve requests (summarize + item summary); 0 disables (unlimited)")
		maxReads     = flag.Int("max-inflight-reads", 0, "admission control: max concurrently running cheap-read requests (item stats + listings); 0 disables (unlimited)")
		queueWait    = flag.Duration("queue-wait", server.DefaultQueueWait, "admission control: longest a request may wait for a slot before being shed with 429")
	)
	flag.Parse()

	var ont *ontology.Ontology
	switch {
	case *ontPath != "":
		data, err := os.ReadFile(*ontPath)
		if err != nil {
			log.Fatalf("osars-serve: %v", err)
		}
		ont = new(ontology.Ontology)
		if err := json.Unmarshal(data, ont); err != nil {
			log.Fatalf("osars-serve: parse ontology: %v", err)
		}
	case *domain == "phone":
		ont = dataset.CellPhoneOntology()
	case *domain == "doctor":
		ont = dataset.MedicalOntology(dataset.MedicalOntologyConfig{Seed: 1})
	default:
		log.Fatalf("osars-serve: unknown -domain %q", *domain)
	}

	sum, err := osars.New(osars.Config{Ontology: ont, Epsilon: *eps})
	if err != nil {
		log.Fatalf("osars-serve: %v", err)
	}
	fsync, err := osars.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		log.Fatalf("osars-serve: %v", err)
	}
	var st osars.Store
	if !*stateless {
		st, err = sum.OpenStore(osars.StoreOptions{
			MaxCacheEntries: *cacheEntries,
			MaxCacheBytes:   *cacheBytes,
			Shards:          *shards,
			DataDir:         *dataDir,
			Fsync:           fsync,
			FsyncInterval:   *fsyncEvery,
			SnapshotEvery:   *snapEvery,
			WALSegmentBytes: *segBytes,
		})
		if err != nil {
			log.Fatalf("osars-serve: open store: %v", err)
		}
		if rec, ok := st.Recovery(); ok {
			fmt.Printf("osars-serve: recovered %d items from %s in %v "+
				"(snapshot seq %d with %d items, %d WAL records replayed, wal seq %d",
				rec.Items, *dataDir, rec.Duration.Round(time.Microsecond),
				rec.SnapshotSeq, rec.SnapshotItems, rec.ReplayedRecords, rec.LastSeq)
			if rec.TruncatedBytes > 0 {
				fmt.Printf("; torn tail: %d bytes truncated, %d segments dropped", rec.TruncatedBytes, rec.DroppedSegments)
			}
			fmt.Println(")")
		}
	} else if *dataDir != "" {
		log.Fatalf("osars-serve: -data-dir requires the stateful store (drop -stateless)")
	}
	if *pprofAddr != "" {
		// A dedicated mux on a dedicated listener: the profiling
		// endpoints never share a port (or a handler tree) with the
		// public API, so exposing the service does not expose pprof.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			psrv := &http.Server{
				Addr:              *pprofAddr,
				Handler:           pm,
				ReadHeaderTimeout: 10 * time.Second,
				ReadTimeout:       30 * time.Second,
				// Profiles stream for up to ?seconds=N; give them
				// room, but never an unbounded connection.
				WriteTimeout:   5 * time.Minute,
				IdleTimeout:    2 * time.Minute,
				MaxHeaderBytes: 1 << 20,
			}
			fmt.Printf("osars-serve: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("osars-serve: pprof listener: %v", err)
			}
		}()
	}
	h := server.NewWithStore(sum, st)
	if *maxSolves > 0 || *maxReads > 0 {
		h.ConfigureAdmission(server.AdmissionConfig{
			MaxInflightSolves: *maxSolves,
			MaxInflightReads:  *maxReads,
			QueueWait:         *queueWait,
		})
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		// A slow (or malicious) client must never pin a connection
		// forever: bound the whole request read, the whole response
		// write and keep-alive idling. The write timeout leaves room
		// for a queued admission wait plus a worst-case ILP solve.
		ReadTimeout:    1 * time.Minute,
		WriteTimeout:   2 * time.Minute,
		IdleTimeout:    2 * time.Minute,
		MaxHeaderBytes: 1 << 20,
	}
	mode := fmt.Sprintf("stateful, cache %d entries / %d MiB", *cacheEntries, *cacheBytes>>20)
	if *stateless {
		mode = "stateless"
	} else if *dataDir != "" {
		mode += fmt.Sprintf(", durable in %s (fsync=%s)", *dataDir, fsync)
	}
	if !*stateless && *shards > 1 {
		mode += fmt.Sprintf(", %d shards", *shards)
	}
	if *maxSolves > 0 {
		mode += fmt.Sprintf(", admission %d solves/queue-wait %v", *maxSolves, *queueWait)
	}
	fmt.Printf("osars-serve: listening on %s with %v (ε=%.2f, %s)\n", *addr, ont, *eps, mode)

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections,
	// drain in-flight requests under a deadline, then flush + fsync
	// the WAL and write a final snapshot. A second signal aborts
	// immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("osars-serve: %v", err)
		}
	case <-ctx.Done():
		stop() // restore default handling: a second signal kills us
		fmt.Printf("osars-serve: shutting down (deadline %v)\n", *shutdownWait)
		shCtx, cancel := context.WithTimeout(context.Background(), *shutdownWait)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("osars-serve: drain: %v (closing anyway)", err)
			srv.Close()
		}
	}
	if st != nil {
		if err := st.Close(); err != nil {
			log.Fatalf("osars-serve: close store: %v", err)
		}
		fmt.Println("osars-serve: store flushed and snapshotted; bye")
	}
}
