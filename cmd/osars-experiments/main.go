// Command osars-experiments regenerates every table and figure of the
// paper's evaluation (§5) on the synthetic corpora:
//
//	osars-experiments -exp table1   # Table 1: dataset characteristics
//	osars-experiments -exp fig3    # Fig 3: cell-phone aspect hierarchy
//	osars-experiments -exp fig4    # Fig 4: time evaluation, ε = 0.5
//	osars-experiments -exp fig5    # Fig 5: cost evaluation, ε = 0.5
//	osars-experiments -exp fig6    # Fig 6: sent-err vs five baselines
//	osars-experiments -exp elbow   # §5.3: ε selection by elbow method
//	osars-experiments -exp all     # everything
//
// Absolute numbers differ from the paper (different hardware, Gurobi
// replaced by the built-in solver, synthetic data), but the qualitative
// shape — who wins, by what order of magnitude, in which direction the
// curves move — is the reproduction target. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"osars/internal/baselines"
	"osars/internal/coverage"
	"osars/internal/dataset"
	"osars/internal/eval"
	"osars/internal/extract"
	"osars/internal/model"
	"osars/internal/ontology"
	"osars/internal/sentiment"
	"osars/internal/summarize"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: table1|fig3|fig4|fig5|fig6|elbow|coverage|all")
		items      = flag.Int("items", 10, "items to average over in fig4/fig5/fig6/elbow")
		reviewsCap = flag.Int("reviews-cap", 70, "cap on reviews per item for the per-item experiments")
		kMax       = flag.Int("kmax", 10, "largest summary size k in the sweeps")
		seed       = flag.Int64("seed", 1, "corpus generation seed")
		eps        = flag.Float64("eps", 0.5, "sentiment threshold ε (Figs 4-6)")
		fullTable1 = flag.Bool("full-table1", true, "generate the full-size Table 1 corpora (68,686 + 33,578 reviews)")
	)
	flag.Parse()

	ks := make([]int, 0, *kMax)
	for k := 1; k <= *kMax; k++ {
		ks = append(ks, k)
	}

	run := func(name string, f func() error) {
		fmt.Printf("\n================ %s ================\n", name)
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %s]\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		run("Table 1: dataset characteristics", func() error { return table1(*seed, *fullTable1) })
	}
	if want("fig3") {
		run("Fig 3: cell phone aspect hierarchy", fig3)
	}
	if want("fig4") || want("fig5") {
		run("Figs 4-5: time and cost evaluation (doctor reviews, ε=0.5)", func() error {
			return figs45(*seed, *items, *reviewsCap, ks, *eps)
		})
	}
	if want("fig6") {
		run("Fig 6: sentiment error vs baselines (cell phone reviews)", func() error {
			return fig6(*seed, *items, *reviewsCap, ks, *eps)
		})
	}
	if want("elbow") {
		run("§5.3: sentiment threshold selection (elbow method)", func() error {
			return elbow(*seed, *items, *reviewsCap)
		})
	}
	if want("coverage") {
		run("ICDE'17 poster: coverage measures of the greedy summary", func() error {
			return coverageMeasures(*seed, *items, *reviewsCap, ks, *eps)
		})
	}
}

// coverageMeasures reproduces the ICDE 2017 poster's coverage-oriented
// evaluation of the greedy algorithm on the doctor dataset.
func coverageMeasures(seed int64, n, reviewsCap int, ks []int, eps float64) error {
	items, metric, err := prepareItems(dataset.DomainDoctor, seed, n, reviewsCap, eps)
	if err != nil {
		return err
	}
	fmt.Printf("%d doctor items, ε=%.2f, greedy summaries\n\n", len(items), eps)
	fmt.Printf("%-4s %12s %12s %12s %12s\n", "k", "covered", "exact", "avg-dist", "norm-cost")
	for _, k := range ks {
		var agg eval.CoverageReport
		for _, item := range items {
			g := coverage.Build(metric, item, model.GranularityPairs)
			kk := k
			if kk > g.NumCandidates {
				kk = g.NumCandidates
			}
			rep := eval.Coverage(g, summarize.Greedy(g, kk).Selected)
			agg.CoveredRate += rep.CoveredRate
			agg.ExactRate += rep.ExactRate
			agg.AvgCoveredDistance += rep.AvgCoveredDistance
			agg.NormalizedCost += rep.NormalizedCost
		}
		m := float64(len(items))
		fmt.Printf("%-4d %11.1f%% %11.1f%% %12.2f %12.3f\n", k,
			100*agg.CoveredRate/m, 100*agg.ExactRate/m, agg.AvgCoveredDistance/m, agg.NormalizedCost/m)
	}
	return nil
}

// table1 regenerates Table 1.
func table1(seed int64, full bool) error {
	dcfg, pcfg := dataset.DoctorConfig(seed), dataset.CellPhoneConfig(seed)
	if !full {
		dcfg, pcfg = dataset.SmallDoctorConfig(seed), dataset.SmallCellPhoneConfig(seed)
	}
	doctors := dataset.Generate(dcfg)
	phones := dataset.Generate(pcfg)
	ds, ps := dataset.ComputeStats(doctors), dataset.ComputeStats(phones)
	fmt.Printf("%-28s %18s %18s\n", "", "Doctor reviews", "Cell phone reviews")
	fmt.Printf("%-28s %18d %18d\n", "#Items (doctor/product)", ds.NumItems, ps.NumItems)
	fmt.Printf("%-28s %18d %18d\n", "#Reviews", ds.NumReviews, ps.NumReviews)
	fmt.Printf("%-28s %18d %18d\n", "Min #reviews per item", ds.MinReviewsPerItem, ps.MinReviewsPerItem)
	fmt.Printf("%-28s %18d %18d\n", "Max #reviews per item", ds.MaxReviewsPerItem, ps.MaxReviewsPerItem)
	fmt.Printf("%-28s %18.2f %18.2f\n", "Average #sentences per review", ds.AvgSentencesPerRev, ps.AvgSentencesPerRev)
	fmt.Printf("\n(paper: 1000/60 items, 68686/33578 reviews, 43-354 / 102-3200 per item, 4.87/3.81 sentences)\n")
	return nil
}

// fig3 prints the cell-phone aspect hierarchy as an indented tree.
func fig3() error {
	ont := dataset.CellPhoneOntology()
	var walk func(c ontology.ConceptID, depth int)
	walk = func(c ontology.ConceptID, depth int) {
		syn := ""
		if s := ont.Synonyms(c); len(s) > 0 {
			syn = " (" + strings.Join(s, ", ") + ")"
		}
		fmt.Printf("%s%s%s\n", strings.Repeat("  ", depth), ont.Name(c), syn)
		children := append([]ontology.ConceptID(nil), ont.Children(c)...)
		sort.Slice(children, func(i, j int) bool { return ont.Name(children[i]) < ont.Name(children[j]) })
		for _, ch := range children {
			walk(ch, depth+1)
		}
	}
	walk(ont.Root(), 0)
	fmt.Printf("\n%d aspects, depth %d\n", ont.Len()-1, ont.MaxDepth())
	return nil
}

// prepareItems generates and annotates n items of the given domain.
func prepareItems(domain dataset.Domain, seed int64, n, reviewsCap int, eps float64) ([]*model.Item, model.Metric, error) {
	var cfg dataset.CorpusConfig
	if domain == dataset.DomainDoctor {
		cfg = dataset.DoctorConfig(seed)
		cfg.NumItems = n
		cfg.TotalReviews = n * 70
		cfg.MinReviews = 43
		cfg.MaxReviews = 150
	} else {
		cfg = dataset.CellPhoneConfig(seed)
		cfg.NumItems = n
		cfg.TotalReviews = n * 70
		cfg.MinReviews = 40
		cfg.MaxReviews = 150
	}
	corpus := dataset.Generate(cfg)
	pipe := extract.NewPipeline(extract.NewMatcher(corpus.Ont), sentiment.Lexicon{})
	items := make([]*model.Item, 0, len(corpus.Items))
	for _, it := range corpus.Items {
		reviews := it.Reviews
		if len(reviews) > reviewsCap {
			reviews = reviews[:reviewsCap]
		}
		var raws []extract.RawReview
		for _, r := range reviews {
			raws = append(raws, extract.RawReview{ID: r.ID, Text: r.Text, Rating: r.Rating})
		}
		items = append(items, pipe.AnnotateItem(it.ID, it.Name, raws))
	}
	return items, model.Metric{Ont: corpus.Ont, Epsilon: eps}, nil
}

// figs45 reproduces the Figs 4-5 sweep and prints both views.
func figs45(seed int64, n, reviewsCap int, ks []int, eps float64) error {
	items, metric, err := prepareItems(dataset.DomainDoctor, seed, n, reviewsCap, eps)
	if err != nil {
		return err
	}
	fmt.Printf("%d doctor items, ε=%.2f\n", len(items), eps)
	rows, err := eval.RunQuantitative(items, metric, eval.QuantConfig{Ks: ks, Seed: seed})
	if err != nil {
		return err
	}

	cell := map[string]eval.QuantRow{}
	for _, r := range rows {
		cell[fmt.Sprintf("%v/%v/%d", r.Granularity, r.Algorithm, r.K)] = r
	}
	grans := []model.Granularity{model.GranularityPairs, model.GranularitySentences, model.GranularityReviews}

	fmt.Println("\n--- Fig 4: average time per item ---")
	for _, g := range grans {
		fmt.Printf("\ntop %s:\n%-4s %14s %14s %14s %10s\n", g, "k", "ILP", "RR", "Greedy", "ILP/Greedy")
		for _, k := range ks {
			ilp := cell[fmt.Sprintf("%v/ILP/%d", g, k)]
			rr := cell[fmt.Sprintf("%v/RR/%d", g, k)]
			gr := cell[fmt.Sprintf("%v/Greedy/%d", g, k)]
			speedup := float64(ilp.AvgTime) / float64(gr.AvgTime)
			fmt.Printf("%-4d %14s %14s %14s %9.0fx\n", k, ilp.AvgTime.Round(time.Microsecond),
				rr.AvgTime.Round(time.Microsecond), gr.AvgTime.Round(time.Microsecond), speedup)
		}
	}

	fmt.Println("\n--- Fig 5: average cost per item ---")
	for _, g := range grans {
		fmt.Printf("\ntop %s:\n%-4s %12s %12s %12s %10s %10s\n", g, "k", "ILP", "RR", "Greedy", "RR gap", "Greedy gap")
		for _, k := range ks {
			ilp := cell[fmt.Sprintf("%v/ILP/%d", g, k)]
			rr := cell[fmt.Sprintf("%v/RR/%d", g, k)]
			gr := cell[fmt.Sprintf("%v/Greedy/%d", g, k)]
			gapRR, gapGr := 0.0, 0.0
			if ilp.AvgCost > 0 {
				gapRR = 100 * (rr.AvgCost - ilp.AvgCost) / ilp.AvgCost
				gapGr = 100 * (gr.AvgCost - ilp.AvgCost) / ilp.AvgCost
			}
			fmt.Printf("%-4d %12.1f %12.1f %12.1f %9.2f%% %9.2f%%\n", k, ilp.AvgCost, rr.AvgCost, gr.AvgCost, gapRR, gapGr)
		}
	}

	// Paper-shape summary.
	fmt.Println("\n--- shape checks (paper: greedy ≤8% above optimal cost, fastest everywhere) ---")
	for _, g := range grans {
		maxGap, maxSpeed := 0.0, 0.0
		for _, k := range ks {
			ilp := cell[fmt.Sprintf("%v/ILP/%d", g, k)]
			gr := cell[fmt.Sprintf("%v/Greedy/%d", g, k)]
			if ilp.AvgCost > 0 {
				if gap := 100 * (gr.AvgCost - ilp.AvgCost) / ilp.AvgCost; gap > maxGap {
					maxGap = gap
				}
			}
			if s := float64(ilp.AvgTime) / float64(gr.AvgTime); s > maxSpeed {
				maxSpeed = s
			}
		}
		fmt.Printf("top %-9s: max greedy cost gap %.2f%%, max ILP/greedy speedup %.0fx\n", g, maxGap, maxSpeed)
	}
	return nil
}

// fig6 reproduces the qualitative comparison.
func fig6(seed int64, n, reviewsCap int, ks []int, eps float64) error {
	items, metric, err := prepareItems(dataset.DomainPhone, seed, n, reviewsCap, eps)
	if err != nil {
		return err
	}
	fmt.Printf("%d cell phone items, ε=%.2f\n", len(items), eps)
	rows := eval.RunQualitative(items, metric, ks, nil)
	methods := []string{}
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Method] {
			seen[r.Method] = true
			methods = append(methods, r.Method)
		}
	}
	get := func(m string, k int) eval.QualRow {
		for _, r := range rows {
			if r.Method == m && r.K == k {
				return r
			}
		}
		return eval.QualRow{}
	}
	for _, penal := range []bool{false, true} {
		label := "Fig 6(a): sent-err"
		if penal {
			label = "Fig 6(b): sent-err-penalized"
		}
		fmt.Printf("\n--- %s (lower is better) ---\n%-4s", label, "k")
		for _, m := range methods {
			fmt.Printf(" %14s", m)
		}
		fmt.Println()
		for _, k := range ks {
			fmt.Printf("%-4d", k)
			for _, m := range methods {
				r := get(m, k)
				v := r.SentErr
				if penal {
					v = r.SentErrPenalized
				}
				fmt.Printf(" %14.4f", v)
			}
			fmt.Println()
		}
	}
	// Shape summary: our average improvement over each baseline.
	fmt.Println("\n--- shape checks (paper: ours lowest everywhere; beats 'most popular' by ~4%/15%) ---")
	ours := methods[0]
	for _, m := range methods[1:] {
		var imp, impPen float64
		for _, k := range ks {
			a, b := get(ours, k), get(m, k)
			if b.SentErr > 0 {
				imp += 100 * (b.SentErr - a.SentErr) / b.SentErr
			}
			if b.SentErrPenalized > 0 {
				impPen += 100 * (b.SentErrPenalized - a.SentErrPenalized) / b.SentErrPenalized
			}
		}
		fmt.Printf("vs %-14s: avg sent-err reduction %6.2f%%, penalized %6.2f%%\n",
			m, imp/float64(len(ks)), impPen/float64(len(ks)))
	}

	// Paired-bootstrap significance at the middle k of the sweep.
	midK := ks[len(ks)/2]
	selectors := append([]baselines.Selector{eval.GreedySelector{Metric: metric}}, baselines.All()...)
	perItem := eval.PerItemSentErr(items, metric, midK, selectors, false)
	rng := rand.New(rand.NewSource(seed))
	fmt.Printf("\n--- paired bootstrap, H1: ours < baseline (k=%d, %d items) ---\n", midK, len(items))
	oursScores := perItem[selectors[0].Name()]
	for _, sel := range selectors[1:] {
		p := eval.PairedBootstrapPValue(oursScores, perItem[sel.Name()], 10000, rng)
		verdict := "significant at 0.05"
		if p >= 0.05 {
			verdict = "not significant"
		}
		fmt.Printf("vs %-14s: p = %.4f (%s)\n", sel.Name(), p, verdict)
	}
	return nil
}

// elbow reproduces the §5.3 ε-selection procedure.
func elbow(seed int64, n, reviewsCap int) error {
	items, metric, err := prepareItems(dataset.DomainDoctor, seed, n, reviewsCap, 0.5)
	if err != nil {
		return err
	}
	grid := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	avg := make([]float64, len(grid))
	for _, item := range items {
		rates := eval.EpsilonSweep(metric, item.Pairs(), 10, grid)
		for i, r := range rates {
			avg[i] += r
		}
	}
	for i := range avg {
		avg[i] /= float64(len(items))
	}
	idx := eval.Elbow(grid, avg)
	fmt.Printf("%-6s %s\n", "ε", "covered-pair rate (k=10 greedy summary)")
	for i, e := range grid {
		marker := ""
		if i == idx {
			marker = "   ← elbow"
		}
		fmt.Printf("%-6.1f %.4f%s\n", e, avg[i], marker)
	}
	fmt.Printf("\nselected ε = %.1f (paper selects 0.5)\n", grid[idx])
	return nil
}
