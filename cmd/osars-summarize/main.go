// Command osars-summarize produces an ontology- and sentiment-aware
// summary of one item's reviews from a corpus on disk (as written by
// osars-gen, or hand-authored in the same format):
//
//	osars-summarize -ontology data/phone-ontology.json \
//	    -items data/phone-items.jsonl -item item-0003 \
//	    -k 5 -granularity sentences -method greedy
package main

import (
	"flag"
	"fmt"
	"os"

	"osars"
	"osars/internal/dataset"
)

func main() {
	var (
		ontPath   = flag.String("ontology", "", "ontology JSON path (required)")
		itemsPath = flag.String("items", "", "items JSONL path (required)")
		itemID    = flag.String("item", "", "item ID to summarize (default: first item)")
		k         = flag.Int("k", 5, "summary size")
		gran      = flag.String("granularity", "sentences", "pairs|sentences|reviews")
		method    = flag.String("method", "greedy", "greedy|rr|ilp|local-search")
		eps       = flag.Float64("eps", 0.5, "sentiment threshold ε")
	)
	flag.Parse()
	if *ontPath == "" || *itemsPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	corpus, err := dataset.LoadCorpus(*ontPath, *itemsPath)
	if err != nil {
		fatal(err)
	}
	var raw *dataset.RawItem
	for i := range corpus.Items {
		if *itemID == "" || corpus.Items[i].ID == *itemID {
			raw = &corpus.Items[i]
			break
		}
	}
	if raw == nil {
		fatal(fmt.Errorf("item %q not found among %d items", *itemID, len(corpus.Items)))
	}

	g, err := osars.ParseGranularity(*gran)
	if err != nil {
		fatal(err)
	}
	m, err := osars.ParseMethod(*method)
	if err != nil {
		fatal(err)
	}

	s, err := osars.New(osars.Config{Ontology: corpus.Ont, Epsilon: *eps})
	if err != nil {
		fatal(err)
	}
	var reviews []osars.Review
	for _, r := range raw.Reviews {
		reviews = append(reviews, osars.Review{ID: r.ID, Text: r.Text, Rating: r.Rating})
	}
	item := s.AnnotateItem(raw.ID, raw.Name, reviews)
	sum, err := s.Summarize(item, *k, g, m)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s (%s): %d reviews, %d sentences, %d concept-sentiment pairs\n",
		raw.Name, raw.ID, len(item.Reviews), item.NumSentences(), len(item.Pairs()))
	fmt.Printf("summary: k=%d, granularity=%s, method=%s, ε=%.2f, coverage cost %.0f\n\n",
		*k, g, m, *eps, sum.Cost)
	switch g {
	case osars.Pairs:
		for i, p := range sum.Pairs {
			fmt.Printf("%2d. %s\n", i+1, s.DescribePair(p))
		}
	case osars.Sentences:
		for i, line := range sum.Sentences {
			fmt.Printf("%2d. %s\n", i+1, line)
		}
	case osars.Reviews:
		byID := map[string]string{}
		for _, r := range raw.Reviews {
			byID[r.ID] = r.Text
		}
		for i, id := range sum.ReviewIDs {
			fmt.Printf("%2d. [%s] %s\n", i+1, id, byID[id])
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "osars-summarize:", err)
	os.Exit(1)
}
