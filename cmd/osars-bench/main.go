// Command osars-bench is the cold-path benchmark-regression harness.
//
// Run mode (default) measures the cold serving path layer by layer —
// annotation, stemmed concept matching, coverage-graph build, greedy
// selection, cost evaluation, and the full end-to-end Summarize — on
// the same doctor-review fixture as the BenchmarkCold* benches in
// bench_test.go, plus the durability tax on ingestion: store appends
// with the WAL off (StoreAppendMem), WAL on without fsync
// (StoreAppendWALNoSync) and WAL on with fsync-per-ack
// (StoreAppendWALSync). Results are written as JSON:
//
//	osars-bench -o BENCH_coldpath.json        # full run (~1s/bench)
//	osars-bench -short -o /tmp/smoke.json     # CI smoke (~50ms/bench)
//
// Compare mode diffs two result files and fails (exit 1) when any
// benchmark's ns/op regressed beyond the tolerance:
//
//	osars-bench -compare BENCH_coldpath.json new.json -tol 0.25
//
// The ns/op gate uses -tol; allocs/op gets only a tiny fixed slack
// (2% and ≥2 absolute — enough to absorb the b.N-dependent fixture
// mix, small enough to catch any real allocation regression).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"osars"
	"osars/internal/coverage"
	"osars/internal/dataset"
	"osars/internal/extract"
	"osars/internal/model"
	"osars/internal/obs"
	"osars/internal/sentiment"
	"osars/internal/shard"
	"osars/internal/store"
	"osars/internal/summarize"
	"osars/internal/text"
	"osars/internal/wal"
)

const benchK = 5

// Result is one benchmark's measurement, serialized to JSON. For
// concurrent benchmarks, Writers is the goroutine count driving the
// load and GOMAXPROCS the effective processor limit the benchmark ran
// at (the multi-writer benches raise a floor of benchProcsFloor, so it
// can exceed the file-level GOMAXPROCS); both are omitted for
// single-threaded benchmarks, whose ns/op is a plain per-op latency.
// For Writers > 1, ns/op is wall-time divided by total ops across all
// writers — aggregate throughput is 1e9/ns_per_op ops/sec.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Writers     int     `json:"writers,omitempty"`
	GOMAXPROCS  int     `json:"gomaxprocs,omitempty"`
}

// benchProcsFloor is the GOMAXPROCS floor the multi-writer benchmarks
// run at (see shardMixedBench for why).
const benchProcsFloor = 4

// File is the BENCH_coldpath.json schema. PrePRBaseline is an
// optional historical record (the same benchmarks measured on the
// code before a cold-path optimization PR) carried in a committed
// baseline for before/after context; run mode does not write it and
// compare mode ignores it.
type File struct {
	Schema        string    `json:"schema"`
	Generated     time.Time `json:"generated"`
	GoVersion     string    `json:"go"`
	GOMAXPROCS    int       `json:"gomaxprocs"`
	Short         bool      `json:"short"`
	Benchmarks    []Result  `json:"benchmarks"`
	PrePRBaseline []Result  `json:"pre_pr_baseline,omitempty"`
}

// fixture mirrors coldFix() in bench_test.go: a small doctor-review
// corpus exercising the full extraction + coverage pipeline.
type fixture struct {
	sum   *osars.Summarizer
	pipe  *extract.Pipeline
	mat   *extract.Matcher // stemmed matcher
	met   model.Metric
	raws  [][]extract.RawReview
	items []*model.Item
	toks  [][]string
}

func buildFixture() *fixture {
	cfg := dataset.DoctorConfig(1)
	cfg.NumItems = 3
	cfg.TotalReviews = 210
	cfg.MinReviews = 60
	cfg.MaxReviews = 80
	c := dataset.Generate(cfg)
	s, err := osars.New(osars.Config{Ontology: c.Ont})
	if err != nil {
		panic(err)
	}
	f := &fixture{
		sum:  s,
		pipe: extract.NewPipeline(extract.NewMatcher(c.Ont), sentiment.Lexicon{}),
		mat:  extract.NewMatcherWithOptions(c.Ont, extract.MatcherOptions{Stem: true}),
		met:  model.Metric{Ont: c.Ont, Epsilon: 0.5},
	}
	for _, it := range c.Items {
		var raws []extract.RawReview
		for _, r := range it.Reviews {
			raws = append(raws, extract.RawReview{ID: r.ID, Text: r.Text, Rating: r.Rating})
		}
		f.raws = append(f.raws, raws)
		f.items = append(f.items, f.pipe.AnnotateItem(it.ID, it.Name, raws))
	}
	for _, r := range c.Items[0].Reviews {
		for _, sent := range text.SplitSentences(r.Text) {
			f.toks = append(f.toks, text.Tokenize(sent))
		}
	}
	return f
}

// bench is one registered benchmark: its body plus the writer count
// recorded into the result metadata (0 = single-threaded).
type bench struct {
	name    string
	writers int
	fn      func(b *testing.B)
}

// benches returns the named benchmark bodies, mirroring the
// BenchmarkCold* set in bench_test.go so `go test -bench Cold` and
// this harness measure the same code paths.
func benches(f *fixture) []bench {
	g := coverage.Build(f.met, f.items[0], model.GranularitySentences)
	sel := summarize.Greedy(g, benchK).Selected
	return []bench{
		{name: "ColdAnnotateItem", fn: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.pipe.AnnotateItem("d", "Doc", f.raws[i%len(f.raws)])
			}
		}},
		{name: "ColdMatcherStemmed", fn: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.mat.MatchTokens(f.toks[i%len(f.toks)])
			}
		}},
		{name: "ColdBuildSentences", fn: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				coverage.Build(f.met, f.items[i%len(f.items)], model.GranularitySentences)
			}
		}},
		{name: "ColdGreedySentences", fn: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				summarize.Greedy(g, benchK)
			}
		}},
		{name: "ColdCostOf", fn: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.CostOf(sel)
			}
		}},
		{name: "ColdSummarize", fn: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j := i % len(f.raws)
				item := f.sum.AnnotateItem("d", "Doc", f.raws[j])
				if _, err := f.sum.Summarize(item, benchK, osars.Sentences, osars.MethodGreedy); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "StoreAppendMem", fn: storeAppendBench(f, false, store.FsyncNever)},
		{name: "StoreAppendWALNoSync", fn: storeAppendBench(f, true, store.FsyncNever)},
		{name: "StoreAppendWALSync", fn: storeAppendBench(f, true, store.FsyncAlways)},
		{name: "ShardMixed1", writers: 16, fn: shardMixedBench(f, 1)},
		{name: "ShardMixed4", writers: 16, fn: shardMixedBench(f, 4)},
		{name: "ShardMixed16", writers: 16, fn: shardMixedBench(f, 16)},
		{name: "GroupCommitSync1", writers: 1, fn: groupCommitBench(f, 1, false)},
		{name: "GroupCommitSync4", writers: 4, fn: groupCommitBench(f, 4, false)},
		{name: "GroupCommitSync16", writers: 16, fn: groupCommitBench(f, 16, false)},
		{name: "GroupCommitSync16Obs", writers: 16, fn: groupCommitBench(f, 16, true)},
		{name: "ReplTail", fn: replTailBench()},
		{name: "ObsHistogramObserve", fn: obsObserveBench()},
		{name: "ColdStoreSummarize", fn: coldStoreSummarizeBench(f, false)},
		{name: "ColdStoreSummarizeObs", fn: coldStoreSummarizeBench(f, true)},
		{name: "AppendThenSummarizeCold", fn: appendThenSummarizeBench(f, true)},
		{name: "AppendThenSummarizeIncremental", fn: appendThenSummarizeBench(f, false)},
	}
}

// appendThenSummarizeBench measures the append→summarize round trip on
// ONE large item — the dashboard-follows-ingest pattern the
// incremental coverage index targets. Each op appends a single review
// and immediately solves a cold (uncached) greedy summary of the grown
// corpus. With the index disabled every op rebuilds the coverage graph
// from all ~1k reviews, so the op is O(corpus); with the index on, the
// append merges only the new review's occurrences and the solve
// warm-starts from the previous selection, so the op is O(delta) plus
// a freeze copy. The summary cache is off (every Summary call would
// miss anyway — the append just bumped the generation — but the
// explicit setting keeps the measurement honest). The item is torn
// down and re-ingested at its base size every recycleEvery ops
// (off-timer) so corpus growth over b.N stays bounded and both
// variants solve the same corpus-size mix; the off-timer warm-up solve
// after each re-ingest keeps the index's one-time O(corpus) rebuild
// out of the measured steady state, which is exactly the amortization
// a serving process sees. The acceptance gate for this PR is
// Incremental ns/op ≤ 1/3 of Cold.
func appendThenSummarizeBench(f *fixture, disableIndex bool) func(b *testing.B) {
	const (
		baseReviews  = 1000
		recycleEvery = 128
	)
	// Synthesize the big corpus from the fixture texts (same ontology
	// and pipeline) with fresh review IDs.
	flat := make([]extract.RawReview, 0, len(f.raws)*len(f.raws[0]))
	for _, rs := range f.raws {
		flat = append(flat, rs...)
	}
	base := make([]extract.RawReview, baseReviews)
	for i := range base {
		base[i] = flat[i%len(flat)]
		base[i].ID = fmt.Sprintf("base-%d", i)
	}
	return func(b *testing.B) {
		cfg := store.Config{
			Metric:               f.met,
			Pipeline:             f.pipe,
			SnapshotEvery:        -1,
			MaxCacheEntries:      -1,
			DisableCoverageIndex: disableIndex,
		}
		st, err := store.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		reingest := func() {
			if _, err := st.Delete("big"); err != nil {
				b.Fatal(err)
			}
			if _, err := st.AppendReviews("big", "Doc", base); err != nil {
				b.Fatal(err)
			}
			// Off-timer warm-up: builds the incremental index (when on)
			// and seeds the warm-start selection.
			if _, _, err := st.Summary("big", benchK, model.GranularitySentences, store.MethodGreedy); err != nil {
				b.Fatal(err)
			}
		}
		reingest()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%recycleEvery == 0 {
				b.StopTimer()
				reingest()
				b.StartTimer()
			}
			rev := flat[i%len(flat)]
			rev.ID = fmt.Sprintf("a-%d", i)
			if _, err := st.AppendReviews("big", "", []extract.RawReview{rev}); err != nil {
				b.Fatal(err)
			}
			if _, _, err := st.Summary("big", benchK, model.GranularitySentences, store.MethodGreedy); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
	}
}

// obsObserveBench measures the metrics hot path in isolation: one
// Histogram.Observe per op over a typical request-latency mix (mostly
// sub-5ms with a slow tail). The observability acceptance bar is
// < 20ns/op and — asserted in CI — exactly 0 allocs/op: an instrument
// cheap enough to leave on unconditionally in every layer.
func obsObserveBench() func(b *testing.B) {
	vals := [...]float64{0.0002, 0.0004, 0.0008, 0.003, 0.0006, 0.0011, 0.0003, 0.02}
	return func(b *testing.B) {
		reg := obs.NewRegistry()
		h := reg.Histogram("bench_seconds", "bench", nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Observe(vals[i%len(vals)])
		}
	}
}

// coldStoreSummarizeBench measures the stateful cold-summary serving
// path — append one review (generation bump), then a cache-missing
// Summary solve — with instrumentation off and on. The pair records
// the observability tax on the solve path in BENCH_coldpath.json; it
// should be lost in the noise (a handful of Observe calls against a
// solve measured in hundreds of microseconds). Pool recycling mirrors
// storeAppendBench so the live corpus stays bounded.
func coldStoreSummarizeBench(f *fixture, instrumented bool) func(b *testing.B) {
	const (
		pool    = 64
		perItem = 16
	)
	return func(b *testing.B) {
		cfg := store.Config{
			Metric:        f.met,
			Pipeline:      f.pipe,
			SnapshotEvery: -1,
		}
		if instrumented {
			cfg.Obs = obs.NewRegistry()
		}
		st, err := store.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		ids := make([]string, pool)
		for i := range ids {
			ids[i] = fmt.Sprintf("item-%d", i)
		}
		rev := f.raws[0][:1]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := ids[(i/perItem)%pool]
			if i%perItem == 0 {
				if _, err := st.Delete(id); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := st.AppendReviews(id, "", rev); err != nil {
				b.Fatal(err)
			}
			if _, _, err := st.Summary(id, benchK, model.GranularitySentences, store.MethodGreedy); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
	}
}

// replTailBench measures the primary-side replication read path: one
// op drains a fresh wal.Tail over a 512-record log spanning several
// segments — the raw-frame reads, CRC re-verification and sequence
// checks a /v1/repl/stream response performs per catch-up. The log is
// built once; every op re-reads it cold from offset 0, so the number
// includes the skip-scan positioning and per-segment file opens a
// reconnecting follower pays.
func replTailBench() func(b *testing.B) {
	const (
		records     = 512
		payloadSize = 256
	)
	return func(b *testing.B) {
		dir, err := os.MkdirTemp("", "osars-bench-repltail-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		l, _, err := wal.Open(dir, wal.Options{SegmentBytes: 32 << 10})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		payload := make([]byte, payloadSize)
		for i := range payload {
			payload[i] = byte('a' + i%26)
		}
		for i := 0; i < records; i++ {
			if _, err := l.Append(payload); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(records * wal.FrameSize(payloadSize)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tail, err := l.TailAfter(0)
			if err != nil {
				b.Fatal(err)
			}
			got := 0
			for {
				_, n, _, err := tail.Next(1 << 20)
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					break
				}
				got += n
			}
			if got != records {
				b.Fatalf("drained %d records, want %d", got, records)
			}
			tail.Close()
		}
		b.StopTimer()
	}
}

// storeAppendBench measures one-review ingestion into the stateful
// store: in-memory (the WAL-off baseline), WAL-on without fsync
// (page-cache durability) and WAL-on with fsync-per-ack (the full
// durability tax). Appends cycle over a fixed pool of item ids and
// each item is recycled (deleted and restarted) after perItem appends,
// so both the live heap and the copy-on-write merge stay bounded: a
// fresh id per iteration makes per-op cost climb with b.N as the GC
// scans an ever-growing corpus, and unbounded appends to pooled items
// grow the merge copy with b.N — either would swamp the logging cost
// being measured. The amortized Delete (1/perItem of ops, itself one
// WAL record in durable mode) is part of the measured steady state.
// Automatic snapshots are disabled so the run isolates the WAL append
// itself.
func storeAppendBench(f *fixture, durable bool, fsync store.FsyncPolicy) func(b *testing.B) {
	const (
		pool    = 1024
		perItem = 16
	)
	return func(b *testing.B) {
		cfg := store.Config{
			Metric:        f.met,
			Pipeline:      f.pipe,
			SnapshotEvery: -1,
		}
		if durable {
			dir, err := os.MkdirTemp("", "osars-bench-wal-")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			cfg.DataDir = dir
			cfg.Fsync = fsync
		}
		st, err := store.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		ids := make([]string, pool)
		for i := range ids {
			ids[i] = fmt.Sprintf("item-%d", i)
		}
		rev := f.raws[0][:1]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := ids[(i/perItem)%pool]
			if i%perItem == 0 {
				if _, err := st.Delete(id); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := st.AppendReviews(id, "", rev); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
	}
}

// groupCommitBench measures aggregate fsync-per-ack ingestion
// throughput at W concurrent writers against ONE unsharded durable
// store — the group-commit payoff in isolation, with no sharding and
// no summary reads mixed in. Every append must be durable before it is
// acknowledged (FsyncAlways); without group commit the W writers would
// serialize W fsyncs per W acks, so ns/op would be flat in W. With the
// commit queue, concurrent writers stage their pre-encoded records and
// share one WAL write + one fsync per batch, so aggregate ns/op (wall
// time over total ops) should drop toward 1/W of the single-writer
// number until the disk's sync latency floors it. GroupCommitSync1 is
// the no-concurrency control: one writer never has anyone to share a
// sync with, so it measures the queue's overhead over the serial path
// (compare StoreAppendWALSync). The acceptance gate for this PR is
// GroupCommitSync16 throughput ≥ 5× the serial single-writer baseline.
// Item pools and delete-recycling mirror storeAppendBench so the live
// heap stays bounded; each writer owns a private id pool, so the only
// shared state is the store itself. instrumented additionally arms a
// metric registry on the store: GroupCommitSync16 vs
// GroupCommitSync16Obs records the observability tax on the hottest
// contended path (a few atomic Observes per commit batch).
func groupCommitBench(f *fixture, writers int, instrumented bool) func(b *testing.B) {
	const (
		perWriter = 64 // ids per writer pool
		perItem   = 16 // appends per item between recycles
	)
	return func(b *testing.B) {
		if writers > 1 {
			// Same GOMAXPROCS floor as shardMixedBench: with fewer Ps
			// than concurrently-returning fsyncs, scheduler handoff
			// dominates the measurement.
			if procs := runtime.GOMAXPROCS(0); procs < benchProcsFloor {
				runtime.GOMAXPROCS(benchProcsFloor)
				defer runtime.GOMAXPROCS(procs)
			}
		}
		dir, err := os.MkdirTemp("", "osars-bench-groupcommit-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		cfg := store.Config{
			Metric:        f.met,
			Pipeline:      f.pipe,
			SnapshotEvery: -1,
			DataDir:       dir,
			Fsync:         store.FsyncAlways,
		}
		if instrumented {
			cfg.Obs = obs.NewRegistry()
		}
		st, err := store.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		rev := f.raws[0][:1]
		var (
			next     atomic.Int64
			errOnce  sync.Once
			firstErr error
			wg       sync.WaitGroup
		)
		fail := func(err error) { errOnce.Do(func() { firstErr = err }) }
		b.ResetTimer()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for n := 0; ; n++ {
					if int(next.Add(1)) > b.N {
						return
					}
					id := fmt.Sprintf("item-%d-%d", w, (n/perItem)%perWriter)
					if n%perItem == 0 {
						if _, err := st.Delete(id); err != nil {
							fail(err)
							return
						}
					}
					if _, err := st.AppendReviews(id, "", rev); err != nil {
						fail(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		b.StopTimer()
		if firstErr != nil {
			b.Fatal(firstErr)
		}
	}
}

// shardMixedBench measures the durable serving path under concurrent
// mixed load — the workload the sharded store exists for — at a given
// shard count. 16 writer goroutines model 16 partitioned ingest
// loaders: each owns a private pool of 16 item ids routed (via
// ShardFor) to shard w mod N, so in-flight operations always land on
// distinct shards up to the shard count. Each worker alternates
// appending a short review with a cold summary read of the same item
// (the append advanced the item's generation, so the cached entry is
// stale by construction — a read-your-writes dashboard pattern), and
// on every 16th full pass over its pool the worker recycles each item
// with a summary followed by a delete, bounding the live corpus and
// the copy-on-write merge. The store runs fsync-per-ack: in the
// 1-shard configuration every acknowledged write serializes behind
// one mutex and one WAL file, so throughput is capped by the serial
// fsync chain with the solve CPU added on top; with N shards the same
// 16 writers hold N independent locks and overlap their fsyncs in the
// kernel (blocking syscalls overlap regardless of core count) while
// summary-solve CPU hides under the other shards' log waits. The
// acceptance gate for the sharded store is ShardMixed16 throughput
// ≥ 4× ShardMixed1.
func shardMixedBench(f *fixture, shards int) func(b *testing.B) {
	const (
		writers   = 16
		perWorker = 16 // ids per worker pool
		perItem   = 16 // full passes over the pool between recycles
		sumEvery  = 2  // every 2nd op reads instead of appending
	)
	return func(b *testing.B) {
		// The workload keeps up to 16 goroutines blocked in fsync at
		// once. With GOMAXPROCS < 4 the runtime has too few Ps to
		// re-dispatch goroutines promptly as their syscalls return and
		// the measurement is dominated by scheduler handoff instead of
		// the store, so raise the floor to 4 for this benchmark. Both
		// the 1-shard and N-shard configurations get the same setting
		// (the serial chain is insensitive to it — one op is in flight
		// at a time), and hardware cores still bound CPU parallelism.
		if procs := runtime.GOMAXPROCS(0); procs < benchProcsFloor {
			runtime.GOMAXPROCS(benchProcsFloor)
			defer runtime.GOMAXPROCS(procs)
		}
		dir, err := os.MkdirTemp("", "osars-bench-shard-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		st, err := shard.New(shard.Config{
			Shards: shards,
			Store: store.Config{
				Metric:        f.met,
				Pipeline:      f.pipe,
				SnapshotEvery: -1,
				DataDir:       dir,
				Fsync:         store.FsyncAlways,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		// Pin each worker's pool to one shard: worker w probes id
		// candidates until perWorker of them route to shard w mod N.
		// (With shards=1 every id routes to shard 0, so all three
		// configurations run the identical op sequence.)
		pools := make([][]string, writers)
		for w := 0; w < writers; w++ {
			want := w % shards
			for n := 0; len(pools[w]) < perWorker; n++ {
				id := fmt.Sprintf("item-%d-%d", w, n)
				if st.ShardFor(id) == want {
					pools[w] = append(pools[w], id)
				}
			}
		}
		rev := []extract.RawReview{{ID: "r", Text: "The staff was friendly and the wait was short."}}
		var (
			next     atomic.Int64
			errOnce  sync.Once
			firstErr error
			wg       sync.WaitGroup
		)
		fail := func(err error) { errOnce.Do(func() { firstErr = err }) }
		b.ResetTimer()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				mine := pools[w]
				for n := 0; ; n++ {
					if int(next.Add(1)) > b.N {
						return
					}
					id := mine[n%perWorker]
					switch {
					case n%(perWorker*perItem) >= perWorker*perItem-perWorker:
						// Recycle pass: cold summary, then delete.
						_, _, err := st.Summary(id, benchK, model.GranularitySentences, store.MethodGreedy)
						if err != nil && !errors.Is(err, store.ErrNotFound) {
							fail(err)
							return
						}
						if _, err := st.Delete(id); err != nil {
							fail(err)
							return
						}
					case n%sumEvery == sumEvery-1:
						if _, _, err := st.Summary(id, benchK, model.GranularitySentences, store.MethodGreedy); err != nil && !errors.Is(err, store.ErrNotFound) {
							fail(err)
							return
						}
					default:
						if _, err := st.AppendReviews(id, "", rev); err != nil {
							fail(err)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		b.StopTimer()
		if firstErr != nil {
			b.Fatal(firstErr)
		}
	}
}

func runMode(out string, short bool, only string) error {
	// testing.Benchmark honours -test.benchtime; register the testing
	// flags so we can shrink it for the CI smoke run.
	benchtime := "1s"
	if short {
		benchtime = "50ms"
	}
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return err
	}
	var filter *regexp.Regexp
	if only != "" {
		var err error
		if filter, err = regexp.Compile(only); err != nil {
			return fmt.Errorf("bad -run regexp: %w", err)
		}
	}
	f := buildFixture()
	file := File{
		Schema:     "osars-bench/v1",
		Generated:  time.Now().UTC(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Short:      short,
	}
	for _, bm := range benches(f) {
		if filter != nil && !filter.MatchString(bm.name) {
			continue
		}
		fn := bm.fn
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			fn(b)
		})
		res := Result{
			Name:        bm.name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Writers:     bm.writers,
		}
		if bm.writers > 0 {
			res.GOMAXPROCS = runtime.GOMAXPROCS(0)
			if bm.writers > 1 && res.GOMAXPROCS < benchProcsFloor {
				res.GOMAXPROCS = benchProcsFloor
			}
		}
		file.Benchmarks = append(file.Benchmarks, res)
		fmt.Printf("%-22s %10d iters  %12.0f ns/op  %8d B/op  %6d allocs/op\n",
			res.Name, res.N, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != "osars-bench/v1" {
		return nil, fmt.Errorf("%s: unknown schema %q", path, f.Schema)
	}
	return &f, nil
}

func compareMode(oldPath, newPath string, tol float64) error {
	oldF, err := load(oldPath)
	if err != nil {
		return err
	}
	newF, err := load(newPath)
	if err != nil {
		return err
	}
	oldBy := map[string]Result{}
	for _, r := range oldF.Benchmarks {
		oldBy[r.Name] = r
	}
	failed := false
	fmt.Printf("%-22s %14s %14s %8s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "verdict")
	for _, n := range newF.Benchmarks {
		o, ok := oldBy[n.Name]
		if !ok {
			fmt.Printf("%-22s %14s %14.0f %8s  new\n", n.Name, "-", n.NsPerOp, "-")
			continue
		}
		delete(oldBy, n.Name)
		ratio := n.NsPerOp/o.NsPerOp - 1
		verdict := "ok"
		if ratio > tol {
			verdict = fmt.Sprintf("FAIL (> %+.0f%% tolerance)", tol*100)
			failed = true
		}
		// Allocs are near-deterministic; allow only jitter from the
		// b.N-dependent fixture mix (2% and at least 2 absolute).
		allocSlack := o.AllocsPerOp / 50
		if allocSlack < 2 {
			allocSlack = 2
		}
		if n.AllocsPerOp > o.AllocsPerOp+allocSlack {
			verdict = fmt.Sprintf("FAIL (allocs %d -> %d)", o.AllocsPerOp, n.AllocsPerOp)
			failed = true
		}
		fmt.Printf("%-22s %14.0f %14.0f %+7.1f%%  %s\n", n.Name, o.NsPerOp, n.NsPerOp, ratio*100, verdict)
	}
	for name := range oldBy {
		fmt.Printf("%-22s missing from %s\n", name, newPath)
		failed = true
	}
	if failed {
		return fmt.Errorf("benchmark regression beyond tolerance %.0f%%", tol*100)
	}
	fmt.Println("all benchmarks within tolerance")
	return nil
}

func main() {
	out := flag.String("o", "BENCH_coldpath.json", "output file for run mode (\"-\" for stdout)")
	short := flag.Bool("short", false, "CI smoke mode: ~50ms per benchmark instead of ~1s")
	only := flag.String("run", "", "run mode: only benchmarks matching this regexp")
	compare := flag.Bool("compare", false, "compare mode: osars-bench -compare OLD.json NEW.json")
	tol := flag.Float64("tol", 0.25, "compare mode: allowed fractional ns/op regression (0.25 = +25%)")
	testing.Init() // registers -test.benchtime before flag.Parse
	flag.Parse()

	var err error
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: osars-bench -compare OLD.json NEW.json [-tol 0.25]")
			os.Exit(2)
		}
		err = compareMode(flag.Arg(0), flag.Arg(1), *tol)
	} else {
		err = runMode(*out, *short, *only)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "osars-bench:", err)
		os.Exit(1)
	}
}
