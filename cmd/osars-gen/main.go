// Command osars-gen generates a synthetic review corpus (the stand-in
// for the paper's vitals.com / Amazon crawls, §5.1) and writes it to
// disk as an ontology JSON plus a JSONL item file:
//
//	osars-gen -domain doctor -scale small -out ./data
//	osars-gen -domain phone  -scale full  -seed 7 -out ./data
//
// With -entry it additionally writes <out>/<domain>-entry.json, an
// osars-ontology/v1 registry entry bundling the domain ontology, the
// built-in opinion lexicon and -eps — ready for
// PUT /v1/ontologies/<domain> on a running osars-serve:
//
//	osars-gen -domain phone -entry -eps 0.5 -out ./data
//	curl -X PUT localhost:8080/v1/ontologies/phone --data-binary @data/phone-entry.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"osars"
	"osars/internal/dataset"
	"osars/internal/sentiment"
)

func main() {
	var (
		domain = flag.String("domain", "phone", "corpus domain: doctor|phone")
		scale  = flag.String("scale", "small", "corpus scale: small|full (full matches Table 1)")
		seed   = flag.Int64("seed", 1, "generation seed")
		outDir = flag.String("out", ".", "output directory")
		entry  = flag.Bool("entry", false, "also write <out>/<domain>-entry.json, an uploadable osars-ontology/v1 registry entry (ontology + built-in lexicon + -eps)")
		eps    = flag.Float64("eps", 0.5, "sentiment threshold ε baked into the -entry file")
	)
	flag.Parse()

	var cfg dataset.CorpusConfig
	switch *domain + "/" + *scale {
	case "doctor/small":
		cfg = dataset.SmallDoctorConfig(*seed)
	case "doctor/full":
		cfg = dataset.DoctorConfig(*seed)
	case "phone/small":
		cfg = dataset.SmallCellPhoneConfig(*seed)
	case "phone/full":
		cfg = dataset.CellPhoneConfig(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown -domain %q / -scale %q\n", *domain, *scale)
		os.Exit(2)
	}

	corpus := dataset.Generate(cfg)
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ontPath := filepath.Join(*outDir, *domain+"-ontology.json")
	itemsPath := filepath.Join(*outDir, *domain+"-items.jsonl")
	if err := dataset.SaveCorpus(corpus, ontPath, itemsPath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stats := dataset.ComputeStats(corpus)
	fmt.Println(stats.Table1Row(*domain + " (" + *scale + ")"))
	fmt.Printf("ontology: %s (%v)\nitems:    %s\n", ontPath, corpus.Ont, itemsPath)

	if *entry {
		// The built-in lexicon is exported explicitly so the entry file is
		// self-contained: its content hash (= registry version) covers the
		// exact word table the server will score with.
		ent, err := osars.NewOntologyEntry(*domain, corpus.Ont, sentiment.SeedOpinionWords(), *eps)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		entryPath := filepath.Join(*outDir, *domain+"-entry.json")
		if err := os.WriteFile(entryPath, append(ent.Payload(), '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("entry:    %s (%s@%s, ε=%.2f)\n", entryPath, ent.Name, ent.Version, *eps)
	}
}
