// Command osars-gen generates a synthetic review corpus (the stand-in
// for the paper's vitals.com / Amazon crawls, §5.1) and writes it to
// disk as an ontology JSON plus a JSONL item file:
//
//	osars-gen -domain doctor -scale small -out ./data
//	osars-gen -domain phone  -scale full  -seed 7 -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"osars/internal/dataset"
)

func main() {
	var (
		domain = flag.String("domain", "phone", "corpus domain: doctor|phone")
		scale  = flag.String("scale", "small", "corpus scale: small|full (full matches Table 1)")
		seed   = flag.Int64("seed", 1, "generation seed")
		outDir = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	var cfg dataset.CorpusConfig
	switch *domain + "/" + *scale {
	case "doctor/small":
		cfg = dataset.SmallDoctorConfig(*seed)
	case "doctor/full":
		cfg = dataset.DoctorConfig(*seed)
	case "phone/small":
		cfg = dataset.SmallCellPhoneConfig(*seed)
	case "phone/full":
		cfg = dataset.CellPhoneConfig(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown -domain %q / -scale %q\n", *domain, *scale)
		os.Exit(2)
	}

	corpus := dataset.Generate(cfg)
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ontPath := filepath.Join(*outDir, *domain+"-ontology.json")
	itemsPath := filepath.Join(*outDir, *domain+"-items.jsonl")
	if err := dataset.SaveCorpus(corpus, ontPath, itemsPath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stats := dataset.ComputeStats(corpus)
	fmt.Println(stats.Table1Row(*domain + " (" + *scale + ")"))
	fmt.Printf("ontology: %s (%v)\nitems:    %s\n", ontPath, corpus.Ont, itemsPath)
}
