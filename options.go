package osars

import (
	"fmt"
	"math/rand"
	"sort"

	"osars/internal/coverage"
	"osars/internal/summarize"
)

// ParseGranularity maps the wire/CLI names to a Granularity:
// "pairs", "sentences" (also ""), "reviews".
func ParseGranularity(s string) (Granularity, error) {
	switch s {
	case "pairs":
		return Pairs, nil
	case "", "sentences":
		return Sentences, nil
	case "reviews":
		return Reviews, nil
	default:
		return 0, fmt.Errorf("osars: unknown granularity %q (want pairs|sentences|reviews)", s)
	}
}

// ParseMethod maps the wire/CLI names to a Method: "greedy" (also ""),
// "rr", "ilp", "local-search".
func ParseMethod(s string) (Method, error) {
	switch s {
	case "", "greedy":
		return MethodGreedy, nil
	case "rr":
		return MethodRR, nil
	case "ilp":
		return MethodILP, nil
	case "local-search":
		return MethodLocalSearch, nil
	default:
		return 0, fmt.Errorf("osars: unknown method %q (want greedy|rr|ilp|local-search)", s)
	}
}

// Options is the expanded request for SummarizeWithOptions, exposing
// the tuning knobs the plain Summarize call defaults away.
type Options struct {
	K           int
	Granularity Granularity
	Method      Method
	// QuantizeGrid, when > 0, merges duplicate pairs after snapping
	// sentiments to this grid before selection (pairs granularity
	// only; see coverage.BuildPairsQuantized). 0 disables.
	QuantizeGrid float64
	// RRTrials, when > 1, uses best-of-N randomized rounding
	// (MethodRR only).
	RRTrials int
}

// SummarizeWithOptions is Summarize with the extension knobs. Selected
// indices always refer to the item's original pair/sentence/review
// order (quantized selections are mapped back to representatives).
func (s *Summarizer) SummarizeWithOptions(item *Item, opt Options) (*Summary, error) {
	if opt.K < 0 {
		return nil, fmt.Errorf("osars: k must be nonnegative, got %d", opt.K)
	}
	if opt.QuantizeGrid == 0 && opt.RRTrials <= 1 {
		return s.Summarize(item, opt.K, opt.Granularity, opt.Method)
	}
	if opt.QuantizeGrid > 0 && opt.Granularity != Pairs {
		return nil, fmt.Errorf("osars: QuantizeGrid applies to the pairs granularity only")
	}

	var graph *coverage.Graph
	var rep []int
	if opt.QuantizeGrid > 0 {
		graph, rep = coverage.BuildPairsQuantized(s.metric, item.Pairs(), opt.QuantizeGrid)
	} else {
		graph = coverage.Build(s.metric, item, opt.Granularity)
	}
	k := opt.K
	if k > graph.NumCandidates {
		k = graph.NumCandidates
	}

	var res *summarize.Result
	var err error
	switch opt.Method {
	case MethodGreedy:
		res = summarize.Greedy(graph, k)
	case MethodRR:
		trials := opt.RRTrials
		if trials < 1 {
			trials = 1
		}
		res, err = summarize.RandomizedRoundingBest(graph, k, trials, rand.New(rand.NewSource(s.seed)), nil)
	case MethodILP:
		res, err = summarize.ILP(graph, k, nil)
	case MethodLocalSearch:
		res = summarize.LocalSearch(graph, k, nil)
	default:
		return nil, fmt.Errorf("osars: unknown method %v", opt.Method)
	}
	if err != nil {
		return nil, err
	}

	selected := res.Selected
	if rep != nil {
		mapped := make([]int, len(selected))
		for i, u := range selected {
			mapped[i] = rep[u]
		}
		sort.Ints(mapped)
		selected = mapped
	}
	out := &Summary{Granularity: opt.Granularity, Method: opt.Method, Cost: res.Cost, Indices: selected}
	switch opt.Granularity {
	case Pairs:
		all := item.Pairs()
		for _, idx := range selected {
			out.Pairs = append(out.Pairs, all[idx])
		}
	case Sentences:
		texts := sentenceTexts(item)
		for _, idx := range selected {
			out.Sentences = append(out.Sentences, texts[idx])
		}
	case Reviews:
		for _, idx := range selected {
			out.ReviewIDs = append(out.ReviewIDs, item.Reviews[idx].ID)
		}
	}
	return out, nil
}
