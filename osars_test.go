package osars

import (
	"strings"
	"testing"

	"osars/internal/dataset"
	"osars/internal/ontology"
)

func testSummarizer(t *testing.T) *Summarizer {
	t.Helper()
	s, err := New(Config{Ontology: dataset.CellPhoneOntology()})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testReviews() []Review {
	return []Review{
		{ID: "r1", Text: "The screen is excellent. The battery is awful. Shipping was slow.", Rating: 0},
		{ID: "r2", Text: "Amazing screen resolution! The battery life is terrible.", Rating: 0},
		{ID: "r3", Text: "Great camera. The price is decent. Screen looks wonderful.", Rating: 0.5},
		{ID: "r4", Text: "The speaker is awful and the battery is bad.", Rating: -1},
		{ID: "r5", Text: "Battery drains overnight which is disappointing.", Rating: -0.5},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil ontology accepted")
	}
	if _, err := New(Config{Ontology: dataset.CellPhoneOntology(), Epsilon: -1}); err == nil {
		t.Fatal("negative epsilon accepted")
	}
	s, err := New(Config{Ontology: dataset.CellPhoneOntology()})
	if err != nil {
		t.Fatal(err)
	}
	if s.Metric().Epsilon != 0.5 {
		t.Fatalf("default epsilon = %v, want 0.5", s.Metric().Epsilon)
	}
}

func TestAnnotateItemExtractsPairs(t *testing.T) {
	s := testSummarizer(t)
	item := s.AnnotateItem("p1", "Phone", testReviews())
	if len(item.Reviews) != 5 {
		t.Fatalf("reviews = %d", len(item.Reviews))
	}
	pairs := item.Pairs()
	if len(pairs) < 8 {
		t.Fatalf("extracted only %d pairs", len(pairs))
	}
	// Both positive screen and negative battery sentiments must appear.
	scr, _ := s.Metric().Ont.Lookup("screen")
	bat, _ := s.Metric().Ont.Lookup("battery")
	var sawPosScreen, sawNegBattery bool
	for _, p := range pairs {
		if p.Concept == scr && p.Sentiment > 0 {
			sawPosScreen = true
		}
		if p.Concept == bat && p.Sentiment < 0 {
			sawNegBattery = true
		}
	}
	if !sawPosScreen || !sawNegBattery {
		t.Fatalf("missing expected pairs (posScreen=%v negBattery=%v)", sawPosScreen, sawNegBattery)
	}
}

func TestSummarizeAllGranularitiesAndMethods(t *testing.T) {
	s := testSummarizer(t)
	item := s.AnnotateItem("p1", "Phone", testReviews())
	for _, g := range []Granularity{Pairs, Sentences, Reviews} {
		for _, m := range []Method{MethodGreedy, MethodRR, MethodILP} {
			sum, err := s.Summarize(item, 3, g, m)
			if err != nil {
				t.Fatalf("%v/%v: %v", g, m, err)
			}
			if len(sum.Indices) != 3 {
				t.Fatalf("%v/%v: %d indices", g, m, len(sum.Indices))
			}
			switch g {
			case Pairs:
				if len(sum.Pairs) != 3 || len(sum.Sentences) != 0 {
					t.Fatalf("%v/%v: wrong payload %+v", g, m, sum)
				}
			case Sentences:
				if len(sum.Sentences) != 3 || len(sum.Pairs) != 0 {
					t.Fatalf("%v/%v: wrong payload %+v", g, m, sum)
				}
			case Reviews:
				if len(sum.ReviewIDs) != 3 {
					t.Fatalf("%v/%v: wrong payload %+v", g, m, sum)
				}
			}
			if sum.Cost < 0 {
				t.Fatalf("%v/%v: negative cost", g, m)
			}
		}
	}
}

func TestSummarizeILPNeverWorse(t *testing.T) {
	s := testSummarizer(t)
	item := s.AnnotateItem("p1", "Phone", testReviews())
	for _, g := range []Granularity{Pairs, Sentences, Reviews} {
		greedy, err := s.Summarize(item, 2, g, MethodGreedy)
		if err != nil {
			t.Fatal(err)
		}
		ilp, err := s.Summarize(item, 2, g, MethodILP)
		if err != nil {
			t.Fatal(err)
		}
		if ilp.Cost > greedy.Cost+1e-9 {
			t.Fatalf("%v: ILP cost %v > greedy %v", g, ilp.Cost, greedy.Cost)
		}
	}
}

func TestSummarizeKClampedAndErrors(t *testing.T) {
	s := testSummarizer(t)
	item := s.AnnotateItem("p1", "Phone", testReviews())
	sum, err := s.Summarize(item, 100, Reviews, MethodGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.ReviewIDs) != 5 {
		t.Fatalf("clamp failed: %d reviews", len(sum.ReviewIDs))
	}
	if _, err := s.Summarize(item, -1, Pairs, MethodGreedy); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, err := s.Summarize(item, 1, Pairs, Method(99)); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestSummaryIsOntologyAware(t *testing.T) {
	// Build an item where "screen" (parent, positive) covers "screen
	// resolution" (positive) — a 2-pair summary should not waste both
	// slots on the redundant screen concepts, but cover battery too.
	s := testSummarizer(t)
	item := s.AnnotateItem("p1", "Phone", []Review{
		{ID: "r1", Text: "The screen is great. The screen resolution is great. The battery is awful."},
		{ID: "r2", Text: "The screen is great. The screen resolution is great. The battery is awful."},
		{ID: "r3", Text: "The battery is awful."},
	})
	sum, err := s.Summarize(item, 2, Pairs, MethodGreedy)
	if err != nil {
		t.Fatal(err)
	}
	scr, _ := s.Metric().Ont.Lookup("screen")
	bat, _ := s.Metric().Ont.Lookup("battery")
	var names []string
	sawScreenSide, sawBattery := false, false
	for _, p := range sum.Pairs {
		names = append(names, s.DescribePair(p))
		if p.Concept == scr {
			sawScreenSide = true
		}
		if p.Concept == bat {
			sawBattery = true
		}
	}
	if !sawScreenSide || !sawBattery {
		t.Fatalf("redundant summary %v: want one screen-side pair and battery", names)
	}
}

func TestDescribePair(t *testing.T) {
	s := testSummarizer(t)
	id, _ := s.Metric().Ont.Lookup("battery")
	got := s.DescribePair(Pair{Concept: id, Sentiment: -0.75})
	if !strings.Contains(got, "battery") || !strings.Contains(got, "-0.75") {
		t.Fatalf("DescribePair = %q", got)
	}
}

func TestMethodString(t *testing.T) {
	if MethodGreedy.String() != "greedy" || MethodRR.String() != "randomized-rounding" || MethodILP.String() != "ilp" {
		t.Fatal("method names wrong")
	}
	if Method(9).String() == "" {
		t.Fatal("unknown method should stringify")
	}
}

func TestCustomOntology(t *testing.T) {
	var b ontology.Builder
	root := b.AddConcept("care")
	b.Child(root, "bedside manner")
	b.Child(root, "wait time", "waiting time")
	ont, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Ontology: ont})
	if err != nil {
		t.Fatal(err)
	}
	item := s.AnnotateItem("d1", "Dr. Example", []Review{
		{ID: "r1", Text: "Wonderful bedside manner. The waiting time was terrible."},
	})
	sum, err := s.Summarize(item, 2, Pairs, MethodGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Pairs) != 2 {
		t.Fatalf("pairs = %v", sum.Pairs)
	}
}

func TestMethodLocalSearch(t *testing.T) {
	s := testSummarizer(t)
	item := s.AnnotateItem("p1", "Phone", testReviews())
	for _, g := range []Granularity{Pairs, Sentences, Reviews} {
		greedy, err := s.Summarize(item, 2, g, MethodGreedy)
		if err != nil {
			t.Fatal(err)
		}
		ls, err := s.Summarize(item, 2, g, MethodLocalSearch)
		if err != nil {
			t.Fatal(err)
		}
		if ls.Cost > greedy.Cost+1e-9 {
			t.Fatalf("%v: local search %v worse than greedy %v", g, ls.Cost, greedy.Cost)
		}
		if len(ls.Indices) != 2 {
			t.Fatalf("%v: selected %v", g, ls.Indices)
		}
	}
	if MethodLocalSearch.String() != "local-search" {
		t.Fatal("method name wrong")
	}
}
