package osars

import "osars/internal/obs"

// MetricsRegistry is the process-wide metric registry exported by the
// observability subsystem (internal/obs): a dependency-free set of
// counters, gauges and fixed-bucket histograms with an atomic hot path
// and Prometheus text exposition. Create one with NewMetricsRegistry,
// hand it to every layer that should register instruments
// (StoreOptions.Metrics, server.ObservabilityConfig, repl follower
// config) and serve it over HTTP via its Handler method — the server
// mounts it on GET /metrics.
//
// All instruments are nil-receiver safe: a nil registry yields nil
// instruments whose methods are no-ops, so instrumented code paths
// never check "is observability on".
type MetricsRegistry = obs.Registry

// NewMetricsRegistry builds an empty metric registry. One registry per
// process: every layer registers into the same namespace
// (osars_<layer>_<name>_<unit>) and one /metrics scrape exposes all of
// it.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }
