package osars_test

import (
	"fmt"
	"log"

	"osars"
	"osars/internal/ontology"
)

// buildOntology constructs the tiny hierarchy the examples share.
func buildOntology() *osars.Ontology {
	var b ontology.Builder
	phone := b.AddConcept("phone")
	screen := b.Child(phone, "screen", "display")
	b.Child(screen, "screen resolution", "resolution")
	b.Child(phone, "battery")
	b.Child(phone, "price", "cost")
	ont, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return ont
}

func reviews() []osars.Review {
	return []osars.Review{
		{ID: "r1", Text: "The screen is excellent. The battery is awful."},
		{ID: "r2", Text: "Amazing resolution! The battery is terrible."},
		{ID: "r3", Text: "The display is wonderful and the price is decent."},
	}
}

// ExampleNew shows minimal configuration: only the ontology is
// required; ε defaults to 0.5 and sentiment to the lexicon scorer.
func ExampleNew() {
	s, err := osars.New(osars.Config{Ontology: buildOntology()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s.Metric().Epsilon)
	// Output: 0.5
}

// ExampleSummarizer_Summarize selects the most representative
// sentences of an item.
func ExampleSummarizer_Summarize() {
	s, err := osars.New(osars.Config{Ontology: buildOntology()})
	if err != nil {
		log.Fatal(err)
	}
	item := s.AnnotateItem("p1", "Acme Phone", reviews())
	sum, err := s.Summarize(item, 2, osars.Sentences, osars.MethodGreedy)
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range sum.Sentences {
		fmt.Println(line)
	}
	// Output:
	// The display is wonderful and the price is decent.
	// The battery is awful.
}

// ExampleSummarizer_Summarize_pairs selects concept-sentiment pairs —
// the most compact summary granularity (§2), suited to small screens.
func ExampleSummarizer_Summarize_pairs() {
	s, err := osars.New(osars.Config{Ontology: buildOntology()})
	if err != nil {
		log.Fatal(err)
	}
	item := s.AnnotateItem("p1", "Acme Phone", reviews())
	sum, err := s.Summarize(item, 2, osars.Pairs, osars.MethodILP)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range sum.Pairs {
		fmt.Println(s.DescribePair(p))
	}
	// Output:
	// screen = +1.00
	// battery = -1.00
}

// ExampleSummarizer_AnnotateItem shows the extraction pipeline output.
func ExampleSummarizer_AnnotateItem() {
	s, err := osars.New(osars.Config{Ontology: buildOntology()})
	if err != nil {
		log.Fatal(err)
	}
	item := s.AnnotateItem("p1", "Acme Phone", reviews())
	fmt.Println(len(item.Reviews), "reviews,", item.NumSentences(), "sentences,", len(item.Pairs()), "pairs")
	// Output: 3 reviews, 5 sentences, 6 pairs
}
