package osars

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"osars/internal/shard"
	"osars/internal/store"
)

// Stateful corpus API: a Store accumulates an item's reviews
// incrementally (only new reviews are annotated), caches solved
// summaries per corpus generation with LRU eviction, and collapses
// concurrent identical reads into one coverage solve. It is the
// library-level counterpart of the server's stateful
// /v1/items endpoints. With StoreOptions.Shards > 1 the corpus is
// partitioned across independent shards (each with its own lock,
// generation counter, summary-cache slice and WAL stream) behind the
// same interface.
type (
	// StoredSummary is a summary computed by a Store; it additionally
	// carries the item's corpus generation and the effective k.
	StoredSummary = store.Summary
	// ItemStats is the externally visible state of one stored item.
	ItemStats = store.ItemStats
	// StoreStats is a snapshot of store-level counters (cache hits,
	// misses, solves, evictions, resident bytes, WAL position, and —
	// for sharded stores — the per-shard breakdown).
	StoreStats = store.Stats
	// StoredMethod is the Store-level algorithm selector; convert from
	// the root Method with StoreMethod.
	StoredMethod = store.Method
	// FsyncPolicy selects when a durable Store forces its write-ahead
	// log to stable storage: FsyncAlways, FsyncInterval or FsyncNever.
	FsyncPolicy = store.FsyncPolicy
	// RecoveryStats reports what OpenStore restored from a data
	// directory (snapshot position, replayed records, truncated torn
	// tail); for a sharded store the counters are summed across shards
	// and the sequence fields are per-shard maxima.
	RecoveryStats = store.RecoveryStats
)

// Store is the stateful corpus: a concurrency-safe collection of
// incrementally annotated items with a generation-aware summary cache.
// Create one with Summarizer.NewStore / Summarizer.OpenStore. Two
// implementations satisfy it: the single-partition store.Store and the
// sharded shard.ShardedStore (StoreOptions.Shards > 1), which routes
// each item to one of N independent partitions by a seeded consistent
// hash so appends and solves on different items stop contending on one
// lock and one WAL stream.
type Store interface {
	// AppendReviews ingests new reviews for the item, creating it if
	// needed; only the new reviews are annotated. On a durable store
	// the raw reviews hit the write-ahead log before the call returns.
	AppendReviews(id, name string, reviews []Review) (ItemStats, error)
	// Item returns the current annotated snapshot and generation
	// (read-only).
	Item(id string) (*Item, uint64, bool)
	// ItemStats returns the stats of one item.
	ItemStats(id string) (ItemStats, bool)
	// List returns the stats of every item, sorted by ID. A sharded
	// store's List is byte-identical to the unsharded store's over the
	// same corpus.
	List() []ItemStats
	// Len returns the number of items.
	Len() int
	// Summary returns the k-unit summary of the item's current corpus;
	// cached reports whether it was answered without a new solve.
	Summary(id string, k int, g Granularity, m StoredMethod) (*StoredSummary, bool, error)
	// Delete removes an item and purges its cached summaries.
	Delete(id string) (bool, error)
	// Stats returns the store-level counters.
	Stats() StoreStats
	// ActivateOntology hot-swaps the active ontology runtime: new
	// requests annotate and solve under rt, in-flight requests finish
	// on the runtime they pinned, and items annotated under the old
	// version re-annotate lazily on their next summarize. On a durable
	// store the activation is logged to the WAL (so it survives restart
	// and ships to replicas), which requires a registry-born runtime;
	// replicas reject local activation with store.ErrReadOnly.
	ActivateOntology(rt *OntologyRuntime) error
	// ActiveRuntime returns the active ontology runtime (never nil).
	ActiveRuntime() *OntologyRuntime
	// Snapshot forces a snapshot + WAL compaction now (no-op for
	// in-memory stores).
	Snapshot() error
	// Sync forces everything logged so far to stable storage (no-op
	// for in-memory stores).
	Sync() error
	// Recovery reports what OpenStore restored from disk; ok is false
	// for in-memory stores.
	Recovery() (RecoveryStats, bool)
	// PersistErr returns the most recent background fsync/snapshot
	// failure, if any.
	PersistErr() error
	// Close flushes the WAL, writes a final snapshot and releases the
	// log (no-op for in-memory stores). Safe to call more than once.
	Close() error
}

// Both corpus implementations satisfy the Store interface.
var (
	_ Store = (*store.Store)(nil)
	_ Store = (*shard.ShardedStore)(nil)
)

// The write-ahead log fsync policies.
const (
	// FsyncAlways syncs before every acknowledgment (default):
	// acknowledged writes survive power loss.
	FsyncAlways = store.FsyncAlways
	// FsyncInterval syncs on a background timer: near-FsyncNever
	// throughput, bounded loss window.
	FsyncInterval = store.FsyncInterval
	// FsyncNever leaves syncing to the OS: survives process crashes,
	// not power loss.
	FsyncNever = store.FsyncNever
)

// ParseFsyncPolicy parses "always", "interval" or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return store.ParseFsyncPolicy(s) }

// ErrItemNotFound is returned by Store reads for unknown item IDs.
var ErrItemNotFound = store.ErrNotFound

// StoreOptions tunes a Store's summary cache, durability and
// partitioning. The zero value is an unsharded in-memory store with
// the default cache budgets (store.DefaultMaxCacheEntries entries,
// 64 MiB).
type StoreOptions struct {
	// MaxCacheEntries bounds the number of cached summaries
	// (default 1024; negative disables caching). In a sharded store
	// the budget is split evenly across shards.
	MaxCacheEntries int
	// MaxCacheBytes bounds the cache's approximate resident size
	// (default 64 MiB; negative means entry-count-only). Split evenly
	// across shards.
	MaxCacheBytes int64

	// DisableCoverageIndex turns off the per-item incremental coverage
	// index that makes append→summarize O(delta): every summary solve
	// rebuilds the coverage graph from scratch (the pre-index
	// behavior). Mainly for benchmarks and incident bisection.
	DisableCoverageIndex bool

	// Shards partitions the corpus across this many independent
	// stores (default/≤1: a single partition). Each shard owns its own
	// lock, generation counter, summary-cache slice and — in durable
	// mode — its own WAL/snapshot directory <DataDir>/shard-NNNN.
	// Items route to shards by a seeded consistent hash of the item
	// ID, which is stable across restarts; a durable sharded data
	// directory is pinned to its layout and cannot be reopened with a
	// different shard count.
	Shards int
	// ShardHashSeed overrides the item-placement hash seed (default
	// shard.DefaultHashSeed). Rarely needed; changing it on an
	// existing durable directory is refused.
	ShardHashSeed uint64

	// DataDir makes the store durable: ingestion is written to a
	// segmented write-ahead log under this directory before it is
	// acknowledged, snapshots bound recovery time, and OpenStore
	// restores latest-snapshot-then-replay. Empty means in-memory.
	DataDir string
	// Fsync selects the WAL flush policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the flush period under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// SnapshotEvery writes a snapshot and compacts the WAL after this
	// many logged records per shard (default 4096; negative disables
	// automatic snapshots).
	SnapshotEvery int
	// WALSegmentBytes is the WAL segment rotation threshold
	// (default 8 MiB).
	WALSegmentBytes int64

	// Replica opens the store as a read-only replica: AppendReviews and
	// Delete fail with store.ErrReadOnly, and state advances only
	// through a replication follower (internal/repl) applying WAL
	// records shipped from a primary. Reads and summaries serve
	// normally. Combine with DataDir so the replica resumes from its
	// last applied sequence after a restart.
	Replica bool

	// Metrics, when non-nil, registers the store's instruments (append
	// and solve latency histograms, cache hit/miss/eviction counters,
	// group-commit batch sizes, WAL fsync/bytes/rotation series) in the
	// given registry. In a sharded store every series carries a "shard"
	// label. Nil leaves the store uninstrumented at zero cost.
	Metrics *MetricsRegistry
}

// NewStore builds an in-memory stateful corpus sharing this
// Summarizer's ontology, metric, extraction pipeline and RNG seed.
// For a durable store (StoreOptions.DataDir) use OpenStore, which can
// report recovery I/O errors; NewStore panics on them.
//
// Store methods take the StoredMethod type; convert from the root
// Method with StoreMethod, or use the string names via ParseMethod on
// the wire.
func (s *Summarizer) NewStore(opts StoreOptions) Store {
	st, err := s.OpenStore(opts)
	if err != nil {
		// Only reachable with a DataDir that fails to open/recover or
		// an invalid shard count: a Summarizer built by New always
		// carries a non-nil ontology and pipeline.
		panic(fmt.Sprintf("osars: NewStore: %v", err))
	}
	return st
}

// OpenStore builds a stateful corpus, durable when opts.DataDir is
// set: previous state is recovered from the newest valid snapshot
// plus a write-ahead-log replay (Store.Recovery reports what was
// restored), and every subsequent acknowledged write survives a
// restart. With opts.Shards > 1 the corpus is partitioned across that
// many independent shards (recovered in parallel at boot). Call
// Store.Close on shutdown to flush the log(s) and write final
// snapshots.
func (s *Summarizer) OpenStore(opts StoreOptions) (Store, error) {
	cfg := store.Config{
		Metric:               s.metric,
		Pipeline:             s.pipeline,
		Runtime:              s.rt,
		Seed:                 s.seed,
		MaxCacheEntries:      opts.MaxCacheEntries,
		MaxCacheBytes:        opts.MaxCacheBytes,
		DisableCoverageIndex: opts.DisableCoverageIndex,
		DataDir:              opts.DataDir,
		Fsync:                opts.Fsync,
		FsyncInterval:        opts.FsyncInterval,
		SnapshotEvery:        opts.SnapshotEvery,
		SegmentBytes:         opts.WALSegmentBytes,
		Replica:              opts.Replica,
		Obs:                  opts.Metrics,
	}
	if opts.Shards > 1 {
		return shard.New(shard.Config{
			Shards:   opts.Shards,
			HashSeed: opts.ShardHashSeed,
			Store:    cfg,
		})
	}
	return store.New(cfg)
}

// StoreMethod converts a root Method to the Store's method type.
func StoreMethod(m Method) (StoredMethod, error) {
	switch m {
	case MethodGreedy:
		return store.MethodGreedy, nil
	case MethodRR:
		return store.MethodRR, nil
	case MethodILP:
		return store.MethodILP, nil
	case MethodLocalSearch:
		return store.MethodLocalSearch, nil
	default:
		return 0, fmt.Errorf("osars: unknown method %v", m)
	}
}

// SummarizeStored is a convenience wrapper: it summarizes a stored
// item using the root package's Method type.
func SummarizeStored(st Store, id string, k int, g Granularity, m Method) (*StoredSummary, bool, error) {
	sm, err := StoreMethod(m)
	if err != nil {
		return nil, false, err
	}
	return st.Summary(id, k, g, sm)
}

// StoredBatchRequest asks for one stored item's summary inside
// SummarizeStoredBatchCtx.
type StoredBatchRequest struct {
	ID          string
	K           int
	Granularity Granularity
	Method      Method
}

// StoredBatchResult pairs a stored-batch request's summary with its
// error; Cached reports whether the summary was answered without a
// new coverage solve.
type StoredBatchResult struct {
	Summary *StoredSummary
	Cached  bool
	Err     error
}

// SummarizeStoredBatchCtx summarizes many stored items concurrently
// with a bounded worker pool, returning results aligned with the
// requests. Against a sharded store the per-item solves fan out across
// shards: each worker's Summary call routes to the owning shard, so
// no two items on different shards contend on the same lock or cache.
// workers ≤ 0 uses GOMAXPROCS. When ctx fires, in-flight solves run
// to completion and every unprocessed slot carries ctx.Err().
func SummarizeStoredBatchCtx(ctx context.Context, st Store, reqs []StoredBatchRequest, workers int) []StoredBatchResult {
	results := make([]StoredBatchResult, len(reqs))
	if len(reqs) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					results[i] = StoredBatchResult{Err: err}
					continue
				}
				sum, cached, err := SummarizeStored(st, reqs[i].ID, reqs[i].K, reqs[i].Granularity, reqs[i].Method)
				results[i] = StoredBatchResult{Summary: sum, Cached: cached, Err: err}
			}
		}()
	}
dispatch:
	for i := range reqs {
		select {
		case <-ctx.Done():
			for j := i; j < len(reqs); j++ {
				results[j] = StoredBatchResult{Err: ctx.Err()}
			}
			break dispatch
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	return results
}
