package osars

import (
	"fmt"
	"time"

	"osars/internal/store"
)

// Stateful corpus API: a Store accumulates an item's reviews
// incrementally (only new reviews are annotated), caches solved
// summaries per corpus generation with LRU eviction, and collapses
// concurrent identical reads into one coverage solve. It is the
// library-level counterpart of the server's stateful
// /v1/items endpoints.
type (
	// Store is the in-memory, concurrency-safe corpus of annotated
	// items with a generation-aware summary cache. Create one with
	// Summarizer.NewStore.
	Store = store.Store
	// StoredSummary is a summary computed by a Store; it additionally
	// carries the item's corpus generation and the effective k.
	StoredSummary = store.Summary
	// ItemStats is the externally visible state of one stored item.
	ItemStats = store.ItemStats
	// StoreStats is a snapshot of store-level counters (cache hits,
	// misses, solves, evictions, resident bytes, WAL position).
	StoreStats = store.Stats
	// FsyncPolicy selects when a durable Store forces its write-ahead
	// log to stable storage: FsyncAlways, FsyncInterval or FsyncNever.
	FsyncPolicy = store.FsyncPolicy
	// RecoveryStats reports what OpenStore restored from a data
	// directory (snapshot position, replayed records, truncated torn
	// tail).
	RecoveryStats = store.RecoveryStats
)

// The write-ahead log fsync policies.
const (
	// FsyncAlways syncs before every acknowledgment (default):
	// acknowledged writes survive power loss.
	FsyncAlways = store.FsyncAlways
	// FsyncInterval syncs on a background timer: near-FsyncNever
	// throughput, bounded loss window.
	FsyncInterval = store.FsyncInterval
	// FsyncNever leaves syncing to the OS: survives process crashes,
	// not power loss.
	FsyncNever = store.FsyncNever
)

// ParseFsyncPolicy parses "always", "interval" or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return store.ParseFsyncPolicy(s) }

// ErrItemNotFound is returned by Store reads for unknown item IDs.
var ErrItemNotFound = store.ErrNotFound

// StoreOptions tunes a Store's summary cache and durability. The zero
// value is an in-memory store with the default cache budgets
// (store.DefaultMaxCacheEntries entries, 64 MiB).
type StoreOptions struct {
	// MaxCacheEntries bounds the number of cached summaries
	// (default 1024; negative disables caching).
	MaxCacheEntries int
	// MaxCacheBytes bounds the cache's approximate resident size
	// (default 64 MiB; negative means entry-count-only).
	MaxCacheBytes int64

	// DataDir makes the store durable: ingestion is written to a
	// segmented write-ahead log under this directory before it is
	// acknowledged, snapshots bound recovery time, and OpenStore
	// restores latest-snapshot-then-replay. Empty means in-memory.
	DataDir string
	// Fsync selects the WAL flush policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the flush period under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// SnapshotEvery writes a snapshot and compacts the WAL after this
	// many logged records (default 4096; negative disables automatic
	// snapshots).
	SnapshotEvery int
	// WALSegmentBytes is the WAL segment rotation threshold
	// (default 8 MiB).
	WALSegmentBytes int64
}

// NewStore builds an in-memory stateful corpus sharing this
// Summarizer's ontology, metric, extraction pipeline and RNG seed.
// For a durable store (StoreOptions.DataDir) use OpenStore, which can
// report recovery I/O errors; NewStore panics on them.
//
// Store methods take the store's own Method type; convert from the
// root Method with StoreMethod, or use the string names via
// ParseMethod on the wire.
func (s *Summarizer) NewStore(opts StoreOptions) *Store {
	st, err := s.OpenStore(opts)
	if err != nil {
		// Only reachable with a DataDir that fails to open/recover: a
		// Summarizer built by New always carries a non-nil ontology
		// and pipeline.
		panic(fmt.Sprintf("osars: NewStore: %v", err))
	}
	return st
}

// OpenStore builds a stateful corpus, durable when opts.DataDir is
// set: previous state is recovered from the newest valid snapshot
// plus a write-ahead-log replay (Store.Recovery reports what was
// restored), and every subsequent acknowledged write survives a
// restart. Call Store.Close on shutdown to flush the log and write a
// final snapshot.
func (s *Summarizer) OpenStore(opts StoreOptions) (*Store, error) {
	return store.New(store.Config{
		Metric:          s.metric,
		Pipeline:        s.pipeline,
		Seed:            s.seed,
		MaxCacheEntries: opts.MaxCacheEntries,
		MaxCacheBytes:   opts.MaxCacheBytes,
		DataDir:         opts.DataDir,
		Fsync:           opts.Fsync,
		FsyncInterval:   opts.FsyncInterval,
		SnapshotEvery:   opts.SnapshotEvery,
		SegmentBytes:    opts.WALSegmentBytes,
	})
}

// StoreMethod converts a root Method to the Store's method type.
func StoreMethod(m Method) (store.Method, error) {
	switch m {
	case MethodGreedy:
		return store.MethodGreedy, nil
	case MethodRR:
		return store.MethodRR, nil
	case MethodILP:
		return store.MethodILP, nil
	case MethodLocalSearch:
		return store.MethodLocalSearch, nil
	default:
		return 0, fmt.Errorf("osars: unknown method %v", m)
	}
}

// SummarizeStored is a convenience wrapper: it summarizes a stored
// item using the root package's Method type.
func SummarizeStored(st *Store, id string, k int, g Granularity, m Method) (*StoredSummary, bool, error) {
	sm, err := StoreMethod(m)
	if err != nil {
		return nil, false, err
	}
	return st.Summary(id, k, g, sm)
}
