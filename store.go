package osars

import (
	"fmt"

	"osars/internal/store"
)

// Stateful corpus API: a Store accumulates an item's reviews
// incrementally (only new reviews are annotated), caches solved
// summaries per corpus generation with LRU eviction, and collapses
// concurrent identical reads into one coverage solve. It is the
// library-level counterpart of the server's stateful
// /v1/items endpoints.
type (
	// Store is the in-memory, concurrency-safe corpus of annotated
	// items with a generation-aware summary cache. Create one with
	// Summarizer.NewStore.
	Store = store.Store
	// StoredSummary is a summary computed by a Store; it additionally
	// carries the item's corpus generation and the effective k.
	StoredSummary = store.Summary
	// ItemStats is the externally visible state of one stored item.
	ItemStats = store.ItemStats
	// StoreStats is a snapshot of store-level counters (cache hits,
	// misses, solves, evictions, resident bytes).
	StoreStats = store.Stats
)

// ErrItemNotFound is returned by Store reads for unknown item IDs.
var ErrItemNotFound = store.ErrNotFound

// StoreOptions tunes a Store's summary cache. The zero value uses the
// defaults (store.DefaultMaxCacheEntries entries, 64 MiB).
type StoreOptions struct {
	// MaxCacheEntries bounds the number of cached summaries
	// (default 1024; negative disables caching).
	MaxCacheEntries int
	// MaxCacheBytes bounds the cache's approximate resident size
	// (default 64 MiB; negative means entry-count-only).
	MaxCacheBytes int64
}

// NewStore builds an empty stateful corpus sharing this Summarizer's
// ontology, metric, extraction pipeline and RNG seed.
//
// Store methods take the store's own Method type; convert from the
// root Method with StoreMethod, or use the string names via
// ParseMethod on the wire.
func (s *Summarizer) NewStore(opts StoreOptions) *Store {
	st, err := store.New(store.Config{
		Metric:          s.metric,
		Pipeline:        s.pipeline,
		Seed:            s.seed,
		MaxCacheEntries: opts.MaxCacheEntries,
		MaxCacheBytes:   opts.MaxCacheBytes,
	})
	if err != nil {
		// Unreachable: a Summarizer built by New always carries a
		// non-nil ontology and pipeline.
		panic(fmt.Sprintf("osars: NewStore: %v", err))
	}
	return st
}

// StoreMethod converts a root Method to the Store's method type.
func StoreMethod(m Method) (store.Method, error) {
	switch m {
	case MethodGreedy:
		return store.MethodGreedy, nil
	case MethodRR:
		return store.MethodRR, nil
	case MethodILP:
		return store.MethodILP, nil
	case MethodLocalSearch:
		return store.MethodLocalSearch, nil
	default:
		return 0, fmt.Errorf("osars: unknown method %v", m)
	}
}

// SummarizeStored is a convenience wrapper: it summarizes a stored
// item using the root package's Method type.
func SummarizeStored(st *Store, id string, k int, g Granularity, m Method) (*StoredSummary, bool, error) {
	sm, err := StoreMethod(m)
	if err != nil {
		return nil, false, err
	}
	return st.Summary(id, k, g, sm)
}
