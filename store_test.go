package osars

import (
	"errors"
	"testing"

	"osars/internal/dataset"
)

func storeFixture(t *testing.T) (*Summarizer, Store) {
	t.Helper()
	s, err := New(Config{Ontology: dataset.CellPhoneOntology()})
	if err != nil {
		t.Fatal(err)
	}
	return s, s.NewStore(StoreOptions{})
}

var storeReviews = []Review{
	{ID: "r1", Text: "The screen is excellent. The battery is awful."},
	{ID: "r2", Text: "Amazing screen resolution! The battery life is terrible."},
	{ID: "r3", Text: "Great camera and a decent price."},
}

func TestStoreRoundTrip(t *testing.T) {
	_, st := storeFixture(t)
	stats, err := st.AppendReviews("p1", "Acme Phone", storeReviews)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NumReviews != 3 || stats.NumPairs == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	sum, cached, err := SummarizeStored(st, "p1", 2, Sentences, MethodGreedy)
	if err != nil || cached {
		t.Fatalf("first read: cached=%v err=%v", cached, err)
	}
	if len(sum.Sentences) != 2 || sum.Generation != stats.Generation {
		t.Fatalf("summary = %+v", sum)
	}
	if _, cached, _ = SummarizeStored(st, "p1", 2, Sentences, MethodGreedy); !cached {
		t.Fatal("second read not cached")
	}
	if _, _, err := SummarizeStored(st, "zzz", 2, Sentences, MethodGreedy); !errors.Is(err, ErrItemNotFound) {
		t.Fatalf("missing item err = %v", err)
	}
	if deleted, err := st.Delete("p1"); !deleted || err != nil || st.Len() != 0 {
		t.Fatalf("delete = (%v, %v), len = %d", deleted, err, st.Len())
	}
}

// TestStoreMatchesStateless pins the contract that a stored item's
// summary is identical to the stateless path's over the same corpus:
// incremental annotation must not change the result.
func TestStoreMatchesStateless(t *testing.T) {
	s, st := storeFixture(t)
	// Ingest incrementally in two batches.
	st.AppendReviews("p1", "Acme", storeReviews[:1])
	st.AppendReviews("p1", "", storeReviews[1:])

	item := s.AnnotateItem("p1", "Acme", storeReviews)
	for _, g := range []Granularity{Pairs, Sentences, Reviews} {
		for _, m := range []Method{MethodGreedy, MethodILP, MethodLocalSearch} {
			want, err := s.Summarize(item, 2, g, m)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := SummarizeStored(st, "p1", 2, g, m)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cost != want.Cost {
				t.Fatalf("%v/%v: stored cost %v != stateless cost %v", g, m, got.Cost, want.Cost)
			}
			if len(got.Indices) != len(want.Indices) {
				t.Fatalf("%v/%v: stored %v != stateless %v", g, m, got.Indices, want.Indices)
			}
		}
	}
}

func TestStoreMethodConversion(t *testing.T) {
	for _, m := range []Method{MethodGreedy, MethodRR, MethodILP, MethodLocalSearch} {
		sm, err := StoreMethod(m)
		if err != nil {
			t.Fatal(err)
		}
		if sm.String() != m.String() {
			t.Fatalf("name drift: %v vs %v", sm, m)
		}
	}
	if _, err := StoreMethod(Method(99)); err == nil {
		t.Fatal("bad method accepted")
	}
}
