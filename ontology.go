package osars

import (
	"osars/internal/ontoreg"
)

// Ontology lifecycle API: named, content-hash-versioned bundles of
// (ontology, opinion lexicon, ε) that can be registered, persisted,
// hot-activated on a running Store and replicated to followers. See
// internal/ontoreg for the format and swap semantics.
type (
	// OntologyEntry is one validated ontology bundle: name + ε +
	// concept DAG + graded opinion lexicon, versioned by a content hash
	// over its canonical JSON encoding.
	OntologyEntry = ontoreg.Entry
	// OntologyRuntime is an entry compiled for serving (metric +
	// extraction pipeline + version identity). Stores swap the active
	// one atomically; in-flight requests finish on the runtime they
	// started with.
	OntologyRuntime = ontoreg.Runtime
	// OntologyRegistry holds named entries, addressable as "name"
	// (latest) or "name@version", with optional directory persistence.
	OntologyRegistry = ontoreg.Registry
	// OntologyRegistryOptions configures an OntologyRegistry
	// (persistence directory, metrics registry).
	OntologyRegistryOptions = ontoreg.RegistryOptions
	// OntologyEntryInfo is one registry listing row.
	OntologyEntryInfo = ontoreg.EntryInfo
)

// OntologyEntrySchema identifies the entry file format
// ("osars-ontology/v1").
const OntologyEntrySchema = ontoreg.Schema

// NewOntologyRegistry builds an ontology registry. With a persistence
// directory set, call LoadDir afterwards to restore previously
// registered entries.
func NewOntologyRegistry(opts OntologyRegistryOptions) *OntologyRegistry {
	return ontoreg.NewRegistry(opts)
}

// NewOntologyEntry validates and canonicalizes an in-process ontology
// bundle: epsilon 0 means the default (0.5), a nil lexicon means the
// built-in opinion-word table.
func NewOntologyEntry(name string, ont *Ontology, lexicon map[string]float64, epsilon float64) (*OntologyEntry, error) {
	return ontoreg.NewEntry(name, ont, lexicon, epsilon)
}

// DecodeOntologyEntry parses and validates an entry file (the
// osars-ontology/v1 JSON format). Cyclic, multi-root or otherwise
// invalid ontologies and out-of-range lexicon polarities are rejected
// here, before anything can be registered or activated.
func DecodeOntologyEntry(data []byte) (*OntologyEntry, error) {
	return ontoreg.Decode(data)
}
