// Quickstart: summarize a handful of phone reviews with the public
// API in ~30 lines. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"osars"
	"osars/internal/ontology"
)

func main() {
	// 1. A domain concept hierarchy. Here a tiny hand-built one; use
	// dataset.CellPhoneOntology() for the paper's Fig 3 hierarchy.
	var b ontology.Builder
	phone := b.AddConcept("phone")
	screen := b.Child(phone, "screen", "display")
	b.Child(screen, "screen resolution", "resolution")
	b.Child(phone, "battery")
	b.Child(phone, "price", "cost")
	ont, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. A summarizer with default settings (ε = 0.5, lexicon
	// sentiment).
	s, err := osars.New(osars.Config{Ontology: ont})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Annotate raw reviews: sentence split → concept match →
	// sentiment estimate.
	item := s.AnnotateItem("p1", "Acme Phone", []osars.Review{
		{ID: "r1", Text: "The screen is excellent. The battery is awful."},
		{ID: "r2", Text: "Amazing resolution! But the battery is terrible."},
		{ID: "r3", Text: "The display is wonderful and the price is decent."},
		{ID: "r4", Text: "Battery died after a day, very disappointing."},
		{ID: "r5", Text: "The cost was fair. Screen looks great."},
	})
	fmt.Printf("extracted %d concept-sentiment pairs from %d sentences\n\n",
		len(item.Pairs()), item.NumSentences())

	// 4. Select the 2 most representative sentences.
	sum, err := s.Summarize(item, 2, osars.Sentences, osars.MethodGreedy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best %d sentences (coverage cost %.0f):\n", len(sum.Sentences), sum.Cost)
	for i, line := range sum.Sentences {
		fmt.Printf("  %d. %s\n", i+1, line)
	}

	// 5. Or the 3 most representative concept-sentiment pairs.
	pairs, err := s.Summarize(item, 3, osars.Pairs, osars.MethodGreedy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbest 3 concept-sentiment pairs:")
	for i, p := range pairs.Pairs {
		fmt.Printf("  %d. %s\n", i+1, s.DescribePair(p))
	}
}
