// Threshold tuning: the §5.3 elbow-method procedure for picking the
// sentiment threshold ε of Definition 1. Sweeps ε over a grid, plots
// the covered-pair rate as ASCII, and marks the selected elbow. Run
// with:
//
//	go run ./examples/thresholdtuning
package main

import (
	"fmt"
	"strings"

	"osars/internal/dataset"
	"osars/internal/eval"
	"osars/internal/extract"
	"osars/internal/model"
	"osars/internal/sentiment"
)

func main() {
	corpus := dataset.Generate(dataset.SmallDoctorConfig(99))
	pipe := extract.NewPipeline(extract.NewMatcher(corpus.Ont), sentiment.Lexicon{})
	metric := model.Metric{Ont: corpus.Ont, Epsilon: 0.5}

	grid := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	avg := make([]float64, len(grid))
	nItems := 6
	for _, raw := range corpus.Items[:nItems] {
		var raws []extract.RawReview
		for _, r := range raw.Reviews {
			raws = append(raws, extract.RawReview{ID: r.ID, Text: r.Text, Rating: r.Rating})
		}
		item := pipe.AnnotateItem(raw.ID, raw.Name, raws)
		rates := eval.EpsilonSweep(metric, item.Pairs(), 10, grid)
		for i, r := range rates {
			avg[i] += r
		}
	}
	for i := range avg {
		avg[i] /= float64(nItems)
	}

	elbowIdx := eval.Elbow(grid, avg)
	fmt.Println("covered-pair rate of a k=10 greedy summary vs sentiment threshold ε")
	fmt.Println("(the elbow is where widening ε stops buying coverage — §5.3)")
	fmt.Println()
	maxRate := avg[len(avg)-1]
	for i, e := range grid {
		barLen := 0
		if maxRate > 0 {
			barLen = int(avg[i] / maxRate * 50)
		}
		marker := ""
		if i == elbowIdx {
			marker = "  ← selected ε"
		}
		fmt.Printf("ε=%.1f %6.1f%% |%s%s\n", e, avg[i]*100, strings.Repeat("█", barLen), marker)
	}
	fmt.Printf("\nselected ε = %.1f (the paper's elbow lands at 0.5 on its data)\n", grid[elbowIdx])
	fmt.Println("intuition: a very positive pair (+1.0) may stand for a positive one (+0.5),")
	fmt.Println("but not for a negative one — ε bounds that substitution.")
}
