// Local services: restaurant reviews (the domain of the
// Blair-Goldensohn "proportional" baseline), showing three extensions
// working together: the restaurant aspect hierarchy, automatic
// hierarchy induction from extracted aspects (what the paper did by
// hand for Fig 3), and the local-search method. Run with:
//
//	go run ./examples/localservices
package main

import (
	"fmt"
	"log"

	"osars"
	"osars/internal/dataset"
	"osars/internal/extract"
	"osars/internal/text"
)

func main() {
	corpus := dataset.Generate(dataset.SmallRestaurantConfig(21))
	fmt.Println(dataset.ComputeStats(corpus).Table1Row("restaurant corpus"))

	// Pick the busiest venue.
	best := 0
	for i := range corpus.Items {
		if len(corpus.Items[i].Reviews) > len(corpus.Items[best].Reviews) {
			best = i
		}
	}
	raw := corpus.Items[best]
	var reviews []osars.Review
	for _, r := range raw.Reviews {
		reviews = append(reviews, osars.Review{ID: r.ID, Text: r.Text, Rating: r.Rating})
	}

	// 1. Summarize with the curated restaurant hierarchy.
	curated, err := osars.New(osars.Config{Ontology: corpus.Ont})
	if err != nil {
		log.Fatal(err)
	}
	item := curated.AnnotateItem(raw.ID, raw.Name, reviews)
	fmt.Printf("\n=== %s with the curated hierarchy (%v) ===\n", raw.Name, corpus.Ont)
	sum, err := curated.Summarize(item, 4, osars.Sentences, osars.MethodLocalSearch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local-search summary (cost %.0f):\n", sum.Cost)
	for i, line := range sum.Sentences {
		fmt.Printf("  %d. %s\n", i+1, line)
	}

	// 2. Pretend no hierarchy exists: extract aspects with double
	// propagation and induce one automatically.
	var sentences [][]string
	for _, r := range raw.Reviews {
		for _, s := range text.SplitSentences(r.Text) {
			sentences = append(sentences, text.Tokenize(s))
		}
	}
	aspects := extract.DoublePropagation(sentences, extract.DPOptions{MinSupport: 3, MaxAspects: 100})
	induced, err := extract.InduceHierarchy("restaurant", aspects)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== same venue with an automatically induced hierarchy (%v) ===\n", induced)
	fmt.Printf("top extracted aspects: ")
	for i, a := range aspects {
		if i == 8 {
			break
		}
		fmt.Printf("%s(%d) ", a.Term, a.Freq)
	}
	fmt.Println()

	auto, err := osars.New(osars.Config{Ontology: induced})
	if err != nil {
		log.Fatal(err)
	}
	item2 := auto.AnnotateItem(raw.ID, raw.Name, reviews)
	sum2, err := auto.Summarize(item2, 4, osars.Pairs, osars.MethodGreedy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy pair summary over the induced hierarchy (cost %.0f):\n", sum2.Cost)
	for i, p := range sum2.Pairs {
		fmt.Printf("  %d. %s\n", i+1, auto.DescribePair(p))
	}
}
