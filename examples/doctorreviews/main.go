// Doctor reviews: the paper's primary scenario (§5.1-5.2). Generates a
// synthetic vitals.com-style corpus over a SNOMED-CT-like hierarchy,
// then summarizes one doctor at all three granularities with all three
// algorithms, comparing cost and time. Run with:
//
//	go run ./examples/doctorreviews
package main

import (
	"fmt"
	"log"
	"time"

	"osars"
	"osars/internal/dataset"
)

func main() {
	// Generate a small doctor corpus (use dataset.DoctorConfig for the
	// full 68,686-review Table 1 corpus).
	corpus := dataset.Generate(dataset.SmallDoctorConfig(42))
	fmt.Println(dataset.ComputeStats(corpus).Table1Row("doctor corpus"))
	fmt.Printf("ontology: %v\n\n", corpus.Ont)

	s, err := osars.New(osars.Config{Ontology: corpus.Ont, Epsilon: 0.5})
	if err != nil {
		log.Fatal(err)
	}

	// Pick the most-reviewed doctor.
	best := 0
	for i := range corpus.Items {
		if len(corpus.Items[i].Reviews) > len(corpus.Items[best].Reviews) {
			best = i
		}
	}
	raw := corpus.Items[best]
	var reviews []osars.Review
	for _, r := range raw.Reviews {
		reviews = append(reviews, osars.Review{ID: r.ID, Text: r.Text, Rating: r.Rating})
	}
	item := s.AnnotateItem(raw.ID, raw.Name, reviews)
	fmt.Printf("summarizing %s: %d reviews, %d sentences, %d pairs\n\n",
		raw.Name, len(item.Reviews), item.NumSentences(), len(item.Pairs()))

	const k = 5
	for _, g := range []osars.Granularity{osars.Pairs, osars.Sentences, osars.Reviews} {
		fmt.Printf("--- top %d %s ---\n", k, g)
		for _, m := range []osars.Method{osars.MethodILP, osars.MethodRR, osars.MethodGreedy} {
			start := time.Now()
			sum, err := s.Summarize(item, k, g, m)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-20s cost %8.0f   in %10s\n", m, sum.Cost, time.Since(start).Round(time.Microsecond))
		}
		// Show the greedy summary's content.
		sum, err := s.Summarize(item, k, g, osars.MethodGreedy)
		if err != nil {
			log.Fatal(err)
		}
		switch g {
		case osars.Pairs:
			for i, p := range sum.Pairs {
				fmt.Printf("  %d. %s\n", i+1, s.DescribePair(p))
			}
		case osars.Sentences:
			for i, line := range sum.Sentences {
				fmt.Printf("  %d. %s\n", i+1, line)
			}
		case osars.Reviews:
			for i, id := range sum.ReviewIDs {
				fmt.Printf("  %d. review %s\n", i+1, id)
			}
		}
		fmt.Println()
	}
}
