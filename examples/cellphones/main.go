// Cell phones: the paper's qualitative scenario (§5.3). Generates an
// Amazon-style phone corpus over the Fig 3 aspect hierarchy and pits
// the greedy summarizer against the five baselines on the sent-err
// measures. Run with:
//
//	go run ./examples/cellphones
package main

import (
	"fmt"
	"log"

	"osars/internal/baselines"
	"osars/internal/dataset"
	"osars/internal/eval"
	"osars/internal/extract"
	"osars/internal/model"
	"osars/internal/sentiment"
)

func main() {
	corpus := dataset.Generate(dataset.SmallCellPhoneConfig(7))
	fmt.Println(dataset.ComputeStats(corpus).Table1Row("cell phone corpus"))
	fmt.Printf("Fig 3 hierarchy: %v\n\n", corpus.Ont)

	metric := model.Metric{Ont: corpus.Ont, Epsilon: 0.5}
	pipe := extract.NewPipeline(extract.NewMatcher(corpus.Ont), sentiment.Lexicon{})

	// Annotate a few phones.
	var items []*model.Item
	for _, raw := range corpus.Items[:4] {
		reviews := raw.Reviews
		if len(reviews) > 40 {
			reviews = reviews[:40]
		}
		var raws []extract.RawReview
		for _, r := range reviews {
			raws = append(raws, extract.RawReview{ID: r.ID, Text: r.Text, Rating: r.Rating})
		}
		items = append(items, pipe.AnnotateItem(raw.ID, raw.Name, raws))
	}

	// One phone in detail: the k=4 summaries of every method.
	item := items[0]
	fmt.Printf("=== %s: %d sentences, %d pairs ===\n", item.Name, item.NumSentences(), len(item.Pairs()))
	selectors := append([]baselines.Selector{eval.GreedySelector{Metric: metric}}, baselines.All()...)
	texts := sentenceTexts(item)
	for _, sel := range selectors {
		chosen := sel.SelectSentences(item, 4)
		F := eval.SummaryPairs(item, chosen)
		errPlain := eval.SentErr(corpus.Ont, F, item.Pairs(), false)
		fmt.Printf("\n[%s] sent-err %.4f\n", sel.Name(), errPlain)
		for i, si := range chosen {
			fmt.Printf("  %d. %s\n", i+1, texts[si])
		}
	}

	// Aggregate comparison across items and k (Fig 6 in miniature).
	fmt.Println("\n=== average sent-err across items (lower is better) ===")
	rows := eval.RunQualitative(items, metric, []int{2, 4, 6}, selectors)
	if len(rows) == 0 {
		log.Fatal("no rows")
	}
	fmt.Printf("%-16s %8s %12s %12s\n", "method", "k", "sent-err", "penalized")
	for _, r := range rows {
		fmt.Printf("%-16s %8d %12.4f %12.4f\n", r.Method, r.K, r.SentErr, r.SentErrPenalized)
	}
}

func sentenceTexts(item *model.Item) []string {
	var out []string
	for ri := range item.Reviews {
		for si := range item.Reviews[ri].Sentences {
			out = append(out, item.Reviews[ri].Sentences[si].Text)
		}
	}
	return out
}
