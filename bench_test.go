// Benchmark harness: one benchmark per paper table/figure (see
// DESIGN.md's per-experiment index) plus the ablation benches for the
// design choices DESIGN.md calls out. The printed experiment rows come
// from cmd/osars-experiments; these benches regenerate the underlying
// measurements (selection time per item for Fig 4, with the achieved
// coverage cost attached as a custom metric for Fig 5, sent-err for
// Fig 6, corpus generation for Table 1).
//
// Run with: go test -bench=. -benchmem
package osars

import (
	"math/rand"
	"sync"
	"testing"

	"osars/internal/baselines"
	"osars/internal/coverage"
	"osars/internal/dataset"
	"osars/internal/eval"
	"osars/internal/extract"
	"osars/internal/lp"
	"osars/internal/model"
	"osars/internal/ontology"
	"osars/internal/sentiment"
	"osars/internal/summarize"
	"osars/internal/text"
)

// fixtures are built once and shared across benchmarks.
type benchFixtures struct {
	doctorItems []*model.Item
	doctorM     model.Metric
	phoneItems  []*model.Item
	phoneM      model.Metric
	graphs      map[model.Granularity][]*coverage.Graph
}

var (
	fixOnce sync.Once
	fix     *benchFixtures
)

func fixtures() *benchFixtures {
	fixOnce.Do(func() {
		fix = &benchFixtures{graphs: map[model.Granularity][]*coverage.Graph{}}
		// Doctor items (Figs 4-5 are on the doctor dataset).
		dcfg := dataset.DoctorConfig(1)
		dcfg.NumItems = 3
		dcfg.TotalReviews = 210
		dcfg.MinReviews = 60
		dcfg.MaxReviews = 80
		doctors := dataset.Generate(dcfg)
		fix.doctorM = model.Metric{Ont: doctors.Ont, Epsilon: 0.5}
		dp := extract.NewPipeline(extract.NewMatcher(doctors.Ont), sentiment.Lexicon{})
		for _, it := range doctors.Items {
			var raws []extract.RawReview
			for _, r := range it.Reviews {
				raws = append(raws, extract.RawReview{ID: r.ID, Text: r.Text, Rating: r.Rating})
			}
			fix.doctorItems = append(fix.doctorItems, dp.AnnotateItem(it.ID, it.Name, raws))
		}
		for _, g := range []model.Granularity{model.GranularityPairs, model.GranularitySentences, model.GranularityReviews} {
			for _, item := range fix.doctorItems {
				fix.graphs[g] = append(fix.graphs[g], coverage.Build(fix.doctorM, item, g))
			}
		}
		// Phone items (Fig 6 is on the cell-phone dataset).
		pcfg := dataset.SmallCellPhoneConfig(2)
		pcfg.NumItems = 3
		pcfg.TotalReviews = 120
		pcfg.MinReviews = 35
		pcfg.MaxReviews = 45
		phones := dataset.Generate(pcfg)
		fix.phoneM = model.Metric{Ont: phones.Ont, Epsilon: 0.5}
		pp := extract.NewPipeline(extract.NewMatcher(phones.Ont), sentiment.Lexicon{})
		for _, it := range phones.Items {
			var raws []extract.RawReview
			for _, r := range it.Reviews {
				raws = append(raws, extract.RawReview{ID: r.ID, Text: r.Text, Rating: r.Rating})
			}
			fix.phoneItems = append(fix.phoneItems, pp.AnnotateItem(it.ID, it.Name, raws))
		}
	})
	return fix
}

// --- Table 1: dataset generation -----------------------------------

func BenchmarkTable1DatasetGeneration(b *testing.B) {
	var stats dataset.Stats
	for i := 0; i < b.N; i++ {
		c := dataset.Generate(dataset.SmallDoctorConfig(int64(i)))
		stats = dataset.ComputeStats(c)
	}
	b.ReportMetric(float64(stats.NumReviews), "reviews")
	b.ReportMetric(stats.AvgSentencesPerRev, "sentences/review")
}

// --- Figs 4-5: algorithm time (ns/op) and cost (custom metric) -----

const benchK = 5

// benchAlgorithm times one algorithm over the prebuilt per-item
// coverage graphs at k=benchK and reports the average Definition-2
// cost as the Fig 5 metric.
func benchAlgorithm(b *testing.B, gran model.Granularity, alg summarize.Algorithm) {
	f := fixtures()
	graphs := f.graphs[gran]
	rng := rand.New(rand.NewSource(3))
	totalCost, runs := 0.0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graphs[i%len(graphs)]
		res, err := summarize.Run(alg, g, benchK, rng)
		if err != nil {
			b.Fatal(err)
		}
		totalCost += res.Cost
		runs++
	}
	b.ReportMetric(totalCost/float64(runs), "cost")
}

func BenchmarkFig45PairsILP(b *testing.B) {
	benchAlgorithm(b, model.GranularityPairs, summarize.AlgILP)
}
func BenchmarkFig45PairsRR(b *testing.B) {
	benchAlgorithm(b, model.GranularityPairs, summarize.AlgRR)
}
func BenchmarkFig45PairsGreedy(b *testing.B) {
	benchAlgorithm(b, model.GranularityPairs, summarize.AlgGreedy)
}
func BenchmarkFig45SentencesILP(b *testing.B) {
	benchAlgorithm(b, model.GranularitySentences, summarize.AlgILP)
}
func BenchmarkFig45SentencesRR(b *testing.B) {
	benchAlgorithm(b, model.GranularitySentences, summarize.AlgRR)
}
func BenchmarkFig45SentencesGreedy(b *testing.B) {
	benchAlgorithm(b, model.GranularitySentences, summarize.AlgGreedy)
}
func BenchmarkFig45ReviewsILP(b *testing.B) {
	benchAlgorithm(b, model.GranularityReviews, summarize.AlgILP)
}
func BenchmarkFig45ReviewsRR(b *testing.B) {
	benchAlgorithm(b, model.GranularityReviews, summarize.AlgRR)
}
func BenchmarkFig45ReviewsGreedy(b *testing.B) {
	benchAlgorithm(b, model.GranularityReviews, summarize.AlgGreedy)
}

// BenchmarkFig45Initialization times the shared §4.1 graph-building
// phase the three algorithms start from.
func BenchmarkFig45Initialization(b *testing.B) {
	f := fixtures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		item := f.doctorItems[i%len(f.doctorItems)]
		coverage.Build(f.doctorM, item, model.GranularityPairs)
	}
}

// --- Fig 6: sent-err of each summarizer ----------------------------

func benchSelector(b *testing.B, sel baselines.Selector) {
	f := fixtures()
	var lastErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		item := f.phoneItems[i%len(f.phoneItems)]
		chosen := sel.SelectSentences(item, benchK)
		F := eval.SummaryPairs(item, chosen)
		lastErr = eval.SentErr(f.phoneM.Ont, F, item.Pairs(), false)
	}
	b.ReportMetric(lastErr, "sent-err")
}

func BenchmarkFig6Ours(b *testing.B) {
	benchSelector(b, eval.GreedySelector{Metric: fixtures().phoneM})
}
func BenchmarkFig6MostPopular(b *testing.B)  { benchSelector(b, baselines.MostPopular{}) }
func BenchmarkFig6Proportional(b *testing.B) { benchSelector(b, baselines.Proportional{}) }
func BenchmarkFig6TextRank(b *testing.B)     { benchSelector(b, baselines.TextRank{}) }
func BenchmarkFig6LexRank(b *testing.B)      { benchSelector(b, baselines.LexRank{}) }
func BenchmarkFig6LSA(b *testing.B)          { benchSelector(b, baselines.LSA{}) }

// --- §5.3 elbow sweep -----------------------------------------------

func BenchmarkElbowThreshold(b *testing.B) {
	f := fixtures()
	grid := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	pairs := f.doctorItems[0].Pairs()
	var eps float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eps, _ = eval.SelectEpsilon(f.doctorM, pairs, 10, grid)
	}
	b.ReportMetric(eps, "epsilon")
}

// --- Ablations (DESIGN.md) ------------------------------------------

// Ablation 1: greedy incremental heap updates vs full recomputation.
func BenchmarkAblationGreedyHeapIncremental(b *testing.B) {
	f := fixtures()
	g := f.graphs[model.GranularityPairs][0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		summarize.Greedy(g, benchK)
	}
}

func BenchmarkAblationGreedyHeapRebuild(b *testing.B) {
	f := fixtures()
	g := f.graphs[model.GranularityPairs][0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		summarize.GreedyRebuild(g, benchK)
	}
}

// Ablation 2: §4.1 bucket+ancestor-walk initialization vs naive
// all-pairs distances.
func BenchmarkAblationInitBucketed(b *testing.B) {
	f := fixtures()
	pairs := f.doctorItems[0].Pairs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coverage.BuildPairs(f.doctorM, pairs)
	}
}

func BenchmarkAblationInitNaive(b *testing.B) {
	f := fixtures()
	pairs := f.doctorItems[0].Pairs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coverage.BuildPairsNaive(f.doctorM, pairs)
	}
}

// Ablation 3: simplex pivot rule on the k-median LP relaxation.
func benchSimplexPivot(b *testing.B, bland bool) {
	f := fixtures()
	g := f.graphs[model.GranularityPairs][0]
	opt := &lp.Options{Bland: bland}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := lp.NewKMedianModel(g, benchK)
		if _, err := m.SolveLP(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSimplexDantzig(b *testing.B) { benchSimplexPivot(b, false) }
func BenchmarkAblationSimplexBland(b *testing.B)   { benchSimplexPivot(b, true) }

// Ablation 4: sentiment estimator — unsupervised lexicon vs trained
// ridge regression, timed per sentence with accuracy (MAE against the
// generator's latent truth) attached.
func benchEstimator(b *testing.B, est sentiment.Estimator, corpus *dataset.Corpus) {
	pipe := extract.NewPipeline(extract.NewMatcher(corpus.Ont), est)
	item := corpus.Items[0]
	var sentences []string
	for _, r := range item.Reviews {
		sentences = append(sentences, text.SplitSentences(r.Text)...)
	}
	// Accuracy pass (excluded from timing).
	mae, n := 0.0, 0
	for _, r := range item.Reviews[:20] {
		rev := pipe.AnnotateReview(r.ID, r.Text, r.Rating)
		for _, p := range rev.Pairs() {
			if truth, ok := item.Truth[p.Concept]; ok {
				d := p.Sentiment - truth
				if d < 0 {
					d = -d
				}
				mae += d
				n++
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		toks := text.Tokenize(sentences[i%len(sentences)])
		est.EstimateSentence(toks)
	}
	if n > 0 {
		b.ReportMetric(mae/float64(n), "mae-vs-truth")
	}
}

func BenchmarkAblationSentimentLexicon(b *testing.B) {
	corpus := dataset.Generate(dataset.SmallCellPhoneConfig(17))
	benchEstimator(b, sentiment.Lexicon{}, corpus)
}

func BenchmarkAblationSentimentRidge(b *testing.B) {
	corpus := dataset.Generate(dataset.SmallCellPhoneConfig(17))
	var examples []sentiment.Example
	for _, it := range corpus.Items {
		for _, r := range it.Reviews {
			examples = append(examples, sentiment.Example{Tokens: text.Tokenize(r.Text), Target: r.Rating})
		}
	}
	ridge, err := sentiment.TrainRidge(examples, sentiment.RidgeOptions{Stem: true})
	if err != nil {
		b.Fatal(err)
	}
	benchEstimator(b, ridge, corpus)
}

// Ablation 5: ε sensitivity — greedy summary cost across thresholds.
func benchEpsilon(b *testing.B, eps float64) {
	f := fixtures()
	m := model.Metric{Ont: f.doctorM.Ont, Epsilon: eps}
	pairs := f.doctorItems[0].Pairs()
	var cost float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := coverage.BuildPairs(m, pairs)
		cost = summarize.Greedy(g, benchK).Cost
	}
	b.ReportMetric(cost, "cost")
}

func BenchmarkAblationEpsilon01(b *testing.B) { benchEpsilon(b, 0.1) }
func BenchmarkAblationEpsilon05(b *testing.B) { benchEpsilon(b, 0.5) }
func BenchmarkAblationEpsilon10(b *testing.B) { benchEpsilon(b, 1.0) }

// Ablation 6: the paper's literal §4.2 y-form ILP vs the equivalent
// compact layer-cake form used in production (see internal/lp).
func benchILPForm(b *testing.B, yform bool) {
	f := fixtures()
	g := f.graphs[model.GranularityPairs][0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var m *lp.KMedianModel
		if yform {
			m = lp.NewKMedianModelYForm(g, benchK)
		} else {
			m = lp.NewKMedianModel(g, benchK)
		}
		res, err := m.SolveLP(nil)
		if err != nil {
			b.Fatal(err)
		}
		rows, cols := m.ModelSizes()
		b.ReportMetric(float64(rows), "rows")
		b.ReportMetric(float64(cols), "cols")
		b.ReportMetric(res.Objective, "lp-objective")
	}
}

func BenchmarkAblationILPFormCompact(b *testing.B) { benchILPForm(b, false) }
func BenchmarkAblationILPFormYForm(b *testing.B)   { benchILPForm(b, true) }

// Ablation 7: single-sample randomized rounding (Algorithm 1) vs the
// best-of-N extension.
func benchRRTrials(b *testing.B, trials int) {
	f := fixtures()
	g := f.graphs[model.GranularityReviews][0]
	rng := rand.New(rand.NewSource(5))
	var cost float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := summarize.RandomizedRoundingBest(g, benchK, trials, rng, nil)
		if err != nil {
			b.Fatal(err)
		}
		cost += res.Cost
	}
	b.ReportMetric(cost/float64(b.N), "cost")
}

func BenchmarkAblationRRTrials1(b *testing.B)  { benchRRTrials(b, 1) }
func BenchmarkAblationRRTrials16(b *testing.B) { benchRRTrials(b, 16) }

// ICDE'17 poster coverage measures of the greedy summary.
func BenchmarkCoverageMeasures(b *testing.B) {
	f := fixtures()
	g := f.graphs[model.GranularityPairs][0]
	sel := summarize.Greedy(g, benchK).Selected
	var rep eval.CoverageReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = eval.Coverage(g, sel)
	}
	b.ReportMetric(rep.CoveredRate, "covered-rate")
	b.ReportMetric(rep.NormalizedCost, "norm-cost")
}

// Ablation 8: quantized+deduplicated pair graph vs the plain multiset
// graph (internal/coverage.BuildPairsQuantized). Reported metrics show
// the instance shrinkage; ns/op shows the end-to-end build+greedy
// speedup.
func BenchmarkAblationQuantizeOff(b *testing.B) {
	f := fixtures()
	pairs := f.doctorItems[0].Pairs()
	var cost float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := coverage.BuildPairs(f.doctorM, pairs)
		cost = summarize.Greedy(g, benchK).Cost
		b.ReportMetric(float64(len(g.Pairs)), "pairs")
		b.ReportMetric(float64(g.NumEdges()), "edges")
	}
	b.ReportMetric(cost, "cost")
}

func BenchmarkAblationQuantizeOn(b *testing.B) {
	f := fixtures()
	pairs := f.doctorItems[0].Pairs()
	var cost float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, _ := coverage.BuildPairsQuantized(f.doctorM, pairs, 0.05)
		cost = summarize.Greedy(g, benchK).Cost
		b.ReportMetric(float64(len(g.Pairs)), "pairs")
		b.ReportMetric(float64(g.NumEdges()), "edges")
	}
	b.ReportMetric(cost, "cost")
}

// Extension: 1-swap local search vs the algorithms it brackets.
func BenchmarkExtensionLocalSearch(b *testing.B) {
	f := fixtures()
	g := f.graphs[model.GranularityReviews][0]
	var cost float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cost = summarize.LocalSearch(g, benchK, nil).Cost
	}
	b.ReportMetric(cost, "cost")
}

// --- §4.1 scaling: initialization and greedy vs |P| -----------------
//
// The paper claims the initialization phase "and the size of the
// resulting graph G are roughly linear in |P|, because the average
// number of ancestors for each node in the DAG is small". These
// benches measure build + greedy time at growing pair-multiset sizes
// over the same ontology.
func benchScaling(b *testing.B, nPairs int) {
	f := fixtures()
	// Concatenate item pair multisets until the target size.
	var pairs []model.Pair
	for len(pairs) < nPairs {
		for _, item := range f.doctorItems {
			pairs = append(pairs, item.Pairs()...)
			if len(pairs) >= nPairs {
				break
			}
		}
	}
	pairs = pairs[:nPairs]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := coverage.BuildPairs(f.doctorM, pairs)
		summarize.Greedy(g, benchK)
		b.ReportMetric(float64(g.NumEdges()), "edges")
	}
}

func BenchmarkScalingPairs250(b *testing.B)  { benchScaling(b, 250) }
func BenchmarkScalingPairs500(b *testing.B)  { benchScaling(b, 500) }
func BenchmarkScalingPairs1000(b *testing.B) { benchScaling(b, 1000) }
func BenchmarkScalingPairs2000(b *testing.B) { benchScaling(b, 2000) }

// Same scaling with quantized deduplication: duplicate (concept,
// sentiment) occurrences collapse into weights, restoring near-linear
// growth (the regime the paper's "roughly linear" claim describes).
func benchScalingQuantized(b *testing.B, nPairs int) {
	f := fixtures()
	var pairs []model.Pair
	for len(pairs) < nPairs {
		for _, item := range f.doctorItems {
			pairs = append(pairs, item.Pairs()...)
			if len(pairs) >= nPairs {
				break
			}
		}
	}
	pairs = pairs[:nPairs]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, _ := coverage.BuildPairsQuantized(f.doctorM, pairs, 0.05)
		summarize.Greedy(g, benchK)
		b.ReportMetric(float64(g.NumEdges()), "edges")
	}
}

func BenchmarkScalingQuantized250(b *testing.B)  { benchScalingQuantized(b, 250) }
func BenchmarkScalingQuantized500(b *testing.B)  { benchScalingQuantized(b, 500) }
func BenchmarkScalingQuantized1000(b *testing.B) { benchScalingQuantized(b, 1000) }
func BenchmarkScalingQuantized2000(b *testing.B) { benchScalingQuantized(b, 2000) }

// --- Cold path (PR 2): per-layer microbenches -----------------------
//
// These isolate each layer of the cold path (the work a cache miss or
// an AppendReviews pays): annotation, coverage-graph construction, and
// greedy selection, plus the end-to-end cold Summarize. cmd/osars-bench
// runs the same measurements standalone and records them in
// BENCH_coldpath.json.

type coldFixtures struct {
	ont   *ontology.Ontology
	sum   *Summarizer
	pipe  *extract.Pipeline
	raws  [][]extract.RawReview
	items []*model.Item
	toks  [][]string // tokenized sentences of item 0
}

var (
	coldOnce sync.Once
	cold     *coldFixtures
)

func coldFix() *coldFixtures {
	coldOnce.Do(func() {
		cfg := dataset.DoctorConfig(1)
		cfg.NumItems = 3
		cfg.TotalReviews = 210
		cfg.MinReviews = 60
		cfg.MaxReviews = 80
		c := dataset.Generate(cfg)
		cold = &coldFixtures{ont: c.Ont}
		s, err := New(Config{Ontology: c.Ont})
		if err != nil {
			panic(err)
		}
		cold.sum = s
		cold.pipe = extract.NewPipeline(extract.NewMatcher(c.Ont), sentiment.Lexicon{})
		for _, it := range c.Items {
			var raws []extract.RawReview
			for _, r := range it.Reviews {
				raws = append(raws, extract.RawReview{ID: r.ID, Text: r.Text, Rating: r.Rating})
			}
			cold.raws = append(cold.raws, raws)
			cold.items = append(cold.items, cold.pipe.AnnotateItem(it.ID, it.Name, raws))
		}
		for _, r := range c.Items[0].Reviews {
			for _, sent := range text.SplitSentences(r.Text) {
				cold.toks = append(cold.toks, text.Tokenize(sent))
			}
		}
	})
	return cold
}

// BenchmarkColdAnnotateItem is the sequential annotation layer: one
// whole doctor item through tokenize + match + sentiment.
func BenchmarkColdAnnotateItem(b *testing.B) {
	f := coldFix()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.pipe.AnnotateItem("d", "Doc", f.raws[i%len(f.raws)])
	}
}

// BenchmarkColdMatcherStemmed isolates Matcher.MatchTokens with
// Porter-stemmed matching (the MetaMap-equivalent configuration whose
// per-probe re-stemming this PR removes).
func BenchmarkColdMatcherStemmed(b *testing.B) {
	f := coldFix()
	m := extract.NewMatcherWithOptions(f.ont, extract.MatcherOptions{Stem: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatchTokens(f.toks[i%len(f.toks)])
	}
}

// BenchmarkColdBuildSentences is the §4.1 initialization layer at the
// sentences granularity used by the service default.
func BenchmarkColdBuildSentences(b *testing.B) {
	f := coldFix()
	m := model.Metric{Ont: f.ont, Epsilon: 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coverage.Build(m, f.items[i%len(f.items)], model.GranularitySentences)
	}
}

// BenchmarkColdGreedySentences is the selection layer alone over a
// prebuilt sentences graph.
func BenchmarkColdGreedySentences(b *testing.B) {
	f := coldFix()
	m := model.Metric{Ont: f.ont, Epsilon: 0.5}
	g := coverage.Build(m, f.items[0], model.GranularitySentences)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		summarize.Greedy(g, benchK)
	}
}

// BenchmarkColdCostOf evaluates a fixed selection against a prebuilt
// graph — the per-request evaluation path.
func BenchmarkColdCostOf(b *testing.B) {
	f := coldFix()
	m := model.Metric{Ont: f.ont, Epsilon: 0.5}
	g := coverage.Build(m, f.items[0], model.GranularitySentences)
	sel := summarize.Greedy(g, benchK).Selected
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CostOf(sel)
	}
}

// BenchmarkColdSummarize is the acceptance bench: the full cold path
// (annotate + build + greedy, sentences, doctor fixture) exactly as a
// cache miss pays it.
func BenchmarkColdSummarize(b *testing.B) {
	f := coldFix()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(f.raws)
		item := f.sum.AnnotateItem("d", "Doc", f.raws[j])
		if _, err := f.sum.Summarize(item, benchK, Sentences, MethodGreedy); err != nil {
			b.Fatal(err)
		}
	}
}
