package osars

import (
	"testing"
)

func TestParseGranularity(t *testing.T) {
	cases := map[string]Granularity{
		"pairs": Pairs, "sentences": Sentences, "": Sentences, "reviews": Reviews,
	}
	for in, want := range cases {
		got, err := ParseGranularity(in)
		if err != nil || got != want {
			t.Errorf("ParseGranularity(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseGranularity("words"); err == nil {
		t.Fatal("bad granularity accepted")
	}
}

func TestParseMethod(t *testing.T) {
	cases := map[string]Method{
		"greedy": MethodGreedy, "": MethodGreedy, "rr": MethodRR,
		"ilp": MethodILP, "local-search": MethodLocalSearch,
	}
	for in, want := range cases {
		got, err := ParseMethod(in)
		if err != nil || got != want {
			t.Errorf("ParseMethod(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseMethod("magic"); err == nil {
		t.Fatal("bad method accepted")
	}
}

func TestSummarizeWithOptionsDefaultsMatchSummarize(t *testing.T) {
	s := testSummarizer(t)
	item := s.AnnotateItem("p1", "Phone", testReviews())
	plain, err := s.Summarize(item, 3, Sentences, MethodGreedy)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := s.SummarizeWithOptions(item, Options{K: 3, Granularity: Sentences, Method: MethodGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cost != opt.Cost || len(plain.Sentences) != len(opt.Sentences) {
		t.Fatalf("options path diverged: %v vs %v", plain.Cost, opt.Cost)
	}
}

func TestSummarizeWithOptionsQuantized(t *testing.T) {
	s := testSummarizer(t)
	// Duplicate reviews create exactly duplicated pairs, so the
	// quantized selection must cost the same as the plain one.
	reviews := append(testReviews(), testReviews()...)
	item := s.AnnotateItem("p1", "Phone", reviews)
	plain, err := s.SummarizeWithOptions(item, Options{K: 3, Granularity: Pairs, Method: MethodGreedy})
	if err != nil {
		t.Fatal(err)
	}
	quant, err := s.SummarizeWithOptions(item, Options{K: 3, Granularity: Pairs, Method: MethodGreedy, QuantizeGrid: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if quant.Cost != plain.Cost {
		t.Fatalf("quantized cost %v != plain %v", quant.Cost, plain.Cost)
	}
	if len(quant.Pairs) != 3 {
		t.Fatalf("quantized pairs = %v", quant.Pairs)
	}
	// Indices refer to original pair order.
	all := item.Pairs()
	for i, idx := range quant.Indices {
		if idx < 0 || idx >= len(all) {
			t.Fatalf("index out of range: %v", quant.Indices)
		}
		if all[idx] != quant.Pairs[i] {
			t.Fatalf("index %d does not match returned pair", idx)
		}
	}
}

func TestSummarizeWithOptionsQuantizeWrongGranularity(t *testing.T) {
	s := testSummarizer(t)
	item := s.AnnotateItem("p1", "Phone", testReviews())
	if _, err := s.SummarizeWithOptions(item, Options{K: 2, Granularity: Sentences, QuantizeGrid: 0.05}); err == nil {
		t.Fatal("quantize on sentences accepted")
	}
}

func TestSummarizeWithOptionsRRTrials(t *testing.T) {
	s := testSummarizer(t)
	item := s.AnnotateItem("p1", "Phone", testReviews())
	single, err := s.SummarizeWithOptions(item, Options{K: 2, Granularity: Reviews, Method: MethodRR, RRTrials: 1})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := s.SummarizeWithOptions(item, Options{K: 2, Granularity: Reviews, Method: MethodRR, RRTrials: 8})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Cost > single.Cost+1e-9 {
		t.Fatalf("best-of-8 cost %v worse than single %v", multi.Cost, single.Cost)
	}
}

func TestSummarizeWithOptionsErrors(t *testing.T) {
	s := testSummarizer(t)
	item := s.AnnotateItem("p1", "Phone", testReviews())
	if _, err := s.SummarizeWithOptions(item, Options{K: -1}); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, err := s.SummarizeWithOptions(item, Options{K: 1, Method: Method(77), QuantizeGrid: 0.05, Granularity: Pairs}); err == nil {
		t.Fatal("unknown method accepted")
	}
}
