package osars

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd builds and runs one of the repo's commands via `go run`.
func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		t.Fatalf("go run %v: %v\nstderr: %s", args, err, errBuf.String())
	}
	return out.String()
}

// TestEndToEndCLIs drives the gen → summarize pipeline exactly as the
// README shows, through the real binaries.
func TestEndToEndCLIs(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI end-to-end in -short mode")
	}
	dir := t.TempDir()

	genOut := runCmd(t, "./cmd/osars-gen", "-domain", "phone", "-scale", "small", "-seed", "9", "-out", dir)
	if !strings.Contains(genOut, "reviews=400") {
		t.Fatalf("gen output unexpected:\n%s", genOut)
	}

	ontPath := filepath.Join(dir, "phone-ontology.json")
	itemsPath := filepath.Join(dir, "phone-items.jsonl")
	sumOut := runCmd(t, "./cmd/osars-summarize",
		"-ontology", ontPath, "-items", itemsPath,
		"-k", "3", "-granularity", "sentences", "-method", "greedy")
	if !strings.Contains(sumOut, "coverage cost") || !strings.Contains(sumOut, " 3.") {
		t.Fatalf("summarize output unexpected:\n%s", sumOut)
	}
	// Count the numbered summary lines.
	lines := 0
	for _, line := range strings.Split(sumOut, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "1.") || strings.HasPrefix(trimmed, "2.") || strings.HasPrefix(trimmed, "3.") {
			lines++
		}
	}
	if lines != 3 {
		t.Fatalf("expected 3 summary sentences, got %d:\n%s", lines, sumOut)
	}

	pairsOut := runCmd(t, "./cmd/osars-summarize",
		"-ontology", ontPath, "-items", itemsPath,
		"-k", "2", "-granularity", "pairs", "-method", "local-search")
	if !strings.Contains(pairsOut, "=") {
		t.Fatalf("pairs output unexpected:\n%s", pairsOut)
	}
}

// TestEndToEndExperimentsSmoke runs one tiny experiment through the
// experiments binary.
func TestEndToEndExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI end-to-end in -short mode")
	}
	out := runCmd(t, "./cmd/osars-experiments", "-exp", "table1", "-full-table1=false")
	if !strings.Contains(out, "#Reviews") {
		t.Fatalf("experiments output unexpected:\n%s", out)
	}
}
