package eval

import (
	"fmt"

	"osars/internal/coverage"
)

// CoverageReport holds the coverage-oriented quality measures the
// ICDE 2017 poster version of the paper evaluates (the WISE version
// switched to sent-err; both are provided here).
type CoverageReport struct {
	// CoveredRate is the fraction of pairs covered by a summary
	// candidate (instead of falling back to the root).
	CoveredRate float64
	// ExactRate is the fraction of pairs covered at distance 0 (same
	// concept, within ε).
	ExactRate float64
	// AvgCoveredDistance is the mean Definition-1 distance over the
	// covered pairs.
	AvgCoveredDistance float64
	// NormalizedCost is C(F, P) / C(∅, P): 1.0 for the empty summary,
	// smaller is better.
	NormalizedCost float64
}

func (r CoverageReport) String() string {
	return fmt.Sprintf("covered=%.1f%% exact=%.1f%% avg-dist=%.2f norm-cost=%.3f",
		100*r.CoveredRate, 100*r.ExactRate, r.AvgCoveredDistance, r.NormalizedCost)
}

// Coverage computes the report for a selection over a coverage graph.
func Coverage(g *coverage.Graph, selected []int) CoverageReport {
	if len(g.Pairs) == 0 {
		return CoverageReport{}
	}
	chosen := make([]bool, g.NumCandidates)
	for _, u := range selected {
		chosen[u] = true
	}
	var rep CoverageReport
	covered, exact, distSum, cost, n := 0, 0, 0, 0, 0
	for w := range g.Pairs {
		mult := int(g.Weight[w])
		n += mult
		best := int(g.RootDist[w])
		hit := false
		g.Coverers(w, func(u, dist int) bool {
			if chosen[u] {
				hit = true
				if dist < best {
					best = dist
				}
			}
			return true
		})
		cost += best * mult
		if hit {
			covered += mult
			distSum += best * mult
			if best == 0 {
				exact += mult
			}
		}
	}
	rep.CoveredRate = float64(covered) / float64(n)
	rep.ExactRate = float64(exact) / float64(n)
	if covered > 0 {
		rep.AvgCoveredDistance = float64(distSum) / float64(covered)
	}
	if empty := g.EmptyCost(); empty > 0 {
		rep.NormalizedCost = float64(cost) / empty
	}
	return rep
}
