// Package eval implements the paper's evaluation machinery: the
// sent-err and sent-err-penalized summary-quality measures (§5.3,
// Eq. 1), the elbow method for selecting the sentiment threshold ε,
// and the quantitative (Figs 4-5) and qualitative (Fig 6) experiment
// runners shared by the CLI and the benchmark harness.
package eval

import (
	"math"

	"osars/internal/model"
	"osars/internal/ontology"
)

// SentErr computes the root-mean-square sentiment error of a summary F
// with respect to the full pair multiset P (Eq. 1):
//
//	err_p = min |s_f − s_p| over f ∈ F with f's concept = c_p; else
//	        min |s_f − s_p| over f ∈ F whose concept is c_p's lowest
//	        (nearest) ancestor present in F; else
//	        |s_p|                       (plain), or
//	        max(|1−s_p|, |−1−s_p|)      (penalized).
//
// The penalized variant charges a missing concept the largest possible
// sentiment error, +1 and −1 being the extreme sentiments.
func SentErr(ont *ontology.Ontology, summary, all []model.Pair, penalized bool) float64 {
	if len(all) == 0 {
		return 0
	}
	byConcept := make(map[ontology.ConceptID][]float64)
	for _, f := range summary {
		byConcept[f.Concept] = append(byConcept[f.Concept], f.Sentiment)
	}
	walker := ontology.NewAncestorWalker(ont)
	sum := 0.0
	for _, p := range all {
		sum += errOf(walker, byConcept, p, penalized)
	}
	return math.Sqrt(sum / float64(len(all)))
}

// errOf returns err²_{p,F}.
func errOf(walker *ontology.AncestorWalker, byConcept map[ontology.ConceptID][]float64, p model.Pair, penalized bool) float64 {
	// The walker visits c_p first (distance 0), then ancestors in
	// non-decreasing distance: the first concept present in F is the
	// concept itself or its lowest ancestor.
	var sentiments []float64
	prevDist := -1
	walker.Walk(p.Concept, func(anc ontology.ConceptID, dist int) bool {
		if len(sentiments) > 0 && dist > prevDist {
			return false // already found the lowest level; stop
		}
		if ss, ok := byConcept[anc]; ok {
			// Equal-distance ancestors both in F: pool their
			// sentiments (a DAG can have two lowest ancestors).
			sentiments = append(sentiments, ss...)
			prevDist = dist
		}
		return true
	})
	if len(sentiments) > 0 {
		best := math.Inf(1)
		for _, s := range sentiments {
			if d := math.Abs(s - p.Sentiment); d < best {
				best = d
			}
		}
		return best * best
	}
	if penalized {
		worst := math.Max(math.Abs(1-p.Sentiment), math.Abs(-1-p.Sentiment))
		return worst * worst
	}
	return p.Sentiment * p.Sentiment
}

// SummaryPairs collects the pair multiset of the selected sentences
// (global sentence indices in the item's flattened order), i.e. the F
// whose quality sent-err measures.
func SummaryPairs(item *model.Item, sentenceIdx []int) []model.Pair {
	want := make(map[int]bool, len(sentenceIdx))
	for _, si := range sentenceIdx {
		want[si] = true
	}
	var out []model.Pair
	flat := 0
	for ri := range item.Reviews {
		for si := range item.Reviews[ri].Sentences {
			if want[flat] {
				out = append(out, item.Reviews[ri].Sentences[si].Pairs...)
			}
			flat++
		}
	}
	return out
}
