package eval

import (
	"osars/internal/coverage"
	"osars/internal/model"
	"osars/internal/summarize"
)

// CoverageRate returns the fraction of pairs of P that a size-k greedy
// summary covers through a summary pair (as opposed to falling back to
// the root), at the given sentiment threshold ε. This is the
// "rate of covered sentences" curve §5.3 feeds to the elbow method.
func CoverageRate(m model.Metric, pairs []model.Pair, k int) float64 {
	if len(pairs) == 0 {
		return 0
	}
	g := coverage.BuildPairs(m, pairs)
	if k > g.NumCandidates {
		k = g.NumCandidates
	}
	res := summarize.Greedy(g, k)
	selected := make([]bool, g.NumCandidates)
	for _, u := range res.Selected {
		selected[u] = true
	}
	covered := 0
	for w := range g.Pairs {
		g.Coverers(w, func(u, dist int) bool {
			if selected[u] {
				covered++
				return false
			}
			return true
		})
	}
	return float64(covered) / float64(len(pairs))
}

// EpsilonSweep evaluates CoverageRate at each candidate ε.
func EpsilonSweep(ont model.Metric, pairs []model.Pair, k int, epsilons []float64) []float64 {
	rates := make([]float64, len(epsilons))
	for i, eps := range epsilons {
		m := model.Metric{Ont: ont.Ont, Epsilon: eps}
		rates[i] = CoverageRate(m, pairs, k)
	}
	return rates
}

// Elbow returns the index of the elbow of a monotone curve y(x): the
// point with the largest vertical distance from the chord joining the
// endpoints (the "kneedle" criterion). For the ε sweep this is the
// threshold beyond which further increases stop buying coverage —
// the paper reports it lands at 0.5 on its data (§5.3).
func Elbow(xs, ys []float64) int {
	n := len(xs)
	if n == 0 {
		return -1
	}
	if n == 1 {
		return 0
	}
	x0, y0 := xs[0], ys[0]
	x1, y1 := xs[n-1], ys[n-1]
	dx, dy := x1-x0, y1-y0
	best, bestDist := 0, -1.0
	for i := 0; i < n; i++ {
		// Perpendicular distance from (xs[i], ys[i]) to the chord,
		// scaled by the constant chord length (irrelevant for argmax).
		d := dy*xs[i] - dx*ys[i] + x1*y0 - y1*x0
		if d < 0 {
			d = -d
		}
		if d > bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// SelectEpsilon runs the full §5.3 procedure: sweep ε over the
// candidate grid, compute coverage rates with a size-k greedy summary,
// and return the elbow ε together with the rates.
func SelectEpsilon(m model.Metric, pairs []model.Pair, k int, epsilons []float64) (eps float64, rates []float64) {
	rates = EpsilonSweep(m, pairs, k, epsilons)
	idx := Elbow(epsilons, rates)
	if idx < 0 {
		return 0.5, rates
	}
	return epsilons[idx], rates
}
