package eval

import (
	"math"
	"math/rand"
	"testing"

	"osars/internal/baselines"
	"osars/internal/coverage"
	"osars/internal/dataset"
	"osars/internal/extract"
	"osars/internal/model"
	"osars/internal/ontology"
	"osars/internal/sentiment"
	"osars/internal/summarize"
)

func chainOnt(t testing.TB) (*ontology.Ontology, map[string]ontology.ConceptID) {
	t.Helper()
	var b ontology.Builder
	ids := map[string]ontology.ConceptID{}
	ids["root"] = b.AddConcept("root")
	ids["mid"] = b.Child(ids["root"], "mid")
	ids["leaf"] = b.Child(ids["mid"], "leaf")
	ids["sib"] = b.Child(ids["root"], "sib")
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return o, ids
}

func TestSentErrExactConcept(t *testing.T) {
	o, ids := chainOnt(t)
	P := []model.Pair{{Concept: ids["leaf"], Sentiment: 0.8}}
	F := []model.Pair{{Concept: ids["leaf"], Sentiment: 0.5}}
	if got := SentErr(o, F, P, false); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("SentErr = %v, want 0.3", got)
	}
}

func TestSentErrLowestAncestor(t *testing.T) {
	o, ids := chainOnt(t)
	P := []model.Pair{{Concept: ids["leaf"], Sentiment: 0.8}}
	// F has both root (sentiment 0.0) and mid (0.6): the LOWEST
	// ancestor (mid) must be used → err 0.2, not 0.8.
	F := []model.Pair{
		{Concept: ids["root"], Sentiment: 0.0},
		{Concept: ids["mid"], Sentiment: 0.6},
	}
	if got := SentErr(o, F, P, false); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("SentErr = %v, want 0.2 (lowest ancestor)", got)
	}
}

func TestSentErrMinOverSameConcept(t *testing.T) {
	o, ids := chainOnt(t)
	P := []model.Pair{{Concept: ids["leaf"], Sentiment: 0.0}}
	F := []model.Pair{
		{Concept: ids["leaf"], Sentiment: 0.9},
		{Concept: ids["leaf"], Sentiment: -0.1},
	}
	if got := SentErr(o, F, P, false); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("SentErr = %v, want 0.1 (min over summary pairs)", got)
	}
}

func TestSentErrMissingConcept(t *testing.T) {
	o, ids := chainOnt(t)
	P := []model.Pair{{Concept: ids["sib"], Sentiment: -0.6}}
	F := []model.Pair{{Concept: ids["leaf"], Sentiment: 0.5}} // unrelated
	if got := SentErr(o, F, P, false); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("plain SentErr = %v, want |s_p| = 0.6", got)
	}
	// Penalized: max(|1-(-0.6)|, |-1-(-0.6)|) = 1.6.
	if got := SentErr(o, F, P, true); math.Abs(got-1.6) > 1e-12 {
		t.Fatalf("penalized SentErr = %v, want 1.6", got)
	}
}

func TestSentErrDescendantDoesNotCover(t *testing.T) {
	o, ids := chainOnt(t)
	// Summary has the leaf; P asks about mid. A descendant is NOT an
	// ancestor: fallback branch applies.
	P := []model.Pair{{Concept: ids["mid"], Sentiment: 0.4}}
	F := []model.Pair{{Concept: ids["leaf"], Sentiment: 0.4}}
	if got := SentErr(o, F, P, false); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("SentErr = %v, want 0.4", got)
	}
}

func TestSentErrRMSEAggregation(t *testing.T) {
	o, ids := chainOnt(t)
	P := []model.Pair{
		{Concept: ids["leaf"], Sentiment: 0.5}, // err 0.5 vs F below
		{Concept: ids["sib"], Sentiment: 0.3},  // missing → 0.3
	}
	F := []model.Pair{{Concept: ids["leaf"], Sentiment: 1.0}}
	want := math.Sqrt((0.25 + 0.09) / 2)
	if got := SentErr(o, F, P, false); math.Abs(got-want) > 1e-12 {
		t.Fatalf("SentErr = %v, want %v", got, want)
	}
}

func TestSentErrEmpty(t *testing.T) {
	o, _ := chainOnt(t)
	if got := SentErr(o, nil, nil, false); got != 0 {
		t.Fatalf("SentErr on empty P = %v", got)
	}
}

func TestSummaryPairs(t *testing.T) {
	item := &model.Item{Reviews: []model.Review{
		{Sentences: []model.Sentence{
			{Pairs: []model.Pair{{Concept: 1, Sentiment: 0.1}}},                               // 0
			{Pairs: []model.Pair{{Concept: 2, Sentiment: 0.2}, {Concept: 3, Sentiment: 0.3}}}, // 1
		}},
		{Sentences: []model.Sentence{
			{Pairs: []model.Pair{{Concept: 4, Sentiment: 0.4}}}, // 2
		}},
	}}
	got := SummaryPairs(item, []int{1, 2})
	if len(got) != 3 {
		t.Fatalf("SummaryPairs = %v", got)
	}
	if got[0].Concept != 2 || got[2].Concept != 4 {
		t.Fatalf("wrong pairs: %v", got)
	}
}

func TestElbowDetectsKnee(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	// Sharp knee at x=0.5 (index 4).
	ys := []float64{0.1, 0.3, 0.5, 0.7, 0.85, 0.87, 0.89, 0.90, 0.91, 0.92}
	if got := Elbow(xs, ys); got != 4 {
		t.Fatalf("Elbow = %d, want 4", got)
	}
}

func TestElbowDegenerate(t *testing.T) {
	if Elbow(nil, nil) != -1 {
		t.Fatal("empty elbow should be -1")
	}
	if Elbow([]float64{1}, []float64{2}) != 0 {
		t.Fatal("single-point elbow should be 0")
	}
	// Perfectly straight line: any index is acceptable; must not panic.
	got := Elbow([]float64{0, 1, 2}, []float64{0, 1, 2})
	if got < 0 || got > 2 {
		t.Fatalf("Elbow on line = %d", got)
	}
}

func TestCoverageRateMonotoneInEpsilon(t *testing.T) {
	o, ids := chainOnt(t)
	P := []model.Pair{
		{Concept: ids["leaf"], Sentiment: 0.9},
		{Concept: ids["leaf"], Sentiment: 0.1},
		{Concept: ids["mid"], Sentiment: 0.5},
		{Concept: ids["sib"], Sentiment: -0.5},
	}
	eps := []float64{0.1, 0.5, 1.0, 2.0}
	m := model.Metric{Ont: o, Epsilon: 0.5}
	rates := EpsilonSweep(m, P, 2, eps)
	for i := 1; i < len(rates); i++ {
		if rates[i] < rates[i-1]-1e-9 {
			t.Fatalf("coverage rate decreased: %v", rates)
		}
	}
	for _, r := range rates {
		if r < 0 || r > 1 {
			t.Fatalf("rate out of [0,1]: %v", rates)
		}
	}
	got, _ := SelectEpsilon(m, P, 2, eps)
	found := false
	for _, e := range eps {
		if e == got {
			found = true
		}
	}
	if !found {
		t.Fatalf("SelectEpsilon returned %v not in grid", got)
	}
}

// generatedItems annotates a few generated items end to end.
func generatedItems(t testing.TB, n int) ([]*model.Item, model.Metric) {
	t.Helper()
	c := dataset.Generate(dataset.SmallCellPhoneConfig(4))
	p := extract.NewPipeline(extract.NewMatcher(c.Ont), sentiment.Lexicon{})
	var items []*model.Item
	for i := 0; i < n && i < len(c.Items); i++ {
		var raws []extract.RawReview
		for _, r := range c.Items[i].Reviews[:15] {
			raws = append(raws, extract.RawReview{ID: r.ID, Text: r.Text, Rating: r.Rating})
		}
		items = append(items, p.AnnotateItem(c.Items[i].ID, c.Items[i].Name, raws))
	}
	return items, model.Metric{Ont: c.Ont, Epsilon: 0.5}
}

func TestRunQuantitativeShape(t *testing.T) {
	items, m := generatedItems(t, 2)
	rows, err := RunQuantitative(items, m, QuantConfig{Ks: []int{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	// 3 granularities × 2 ks × 3 algorithms.
	if len(rows) != 18 {
		t.Fatalf("rows = %d, want 18", len(rows))
	}
	// Paper invariant: cost(ILP) ≤ cost(RR) and cost(ILP) ≤
	// cost(Greedy) for every (granularity, k) cell.
	costs := map[[2]int]map[summarize.Algorithm]float64{}
	for _, r := range rows {
		key := [2]int{int(r.Granularity), r.K}
		if costs[key] == nil {
			costs[key] = map[summarize.Algorithm]float64{}
		}
		costs[key][r.Algorithm] = r.AvgCost
		if r.String() == "" {
			t.Fatal("row String empty")
		}
	}
	for key, byAlg := range costs {
		if byAlg[summarize.AlgILP] > byAlg[summarize.AlgRR]+1e-9 {
			t.Fatalf("cell %v: ILP cost %v > RR %v", key, byAlg[summarize.AlgILP], byAlg[summarize.AlgRR])
		}
		if byAlg[summarize.AlgILP] > byAlg[summarize.AlgGreedy]+1e-9 {
			t.Fatalf("cell %v: ILP cost %v > Greedy %v", key, byAlg[summarize.AlgILP], byAlg[summarize.AlgGreedy])
		}
	}
}

func TestRunQualitativeShape(t *testing.T) {
	items, m := generatedItems(t, 2)
	rows := RunQualitative(items, m, []int{3}, nil)
	// 1 ours + 5 baselines.
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	var ours, worstBaseline float64
	for _, r := range rows {
		if r.SentErr < 0 || r.SentErrPenalized < r.SentErr-1e-9 {
			t.Fatalf("implausible errors: %+v", r)
		}
		if r.Method == "ours (greedy)" {
			ours = r.SentErr
		} else if r.SentErr > worstBaseline {
			worstBaseline = r.SentErr
		}
		if r.String() == "" {
			t.Fatal("row String empty")
		}
	}
	if ours > worstBaseline+1e-9 {
		t.Fatalf("greedy sent-err %v worse than every baseline (worst %v)", ours, worstBaseline)
	}
}

func TestGreedySelectorReturnsKSentences(t *testing.T) {
	items, m := generatedItems(t, 1)
	sel := GreedySelector{Metric: m}.SelectSentences(items[0], 4)
	if len(sel) != 4 {
		t.Fatalf("selected %v", sel)
	}
	var _ baselines.Selector = GreedySelector{}
}

func TestCoverageReport(t *testing.T) {
	o, ids := chainOnt(t)
	m := model.Metric{Ont: o, Epsilon: 0.5}
	P := []model.Pair{
		{Concept: ids["leaf"], Sentiment: 0.5}, // covered at 1 by mid
		{Concept: ids["mid"], Sentiment: 0.5},  // covered at 0 (itself)
		{Concept: ids["sib"], Sentiment: 0.5},  // uncovered → root
	}
	g := coverage.BuildPairs(m, P)
	rep := Coverage(g, []int{1}) // select the mid pair
	if math.Abs(rep.CoveredRate-2.0/3) > 1e-12 {
		t.Fatalf("CoveredRate = %v, want 2/3", rep.CoveredRate)
	}
	if math.Abs(rep.ExactRate-1.0/3) > 1e-12 {
		t.Fatalf("ExactRate = %v, want 1/3", rep.ExactRate)
	}
	if math.Abs(rep.AvgCoveredDistance-0.5) > 1e-12 {
		t.Fatalf("AvgCoveredDistance = %v, want 0.5", rep.AvgCoveredDistance)
	}
	// Cost = 1 (leaf via mid) + 0 + 1 (sib via root) = 2; empty = 2+1+1.
	if math.Abs(rep.NormalizedCost-2.0/4) > 1e-12 {
		t.Fatalf("NormalizedCost = %v, want 0.5", rep.NormalizedCost)
	}
	if rep.String() == "" {
		t.Fatal("empty String")
	}
}

func TestCoverageReportEmpty(t *testing.T) {
	o, _ := chainOnt(t)
	m := model.Metric{Ont: o, Epsilon: 0.5}
	rep := Coverage(coverage.BuildPairs(m, nil), nil)
	if rep != (CoverageReport{}) {
		t.Fatalf("empty report = %+v", rep)
	}
}

func TestCoverageMonotoneInSelection(t *testing.T) {
	items, m := generatedItems(t, 1)
	g := coverage.BuildPairs(m, items[0].Pairs())
	res := summarize.Greedy(g, 8)
	prev := CoverageReport{NormalizedCost: 1}
	for k := 1; k <= 8; k++ {
		rep := Coverage(g, res.Selected[:k])
		if rep.CoveredRate < prev.CoveredRate-1e-12 {
			t.Fatalf("covered rate decreased at k=%d", k)
		}
		if rep.NormalizedCost > prev.NormalizedCost+1e-12 {
			t.Fatalf("normalized cost increased at k=%d", k)
		}
		prev = rep
	}
}

func TestPairedBootstrapClearWinner(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 40)
	b := make([]float64, 40)
	for i := range a {
		a[i] = 0.3 + 0.01*rng.Float64()
		b[i] = 0.5 + 0.01*rng.Float64()
	}
	p := PairedBootstrapPValue(a, b, 2000, rng)
	if p > 0.01 {
		t.Fatalf("p = %v for a clear winner, want ~0", p)
	}
	// Reversed comparison must be non-significant.
	if p := PairedBootstrapPValue(b, a, 2000, rng); p < 0.95 {
		t.Fatalf("reversed p = %v, want ~1", p)
	}
}

func TestPairedBootstrapNoDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		v := rng.Float64()
		a[i], b[i] = v+0.05*rng.NormFloat64(), v+0.05*rng.NormFloat64()
	}
	p := PairedBootstrapPValue(a, b, 2000, rng)
	if p < 0.05 || p > 0.95 {
		t.Fatalf("p = %v for identical methods, want mid-range", p)
	}
}

func TestPairedBootstrapEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if p := PairedBootstrapPValue(nil, nil, 100, rng); p != 1 {
		t.Fatalf("empty p = %v, want 1", p)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unpaired lengths")
		}
	}()
	PairedBootstrapPValue([]float64{1}, []float64{1, 2}, 10, rng)
}

func TestPerItemSentErr(t *testing.T) {
	items, m := generatedItems(t, 3)
	sels := []baselines.Selector{GreedySelector{Metric: m}, baselines.MostPopular{}}
	scores := PerItemSentErr(items, m, 4, sels, false)
	if len(scores) != 2 {
		t.Fatalf("methods = %d", len(scores))
	}
	for name, s := range scores {
		if len(s) != 3 {
			t.Fatalf("%s has %d scores, want 3", name, len(s))
		}
		for _, v := range s {
			if v < 0 {
				t.Fatalf("%s negative sent-err", name)
			}
		}
	}
}
