package eval

import (
	"fmt"
	"math/rand"
	"time"

	"osars/internal/baselines"
	"osars/internal/coverage"
	"osars/internal/model"
	"osars/internal/summarize"
)

// QuantRow is one data point of the Figs 4-5 experiments: one
// (granularity, algorithm, k) cell averaged over items.
type QuantRow struct {
	Granularity model.Granularity
	Algorithm   summarize.Algorithm
	K           int
	// AvgCost is the mean Definition-2 cost per item (Fig 5).
	AvgCost float64
	// AvgTime is the mean selection time per item (Fig 4); graph
	// initialization is shared by all three algorithms and excluded,
	// as in the paper's per-algorithm comparison.
	AvgTime time.Duration
	// Items is how many items the averages cover.
	Items int
}

func (r QuantRow) String() string {
	return fmt.Sprintf("%-9s %-6s k=%-3d avg-cost=%10.2f avg-time=%12s (n=%d)",
		r.Granularity, r.Algorithm, r.K, r.AvgCost, r.AvgTime, r.Items)
}

// QuantConfig configures RunQuantitative.
type QuantConfig struct {
	// Ks are the summary sizes to sweep.
	Ks []int
	// Granularities to evaluate (default: all three).
	Granularities []model.Granularity
	// Algorithms to evaluate (default: ILP, RR, Greedy).
	Algorithms []summarize.Algorithm
	// Seed drives randomized rounding.
	Seed int64
}

func (c *QuantConfig) defaults() {
	if len(c.Ks) == 0 {
		c.Ks = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	}
	if len(c.Granularities) == 0 {
		c.Granularities = []model.Granularity{
			model.GranularityPairs, model.GranularitySentences, model.GranularityReviews,
		}
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = []summarize.Algorithm{summarize.AlgILP, summarize.AlgRR, summarize.AlgGreedy}
	}
}

// RunQuantitative reproduces the Figs 4-5 sweep: for every granularity
// and k it runs each algorithm on every item's coverage graph and
// averages cost and selection time.
func RunQuantitative(items []*model.Item, m model.Metric, cfg QuantConfig) ([]QuantRow, error) {
	cfg.defaults()
	var rows []QuantRow
	for _, gran := range cfg.Granularities {
		graphs := make([]*coverage.Graph, len(items))
		for i, item := range items {
			graphs[i] = coverage.Build(m, item, gran)
		}
		for _, k := range cfg.Ks {
			for _, alg := range cfg.Algorithms {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(k)))
				row := QuantRow{Granularity: gran, Algorithm: alg, K: k}
				var totalCost float64
				var totalTime time.Duration
				for _, g := range graphs {
					kk := k
					if kk > g.NumCandidates {
						kk = g.NumCandidates
					}
					start := time.Now()
					res, err := summarize.Run(alg, g, kk, rng)
					if err != nil {
						return nil, fmt.Errorf("eval: %v on %v k=%d: %w", alg, gran, k, err)
					}
					totalTime += time.Since(start)
					totalCost += res.Cost
				}
				row.Items = len(graphs)
				if row.Items > 0 {
					row.AvgCost = totalCost / float64(row.Items)
					row.AvgTime = totalTime / time.Duration(row.Items)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// GreedySelector adapts the paper's greedy summarizer to the
// sentence-selection Selector interface, for head-to-head comparison
// with the baselines in the Fig 6 experiment.
type GreedySelector struct {
	Metric model.Metric
}

// Name implements baselines.Selector.
func (GreedySelector) Name() string { return "ours (greedy)" }

// SelectSentences implements baselines.Selector: build the
// sentence-granularity coverage graph (§4.5) and run Algorithm 2.
func (s GreedySelector) SelectSentences(item *model.Item, k int) []int {
	g := coverage.Build(s.Metric, item, model.GranularitySentences)
	if k > g.NumCandidates {
		k = g.NumCandidates
	}
	return summarize.Greedy(g, k).Selected
}

// QualRow is one data point of the Fig 6 experiment: one (method, k)
// cell averaged over items.
type QualRow struct {
	Method           string
	K                int
	SentErr          float64
	SentErrPenalized float64
	Items            int
}

func (r QualRow) String() string {
	return fmt.Sprintf("%-14s k=%-3d sent-err=%.4f sent-err-penalized=%.4f (n=%d)",
		r.Method, r.K, r.SentErr, r.SentErrPenalized, r.Items)
}

// RunQualitative reproduces Fig 6: every selector (our greedy + the
// five baselines) picks k sentences per item; sent-err and
// sent-err-penalized are averaged across items.
func RunQualitative(items []*model.Item, m model.Metric, ks []int, selectors []baselines.Selector) []QualRow {
	if len(ks) == 0 {
		ks = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	}
	if len(selectors) == 0 {
		selectors = append([]baselines.Selector{GreedySelector{Metric: m}}, baselines.All()...)
	}
	// Selectors whose summary is a prefix of one fixed ranking
	// (TextRank, LexRank, LSA) are ranked once per item and sliced per
	// k; the others run per (item, k).
	type rankKey struct {
		sel  int
		item int
	}
	rankings := map[rankKey][]int{}
	for si, sel := range selectors {
		ranker, ok := sel.(baselines.Ranker)
		if !ok {
			continue
		}
		for ii, item := range items {
			rankings[rankKey{si, ii}] = ranker.RankSentences(item)
		}
	}
	var rows []QualRow
	for _, k := range ks {
		for si, sel := range selectors {
			row := QualRow{Method: sel.Name(), K: k, Items: len(items)}
			for ii, item := range items {
				var chosen []int
				if ranking, ok := rankings[rankKey{si, ii}]; ok {
					kk := k
					if kk > len(ranking) {
						kk = len(ranking)
					}
					chosen = ranking[:kk]
				} else {
					chosen = sel.SelectSentences(item, k)
				}
				F := SummaryPairs(item, chosen)
				P := item.Pairs()
				row.SentErr += SentErr(m.Ont, F, P, false)
				row.SentErrPenalized += SentErr(m.Ont, F, P, true)
			}
			if len(items) > 0 {
				row.SentErr /= float64(len(items))
				row.SentErrPenalized /= float64(len(items))
			}
			rows = append(rows, row)
		}
	}
	return rows
}
