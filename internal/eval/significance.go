package eval

import (
	"math/rand"

	"osars/internal/baselines"
	"osars/internal/model"
)

// PairedBootstrapPValue runs a paired bootstrap test on per-item score
// vectors a and b (lower is better, len(a) == len(b)): it returns the
// one-sided p-value for the hypothesis that method A's true mean score
// is lower than method B's, i.e. the fraction of resamples in which
// the resampled mean of a fails to beat the resampled mean of b. Small
// values (< 0.05) mean A's advantage is unlikely to be sampling noise.
func PairedBootstrapPValue(a, b []float64, iters int, rng *rand.Rand) float64 {
	if len(a) != len(b) {
		panic("eval: PairedBootstrapPValue needs paired samples")
	}
	n := len(a)
	if n == 0 {
		return 1
	}
	if iters <= 0 {
		iters = 10000
	}
	// Work on paired differences d = a - b; H1: mean(d) < 0.
	d := make([]float64, n)
	for i := range a {
		d[i] = a[i] - b[i]
	}
	fails := 0
	for it := 0; it < iters; it++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += d[rng.Intn(n)]
		}
		if sum >= 0 {
			fails++
		}
	}
	return float64(fails) / float64(iters)
}

// PerItemSentErr computes, for each selector, the per-item sent-err at
// one k — the paired samples PairedBootstrapPValue consumes.
func PerItemSentErr(items []*model.Item, m model.Metric, k int, selectors []baselines.Selector, penalized bool) map[string][]float64 {
	out := make(map[string][]float64, len(selectors))
	for _, sel := range selectors {
		scores := make([]float64, len(items))
		for i, item := range items {
			chosen := sel.SelectSentences(item, k)
			F := SummaryPairs(item, chosen)
			scores[i] = SentErr(m.Ont, F, item.Pairs(), penalized)
		}
		out[sel.Name()] = scores
	}
	return out
}
