package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"osars/internal/dataset"
	"osars/internal/extract"
	"osars/internal/model"
	"osars/internal/store"
)

func storeTemplate() store.Config {
	ont := dataset.CellPhoneOntology()
	return store.Config{
		Metric:   model.Metric{Ont: ont, Epsilon: 0.5},
		Pipeline: extract.NewPipeline(extract.NewMatcher(ont), nil),
	}
}

func newSharded(t *testing.T, shards int, dataDir string) *ShardedStore {
	t.Helper()
	cfg := Config{Shards: shards, Store: storeTemplate()}
	cfg.Store.DataDir = dataDir
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var phoneReviews = []extract.RawReview{
	{ID: "r1", Text: "The screen is excellent. The battery is awful.", Rating: 0.2},
	{ID: "r2", Text: "Amazing screen resolution! The battery life is terrible.", Rating: 0.0},
	{ID: "r3", Text: "Great camera and a decent price.", Rating: 0.8},
	{ID: "r4", Text: "The speaker is too quiet but the design is gorgeous.", Rating: 0.4},
}

// genIDs builds n synthetic item IDs in realistic shapes (slugs,
// numeric suffixes, uuid-ish hex).
func genIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		switch i % 3 {
		case 0:
			ids[i] = fmt.Sprintf("item-%d", i)
		case 1:
			ids[i] = fmt.Sprintf("sku/%04x/%04x", i*2654435761%65536, i)
		default:
			ids[i] = fmt.Sprintf("doctor-%c%c-%06d", 'a'+i%26, 'a'+(i/26)%26, i)
		}
	}
	return ids
}

// TestHashDistribution pins routing fairness: on 10k generated IDs
// every shard's load must be within ±20% of uniform at 4 and at 16
// shards.
func TestHashDistribution(t *testing.T) {
	ids := genIDs(10000)
	for _, shards := range []int{4, 16} {
		s := newSharded(t, shards, "")
		counts := make([]int, shards)
		for _, id := range ids {
			counts[s.ShardFor(id)]++
		}
		want := float64(len(ids)) / float64(shards)
		for i, c := range counts {
			if dev := float64(c)/want - 1; dev < -0.20 || dev > 0.20 {
				t.Errorf("%d shards: shard %d holds %d items (%.1f%% off uniform %0.f)",
					shards, i, c, dev*100, want)
			}
		}
	}
}

// TestRoutingDeterministic pins that placement is a pure function of
// (seed, id, shard count): two independent instances agree on every
// assignment — which is what makes routing stable across process
// restarts — and a different seed produces a different placement.
func TestRoutingDeterministic(t *testing.T) {
	ids := genIDs(2000)
	a := newSharded(t, 8, "")
	b := newSharded(t, 8, "")
	moved := 0
	other, err := New(Config{Shards: 8, HashSeed: 12345, Store: storeTemplate()})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if a.ShardFor(id) != b.ShardFor(id) {
			t.Fatalf("instances with the same seed disagree on %q", id)
		}
		if a.ShardFor(id) != other.ShardFor(id) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("changing the hash seed moved no items; seed is not wired into the hash")
	}
}

// TestJumpConsistency pins the consistent-hash property: growing the
// shard count from N to N+1 relocates only ~1/(N+1) of the keys (a
// modulo hash would relocate ~N/(N+1)).
func TestJumpConsistency(t *testing.T) {
	ids := genIDs(10000)
	s8 := newSharded(t, 8, "")
	s9 := newSharded(t, 9, "")
	moved := 0
	for _, id := range ids {
		if s8.ShardFor(id) != s9.ShardFor(id) {
			moved++
		}
	}
	frac := float64(moved) / float64(len(ids))
	if frac > 0.2 { // ideal is 1/9 ≈ 0.111
		t.Fatalf("8→9 shards moved %.1f%% of keys; jump hash should move ~11%%", frac*100)
	}
}

// normalize zeros the bookkeeping that legitimately differs between
// two separate ingests of the same corpus: wall-clock timestamps and
// shard-local generation tokens.
func normalize(items []store.ItemStats) []store.ItemStats {
	out := make([]store.ItemStats, len(items))
	copy(out, items)
	for i := range out {
		out[i].Generation = 0
		out[i].CreatedAt = time.Time{}
		out[i].UpdatedAt = time.Time{}
	}
	return out
}

func listJSON(t *testing.T, items []store.ItemStats) string {
	t.Helper()
	data, err := json.Marshal(items)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestListMatchesUnsharded ingests the same corpus into a 7-shard and
// an unsharded store and pins that List output matches: identical up
// to wall-clock timestamps and generation tokens, identical ordering
// (sorted by ID), and byte-identical across repeated calls on the
// sharded store (the parallel fan-out merge must be deterministic).
func TestListMatchesUnsharded(t *testing.T) {
	sharded := newSharded(t, 7, "")
	flat, err := store.New(storeTemplate())
	if err != nil {
		t.Fatal(err)
	}
	ids := genIDs(120)
	for i, id := range ids {
		revs := phoneReviews[i%3 : i%3+1]
		if _, err := sharded.AppendReviews(id, "Item "+id, revs); err != nil {
			t.Fatal(err)
		}
		if _, err := flat.AppendReviews(id, "Item "+id, revs); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := sharded.Len(), flat.Len(); got != want {
		t.Fatalf("Len: sharded %d, unsharded %d", got, want)
	}
	got := listJSON(t, normalize(sharded.List()))
	want := listJSON(t, normalize(flat.List()))
	if got != want {
		t.Fatalf("sharded List diverged from unsharded:\nflat:    %s\nsharded: %s", want, got)
	}
	// Determinism: repeated calls are byte-identical (including the
	// fields normalize zeroes — they are stable within one store).
	first := listJSON(t, sharded.List())
	for i := 0; i < 5; i++ {
		if again := listJSON(t, sharded.List()); again != first {
			t.Fatalf("List call %d diverged from the first call", i)
		}
	}
	// Each item is reachable through the routed single-item path too.
	for _, id := range ids {
		if _, ok := sharded.ItemStats(id); !ok {
			t.Fatalf("item %q not reachable after ingest", id)
		}
	}
}

// TestSummaryMatchesUnsharded pins that a sharded store's summaries
// are identical to the unsharded store's over the same corpus.
func TestSummaryMatchesUnsharded(t *testing.T) {
	sharded := newSharded(t, 5, "")
	flat, err := store.New(storeTemplate())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("p%d", i)
		sharded.AppendReviews(id, "", phoneReviews)
		flat.AppendReviews(id, "", phoneReviews)
	}
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("p%d", i)
		for _, g := range []model.Granularity{model.GranularityPairs, model.GranularitySentences} {
			got, _, err := sharded.Summary(id, 2, g, store.MethodGreedy)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := flat.Summary(id, 2, g, store.MethodGreedy)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cost != want.Cost || fmt.Sprint(got.Indices) != fmt.Sprint(want.Indices) {
				t.Fatalf("%s/%v: sharded summary %v (cost %v) != unsharded %v (cost %v)",
					id, g, got.Indices, got.Cost, want.Indices, want.Cost)
			}
		}
	}
	// Cache behavior is shard-local but must still work end to end.
	if _, cached, _ := sharded.Summary("p3", 2, model.GranularityPairs, store.MethodGreedy); !cached {
		t.Fatal("second identical read was not cached")
	}
}

// TestDurableShardedRestart is the library-level crash-recovery test:
// ingest + delete against a durable 4-shard store, abandon it without
// Close (FsyncAlways has already made every ack durable), reopen, and
// the full List — including generations and timestamps, which are
// logged — must be byte-identical; summaries must match too.
func TestDurableShardedRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := newSharded(t, 4, dir)
	ids := genIDs(40)
	for i, id := range ids {
		if _, err := s1.AppendReviews(id, "", phoneReviews[:1+i%3]); err != nil {
			t.Fatal(err)
		}
	}
	// Second wave: appends bump generations, then delete a few items.
	for _, id := range ids[:10] {
		if _, err := s1.AppendReviews(id, "", phoneReviews[3:]); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids[30:34] {
		if ok, err := s1.Delete(id); !ok || err != nil {
			t.Fatalf("delete %s = (%v, %v)", id, ok, err)
		}
	}
	want := listJSON(t, s1.List())
	wantSum, _, err := s1.Summary(ids[0], 2, model.GranularitySentences, store.MethodGreedy)
	if err != nil {
		t.Fatal(err)
	}
	// Hard stop: no Close. FsyncAlways means the WAL already holds
	// every acknowledged record.

	s2 := newSharded(t, 4, dir)
	defer s2.Close()
	rec, ok := s2.Recovery()
	if !ok || rec.ReplayedRecords == 0 || rec.Items != len(ids)-4 {
		t.Fatalf("recovery = %+v ok=%v", rec, ok)
	}
	if got := listJSON(t, s2.List()); got != want {
		t.Fatalf("List diverged after restart:\npre:  %s\npost: %s", want, got)
	}
	gotSum, _, err := s2.Summary(ids[0], 2, model.GranularitySentences, store.MethodGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if gotSum.Cost != wantSum.Cost || fmt.Sprint(gotSum.Indices) != fmt.Sprint(wantSum.Indices) {
		t.Fatalf("summary diverged after restart: %+v vs %+v", gotSum, wantSum)
	}
	for _, id := range ids[30:34] {
		if _, ok := s2.ItemStats(id); ok {
			t.Fatalf("deleted item %s resurrected by restart", id)
		}
	}
}

// TestLayoutGuards pins the durable-layout safety rails: a sharded
// data dir cannot be reopened with a different shard count or hash
// seed, and a flat (unsharded) data dir is refused outright.
func TestLayoutGuards(t *testing.T) {
	dir := t.TempDir()
	s := newSharded(t, 4, dir)
	if _, err := s.AppendReviews("p1", "", phoneReviews[:1]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := Config{Shards: 8, Store: storeTemplate()}
	cfg.Store.DataDir = dir
	if _, err := New(cfg); err == nil {
		t.Fatal("reopening a 4-shard dir with 8 shards succeeded")
	}
	cfg = Config{Shards: 4, HashSeed: 999, Store: storeTemplate()}
	cfg.Store.DataDir = dir
	if _, err := New(cfg); err == nil {
		t.Fatal("reopening with a different hash seed succeeded")
	}
	// Same layout reopens fine.
	s2 := newSharded(t, 4, dir)
	if s2.Len() != 1 {
		t.Fatalf("reopen lost the corpus: len=%d", s2.Len())
	}
	s2.Close()

	// Flat-layout dir: a bare store's WAL at the top level.
	flatDir := t.TempDir()
	flatCfg := storeTemplate()
	flatCfg.DataDir = flatDir
	flat, err := store.New(flatCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flat.AppendReviews("p1", "", phoneReviews[:1]); err != nil {
		t.Fatal(err)
	}
	if err := flat.Close(); err != nil {
		t.Fatal(err)
	}
	cfg = Config{Shards: 4, Store: storeTemplate()}
	cfg.Store.DataDir = flatDir
	if _, err := New(cfg); err == nil {
		t.Fatal("sharded open of a flat-layout data dir succeeded")
	}
}

// TestShardDirsLayout pins the on-disk shape: shard i's WAL lives
// under shard-%04d and the layout manifest sits at the root.
func TestShardDirsLayout(t *testing.T) {
	dir := t.TempDir()
	s := newSharded(t, 3, dir)
	for _, id := range genIDs(30) {
		if _, err := s.AppendReviews(id, "", phoneReviews[:1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, layoutFile)); err != nil {
		t.Fatalf("missing layout manifest: %v", err)
	}
	for i := 0; i < 3; i++ {
		entries, err := os.ReadDir(ShardDir(dir, i))
		if err != nil {
			t.Fatalf("shard %d dir: %v", i, err)
		}
		if len(entries) == 0 {
			t.Fatalf("shard %d dir is empty; want WAL/snapshot files", i)
		}
	}
}

// TestStatsAggregation pins that the aggregate counters are the sums
// of the per-shard breakdown and the breakdown is exposed.
func TestStatsAggregation(t *testing.T) {
	s := newSharded(t, 4, "")
	ids := genIDs(50)
	for _, id := range ids {
		if _, err := s.AppendReviews(id, "", phoneReviews[:2]); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids[:20] {
		if _, _, err := s.Summary(id, 1, model.GranularityPairs, store.MethodGreedy); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("stats shards = %d, per-shard = %d", st.Shards, len(st.PerShard))
	}
	var items int
	var appends, solves uint64
	for _, p := range st.PerShard {
		items += p.Items
		appends += p.Appends
		solves += p.Solves
	}
	if items != st.Items || items != len(ids) {
		t.Fatalf("items: agg %d, sum %d, want %d", st.Items, items, len(ids))
	}
	if appends != st.Appends || appends != uint64(len(ids)) {
		t.Fatalf("appends: agg %d, sum %d", st.Appends, appends)
	}
	if solves != st.Solves || solves != 20 {
		t.Fatalf("solves: agg %d, sum %d, want 20", st.Solves, solves)
	}
}

// TestConcurrentMixedWorkload hammers a durable sharded store with
// concurrent appends, summaries and deletes (the shard-stress CI job
// runs this under -race) and then verifies a restart still recovers a
// consistent corpus.
func TestConcurrentMixedWorkload(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 4, Store: storeTemplate()}
	cfg.Store.DataDir = dir
	cfg.Store.Fsync = store.FsyncNever // stress throughput, not the disk
	cfg.Store.SnapshotEvery = 64       // exercise snapshot/compaction concurrently
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		perW    = 40
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				id := fmt.Sprintf("item-%d", (w*perW+i)%31)
				switch i % 5 {
				case 0, 1, 2:
					if _, err := s.AppendReviews(id, "", phoneReviews[i%3:i%3+1]); err != nil {
						t.Error(err)
						return
					}
				case 3:
					if _, _, err := s.Summary(id, 1, model.GranularitySentences, store.MethodGreedy); err != nil && err != store.ErrNotFound {
						t.Error(err)
						return
					}
				default:
					if _, err := s.Delete(id); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	want := listJSON(t, s.List())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := newSharded(t, 4, dir)
	defer s2.Close()
	if got := listJSON(t, s2.List()); got != want {
		t.Fatalf("restart after concurrent mixed workload diverged:\npre:  %s\npost: %s", want, got)
	}
}

// TestGroupCommitAcrossShards: concurrent FsyncAlways writers spread
// over a 4-shard store exercise one independent group-commit queue per
// shard. A hard stop (no Close) must recover every acknowledged append
// exactly — per-item review counts equal the acknowledged counts, so no
// batch lost or double-applied a record on any shard.
func TestGroupCommitAcrossShards(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 4, Store: storeTemplate()}
	cfg.Store.DataDir = dir
	cfg.Store.Fsync = store.FsyncAlways
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		perW    = 16
		items   = 13 // spread over all shards, several writers per item
	)
	var wg sync.WaitGroup
	var acked [items]int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				item := (w + i*3) % items
				rv := phoneReviews[i%len(phoneReviews)]
				if _, err := s.AppendReviews(fmt.Sprintf("item-%d", item), "", []extract.RawReview{{
					ID: fmt.Sprintf("w%d-r%d", w, i), Text: rv.Text, Rating: rv.Rating,
				}}); err != nil {
					t.Error(err)
					return
				}
				atomic.AddInt64(&acked[item], 1)
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	want := listJSON(t, s.List())
	// Hard stop: FsyncAlways means every acknowledged append is already
	// on stable storage; no Close, no final snapshot.

	s2 := newSharded(t, 4, dir)
	defer s2.Close()
	if got := listJSON(t, s2.List()); got != want {
		t.Fatalf("crash recovery diverged from acknowledged state:\npre:  %s\npost: %s", want, got)
	}
	for item := 0; item < items; item++ {
		st, ok := s2.ItemStats(fmt.Sprintf("item-%d", item))
		if n := atomic.LoadInt64(&acked[item]); !ok || int64(st.NumReviews) != n {
			t.Fatalf("item-%d: recovered %d reviews (ok=%v), want %d acknowledged", item, st.NumReviews, ok, n)
		}
	}
}
