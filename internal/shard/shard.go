// Package shard partitions the stateful corpus across N independent
// store.Store shards so the serving path scales with cores and WAL
// streams instead of contending on one lock.
//
// The paper's workload is naturally partitionable: every item's
// (concept, sentiment) pairs, coverage graph and k-coverage solve are
// independent of every other item (Definitions 1–2, §4) — only the
// ontology and sentiment lexicon are shared, and those are read-only
// after construction. A ShardedStore therefore routes each item ID to
// one shard by a seeded consistent hash (FNV-1a of the ID folded
// through Lamping–Veach jump hash) and each shard owns its own mutex,
// generation counter, LRU summary-cache slice and — in durable mode —
// its own WAL/snapshot directory (<data-dir>/shard-0000/...). Two
// appends to different items on different shards never touch the same
// lock or the same log file, so ingestion throughput and fsync latency
// scale with the shard count.
//
// Durable shards also each own an independent group-commit queue
// (store/commit.go): writers hitting the same shard batch into one WAL
// append + one fsync, and because every shard has its own committer,
// the per-shard group commits overlap in the kernel — the two scaling
// axes compose (shards spread the load, group commit amortizes the
// fsyncs within each shard).
//
// Single-item operations (AppendReviews, Item, Summary, Delete) route
// to exactly one shard. Corpus-wide operations (List, Len, Stats) do a
// bounded parallel fan-out and a deterministic k-way merge by item ID,
// so a sharded store's List output is byte-identical to the unsharded
// store's over the same corpus. Recovery at boot opens all shard
// directories in parallel.
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"osars/internal/extract"
	"osars/internal/model"
	"osars/internal/ontoreg"
	"osars/internal/store"
)

// MaxShards bounds the shard count (a directory and a goroutine set
// per shard; more than this is configuration error, not scale).
const MaxShards = 1024

// DefaultHashSeed seeds the item-ID hash when Config.HashSeed is zero.
// The seed is persisted in the shard layout manifest of a durable
// store, so routing is stable across process restarts by construction.
const DefaultHashSeed uint64 = 0x6f736172732d7368 // "osars-sh"

// Config configures a ShardedStore.
type Config struct {
	// Shards is the number of independent store partitions (≥ 1).
	Shards int
	// HashSeed seeds the item-ID → shard hash (default
	// DefaultHashSeed). Durable stores persist it in the layout
	// manifest and refuse to open with a different seed.
	HashSeed uint64
	// Store is the per-shard configuration template. Store.DataDir is
	// the ROOT data directory: shard i lives in
	// <DataDir>/shard-<i left-padded to 4 digits>. Empty DataDir means
	// in-memory shards. Cache budgets are split evenly across shards
	// (each shard gets MaxCacheEntries/N entries and MaxCacheBytes/N
	// bytes) so a sharded store's total cache footprint matches the
	// unsharded configuration.
	Store store.Config
}

// ShardedStore is a corpus partitioned across independent store.Store
// shards. It exposes the same method set as store.Store and is safe
// for concurrent use.
type ShardedStore struct {
	seed   uint64
	shards []*store.Store

	// activeMu serializes ActivateOntology fan-outs so two concurrent
	// activations can not interleave across shards and leave them on
	// different versions.
	activeMu sync.Mutex

	recovered bool
	recovery  store.RecoveryStats
}

// layout is the JSON manifest pinned at the root of a durable sharded
// data directory. Opening the directory with a different shard count
// or hash seed would silently route items to the wrong shard, so New
// refuses instead.
type layout struct {
	Schema   string `json:"schema"`
	Shards   int    `json:"shards"`
	HashSeed uint64 `json:"hash_seed"`
}

const (
	layoutSchema = "osars-shard-layout/v1"
	layoutFile   = "shard-layout.json"
)

// ShardDir returns the data subdirectory of shard i under root.
func ShardDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%04d", i))
}

// New validates the config, opens (and in durable mode recovers) all
// shards in parallel, and returns the sharded store. Call Close when
// done with a durable store.
func New(cfg Config) (*ShardedStore, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: Shards must be ≥ 1, got %d", cfg.Shards)
	}
	if cfg.Shards > MaxShards {
		return nil, fmt.Errorf("shard: Shards must be ≤ %d, got %d", cfg.Shards, MaxShards)
	}
	if cfg.HashSeed == 0 {
		cfg.HashSeed = DefaultHashSeed
	}
	if cfg.Store.DataDir != "" {
		if err := checkLayout(cfg); err != nil {
			return nil, err
		}
	}

	s := &ShardedStore{
		seed:   cfg.HashSeed,
		shards: make([]*store.Store, cfg.Shards),
	}
	start := time.Now()
	// Boot all shards in parallel: durable recovery is I/O- and
	// annotation-bound (snapshot decode + WAL replay), so N shards
	// recover in roughly the time of the largest one.
	errs := make([]error, cfg.Shards)
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc := shardConfig(cfg, i)
			st, err := store.New(sc)
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
			s.shards[i] = st
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		// Close whatever opened so no shard is left holding its WAL.
		for _, st := range s.shards {
			if st != nil {
				st.Close()
			}
		}
		return nil, err
	}
	// Merge per-shard recovery reports into one corpus-level view.
	for _, st := range s.shards {
		rec, ok := st.Recovery()
		if !ok {
			continue
		}
		s.recovered = true
		s.recovery.SnapshotItems += rec.SnapshotItems
		s.recovery.ReplayedRecords += rec.ReplayedRecords
		s.recovery.TruncatedBytes += rec.TruncatedBytes
		s.recovery.DroppedSegments += rec.DroppedSegments
		s.recovery.Items += rec.Items
		if rec.SnapshotSeq > s.recovery.SnapshotSeq {
			s.recovery.SnapshotSeq = rec.SnapshotSeq
		}
		if rec.LastSeq > s.recovery.LastSeq {
			s.recovery.LastSeq = rec.LastSeq
		}
	}
	if s.recovered {
		s.recovery.Duration = time.Since(start)
	}
	return s, nil
}

// shardConfig derives shard i's store.Config from the template:
// its own data subdirectory, an even split of the cache budgets, and
// its own "shard" metric label (all shards share the template's
// registry, so per-shard series land in the same families).
func shardConfig(cfg Config, i int) store.Config {
	sc := cfg.Store
	if sc.DataDir != "" {
		sc.DataDir = ShardDir(sc.DataDir, i)
	}
	sc.ObsShard = strconv.Itoa(i)
	n := cfg.Shards
	// Budgets: an explicit negative (disabled) passes through; zero
	// (defaults) is resolved here so the split applies to the default
	// too; positives are divided with a floor of 1 entry.
	if sc.MaxCacheEntries == 0 {
		sc.MaxCacheEntries = store.DefaultMaxCacheEntries
	}
	if sc.MaxCacheEntries > 0 {
		if sc.MaxCacheEntries = sc.MaxCacheEntries / n; sc.MaxCacheEntries < 1 {
			sc.MaxCacheEntries = 1
		}
	}
	if sc.MaxCacheBytes == 0 {
		sc.MaxCacheBytes = store.DefaultMaxCacheBytes
	}
	if sc.MaxCacheBytes > 0 {
		if sc.MaxCacheBytes = sc.MaxCacheBytes / int64(n); sc.MaxCacheBytes < 1 {
			sc.MaxCacheBytes = 1
		}
	}
	return sc
}

// checkLayout pins the shard layout of a durable data directory: on
// first use it writes the manifest; afterwards the manifest must match
// the requested configuration exactly. A directory that already holds
// a flat (unsharded) WAL is refused for Shards > 1 — migrating an
// existing corpus requires a fresh directory (re-ingest or
// snapshot/restore), because records in the flat log are not
// partitioned.
func checkLayout(cfg Config) error {
	root := cfg.Store.DataDir
	if err := os.MkdirAll(root, 0o755); err != nil {
		return fmt.Errorf("shard: create data dir: %w", err)
	}
	path := filepath.Join(root, layoutFile)
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		var l layout
		if err := json.Unmarshal(data, &l); err != nil {
			return fmt.Errorf("shard: parse %s: %w", path, err)
		}
		if l.Schema != layoutSchema {
			return fmt.Errorf("shard: %s: unknown schema %q", path, l.Schema)
		}
		if l.Shards != cfg.Shards || l.HashSeed != cfg.HashSeed {
			return fmt.Errorf(
				"shard: %s was created with %d shards (hash seed %#x) but %d shards (hash seed %#x) were requested; "+
					"changing the shard layout of an existing data dir would misroute items — use a fresh -data-dir",
				root, l.Shards, l.HashSeed, cfg.Shards, cfg.HashSeed)
		}
		return nil
	case os.IsNotExist(err):
		// No manifest. Refuse directories that already hold a flat
		// (unsharded) store's WAL or snapshots.
		entries, derr := os.ReadDir(root)
		if derr != nil {
			return fmt.Errorf("shard: scan data dir: %w", derr)
		}
		for _, e := range entries {
			name := e.Name()
			if filepath.Ext(name) == ".wal" || filepath.Ext(name) == ".snap" {
				return fmt.Errorf(
					"shard: %s holds a flat (unsharded) store layout; a sharded store needs a fresh data dir", root)
			}
		}
		return writeLayout(path, layout{Schema: layoutSchema, Shards: cfg.Shards, HashSeed: cfg.HashSeed})
	default:
		return fmt.Errorf("shard: read %s: %w", path, err)
	}
}

// writeLayout writes the manifest atomically (temp file + rename) so a
// crash mid-create never leaves a torn manifest.
func writeLayout(path string, l layout) error {
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), "shard-layout-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// fnv1a is a seeded FNV-1a over the item ID. Seeding XORs the seed
// into the offset basis, which preserves FNV's avalanche while making
// the placement function deployment-specific.
func fnv1a(seed uint64, s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ seed
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// jump is Lamping–Veach jump consistent hash: maps key uniformly onto
// [0, buckets) with the property that growing the bucket count moves
// only ~1/buckets of the keys.
func jump(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// ShardFor returns the shard index owning the item ID.
func (s *ShardedStore) ShardFor(id string) int {
	return jump(fnv1a(s.seed, id), len(s.shards))
}

func (s *ShardedStore) shard(id string) *store.Store {
	return s.shards[s.ShardFor(id)]
}

// NumShards returns the shard count.
func (s *ShardedStore) NumShards() int { return len(s.shards) }

// HashSeed returns the item-placement hash seed. A replication
// follower compares it against the primary's so a replica can never
// silently apply a shard stream under a different routing function.
func (s *ShardedStore) HashSeed() uint64 { return s.seed }

// ReplStatus fans out the per-shard replication positions (WAL end,
// retention horizon, newest snapshot cut). Only durable stores have a
// position; the error from the first non-durable shard is returned.
func (s *ShardedStore) ReplStatus() ([]store.ReplStatus, error) {
	out := make([]store.ReplStatus, len(s.shards))
	errs := make([]error, len(s.shards))
	s.fanOut(func(i int) { out[i], errs[i] = s.shards[i].ReplStatus() })
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// Shard returns shard i (test/diagnostic access to a partition).
func (s *ShardedStore) Shard(i int) *store.Store { return s.shards[i] }

// AppendReviews routes the ingest to the item's shard.
func (s *ShardedStore) AppendReviews(id, name string, reviews []extract.RawReview) (store.ItemStats, error) {
	if id == "" {
		// Match the unsharded store's error without hashing "".
		return store.ItemStats{}, errors.New("store: item id must be non-empty")
	}
	return s.shard(id).AppendReviews(id, name, reviews)
}

// Item routes to the item's shard.
func (s *ShardedStore) Item(id string) (*model.Item, uint64, bool) {
	return s.shard(id).Item(id)
}

// ItemStats routes to the item's shard.
func (s *ShardedStore) ItemStats(id string) (store.ItemStats, bool) {
	return s.shard(id).ItemStats(id)
}

// Summary routes to the item's shard: the solve, cache lookup and
// singleflight all happen on shard-local state.
func (s *ShardedStore) Summary(id string, k int, g model.Granularity, m store.Method) (*store.Summary, bool, error) {
	return s.shard(id).Summary(id, k, g, m)
}

// Delete routes to the item's shard.
func (s *ShardedStore) Delete(id string) (bool, error) {
	return s.shard(id).Delete(id)
}

// fanOut runs fn(i) for every shard index with bounded parallelism.
func (s *ShardedStore) fanOut(fn func(i int)) {
	workers := runtime.GOMAXPROCS(0) * 2
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	if workers <= 1 {
		for i := range s.shards {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.shards) {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// List fans out across shards in parallel and k-way merges the
// per-shard (already ID-sorted) listings. Items are disjoint across
// shards, so the merged output is exactly the unsharded store's
// ID-sorted List over the same corpus, byte for byte.
func (s *ShardedStore) List() []store.ItemStats {
	per := make([][]store.ItemStats, len(s.shards))
	s.fanOut(func(i int) { per[i] = s.shards[i].List() })
	return mergeByID(per)
}

// mergeByID k-way merges ID-sorted slices into one ID-sorted slice.
func mergeByID(per [][]store.ItemStats) []store.ItemStats {
	total := 0
	live := 0
	for _, p := range per {
		total += len(p)
		if len(p) > 0 {
			live++
		}
	}
	out := make([]store.ItemStats, 0, total)
	if live == 0 {
		return out
	}
	heads := make([]int, len(per))
	for len(out) < total {
		best := -1
		for i, p := range per {
			if heads[i] >= len(p) {
				continue
			}
			if best < 0 || p[heads[i]].ID < per[best][heads[best]].ID {
				best = i
			}
		}
		out = append(out, per[best][heads[best]])
		heads[best]++
	}
	return out
}

// Len sums the shard sizes.
func (s *ShardedStore) Len() int {
	n := 0
	for _, st := range s.shards {
		n += st.Len()
	}
	return n
}

// Stats fans out across shards and aggregates, attaching the
// per-shard breakdown so hot shards and skewed caches are observable.
func (s *ShardedStore) Stats() store.Stats {
	per := make([]store.Stats, len(s.shards))
	s.fanOut(func(i int) { per[i] = s.shards[i].Stats() })
	agg := store.Stats{Shards: len(s.shards), PerShard: per}
	if len(per) > 0 {
		agg.ActiveOntology = per[0].ActiveOntology
		agg.ActiveOntologyVersion = per[0].ActiveOntologyVersion
	}
	for i := range per {
		p := &per[i]
		agg.Items += p.Items
		agg.Appends += p.Appends
		agg.Solves += p.Solves
		agg.CacheHits += p.CacheHits
		agg.CacheMisses += p.CacheMisses
		agg.CacheEntries += p.CacheEntries
		agg.CacheBytes += p.CacheBytes
		agg.CacheEvictions += p.CacheEvictions
		agg.StaleItems += p.StaleItems
		agg.Reannotations += p.Reannotations
		agg.OntologyActivations += p.OntologyActivations
		agg.IndexMerges += p.IndexMerges
		agg.IndexRebuilds += p.IndexRebuilds
		agg.IndexWarmHits += p.IndexWarmHits
		agg.IndexWarmFallbacks += p.IndexWarmFallbacks
		if p.ActiveOntologyVersion != agg.ActiveOntologyVersion {
			// A transient mid-activation scrape; never report one shard's
			// version as the whole corpus's.
			agg.ActiveOntology = "mixed"
			agg.ActiveOntologyVersion = "mixed"
		}
		if p.Durable {
			agg.Durable = true
			agg.WALSegments += p.WALSegments
			agg.SnapshotsWritten += p.SnapshotsWritten
			if p.WALLastSeq > agg.WALLastSeq {
				agg.WALLastSeq = p.WALLastSeq
			}
		}
	}
	return agg
}

// ActivateOntology hot-swaps the active ontology runtime on every
// shard (parallel fan-out; all shards are attempted, errors joined).
// Concurrent activations are serialized, so after any successful call
// every shard is on the same version; each shard logs its own activate
// record, so per-shard WALs and replication streams stay independent.
func (s *ShardedStore) ActivateOntology(rt *ontoreg.Runtime) error {
	s.activeMu.Lock()
	defer s.activeMu.Unlock()
	errs := make([]error, len(s.shards))
	s.fanOut(func(i int) {
		if err := s.shards[i].ActivateOntology(rt); err != nil {
			errs[i] = fmt.Errorf("shard %d: %w", i, err)
		}
	})
	return errors.Join(errs...)
}

// ActiveRuntime returns shard 0's active runtime. Shards only diverge
// transiently, mid-activation (or mid-catch-up on a replica).
func (s *ShardedStore) ActiveRuntime() *ontoreg.Runtime {
	return s.shards[0].ActiveRuntime()
}

// Snapshot forces a snapshot + WAL compaction on every shard
// (parallel; first error wins, all shards are still attempted).
func (s *ShardedStore) Snapshot() error {
	errs := make([]error, len(s.shards))
	s.fanOut(func(i int) { errs[i] = s.shards[i].Snapshot() })
	return errors.Join(errs...)
}

// Sync forces every shard's WAL to stable storage.
func (s *ShardedStore) Sync() error {
	errs := make([]error, len(s.shards))
	s.fanOut(func(i int) { errs[i] = s.shards[i].Sync() })
	return errors.Join(errs...)
}

// Recovery returns the merged per-shard recovery report. SnapshotSeq
// and LastSeq are the maxima across shards (each shard numbers its own
// WAL); the counters are sums; Duration is the wall-clock time of the
// parallel recovery.
func (s *ShardedStore) Recovery() (store.RecoveryStats, bool) {
	return s.recovery, s.recovered
}

// PersistErr returns the first recorded background persistence
// failure across shards, if any.
func (s *ShardedStore) PersistErr() error {
	for _, st := range s.shards {
		if err := st.PersistErr(); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes every shard in parallel. Safe to call more
// than once; returns the first error but closes all shards regardless.
func (s *ShardedStore) Close() error {
	errs := make([]error, len(s.shards))
	s.fanOut(func(i int) { errs[i] = s.shards[i].Close() })
	return errors.Join(errs...)
}
