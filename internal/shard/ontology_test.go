package shard

import (
	"testing"

	"osars/internal/dataset"
	"osars/internal/model"
	"osars/internal/ontoreg"
	"osars/internal/store"
)

func phoneRuntime(t *testing.T, eps float64) *ontoreg.Runtime {
	t.Helper()
	e, err := ontoreg.NewEntry("phone", dataset.CellPhoneOntology(), nil, eps)
	if err != nil {
		t.Fatal(err)
	}
	return e.Runtime()
}

// TestActivateFansOutToEveryShard: activation must land on ALL shards
// — the aggregate stats report one coherent active version and every
// shard's own runtime agrees, no matter which shard an item routes to.
func TestActivateFansOutToEveryShard(t *testing.T) {
	v2 := phoneRuntime(t, 0.9)
	s := newSharded(t, 4, "")
	ids := genIDs(40)
	for _, id := range ids {
		if _, err := s.AppendReviews(id, "Item "+id, phoneReviews); err != nil {
			t.Fatal(err)
		}
	}

	if err := s.ActivateOntology(v2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.NumShards(); i++ {
		rt := s.Shard(i).ActiveRuntime()
		if rt.Version != v2.Version {
			t.Fatalf("shard %d runtime = %s@%s, want %s", i, rt.Name, rt.Version, v2.Version)
		}
	}
	if rt := s.ActiveRuntime(); rt.Version != v2.Version {
		t.Fatalf("aggregate runtime = %s, want %s", rt.Version, v2.Version)
	}

	st := s.Stats()
	if st.ActiveOntology != "phone" || st.ActiveOntologyVersion != v2.Version {
		t.Fatalf("aggregate identity = %s@%s", st.ActiveOntology, st.ActiveOntologyVersion)
	}
	if st.StaleItems != len(ids) {
		t.Fatalf("aggregate stale = %d, want %d", st.StaleItems, len(ids))
	}
	if st.OntologyActivations != uint64(s.NumShards()) {
		t.Fatalf("aggregate activations = %d, want one per shard (%d)", st.OntologyActivations, s.NumShards())
	}

	// Solving every item drains the stale count across all shards.
	for _, id := range ids {
		sum, _, err := s.Summary(id, 3, model.GranularitySentences, store.MethodGreedy)
		if err != nil {
			t.Fatal(err)
		}
		if sum.OntologyVersion != v2.Version {
			t.Fatalf("item %s solved under %s, want %s", id, sum.OntologyVersion, v2.Version)
		}
	}
	if st := s.Stats(); st.StaleItems != 0 || st.Reannotations != uint64(len(ids)) {
		t.Fatalf("after solving all: stale=%d reann=%d, want 0/%d", st.StaleItems, st.Reannotations, len(ids))
	}
}

// TestShardedActivationSurvivesRestart: every shard logs the
// activation in its own WAL, so a reopened sharded store agrees on the
// active version without any cross-shard coordination at boot.
func TestShardedActivationSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	v2 := phoneRuntime(t, 0.9)

	s := newSharded(t, 3, dir)
	for _, id := range genIDs(12) {
		if _, err := s.AppendReviews(id, "Item "+id, phoneReviews[:2]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.ActivateOntology(v2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newSharded(t, 3, dir)
	defer s2.Close()
	for i := 0; i < s2.NumShards(); i++ {
		if rt := s2.Shard(i).ActiveRuntime(); rt.Version != v2.Version {
			t.Fatalf("shard %d recovered %s@%s, want %s", i, rt.Name, rt.Version, v2.Version)
		}
	}
	if st := s2.Stats(); st.ActiveOntologyVersion != v2.Version || st.Items != 12 {
		t.Fatalf("recovered stats = %+v", st)
	}
}
