package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// drainTail reads frames from a fresh Tail until it is caught up,
// returning the decoded (seq, payload) pairs via a FrameReader — which
// also exercises the wire-parse path on the exact bytes Tail emits.
func drainTail(t *testing.T, l *Log, after uint64) (seqs []uint64, payloads [][]byte) {
	t.Helper()
	tail, err := l.TailAfter(after)
	if err != nil {
		t.Fatalf("TailAfter(%d): %v", after, err)
	}
	defer tail.Close()
	for {
		frames, n, first, err := tail.Next(1 << 20)
		if err != nil {
			t.Fatalf("tail next: %v", err)
		}
		if n == 0 {
			return seqs, payloads
		}
		if wantFirst := uint64(len(seqs)) + after + 1; first != wantFirst {
			t.Fatalf("batch first seq = %d, want %d", first, wantFirst)
		}
		fr := NewFrameReader(bytes.NewReader(frames))
		got := 0
		for {
			seq, payload, err := fr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("frame reader: %v", err)
			}
			seqs = append(seqs, seq)
			payloads = append(payloads, append([]byte(nil), payload...))
			got++
		}
		if got != n {
			t.Fatalf("batch advertised %d frames, parsed %d", n, got)
		}
	}
}

func TestTailDeliversExistingAndNewRecords(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 256}) // force rotations
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := payloads(40)
	for _, p := range want[:25] {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	seqs, got := drainTail(t, l, 0)
	if len(got) != 25 {
		t.Fatalf("tail delivered %d records, want 25", len(got))
	}
	for i := range got {
		if seqs[i] != uint64(i+1) || !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: seq %d payload %q", i, seqs[i], got[i])
		}
	}

	// A tail that starts mid-log skips the prefix.
	seqs, got = drainTail(t, l, 20)
	if len(got) != 5 || seqs[0] != 21 || !bytes.Equal(got[0], want[20]) {
		t.Fatalf("tail after 20: %d records, first seq %d", len(got), seqs[0])
	}

	// New appends show up on an already-caught-up tail.
	tail, err := l.TailAfter(25)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	if _, n, _, err := tail.Next(0); err != nil || n != 0 {
		t.Fatalf("caught-up tail returned n=%d err=%v", n, err)
	}
	for _, p := range want[25:] {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	frames, n, first, err := tail.Next(1 << 20)
	if err != nil || n != 15 || first != 26 {
		t.Fatalf("tail after new appends: n=%d first=%d err=%v", n, first, err)
	}
	fr := NewFrameReader(bytes.NewReader(frames))
	if seq, payload, err := fr.Next(); err != nil || seq != 26 || !bytes.Equal(payload, want[25]) {
		t.Fatalf("first new frame: seq %d err %v", seq, err)
	}
}

// TestTailConcurrentWithAppendsAcrossRotations is the tailing-reader
// race the replication stream depends on: a reader drains the log while
// a writer appends through many segment rotations. Run with -race.
func TestTailConcurrentWithAppendsAcrossRotations(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const total = 500
	want := payloads(total)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, p := range want {
			if _, err := l.Append(p); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
			if i%97 == 0 {
				if err := l.Rotate(); err != nil {
					t.Errorf("rotate at %d: %v", i, err)
					return
				}
			}
		}
	}()

	tail, err := l.TailAfter(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	var got [][]byte
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < total {
		if time.Now().After(deadline) {
			t.Fatalf("tail stalled at %d/%d records", len(got), total)
		}
		frames, n, _, err := tail.Next(4 << 10)
		if err != nil {
			t.Fatalf("tail next at %d: %v", len(got), err)
		}
		if n == 0 {
			select {
			case <-l.AppendNotify():
			case <-time.After(50 * time.Millisecond):
			}
			continue
		}
		fr := NewFrameReader(bytes.NewReader(frames))
		for {
			_, payload, err := fr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("frame reader at %d: %v", len(got), err)
			}
			got = append(got, append([]byte(nil), payload...))
		}
	}
	wg.Wait()
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestReplayConcurrentWithAppendsAcrossRotate: Replay (the boot-time
// reader) must deliver a clean contiguous prefix even while Append and
// Rotate run concurrently. Run with -race.
func TestReplayConcurrentWithAppendsAcrossRotate(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const total = 300
	want := payloads(total)
	for _, p := range want[:50] {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i, p := range want[50:] {
			if _, err := l.Append(p); err != nil {
				t.Errorf("append: %v", err)
				return
			}
			if i%41 == 0 {
				if err := l.Rotate(); err != nil {
					t.Errorf("rotate: %v", err)
					return
				}
			}
		}
	}()

	close(start)
	for round := 0; round < 20; round++ {
		var prev uint64
		count := 0
		err := l.Replay(0, func(seq uint64, payload []byte) error {
			if seq != prev+1 {
				return fmt.Errorf("discontinuous replay: %d after %d", seq, prev)
			}
			idx := int(seq - 1)
			if idx < total && !bytes.Equal(payload, want[idx]) {
				return fmt.Errorf("record %d mismatch", seq)
			}
			prev = seq
			count++
			return nil
		})
		if err != nil {
			t.Fatalf("replay round %d: %v", round, err)
		}
		if count < 50 {
			t.Fatalf("replay round %d saw %d records, want ≥ 50", round, count)
		}
	}
	wg.Wait()
}

func TestTailCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, p := range payloads(60) {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.RemoveObsolete(40); err != nil {
		t.Fatal(err)
	}

	// A tail asking for compacted records is refused up front...
	if _, err := l.TailAfter(10); !errors.Is(err, ErrCompacted) {
		t.Fatalf("TailAfter(10) after compaction = %v, want ErrCompacted", err)
	}
	// ...and an open tail that loses its segment detects it on read.
	tail, err := l.TailAfter(l.OldestSeq() - 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	if _, n, _, err := tail.Next(1 << 10); err != nil || n == 0 {
		t.Fatalf("tail next before compaction: n=%d err=%v", n, err)
	}
	slow, err := l.TailAfter(l.OldestSeq() - 1)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	for _, p := range payloads(30) {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.RemoveObsolete(l.NextSeq() - 1); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := slow.Next(1 << 10); !errors.Is(err, ErrCompacted) {
		t.Fatalf("slow tail after compaction = %v, want ErrCompacted", err)
	}
}

func TestTailPending(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, p := range payloads(20) {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	tail, err := l.TailAfter(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	seqs, bytes0 := tail.Pending()
	if seqs != 20 || bytes0 <= 0 {
		t.Fatalf("pending before reading = (%d, %d)", seqs, bytes0)
	}
	drainTailCursor(t, tail)
	if seqs, b := tail.Pending(); seqs != 0 || b != 0 {
		t.Fatalf("pending after draining = (%d, %d)", seqs, b)
	}
}

func drainTailCursor(t *testing.T, tail *Tail) {
	t.Helper()
	for {
		_, n, _, err := tail.Next(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			return
		}
	}
}

// TestTornTailFirstFrameOfFreshSegment: when the corrupt record is the
// very first frame of a newly rotated segment, recovery must keep every
// earlier record, truncate the fresh segment to zero bytes and continue
// appending at the right sequence.
func TestTornTailFirstFrameOfFreshSegment(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(10)
	for _, p := range want {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("doomed-record")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the first frame of the fresh segment (record 11): flip a
	// payload byte so the CRC fails.
	segPath := filepath.Join(dir, fmt.Sprintf("%020d%s", 11, segmentSuffix))
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("fresh segment is empty before corruption")
	}
	data[headerSize+seqSize] ^= 0xFF
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.Records != 10 || info.LastSeq != 10 {
		t.Fatalf("recovery info = %+v, want 10 records through seq 10", info)
	}
	if info.TruncatedBytes != int64(len(data)) {
		t.Fatalf("truncated %d bytes, want the whole fresh segment (%d)", info.TruncatedBytes, len(data))
	}
	got := collect(t, l2, 0)
	if len(got) != 10 || !bytes.Equal(got[9], want[9]) {
		t.Fatalf("surviving records: %d", len(got))
	}
	// Appends continue exactly where the torn record was cut.
	seq, err := l2.Append([]byte("after-recovery"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 11 {
		t.Fatalf("post-recovery append got seq %d, want 11", seq)
	}
	if fi, err := os.Stat(segPath); err != nil || fi.Size() == 0 {
		t.Fatalf("active segment after re-append: size %v err %v", fi, err)
	}
}

func TestFrameReaderRejectsCorruptStreams(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, p := range payloads(3) {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	tail, err := l.TailAfter(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	frames, n, _, err := tail.Next(1 << 20)
	if err != nil || n != 3 {
		t.Fatalf("tail: n=%d err=%v", n, err)
	}
	wire := append([]byte(nil), frames...)

	// Mid-frame cut → io.ErrUnexpectedEOF.
	fr := NewFrameReader(bytes.NewReader(wire[:len(wire)-3]))
	var lastErr error
	for {
		_, _, err := fr.Next()
		if err != nil {
			lastErr = err
			break
		}
	}
	if lastErr != io.ErrUnexpectedEOF {
		t.Fatalf("truncated stream error = %v, want io.ErrUnexpectedEOF", lastErr)
	}

	// Flipped payload byte → CRC error.
	bad := append([]byte(nil), wire...)
	bad[headerSize+seqSize+1] ^= 0x01
	fr = NewFrameReader(bytes.NewReader(bad))
	if _, _, err := fr.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("corrupt frame error = %v, want CRC failure", err)
	}

	// Absurd length prefix → bounds error.
	bad = append([]byte(nil), wire...)
	binary.LittleEndian.PutUint32(bad[0:4], uint32(MaxRecordBytes+seqSize+1))
	fr = NewFrameReader(bytes.NewReader(bad))
	if _, _, err := fr.Next(); err == nil {
		t.Fatal("oversized length accepted")
	}
}

func TestSnapshotRawRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, _, ok, err := LoadLatestSnapshotRaw(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	payload := []byte(`{"hello":"snapshot"}`)
	if _, err := WriteSnapshot(dir, 42, payload); err != nil {
		t.Fatal(err)
	}
	raw, seq, ok, err := LoadLatestSnapshotRaw(dir)
	if err != nil || !ok || seq != 42 {
		t.Fatalf("load raw: seq=%d ok=%v err=%v", seq, ok, err)
	}
	decoded, err := DecodeSnapshot(raw)
	if err != nil || !bytes.Equal(decoded, payload) {
		t.Fatalf("decode: %q err=%v", decoded, err)
	}
	// A flipped payload byte fails the container checksum.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-1] ^= 0x01
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Fatal("corrupt snapshot container accepted")
	}
}
