package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// readSegments concatenates every segment file of dir in seq order —
// the full on-disk byte image of the log.
func readSegments(t *testing.T, dir string) []byte {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	for _, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, data...)
	}
	return out
}

// TestAppendBatchRoundTrip: a batch replays as N contiguous records
// and reopens cleanly.
func TestAppendBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(12)
	first, err := l.AppendBatch(want[:7])
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Fatalf("first batch starts at seq %d, want 1", first)
	}
	first, err = l.AppendBatch(want[7:])
	if err != nil {
		t.Fatal(err)
	}
	if first != 8 {
		t.Fatalf("second batch starts at seq %d, want 8", first)
	}
	if next := l.NextSeq(); next != 13 {
		t.Fatalf("NextSeq = %d, want 13", next)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.Records != 12 || info.FirstSeq != 1 || info.LastSeq != 12 {
		t.Fatalf("reopen recovery info = %+v", info)
	}
}

// TestAppendBatchByteIdenticalToSingleAppends: the on-disk frame bytes
// of one AppendBatch equal those of N single Appends — batching is a
// pure write-amplification optimization, not a format change.
func TestAppendBatchByteIdenticalToSingleAppends(t *testing.T) {
	want := payloads(30)
	single := t.TempDir()
	ls, _, err := Open(single, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range want {
		if _, err := ls.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}

	batched := t.TempDir()
	lb, _, err := Open(batched, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(want); i += 5 {
		if _, err := lb.AppendBatch(want[i : i+5]); err != nil {
			t.Fatal(err)
		}
	}
	if err := lb.Close(); err != nil {
		t.Fatal(err)
	}

	if s, b := readSegments(t, single), readSegments(t, batched); !bytes.Equal(s, b) {
		t.Fatalf("batched log bytes differ from single-append log: %d vs %d bytes", len(s), len(b))
	}
}

// TestAppendBatchRotation: a batch that would overflow the active
// segment rotates first and lands whole in the fresh segment.
func TestAppendBatchRotation(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	big := bytes.Repeat([]byte{'a'}, 100)
	if _, err := l.Append(big); err != nil { // ~116 bytes in segment 1
		t.Fatal(err)
	}
	batch := [][]byte{big, big, big} // ~348 bytes: over budget, must rotate
	first, err := l.AppendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if first != 2 {
		t.Fatalf("batch first seq = %d, want 2", first)
	}
	if got := l.Segments(); got != 2 {
		t.Fatalf("segments = %d, want 2 (batch rotated into a fresh one)", got)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if segs[1].firstSeq != 2 {
		t.Fatalf("fresh segment starts at seq %d, want 2", segs[1].firstSeq)
	}
	if got := collect(t, l, 0); len(got) != 4 {
		t.Fatalf("replayed %d records, want 4", len(got))
	}
}

// TestAppendBatchEmptyAndOversized: an empty batch is a no-op; any
// oversized payload rejects the whole batch before any byte is
// written.
func TestAppendBatchEmptyAndOversized(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if seq, err := l.AppendBatch(nil); err != nil || seq != 1 {
		t.Fatalf("empty batch = (%d, %v), want (1, nil)", seq, err)
	}
	huge := make([]byte, MaxRecordBytes+1)
	if _, err := l.AppendBatch([][]byte{[]byte("ok"), huge}); err == nil {
		t.Fatal("oversized record inside a batch was accepted")
	}
	if next := l.NextSeq(); next != 1 {
		t.Fatalf("rejected batch advanced NextSeq to %d", next)
	}
	if got := collect(t, l, 0); len(got) != 0 {
		t.Fatalf("rejected batch left %d records", len(got))
	}
}

// TestAppendBatchSingleNotify: one batch fires the append notification
// exactly once — a tailing replica wakes per batch, not per record —
// and the next notification channel stays open until the next append.
func TestAppendBatchSingleNotify(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ch := l.AppendNotify()
	if _, err := l.AppendBatch(payloads(8)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("notify channel not closed by AppendBatch")
	}
	// The batch must not have armed-and-fired more than once: a fresh
	// channel stays open until the next append.
	ch2 := l.AppendNotify()
	select {
	case <-ch2:
		t.Fatal("fresh notify channel closed with no append")
	default:
	}
	if _, err := l.AppendBatch(payloads(3)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch2:
	default:
		t.Fatal("notify channel not closed by the second batch")
	}
}

// TestTornBatchTailEveryOffset cuts a log whose tail is one multi-
// record batch at every byte offset inside that batch: recovery must
// truncate at a frame boundary, keep the clean record prefix, and
// leave the log appendable.
func TestTornBatchTailEveryOffset(t *testing.T) {
	master := t.TempDir()
	l, _, err := Open(master, Options{})
	if err != nil {
		t.Fatal(err)
	}
	acked := payloads(4) // fully synced prefix
	for _, p := range acked {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(master)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v (err %v)", segs, err)
	}
	ackedBytes := segs[0].size

	batch := payloads(6) // the in-flight, never-synced batch
	if _, err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	segName := filepath.Base(segs[0].path)

	for cut := ackedBytes; cut <= int64(len(data)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, info, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		if info.Records < len(acked) || info.Records > len(acked)+len(batch) {
			t.Fatalf("cut=%d: recovered %d records, want within [%d, %d]",
				cut, info.Records, len(acked), len(acked)+len(batch))
		}
		got := collect(t, l2, 0)
		for i, p := range got {
			var want []byte
			if i < len(acked) {
				want = acked[i]
			} else {
				want = batch[i-len(acked)]
			}
			if !bytes.Equal(p, want) {
				t.Fatalf("cut=%d: record %d = %q, want %q (prefix not clean)", cut, i, p, want)
			}
		}
		// The log must remain appendable at the truncation point.
		seq, err := l2.Append([]byte("resume"))
		if err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if seq != uint64(info.Records)+1 {
			t.Fatalf("cut=%d: resume seq = %d, want %d", cut, seq, info.Records+1)
		}
		l2.Close()
	}
}

// TestAppendBufGrowsGeometrically: a sequence of ever-larger records
// must reallocate the frame buffer O(log n) times, not once per
// record. (The regression this pins: exact-fit growth made every
// larger record a fresh allocation.)
func TestAppendBufGrowsGeometrically(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	reallocs := 0
	lastCap := cap(l.buf)
	for size := 1; size <= 1<<16; size += 97 {
		if _, err := l.Append(make([]byte, size)); err != nil {
			t.Fatal(err)
		}
		if c := cap(l.buf); c != lastCap {
			reallocs++
			lastCap = c
		}
	}
	if reallocs > 8 {
		t.Fatalf("frame buffer reallocated %d times over a rising-size sequence, want ≤ 8 (geometric growth)", reallocs)
	}
}
