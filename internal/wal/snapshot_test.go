package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("snapshot-payload "), 100)
	path, err := WriteSnapshot(dir, 42, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("snapshot payload mismatch")
	}
	data, seq, ok, err := LoadLatestSnapshot(dir)
	if err != nil || !ok || seq != 42 || !bytes.Equal(data, payload) {
		t.Fatalf("LoadLatestSnapshot = seq %d ok %v err %v", seq, ok, err)
	}
}

func TestLoadLatestSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSnapshot(dir, 10, []byte("old-good")); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSnapshot(dir, 20, []byte("new-soon-corrupt")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot's payload.
	p := SnapshotPath(dir, 20)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	payload, seq, ok, err := LoadLatestSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("LoadLatestSnapshot: ok=%v err=%v", ok, err)
	}
	if seq != 10 || string(payload) != "old-good" {
		t.Fatalf("fell back to seq %d payload %q, want 10 %q", seq, payload, "old-good")
	}

	// A truncated newest snapshot is also skipped.
	if err := os.WriteFile(p, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, seq, ok, err = LoadLatestSnapshot(dir)
	if err != nil || !ok || seq != 10 {
		t.Fatalf("truncated newest: seq=%d ok=%v err=%v", seq, ok, err)
	}
}

func TestLoadLatestEmptyDir(t *testing.T) {
	_, _, ok, err := LoadLatestSnapshot(t.TempDir())
	if err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	_, _, ok, err = LoadLatestSnapshot(filepath.Join(t.TempDir(), "missing"))
	if err != nil || ok {
		t.Fatalf("missing dir: ok=%v err=%v", ok, err)
	}
}

func TestPruneSnapshots(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []uint64{5, 10, 15, 20} {
		if _, err := WriteSnapshot(dir, seq, []byte("s")); err != nil {
			t.Fatal(err)
		}
	}
	// A stale temp file from an interrupted write gets cleaned too.
	tmp := filepath.Join(dir, "snapshot-stale.tmp")
	if err := os.WriteFile(tmp, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	removed, err := PruneSnapshots(dir, 2)
	if err != nil || removed != 2 {
		t.Fatalf("PruneSnapshots removed %d err %v", removed, err)
	}
	seqs, err := ListSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 15 || seqs[1] != 20 {
		t.Fatalf("surviving snapshots = %v", seqs)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived: %v", err)
	}
}
