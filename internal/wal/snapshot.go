// Snapshot files: an atomic, checksummed container for a
// point-in-time serialization of the store. A snapshot taken after
// applying WAL record S is named %020d.snap with S in the name; on
// recovery the newest readable snapshot is loaded and the WAL is
// replayed from S+1. Snapshots are written to a temp file, fsynced and
// renamed into place, so a crash mid-write can never damage an
// existing snapshot — at worst it leaves an ignorable *.tmp file.
//
// On-disk format (integers little-endian):
//
//	offset  0: 8-byte magic "osarsnap"
//	offset  8: uint32 format version (1)
//	offset 12: uint32 CRC32C over the payload
//	offset 16: uint64 payload length
//	offset 24: payload bytes (opaque to this package; the store uses JSON)
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	snapshotSuffix  = ".snap"
	snapshotMagic   = "osarsnap"
	snapshotVersion = 1
	snapshotHeader  = 24
)

// WriteSnapshot atomically writes a snapshot covering WAL records
// ≤ seq into dir and returns its path.
func WriteSnapshot(dir string, seq uint64, payload []byte) (string, error) {
	final := filepath.Join(dir, fmt.Sprintf("%020d%s", seq, snapshotSuffix))
	tmp, err := os.CreateTemp(dir, "snapshot-*.tmp")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename

	var hdr [snapshotHeader]byte
	copy(hdr[0:8], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], snapshotVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(payload)))
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		return "", err
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", err
	}
	return final, syncDir(dir)
}

// ReadSnapshot loads and verifies one snapshot file.
func ReadSnapshot(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return payload, nil
}

// ListSnapshots returns the sequence numbers of dir's snapshot files
// in ascending order.
func ListSnapshots(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, snapshotSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, snapshotSuffix), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// SnapshotPath returns the snapshot file path for seq in dir.
func SnapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d%s", seq, snapshotSuffix))
}

// LoadLatestSnapshot returns the newest snapshot that reads back
// cleanly, its sequence number, and whether one was found. Corrupt
// snapshots are skipped (newest-first), so a bad write can only cost
// replay time, never data.
func LoadLatestSnapshot(dir string) (payload []byte, seq uint64, ok bool, err error) {
	seqs, err := ListSnapshots(dir)
	if err != nil {
		return nil, 0, false, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		payload, err := ReadSnapshot(SnapshotPath(dir, seqs[i]))
		if err == nil {
			return payload, seqs[i], true, nil
		}
	}
	return nil, 0, false, nil
}

// PruneSnapshots removes all but the newest keep snapshot files (and
// any stale temp files from interrupted writes). Keeping one extra
// generation means a corrupt newest snapshot still recovers from the
// previous one plus the (not yet compacted past it) WAL.
func PruneSnapshots(dir string, keep int) (removed int, err error) {
	if keep < 1 {
		keep = 1
	}
	seqs, err := ListSnapshots(dir)
	if err != nil {
		return 0, err
	}
	for i := 0; i+keep < len(seqs); i++ {
		if err := os.Remove(SnapshotPath(dir, seqs[i])); err != nil {
			return removed, err
		}
		removed++
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return removed, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "snapshot-") && strings.HasSuffix(e.Name(), ".tmp") {
			_ = os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return removed, nil
}
