package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// collect replays the whole log into memory.
func collect(t *testing.T, l *Log, after uint64) [][]byte {
	t.Helper()
	var out [][]byte
	if err := l.Replay(after, func(seq uint64, payload []byte) error {
		out = append(out, append([]byte(nil), payload...))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%03d-%s", i, string(bytes.Repeat([]byte{'x'}, i%17))))
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 0 || info.TruncatedBytes != 0 {
		t.Fatalf("fresh log recovery info = %+v", info)
	}
	want := payloads(25)
	for i, p := range want {
		seq, err := l.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	// Replay from the middle.
	mid := collect(t, l, 10)
	if len(mid) != 15 || !bytes.Equal(mid[0], want[10]) {
		t.Fatalf("replay after 10: %d records, first %q", len(mid), mid[0])
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same records, appends continue the sequence.
	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.Records != 25 || info.FirstSeq != 1 || info.LastSeq != 25 || info.TruncatedBytes != 0 {
		t.Fatalf("reopen recovery info = %+v", info)
	}
	if seq, err := l2.Append([]byte("after-reopen")); err != nil || seq != 26 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(40)
	for _, p := range want {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("expected rotation to produce ≥ 3 segments, got %d", l.Segments())
	}
	got := collect(t, l, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records across segments, want %d", len(got), len(want))
	}

	// Compaction: retire everything ≤ 20, keep the tail replayable.
	before := l.Segments()
	removed, err := l.RemoveObsolete(20)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 || l.Segments() != before-removed {
		t.Fatalf("RemoveObsolete removed %d of %d segments", removed, before)
	}
	tail := collect(t, l, 20)
	if len(tail) != 20 || !bytes.Equal(tail[0], want[20]) {
		t.Fatalf("after compaction: %d records, first %q", len(tail), tail[0])
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen after compaction: sequence numbers still line up.
	l2, info, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.FirstSeq == 1 || info.LastSeq != 40 {
		t.Fatalf("recovery info after compaction = %+v", info)
	}
	if got := collect(t, l2, 20); len(got) != 20 {
		t.Fatalf("replay after reopen: %d records, want 20", len(got))
	}
}

func TestRemoveObsoleteNeverRemovesActive(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if removed, err := l.RemoveObsolete(999); err != nil || removed != 0 {
		t.Fatalf("RemoveObsolete touched the active segment: removed=%d err=%v", removed, err)
	}
}

// TestTornTailEveryOffset is the kill-at-random-offset crash test,
// exhaustively: write N records, then for EVERY byte offset of the
// log, truncate a copy at that offset, recover, and verify the
// survivors are exactly the longest clean prefix that fits.
func TestTornTailEveryOffset(t *testing.T) {
	master := t.TempDir()
	l, _, err := Open(master, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	want := payloads(n)
	var ends []int64 // ends[i] = file size after record i
	for _, p := range want {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, l.segments[0].size)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segName := filepath.Base(l.segments[0].path)
	data, err := os.ReadFile(filepath.Join(master, segName))
	if err != nil {
		t.Fatal(err)
	}

	for cut := int64(0); cut <= int64(len(data)); cut++ {
		// Survivors: all records fully contained in [0, cut).
		wantRecords := 0
		for _, e := range ends {
			if e <= cut {
				wantRecords++
			}
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, info, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		if info.Records != wantRecords {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, info.Records, wantRecords)
		}
		got := collect(t, l2, 0)
		for i := 0; i < wantRecords; i++ {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("cut=%d: record %d = %q, want %q", cut, i, got[i], want[i])
			}
		}
		// The log must stay appendable after recovery, continuing the
		// clean prefix's sequence.
		if seq, err := l2.Append([]byte("resume")); err != nil || seq != uint64(wantRecords+1) {
			t.Fatalf("cut=%d: append after recovery: seq=%d err=%v", cut, seq, err)
		}
		l2.Close()
	}
}

// TestCorruptMiddleDropsSuffix flips one byte in the middle of a
// record and verifies recovery keeps only the records before it —
// including dropping whole later segments.
func TestCorruptMiddleDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(30)
	for _, p := range want {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("want ≥ 3 segments, got %d", l.Segments())
	}
	secondSeg := l.segments[1]
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte in the middle of the second segment.
	data, err := os.ReadFile(secondSeg.path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(secondSeg.path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, info, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.DroppedSegments == 0 {
		t.Fatalf("expected later segments to be dropped, info = %+v", info)
	}
	got := collect(t, l2, 0)
	if len(got) >= 30 || len(got) == 0 {
		t.Fatalf("corrupt middle: %d records survive", len(got))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if info.LastSeq != uint64(len(got)) {
		t.Fatalf("LastSeq = %d, %d records", info.LastSeq, len(got))
	}
}

func TestOversizedLengthTreatedAsTorn(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	path := l.segments[0].path
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Append a frame header claiming a gigantic record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.Records != 1 || info.TruncatedBytes == 0 {
		t.Fatalf("recovery info = %+v", info)
	}
}

func TestAppendRejectsOversizedRecord(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("Append accepted a record beyond MaxRecordBytes")
	}
}
