// Package wal implements the durability layer of the stateful corpus
// store: a segmented, CRC32C-framed, length-prefixed write-ahead log
// plus an atomic snapshot file format (snapshot.go).
//
// The log is a sequence of records with contiguous, monotonically
// increasing sequence numbers, spread over segment files named by the
// first sequence number they contain (e.g. 00000000000000000001.wal).
// Appends go to the newest ("active") segment; when it outgrows the
// segment byte budget the log rotates to a fresh file. Closed segments
// are immutable, which is what makes compaction trivial: once a
// snapshot covers every record of a closed segment, the whole file is
// deleted (RemoveObsolete).
//
// On-disk frame format (all integers little-endian):
//
//	offset 0: uint32 length of the framed body (8 + len(payload))
//	offset 4: uint32 CRC32C (Castagnoli) over the framed body
//	offset 8: uint64 sequence number
//	offset 16: payload bytes
//
// Torn-tail recovery: a crash can leave the active segment with a
// partially written frame (short header, short body, or a body whose
// CRC does not match). Open scans every segment in order and truncates
// the log at the FIRST corrupt or discontinuous record — the clean
// prefix before it is exactly the set of writes the log can vouch for.
// Any later segments (possible only if corruption struck a closed
// segment) are deleted, so the log never replays records that come
// after a hole.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"osars/internal/obs"
)

const (
	segmentSuffix = ".wal"
	// headerSize is the fixed frame prefix: length + CRC.
	headerSize = 8
	// seqSize is the sequence number inside the framed body.
	seqSize = 8
	// MaxRecordBytes bounds a single record's payload. A corrupted
	// length field could otherwise ask the reader to allocate
	// gigabytes; anything above this is treated as a torn tail.
	MaxRecordBytes = 64 << 20
	// DefaultSegmentBytes is the rotation threshold when Options leaves
	// it zero.
	DefaultSegmentBytes = 8 << 20
)

// castagnoli is the CRC32C table (same polynomial as the one used by
// leveldb/etcd WALs and by SSE4.2 hardware CRC).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures Open.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes (default DefaultSegmentBytes).
	SegmentBytes int64

	// Optional instruments, injected by the store layer so each
	// shard's log reports under its own label. All are nil-safe: a
	// zero Options disables WAL metrics entirely.

	// FsyncSeconds observes the latency of each real fsync (skipped
	// no-op syncs are not observed).
	FsyncSeconds *obs.Histogram
	// BytesWritten counts framed bytes handed to the segment file.
	BytesWritten *obs.Counter
	// Rotations counts segment rotations (including the initial
	// segment creation at Open).
	Rotations *obs.Counter
}

// RecoveryInfo reports what Open had to do to reach a clean log.
type RecoveryInfo struct {
	// FirstSeq and LastSeq bound the surviving records (both zero for
	// an empty log).
	FirstSeq uint64
	LastSeq  uint64
	// Records is the number of surviving records.
	Records int
	// TruncatedBytes counts bytes cut from a torn or corrupt segment
	// tail.
	TruncatedBytes int64
	// DroppedSegments counts whole segment files deleted because they
	// followed a corrupt record.
	DroppedSegments int
}

// segment is one on-disk file of the log.
type segment struct {
	path     string
	firstSeq uint64 // sequence number of the first record in the file
	size     int64
}

// Log is a segmented write-ahead log. All methods are safe for
// concurrent use, though appends are serialized internally; the store
// additionally serializes Append with its own state lock so that log
// order always equals apply order.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	segments []segment // sorted by firstSeq; last one is active
	active   *os.File  // open handle on the last segment
	nextSeq  uint64
	dirty    bool // true if writes happened since the last Sync
	buf      []byte
	// notify, when non-nil, is closed (and cleared) by the next Append
	// so tailing readers can block instead of polling (AppendNotify).
	notify chan struct{}
}

// Open scans dir for segment files, validates every record, truncates
// the log at the first corrupt record and returns a Log positioned to
// append after the last clean record. The directory is created if
// missing.
func Open(dir string, opts Options) (*Log, RecoveryInfo, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, RecoveryInfo{}, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}

	var info RecoveryInfo
	l := &Log{dir: dir, opts: opts, nextSeq: 1}
	for i := 0; i < len(segs); i++ {
		seg := &segs[i]
		if i == 0 {
			l.nextSeq = seg.firstSeq
			info.FirstSeq = seg.firstSeq
		}
		validBytes, n, err := scanSegment(seg.path, l.nextSeq)
		if err != nil {
			return nil, RecoveryInfo{}, err
		}
		l.nextSeq += uint64(n)
		info.Records += n
		if validBytes < seg.size {
			// Torn or corrupt tail: cut the file back to the clean
			// prefix and drop every later segment — records beyond a
			// hole must never replay.
			info.TruncatedBytes += seg.size - validBytes
			if err := os.Truncate(seg.path, validBytes); err != nil {
				return nil, RecoveryInfo{}, err
			}
			seg.size = validBytes
			for _, later := range segs[i+1:] {
				info.TruncatedBytes += later.size
				info.DroppedSegments++
				if err := os.Remove(later.path); err != nil {
					return nil, RecoveryInfo{}, err
				}
			}
			segs = segs[:i+1]
			break
		}
	}
	if info.Records > 0 {
		info.LastSeq = l.nextSeq - 1
	} else {
		info.FirstSeq = 0
	}
	l.segments = segs

	// Open (or create) the active segment for appending.
	if len(l.segments) == 0 {
		if err := l.rotateLocked(); err != nil {
			return nil, RecoveryInfo{}, err
		}
	} else {
		last := &l.segments[len(l.segments)-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, RecoveryInfo{}, err
		}
		l.active = f
	}
	return l, info, nil
}

// listSegments returns dir's segment files sorted by first sequence
// number.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 10, 64)
		if err != nil {
			continue // not ours
		}
		fi, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, segment{
			path:     filepath.Join(dir, name),
			firstSeq: seq,
			size:     fi.Size(),
		})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// scanSegment validates records starting at wantSeq and returns the
// byte offset of the end of the last valid record plus the number of
// valid records. Corruption is not an error — the caller truncates.
func scanSegment(path string, wantSeq uint64) (validBytes int64, records int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	r := &segmentReader{f: f}
	for {
		seq, _, ok, err := r.next()
		if err != nil {
			return 0, 0, err
		}
		if !ok || seq != wantSeq {
			return validBytes, records, nil
		}
		validBytes = r.offset
		records++
		wantSeq++
	}
}

// segmentReader iterates the frames of one segment file, reporting
// torn/corrupt tails as a clean end-of-iteration.
type segmentReader struct {
	f      *os.File
	offset int64
	hdr    [headerSize]byte
	body   []byte
}

// next returns the next record, or ok=false at the end of the valid
// prefix (clean EOF, short frame, oversized length or CRC mismatch).
// The returned payload is only valid until the next call.
func (r *segmentReader) next() (seq uint64, payload []byte, ok bool, err error) {
	if _, err := io.ReadFull(r.f, r.hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, false, nil
		}
		return 0, nil, false, err
	}
	length := binary.LittleEndian.Uint32(r.hdr[0:4])
	crc := binary.LittleEndian.Uint32(r.hdr[4:8])
	if length < seqSize || length > MaxRecordBytes+seqSize {
		return 0, nil, false, nil
	}
	if cap(r.body) < int(length) {
		r.body = make([]byte, length)
	}
	r.body = r.body[:length]
	if _, err := io.ReadFull(r.f, r.body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, false, nil
		}
		return 0, nil, false, err
	}
	if crc32.Checksum(r.body, castagnoli) != crc {
		return 0, nil, false, nil
	}
	r.offset += int64(headerSize) + int64(length)
	return binary.LittleEndian.Uint64(r.body[:seqSize]), r.body[seqSize:], true, nil
}

// Append frames payload, writes it to the active segment (rotating
// first if the segment is over budget) and returns its sequence
// number. The write is buffered by the OS only — call Sync (or use a
// store fsync policy) to force it to stable storage.
func (l *Log) Append(payload []byte) (uint64, error) {
	bufs := [1][]byte{payload}
	return l.AppendBatch(bufs[:])
}

// AppendBatch frames every payload, writes them all to the active
// segment with ONE Write call and returns the sequence number of the
// first record; the batch gets contiguous sequence numbers in slice
// order. This is the group-commit primitive: N writers' records cost
// one buffer encode, one syscall and — with a following Sync — one
// fsync, instead of N of each. The append notification fires ONCE for
// the whole batch, so a tailing replica wakes per batch, not per
// record. The batch is placed in a single segment (rotating first when
// the active segment is over budget), so a torn tail can only ever cut
// the batch's frame suffix, never interleave it with other records.
//
// An empty batch is a no-op and returns the current next sequence
// number. The write is buffered by the OS only — call Sync to force it
// to stable storage.
func (l *Log) AppendBatch(payloads [][]byte) (uint64, error) {
	total := 0
	for _, p := range payloads {
		if len(p) > MaxRecordBytes {
			return 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes (%d)", len(p), MaxRecordBytes)
		}
		total += headerSize + seqSize + len(p)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return 0, errors.New("wal: log is closed")
	}
	if len(payloads) == 0 {
		return l.nextSeq, nil
	}
	last := &l.segments[len(l.segments)-1]
	if last.size > 0 && last.size+int64(total) > l.opts.SegmentBytes {
		if err := l.rotateSyncedLocked(); err != nil {
			return 0, err
		}
		last = &l.segments[len(l.segments)-1]
	}

	firstSeq := l.nextSeq
	frame := l.growBuf(total)
	off := 0
	seq := firstSeq
	for _, p := range payloads {
		need := headerSize + seqSize + len(p)
		f := frame[off : off+need]
		binary.LittleEndian.PutUint32(f[0:4], uint32(seqSize+len(p)))
		binary.LittleEndian.PutUint64(f[8:16], seq)
		copy(f[16:], p)
		binary.LittleEndian.PutUint32(f[4:8], crc32.Checksum(f[8:], castagnoli))
		off += need
		seq++
	}
	if _, err := l.active.Write(frame); err != nil {
		return 0, err
	}
	l.opts.BytesWritten.Add(uint64(total))
	last.size += int64(total)
	l.nextSeq = seq
	l.dirty = true
	if l.notify != nil {
		close(l.notify)
		l.notify = nil
	}
	return firstSeq, nil
}

// growBuf returns the log's reusable frame buffer sized to need bytes,
// growing the backing array geometrically so a sequence of
// ever-larger records (or batches) costs O(log n) reallocations
// instead of one per size increase.
func (l *Log) growBuf(need int) []byte {
	if cap(l.buf) < need {
		newCap := 2 * cap(l.buf)
		if newCap < need {
			newCap = need
		}
		if newCap < 4096 {
			newCap = 4096
		}
		l.buf = make([]byte, newCap)
	}
	return l.buf[:need]
}

// Sync forces everything appended so far to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.active == nil || !l.dirty {
		return nil
	}
	start := time.Now()
	if err := l.active.Sync(); err != nil {
		return err
	}
	l.opts.FsyncSeconds.ObserveSince(start)
	l.dirty = false
	return nil
}

// Rotate closes the active segment and starts a new one. Used before
// compaction so that every record at or below the snapshot point lives
// in a closed (hence deletable) segment. Rotating an empty active
// segment is a no-op (it would create a second file with the same
// name).
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return errors.New("wal: log is closed")
	}
	if l.segments[len(l.segments)-1].size == 0 {
		return nil
	}
	return l.rotateSyncedLocked()
}

// SkipTo fast-forwards the log so the next Append gets sequence number
// seq. It is used during recovery when a snapshot covers records the
// log itself no longer holds (e.g. the WAL directory was damaged but a
// snapshot survived): every existing record is below seq and covered
// by that snapshot, so all current segments are dropped and a fresh
// one starts exactly at seq — keeping the on-disk invariant that
// segment sequences are contiguous.
func (l *Log) SkipTo(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return errors.New("wal: log is closed")
	}
	if seq <= l.nextSeq {
		return nil
	}
	if err := l.active.Close(); err != nil {
		return err
	}
	l.active = nil
	for _, seg := range l.segments {
		if err := os.Remove(seg.path); err != nil {
			return err
		}
	}
	l.segments = l.segments[:0]
	l.nextSeq = seq
	return l.rotateLocked()
}

// rotateSyncedLocked syncs and closes the active segment, then opens a
// fresh one. Syncing first guarantees a closed segment is durable
// before any later segment (or a snapshot covering it) exists.
func (l *Log) rotateSyncedLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		return err
	}
	l.active = nil
	return l.rotateLocked()
}

// rotateLocked opens a new active segment starting at nextSeq.
func (l *Log) rotateLocked() error {
	path := filepath.Join(l.dir, fmt.Sprintf("%020d%s", l.nextSeq, segmentSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.active = f
	l.segments = append(l.segments, segment{path: path, firstSeq: l.nextSeq})
	l.opts.Rotations.Inc()
	return syncDir(l.dir)
}

// Replay calls fn for every record with seq > after, in order. It
// re-reads the segment files, so it is normally called once right
// after Open. The payload slice is reused between calls; fn must copy
// it if it retains it.
func (l *Log) Replay(after uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segments...)
	l.mu.Unlock()
	for i, seg := range segs {
		if seg.size == 0 {
			continue
		}
		// Skip segments that end before the replay point: a segment's
		// records end where the next segment's first record begins.
		if i+1 < len(segs) && segs[i+1].firstSeq <= after+1 {
			continue
		}
		if err := replaySegment(seg.path, after, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(path string, after uint64, fn func(seq uint64, payload []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := &segmentReader{f: f}
	for {
		seq, payload, ok, err := r.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if seq <= after {
			continue
		}
		if err := fn(seq, payload); err != nil {
			return err
		}
	}
}

// RemoveObsolete deletes closed segments whose every record has
// seq ≤ upTo (i.e. segments fully covered by a snapshot taken at
// upTo). The active segment is never removed. Returns the number of
// segment files deleted.
func (l *Log) RemoveObsolete(upTo uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.segments) > 1 {
		// The first segment's records end where the second begins.
		if l.segments[1].firstSeq > upTo+1 {
			break
		}
		if err := os.Remove(l.segments[0].path); err != nil {
			return removed, err
		}
		l.segments = l.segments[1:]
		removed++
	}
	if removed > 0 {
		if err := syncDir(l.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// NextSeq returns the sequence number the next Append will get.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Segments returns the number of live segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segments)
}

// Close syncs and closes the active segment. The log cannot be used
// afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	l.active = nil
	return err
}

// syncDir fsyncs a directory so file creations/removals inside it are
// durable. Some platforms (or filesystems) reject fsync on a
// directory; that is not fatal for correctness of the data itself, so
// such errors are ignored.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
