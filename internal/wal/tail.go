// Tailing reader: the replication counterpart of Replay. A Tail reads
// raw WAL frames with seq > after and keeps reading as the log grows —
// concurrently with appends, across segment rotations — which is what
// the primary's /v1/repl/stream handler ships to read replicas.
//
// Concurrency argument: Append writes the whole frame to the active
// segment and bumps the in-memory segment size inside the same l.mu
// critical section. A Tail snapshots the segment metadata (paths,
// first sequence numbers, sizes) under l.mu and never reads a byte at
// an offset ≥ the snapshotted size, so every byte it reads was fully
// written before the lock was released — a tailing read can observe a
// clean prefix but never a torn frame. Compaction can delete a closed
// segment out from under a slow Tail; the next read detects that the
// cursor's sequence number now precedes the oldest retained record and
// returns ErrCompacted, telling the follower to bootstrap from a
// snapshot instead.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ErrCompacted is returned by TailAfter and Tail.Next when the
// requested records were compacted away (a snapshot covers them and
// their segments were removed). The caller must restart from a
// snapshot at or after the compaction point.
var ErrCompacted = errors.New("wal: requested records were compacted; restart from a snapshot")

// ErrClosed is returned by Tail.Next after the log is closed.
var ErrClosed = errors.New("wal: log is closed")

// FrameSize returns the on-wire/on-disk size of one frame carrying a
// payload of n bytes.
func FrameSize(n int) int { return headerSize + seqSize + n }

// Tail is a cursor over the log's frames, safe to use concurrently
// with Append/Rotate/RemoveObsolete on the same Log (but not with
// other methods on the same Tail). Create with Log.TailAfter.
type Tail struct {
	l    *Log
	next uint64 // next sequence number to deliver

	f        *os.File // read handle on the current segment (nil between segments)
	segFirst uint64   // firstSeq of the segment f reads
	offset   int64    // byte offset of the next unread frame in f
	out      []byte   // reusable batch buffer
	hdr      [headerSize]byte
}

// TailAfter returns a Tail positioned to deliver records with
// seq > after. It returns ErrCompacted when the log no longer holds
// record after+1 (unless after+1 is the log's next append position,
// i.e. the caller is fully caught up).
func (l *Log) TailAfter(after uint64) (*Tail, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil, ErrClosed
	}
	if after+1 < l.segments[0].firstSeq {
		return nil, ErrCompacted
	}
	return &Tail{l: l, next: after + 1}, nil
}

// NextSeq returns the sequence number the next call to Next will
// deliver first.
func (t *Tail) NextSeq() uint64 { return t.next }

// Next reads a batch of raw frames (the exact on-disk byte framing:
// length, CRC32C, seq, payload back to back) totalling at most
// maxBytes, though a single frame larger than maxBytes is still
// delivered whole. It returns the frame bytes, the record count, and
// the first sequence number of the batch. A (nil, 0) return with a nil
// error means the tail is caught up with the log; wait on
// Log.AppendNotify and call again. The returned slice is reused by the
// next call.
func (t *Tail) Next(maxBytes int) (frames []byte, count int, first uint64, err error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	t.out = t.out[:0]
	first = t.next
	for len(t.out) < maxBytes {
		segs, err := t.snapshotSegments()
		if err != nil {
			return nil, 0, 0, err
		}
		idx := segmentFor(segs, t.next)
		if idx < 0 {
			// t.next is past every stored record: caught up.
			break
		}
		if err := t.position(segs, idx); err != nil {
			return nil, 0, 0, err
		}
		limit := segs[idx].size
		if t.offset >= limit {
			if idx == len(segs)-1 {
				break // end of the active segment: caught up
			}
			// Closed segment exhausted: step to the next one.
			t.closeFile()
			t.segFirst = segs[idx+1].firstSeq
			t.offset = 0
			continue
		}
		n, err := t.readFrames(limit, maxBytes)
		if err != nil {
			return nil, 0, 0, err
		}
		count += n
		if n == 0 {
			break
		}
	}
	if count == 0 {
		return nil, 0, first, nil
	}
	return t.out, count, first, nil
}

// snapshotSegments copies the live segment metadata under the log
// lock, checking the tail has not been compacted past.
func (t *Tail) snapshotSegments() ([]segment, error) {
	l := t.l
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil, ErrClosed
	}
	if t.next < l.segments[0].firstSeq {
		return nil, ErrCompacted
	}
	return append([]segment(nil), l.segments...), nil
}

// segmentFor returns the index of the segment holding seq, or -1 when
// seq is beyond the last stored record's segment start bookkeeping.
func segmentFor(segs []segment, seq uint64) int {
	idx := -1
	for i := range segs {
		if segs[i].firstSeq <= seq {
			idx = i
		}
	}
	return idx
}

// position opens (or re-opens) the segment file at idx and seeks the
// cursor to t.next, scanning over earlier frames when entering the
// segment cold.
func (t *Tail) position(segs []segment, idx int) error {
	seg := &segs[idx]
	if t.f != nil && t.segFirst == seg.firstSeq {
		return nil
	}
	t.closeFile()
	f, err := os.Open(seg.path)
	if err != nil {
		if os.IsNotExist(err) {
			// Compacted between the metadata snapshot and the open.
			return ErrCompacted
		}
		return err
	}
	t.f = f
	t.segFirst = seg.firstSeq
	t.offset = 0
	// Skip frames below t.next (cold entry into a segment mid-way,
	// e.g. the first positioning after TailAfter).
	for seq := seg.firstSeq; seq < t.next; seq++ {
		if _, err := f.ReadAt(t.hdr[:], t.offset); err != nil {
			return fmt.Errorf("wal: tail skip-scan %s: %w", seg.path, err)
		}
		length := binary.LittleEndian.Uint32(t.hdr[0:4])
		if length < seqSize || length > MaxRecordBytes+seqSize {
			return fmt.Errorf("wal: tail skip-scan %s: bad frame length %d at offset %d", seg.path, length, t.offset)
		}
		t.offset += int64(headerSize) + int64(length)
	}
	return nil
}

// readFrames appends whole verified frames from the current segment to
// t.out, stopping at the snapshotted limit or once maxBytes is
// reached. Every byte below limit is guaranteed fully written (see the
// package comment), so any validation failure here is real corruption.
func (t *Tail) readFrames(limit int64, maxBytes int) (int, error) {
	count := 0
	for t.offset < limit && len(t.out) < maxBytes {
		if _, err := t.f.ReadAt(t.hdr[:], t.offset); err != nil {
			return count, fmt.Errorf("wal: tail read header: %w", err)
		}
		length := binary.LittleEndian.Uint32(t.hdr[0:4])
		if length < seqSize || length > MaxRecordBytes+seqSize {
			return count, fmt.Errorf("wal: tail: corrupt frame length %d at seq %d", length, t.next)
		}
		frameLen := int64(headerSize) + int64(length)
		if t.offset+frameLen > limit {
			return count, fmt.Errorf("wal: tail: frame at seq %d crosses the committed segment boundary", t.next)
		}
		start := len(t.out)
		t.out = append(t.out, make([]byte, frameLen)...)
		frame := t.out[start:]
		if _, err := t.f.ReadAt(frame, t.offset); err != nil {
			return count, fmt.Errorf("wal: tail read frame: %w", err)
		}
		body := frame[headerSize:]
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(frame[4:8]) {
			return count, fmt.Errorf("wal: tail: CRC mismatch at seq %d", t.next)
		}
		if seq := binary.LittleEndian.Uint64(body[:seqSize]); seq != t.next {
			return count, fmt.Errorf("wal: tail: discontinuous sequence: got %d, want %d", seq, t.next)
		}
		t.offset += frameLen
		t.next++
		count++
	}
	return count, nil
}

// Pending reports how far the tail lags the log: the number of records
// not yet delivered and the (slightly approximate, see below) bytes
// they occupy on disk. The byte count over-approximates by the frames
// preceding the cursor within its segment when the tail has not read
// from that segment yet.
func (t *Tail) Pending() (seqs uint64, bytes int64) {
	l := t.l
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil || t.next >= l.nextSeq {
		return 0, 0
	}
	seqs = l.nextSeq - t.next
	idx := segmentFor(l.segments, t.next)
	if idx < 0 {
		return seqs, 0
	}
	for i := idx; i < len(l.segments); i++ {
		bytes += l.segments[i].size
	}
	if t.f != nil && t.segFirst == l.segments[idx].firstSeq {
		bytes -= t.offset
	}
	return seqs, bytes
}

// Close releases the tail's file handle. The Log itself is unaffected.
func (t *Tail) Close() error {
	t.closeFile()
	return nil
}

func (t *Tail) closeFile() {
	if t.f != nil {
		t.f.Close()
		t.f = nil
	}
}

// AppendNotify returns a channel that is closed after the next Append.
// Tailing callers wait on it when Tail.Next reports caught-up, instead
// of polling. Each returned channel fires once; call again for the
// next wakeup.
func (l *Log) AppendNotify() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.notify == nil {
		l.notify = make(chan struct{})
	}
	return l.notify
}

// OldestSeq returns the first sequence number the log still holds
// (nextSeq for an empty or fully compacted log).
func (l *Log) OldestSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segments[0].firstSeq
}

// SizeBytes returns the total on-disk size of all live segments.
func (l *Log) SizeBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for i := range l.segments {
		n += l.segments[i].size
	}
	return n
}

// FrameReader parses a stream of raw WAL frames (the byte format Tail
// emits and the on-disk segments store) from an io.Reader, verifying
// length bounds and CRC32C per frame. Unlike the torn-tail-tolerant
// segment scanner, a FrameReader is strict: a short or corrupt frame
// is an error, because on a replication stream it means wire
// corruption, not a crash artifact. A clean end between frames returns
// io.EOF.
type FrameReader struct {
	r    io.Reader
	hdr  [headerSize]byte
	body []byte
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader { return &FrameReader{r: r} }

// Next returns the next frame's sequence number and payload. The
// payload is only valid until the following call. io.EOF marks a clean
// end of stream; io.ErrUnexpectedEOF a mid-frame cut.
func (fr *FrameReader) Next() (seq uint64, payload []byte, err error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, io.ErrUnexpectedEOF
	}
	length := binary.LittleEndian.Uint32(fr.hdr[0:4])
	crc := binary.LittleEndian.Uint32(fr.hdr[4:8])
	if length < seqSize || length > MaxRecordBytes+seqSize {
		return 0, nil, fmt.Errorf("wal: stream frame length %d out of bounds", length)
	}
	if cap(fr.body) < int(length) {
		fr.body = make([]byte, length)
	}
	fr.body = fr.body[:length]
	if _, err := io.ReadFull(fr.r, fr.body); err != nil {
		return 0, nil, io.ErrUnexpectedEOF
	}
	if crc32.Checksum(fr.body, castagnoli) != crc {
		return 0, nil, errors.New("wal: stream frame CRC mismatch")
	}
	return binary.LittleEndian.Uint64(fr.body[:seqSize]), fr.body[seqSize:], nil
}

// LoadLatestSnapshotRaw returns the newest readable snapshot as its
// raw container bytes (magic, version, CRC, length, payload) plus its
// sequence number — the shape the primary ships to a bootstrapping
// replica, which verifies it with DecodeSnapshot.
func LoadLatestSnapshotRaw(dir string) (raw []byte, seq uint64, ok bool, err error) {
	seqs, err := ListSnapshots(dir)
	if err != nil {
		return nil, 0, false, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		path := SnapshotPath(dir, seqs[i])
		data, err := os.ReadFile(path)
		if err != nil {
			continue // pruned or unreadable; try the older one
		}
		if _, derr := DecodeSnapshot(data); derr != nil {
			continue
		}
		return data, seqs[i], true, nil
	}
	return nil, 0, false, nil
}

// DecodeSnapshot validates a raw snapshot container (as stored on disk
// and as shipped over the replication bootstrap endpoint) and returns
// its payload.
func DecodeSnapshot(data []byte) ([]byte, error) {
	if len(data) < snapshotHeader || string(data[0:8]) != snapshotMagic {
		return nil, errors.New("wal: not a snapshot container")
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != snapshotVersion {
		return nil, fmt.Errorf("wal: unsupported snapshot version %d", v)
	}
	n := binary.LittleEndian.Uint64(data[16:24])
	if uint64(len(data)-snapshotHeader) != n {
		return nil, fmt.Errorf("wal: truncated snapshot (%d of %d payload bytes)", len(data)-snapshotHeader, n)
	}
	payload := data[snapshotHeader:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[12:16]) {
		return nil, errors.New("wal: snapshot checksum mismatch")
	}
	return payload, nil
}
