package extract

import (
	"testing"

	"osars/internal/dataset"
	"osars/internal/text"
)

func TestInduceHierarchySubsetRule(t *testing.T) {
	aspects := []Aspect{
		{Term: "screen", Freq: 100},
		{Term: "screen resolution", Freq: 40},
		{Term: "battery", Freq: 90},
		{Term: "battery life", Freq: 60},
		{Term: "price", Freq: 50},
	}
	ont, err := InduceHierarchy("phone", aspects)
	if err != nil {
		t.Fatal(err)
	}
	if ont.Len() != 6 {
		t.Fatalf("concepts = %d, want 6", ont.Len())
	}
	check := func(parent, child string) {
		t.Helper()
		p, ok := ont.Lookup(parent)
		if !ok {
			t.Fatalf("concept %q missing", parent)
		}
		c, ok := ont.Lookup(child)
		if !ok {
			t.Fatalf("concept %q missing", child)
		}
		if d := ont.UpDistance(c, p); d != 1 {
			t.Fatalf("%q should be direct parent of %q (distance %d)", parent, child, d)
		}
	}
	check("phone", "screen")
	check("screen", "screen resolution")
	check("battery", "battery life")
	check("phone", "price")
}

func TestInduceHierarchyMostSpecificParent(t *testing.T) {
	aspects := []Aspect{
		{Term: "camera", Freq: 50},
		{Term: "front camera", Freq: 30},
		{Term: "front camera lens", Freq: 10},
	}
	ont, err := InduceHierarchy("phone", aspects)
	if err != nil {
		t.Fatal(err)
	}
	lens, _ := ont.Lookup("front camera lens")
	front, _ := ont.Lookup("front camera")
	cam, _ := ont.Lookup("camera")
	if ont.UpDistance(lens, front) != 1 {
		t.Fatal("lens should attach to 'front camera', the most specific subset")
	}
	if ont.UpDistance(lens, cam) != 2 {
		t.Fatal("lens should reach 'camera' through 'front camera'")
	}
}

func TestInduceHierarchyDeduplicatesAndNormalizes(t *testing.T) {
	aspects := []Aspect{
		{Term: "Screen", Freq: 10},
		{Term: "screen ", Freq: 5},
		{Term: "", Freq: 3},
	}
	ont, err := InduceHierarchy("phone", aspects)
	if err != nil {
		t.Fatal(err)
	}
	if ont.Len() != 2 {
		t.Fatalf("concepts = %d, want root + screen", ont.Len())
	}
}

func TestInduceHierarchyEmpty(t *testing.T) {
	ont, err := InduceHierarchy("phone", nil)
	if err != nil {
		t.Fatal(err)
	}
	if ont.Len() != 1 {
		t.Fatalf("empty induction = %d concepts", ont.Len())
	}
}

func TestInduceHierarchyEndToEnd(t *testing.T) {
	// Extract aspects from a generated corpus with double propagation,
	// induce a hierarchy, and verify the result is usable by the
	// matcher pipeline.
	c := dataset.Generate(dataset.SmallCellPhoneConfig(3))
	var sentences [][]string
	for _, it := range c.Items[:3] {
		for _, r := range it.Reviews {
			for _, s := range text.SplitSentences(r.Text) {
				sentences = append(sentences, text.Tokenize(s))
			}
		}
	}
	aspects := DoublePropagation(sentences, DPOptions{MinSupport: 3, MaxAspects: 100})
	if len(aspects) < 10 {
		t.Fatalf("too few aspects extracted: %d", len(aspects))
	}
	ont, err := InduceHierarchy("phone", aspects)
	if err != nil {
		t.Fatal(err)
	}
	if ont.Len() < 10 {
		t.Fatalf("induced ontology too small: %v", ont)
	}
	m := NewMatcher(ont)
	found := 0
	for _, s := range sentences[:200] {
		found += len(m.MatchTokens(s))
	}
	if found == 0 {
		t.Fatal("induced hierarchy matches nothing in its own corpus")
	}
}
