// Package extract turns raw review text into the concept-sentiment
// pairs the summarization framework consumes (§2 task (a), §5.1).
//
// Three extractors are provided, mirroring the paper's setup:
//
//   - Matcher: a trie-based longest-match dictionary annotator over an
//     ontology's concept names and synonyms — the stand-in for MetaMap
//     over SNOMED CT in the doctor-review pipeline;
//   - DoublePropagation: the Qiu et al. (2011) bootstrapping aspect
//     extractor used for the cell-phone pipeline;
//   - FrequentAspects: the Hu & Liu (2004) frequency miner, used by
//     the "most popular" baseline and as a DP fallback.
//
// Pipeline composes a matcher with a sentiment estimator to produce
// model.Item values ready for coverage-graph construction.
package extract

import (
	"sync"

	"osars/internal/ontology"
	"osars/internal/text"
)

// trieNode is one node of the token trie.
type trieNode struct {
	children map[string]*trieNode
	// concept is the concept ending at this node (None if internal).
	concept ontology.ConceptID
}

// Matcher annotates token streams with ontology concepts by greedy
// longest match over concept names and synonyms. Matching is
// case-insensitive and token-based; multi-word concepts ("display
// color", "wait time") match as phrases. Safe for concurrent use after
// construction.
type Matcher struct {
	ont  *ontology.Ontology
	root *trieNode
	// maxLen is the longest phrase in tokens, bounding lookahead.
	maxLen int
	// stem normalizes tokens with the Porter stemmer on both sides,
	// so "batteries" matches the "battery" concept — the equivalent of
	// MetaMap's lexical-variant matching.
	stem bool
}

// MatcherOptions configure NewMatcherWithOptions.
type MatcherOptions struct {
	// Stem enables Porter-stemmed matching ("batteries" → "battery").
	Stem bool
}

// NewMatcher indexes every concept name and synonym of the ontology
// with exact-token matching. The root concept itself is not indexed: a
// review mentioning the domain ("this phone") carries no aspect
// information.
func NewMatcher(ont *ontology.Ontology) *Matcher {
	return NewMatcherWithOptions(ont, MatcherOptions{})
}

// NewMatcherWithOptions is NewMatcher with configurable normalization.
func NewMatcherWithOptions(ont *ontology.Ontology, opt MatcherOptions) *Matcher {
	m := &Matcher{ont: ont, root: &trieNode{concept: ontology.None}, stem: opt.Stem}
	for id := ontology.ConceptID(0); int(id) < ont.Len(); id++ {
		if id == ont.Root() {
			continue
		}
		m.index(ont.Name(id), id)
		for _, syn := range ont.Synonyms(id) {
			m.index(syn, id)
		}
	}
	return m
}

func (m *Matcher) norm(tok string) string {
	if m.stem {
		return text.Stem(tok)
	}
	return tok
}

func (m *Matcher) index(phrase string, id ontology.ConceptID) {
	tokens := text.Tokenize(phrase)
	for i, t := range tokens {
		tokens[i] = m.norm(t)
	}
	if len(tokens) == 0 {
		return
	}
	if len(tokens) > m.maxLen {
		m.maxLen = len(tokens)
	}
	node := m.root
	for _, tok := range tokens {
		if node.children == nil {
			node.children = make(map[string]*trieNode)
		}
		next, ok := node.children[tok]
		if !ok {
			next = &trieNode{concept: ontology.None}
			node.children[tok] = next
		}
		node = next
	}
	// First indexing wins; a synonym shared by two concepts keeps the
	// earlier (more general, since parents are added first) concept.
	if node.concept == ontology.None {
		node.concept = id
	}
}

// Match is one concept occurrence in a token stream.
type Match struct {
	Concept ontology.ConceptID
	// Start and End delimit the matched tokens [Start, End).
	Start, End int
}

// normPool recycles the per-call normalized-token buffers of
// MatchTokens, so stemmed matching allocates only the stems
// themselves.
var normPool = sync.Pool{New: func() any { return new([]string) }}

// MatchTokens scans a tokenized sentence left to right, emitting the
// longest concept match at each position (overlapping shorter matches
// are suppressed, as in MetaMap's longest-spanning-candidate default).
//
// When stemming is enabled, each token is normalized exactly once up
// front into a pooled buffer. (The scan probes position j up to maxLen
// times — once per window start — so the previous per-probe m.norm
// call re-stemmed every token up to maxLen times.)
func (m *Matcher) MatchTokens(tokens []string) []Match {
	normed := tokens
	var bufp *[]string
	if m.stem {
		bufp = normPool.Get().(*[]string)
		buf := (*bufp)[:0]
		for _, t := range tokens {
			buf = append(buf, text.Stem(t))
		}
		*bufp = buf
		normed = buf
	}
	var out []Match
	for i := 0; i < len(normed); {
		node := m.root
		bestEnd := -1
		best := ontology.None
		for j := i; j < len(normed) && j-i < m.maxLen; j++ {
			next, ok := node.children[normed[j]]
			if !ok {
				break
			}
			node = next
			if node.concept != ontology.None {
				best = node.concept
				bestEnd = j + 1
			}
		}
		if best != ontology.None {
			out = append(out, Match{Concept: best, Start: i, End: bestEnd})
			i = bestEnd
			continue
		}
		i++
	}
	if bufp != nil {
		normPool.Put(bufp)
	}
	return out
}

// MatchText tokenizes and matches raw text.
func (m *Matcher) MatchText(s string) []Match {
	return m.MatchTokens(text.Tokenize(s))
}

// Ontology returns the ontology the matcher was built over.
func (m *Matcher) Ontology() *ontology.Ontology { return m.ont }
