package extract

import (
	"sort"

	"osars/internal/pos"
	"osars/internal/sentiment"
)

// Aspect is an extracted product aspect with its corpus frequency.
type Aspect struct {
	Term string
	Freq int
}

// FrequentAspects mines aspects the Hu & Liu (2004) way: count nouns
// and two-token noun phrases across the corpus (one count per
// sentence), then keep those with at least minSupport sentences,
// sorted by descending frequency. Sentences are raw token slices.
func FrequentAspects(sentences [][]string, minSupport int) []Aspect {
	if minSupport <= 0 {
		minSupport = 2
	}
	counts := map[string]int{}
	for _, toks := range sentences {
		tagged := pos.TagSentence(toks)
		seen := map[string]bool{}
		for i, tg := range tagged {
			if tg.Tag != pos.Noun {
				continue
			}
			term := tg.Word
			// Two-token noun phrase ("battery life", "wait time").
			if i+1 < len(tagged) && tagged[i+1].Tag == pos.Noun {
				phrase := term + " " + tagged[i+1].Word
				if !seen[phrase] {
					seen[phrase] = true
					counts[phrase]++
				}
			}
			if !seen[term] {
				seen[term] = true
				counts[term]++
			}
		}
	}
	var out []Aspect
	for term, n := range counts {
		if n >= minSupport {
			out = append(out, Aspect{Term: term, Freq: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].Term < out[j].Term
	})
	return out
}

// DPOptions tune double propagation.
type DPOptions struct {
	// Window is the token distance an opinion↔target relation may
	// span, standing in for a dependency edge (default 4).
	Window int
	// MaxIters caps propagation rounds (default 10; convergence is
	// typically much faster).
	MaxIters int
	// MinSupport drops targets extracted from fewer sentences
	// (default 2).
	MinSupport int
	// MaxAspects keeps only the most frequent extracted aspects, as
	// the paper keeps "the 100 most popular extracted aspects" (§5.1);
	// 0 keeps everything.
	MaxAspects int
}

// DoublePropagation runs the Qiu et al. (2011) bootstrapping loop over
// tokenized sentences, seeded with the sentiment package's opinion
// lexicon:
//
//	O→T: a noun near a known opinion word becomes a target;
//	T→O: an adjective near a known target becomes an opinion word;
//	T→T: a noun conjoined with a known target becomes a target;
//	O→O: an adjective conjoined with a known opinion word becomes an
//	     opinion word.
//
// Dependency relations are approximated by an adjacency window, which
// preserves the propagation dynamics on short review sentences. It
// returns the extracted aspect terms by descending frequency.
func DoublePropagation(sentences [][]string, opt DPOptions) []Aspect {
	if opt.Window <= 0 {
		opt.Window = 4
	}
	if opt.MaxIters <= 0 {
		opt.MaxIters = 10
	}
	if opt.MinSupport <= 0 {
		opt.MinSupport = 2
	}
	opinions := map[string]bool{}
	for w := range sentiment.SeedOpinionWords() {
		opinions[w] = true
	}
	targets := map[string]bool{}

	tagged := make([][]pos.Tagged, len(sentences))
	for i, toks := range sentences {
		tagged[i] = pos.TagSentence(toks)
	}

	for iter := 0; iter < opt.MaxIters; iter++ {
		grew := false
		for _, sent := range tagged {
			for i, tg := range sent {
				switch tg.Tag {
				case pos.Noun:
					if targets[tg.Word] {
						continue
					}
					// Opinion-bearing words are never aspect targets,
					// even when the tagger calls them nouns.
					if _, isOpinion := sentiment.Polarity(tg.Word); isOpinion {
						continue
					}
					// O→T: opinion word within window.
					if nearSet(sent, i, opt.Window, opinions, pos.Adj) ||
						nearSet(sent, i, opt.Window, opinions, pos.Verb) {
						targets[tg.Word] = true
						grew = true
						continue
					}
					// T→T: conjoined with a known target.
					if conjoinedWith(sent, i, targets, pos.Noun) {
						targets[tg.Word] = true
						grew = true
					}
				case pos.Adj:
					if opinions[tg.Word] {
						continue
					}
					// T→O: adjective near a known target.
					if nearSet(sent, i, opt.Window, targets, pos.Noun) {
						opinions[tg.Word] = true
						grew = true
						continue
					}
					// O→O: conjoined with a known opinion word.
					if conjoinedWith(sent, i, opinions, pos.Adj) {
						opinions[tg.Word] = true
						grew = true
					}
				}
			}
		}
		if !grew {
			break
		}
	}

	// Frequency pass: count sentences mentioning each target.
	counts := map[string]int{}
	for _, sent := range tagged {
		seen := map[string]bool{}
		for _, tg := range sent {
			if tg.Tag == pos.Noun && targets[tg.Word] && !seen[tg.Word] {
				seen[tg.Word] = true
				counts[tg.Word]++
			}
		}
	}
	var out []Aspect
	for term, n := range counts {
		if n >= opt.MinSupport {
			out = append(out, Aspect{Term: term, Freq: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].Term < out[j].Term
	})
	if opt.MaxAspects > 0 && len(out) > opt.MaxAspects {
		out = out[:opt.MaxAspects]
	}
	return out
}

// nearSet reports whether a word of the given tag inside the window
// around position i belongs to the set.
func nearSet(sent []pos.Tagged, i, window int, set map[string]bool, tag pos.Tag) bool {
	lo := i - window
	if lo < 0 {
		lo = 0
	}
	hi := i + window
	if hi >= len(sent) {
		hi = len(sent) - 1
	}
	for j := lo; j <= hi; j++ {
		if j == i {
			continue
		}
		if sent[j].Tag == tag && set[sent[j].Word] {
			return true
		}
	}
	return false
}

// conjoinedWith reports whether position i is joined by "and"/"or"/","
// (a Conj tag between them, adjacent on both sides) to a set member of
// the same tag.
func conjoinedWith(sent []pos.Tagged, i int, set map[string]bool, tag pos.Tag) bool {
	// pattern: X conj Y — check both directions.
	if i >= 2 && sent[i-1].Tag == pos.Conj && sent[i-2].Tag == tag && set[sent[i-2].Word] {
		return true
	}
	if i+2 < len(sent) && sent[i+1].Tag == pos.Conj && sent[i+2].Tag == tag && set[sent[i+2].Word] {
		return true
	}
	return false
}
