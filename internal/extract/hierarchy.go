package extract

import (
	"sort"
	"strings"

	"osars/internal/ontology"
	"osars/internal/text"
)

// InduceHierarchy builds an aspect hierarchy from a flat extracted
// aspect list, automating what the paper did by hand for Fig 3 ("since
// there is no available hierarchy of cell phone aspects, we manually
// built a hierarchy from the extracted aspects", §5.1). The rule
// mirrors the manual construction: aspect A is an ancestor of aspect B
// when A's token set is a proper subset of B's ("screen" ⊂ "screen
// resolution"); each aspect attaches to its most specific such subset
// aspect (ties broken by corpus frequency), or to the root when none
// exists.
//
// The result is always a valid rooted DAG (in fact a tree) accepted by
// the rest of the pipeline.
func InduceHierarchy(rootName string, aspects []Aspect) (*ontology.Ontology, error) {
	var b ontology.Builder
	root := b.AddConcept(rootName)

	type node struct {
		aspect Aspect
		tokens map[string]bool
		id     ontology.ConceptID
	}
	nodes := make([]node, 0, len(aspects))
	seen := map[string]bool{}
	for _, a := range aspects {
		norm := strings.Join(text.Tokenize(a.Term), " ")
		if norm == "" || seen[norm] {
			continue
		}
		seen[norm] = true
		toks := map[string]bool{}
		for _, t := range strings.Fields(norm) {
			toks[t] = true
		}
		nodes = append(nodes, node{aspect: Aspect{Term: norm, Freq: a.Freq}, tokens: toks})
	}

	// Shorter aspects first, so parents exist before children attach;
	// ties by frequency then name for determinism.
	sort.SliceStable(nodes, func(i, j int) bool {
		if len(nodes[i].tokens) != len(nodes[j].tokens) {
			return len(nodes[i].tokens) < len(nodes[j].tokens)
		}
		if nodes[i].aspect.Freq != nodes[j].aspect.Freq {
			return nodes[i].aspect.Freq > nodes[j].aspect.Freq
		}
		return nodes[i].aspect.Term < nodes[j].aspect.Term
	})

	for i := range nodes {
		nodes[i].id = b.AddConcept(nodes[i].aspect.Term)
		// Most specific already-added proper-subset aspect.
		best := -1
		for j := 0; j < i; j++ {
			if len(nodes[j].tokens) >= len(nodes[i].tokens) {
				continue
			}
			if !isSubset(nodes[j].tokens, nodes[i].tokens) {
				continue
			}
			if best < 0 ||
				len(nodes[j].tokens) > len(nodes[best].tokens) ||
				(len(nodes[j].tokens) == len(nodes[best].tokens) && nodes[j].aspect.Freq > nodes[best].aspect.Freq) {
				best = j
			}
		}
		parent := root
		if best >= 0 {
			parent = nodes[best].id
		}
		if err := b.AddEdge(parent, nodes[i].id); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

func isSubset(a, b map[string]bool) bool {
	for t := range a {
		if !b[t] {
			return false
		}
	}
	return true
}
