package extract

import (
	"testing"

	"osars/internal/model"
	"osars/internal/ontology"
	"osars/internal/sentiment"
	"osars/internal/text"
)

func phoneOnt(t testing.TB) (*ontology.Ontology, map[string]ontology.ConceptID) {
	t.Helper()
	var b ontology.Builder
	ids := map[string]ontology.ConceptID{}
	ids["phone"] = b.AddConcept("phone")
	ids["screen"] = b.Child(ids["phone"], "screen", "display")
	ids["screen resolution"] = b.Child(ids["screen"], "screen resolution", "resolution")
	ids["battery"] = b.Child(ids["phone"], "battery")
	ids["battery life"] = b.Child(ids["battery"], "battery life")
	ids["price"] = b.Child(ids["phone"], "price", "cost")
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return o, ids
}

func TestMatcherSingleAndSynonym(t *testing.T) {
	o, ids := phoneOnt(t)
	m := NewMatcher(o)
	got := m.MatchText("The display is bright")
	if len(got) != 1 || got[0].Concept != ids["screen"] {
		t.Fatalf("matches = %v, want [screen]", got)
	}
	got = m.MatchText("the cost was high")
	if len(got) != 1 || got[0].Concept != ids["price"] {
		t.Fatalf("matches = %v, want [price]", got)
	}
}

func TestMatcherLongestMatchWins(t *testing.T) {
	o, ids := phoneOnt(t)
	m := NewMatcher(o)
	got := m.MatchText("great battery life overall")
	if len(got) != 1 || got[0].Concept != ids["battery life"] {
		t.Fatalf("matches = %v, want [battery life]", got)
	}
	if got[0].Start != 1 || got[0].End != 3 {
		t.Fatalf("span = [%d,%d), want [1,3)", got[0].Start, got[0].End)
	}
}

func TestMatcherMultipleMatches(t *testing.T) {
	o, ids := phoneOnt(t)
	m := NewMatcher(o)
	got := m.MatchText("screen is great but the battery is bad")
	if len(got) != 2 || got[0].Concept != ids["screen"] || got[1].Concept != ids["battery"] {
		t.Fatalf("matches = %v", got)
	}
}

func TestMatcherRootNotIndexed(t *testing.T) {
	o, _ := phoneOnt(t)
	m := NewMatcher(o)
	if got := m.MatchText("I like this phone"); len(got) != 0 {
		t.Fatalf("root concept matched: %v", got)
	}
}

func TestMatcherNoMatch(t *testing.T) {
	o, _ := phoneOnt(t)
	m := NewMatcher(o)
	if got := m.MatchText("arrived quickly in nice packaging"); len(got) != 0 {
		t.Fatalf("unexpected matches: %v", got)
	}
	if got := m.MatchTokens(nil); len(got) != 0 {
		t.Fatalf("nil tokens matched: %v", got)
	}
}

func TestFrequentAspects(t *testing.T) {
	sentences := [][]string{
		text.Tokenize("the battery is great"),
		text.Tokenize("battery drains fast"),
		text.Tokenize("the screen is bright"),
		text.Tokenize("love the screen"),
		text.Tokenize("screen and battery are fine"),
		text.Tokenize("shipping was slow"),
	}
	aspects := FrequentAspects(sentences, 2)
	if len(aspects) < 2 {
		t.Fatalf("aspects = %v", aspects)
	}
	if aspects[0].Term != "battery" && aspects[0].Term != "screen" {
		t.Fatalf("top aspect = %v", aspects[0])
	}
	for _, a := range aspects {
		if a.Term == "shipping" {
			t.Fatal("minSupport 2 should drop single-mention 'shipping'")
		}
		if a.Freq < 2 {
			t.Fatalf("aspect below support: %v", a)
		}
	}
}

func TestFrequentAspectsNounPhrases(t *testing.T) {
	sentences := [][]string{
		text.Tokenize("battery life is great"),
		text.Tokenize("the battery life disappoints"),
	}
	aspects := FrequentAspects(sentences, 2)
	found := false
	for _, a := range aspects {
		if a.Term == "battery life" {
			found = true
		}
	}
	if !found {
		t.Fatalf("noun phrase missing: %v", aspects)
	}
}

func TestDoublePropagationExtractsSeededTargets(t *testing.T) {
	sentences := [][]string{
		text.Tokenize("the camera is great"),
		text.Tokenize("great camera indeed"),
		text.Tokenize("the speaker is terrible"),
		text.Tokenize("terrible speaker quality"),
	}
	aspects := DoublePropagation(sentences, DPOptions{MinSupport: 2})
	got := map[string]bool{}
	for _, a := range aspects {
		got[a.Term] = true
	}
	if !got["camera"] || !got["speaker"] {
		t.Fatalf("aspects = %v, want camera and speaker", aspects)
	}
}

func TestDoublePropagationBootstrapsNewOpinionWords(t *testing.T) {
	// "glorious" is not in the seed lexicon (but the -ous suffix tags
	// it Adj); it must be learned from "glorious processor" after
	// "processor" becomes a target via "great processor", and then
	// extract "modem" from "glorious modem".
	sentences := [][]string{
		text.Tokenize("a great processor"),
		text.Tokenize("such a glorious processor"),
		text.Tokenize("the glorious modem"),
		text.Tokenize("glorious modem indeed"),
		text.Tokenize("great processor again"),
	}
	aspects := DoublePropagation(sentences, DPOptions{MinSupport: 2})
	got := map[string]bool{}
	for _, a := range aspects {
		got[a.Term] = true
	}
	if !got["processor"] {
		t.Fatalf("aspects = %v, want processor", aspects)
	}
	if !got["modem"] {
		t.Fatalf("aspects = %v, want modem via O→O/T→O propagation", aspects)
	}
}

func TestDoublePropagationConjunctionRule(t *testing.T) {
	sentences := [][]string{
		text.Tokenize("the camera is great"),
		text.Tokenize("the camera and flashlight"),
		text.Tokenize("camera or flashlight"),
	}
	aspects := DoublePropagation(sentences, DPOptions{MinSupport: 2})
	got := map[string]bool{}
	for _, a := range aspects {
		got[a.Term] = true
	}
	if !got["flashlight"] {
		t.Fatalf("aspects = %v, want flashlight via T→T", aspects)
	}
}

func TestDoublePropagationMaxAspects(t *testing.T) {
	sentences := [][]string{
		text.Tokenize("great camera great speaker great screen"),
		text.Tokenize("great camera great speaker great screen"),
	}
	aspects := DoublePropagation(sentences, DPOptions{MinSupport: 2, MaxAspects: 1})
	if len(aspects) != 1 {
		t.Fatalf("MaxAspects not applied: %v", aspects)
	}
}

func TestPipelineAnnotate(t *testing.T) {
	o, ids := phoneOnt(t)
	p := NewPipeline(NewMatcher(o), sentiment.Lexicon{})
	s := p.AnnotateSentence("The screen is excellent")
	if len(s.Pairs) != 1 || s.Pairs[0].Concept != ids["screen"] {
		t.Fatalf("pairs = %v", s.Pairs)
	}
	if s.Pairs[0].Sentiment <= 0 {
		t.Fatalf("sentiment = %v, want positive", s.Pairs[0].Sentiment)
	}

	r := p.AnnotateReview("r1", "The screen is excellent. The battery is awful. Arrived fast.", 0.5)
	if len(r.Sentences) != 3 {
		t.Fatalf("sentences = %d, want 3", len(r.Sentences))
	}
	pairs := r.Pairs()
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v, want 2", pairs)
	}
	if pairs[0].Sentiment <= 0 || pairs[1].Sentiment >= 0 {
		t.Fatalf("sentiments = %v", pairs)
	}
	if r.Rating != 0.5 || r.ID != "r1" {
		t.Fatal("review metadata lost")
	}
}

func TestPipelineDefaultsToLexicon(t *testing.T) {
	o, _ := phoneOnt(t)
	p := NewPipeline(NewMatcher(o), nil)
	if p.Estimator == nil {
		t.Fatal("nil estimator not defaulted")
	}
}

func TestPipelineAnnotateItem(t *testing.T) {
	o, _ := phoneOnt(t)
	p := NewPipeline(NewMatcher(o), nil)
	item := p.AnnotateItem("p1", "SuperPhone", []RawReview{
		{ID: "r1", Text: "Great screen. Bad battery.", Rating: 0.0},
		{ID: "r2", Text: "The price is excellent!", Rating: 1.0},
	})
	if item.ID != "p1" || len(item.Reviews) != 2 {
		t.Fatalf("item = %+v", item)
	}
	if got := len(item.Pairs()); got != 3 {
		t.Fatalf("item pairs = %d, want 3", got)
	}
	var _ *model.Item = item
}

func TestMatcherStemmedVariants(t *testing.T) {
	o, ids := phoneOnt(t)
	exact := NewMatcher(o)
	stemmed := NewMatcherWithOptions(o, MatcherOptions{Stem: true})
	// Plural form: exact matcher misses, stemmed matcher hits.
	if got := exact.MatchText("both batteries died"); len(got) != 0 {
		t.Fatalf("exact matcher matched plural: %v", got)
	}
	got := stemmed.MatchText("both batteries died")
	if len(got) != 1 || got[0].Concept != ids["battery"] {
		t.Fatalf("stemmed matcher = %v, want battery", got)
	}
	// Multi-word phrase with inflection.
	got = stemmed.MatchText("the screens resolution impressed me")
	if len(got) == 0 {
		t.Fatalf("stemmed phrase match failed")
	}
	// Exact forms still work under stemming.
	got = stemmed.MatchText("battery life is fine")
	if len(got) != 1 || got[0].Concept != ids["battery life"] {
		t.Fatalf("stemmed matcher on exact phrase = %v", got)
	}
}
