package extract

import (
	"runtime"
	"sync"
	"sync/atomic"

	"osars/internal/model"
	"osars/internal/sentiment"
	"osars/internal/text"
)

// Pipeline composes sentence splitting, concept matching and sentence
// sentiment estimation into the review → concept-sentiment-pairs
// mapping of §5.1: "to compute the sentiment around a concept, we
// compute the sentiment of the containing sentence and assign this
// sentiment to the concept."
//
// Concurrency invariant: a Pipeline is safe for concurrent use. The
// Matcher is immutable after construction, and every Estimator
// implementation must be read-only in EstimateSentence (the built-in
// Lexicon and Ridge estimators are: both only read state fixed at
// construction/training time). AnnotateReviews relies on this to fan
// annotation out across a worker pool; TestPipelineParallelMatchesSequential
// exercises the invariant under -race.
type Pipeline struct {
	Matcher   *Matcher
	Estimator sentiment.Estimator
}

// NewPipeline wires a matcher with an estimator. A nil estimator
// defaults to the unsupervised lexicon scorer.
func NewPipeline(m *Matcher, e sentiment.Estimator) *Pipeline {
	if e == nil {
		e = sentiment.Lexicon{}
	}
	return &Pipeline{Matcher: m, Estimator: e}
}

// AnnotateSentence extracts the pairs of one raw sentence.
func (p *Pipeline) AnnotateSentence(raw string) model.Sentence {
	tokens := text.Tokenize(raw)
	s := model.Sentence{Text: raw}
	matches := p.Matcher.MatchTokens(tokens)
	if len(matches) == 0 {
		return s
	}
	score := p.Estimator.EstimateSentence(tokens)
	for _, mt := range matches {
		s.Pairs = append(s.Pairs, model.Pair{Concept: mt.Concept, Sentiment: score})
	}
	return s
}

// AnnotateReview splits raw review text into sentences and annotates
// each. rating is the review's star rating normalized to [-1, +1].
func (p *Pipeline) AnnotateReview(id, raw string, rating float64) model.Review {
	r := model.Review{ID: id, Rating: rating}
	for _, sent := range text.SplitSentences(raw) {
		r.Sentences = append(r.Sentences, p.AnnotateSentence(sent))
	}
	return r
}

// RawReview is one unprocessed review.
type RawReview struct {
	ID     string
	Text   string
	Rating float64
}

// AnnotateReviews annotates a batch of raw reviews across a bounded
// worker pool and returns the annotated reviews in input order —
// output is deterministic and byte-identical to the sequential path
// for any worker count, because each review's annotation is
// independent and workers write only their own result slot.
//
// workers ≤ 0 uses GOMAXPROCS; the count is clamped to len(reviews).
// One review (or one worker) short-circuits to the sequential loop.
func (p *Pipeline) AnnotateReviews(reviews []RawReview, workers int) []model.Review {
	out := make([]model.Review, len(reviews))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reviews) {
		workers = len(reviews)
	}
	if workers <= 1 {
		for i, rr := range reviews {
			out[i] = p.AnnotateReview(rr.ID, rr.Text, rr.Rating)
		}
		return out
	}
	// Atomic work-stealing counter: cheaper than a channel per job and
	// naturally balances reviews of uneven length.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reviews) {
					return
				}
				rr := &reviews[i]
				out[i] = p.AnnotateReview(rr.ID, rr.Text, rr.Rating)
			}
		}()
	}
	wg.Wait()
	return out
}

// AnnotateItem builds the full model.Item from raw reviews,
// sequentially. Use AnnotateItemParallel for large items on servers.
func (p *Pipeline) AnnotateItem(id, name string, reviews []RawReview) *model.Item {
	return &model.Item{ID: id, Name: name, Reviews: p.AnnotateReviews(reviews, 1)}
}

// AnnotateItemParallel is AnnotateItem with annotation fanned out
// across workers (see AnnotateReviews for the worker semantics). The
// resulting Item is identical to the sequential one.
func (p *Pipeline) AnnotateItemParallel(id, name string, reviews []RawReview, workers int) *model.Item {
	return &model.Item{ID: id, Name: name, Reviews: p.AnnotateReviews(reviews, workers)}
}
