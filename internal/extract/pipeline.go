package extract

import (
	"osars/internal/model"
	"osars/internal/sentiment"
	"osars/internal/text"
)

// Pipeline composes sentence splitting, concept matching and sentence
// sentiment estimation into the review → concept-sentiment-pairs
// mapping of §5.1: "to compute the sentiment around a concept, we
// compute the sentiment of the containing sentence and assign this
// sentiment to the concept."
type Pipeline struct {
	Matcher   *Matcher
	Estimator sentiment.Estimator
}

// NewPipeline wires a matcher with an estimator. A nil estimator
// defaults to the unsupervised lexicon scorer.
func NewPipeline(m *Matcher, e sentiment.Estimator) *Pipeline {
	if e == nil {
		e = sentiment.Lexicon{}
	}
	return &Pipeline{Matcher: m, Estimator: e}
}

// AnnotateSentence extracts the pairs of one raw sentence.
func (p *Pipeline) AnnotateSentence(raw string) model.Sentence {
	tokens := text.Tokenize(raw)
	s := model.Sentence{Text: raw}
	matches := p.Matcher.MatchTokens(tokens)
	if len(matches) == 0 {
		return s
	}
	score := p.Estimator.EstimateSentence(tokens)
	for _, mt := range matches {
		s.Pairs = append(s.Pairs, model.Pair{Concept: mt.Concept, Sentiment: score})
	}
	return s
}

// AnnotateReview splits raw review text into sentences and annotates
// each. rating is the review's star rating normalized to [-1, +1].
func (p *Pipeline) AnnotateReview(id, raw string, rating float64) model.Review {
	r := model.Review{ID: id, Rating: rating}
	for _, sent := range text.SplitSentences(raw) {
		r.Sentences = append(r.Sentences, p.AnnotateSentence(sent))
	}
	return r
}

// RawReview is one unprocessed review.
type RawReview struct {
	ID     string
	Text   string
	Rating float64
}

// AnnotateItem builds the full model.Item from raw reviews.
func (p *Pipeline) AnnotateItem(id, name string, reviews []RawReview) *model.Item {
	item := &model.Item{ID: id, Name: name}
	for _, rr := range reviews {
		item.Reviews = append(item.Reviews, p.AnnotateReview(rr.ID, rr.Text, rr.Rating))
	}
	return item
}
