package extract_test

import (
	"fmt"

	"osars/internal/extract"
	"osars/internal/ontology"
	"osars/internal/text"
)

// Example runs the full §5.1 extraction pipeline: concept matching
// over an ontology plus sentence-level sentiment.
func Example() {
	var b ontology.Builder
	phone := b.AddConcept("phone")
	b.Child(phone, "screen", "display")
	b.Child(phone, "battery")
	ont, err := b.Build()
	if err != nil {
		panic(err)
	}
	p := extract.NewPipeline(extract.NewMatcher(ont), nil)
	review := p.AnnotateReview("r1", "The display is wonderful. The battery is awful.", 0)
	for _, pair := range review.Pairs() {
		fmt.Printf("%s = %+.2f\n", ont.Name(pair.Concept), pair.Sentiment)
	}
	// Output:
	// screen = +1.00
	// battery = -1.00
}

// ExampleDoublePropagation bootstraps aspects from opinion-word seeds.
func ExampleDoublePropagation() {
	sentences := [][]string{
		text.Tokenize("the camera is great"),
		text.Tokenize("great camera indeed"),
		text.Tokenize("the speaker is terrible"),
		text.Tokenize("terrible speaker quality"),
	}
	for _, a := range extract.DoublePropagation(sentences, extract.DPOptions{MinSupport: 2}) {
		fmt.Printf("%s (%d mentions)\n", a.Term, a.Freq)
	}
	// Output:
	// camera (2 mentions)
	// speaker (2 mentions)
}

// ExampleInduceHierarchy turns a flat aspect list into a hierarchy by
// the token-subset rule (automating the paper's manual Fig 3 step).
func ExampleInduceHierarchy() {
	ont, err := extract.InduceHierarchy("phone", []extract.Aspect{
		{Term: "screen", Freq: 100},
		{Term: "screen resolution", Freq: 40},
		{Term: "battery", Freq: 90},
	})
	if err != nil {
		panic(err)
	}
	res, _ := ont.Lookup("screen resolution")
	scr, _ := ont.Lookup("screen")
	fmt.Println("screen is parent of screen resolution:", ont.UpDistance(res, scr) == 1)
	// Output: screen is parent of screen resolution: true
}
