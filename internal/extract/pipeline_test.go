package extract

import (
	"fmt"
	"reflect"
	"testing"

	"osars/internal/dataset"
	"osars/internal/sentiment"
)

// testRaws generates a realistic review corpus for the parallel
// annotation tests.
func testRaws(t testing.TB) (*Pipeline, []RawReview) {
	t.Helper()
	cfg := dataset.DoctorConfig(11)
	cfg.NumItems = 1
	cfg.TotalReviews = 50
	cfg.MinReviews = 50
	cfg.MaxReviews = 50
	c := dataset.Generate(cfg)
	p := NewPipeline(NewMatcher(c.Ont), sentiment.Lexicon{})
	var raws []RawReview
	for _, r := range c.Items[0].Reviews {
		raws = append(raws, RawReview{ID: r.ID, Text: r.Text, Rating: r.Rating})
	}
	return p, raws
}

// TestPipelineParallelMatchesSequential is the concurrency-invariant
// test the Pipeline doc comment points at: annotation fanned out over
// any worker count must be byte-identical to the sequential loop. Run
// under -race this also exercises that Matcher and the lexicon
// Estimator really are read-only during annotation.
func TestPipelineParallelMatchesSequential(t *testing.T) {
	p, raws := testRaws(t)
	want := p.AnnotateReviews(raws, 1)
	for _, workers := range []int{0, 2, 3, 7, 16, len(raws), len(raws) + 9} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			got := p.AnnotateReviews(raws, workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("parallel annotation (workers=%d) differs from sequential", workers)
			}
		})
	}
}

// TestAnnotateItemParallelMatchesSequential covers the Item-level
// wrapper used by Summarizer.AnnotateItem.
func TestAnnotateItemParallelMatchesSequential(t *testing.T) {
	p, raws := testRaws(t)
	want := p.AnnotateItem("item-1", "Item One", raws)
	got := p.AnnotateItemParallel("item-1", "Item One", raws, 4)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("AnnotateItemParallel differs from AnnotateItem")
	}
}

// TestAnnotateReviewsEmpty pins the edge cases: no reviews, and more
// workers than reviews.
func TestAnnotateReviewsEmpty(t *testing.T) {
	p, _ := testRaws(t)
	if got := p.AnnotateReviews(nil, 8); len(got) != 0 {
		t.Fatalf("AnnotateReviews(nil) = %v, want empty", got)
	}
	one := []RawReview{{ID: "r1", Text: "Great doctor. Friendly staff!", Rating: 1}}
	got := p.AnnotateReviews(one, 8)
	want := p.AnnotateReviews(one, 1)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("single review with many workers differs from sequential")
	}
}
