// Store-layer metrics. One storeMetrics value is built per store (so
// per SHARD in a sharded deployment — every instrument carries the
// shard label) from the registry handed in via Config.Obs. With a nil
// registry every instrument pointer is nil and, because obs methods
// are nil-receiver safe, every call site below degrades to a single
// branch: the store code instruments unconditionally and never checks
// "is observability on".
package store

import "osars/internal/obs"

// storeMetrics holds the store's interned instruments. The zero value
// is the disabled state.
type storeMetrics struct {
	appendSeconds   *obs.Histogram    // end-to-end AppendReviews latency (annotate + commit)
	graphSeconds    *obs.Histogram    // coverage-graph acquisition (cold build or index catch-up + freeze)
	solveSeconds    [4]*obs.Histogram // selection-algorithm latency, indexed by Method
	cacheHits       *obs.Counter
	cacheMisses     *obs.Counter
	cacheEvictions  *obs.Counter
	commitBatch     *obs.Histogram // group-commit batch size (records per durable commit)
	snapshotSeconds *obs.Histogram // snapshot + WAL compaction duration

	// Incremental coverage-index instruments.
	indexMergeSeconds  *obs.Histogram // append-path index merges (O(delta) maintenance)
	indexRebuilds      *obs.Counter   // indexes built from scratch at solve time
	indexWarmHits      *obs.Counter   // warm-start greedy replays confirmed
	indexWarmFallbacks *obs.Counter   // warm-start seeds absent or invalidated

	// Ontology lifecycle instruments.
	reannotations *obs.Counter   // lazy re-annotations after an ontology swap
	reannSeconds  *obs.Histogram // per-item re-annotation latency
	activations   *obs.Counter   // ontology runtime swaps applied

	// WAL instruments, injected into wal.Options at Open.
	walFsync     *obs.Histogram
	walBytes     *obs.Counter
	walRotations *obs.Counter
}

// newStoreMetrics interns every store/WAL instrument for one shard
// label. A nil registry returns the zero (disabled) value.
func newStoreMetrics(reg *obs.Registry, shard string) storeMetrics {
	if reg == nil {
		return storeMetrics{}
	}
	if shard == "" {
		shard = "0"
	}
	m := storeMetrics{
		appendSeconds: reg.HistogramVec("osars_store_append_seconds",
			"End-to-end AppendReviews latency (annotation plus durable commit) in seconds.",
			nil, "shard").With(shard),
		graphSeconds: reg.HistogramVec("osars_store_graph_build_seconds",
			"Coverage-graph acquisition latency in seconds: a cold build, or the incremental index's catch-up plus freeze.",
			nil, "shard").With(shard),
		indexMergeSeconds: reg.HistogramVec("osars_store_index_merge_seconds",
			"Append-path incremental coverage-index merge latency in seconds (delta maintenance, off the commit critical section).",
			nil, "shard").With(shard),
		indexRebuilds: reg.CounterVec("osars_store_index_rebuilds_total",
			"Coverage indexes rebuilt from scratch at solve time (recovered snapshots, replicas, first solve of an item).",
			"shard").With(shard),
		indexWarmHits: reg.CounterVec("osars_store_index_warm_hits_total",
			"Warm-start greedy solves whose previous selection replayed unchanged.", "shard").With(shard),
		indexWarmFallbacks: reg.CounterVec("osars_store_index_warm_fallbacks_total",
			"Warm-start greedy solves with no usable seed or a seed invalidated by the corpus delta.",
			"shard").With(shard),
		cacheHits: reg.CounterVec("osars_store_cache_hits_total",
			"Summary-cache hits.", "shard").With(shard),
		cacheMisses: reg.CounterVec("osars_store_cache_misses_total",
			"Summary-cache misses.", "shard").With(shard),
		cacheEvictions: reg.CounterVec("osars_store_cache_evictions_total",
			"Summary-cache evictions (entry or byte budget).", "shard").With(shard),
		commitBatch: reg.HistogramVec("osars_store_commit_batch_size",
			"Records per group commit: 1 means no batching, higher means N writers shared one fsync.",
			obs.SizeBuckets, "shard").With(shard),
		snapshotSeconds: reg.HistogramVec("osars_wal_snapshot_seconds",
			"Snapshot write + WAL compaction duration in seconds.",
			nil, "shard").With(shard),
		reannotations: reg.CounterVec("osars_store_reannotations_total",
			"Items lazily re-annotated after an ontology swap.", "shard").With(shard),
		reannSeconds: reg.HistogramVec("osars_store_reannotation_seconds",
			"Per-item corpus re-annotation latency in seconds.",
			nil, "shard").With(shard),
		activations: reg.CounterVec("osars_store_ontology_activations_total",
			"Ontology runtime activations applied (local, replayed or replicated).",
			"shard").With(shard),
		walFsync: reg.HistogramVec("osars_wal_fsync_seconds",
			"WAL fsync latency in seconds (real syncs only; no-op syncs are skipped).",
			nil, "shard").With(shard),
		walBytes: reg.CounterVec("osars_wal_bytes_written_total",
			"Framed bytes written to WAL segments.", "shard").With(shard),
		walRotations: reg.CounterVec("osars_wal_segment_rotations_total",
			"WAL segment rotations, including the initial segment.", "shard").With(shard),
	}
	solves := reg.HistogramVec("osars_store_solve_seconds",
		"Selection-algorithm latency in seconds, per summarization method (graph acquisition is osars_store_graph_build_seconds).",
		nil, "shard", "method")
	for _, mm := range []Method{MethodGreedy, MethodRR, MethodILP, MethodLocalSearch} {
		m.solveSeconds[mm] = solves.With(shard, mm.String())
	}
	return m
}
