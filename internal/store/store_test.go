package store

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"osars/internal/dataset"
	"osars/internal/extract"
	"osars/internal/model"
)

func testConfig() Config {
	ont := dataset.CellPhoneOntology()
	return Config{
		Metric:   model.Metric{Ont: ont, Epsilon: 0.5},
		Pipeline: extract.NewPipeline(extract.NewMatcher(ont), nil),
	}
}

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var phoneReviews = []extract.RawReview{
	{ID: "r1", Text: "The screen is excellent. The battery is awful.", Rating: 0.2},
	{ID: "r2", Text: "Amazing screen resolution! The battery life is terrible.", Rating: 0.0},
	{ID: "r3", Text: "Great camera and a decent price.", Rating: 0.8},
	{ID: "r4", Text: "The speaker is too quiet but the design is gorgeous.", Rating: 0.4},
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a config without an ontology")
	}
	cfg := testConfig()
	cfg.Pipeline = nil
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted a config without a pipeline")
	}
}

func TestAppendIncremental(t *testing.T) {
	s := testStore(t)
	st, err := s.AppendReviews("p1", "Acme Phone", phoneReviews[:2])
	if err != nil {
		t.Fatal(err)
	}
	if st.NumReviews != 2 || st.NumPairs == 0 || st.Generation == 0 || st.Name != "Acme Phone" {
		t.Fatalf("first append stats = %+v", st)
	}
	firstGen := st.Generation

	// Capture the published snapshot; a later append must not mutate it.
	snap, gen, ok := s.Item("p1")
	if !ok || gen != firstGen || len(snap.Reviews) != 2 {
		t.Fatalf("Item snapshot = %v gen=%d ok=%v", snap, gen, ok)
	}

	st2, err := s.AppendReviews("p1", "", phoneReviews[2:])
	if err != nil {
		t.Fatal(err)
	}
	if st2.NumReviews != 4 || st2.Generation <= firstGen || st2.Name != "Acme Phone" {
		t.Fatalf("second append stats = %+v", st2)
	}
	if st2.NumPairs <= st.NumPairs || st2.NumSentences <= st.NumSentences {
		t.Fatalf("counts did not grow: %+v -> %+v", st, st2)
	}
	if len(snap.Reviews) != 2 {
		t.Fatalf("old snapshot mutated: %d reviews", len(snap.Reviews))
	}
	now, _, _ := s.Item("p1")
	if len(now.Reviews) != 4 || now.Reviews[3].ID != "r4" {
		t.Fatalf("merged item = %+v", now)
	}
	// The annotations of the first two reviews must be shared, not
	// recomputed: the structs are copied, so compare the sentence text
	// backing content.
	if now.Reviews[0].Sentences[0].Text != snap.Reviews[0].Sentences[0].Text {
		t.Fatal("first review annotation lost across append")
	}
}

func TestAppendValidation(t *testing.T) {
	s := testStore(t)
	if _, err := s.AppendReviews("", "x", phoneReviews); err == nil {
		t.Fatal("empty item id accepted")
	}
}

func TestAppendZeroReviewsAndRename(t *testing.T) {
	s := testStore(t)
	st, err := s.AppendReviews("p1", "Acme", nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumReviews != 0 || st.Generation == 0 {
		t.Fatalf("empty create stats = %+v", st)
	}
	st2, _ := s.AppendReviews("p1", "", nil)
	if st2.Generation != st.Generation {
		t.Fatalf("no-op append bumped generation: %d -> %d", st.Generation, st2.Generation)
	}
	st3, _ := s.AppendReviews("p1", "Acme Deluxe", nil)
	if st3.Generation <= st2.Generation || st3.Name != "Acme Deluxe" {
		t.Fatalf("rename stats = %+v", st3)
	}
}

func TestSummaryNotFound(t *testing.T) {
	s := testStore(t)
	if _, _, err := s.Summary("nope", 2, model.GranularitySentences, MethodGreedy); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestSummaryValidation(t *testing.T) {
	s := testStore(t)
	s.AppendReviews("p1", "", phoneReviews)
	if _, _, err := s.Summary("p1", -1, model.GranularitySentences, MethodGreedy); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, _, err := s.Summary("p1", 2, model.Granularity(99), MethodGreedy); err == nil {
		t.Fatal("bad granularity accepted")
	}
	if _, _, err := s.Summary("p1", 2, model.GranularitySentences, Method(99)); err == nil {
		t.Fatal("bad method accepted")
	}
}

func TestSummaryCacheHit(t *testing.T) {
	s := testStore(t)
	s.AppendReviews("p1", "Acme", phoneReviews)
	sum1, cached, err := s.Summary("p1", 2, model.GranularitySentences, MethodGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first read reported cached")
	}
	if len(sum1.Sentences) != 2 || sum1.K != 2 || sum1.NumPairs == 0 {
		t.Fatalf("summary = %+v", sum1)
	}
	sum2, cached, err := s.Summary("p1", 2, model.GranularitySentences, MethodGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || sum2 != sum1 {
		t.Fatalf("second read: cached=%v same=%v", cached, sum2 == sum1)
	}
	st := s.Stats()
	if st.Solves != 1 || st.CacheHits != 1 || st.CacheMisses != 1 || st.CacheEntries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Different parameters miss.
	_, cached, err = s.Summary("p1", 3, model.GranularitySentences, MethodGreedy)
	if err != nil || cached {
		t.Fatalf("distinct k: cached=%v err=%v", cached, err)
	}
}

func TestGenerationInvalidatesCache(t *testing.T) {
	s := testStore(t)
	s.AppendReviews("p1", "Acme", phoneReviews[:3])
	sum1, _, err := s.Summary("p1", 100, model.GranularityReviews, MethodGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum1.ReviewIDs) != 3 {
		t.Fatalf("review ids = %v", sum1.ReviewIDs)
	}
	st, _ := s.AppendReviews("p1", "", phoneReviews[3:])
	sum2, cached, err := s.Summary("p1", 100, model.GranularityReviews, MethodGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("stale cache served after append")
	}
	if sum2.Generation != st.Generation || len(sum2.ReviewIDs) != 4 {
		t.Fatalf("post-append summary = %+v (want gen %d, 4 reviews)", sum2, st.Generation)
	}
}

func TestSummaryAllMethodsAndGranularities(t *testing.T) {
	s := testStore(t)
	s.AppendReviews("p1", "Acme", phoneReviews)
	for _, g := range []model.Granularity{model.GranularityPairs, model.GranularitySentences, model.GranularityReviews} {
		for _, m := range []Method{MethodGreedy, MethodRR, MethodILP, MethodLocalSearch} {
			sum, _, err := s.Summary("p1", 2, g, m)
			if err != nil {
				t.Fatalf("%v/%v: %v", g, m, err)
			}
			if len(sum.Indices) != 2 || sum.Cost < 0 {
				t.Fatalf("%v/%v: summary = %+v", g, m, sum)
			}
		}
	}
}

func TestDeletePurgesAndRecreates(t *testing.T) {
	s := testStore(t)
	st, _ := s.AppendReviews("p1", "Acme", phoneReviews)
	s.Summary("p1", 2, model.GranularitySentences, MethodGreedy)
	if s.Stats().CacheEntries != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
	if deleted, err := s.Delete("p1"); !deleted || err != nil {
		t.Fatalf("Delete existing item = (%v, %v)", deleted, err)
	}
	if deleted, err := s.Delete("p1"); deleted || err != nil {
		t.Fatalf("Delete missing item = (%v, %v)", deleted, err)
	}
	if _, _, ok := s.Item("p1"); ok {
		t.Fatal("item still present after delete")
	}
	if got := s.Stats().CacheEntries; got != 0 {
		t.Fatalf("cache entries after delete = %d", got)
	}
	// Recreation gets a strictly newer generation: stale keys can never
	// collide.
	st2, _ := s.AppendReviews("p1", "Acme v2", phoneReviews[:1])
	if st2.Generation <= st.Generation {
		t.Fatalf("recreated generation %d not beyond %d", st2.Generation, st.Generation)
	}
	sum, cached, err := s.Summary("p1", 100, model.GranularityReviews, MethodGreedy)
	if err != nil || cached || len(sum.ReviewIDs) != 1 {
		t.Fatalf("post-recreate summary = %+v cached=%v err=%v", sum, cached, err)
	}
}

func TestListAndLen(t *testing.T) {
	s := testStore(t)
	s.AppendReviews("b", "", phoneReviews[:1])
	s.AppendReviews("a", "", phoneReviews[1:2])
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	list := s.List()
	if len(list) != 2 || list[0].ID != "a" || list[1].ID != "b" {
		t.Fatalf("List = %+v", list)
	}
	if _, ok := s.ItemStats("a"); !ok {
		t.Fatal("ItemStats missing for a")
	}
	if _, ok := s.ItemStats("zzz"); ok {
		t.Fatal("ItemStats found phantom item")
	}
}

func TestLRUEntryEviction(t *testing.T) {
	cfg := testConfig()
	cfg.MaxCacheEntries = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.AppendReviews("p1", "", phoneReviews)
	for k := 1; k <= 3; k++ {
		s.Summary("p1", k, model.GranularitySentences, MethodGreedy)
	}
	st := s.Stats()
	if st.CacheEntries != 2 || st.CacheEvictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// k=1 was evicted (LRU), k=3 and k=2 remain.
	if _, cached, _ := s.Summary("p1", 3, model.GranularitySentences, MethodGreedy); !cached {
		t.Fatal("k=3 should be cached")
	}
	if _, cached, _ := s.Summary("p1", 1, model.GranularitySentences, MethodGreedy); cached {
		t.Fatal("k=1 should have been evicted")
	}
}

func TestByteBudgetSkipsOversized(t *testing.T) {
	cfg := testConfig()
	cfg.MaxCacheBytes = 1 // every summary is larger than this
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.AppendReviews("p1", "", phoneReviews)
	for i := 0; i < 3; i++ {
		if _, cached, _ := s.Summary("p1", 2, model.GranularitySentences, MethodGreedy); cached {
			t.Fatal("nothing should be cacheable under a 1-byte budget")
		}
	}
	st := s.Stats()
	if st.CacheEntries != 0 || st.Solves != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestByteBudgetEvicts(t *testing.T) {
	// Measure one entry's approximate size, then budget for ~1.5 of
	// them: inserting a second entry must evict the first.
	probe := testStore(t)
	probe.AppendReviews("p1", "", phoneReviews)
	sum, _, err := probe.Summary("p1", 1, model.GranularityPairs, MethodGreedy)
	if err != nil {
		t.Fatal(err)
	}
	size := summarySize(cacheKey{id: "p1", gen: 1, k: 1, g: model.GranularityPairs, m: MethodGreedy}, sum)

	cfg := testConfig()
	cfg.MaxCacheBytes = size + size/2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.AppendReviews("p1", "", phoneReviews)
	s.Summary("p1", 1, model.GranularityPairs, MethodGreedy)
	s.Summary("p1", 2, model.GranularityPairs, MethodGreedy)
	st := s.Stats()
	if st.CacheEvictions == 0 {
		t.Fatalf("expected a byte-budget eviction, stats = %+v", st)
	}
	if st.CacheBytes > cfg.MaxCacheBytes {
		t.Fatalf("cache bytes %d exceed budget %d", st.CacheBytes, cfg.MaxCacheBytes)
	}
}

func TestCacheDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.MaxCacheEntries = -1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.AppendReviews("p1", "", phoneReviews)
	for i := 0; i < 2; i++ {
		if _, cached, _ := s.Summary("p1", 2, model.GranularitySentences, MethodGreedy); cached {
			t.Fatal("cache disabled but served a cached summary")
		}
	}
	if st := s.Stats(); st.Solves != 2 || st.CacheEntries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFlightGroupDedup drives the singleflight primitive directly:
// the first call blocks inside fn while the others pile up, then all
// ten observe the same value and fn ran far fewer than ten times.
// (Modeled on x/sync/singleflight's own DoDupSuppress test: a strict
// execs==1 would race against goroutine scheduling, so the assertion
// tolerates stragglers that arrive after the flight lands.)
func TestFlightGroupDedup(t *testing.T) {
	var g flightGroup
	key := cacheKey{id: "x", gen: 1, k: 2}
	started := make(chan struct{}, 10)
	release := make(chan struct{})
	var execs atomic.Int64
	want := &Summary{ItemID: "x"}
	fn := func() (*Summary, error) {
		execs.Add(1)
		started <- struct{}{}
		<-release
		return want, nil
	}

	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, shared, err := g.Do(key, fn)
			if val != want || err != nil {
				t.Errorf("got val=%v err=%v", val, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	<-started                          // one leader is inside fn
	time.Sleep(100 * time.Millisecond) // let the rest pile up on the flight
	close(release)
	wg.Wait()
	if n := execs.Load(); n <= 0 || n >= 10 {
		t.Fatalf("fn executed %d times, want deduplication", n)
	}
	if execs.Load()+sharedCount.Load() != 10 {
		t.Fatalf("execs=%d shared=%d don't account for 10 calls", execs.Load(), sharedCount.Load())
	}
}

// TestConcurrentSummarySingleSolve asserts the store-level guarantee:
// any number of concurrent identical reads cost at most one solve,
// whether they joined the flight or hit the cache afterwards.
func TestConcurrentSummarySingleSolve(t *testing.T) {
	s := testStore(t)
	s.AppendReviews("p1", "", phoneReviews)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum, _, err := s.Summary("p1", 2, model.GranularitySentences, MethodGreedy)
			if err != nil || len(sum.Sentences) != 2 {
				t.Errorf("summary = %+v err = %v", sum, err)
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Solves != 1 {
		t.Fatalf("solves = %d, want 1 (stats %+v)", st.Solves, st)
	}
}
