// Durability subsystem of the store: every state-changing operation
// (append, delete) is serialized to a segmented CRC32C write-ahead log
// before it is acknowledged, periodic snapshots serialize a consistent
// copy-on-write view of the corpus, and a compaction step retires WAL
// segments fully covered by the latest snapshot. Recovery is
// latest-snapshot-then-replay: New loads the newest readable snapshot
// and replays the WAL suffix through the exact same code path live
// ingestion uses, so a recovered store is byte-identical to the
// pre-crash store for every acknowledged write (including item
// generations and timestamps, which are logged, not re-minted).
package store

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"osars/internal/extract"
	"osars/internal/model"
	"osars/internal/ontoreg"
	"osars/internal/wal"
)

// FsyncPolicy selects when WAL appends are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs before every append acknowledgment: an
	// acknowledged write survives power loss. The default.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background timer (Config.FsyncInterval):
	// a crash can lose at most the last interval's acknowledged writes,
	// but ingestion throughput is close to FsyncNever.
	FsyncInterval
	// FsyncNever leaves syncing to the OS page cache: writes survive a
	// process crash (the data is in the kernel) but not power loss.
	FsyncNever
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy parses "always", "interval" or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// DefaultSnapshotEvery is the automatic snapshot cadence (logged
// records between snapshots) when Config.SnapshotEvery is zero.
const DefaultSnapshotEvery = 4096

// Defaults for the durability knobs.
const (
	DefaultFsyncInterval = 100 * time.Millisecond
	snapshotsToKeep      = 2 // newest + one fallback generation
)

// WAL record operations.
const (
	opAppend = "append"
	opDelete = "delete"
	// opActivate logs an ontology activation: the record carries the
	// full canonical entry payload, so replay (and a replica) rebuilds
	// the exact runtime without consulting any registry directory.
	opActivate = "activate"
)

// walReview is one raw review inside a logged append. The RAW text is
// logged (not the annotation): replay re-runs the deterministic
// extraction pipeline, which keeps records small and lets a future
// pipeline version re-annotate history.
type walReview struct {
	ID     string  `json:"id,omitempty"`
	Text   string  `json:"text,omitempty"`
	Rating float64 `json:"rating,omitempty"`
}

// walRecord is the JSON payload of one WAL record.
type walRecord struct {
	Op      string      `json:"op"`
	ID      string      `json:"id"`
	Name    string      `json:"name,omitempty"`
	TS      time.Time   `json:"ts"`
	Reviews []walReview `json:"reviews,omitempty"`
	// Entry is the canonical ontology entry payload of an opActivate
	// record (ontoreg format, content-hash versioned).
	Entry json.RawMessage `json:"entry,omitempty"`
}

// snapItem is one item inside a snapshot: the annotated corpus plus
// the entry bookkeeping (generation, counters, timestamps). Raws and
// AnnVer (ontology lifecycle state) are append-only additions — old
// snapshots without them still load, with the raws reconstructed
// lazily from the annotated corpus when first needed.
type snapItem struct {
	ID           string      `json:"id"`
	Gen          uint64      `json:"gen"`
	NumSentences int         `json:"num_sentences"`
	NumPairs     int         `json:"num_pairs"`
	CreatedAt    time.Time   `json:"created_at"`
	UpdatedAt    time.Time   `json:"updated_at"`
	Item         *model.Item `json:"item"`
	AnnVer       string      `json:"ann_ver,omitempty"`
	Raws         []walReview `json:"raws,omitempty"`
}

// snapFile is the JSON payload of one snapshot. ActiveEntry embeds the
// active ontology entry so compaction can retire the WAL segment that
// held the activate record without losing the active version — a
// restored store is on the right ontology before the first replayed
// record applies.
type snapFile struct {
	Schema      string          `json:"schema"`
	LastSeq     uint64          `json:"last_seq"`
	NextGen     uint64          `json:"next_gen"`
	Appends     uint64          `json:"appends"`
	ActiveEntry json.RawMessage `json:"active_entry,omitempty"`
	Activations uint64          `json:"activations,omitempty"`
	Items       []snapItem      `json:"items"`
}

const snapSchema = "osars-store-snapshot/v1"

// RecoveryStats reports what New had to do to restore a durable store.
type RecoveryStats struct {
	// SnapshotSeq is the WAL sequence the loaded snapshot covered
	// (0 when no snapshot existed).
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// SnapshotItems is the number of items restored from the snapshot.
	SnapshotItems int `json:"snapshot_items"`
	// ReplayedRecords is the number of WAL records applied after the
	// snapshot.
	ReplayedRecords int `json:"replayed_records"`
	// TruncatedBytes counts bytes cut from a torn or corrupt WAL tail.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// DroppedSegments counts WAL segment files dropped after a corrupt
	// record.
	DroppedSegments int `json:"dropped_segments"`
	// LastSeq is the newest surviving WAL sequence number.
	LastSeq uint64 `json:"last_seq"`
	// Items is the item count after recovery.
	Items int `json:"items"`
	// Duration is how long recovery took.
	Duration time.Duration `json:"duration_ns"`
}

// persister owns the store's durability state: the WAL, the snapshot
// cadence and the background fsync/snapshot goroutine.
type persister struct {
	s   *Store
	log *wal.Log
	dir string

	policy        FsyncPolicy
	interval      time.Duration
	snapshotEvery int

	// appliedSeq, sinceSnap and lastSnapSeq are guarded by s.mu (they
	// are only written inside the store's critical sections).
	appliedSeq  uint64
	sinceSnap   int
	lastSnapSeq uint64

	// q is the group-commit queue for local durable writes
	// (commit.go). Replica stores never stage anything on it — shipped
	// records go through ApplyReplicated instead.
	q commitQueue
	// payloads is leader-only scratch for commitBatch (at most one
	// leader runs at a time, so no lock is needed).
	payloads [][]byte
	// testCommitHook, when set before traffic starts, runs at the
	// commit kill points (commitStage); crash tests use it to copy the
	// data directory mid-commit.
	testCommitHook func(commitStage)

	// snapMu serializes snapshot writes (timer-triggered vs Close).
	snapMu sync.Mutex

	snapCh  chan struct{}
	closeCh chan struct{}
	wg      sync.WaitGroup
	closed  atomic.Bool

	snapshotsWritten atomic.Uint64
	recovery         RecoveryStats
	// bgErr records the most recent background fsync/snapshot failure.
	bgErr atomic.Value // error
}

// openPersistence restores state from cfg.DataDir into s and arms the
// durability subsystem. Called by New with a fully constructed
// (empty) store.
func openPersistence(s *Store, cfg Config) error {
	start := time.Now()
	if cfg.Fsync < FsyncAlways || cfg.Fsync > FsyncNever {
		return fmt.Errorf("store: invalid fsync policy %d", cfg.Fsync)
	}
	if cfg.FsyncInterval <= 0 {
		cfg.FsyncInterval = DefaultFsyncInterval
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}

	p := &persister{
		s:             s,
		dir:           cfg.DataDir,
		policy:        cfg.Fsync,
		interval:      cfg.FsyncInterval,
		snapshotEvery: cfg.SnapshotEvery,
		snapCh:        make(chan struct{}, 1),
		closeCh:       make(chan struct{}),
	}
	p.q.init()

	// 1. Latest readable snapshot (corrupt ones are skipped
	// newest-first inside LoadLatestSnapshot).
	payload, snapSeq, ok, err := wal.LoadLatestSnapshot(cfg.DataDir)
	if err != nil {
		return fmt.Errorf("store: load snapshot: %w", err)
	}
	if ok {
		var snap snapFile
		if err := json.Unmarshal(payload, &snap); err != nil {
			return fmt.Errorf("store: decode snapshot: %w", err)
		}
		if snap.Schema != snapSchema {
			return fmt.Errorf("store: unknown snapshot schema %q", snap.Schema)
		}
		// Restore the active ontology BEFORE the items: annVer defaults
		// and the replay pipeline both key off it.
		if len(snap.ActiveEntry) > 0 {
			rt, err := runtimeFromEntry(snap.ActiveEntry)
			if err != nil {
				return fmt.Errorf("store: snapshot active ontology: %w", err)
			}
			s.rt.Store(rt)
		}
		s.activations.Store(snap.Activations)
		ver := s.rt.Load().Version
		for i := range snap.Items {
			it := &snap.Items[i]
			s.items[it.ID] = entryFromSnap(it, ver)
		}
		s.nextGen = snap.NextGen
		s.appends.Store(snap.Appends)
		p.recovery.SnapshotSeq = snapSeq
		p.recovery.SnapshotItems = len(snap.Items)
	}

	// 2. Open the WAL (torn-tail truncation happens here).
	log, info, err := wal.Open(cfg.DataDir, wal.Options{
		SegmentBytes: cfg.SegmentBytes,
		FsyncSeconds: s.metrics.walFsync,
		BytesWritten: s.metrics.walBytes,
		Rotations:    s.metrics.walRotations,
	})
	if err != nil {
		return fmt.Errorf("store: open wal: %w", err)
	}
	p.log = log
	p.recovery.TruncatedBytes = info.TruncatedBytes
	p.recovery.DroppedSegments = info.DroppedSegments
	// If the snapshot is ahead of the log (the WAL was lost or
	// compacted past its end), fast-forward so fresh appends can never
	// mint sequence numbers the snapshot already covers.
	if log.NextSeq() <= snapSeq {
		if err := log.SkipTo(snapSeq + 1); err != nil {
			log.Close()
			return fmt.Errorf("store: wal skip-to: %w", err)
		}
	}

	// 3. Replay the suffix through the live ingest path (minus
	// logging — s.persist is still nil here, so nothing re-logs):
	// annotation is deterministic and timestamps come from the
	// record, so the rebuilt state matches the pre-crash store byte
	// for byte.
	replayed := 0
	err = log.Replay(snapSeq, func(seq uint64, payload []byte) error {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("record %d: %w", seq, err)
		}
		if err := s.applyWalRecord(&rec); err != nil {
			return fmt.Errorf("record %d: %w", seq, err)
		}
		replayed++
		return nil
	})
	if err != nil {
		log.Close()
		return fmt.Errorf("store: wal replay: %w", err)
	}

	p.appliedSeq = log.NextSeq() - 1
	p.lastSnapSeq = snapSeq
	p.sinceSnap = replayed
	p.recovery.ReplayedRecords = replayed
	p.recovery.LastSeq = p.appliedSeq
	p.recovery.Items = len(s.items)
	p.recovery.Duration = time.Since(start)
	s.persist = p

	p.wg.Add(1)
	go p.run()
	return nil
}

// applyWalRecord applies one replayed record. Deletes need no cache
// work at boot (the cache starts empty), but the shared Delete path is
// not used because replay must not re-log. The same record path runs
// on read replicas via ApplyReplicated (replica.go). Appends annotate
// under the runtime active AT THIS POINT of the log — activate records
// swap it mid-replay exactly as they did in live history.
func (s *Store) applyWalRecord(rec *walRecord) error {
	var raws []extract.RawReview
	var annotated []model.Review
	var annVer string
	var actRT *ontoreg.Runtime
	switch rec.Op {
	case opAppend:
		rt := s.rt.Load()
		raws = rawReviews(rec.Reviews)
		annotated = rt.Pipeline.AnnotateReviews(raws, 0)
		annVer = rt.Version
	case opActivate:
		rt, err := runtimeFromEntry(rec.Entry)
		if err != nil {
			return err
		}
		actRT = rt
	}
	s.mu.Lock()
	s.applyRecordLocked(rec, raws, annotated, annVer, actRT)
	s.mu.Unlock()
	return nil
}

// runtimeFromEntry decodes a canonical ontology entry payload (from an
// activate record or a snapshot's ActiveEntry) and compiles its
// runtime.
func runtimeFromEntry(data []byte) (*ontoreg.Runtime, error) {
	e, err := ontoreg.Decode(data)
	if err != nil {
		return nil, err
	}
	return e.Runtime(), nil
}

// entryFromSnap rebuilds one item entry from its snapshot form. ver is
// the restored active runtime's version, assumed for items from old
// snapshots that predate per-item annotation versions (those snapshots
// also predate activation records, so the config runtime that wrote
// them is the one restoring them).
func entryFromSnap(it *snapItem, ver string) *entry {
	e := &entry{
		item:         it.Item,
		gen:          it.Gen,
		numSentences: it.NumSentences,
		numPairs:     it.NumPairs,
		createdAt:    it.CreatedAt,
		updatedAt:    it.UpdatedAt,
		annVer:       it.AnnVer,
	}
	if e.annVer == "" {
		e.annVer = ver
	}
	if len(it.Raws) > 0 {
		e.raws = rawReviews(it.Raws)
	}
	return e
}

// walReviews converts raw reviews to their logged form.
func walReviews(raws []extract.RawReview) []walReview {
	out := make([]walReview, len(raws))
	for i, r := range raws {
		out[i] = walReview{ID: r.ID, Text: r.Text, Rating: r.Rating}
	}
	return out
}

// noteLoggedLocked advances the applied position and drives the
// snapshot cadence after a record reached the log (group commit or
// replica apply). Caller holds s.mu.
func (p *persister) noteLoggedLocked(seq uint64) {
	p.appliedSeq = seq
	p.sinceSnap++
	if p.snapshotEvery > 0 && p.sinceSnap >= p.snapshotEvery {
		p.sinceSnap = 0
		select {
		case p.snapCh <- struct{}{}:
		default:
		}
	}
}

// run is the background goroutine: interval fsync and triggered
// snapshots.
func (p *persister) run() {
	defer p.wg.Done()
	var tick <-chan time.Time
	if p.policy == FsyncInterval {
		t := time.NewTicker(p.interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-p.closeCh:
			return
		case <-tick:
			if err := p.log.Sync(); err != nil {
				p.bgErr.Store(err)
			}
		case <-p.snapCh:
			if err := p.snapshot(); err != nil {
				p.bgErr.Store(err)
			}
		}
	}
}

// snapshot serializes a consistent copy-on-write view of the store,
// writes it atomically, and compacts the WAL past it. Item values are
// immutable (AppendReviews publishes fresh *model.Item values), so the
// lock is held only long enough to copy pointers and counters — the
// expensive JSON encode runs concurrently with live traffic.
func (p *persister) snapshot() error {
	p.snapMu.Lock()
	defer p.snapMu.Unlock()
	s := p.s
	snapStart := time.Now()

	s.mu.RLock()
	seq := p.appliedSeq
	if seq == p.lastSnapSeq {
		s.mu.RUnlock()
		return nil // nothing new since the last snapshot
	}
	// The runtime is read under the same lock as appliedSeq: swaps
	// happen under s.mu, so the snapshot's ActiveEntry is exactly the
	// runtime active at its LastSeq cut.
	rt := s.rt.Load()
	snap := snapFile{
		Schema:      snapSchema,
		LastSeq:     seq,
		NextGen:     s.nextGen,
		Appends:     s.appends.Load(),
		ActiveEntry: rt.Payload,
		Activations: s.activations.Load(),
		Items:       make([]snapItem, 0, len(s.items)),
	}
	for id, e := range s.items {
		snap.Items = append(snap.Items, snapItem{
			ID:           id,
			Gen:          e.gen,
			NumSentences: e.numSentences,
			NumPairs:     e.numPairs,
			CreatedAt:    e.createdAt,
			UpdatedAt:    e.updatedAt,
			Item:         e.item,
			AnnVer:       e.annVer,
			Raws:         walReviews(e.raws),
		})
	}
	s.mu.RUnlock()
	sort.Slice(snap.Items, func(i, j int) bool { return snap.Items[i].ID < snap.Items[j].ID })

	payload, err := json.Marshal(&snap)
	if err != nil {
		return err
	}
	if _, err := wal.WriteSnapshot(p.dir, seq, payload); err != nil {
		return err
	}
	// Rotate so every record ≤ seq lives in a closed segment, then
	// retire the segments the snapshot fully covers and prune old
	// snapshot generations.
	if err := p.log.Rotate(); err != nil {
		return err
	}
	if _, err := p.log.RemoveObsolete(seq); err != nil {
		return err
	}
	if _, err := wal.PruneSnapshots(p.dir, snapshotsToKeep); err != nil {
		return err
	}

	s.mu.Lock()
	p.lastSnapSeq = seq
	s.mu.Unlock()
	p.snapshotsWritten.Add(1)
	s.metrics.snapshotSeconds.ObserveSince(snapStart)
	return nil
}

// Snapshot forces a snapshot + WAL compaction now (outside the
// automatic cadence). Safe to call concurrently with traffic.
func (s *Store) Snapshot() error {
	if s.persist == nil {
		return nil
	}
	return s.persist.snapshot()
}

// Sync forces everything logged so far to stable storage, regardless
// of the fsync policy.
func (s *Store) Sync() error {
	if s.persist == nil {
		return nil
	}
	return s.persist.log.Sync()
}

// Recovery returns what New restored from disk; ok is false for
// in-memory stores.
func (s *Store) Recovery() (RecoveryStats, bool) {
	if s.persist == nil {
		return RecoveryStats{}, false
	}
	return s.persist.recovery, true
}

// PersistErr returns the most recent background fsync/snapshot
// failure, if any. Foreground failures surface on AppendReviews and
// Delete directly.
func (s *Store) PersistErr() error {
	if s.persist == nil {
		return nil
	}
	if err, ok := s.persist.bgErr.Load().(error); ok {
		return err
	}
	return nil
}

// Close drains the commit queue, flushes the WAL, writes a final
// snapshot (if anything changed since the last one) and releases the
// log. The store must not be used afterwards; Close on an in-memory
// store is a no-op. Safe to call more than once.
func (s *Store) Close() error {
	p := s.persist
	if p == nil || !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Let every staged write commit (and refuse new ones) before the
	// log is flushed and closed.
	p.q.close()
	close(p.closeCh)
	p.wg.Wait()
	var firstErr error
	if err := p.snapshot(); err != nil {
		firstErr = err
	}
	if err := p.log.Sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := p.log.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
