// Group-commit pipeline for the durable write path. The serial design
// (PR 3) acknowledged one fsync per append: every writer JSON-encoded
// its record, appended it to the WAL and fsynced while holding the
// store's write lock, so N concurrent writers paid N full fsyncs plus
// N lock handoffs. Group commit restructures that into a staged
// pipeline:
//
//  1. Writers encode their walRecord OUTSIDE s.mu into a pooled
//     buffer (newCommitReq) and stage the encoded payload on the
//     store's commit queue.
//  2. A leader writer — the first to find the queue without a leader —
//     takes ownership of everything staged, appends the whole batch
//     to the WAL with one wal.AppendBatch (one buffer encode, one
//     Write), fsyncs ONCE under FsyncAlways, then applies all records
//     under a single s.mu critical section in batch order and
//     releases every waiter with its result.
//  3. Writers that arrive while a commit is in flight stage their
//     requests and block; when the leader finishes, one of them
//     becomes the next leader for the accumulated batch. Under load
//     the batch size approaches the writer count, so the per-writer
//     fsync cost shrinks toward fsync/N.
//
// Invariants preserved from the serial design:
//
//   - No append is acknowledged before its record is durable: waiters
//     are released only after the batch Sync returns (FsyncAlways).
//   - WAL order equals apply order: a single leader runs at a time,
//     sequence numbers are assigned in batch order by AppendBatch,
//     and the leader applies the batch in that same order before the
//     next leader can start — so single-threaded replay still
//     reconstructs concurrent history exactly.
//   - Deletes purge the summary cache in the same critical section
//     that removes the item, exactly as before.
//
// Each store.Store owns one commit queue, so a sharded store
// (internal/shard) gets one independent committer per shard and the
// shards' group commits overlap in the kernel.
package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"runtime"
	"sync"
	"time"

	"osars/internal/extract"
	"osars/internal/model"
	"osars/internal/ontoreg"
)

// errStoreClosed is returned to writers that race Close.
var errStoreClosed = errors.New("store is closed")

// commitReq is one writer's staged write: the pre-encoded WAL payload
// plus everything the leader needs to apply the record in memory and
// hand the result back.
type commitReq struct {
	op        string
	id        string
	name      string
	ts        time.Time
	raws      []extract.RawReview // raw reviews (appends only)
	annotated []model.Review      // pre-annotated reviews (appends only)
	annVer    string              // runtime version that annotated them
	rt        *ontoreg.Runtime    // runtime to activate (opActivate only)
	enc       *encodeBuf          // pooled encode scratch; payload aliases it
	payload   []byte              // JSON walRecord, valid until release()

	// Results, written by the committing leader before it flips done
	// under the queue lock; the staging writer reads them after
	// observing done.
	done    bool
	err     error
	stats   ItemStats // append result
	existed bool      // delete result
}

// encodeBuf is pooled scratch for off-lock walRecord JSON encoding:
// the output buffer, a reusable encoder over it, and a walReview
// conversion slice.
type encodeBuf struct {
	buf     bytes.Buffer
	enc     *json.Encoder
	reviews []walReview
}

var encodePool = sync.Pool{New: func() any {
	e := &encodeBuf{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

var commitReqPool = sync.Pool{New: func() any { return new(commitReq) }}

// newCommitReq builds a staged request, JSON-encoding the record into
// a pooled buffer. Called by writers before they touch any store lock.
func newCommitReq(op, id, name string, ts time.Time, reviews []extract.RawReview, annotated []model.Review, annVer string) (*commitReq, error) {
	e := encodePool.Get().(*encodeBuf)
	rec := walRecord{Op: op, ID: id, Name: name, TS: ts}
	if len(reviews) > 0 {
		rr := e.reviews[:0]
		for _, r := range reviews {
			rr = append(rr, walReview{ID: r.ID, Text: r.Text, Rating: r.Rating})
		}
		e.reviews = rr
		rec.Reviews = rr
	}
	e.buf.Reset()
	if err := e.enc.Encode(&rec); err != nil {
		e.recycle()
		return nil, err
	}
	payload := e.buf.Bytes()
	payload = payload[:len(payload)-1] // drop Encode's trailing newline

	req := commitReqPool.Get().(*commitReq)
	*req = commitReq{op: op, id: id, name: name, ts: ts, raws: reviews, annotated: annotated, annVer: annVer, enc: e, payload: payload}
	return req, nil
}

// newActivateReq builds a staged ontology-activation request. The
// record embeds the runtime's canonical entry payload, so replay and
// replicas reconstruct the exact runtime from the log alone.
func newActivateReq(rt *ontoreg.Runtime, ts time.Time) (*commitReq, error) {
	e := encodePool.Get().(*encodeBuf)
	rec := walRecord{Op: opActivate, TS: ts, Entry: rt.Payload}
	e.buf.Reset()
	if err := e.enc.Encode(&rec); err != nil {
		e.recycle()
		return nil, err
	}
	payload := e.buf.Bytes()
	payload = payload[:len(payload)-1]

	req := commitReqPool.Get().(*commitReq)
	*req = commitReq{op: opActivate, ts: ts, rt: rt, enc: e, payload: payload}
	return req, nil
}

// release returns the request and its encode scratch to their pools.
// Only the staging writer may call it, after commit() returned.
func (r *commitReq) release() {
	if r.enc != nil {
		r.enc.recycle()
	}
	*r = commitReq{}
	commitReqPool.Put(r)
}

// recycle clears the review texts (so the pool never pins large
// strings) and returns the scratch to the pool.
func (e *encodeBuf) recycle() {
	for i := range e.reviews {
		e.reviews[i] = walReview{}
	}
	e.reviews = e.reviews[:0]
	encodePool.Put(e)
}

// commitQueue is the leader-writer group-commit coordinator. There is
// no dedicated goroutine: the first writer to find the queue without a
// leader commits the staged batch itself, so a lone writer pays no
// handoff at all, and writers arriving during a commit pile into the
// next batch.
type commitQueue struct {
	mu     sync.Mutex
	cond   sync.Cond
	queue  []*commitReq // staged, not yet owned by a leader
	spare  []*commitReq // recycled backing array for queue
	leader bool         // a leader is currently committing
	closed bool
}

func (c *commitQueue) init() { c.cond.L = &c.mu }

// commit stages req and blocks until a leader — possibly this very
// writer — has made it durable and applied it. Returns the commit
// error; per-request results are on req.
func (c *commitQueue) commit(p *persister, req *commitReq) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errStoreClosed
	}
	if c.queue == nil && c.spare != nil {
		c.queue, c.spare = c.spare, nil
	}
	c.queue = append(c.queue, req)
	yielded := false
	for {
		if req.done {
			c.mu.Unlock()
			return req.err
		}
		if c.leader {
			c.cond.Wait()
			continue
		}
		// About to become leader. If other writers were staged with us,
		// yield the scheduler once first: writers that are mid-encode on
		// a busy machine get to join, growing the batch (= fewer fsyncs)
		// for one ~µs deferral. Correctness never depends on this — it
		// only shifts where the batch boundary falls.
		if !yielded && len(c.queue) > 1 {
			yielded = true
			c.mu.Unlock()
			runtime.Gosched()
			c.mu.Lock()
			continue
		}
		// No leader: take the whole staged queue (which includes our
		// own request) and commit it.
		c.leader = true
		batch := c.queue
		c.queue = nil
		c.mu.Unlock()

		p.commitBatch(batch)

		c.mu.Lock()
		for i, r := range batch {
			r.done = true
			batch[i] = nil // don't pin requests via the recycled array
		}
		c.spare = batch[:0]
		c.leader = false
		c.cond.Broadcast()
	}
}

// close refuses new commits and waits for every staged request to
// finish committing. Called by Store.Close before the WAL is closed.
func (c *commitQueue) close() {
	c.mu.Lock()
	c.closed = true
	for c.leader || len(c.queue) > 0 {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// commitStage names the kill points of a batch commit, in order. Tests
// hook them to snapshot the on-disk state mid-commit and prove the
// durability invariant across simulated crashes.
type commitStage int

const (
	// stageWritten: the batch is written to the WAL but not yet
	// synced. A crash here may persist any frame prefix of the batch;
	// nothing in it has been acknowledged.
	stageWritten commitStage = iota
	// stageSynced: the batch is durable but no waiter has been
	// released or applied yet.
	stageSynced
)

// commitBatch makes one batch durable and applies it: one AppendBatch,
// one Sync (FsyncAlways), then every record applied in WAL order under
// a single s.mu critical section. On error nothing is applied and
// every request carries the error. Runs with commitQueue.leader held,
// so at most one commitBatch is in flight per store.
func (p *persister) commitBatch(batch []*commitReq) {
	payloads := p.payloads[:0]
	for _, r := range batch {
		payloads = append(payloads, r.payload)
	}
	firstSeq, err := p.log.AppendBatch(payloads)
	for i := range payloads {
		payloads[i] = nil
	}
	p.payloads = payloads[:0]
	if err == nil {
		if h := p.testCommitHook; h != nil {
			h(stageWritten)
		}
		if p.policy == FsyncAlways {
			err = p.log.Sync()
		}
	}
	if err != nil {
		for _, r := range batch {
			r.err = err
		}
		return
	}
	if h := p.testCommitHook; h != nil {
		h(stageSynced)
	}

	s := p.s
	s.metrics.commitBatch.Observe(float64(len(batch)))
	s.mu.Lock()
	for i, r := range batch {
		switch r.op {
		case opAppend:
			r.stats = s.applyAppendLocked(r.id, r.name, r.raws, r.annotated, r.annVer, r.ts)
			s.appends.Add(1)
		case opDelete:
			if _, ok := s.items[r.id]; ok {
				delete(s.items, r.id)
				s.cache.PurgeItem(r.id)
				r.existed = true
			}
		case opActivate:
			s.setRuntimeLocked(r.rt)
		}
		p.noteLoggedLocked(firstSeq + uint64(i))
	}
	s.mu.Unlock()
}

// commitAppend is the durable ingest path: no-op filter, off-lock
// encode, group commit. Returns the post-apply item stats.
func (p *persister) commitAppend(id, name string, ts time.Time, reviews []extract.RawReview, annotated []model.Review, annVer string) (ItemStats, error) {
	s := p.s
	// Appending nothing to an existing item without a rename is a
	// no-op and must not reach the log. (A write that races this check
	// and turns out to be a no-op at apply time still applies as a
	// no-op — applyAppendLocked guards the generation — so the record
	// is harmless, just one wasted log frame.)
	s.mu.RLock()
	if e, ok := s.items[id]; ok && len(annotated) == 0 && (name == "" || name == e.item.Name) {
		st := e.stats()
		s.mu.RUnlock()
		return st, nil
	}
	s.mu.RUnlock()

	req, err := newCommitReq(opAppend, id, name, ts, reviews, annotated, annVer)
	if err != nil {
		return ItemStats{}, err
	}
	err = p.q.commit(p, req)
	stats := req.stats
	req.release()
	return stats, err
}

// commitActivate is the durable ontology-activation path: the entry
// payload is logged (and synced) through the same group-commit queue
// appends use, so WAL order equals apply order — an append staged
// after an activation is annotated under the old runtime but applied
// after the swap, which applyAppendLocked resolves by marking the item
// mixed (it re-annotates lazily).
func (p *persister) commitActivate(rt *ontoreg.Runtime) error {
	req, err := newActivateReq(rt, time.Now())
	if err != nil {
		return err
	}
	err = p.q.commit(p, req)
	req.release()
	return err
}

// commitDelete is the durable delete path: existence filter, off-lock
// encode, group commit. Reports whether the item existed at apply
// time (so of two racing deletes exactly one reports true).
func (p *persister) commitDelete(id string, ts time.Time) (bool, error) {
	s := p.s
	// Deleting a missing item is a no-op and must not reach the log.
	s.mu.RLock()
	_, ok := s.items[id]
	s.mu.RUnlock()
	if !ok {
		return false, nil
	}

	req, err := newCommitReq(opDelete, id, "", ts, nil, nil, "")
	if err != nil {
		return false, err
	}
	err = p.q.commit(p, req)
	existed := req.existed
	req.release()
	return existed, err
}
