// Replica apply mode: the store-side half of read-replica replication
// (internal/repl). A store opened with Config.Replica = true rejects
// local writes (AppendReviews/Delete return ErrReadOnly) and instead
// applies WAL records shipped from a primary via ApplyReplicated —
// each record re-runs the exact same applyWalRecord path recovery
// uses, so generations, timestamps and counters advance identically to
// the primary's without the replica minting any state of its own. A
// durable replica additionally appends every shipped record to its own
// local WAL (preserving the primary's sequence numbers byte for byte)
// before applying it, so a replica restart resumes tailing from its
// last locally durable sequence instead of re-syncing from scratch.
//
// The primary-side accessors (ReplTail, ReplNotify, ReplStatus,
// ReplSnapshotRaw) expose the WAL and snapshot machinery replication
// ships: they are defined here, next to the replica side, so the whole
// store replication surface reads in one place.
package store

import (
	"encoding/json"
	"errors"
	"fmt"

	"osars/internal/extract"
	"osars/internal/model"
	"osars/internal/ontoreg"
	"osars/internal/wal"
)

// ErrReadOnly is returned by AppendReviews and Delete on a replica
// store: writes go to the primary.
var ErrReadOnly = errors.New("store: read-only replica")

// ErrNotDurable is returned by the replication source accessors on an
// in-memory store: only a durable store has a WAL to ship.
var ErrNotDurable = errors.New("store: replication requires a durable store (no data dir)")

// ReplStatus is the replication-relevant position of one store: where
// its WAL ends, how far back it is retained, and where the newest
// snapshot cuts.
type ReplStatus struct {
	// NextSeq is the sequence number the next logged record will get;
	// NextSeq-1 is the newest applied record.
	NextSeq uint64 `json:"next_seq"`
	// OldestSeq is the first sequence number the WAL still holds;
	// records below it are only reachable through a snapshot.
	OldestSeq uint64 `json:"oldest_seq"`
	// SnapshotSeq is the newest on-disk snapshot's cut (0 when none).
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// WALBytes is the total on-disk size of the live WAL segments.
	WALBytes int64 `json:"wal_bytes"`
}

// Replica reports whether the store is a read-only replica.
func (s *Store) Replica() bool { return s.replica }

// AppliedSeq returns the newest WAL sequence number the store has
// applied: on a durable store the log position, on an in-memory
// replica the position of the last shipped record. Zero means nothing
// applied (or an in-memory non-replica store, which has no sequence
// space at all).
func (s *Store) AppliedSeq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.persist != nil {
		return s.persist.appliedSeq
	}
	return s.replApplied
}

// ApplyReplicated applies one WAL record shipped from the primary. seq
// must be exactly AppliedSeq()+1 — the stream protocol guarantees
// contiguity, and a gap here means the follower lost its place. On a
// durable replica the record is appended to the local WAL (with the
// same sequence number, which the contiguity check makes automatic)
// before it is applied, honoring the store's fsync policy; the local
// snapshot/compaction cadence runs exactly as on a primary.
func (s *Store) ApplyReplicated(seq uint64, payload []byte) error {
	if !s.replica {
		return errors.New("store: ApplyReplicated on a non-replica store")
	}
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return fmt.Errorf("store: replicated record %d: %w", seq, err)
	}
	// Annotation (and activate-entry compilation) is the expensive
	// part; run it outside the lock, like the live ingest path does.
	var raws []extract.RawReview
	var annotated []model.Review
	var annVer string
	var actRT *ontoreg.Runtime
	switch rec.Op {
	case opAppend:
		rt := s.rt.Load()
		raws = rawReviews(rec.Reviews)
		annotated = rt.Pipeline.AnnotateReviews(raws, 0)
		annVer = rt.Version
	case opActivate:
		rt, err := runtimeFromEntry(rec.Entry)
		if err != nil {
			return fmt.Errorf("store: replicated record %d: %w", seq, err)
		}
		actRT = rt
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	want := s.replApplied + 1
	if s.persist != nil {
		want = s.persist.appliedSeq + 1
	}
	if seq != want {
		return fmt.Errorf("store: replication gap: got seq %d, want %d", seq, want)
	}
	if s.persist != nil {
		got, err := s.persist.log.Append(payload)
		if err != nil {
			return fmt.Errorf("store: replica wal append: %w", err)
		}
		if got != seq {
			return fmt.Errorf("store: replica wal minted seq %d for shipped seq %d", got, seq)
		}
		if s.persist.policy == FsyncAlways {
			if err := s.persist.log.Sync(); err != nil {
				return fmt.Errorf("store: replica wal sync: %w", err)
			}
		}
		s.persist.noteLoggedLocked(seq)
	} else {
		s.replApplied = seq
	}
	s.applyRecordLocked(&rec, raws, annotated, annVer, actRT)
	return nil
}

// applyRecordLocked applies one decoded WAL record under s.mu, with
// annotation (and activate-runtime compilation) already done. Shared
// by ApplyReplicated and (via applyWalRecord) boot-time replay.
func (s *Store) applyRecordLocked(rec *walRecord, raws []extract.RawReview, annotated []model.Review, annVer string, actRT *ontoreg.Runtime) {
	switch rec.Op {
	case opAppend:
		s.applyAppendLocked(rec.ID, rec.Name, raws, annotated, annVer, rec.TS)
		s.appends.Add(1)
	case opDelete:
		delete(s.items, rec.ID)
		s.cache.PurgeItem(rec.ID)
	case opActivate:
		s.setRuntimeLocked(actRT)
	}
}

// InstallSnapshot replaces the replica's entire state with a snapshot
// shipped from the primary (payload is the snapshot's inner JSON,
// already container-verified by the caller) covering WAL records
// ≤ seq. Used when the follower fell behind the primary's compaction
// horizon: catch-up restarts from the snapshot instead of a record
// stream that no longer exists. A durable replica persists the
// snapshot locally and resets its WAL to continue at seq+1, so the
// bootstrap itself survives a restart. Installing a snapshot at or
// below the replica's applied position is a no-op.
func (s *Store) InstallSnapshot(seq uint64, payload []byte) error {
	if !s.replica {
		return errors.New("store: InstallSnapshot on a non-replica store")
	}
	var snap snapFile
	if err := json.Unmarshal(payload, &snap); err != nil {
		return fmt.Errorf("store: decode shipped snapshot: %w", err)
	}
	if snap.Schema != snapSchema {
		return fmt.Errorf("store: shipped snapshot has unknown schema %q", snap.Schema)
	}
	if snap.LastSeq != seq {
		return fmt.Errorf("store: shipped snapshot covers seq %d, advertised as %d", snap.LastSeq, seq)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	applied := s.replApplied
	if s.persist != nil {
		applied = s.persist.appliedSeq
	}
	if applied >= seq {
		return nil
	}
	if s.persist != nil {
		if _, err := wal.WriteSnapshot(s.persist.dir, seq, payload); err != nil {
			return fmt.Errorf("store: persist shipped snapshot: %w", err)
		}
		if err := s.persist.log.SkipTo(seq + 1); err != nil {
			return fmt.Errorf("store: reset replica wal: %w", err)
		}
		if _, err := wal.PruneSnapshots(s.persist.dir, snapshotsToKeep); err != nil {
			return fmt.Errorf("store: prune replica snapshots: %w", err)
		}
		s.persist.appliedSeq = seq
		s.persist.lastSnapSeq = seq
		s.persist.sinceSnap = 0
	} else {
		s.replApplied = seq
	}
	// Adopt the primary's active ontology before the items, so annVer
	// defaults line up (old-format snapshots carry neither).
	if len(snap.ActiveEntry) > 0 {
		rt, err := runtimeFromEntry(snap.ActiveEntry)
		if err != nil {
			return fmt.Errorf("store: shipped snapshot active ontology: %w", err)
		}
		s.rt.Store(rt)
	}
	s.activations.Store(snap.Activations)
	ver := s.rt.Load().Version
	s.items = make(map[string]*entry, len(snap.Items))
	for i := range snap.Items {
		s.items[snap.Items[i].ID] = entryFromSnap(&snap.Items[i], ver)
	}
	s.nextGen = snap.NextGen
	s.appends.Store(snap.Appends)
	s.cache.PurgeAll()
	return nil
}

// ReplTail returns a WAL tail positioned after seq `after`, the
// primary-side cursor the stream handler ships frames from. Returns
// wal.ErrCompacted when the follower must bootstrap from a snapshot.
func (s *Store) ReplTail(after uint64) (*wal.Tail, error) {
	if s.persist == nil {
		return nil, ErrNotDurable
	}
	return s.persist.log.TailAfter(after)
}

// ReplNotify returns a channel closed by the next WAL append; stream
// handlers block on it when a tail is caught up.
func (s *Store) ReplNotify() (<-chan struct{}, error) {
	if s.persist == nil {
		return nil, ErrNotDurable
	}
	return s.persist.log.AppendNotify(), nil
}

// ReplStatus returns the store's replication position.
func (s *Store) ReplStatus() (ReplStatus, error) {
	if s.persist == nil {
		return ReplStatus{}, ErrNotDurable
	}
	s.mu.RLock()
	snapSeq := s.persist.lastSnapSeq
	s.mu.RUnlock()
	return ReplStatus{
		NextSeq:     s.persist.log.NextSeq(),
		OldestSeq:   s.persist.log.OldestSeq(),
		SnapshotSeq: snapSeq,
		WALBytes:    s.persist.log.SizeBytes(),
	}, nil
}

// ReplSnapshotRaw returns the newest readable on-disk snapshot as its
// raw container bytes (ok=false when none exists yet), the payload of
// the replica bootstrap endpoint.
func (s *Store) ReplSnapshotRaw() (raw []byte, seq uint64, ok bool, err error) {
	if s.persist == nil {
		return nil, 0, false, ErrNotDurable
	}
	return wal.LoadLatestSnapshotRaw(s.persist.dir)
}

// rawReviews converts logged reviews back to pipeline input.
func rawReviews(in []walReview) []extract.RawReview {
	raws := make([]extract.RawReview, len(in))
	for i, r := range in {
		raws[i] = extract.RawReview{ID: r.ID, Text: r.Text, Rating: r.Rating}
	}
	return raws
}
