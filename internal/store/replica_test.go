package store

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"osars/internal/wal"
)

func replicaConfig(dir string) Config {
	cfg := testConfig()
	cfg.Replica = true
	cfg.DataDir = dir
	return cfg
}

// encodeRecord builds the WAL payload a primary would log for an
// append, using the same walRecord schema.
func encodeRecord(t *testing.T, op, id, name string, reviews []walReview) []byte {
	t.Helper()
	data, err := json.Marshal(walRecord{
		Op: op, ID: id, Name: name,
		TS:      time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Reviews: reviews,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestReplicaRejectsLocalWrites(t *testing.T) {
	cfg := testConfig()
	cfg.Replica = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Replica() {
		t.Fatal("Replica() = false")
	}
	if _, err := s.AppendReviews("p1", "Phone", phoneReviews[:1]); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("AppendReviews on replica = %v, want ErrReadOnly", err)
	}
	if _, err := s.Delete("p1"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Delete on replica = %v, want ErrReadOnly", err)
	}
}

func TestApplyReplicatedInMemory(t *testing.T) {
	cfg := testConfig()
	cfg.Replica = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := encodeRecord(t, opAppend, "p1", "Acme Phone", []walReview{
		{ID: "r1", Text: phoneReviews[0].Text, Rating: 0.2},
	})
	if err := s.ApplyReplicated(1, rec); err != nil {
		t.Fatal(err)
	}
	if s.AppliedSeq() != 1 {
		t.Fatalf("AppliedSeq = %d", s.AppliedSeq())
	}
	st, ok := s.ItemStats("p1")
	if !ok || st.NumReviews != 1 || st.Name != "Acme Phone" || st.Generation != 1 {
		t.Fatalf("applied item stats = %+v ok=%v", st, ok)
	}

	// A gap (skipping seq 2) is refused: the follower lost its place.
	if err := s.ApplyReplicated(3, rec); err == nil {
		t.Fatal("gap accepted")
	}
	// Replayed duplicates are refused too — the stream is exactly-once.
	if err := s.ApplyReplicated(1, rec); err == nil {
		t.Fatal("duplicate accepted")
	}

	// Deletes replicate.
	del := encodeRecord(t, opDelete, "p1", "", nil)
	if err := s.ApplyReplicated(2, del); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.ItemStats("p1"); ok {
		t.Fatal("replicated delete did not remove the item")
	}
}

func TestApplyReplicatedOnNonReplica(t *testing.T) {
	s := testStore(t)
	rec := encodeRecord(t, opAppend, "p1", "Phone", nil)
	if err := s.ApplyReplicated(1, rec); err == nil {
		t.Fatal("ApplyReplicated accepted on a non-replica store")
	}
	if err := s.InstallSnapshot(1, nil); err == nil {
		t.Fatal("InstallSnapshot accepted on a non-replica store")
	}
}

// TestApplyReplicatedDurablePreservesSeqs: a durable replica's local
// WAL must carry the primary's exact sequence numbers, so a restart
// resumes from the applied position.
func TestApplyReplicatedDurablePreservesSeqs(t *testing.T) {
	dir := t.TempDir()
	s, err := New(replicaConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i, rev := range phoneReviews {
		rec := encodeRecord(t, opAppend, "p1", "Acme Phone", []walReview{
			{ID: rev.ID, Text: rev.Text, Rating: rev.Rating},
		})
		if err := s.ApplyReplicated(uint64(i+1), rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.AppliedSeq(); got != 4 {
		t.Fatalf("AppliedSeq = %d, want 4", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: recovery replays the local WAL and the applied position
	// survives.
	s2, err := New(replicaConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.AppliedSeq(); got != 4 {
		t.Fatalf("AppliedSeq after reopen = %d, want 4", got)
	}
	st, ok := s2.ItemStats("p1")
	if !ok || st.NumReviews != 4 || st.Generation != 4 {
		t.Fatalf("recovered item = %+v ok=%v", st, ok)
	}
}

// TestInstallSnapshot: a shipped snapshot replaces the replica state,
// resets the local WAL past the snapshot seq, and ignores stale
// snapshots at or below the applied position.
func TestInstallSnapshot(t *testing.T) {
	// Build a primary with some state and snapshot it.
	pdir := t.TempDir()
	pcfg := testConfig()
	pcfg.DataDir = pdir
	p, err := New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AppendReviews("p1", "Acme Phone", phoneReviews[:3]); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AppendReviews("p2", "Beta Phone", phoneReviews[3:]); err != nil {
		t.Fatal(err)
	}
	if err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	raw, seq, ok, err := p.ReplSnapshotRaw()
	if err != nil || !ok || seq != 2 {
		t.Fatalf("primary snapshot: seq=%d ok=%v err=%v", seq, ok, err)
	}
	payload, err := wal.DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	wantList := p.List()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	rdir := t.TempDir()
	r, err := New(replicaConfig(rdir))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.InstallSnapshot(seq, payload); err != nil {
		t.Fatal(err)
	}
	if r.AppliedSeq() != seq {
		t.Fatalf("AppliedSeq after install = %d, want %d", r.AppliedSeq(), seq)
	}
	// Compare via JSON: wall-clock equality without the monotonic
	// reading the primary's in-process timestamps still carry.
	gotJSON, _ := json.Marshal(r.List())
	wantJSON, _ := json.Marshal(wantList)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("replica items = %s, want %s", gotJSON, wantJSON)
	}
	// Installing an old snapshot again is a no-op, not a rollback.
	if err := r.InstallSnapshot(seq, payload); err != nil {
		t.Fatal(err)
	}
	// The local WAL continues at seq+1: the next shipped record applies.
	rec := encodeRecord(t, opDelete, "p2", "", nil)
	if err := r.ApplyReplicated(seq+1, rec); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// The bootstrap itself survives a restart.
	r2, err := New(replicaConfig(rdir))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.AppliedSeq() != seq+1 {
		t.Fatalf("AppliedSeq after reopen = %d, want %d", r2.AppliedSeq(), seq+1)
	}
	if _, ok := r2.ItemStats("p2"); ok {
		t.Fatal("post-snapshot delete lost on restart")
	}
	if _, ok := r2.ItemStats("p1"); !ok {
		t.Fatal("snapshot item lost on restart")
	}
}

// TestReplStatusRequiresDurability: the replication source accessors
// refuse an in-memory store.
func TestReplStatusRequiresDurability(t *testing.T) {
	s := testStore(t)
	if _, err := s.ReplStatus(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("ReplStatus in memory = %v, want ErrNotDurable", err)
	}
	if _, err := s.ReplTail(0); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("ReplTail in memory = %v", err)
	}
	if _, err := s.ReplNotify(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("ReplNotify in memory = %v", err)
	}
	if _, _, _, err := s.ReplSnapshotRaw(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("ReplSnapshotRaw in memory = %v", err)
	}
}
