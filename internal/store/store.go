// Package store is the stateful corpus layer of the service: an
// in-memory, concurrency-safe collection of annotated items with
// incremental review ingestion, a generation-aware LRU summary cache
// and singleflight deduplication of concurrent identical solves.
//
// The stateless API re-annotates and re-solves every request from
// scratch; real review platforms accumulate reviews incrementally and
// answer many summary reads per write. The store serves that workload:
//
//   - AppendReviews runs the extraction pipeline over ONLY the new
//     reviews and merges them into the cached annotated item
//     (copy-on-write, so concurrent readers keep a consistent
//     snapshot), bumping the item's generation counter.
//   - Summary answers from an LRU cache keyed by (item, generation,
//     k, granularity, method); a warm read skips both annotation and
//     the coverage solve. Generations are minted from a store-global
//     counter, so even a deleted-then-recreated item can never collide
//     with a stale cache entry.
//   - Concurrent identical misses collapse into one coverage solve via
//     singleflight.
package store

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"osars/internal/coverage"
	"osars/internal/extract"
	"osars/internal/model"
	"osars/internal/obs"
	"osars/internal/summarize"
)

// Method selects the summarization algorithm. The values and names
// mirror the root package's Method (greedy, rr, ilp, local-search).
type Method int

// The supported algorithms.
const (
	MethodGreedy Method = iota
	MethodRR
	MethodILP
	MethodLocalSearch
)

func (m Method) String() string {
	switch m {
	case MethodGreedy:
		return "greedy"
	case MethodRR:
		return "randomized-rounding"
	case MethodILP:
		return "ilp"
	case MethodLocalSearch:
		return "local-search"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ErrNotFound is returned when an item ID is not in the store.
var ErrNotFound = errors.New("store: item not found")

// Default cache budgets.
const (
	DefaultMaxCacheEntries = 1024
	DefaultMaxCacheBytes   = 64 << 20 // 64 MiB
)

// Config configures a Store.
type Config struct {
	// Metric is the Definition-1/2 metric (required: Metric.Ont != nil).
	Metric model.Metric
	// Pipeline annotates incoming reviews (required).
	Pipeline *extract.Pipeline
	// Seed drives randomized rounding (default 1).
	Seed int64
	// MaxCacheEntries bounds the summary cache entry count
	// (default DefaultMaxCacheEntries; negative disables caching).
	MaxCacheEntries int
	// MaxCacheBytes bounds the cache's approximate resident bytes
	// (default DefaultMaxCacheBytes; negative means entries-only).
	MaxCacheBytes int64

	// DataDir enables durable persistence: ingestion is written to a
	// segmented write-ahead log in this directory before it is
	// acknowledged, periodic snapshots bound recovery time, and New
	// restores latest-snapshot-then-replay on boot. Empty means
	// in-memory only (the pre-durability behavior).
	DataDir string
	// Fsync selects when the WAL is forced to stable storage
	// (default FsyncAlways). Ignored without DataDir.
	Fsync FsyncPolicy
	// FsyncInterval is the flush period under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// SnapshotEvery writes a snapshot (and compacts the WAL) after
	// this many logged records (default DefaultSnapshotEvery;
	// negative disables automatic snapshots — they still happen on
	// Close and via Snapshot).
	SnapshotEvery int
	// SegmentBytes is the WAL segment rotation threshold
	// (default wal.DefaultSegmentBytes).
	SegmentBytes int64

	// Obs, when non-nil, registers the store's instruments (append and
	// solve latency, cache hit/miss/eviction counters, group-commit
	// batch sizes, WAL fsync/bytes/rotations) in this registry. The
	// sharded wrapper passes one shared registry to every shard.
	Obs *obs.Registry
	// ObsShard is the value of the "shard" label on this store's
	// instruments (default "0"). Set by the sharded wrapper.
	ObsShard string

	// Replica opens the store in read-only replica mode: local writes
	// (AppendReviews, Delete) are rejected with ErrReadOnly and state
	// advances only through ApplyReplicated / InstallSnapshot, fed by a
	// replication follower (internal/repl). Works with or without
	// DataDir; a durable replica persists the shipped records locally
	// so a restart resumes from its last applied sequence.
	Replica bool
}

// Store is the in-memory corpus. All methods are safe for concurrent
// use.
type Store struct {
	metric   model.Metric
	pipeline *extract.Pipeline
	seed     int64

	// replica marks a read-only replica (Config.Replica); replApplied
	// tracks the last shipped sequence applied by an IN-MEMORY replica
	// (durable replicas use persist.appliedSeq). Guarded by mu.
	replica     bool
	replApplied uint64

	mu      sync.RWMutex
	items   map[string]*entry
	nextGen uint64 // store-global so generations are never reused across delete/recreate

	cache   *lruCache
	group   flightGroup
	metrics storeMetrics // interned instruments; zero value when Config.Obs is nil

	// persist is the durability subsystem (nil for in-memory stores).
	persist *persister

	appends atomic.Uint64
	solves  atomic.Uint64
	hits    atomic.Uint64
	misses  atomic.Uint64

	// testSolveHook, when set, runs after a summary solve completes
	// but before the result is cached. Tests use it to interleave a
	// Delete with an in-flight solve deterministically.
	testSolveHook func(id string)
}

// entry is one item's state. The *model.Item is treated as immutable:
// AppendReviews publishes a fresh Item value (copy-on-write), so a
// summary solve working off an old snapshot never races an append.
type entry struct {
	item         *model.Item
	gen          uint64
	numSentences int
	numPairs     int
	createdAt    time.Time
	updatedAt    time.Time
}

// New validates the config and builds a Store. With Config.DataDir
// set, it first recovers any previous state from disk (latest valid
// snapshot, then WAL replay) and arms the durability subsystem; call
// Close when done with a durable store.
func New(cfg Config) (*Store, error) {
	if cfg.Metric.Ont == nil {
		return nil, errors.New("store: Config.Metric.Ont is required")
	}
	if cfg.Pipeline == nil {
		return nil, errors.New("store: Config.Pipeline is required")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxCacheEntries == 0 {
		cfg.MaxCacheEntries = DefaultMaxCacheEntries
	}
	if cfg.MaxCacheBytes == 0 {
		cfg.MaxCacheBytes = DefaultMaxCacheBytes
	}
	s := &Store{
		metric:   cfg.Metric,
		pipeline: cfg.Pipeline,
		seed:     cfg.Seed,
		replica:  cfg.Replica,
		items:    make(map[string]*entry),
		cache:    newLRU(cfg.MaxCacheEntries, cfg.MaxCacheBytes),
		metrics:  newStoreMetrics(cfg.Obs, cfg.ObsShard),
	}
	s.cache.evicted = s.metrics.cacheEvictions
	if cfg.DataDir != "" {
		if err := openPersistence(s, cfg); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// ItemStats is the externally visible state of one item.
type ItemStats struct {
	ID           string    `json:"id"`
	Name         string    `json:"name,omitempty"`
	Generation   uint64    `json:"generation"`
	NumReviews   int       `json:"num_reviews"`
	NumSentences int       `json:"num_sentences"`
	NumPairs     int       `json:"num_pairs"`
	CreatedAt    time.Time `json:"created_at"`
	UpdatedAt    time.Time `json:"updated_at"`
}

func (e *entry) stats() ItemStats {
	return ItemStats{
		ID:           e.item.ID,
		Name:         e.item.Name,
		Generation:   e.gen,
		NumReviews:   len(e.item.Reviews),
		NumSentences: e.numSentences,
		NumPairs:     e.numPairs,
		CreatedAt:    e.createdAt,
		UpdatedAt:    e.updatedAt,
	}
}

// AppendReviews ingests new reviews for the item, creating it if
// needed. Only the new reviews run through the extraction pipeline —
// previously ingested reviews keep their cached annotations. The
// item's generation is bumped, implicitly invalidating all cached
// summaries of the old corpus. A non-empty name (re)names the item.
// Appending zero reviews to an existing item is a no-op on the
// generation unless it renames the item.
//
// On a durable store the raw reviews are appended to the write-ahead
// log (and, under FsyncAlways, forced to stable storage) BEFORE the
// in-memory state changes and the call returns — an acknowledged
// append survives a crash. Durable writes go through the store's
// group-commit queue (commit.go): the record is JSON-encoded outside
// any lock, staged, and a leader writer batches it with concurrent
// writes into one WAL append and one fsync — so N concurrent writers
// share a fsync instead of serializing N of them, while WAL order
// still equals apply order.
func (s *Store) AppendReviews(id, name string, reviews []extract.RawReview) (ItemStats, error) {
	if id == "" {
		return ItemStats{}, errors.New("store: item id must be non-empty")
	}
	if s.replica {
		return ItemStats{}, ErrReadOnly
	}
	// now doubles as the record timestamp and the latency-measurement
	// start, so osars_store_append_seconds covers annotation AND the
	// durable commit.
	now := time.Now()
	// The expensive part — tokenization, concept matching, sentiment —
	// runs outside any lock, touches only the new reviews, and fans out
	// across GOMAXPROCS workers (order-preserving, so the stored corpus
	// is byte-identical to sequential ingestion).
	annotated := s.pipeline.AnnotateReviews(reviews, 0)

	if s.persist != nil {
		stats, err := s.persist.commitAppend(id, name, now, reviews, annotated)
		if err != nil {
			return ItemStats{}, fmt.Errorf("store: wal append: %w", err)
		}
		s.metrics.appendSeconds.ObserveSince(now)
		return stats, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Appending nothing to an existing item without a rename is a
	// no-op on the generation.
	if e, ok := s.items[id]; ok && len(annotated) == 0 && (name == "" || name == e.item.Name) {
		return e.stats(), nil
	}
	stats := s.applyAppendLocked(id, name, annotated, now)
	s.appends.Add(1)
	s.metrics.appendSeconds.ObserveSince(now)
	return stats, nil
}

// applyAppendLocked merges annotated reviews into the item (creating
// it if needed) under s.mu. It is shared by the live ingest path and
// WAL replay; now is the logged wall-clock time so a recovered store
// reproduces the original timestamps.
func (s *Store) applyAppendLocked(id, name string, annotated []model.Review, now time.Time) ItemStats {
	newSentences, newPairs := 0, 0
	for i := range annotated {
		newSentences += len(annotated[i].Sentences)
		for si := range annotated[i].Sentences {
			newPairs += len(annotated[i].Sentences[si].Pairs)
		}
	}
	e, existed := s.items[id]
	if !existed {
		s.nextGen++
		e = &entry{
			item:      &model.Item{ID: id, Name: name},
			gen:       s.nextGen,
			createdAt: now,
			updatedAt: now,
		}
		s.items[id] = e
	}
	renamed := name != "" && name != e.item.Name
	if existed && len(annotated) == 0 && !renamed {
		return e.stats()
	}
	if existed || len(annotated) > 0 {
		old := e.item
		ni := &model.Item{ID: id, Name: old.Name}
		if renamed {
			ni.Name = name
		}
		ni.Reviews = make([]model.Review, 0, len(old.Reviews)+len(annotated))
		ni.Reviews = append(append(ni.Reviews, old.Reviews...), annotated...)
		if existed {
			s.nextGen++
			e.gen = s.nextGen
		}
		e.item = ni
		e.numSentences += newSentences
		e.numPairs += newPairs
		e.updatedAt = now
	}
	return e.stats()
}

// Item returns the current annotated snapshot and generation of an
// item. The returned Item is shared and must be treated as read-only.
func (s *Store) Item(id string) (*model.Item, uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.items[id]
	if !ok {
		return nil, 0, false
	}
	return e.item, e.gen, true
}

// ItemStats returns the stats of one item.
func (s *Store) ItemStats(id string) (ItemStats, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.items[id]
	if !ok {
		return ItemStats{}, false
	}
	return e.stats(), true
}

// List returns the stats of every item, sorted by ID.
func (s *Store) List() []ItemStats {
	s.mu.RLock()
	out := make([]ItemStats, 0, len(s.items))
	for _, e := range s.items {
		out = append(out, e.stats())
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of items.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items)
}

// Delete removes an item and purges its cached summaries, reporting
// whether it existed. The cache purge happens in the SAME critical
// section as the map removal — there is no window in which the item is
// gone but its summaries are still cached (and on a durable store the
// delete is logged before it is applied, so a recovered store can
// never serve a summary for a deleted item). A later re-creation under
// the same ID gets a fresh generation, so stale cache entries can
// never resurface either.
func (s *Store) Delete(id string) (bool, error) {
	if s.replica {
		return false, ErrReadOnly
	}
	now := time.Now()
	if s.persist != nil {
		existed, err := s.persist.commitDelete(id, now)
		if err != nil {
			return false, fmt.Errorf("store: wal delete: %w", err)
		}
		return existed, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.items[id]; !ok {
		return false, nil
	}
	delete(s.items, id)
	s.cache.PurgeItem(id)
	return true, nil
}

// cacheKey identifies one solved summary: the item at an exact corpus
// generation under exact solver parameters.
type cacheKey struct {
	id  string
	gen uint64
	k   int
	g   model.Granularity
	m   Method
}

// Summary is a computed (and possibly cached) review summary.
type Summary struct {
	ItemID      string            `json:"item_id"`
	Generation  uint64            `json:"generation"`
	K           int               `json:"k"` // effective k after clamping
	Granularity model.Granularity `json:"granularity"`
	Method      Method            `json:"method"`
	Cost        float64           `json:"cost"`
	NumPairs    int               `json:"num_pairs"`
	Indices     []int             `json:"indices,omitempty"`
	Pairs       []model.Pair      `json:"pairs,omitempty"`
	Sentences   []string          `json:"sentences,omitempty"`
	ReviewIDs   []string          `json:"review_ids,omitempty"`
}

// Summary returns the k-unit summary of the item's current corpus.
// cached reports whether the call was answered without running a new
// coverage solve (LRU hit, or a concurrent identical solve was joined
// via singleflight). The returned Summary is shared with the cache and
// must be treated as read-only.
func (s *Store) Summary(id string, k int, g model.Granularity, m Method) (sum *Summary, cached bool, err error) {
	if k < 0 {
		return nil, false, fmt.Errorf("store: k must be nonnegative, got %d", k)
	}
	switch g {
	case model.GranularityPairs, model.GranularitySentences, model.GranularityReviews:
	default:
		return nil, false, fmt.Errorf("store: unknown granularity %v", g)
	}
	switch m {
	case MethodGreedy, MethodRR, MethodILP, MethodLocalSearch:
	default:
		return nil, false, fmt.Errorf("store: unknown method %v", m)
	}

	s.mu.RLock()
	e, ok := s.items[id]
	var item *model.Item
	var gen uint64
	if ok {
		item, gen = e.item, e.gen
	}
	s.mu.RUnlock()
	if !ok {
		return nil, false, ErrNotFound
	}

	key := cacheKey{id: id, gen: gen, k: k, g: g, m: m}
	if sum, ok := s.cache.Get(key); ok {
		s.hits.Add(1)
		s.metrics.cacheHits.Inc()
		return sum, true, nil
	}
	s.misses.Add(1)
	s.metrics.cacheMisses.Inc()
	return s.group.Do(key, func() (*Summary, error) {
		// Double-check: a flight that completed between our cache miss
		// and joining the group may have populated the cache already.
		if sum, ok := s.cache.Get(key); ok {
			return sum, nil
		}
		sum, err := s.solve(item, gen, k, g, m)
		if err == nil {
			if s.testSolveHook != nil {
				s.testSolveHook(id)
			}
			s.cache.Add(key, sum)
			// The solve ran off a snapshot taken before any lock was
			// released: if the item was deleted while we were solving,
			// Delete's purge may have run before our Add. Re-check and
			// purge so a deleted item never leaves summaries behind in
			// the cache.
			s.mu.RLock()
			_, alive := s.items[id]
			s.mu.RUnlock()
			if !alive {
				s.cache.PurgeItem(id)
			}
		}
		return sum, err
	})
}

// solve runs the coverage solve on an immutable item snapshot.
func (s *Store) solve(item *model.Item, gen uint64, k int, g model.Granularity, m Method) (*Summary, error) {
	s.solves.Add(1)
	solveStart := time.Now()
	graph := coverage.Build(s.metric, item, g)
	if k > graph.NumCandidates {
		k = graph.NumCandidates
	}
	var res *summarize.Result
	var err error
	switch m {
	case MethodGreedy:
		res = summarize.Greedy(graph, k)
	case MethodRR:
		res, err = summarize.RandomizedRounding(graph, k, rand.New(rand.NewSource(s.seed)), nil)
	case MethodILP:
		res, err = summarize.ILP(graph, k, nil)
	case MethodLocalSearch:
		res = summarize.LocalSearch(graph, k, nil)
	}
	if err != nil {
		return nil, err
	}
	sum := &Summary{
		ItemID:      item.ID,
		Generation:  gen,
		K:           k,
		Granularity: g,
		Method:      m,
		Cost:        res.Cost,
		NumPairs:    len(graph.Pairs),
		Indices:     res.Selected,
	}
	switch g {
	case model.GranularityPairs:
		all := item.Pairs()
		for _, idx := range res.Selected {
			sum.Pairs = append(sum.Pairs, all[idx])
		}
	case model.GranularitySentences:
		texts := make([]string, 0, item.NumSentences())
		for ri := range item.Reviews {
			for si := range item.Reviews[ri].Sentences {
				texts = append(texts, item.Reviews[ri].Sentences[si].Text)
			}
		}
		for _, idx := range res.Selected {
			sum.Sentences = append(sum.Sentences, texts[idx])
		}
	case model.GranularityReviews:
		for _, idx := range res.Selected {
			sum.ReviewIDs = append(sum.ReviewIDs, item.Reviews[idx].ID)
		}
	}
	s.metrics.solveSeconds[m].ObserveSince(solveStart)
	return sum, nil
}

// Stats is a point-in-time snapshot of store-level counters.
type Stats struct {
	Items          int    `json:"items"`
	Appends        uint64 `json:"appends"`
	Solves         uint64 `json:"solves"`
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEntries   int    `json:"cache_entries"`
	CacheBytes     int64  `json:"cache_bytes"`
	CacheEvictions uint64 `json:"cache_evictions"`

	// Durability counters (zero for in-memory stores).
	Durable          bool   `json:"durable,omitempty"`
	WALLastSeq       uint64 `json:"wal_last_seq,omitempty"`
	WALSegments      int    `json:"wal_segments,omitempty"`
	SnapshotsWritten uint64 `json:"snapshots_written,omitempty"`

	// Sharding breakdown, set only by the sharded wrapper
	// (internal/shard): Shards is the partition count and PerShard the
	// per-partition counters (indexed by shard), so skewed placement,
	// hot shards and per-shard cache behavior are observable. For the
	// aggregate view, WALLastSeq is the max across shards (each shard
	// numbers its own WAL) and the other counters are sums.
	Shards   int     `json:"shards,omitempty"`
	PerShard []Stats `json:"per_shard,omitempty"`
}

// Stats returns the current counters. Because the counters are
// independent atomics, the snapshot is approximate under concurrency.
func (s *Store) Stats() Stats {
	st := Stats{
		Items:          s.Len(),
		Appends:        s.appends.Load(),
		Solves:         s.solves.Load(),
		CacheHits:      s.hits.Load(),
		CacheMisses:    s.misses.Load(),
		CacheEntries:   s.cache.Len(),
		CacheBytes:     s.cache.Bytes(),
		CacheEvictions: s.cache.Evictions(),
	}
	if p := s.persist; p != nil {
		st.Durable = true
		st.WALLastSeq = p.log.NextSeq() - 1
		st.WALSegments = p.log.Segments()
		st.SnapshotsWritten = p.snapshotsWritten.Load()
	}
	return st
}
