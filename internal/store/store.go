// Package store is the stateful corpus layer of the service: an
// in-memory, concurrency-safe collection of annotated items with
// incremental review ingestion, a generation-aware LRU summary cache
// and singleflight deduplication of concurrent identical solves.
//
// The stateless API re-annotates and re-solves every request from
// scratch; real review platforms accumulate reviews incrementally and
// answer many summary reads per write. The store serves that workload:
//
//   - AppendReviews runs the extraction pipeline over ONLY the new
//     reviews and merges them into the cached annotated item
//     (copy-on-write, so concurrent readers keep a consistent
//     snapshot), bumping the item's generation counter.
//   - Summary answers from an LRU cache keyed by (item, generation,
//     k, granularity, method); a warm read skips both annotation and
//     the coverage solve. Generations are minted from a store-global
//     counter, so even a deleted-then-recreated item can never collide
//     with a stale cache entry.
//   - Concurrent identical misses collapse into one coverage solve via
//     singleflight.
package store

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"osars/internal/coverage"
	"osars/internal/extract"
	"osars/internal/model"
	"osars/internal/obs"
	"osars/internal/ontoreg"
	"osars/internal/summarize"
)

// Method selects the summarization algorithm. The values and names
// mirror the root package's Method (greedy, rr, ilp, local-search).
type Method int

// The supported algorithms.
const (
	MethodGreedy Method = iota
	MethodRR
	MethodILP
	MethodLocalSearch
)

func (m Method) String() string {
	switch m {
	case MethodGreedy:
		return "greedy"
	case MethodRR:
		return "randomized-rounding"
	case MethodILP:
		return "ilp"
	case MethodLocalSearch:
		return "local-search"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ErrNotFound is returned when an item ID is not in the store.
var ErrNotFound = errors.New("store: item not found")

// Default cache budgets.
const (
	DefaultMaxCacheEntries = 1024
	DefaultMaxCacheBytes   = 64 << 20 // 64 MiB
)

// Config configures a Store.
type Config struct {
	// Metric is the Definition-1/2 metric (required unless Runtime is
	// set: Metric.Ont != nil).
	Metric model.Metric
	// Pipeline annotates incoming reviews (required unless Runtime is
	// set).
	Pipeline *extract.Pipeline
	// Runtime, when non-nil, supplies the initial active ontology
	// runtime (metric + pipeline + version identity) and takes
	// precedence over Metric/Pipeline. When nil, one is synthesized
	// from Metric/Pipeline with the unversioned "config" identity.
	// The active runtime can later be hot-swapped with
	// ActivateOntology; on a durable store a recovered activation
	// record overrides this initial value.
	Runtime *ontoreg.Runtime
	// Seed drives randomized rounding (default 1).
	Seed int64
	// MaxCacheEntries bounds the summary cache entry count
	// (default DefaultMaxCacheEntries; negative disables caching).
	MaxCacheEntries int
	// MaxCacheBytes bounds the cache's approximate resident bytes
	// (default DefaultMaxCacheBytes; negative means entries-only).
	MaxCacheBytes int64
	// DisableCoverageIndex turns off the per-item incremental coverage
	// index: every summary solve rebuilds the coverage graph from
	// scratch (the pre-index behavior). Mainly for benchmarks and
	// incident bisection.
	DisableCoverageIndex bool

	// DataDir enables durable persistence: ingestion is written to a
	// segmented write-ahead log in this directory before it is
	// acknowledged, periodic snapshots bound recovery time, and New
	// restores latest-snapshot-then-replay on boot. Empty means
	// in-memory only (the pre-durability behavior).
	DataDir string
	// Fsync selects when the WAL is forced to stable storage
	// (default FsyncAlways). Ignored without DataDir.
	Fsync FsyncPolicy
	// FsyncInterval is the flush period under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// SnapshotEvery writes a snapshot (and compacts the WAL) after
	// this many logged records (default DefaultSnapshotEvery;
	// negative disables automatic snapshots — they still happen on
	// Close and via Snapshot).
	SnapshotEvery int
	// SegmentBytes is the WAL segment rotation threshold
	// (default wal.DefaultSegmentBytes).
	SegmentBytes int64

	// Obs, when non-nil, registers the store's instruments (append and
	// solve latency, cache hit/miss/eviction counters, group-commit
	// batch sizes, WAL fsync/bytes/rotations) in this registry. The
	// sharded wrapper passes one shared registry to every shard.
	Obs *obs.Registry
	// ObsShard is the value of the "shard" label on this store's
	// instruments (default "0"). Set by the sharded wrapper.
	ObsShard string

	// Replica opens the store in read-only replica mode: local writes
	// (AppendReviews, Delete) are rejected with ErrReadOnly and state
	// advances only through ApplyReplicated / InstallSnapshot, fed by a
	// replication follower (internal/repl). Works with or without
	// DataDir; a durable replica persists the shipped records locally
	// so a restart resumes from its last applied sequence.
	Replica bool
}

// Store is the in-memory corpus. All methods are safe for concurrent
// use.
type Store struct {
	// rt is the active ontology runtime (metric + pipeline + version).
	// Reads are lock-free loads; swaps (ActivateOntology, WAL replay,
	// replica apply) happen under s.mu so they are ordered with the
	// applied-sequence bookkeeping. A request pins the runtime it loads
	// and finishes on it — the swap only redirects FUTURE requests.
	rt   atomic.Pointer[ontoreg.Runtime]
	seed int64

	// replica marks a read-only replica (Config.Replica); replApplied
	// tracks the last shipped sequence applied by an IN-MEMORY replica
	// (durable replicas use persist.appliedSeq). Guarded by mu.
	replica     bool
	replApplied uint64

	mu      sync.RWMutex
	items   map[string]*entry
	nextGen uint64 // store-global so generations are never reused across delete/recreate

	cache   *lruCache
	group   flightGroup
	metrics storeMetrics // interned instruments; zero value when Config.Obs is nil

	// persist is the durability subsystem (nil for in-memory stores).
	persist *persister

	// noIndex disables the incremental coverage index
	// (Config.DisableCoverageIndex).
	noIndex bool

	appends       atomic.Uint64
	solves        atomic.Uint64
	hits          atomic.Uint64
	misses        atomic.Uint64
	reannotations atomic.Uint64
	activations   atomic.Uint64
	indexMerges   atomic.Uint64
	indexRebuilds atomic.Uint64
	warmHits      atomic.Uint64
	warmFallbacks atomic.Uint64

	// testSolveHook, when set, runs after a summary solve completes
	// but before the result is cached. Tests use it to interleave a
	// Delete with an in-flight solve deterministically.
	testSolveHook func(id string)
	// testAnnotateHook, when set, runs in itemAt between the off-lock
	// re-annotation and the optimistic publish. Tests use it to race an
	// AppendReviews against the publish and force the retry branch.
	testAnnotateHook func(id string)
}

// entry is one item's state. The *model.Item is treated as immutable:
// AppendReviews publishes a fresh Item value (copy-on-write), so a
// summary solve working off an old snapshot never races an append.
type entry struct {
	item         *model.Item
	gen          uint64
	numSentences int
	numPairs     int
	createdAt    time.Time
	updatedAt    time.Time

	// raws retains the item's raw reviews so an ontology swap can
	// re-annotate the corpus lazily. Appends publish a full-capacity
	// copy (copy-on-write like item), so a reader's slice header stays
	// valid across concurrent appends.
	raws []extract.RawReview
	// annVer is the runtime version item's annotations were produced
	// under; when it differs from the active runtime's version the item
	// is re-annotated (from raws) before the next solve. annVerMixed
	// marks a corpus whose reviews span two pipeline versions.
	annVer string

	// indexes are the per-granularity incremental coverage indexes,
	// created lazily on the first solve and advanced by AppendReviews
	// off the commit critical section. nil slots mean "rebuild lazily"
	// (recovered snapshots, replicas applying streamed ops, never
	// solved). Invalidated wherever annVer changes — the index is
	// pinned to the ontology that annotated the corpus.
	indexes [3]*coverage.Index
	// warm holds the previous greedy selection per (k, granularity),
	// the warm-start seed for the next solve of the appended corpus.
	// Invalidated together with indexes.
	warm map[warmKey]*summarize.Result
}

// warmKey addresses one previous greedy result: the effective
// (clamped) k and the granularity it was solved at.
type warmKey struct {
	k int
	g model.Granularity
}

// invalidateIndexes drops the entry's incremental indexes and
// warm-start seeds. Called (under s.mu) wherever annVer changes: a
// mixed-version append and the lazy re-annotation publish.
func (e *entry) invalidateIndexes() {
	e.indexes = [3]*coverage.Index{}
	e.warm = nil
}

// annVerMixed marks an entry whose merged annotations span more than
// one runtime version (an append landed after a swap but before the
// lazy re-annotation). It never equals a real version, so the next
// solve always re-annotates.
const annVerMixed = "\x00mixed"

// New validates the config and builds a Store. With Config.DataDir
// set, it first recovers any previous state from disk (latest valid
// snapshot, then WAL replay) and arms the durability subsystem; call
// Close when done with a durable store.
func New(cfg Config) (*Store, error) {
	if cfg.Runtime == nil {
		if cfg.Metric.Ont == nil {
			return nil, errors.New("store: Config.Metric.Ont is required")
		}
		if cfg.Pipeline == nil {
			return nil, errors.New("store: Config.Pipeline is required")
		}
		cfg.Runtime = ontoreg.ConfigRuntime(cfg.Metric, cfg.Pipeline)
	}
	if cfg.Runtime.Metric.Ont == nil || cfg.Runtime.Pipeline == nil {
		return nil, errors.New("store: Config.Runtime needs a metric ontology and a pipeline")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxCacheEntries == 0 {
		cfg.MaxCacheEntries = DefaultMaxCacheEntries
	}
	if cfg.MaxCacheBytes == 0 {
		cfg.MaxCacheBytes = DefaultMaxCacheBytes
	}
	s := &Store{
		seed:    cfg.Seed,
		replica: cfg.Replica,
		items:   make(map[string]*entry),
		cache:   newLRU(cfg.MaxCacheEntries, cfg.MaxCacheBytes),
		metrics: newStoreMetrics(cfg.Obs, cfg.ObsShard),
		noIndex: cfg.DisableCoverageIndex,
	}
	s.rt.Store(cfg.Runtime)
	s.cache.evicted = s.metrics.cacheEvictions
	if cfg.DataDir != "" {
		if err := openPersistence(s, cfg); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// ItemStats is the externally visible state of one item.
type ItemStats struct {
	ID           string    `json:"id"`
	Name         string    `json:"name,omitempty"`
	Generation   uint64    `json:"generation"`
	NumReviews   int       `json:"num_reviews"`
	NumSentences int       `json:"num_sentences"`
	NumPairs     int       `json:"num_pairs"`
	CreatedAt    time.Time `json:"created_at"`
	UpdatedAt    time.Time `json:"updated_at"`
}

func (e *entry) stats() ItemStats {
	return ItemStats{
		ID:           e.item.ID,
		Name:         e.item.Name,
		Generation:   e.gen,
		NumReviews:   len(e.item.Reviews),
		NumSentences: e.numSentences,
		NumPairs:     e.numPairs,
		CreatedAt:    e.createdAt,
		UpdatedAt:    e.updatedAt,
	}
}

// AppendReviews ingests new reviews for the item, creating it if
// needed. Only the new reviews run through the extraction pipeline —
// previously ingested reviews keep their cached annotations. The
// item's generation is bumped, implicitly invalidating all cached
// summaries of the old corpus. A non-empty name (re)names the item.
// Appending zero reviews to an existing item is a no-op on the
// generation unless it renames the item.
//
// On a durable store the raw reviews are appended to the write-ahead
// log (and, under FsyncAlways, forced to stable storage) BEFORE the
// in-memory state changes and the call returns — an acknowledged
// append survives a crash. Durable writes go through the store's
// group-commit queue (commit.go): the record is JSON-encoded outside
// any lock, staged, and a leader writer batches it with concurrent
// writes into one WAL append and one fsync — so N concurrent writers
// share a fsync instead of serializing N of them, while WAL order
// still equals apply order.
func (s *Store) AppendReviews(id, name string, reviews []extract.RawReview) (ItemStats, error) {
	if id == "" {
		return ItemStats{}, errors.New("store: item id must be non-empty")
	}
	if s.replica {
		return ItemStats{}, ErrReadOnly
	}
	// now doubles as the record timestamp and the latency-measurement
	// start, so osars_store_append_seconds covers annotation AND the
	// durable commit.
	now := time.Now()
	// The expensive part — tokenization, concept matching, sentiment —
	// runs outside any lock, touches only the new reviews, and fans out
	// across GOMAXPROCS workers (order-preserving, so the stored corpus
	// is byte-identical to sequential ingestion). The runtime is pinned
	// once: a concurrent ontology swap affects the NEXT append, and the
	// version recorded alongside the annotations (annVer) is exactly the
	// one that produced them.
	rt := s.rt.Load()
	annotated := rt.Pipeline.AnnotateReviews(reviews, 0)

	if s.persist != nil {
		stats, err := s.persist.commitAppend(id, name, now, reviews, annotated, rt.Version)
		if err != nil {
			return ItemStats{}, fmt.Errorf("store: wal append: %w", err)
		}
		// Index maintenance runs on the appending writer's thread after
		// the commit leader released s.mu — off the critical section,
		// like annotation.
		s.updateIndexes(id, rt.Version)
		s.metrics.appendSeconds.ObserveSince(now)
		return stats, nil
	}
	s.mu.Lock()
	// Appending nothing to an existing item without a rename is a
	// no-op on the generation.
	if e, ok := s.items[id]; ok && len(annotated) == 0 && (name == "" || name == e.item.Name) {
		st := e.stats()
		s.mu.Unlock()
		return st, nil
	}
	stats := s.applyAppendLocked(id, name, reviews, annotated, rt.Version, now)
	s.appends.Add(1)
	s.mu.Unlock()
	s.updateIndexes(id, rt.Version)
	s.metrics.appendSeconds.ObserveSince(now)
	return stats, nil
}

// updateIndexes advances the item's live incremental coverage indexes
// over the just-appended reviews, outside every store lock. Only
// indexes that already exist are advanced (creation stays lazy at
// solve time, so never-summarized items pay nothing); an entry whose
// annotations no longer match ver (a racing swap went mixed) is
// skipped — its indexes were invalidated with it.
func (s *Store) updateIndexes(id, ver string) {
	if s.noIndex {
		return
	}
	s.mu.RLock()
	e, ok := s.items[id]
	var item *model.Item
	var idxs [3]*coverage.Index
	if ok && e.annVer == ver {
		item = e.item
		idxs = e.indexes
	}
	s.mu.RUnlock()
	if item == nil {
		return
	}
	advanced := false
	start := time.Now()
	for _, idx := range idxs {
		if idx != nil {
			idx.Advance(item)
			advanced = true
		}
	}
	if advanced {
		s.indexMerges.Add(1)
		s.metrics.indexMergeSeconds.ObserveSince(start)
	}
}

// applyAppendLocked merges annotated reviews into the item (creating
// it if needed) under s.mu. It is shared by the live ingest path and
// WAL replay; now is the logged wall-clock time so a recovered store
// reproduces the original timestamps. raws are the un-annotated
// originals (retained for lazy re-annotation after an ontology swap)
// and annVer is the runtime version that produced the annotations.
func (s *Store) applyAppendLocked(id, name string, raws []extract.RawReview, annotated []model.Review, annVer string, now time.Time) ItemStats {
	newSentences, newPairs := 0, 0
	for i := range annotated {
		newSentences += len(annotated[i].Sentences)
		for si := range annotated[i].Sentences {
			newPairs += len(annotated[i].Sentences[si].Pairs)
		}
	}
	e, existed := s.items[id]
	if !existed {
		s.nextGen++
		e = &entry{
			item:      &model.Item{ID: id, Name: name},
			gen:       s.nextGen,
			annVer:    annVer,
			createdAt: now,
			updatedAt: now,
		}
		s.items[id] = e
	}
	renamed := name != "" && name != e.item.Name
	if existed && len(annotated) == 0 && !renamed {
		return e.stats()
	}
	if existed || len(annotated) > 0 {
		old := e.item
		ni := &model.Item{ID: id, Name: old.Name}
		if renamed {
			ni.Name = name
		}
		ni.Reviews = make([]model.Review, 0, len(old.Reviews)+len(annotated))
		ni.Reviews = append(append(ni.Reviews, old.Reviews...), annotated...)
		if existed {
			s.nextGen++
			e.gen = s.nextGen
		}
		e.item = ni
		e.numSentences += newSentences
		e.numPairs += newPairs
		e.updatedAt = now
	}
	if len(raws) > 0 {
		if e.raws == nil && len(e.item.Reviews) > len(raws) {
			// Legacy entry (recovered from a pre-lifecycle snapshot
			// without raws): reconstruct the prefix from the annotated
			// reviews so the retained raws cover the whole corpus.
			e.raws = reconstructRaws(e.item.Reviews[:len(e.item.Reviews)-len(annotated)])
		}
		// Full-capacity copy-on-write: a reader holding the old slice
		// header can never observe this append.
		e.raws = append(e.raws[:len(e.raws):len(e.raws)], raws...)
	}
	if existed && e.annVer != annVer {
		// The corpus now mixes annotations from two pipeline versions;
		// the sentinel forces a re-annotation before the next solve.
		// The incremental indexes were built over the old annotations,
		// so they go with it — exactly like the annVer invalidation.
		e.annVer = annVerMixed
		e.invalidateIndexes()
	}
	return e.stats()
}

// reconstructRaws rebuilds raw reviews from annotated ones by joining
// sentence texts. Used for corpora recovered from snapshots that
// predate raw-review retention; the reconstruction is faithful enough
// to re-annotate (the pipeline re-splits on sentence boundaries).
func reconstructRaws(annotated []model.Review) []extract.RawReview {
	raws := make([]extract.RawReview, len(annotated))
	for i := range annotated {
		var text string
		for si := range annotated[i].Sentences {
			if si > 0 {
				text += " "
			}
			text += annotated[i].Sentences[si].Text
		}
		raws[i] = extract.RawReview{ID: annotated[i].ID, Text: text, Rating: annotated[i].Rating}
	}
	return raws
}

// countAnnotations tallies sentences and pairs across reviews.
func countAnnotations(reviews []model.Review) (sentences, pairs int) {
	for i := range reviews {
		sentences += len(reviews[i].Sentences)
		for si := range reviews[i].Sentences {
			pairs += len(reviews[i].Sentences[si].Pairs)
		}
	}
	return sentences, pairs
}

// Item returns the current annotated snapshot and generation of an
// item. The returned Item is shared and must be treated as read-only.
func (s *Store) Item(id string) (*model.Item, uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.items[id]
	if !ok {
		return nil, 0, false
	}
	return e.item, e.gen, true
}

// ItemStats returns the stats of one item.
func (s *Store) ItemStats(id string) (ItemStats, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.items[id]
	if !ok {
		return ItemStats{}, false
	}
	return e.stats(), true
}

// List returns the stats of every item, sorted by ID.
func (s *Store) List() []ItemStats {
	s.mu.RLock()
	out := make([]ItemStats, 0, len(s.items))
	for _, e := range s.items {
		out = append(out, e.stats())
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of items.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items)
}

// Delete removes an item and purges its cached summaries, reporting
// whether it existed. The cache purge happens in the SAME critical
// section as the map removal — there is no window in which the item is
// gone but its summaries are still cached (and on a durable store the
// delete is logged before it is applied, so a recovered store can
// never serve a summary for a deleted item). A later re-creation under
// the same ID gets a fresh generation, so stale cache entries can
// never resurface either.
func (s *Store) Delete(id string) (bool, error) {
	if s.replica {
		return false, ErrReadOnly
	}
	now := time.Now()
	if s.persist != nil {
		existed, err := s.persist.commitDelete(id, now)
		if err != nil {
			return false, fmt.Errorf("store: wal delete: %w", err)
		}
		return existed, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.items[id]; !ok {
		return false, nil
	}
	delete(s.items, id)
	s.cache.PurgeItem(id)
	return true, nil
}

// cacheKey identifies one solved summary: the item at an exact corpus
// generation under exact solver parameters and an exact ontology
// version. The version component is the swap-coherence invariant: a
// summary solved under one ontology can never answer a request pinned
// to another, because their keys differ.
type cacheKey struct {
	id  string
	gen uint64
	ver string
	k   int
	g   model.Granularity
	m   Method
}

// Summary is a computed (and possibly cached) review summary.
type Summary struct {
	ItemID      string            `json:"item_id"`
	Generation  uint64            `json:"generation"`
	K           int               `json:"k"` // effective k after clamping
	Granularity model.Granularity `json:"granularity"`
	Method      Method            `json:"method"`
	Cost        float64           `json:"cost"`
	NumPairs    int               `json:"num_pairs"`
	Indices     []int             `json:"indices,omitempty"`
	Pairs       []model.Pair      `json:"pairs,omitempty"`
	// Concepts are the human-readable concept names of Pairs, captured
	// at solve time under the solving ontology — renderers never need to
	// resolve ConceptIDs against a possibly different active ontology.
	Concepts  []string `json:"concepts,omitempty"`
	Sentences []string `json:"sentences,omitempty"`
	ReviewIDs []string `json:"review_ids,omitempty"`
	// Ontology and OntologyVersion identify the ontology runtime the
	// summary was solved under ("config" for unversioned runtimes).
	Ontology        string `json:"ontology,omitempty"`
	OntologyVersion string `json:"ontology_version,omitempty"`
}

// Summary returns the k-unit summary of the item's current corpus.
// cached reports whether the call was answered without running a new
// coverage solve (LRU hit, or a concurrent identical solve was joined
// via singleflight). The returned Summary is shared with the cache and
// must be treated as read-only.
func (s *Store) Summary(id string, k int, g model.Granularity, m Method) (sum *Summary, cached bool, err error) {
	if k < 0 {
		return nil, false, fmt.Errorf("store: k must be nonnegative, got %d", k)
	}
	switch g {
	case model.GranularityPairs, model.GranularitySentences, model.GranularityReviews:
	default:
		return nil, false, fmt.Errorf("store: unknown granularity %v", g)
	}
	switch m {
	case MethodGreedy, MethodRR, MethodILP, MethodLocalSearch:
	default:
		return nil, false, fmt.Errorf("store: unknown method %v", m)
	}

	// Pin the active runtime for the whole request: a concurrent swap
	// redirects future requests, this one solves (and caches) under the
	// version it loaded.
	rt := s.rt.Load()
	item, gen, ok, err := s.itemAt(rt, id)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, ErrNotFound
	}

	key := cacheKey{id: id, gen: gen, ver: rt.Version, k: k, g: g, m: m}
	if sum, ok := s.cache.Get(key); ok {
		s.hits.Add(1)
		s.metrics.cacheHits.Inc()
		return sum, true, nil
	}
	s.misses.Add(1)
	s.metrics.cacheMisses.Inc()
	return s.group.Do(key, func() (*Summary, error) {
		// Double-check: a flight that completed between our cache miss
		// and joining the group may have populated the cache already.
		if sum, ok := s.cache.Get(key); ok {
			return sum, nil
		}
		sum, err := s.solve(rt, item, gen, k, g, m)
		if err == nil {
			if s.testSolveHook != nil {
				s.testSolveHook(id)
			}
			s.cache.Add(key, sum)
			// The solve ran off a snapshot taken before any lock was
			// released: if the item was deleted while we were solving,
			// Delete's purge may have run before our Add. Re-check and
			// purge so a deleted item never leaves summaries behind in
			// the cache.
			s.mu.RLock()
			_, alive := s.items[id]
			s.mu.RUnlock()
			if !alive {
				s.cache.PurgeItem(id)
			}
		}
		return sum, err
	})
}

// itemAt returns the item's annotated snapshot under the given
// runtime, lazily re-annotating from the retained raw reviews when the
// stored annotations were produced under a different ontology version.
// Re-annotation runs outside the store lock on a consistent snapshot
// and is published with an optimistic re-check: if the entry changed
// underneath (append, delete, a concurrent re-annotation winning the
// race), the loop retries. Publishing does NOT bump the generation —
// the corpus content is unchanged, only its annotations — so summaries
// cached under other runtime versions stay addressable.
func (s *Store) itemAt(rt *ontoreg.Runtime, id string) (*model.Item, uint64, bool, error) {
	for {
		s.mu.RLock()
		e, ok := s.items[id]
		if !ok {
			s.mu.RUnlock()
			return nil, 0, false, nil
		}
		if e.annVer == rt.Version {
			item, gen := e.item, e.gen
			s.mu.RUnlock()
			return item, gen, true, nil
		}
		snap, gen := e.item, e.gen
		raws := e.raws
		s.mu.RUnlock()

		if raws == nil {
			// Recovered from a pre-lifecycle snapshot: reconstruct raw
			// text from the annotated reviews we have.
			raws = reconstructRaws(snap.Reviews)
		}
		start := time.Now()
		annotated := rt.Pipeline.AnnotateReviews(raws, 0)
		if h := s.testAnnotateHook; h != nil {
			h(id)
		}

		s.mu.Lock()
		e2, ok := s.items[id]
		if !ok {
			s.mu.Unlock()
			return nil, 0, false, nil
		}
		if e2 != e || e2.gen != gen || e2.item != snap {
			// The corpus moved while we were annotating; retry against
			// the new snapshot.
			s.mu.Unlock()
			continue
		}
		if e2.annVer == rt.Version {
			// A concurrent re-annotation for the same version won; use it.
			item := e2.item
			s.mu.Unlock()
			return item, gen, true, nil
		}
		ni := &model.Item{ID: snap.ID, Name: snap.Name, Reviews: annotated}
		e2.item = ni
		e2.annVer = rt.Version
		// The old indexes cover annotations from the previous pipeline
		// version; drop them so the next solve rebuilds over ni.
		e2.invalidateIndexes()
		e2.numSentences, e2.numPairs = countAnnotations(annotated)
		if e2.raws == nil {
			e2.raws = raws
		}
		s.mu.Unlock()
		s.reannotations.Add(1)
		s.metrics.reannotations.Inc()
		s.metrics.reannSeconds.ObserveSince(start)
		return ni, gen, true, nil
	}
}

// graphFor acquires the coverage graph for a solve: the item's
// incremental index when one is usable (creating it lazily on first
// solve — also the path recovered snapshots and replicas take, since
// indexes are never persisted), a cold Build otherwise. The returned
// graph is immutable either way.
func (s *Store) graphFor(rt *ontoreg.Runtime, item *model.Item, g model.Granularity) *coverage.Graph {
	if s.noIndex {
		return coverage.Build(rt.Metric, item, g)
	}
	s.mu.RLock()
	e, ok := s.items[item.ID]
	usable := ok && e.annVer == rt.Version
	var idx *coverage.Index
	if usable {
		idx = e.indexes[g]
	}
	s.mu.RUnlock()
	if !usable {
		// Deleted underneath us, or annotations in flux (mixed/stale
		// version): serve this solve cold rather than index a snapshot
		// the entry no longer agrees with.
		return coverage.Build(rt.Metric, item, g)
	}
	if idx == nil {
		// Lazy rebuild, off-lock (it's a full O(corpus) pass).
		idx = coverage.NewIndex(rt.Metric, g)
		idx.Advance(item)
		s.indexRebuilds.Add(1)
		s.metrics.indexRebuilds.Inc()
		s.mu.Lock()
		if e2, ok := s.items[item.ID]; ok && e2 == e && e2.annVer == rt.Version && e2.indexes[g] == nil {
			e2.indexes[g] = idx
		}
		s.mu.Unlock()
	}
	if graph := idx.Graph(item); graph != nil {
		return graph
	}
	// The shared index merged past our pinned snapshot (a concurrent
	// append won); this stale solve builds cold.
	return coverage.Build(rt.Metric, item, g)
}

// warmResult fetches the previous greedy selection cached on the entry
// for this (k, granularity), if its annotations still match.
func (s *Store) warmResult(id, ver string, k int, g model.Granularity) *summarize.Result {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.items[id]
	if !ok || e.annVer != ver || e.warm == nil {
		return nil
	}
	return e.warm[warmKey{k: k, g: g}]
}

// storeWarm records a greedy selection as the warm-start seed for the
// next solve at the same (k, granularity).
func (s *Store) storeWarm(id, ver string, k int, g model.Granularity, res *summarize.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.items[id]
	if !ok || e.annVer != ver {
		return
	}
	if e.warm == nil {
		e.warm = make(map[warmKey]*summarize.Result)
	}
	e.warm[warmKey{k: k, g: g}] = res
}

// solve runs the coverage solve on an immutable item snapshot under
// the pinned runtime. Graph acquisition (cold build or index freeze)
// and the selection algorithm are timed separately:
// osars_store_graph_build_seconds vs osars_store_solve_seconds.
func (s *Store) solve(rt *ontoreg.Runtime, item *model.Item, gen uint64, k int, g model.Granularity, m Method) (*Summary, error) {
	s.solves.Add(1)
	buildStart := time.Now()
	graph := s.graphFor(rt, item, g)
	s.metrics.graphSeconds.ObserveSince(buildStart)
	if k > graph.NumCandidates {
		k = graph.NumCandidates
	}
	solveStart := time.Now()
	var res *summarize.Result
	var err error
	switch m {
	case MethodGreedy:
		if graph.InitGains() != nil {
			// Index-frozen graph: warm-start from the previous selection
			// at this (k, granularity). Identical result either way.
			prev := s.warmResult(item.ID, rt.Version, k, g)
			var hit bool
			res, hit = summarize.GreedyWarm(graph, k, prev)
			if hit {
				s.warmHits.Add(1)
				s.metrics.indexWarmHits.Inc()
			} else {
				s.warmFallbacks.Add(1)
				s.metrics.indexWarmFallbacks.Inc()
			}
			s.storeWarm(item.ID, rt.Version, k, g, res)
		} else {
			res = summarize.Greedy(graph, k)
		}
	case MethodRR:
		res, err = summarize.RandomizedRounding(graph, k, rand.New(rand.NewSource(s.seed)), nil)
	case MethodILP:
		res, err = summarize.ILP(graph, k, nil)
	case MethodLocalSearch:
		res = summarize.LocalSearch(graph, k, nil)
	}
	if err != nil {
		return nil, err
	}
	sum := &Summary{
		ItemID:          item.ID,
		Generation:      gen,
		K:               k,
		Granularity:     g,
		Method:          m,
		Cost:            res.Cost,
		NumPairs:        len(graph.Pairs),
		Indices:         res.Selected,
		Ontology:        rt.Name,
		OntologyVersion: rt.Version,
	}
	switch g {
	case model.GranularityPairs:
		all := item.Pairs()
		for _, idx := range res.Selected {
			sum.Pairs = append(sum.Pairs, all[idx])
			sum.Concepts = append(sum.Concepts, rt.Metric.Ont.Name(all[idx].Concept))
		}
	case model.GranularitySentences:
		texts := make([]string, 0, item.NumSentences())
		for ri := range item.Reviews {
			for si := range item.Reviews[ri].Sentences {
				texts = append(texts, item.Reviews[ri].Sentences[si].Text)
			}
		}
		for _, idx := range res.Selected {
			sum.Sentences = append(sum.Sentences, texts[idx])
		}
	case model.GranularityReviews:
		for _, idx := range res.Selected {
			sum.ReviewIDs = append(sum.ReviewIDs, item.Reviews[idx].ID)
		}
	}
	s.metrics.solveSeconds[m].ObserveSince(solveStart)
	return sum, nil
}

// Stats is a point-in-time snapshot of store-level counters.
type Stats struct {
	Items          int    `json:"items"`
	Appends        uint64 `json:"appends"`
	Solves         uint64 `json:"solves"`
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEntries   int    `json:"cache_entries"`
	CacheBytes     int64  `json:"cache_bytes"`
	CacheEvictions uint64 `json:"cache_evictions"`

	// Ontology lifecycle state: the active runtime's identity, how many
	// items still carry annotations from a different runtime version
	// (they re-annotate lazily on their next summarize), and the running
	// re-annotation / activation counters.
	ActiveOntology        string `json:"active_ontology,omitempty"`
	ActiveOntologyVersion string `json:"active_ontology_version,omitempty"`
	StaleItems            int    `json:"stale_items,omitempty"`
	Reannotations         uint64 `json:"reannotations,omitempty"`
	OntologyActivations   uint64 `json:"ontology_activations,omitempty"`

	// Incremental coverage-index counters: append-path merges, lazy
	// solve-time rebuilds (first solve, recovered snapshots, replicas),
	// and warm-start greedy hit/fallback totals.
	IndexMerges        uint64 `json:"index_merges,omitempty"`
	IndexRebuilds      uint64 `json:"index_rebuilds,omitempty"`
	IndexWarmHits      uint64 `json:"index_warm_hits,omitempty"`
	IndexWarmFallbacks uint64 `json:"index_warm_fallbacks,omitempty"`

	// Durability counters (zero for in-memory stores).
	Durable          bool   `json:"durable,omitempty"`
	WALLastSeq       uint64 `json:"wal_last_seq,omitempty"`
	WALSegments      int    `json:"wal_segments,omitempty"`
	SnapshotsWritten uint64 `json:"snapshots_written,omitempty"`

	// Sharding breakdown, set only by the sharded wrapper
	// (internal/shard): Shards is the partition count and PerShard the
	// per-partition counters (indexed by shard), so skewed placement,
	// hot shards and per-shard cache behavior are observable. For the
	// aggregate view, WALLastSeq is the max across shards (each shard
	// numbers its own WAL) and the other counters are sums.
	Shards   int     `json:"shards,omitempty"`
	PerShard []Stats `json:"per_shard,omitempty"`
}

// Stats returns the current counters. Because the counters are
// independent atomics, the snapshot is approximate under concurrency.
func (s *Store) Stats() Stats {
	rt := s.rt.Load()
	s.mu.RLock()
	items := len(s.items)
	stale := 0
	for _, e := range s.items {
		if e.annVer != rt.Version {
			stale++
		}
	}
	s.mu.RUnlock()
	st := Stats{
		Items:                 items,
		Appends:               s.appends.Load(),
		Solves:                s.solves.Load(),
		CacheHits:             s.hits.Load(),
		CacheMisses:           s.misses.Load(),
		CacheEntries:          s.cache.Len(),
		CacheBytes:            s.cache.Bytes(),
		CacheEvictions:        s.cache.Evictions(),
		ActiveOntology:        rt.Name,
		ActiveOntologyVersion: rt.Version,
		StaleItems:            stale,
		Reannotations:         s.reannotations.Load(),
		OntologyActivations:   s.activations.Load(),
		IndexMerges:           s.indexMerges.Load(),
		IndexRebuilds:         s.indexRebuilds.Load(),
		IndexWarmHits:         s.warmHits.Load(),
		IndexWarmFallbacks:    s.warmFallbacks.Load(),
	}
	if p := s.persist; p != nil {
		st.Durable = true
		st.WALLastSeq = p.log.NextSeq() - 1
		st.WALSegments = p.log.Segments()
		st.SnapshotsWritten = p.snapshotsWritten.Load()
	}
	return st
}

// ActiveRuntime returns the store's active ontology runtime — the one
// recovered from the WAL on a durable store and advanced by
// replication on a replica. Never nil.
func (s *Store) ActiveRuntime() *ontoreg.Runtime {
	return s.rt.Load()
}

// ActivateOntology hot-swaps the active ontology runtime. Requests
// in flight finish on the runtime they pinned; new requests see rt.
// Items annotated under the previous version re-annotate lazily on
// their next summarize (the cache key's version component already
// isolates their old summaries). Activating the already-active version
// is an idempotent no-op. On a durable store the activation is logged
// to the WAL through the group-commit path before it applies, so it
// survives restart and ships to replicas; that requires a runtime with
// a serializable entry payload (registry-born, not ConfigRuntime).
// Replicas reject local activation with ErrReadOnly — the active
// version reaches them through the replicated WAL stream.
func (s *Store) ActivateOntology(rt *ontoreg.Runtime) error {
	if rt == nil || rt.Metric.Ont == nil || rt.Pipeline == nil {
		return errors.New("store: ActivateOntology needs a runtime with a metric ontology and a pipeline")
	}
	if s.replica {
		return ErrReadOnly
	}
	if cur := s.rt.Load(); cur.Version == rt.Version && cur.Name == rt.Name {
		return nil
	}
	if s.persist != nil {
		if len(rt.Payload) == 0 {
			return errors.New("store: durable activation requires a registry entry (runtime has no payload)")
		}
		if err := s.persist.commitActivate(rt); err != nil {
			return fmt.Errorf("store: wal activate: %w", err)
		}
		return nil
	}
	s.mu.Lock()
	s.setRuntimeLocked(rt)
	s.mu.Unlock()
	return nil
}

// setRuntimeLocked publishes rt as the active runtime. Callers hold
// s.mu so swaps are ordered with WAL apply / replica bookkeeping.
func (s *Store) setRuntimeLocked(rt *ontoreg.Runtime) {
	s.rt.Store(rt)
	s.activations.Add(1)
	s.metrics.activations.Inc()
}
