package store

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"osars/internal/extract"
	"osars/internal/model"
)

// durableConfig returns a durable test config rooted at dir.
func durableConfig(dir string) Config {
	cfg := testConfig()
	cfg.DataDir = dir
	return cfg
}

func openDurable(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// marshal renders v as JSON for byte-identical comparisons.
func marshal(t *testing.T, v interface{}) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// observe captures every externally visible, deterministic read of a
// store: the item list and one solved summary per item.
func observe(t *testing.T, s *Store) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(marshal(t, s.List()))
	for _, it := range s.List() {
		sum, _, err := s.Summary(it.ID, 3, model.GranularitySentences, MethodGreedy)
		if err != nil {
			t.Fatalf("summary %s: %v", it.ID, err)
		}
		sb.WriteString(marshal(t, sum))
	}
	return sb.String()
}

// TestDurableRestartRoundTrip is the core invariant: close a durable
// store, reopen it from the same directory, and every acknowledged
// write — items, generations, timestamps, summaries — reads back byte
// for byte.
func TestDurableRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, durableConfig(dir))
	if _, err := s.AppendReviews("p1", "Acme", phoneReviews[:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendReviews("p1", "", phoneReviews[2:]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendReviews("p2", "Bolt", phoneReviews[:3]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendReviews("p3", "Gone", phoneReviews[:1]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendReviews("p2", "Bolt v2", nil); err != nil { // rename only
		t.Fatal(err)
	}
	if deleted, err := s.Delete("p3"); !deleted || err != nil {
		t.Fatalf("delete = (%v, %v)", deleted, err)
	}
	before := observe(t, s)
	beforeStats := s.Stats()
	var maxGenBefore uint64
	for _, it := range s.List() {
		if it.Generation > maxGenBefore {
			maxGenBefore = it.Generation
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openDurable(t, durableConfig(dir))
	defer s2.Close()
	after := observe(t, s2)
	if before != after {
		t.Fatalf("restart changed observable state:\nbefore: %s\nafter:  %s", before, after)
	}
	rec, ok := s2.Recovery()
	if !ok {
		t.Fatal("durable store reports no recovery stats")
	}
	// Close wrote a final snapshot, so reopening should restore from
	// it with nothing left to replay.
	if rec.SnapshotSeq == 0 || rec.ReplayedRecords != 0 {
		t.Fatalf("recovery = %+v, want snapshot restore with 0 replayed", rec)
	}
	if got := s2.Stats().Appends; got != beforeStats.Appends {
		t.Fatalf("appends counter after restart = %d, want %d", got, beforeStats.Appends)
	}
	// And the store stays writable: generations are minted from the
	// restored store-global counter, so they must keep increasing —
	// even past generations that belonged to deleted items.
	st, err := s2.AppendReviews("p1", "", phoneReviews[:1])
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation <= maxGenBefore {
		t.Fatalf("post-restart generation %d did not advance past %d", st.Generation, maxGenBefore)
	}
}

// TestDurableCrashWithoutClose abandons the store (no Close, no final
// snapshot) and recovers purely from the WAL.
func TestDurableCrashWithoutClose(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, durableConfig(dir))
	if _, err := s.AppendReviews("p1", "Acme", phoneReviews); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendReviews("p2", "Bolt", phoneReviews[:2]); err != nil {
		t.Fatal(err)
	}
	before := observe(t, s)
	// Hard stop: no Close, no snapshot. FsyncAlways means every
	// acknowledged append is already on stable storage.

	s2 := openDurable(t, durableConfig(dir))
	defer s2.Close()
	if after := observe(t, s2); after != before {
		t.Fatalf("crash recovery changed observable state:\nbefore: %s\nafter:  %s", before, after)
	}
	rec, _ := s2.Recovery()
	if rec.SnapshotSeq != 0 || rec.ReplayedRecords != 2 {
		t.Fatalf("recovery = %+v, want pure replay of 2 records", rec)
	}
}

// TestTornTailRecovery is the kill-at-random-offset crash test at the
// store level: acknowledge N appends, truncate the WAL at arbitrary
// byte offsets, recover, and verify the store state is exactly the
// clean prefix of acknowledged appends — no partial item states.
func TestTornTailRecovery(t *testing.T) {
	master := t.TempDir()
	s := openDurable(t, durableConfig(master))
	const n = 8
	// expected[k] = observable state after the first k appends.
	expected := make([]string, n+1)
	ids := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		id := ids[i%len(ids)]
		if _, err := s.AppendReviews(id, "Item "+id, []extract.RawReview{{
			ID:     "r" + string(rune('0'+i)),
			Text:   phoneReviews[i%len(phoneReviews)].Text,
			Rating: phoneReviews[i%len(phoneReviews)].Rating,
		}}); err != nil {
			t.Fatal(err)
		}
		expected[i+1] = observe(t, s)
	}
	// No Close: simulate a hard stop with the WAL as-is.

	segs, err := filepath.Glob(filepath.Join(master, "*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v (err %v)", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	segName := filepath.Base(segs[0])

	rng := rand.New(rand.NewSource(42))
	cuts := []int64{0, 1, int64(len(data)) - 1, int64(len(data))}
	for i := 0; i < 40; i++ {
		cuts = append(cuts, rng.Int63n(int64(len(data))+1))
	}
	for _, cut := range cuts {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := openDurable(t, durableConfig(dir))
		rec, _ := s2.Recovery()
		k := rec.ReplayedRecords
		if k > n {
			t.Fatalf("cut=%d: replayed %d > %d appends", cut, k, n)
		}
		got := ""
		if k > 0 {
			got = observe(t, s2)
		} else if len(s2.List()) != 0 {
			t.Fatalf("cut=%d: empty prefix but %d items", cut, len(s2.List()))
		}
		if k > 0 && got != expected[k] {
			t.Fatalf("cut=%d: recovered state is not the clean %d-append prefix:\ngot:  %s\nwant: %s",
				cut, k, got, expected[k])
		}
		// The recovered store must remain writable (the log resumes at
		// the truncation point).
		if _, err := s2.AppendReviews("resume", "", phoneReviews[:1]); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		s2.Close()
	}
}

// TestSnapshotCompactionAndRecovery drives the automatic snapshot
// cadence, verifies WAL segments are retired, and recovers from
// snapshot + replay.
func TestSnapshotCompactionAndRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.SnapshotEvery = 5
	cfg.SegmentBytes = 512 // force frequent rotation
	s := openDurable(t, cfg)
	const n = 23
	for i := 0; i < n; i++ {
		id := "item" + string(rune('A'+i%4))
		if _, err := s.AppendReviews(id, "", phoneReviews[i%len(phoneReviews):][:1]); err != nil {
			t.Fatal(err)
		}
	}
	// The snapshot loop is asynchronous; wait for at least one.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().SnapshotsWritten == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s.Stats().SnapshotsWritten == 0 {
		t.Fatal("no automatic snapshot after 23 appends with SnapshotEvery=5")
	}
	if err := s.PersistErr(); err != nil {
		t.Fatalf("background persistence error: %v", err)
	}
	before := observe(t, s)
	if err := s.Close(); err != nil { // final snapshot + retire remaining segments
		t.Fatal(err)
	}

	// Compaction must actually delete files: with 23 tiny appends and
	// 512-byte segments there were many rotations, but everything
	// before the final snapshot is retirable.
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(segs) > 2 {
		t.Fatalf("compaction left %d WAL segments: %v", len(segs), segs)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "*.snap"))
	if len(snaps) == 0 || len(snaps) > 2 {
		t.Fatalf("snapshot pruning kept %d snapshots: %v", len(snaps), snaps)
	}

	s2 := openDurable(t, cfg)
	defer s2.Close()
	if after := observe(t, s2); after != before {
		t.Fatalf("snapshot recovery changed observable state:\nbefore: %s\nafter:  %s", before, after)
	}
	rec, _ := s2.Recovery()
	if rec.SnapshotSeq == 0 || rec.SnapshotItems == 0 {
		t.Fatalf("recovery did not use the snapshot: %+v", rec)
	}
}

// TestSnapshotSurvivesWALLoss: if the WAL directory loses its segment
// files entirely, the snapshot still restores, and new appends mint
// sequence numbers beyond the snapshot (never colliding with it).
func TestSnapshotSurvivesWALLoss(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, durableConfig(dir))
	if _, err := s.AppendReviews("p1", "Acme", phoneReviews); err != nil {
		t.Fatal(err)
	}
	before := observe(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	for _, seg := range segs {
		if err := os.Remove(seg); err != nil {
			t.Fatal(err)
		}
	}

	s2 := openDurable(t, durableConfig(dir))
	if after := observe(t, s2); after != before {
		t.Fatalf("snapshot-only recovery changed state:\nbefore: %s\nafter:  %s", before, after)
	}
	if _, err := s2.AppendReviews("p2", "New", phoneReviews[:1]); err != nil {
		t.Fatal(err)
	}
	roundTrip := observe(t, s2)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := openDurable(t, durableConfig(dir))
	defer s3.Close()
	if got := observe(t, s3); got != roundTrip {
		t.Fatalf("post-WAL-loss appends did not survive:\ngot:  %s\nwant: %s", got, roundTrip)
	}
}

// TestFsyncPolicies exercises the interval and never policies
// end-to-end (a process-internal "crash" keeps OS-buffered writes, so
// all three policies recover fully here).
func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			cfg := durableConfig(dir)
			cfg.Fsync = policy
			cfg.FsyncInterval = 10 * time.Millisecond
			s := openDurable(t, cfg)
			if _, err := s.AppendReviews("p1", "Acme", phoneReviews); err != nil {
				t.Fatal(err)
			}
			before := observe(t, s)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2 := openDurable(t, cfg)
			defer s2.Close()
			if after := observe(t, s2); after != before {
				t.Fatalf("policy %v: restart changed state", policy)
			}
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever, "": FsyncAlways,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted garbage")
	}
}

// TestInMemoryStoreUnchanged pins that the zero-config store has no
// durability side effects and ignores Close/Sync/Snapshot.
func TestInMemoryStoreUnchanged(t *testing.T) {
	s := testStore(t)
	if _, err := s.AppendReviews("p1", "", phoneReviews); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Recovery(); ok {
		t.Fatal("in-memory store reports recovery stats")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Durable || st.WALLastSeq != 0 {
		t.Fatalf("in-memory stats claim durability: %+v", st)
	}
}

// TestDeleteInvalidatesCacheInCriticalSection is the regression test
// for the delete/cache race: a summary solve that is in flight while
// its item is deleted must never leave a cache entry behind.
func TestDeleteInvalidatesCacheInCriticalSection(t *testing.T) {
	s := testStore(t)
	if _, err := s.AppendReviews("p1", "Acme", phoneReviews); err != nil {
		t.Fatal(err)
	}
	// The hook runs after the solve but before the result is cached —
	// exactly the window in which the old code could resurrect a
	// summary for a deleted item.
	s.testSolveHook = func(id string) {
		if deleted, err := s.Delete(id); !deleted || err != nil {
			t.Errorf("mid-flight delete = (%v, %v)", deleted, err)
		}
	}
	if _, _, err := s.Summary("p1", 2, model.GranularitySentences, MethodGreedy); err != nil {
		t.Fatal(err)
	}
	s.testSolveHook = nil
	if n := s.cache.itemEntries("p1"); n != 0 {
		t.Fatalf("deleted item left %d summaries in the cache", n)
	}
	if _, _, err := s.Summary("p1", 2, model.GranularitySentences, MethodGreedy); err != ErrNotFound {
		t.Fatalf("summary of deleted item = %v, want ErrNotFound", err)
	}
}

// TestDurableDeleteNeverServedAfterRecovery: ingest, summarize,
// delete, crash-recover — the recovered store must 404 the deleted
// item and hold no trace of it.
func TestDurableDeleteNeverServedAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, durableConfig(dir))
	if _, err := s.AppendReviews("doomed", "Acme", phoneReviews); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Summary("doomed", 2, model.GranularitySentences, MethodGreedy); err != nil {
		t.Fatal(err)
	}
	if deleted, err := s.Delete("doomed"); !deleted || err != nil {
		t.Fatalf("delete = (%v, %v)", deleted, err)
	}
	// Hard stop (no Close): recovery must replay the delete too.
	s2 := openDurable(t, durableConfig(dir))
	defer s2.Close()
	if _, _, err := s2.Summary("doomed", 2, model.GranularitySentences, MethodGreedy); err != ErrNotFound {
		t.Fatalf("recovered store served a deleted item: err = %v", err)
	}
	if n := s2.cache.itemEntries("doomed"); n != 0 {
		t.Fatalf("recovered cache holds %d entries for a deleted item", n)
	}
	if got := s2.List(); len(got) != 0 {
		t.Fatalf("recovered items = %v", got)
	}
}

// TestWalRecordRoundTrip pins the WAL record JSON: ratings and
// timestamps must survive encode/decode exactly, or replayed state
// would drift from the acknowledged state.
func TestWalRecordRoundTrip(t *testing.T) {
	in := walRecord{
		Op:   opAppend,
		ID:   "p1",
		Name: "Acme",
		TS:   time.Date(2026, 8, 6, 12, 34, 56, 789012345, time.UTC),
		Reviews: []walReview{
			{ID: "r1", Text: "The screen is excellent.", Rating: 0.30000000000000004},
			{ID: "r2", Text: "unicode é ✓", Rating: -1},
		},
	}
	data, err := json.Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	var out walRecord
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("wal record round trip:\nin:  %+v\nout: %+v", in, out)
	}
}
