package store

import (
	"strings"
	"testing"

	"osars/internal/model"
)

// TestSummarySizeCountsAllRetainedBytes pins the cache accounting to
// the fields a Summary actually retains: the ontology provenance
// (Ontology, OntologyVersion, Concepts) and the version component of
// the cache key must all move the reported size, byte for byte, so the
// byte budget can't be silently blown by unaccounted strings.
func TestSummarySizeCountsAllRetainedBytes(t *testing.T) {
	key := cacheKey{id: "item", gen: 1, k: 2, g: model.GranularityPairs, m: MethodGreedy}
	base := &Summary{ItemID: "item", Indices: []int{0, 1}}
	baseSize := summarySize(key, base)

	concept := strings.Repeat("c", 40)
	cases := []struct {
		name  string
		key   cacheKey
		sum   *Summary
		delta int64
	}{
		{
			name:  "key version",
			key:   cacheKey{id: "item", ver: "v123", gen: 1, k: 2, g: model.GranularityPairs, m: MethodGreedy},
			sum:   base,
			delta: 4,
		},
		{
			name:  "ontology name and version",
			key:   key,
			sum:   &Summary{ItemID: "item", Indices: []int{0, 1}, Ontology: "phones", OntologyVersion: "v123"},
			delta: int64(len("phones") + len("v123")),
		},
		{
			name: "concept names",
			key:  key,
			sum: &Summary{ItemID: "item", Indices: []int{0, 1},
				Concepts: []string{concept, concept}},
			delta: int64(2*16 + 2*len(concept)), // headers + bytes
		},
	}
	for _, tc := range cases {
		got := summarySize(tc.key, tc.sum)
		if got != baseSize+tc.delta {
			t.Errorf("%s: size = %d, want base %d + %d", tc.name, got, baseSize, tc.delta)
		}
	}
}
