package store

import (
	"errors"
	"strings"
	"testing"

	"osars/internal/dataset"
	"osars/internal/extract"
	"osars/internal/model"
	"osars/internal/ontoreg"
)

// phoneRuntime compiles a registry entry over the cell-phone ontology;
// eps differentiates versions (same DAG, different threshold → new
// content hash).
func phoneRuntime(t *testing.T, eps float64) *ontoreg.Runtime {
	t.Helper()
	e, err := ontoreg.NewEntry("phone", dataset.CellPhoneOntology(), nil, eps)
	if err != nil {
		t.Fatal(err)
	}
	return e.Runtime()
}

// TestCacheKeyIncludesOntologyVersion pins the swap-coherence
// invariant: summary-cache keys carry the ontology version, so a
// summary solved under one ontology can never answer a request made
// under another.
func TestCacheKeyIncludesOntologyVersion(t *testing.T) {
	// The structural half: two keys identical except for the version
	// must be distinct cache keys.
	k1 := cacheKey{id: "p1", gen: 1, ver: "aaaa", k: 3, g: model.GranularitySentences, m: MethodGreedy}
	k2 := k1
	k2.ver = "bbbb"
	if k1 == k2 {
		t.Fatal("cache keys with different ontology versions compare equal")
	}

	// The behavioral half: a cached summary from before a swap is never
	// served after it.
	v1 := phoneRuntime(t, 0.5)
	v2 := phoneRuntime(t, 0.9)
	s, err := New(Config{Runtime: v1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendReviews("p1", "Acme Phone", phoneReviews); err != nil {
		t.Fatal(err)
	}
	sum1, cached, err := s.Summary("p1", 3, model.GranularitySentences, MethodGreedy)
	if err != nil || cached {
		t.Fatalf("first solve: cached=%v err=%v", cached, err)
	}
	if sum1.OntologyVersion != v1.Version {
		t.Fatalf("summary version = %q, want %q", sum1.OntologyVersion, v1.Version)
	}
	if _, cached, _ := s.Summary("p1", 3, model.GranularitySentences, MethodGreedy); !cached {
		t.Fatal("repeat under the same version was not a cache hit")
	}

	if err := s.ActivateOntology(v2); err != nil {
		t.Fatal(err)
	}
	sum2, cached, err := s.Summary("p1", 3, model.GranularitySentences, MethodGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("post-swap summarize answered from the pre-swap cache")
	}
	if sum2.OntologyVersion != v2.Version {
		t.Fatalf("post-swap summary carries version %q, want %q", sum2.OntologyVersion, v2.Version)
	}

	// Swapping back finds the v1 summaries still isolated under their
	// own key — a hit, and it carries the v1 version.
	if err := s.ActivateOntology(v1); err != nil {
		t.Fatal(err)
	}
	sum3, cached, err := s.Summary("p1", 3, model.GranularitySentences, MethodGreedy)
	if err != nil || !cached {
		t.Fatalf("swap-back: cached=%v err=%v", cached, err)
	}
	if sum3.OntologyVersion != v1.Version {
		t.Fatalf("swap-back summary carries version %q, want %q", sum3.OntologyVersion, v1.Version)
	}
}

// TestLazyReannotation: items annotated under the old runtime are
// counted stale after a swap and re-annotate on their next summarize —
// not during activation.
func TestLazyReannotation(t *testing.T) {
	v1 := phoneRuntime(t, 0.5)
	v2 := phoneRuntime(t, 0.9)
	s, err := New(Config{Runtime: v1})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"p1", "p2"} {
		if _, err := s.AppendReviews(id, "Phone "+id, phoneReviews); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.StaleItems != 0 || st.ActiveOntologyVersion != v1.Version {
		t.Fatalf("pre-swap stats = %+v", st)
	}

	if err := s.ActivateOntology(v2); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.StaleItems != 2 || st.Reannotations != 0 {
		t.Fatalf("post-swap stats: stale=%d reann=%d, want 2/0 (re-annotation must be lazy)",
			st.StaleItems, st.Reannotations)
	}
	if st.ActiveOntology != "phone" || st.ActiveOntologyVersion != v2.Version || st.OntologyActivations != 1 {
		t.Fatalf("post-swap identity = %+v", st)
	}

	// Summarizing p1 re-annotates p1 only.
	if _, _, err := s.Summary("p1", 3, model.GranularitySentences, MethodGreedy); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.StaleItems != 1 || st.Reannotations != 1 {
		t.Fatalf("after one solve: stale=%d reann=%d, want 1/1", st.StaleItems, st.Reannotations)
	}
	// The re-annotated corpus must still hold every review.
	item, _, ok := s.Item("p1")
	if !ok || len(item.Reviews) != len(phoneReviews) {
		t.Fatalf("re-annotated item = %v", item)
	}

	// Appending to the still-stale p2 marks it mixed; the next solve
	// re-annotates the whole corpus under v2.
	if _, err := s.AppendReviews("p2", "", []extract.RawReview{
		{ID: "r9", Text: "The battery drains overnight.", Rating: 0.1},
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Summary("p2", 3, model.GranularitySentences, MethodGreedy); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.StaleItems != 0 {
		t.Fatalf("after both solves: stale=%d, want 0", st.StaleItems)
	}
	if item, _, _ := s.Item("p2"); len(item.Reviews) != len(phoneReviews)+1 {
		t.Fatalf("mixed item lost reviews: %d", len(item.Reviews))
	}
}

// TestActivationIdempotent: re-activating the active version is a
// no-op (no WAL record, no counter bump).
func TestActivationIdempotent(t *testing.T) {
	v1 := phoneRuntime(t, 0.5)
	s, err := New(Config{Runtime: v1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ActivateOntology(v1); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.OntologyActivations != 0 {
		t.Fatalf("idempotent re-activation bumped the counter: %+v", st)
	}
}

// TestDurableActivationSurvivesRestart: the active version is
// WAL-logged, so a reopened store serves under it byte-identically —
// both straight from the log and after a snapshot compacted the log
// away.
func TestDurableActivationSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	v1 := phoneRuntime(t, 0.5)
	v2 := phoneRuntime(t, 0.9)

	open := func() *Store {
		t.Helper()
		s, err := New(Config{Runtime: v1, DataDir: dir, SnapshotEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s := open()
	if _, err := s.AppendReviews("p1", "Acme Phone", phoneReviews); err != nil {
		t.Fatal(err)
	}
	if err := s.ActivateOntology(v2); err != nil {
		t.Fatal(err)
	}
	// Append landing after the swap is annotated under v2.
	if _, err := s.AppendReviews("p2", "Other Phone", phoneReviews[:2]); err != nil {
		t.Fatal(err)
	}
	// Hard stop: no Close, no final snapshot. FsyncAlways (the default)
	// made every acknowledged record durable, so recovery replays the
	// WAL — including the activation record, in order: p1 (appended
	// before the swap) recovers stale and p2 fresh.
	s = open()
	rt := s.ActiveRuntime()
	if rt.Name != "phone" || rt.Version != v2.Version {
		t.Fatalf("recovered runtime = %s@%s, want phone@%s", rt.Name, rt.Version, v2.Version)
	}
	if string(rt.Payload) != string(v2.Payload) {
		t.Fatal("recovered entry payload is not byte-identical")
	}
	if st := s.Stats(); st.StaleItems != 1 {
		t.Fatalf("recovered stale items = %d, want 1 (p1 pre-swap)", st.StaleItems)
	}
	sum, _, err := s.Summary("p1", 3, model.GranularitySentences, MethodGreedy)
	if err != nil || sum.OntologyVersion != v2.Version {
		t.Fatalf("recovered summary = %v (err=%v), want version %s", sum, err, v2.Version)
	}

	// Close with a snapshot: the active entry now lives in the snapshot,
	// not the (compacted) WAL.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = open()
	defer s.Close()
	rt = s.ActiveRuntime()
	if rt.Version != v2.Version {
		t.Fatalf("snapshot-recovered runtime = %s@%s, want %s", rt.Name, rt.Version, v2.Version)
	}
	if st := s.Stats(); st.Items != 2 {
		t.Fatalf("snapshot-recovered items = %d, want 2", st.Items)
	}
}

// TestDurableActivationRequiresPayload: a config-born runtime (custom
// estimator, no serializable entry) can serve but not be durably
// activated.
func TestDurableActivationRequiresPayload(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Runtime: phoneRuntime(t, 0.5), DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ont := dataset.CellPhoneOntology()
	bare := ontoreg.ConfigRuntime(
		model.Metric{Ont: ont, Epsilon: 0.5},
		extract.NewPipeline(extract.NewMatcher(ont), nil),
	)
	err = s.ActivateOntology(bare)
	if err == nil || !strings.Contains(err.Error(), "payload") {
		t.Fatalf("durable activation of a payload-less runtime: err=%v", err)
	}
}

// TestReplicaRejectsLocalActivation: the active version reaches
// replicas through the replicated WAL stream, never by local mutation.
func TestReplicaRejectsLocalActivation(t *testing.T) {
	s, err := New(Config{Runtime: phoneRuntime(t, 0.5), DataDir: t.TempDir(), Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ActivateOntology(phoneRuntime(t, 0.9)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("replica local activation: err=%v, want ErrReadOnly", err)
	}
}
