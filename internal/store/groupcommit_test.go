package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"osars/internal/extract"
	"osars/internal/wal"
)

// copyDir copies every regular file of src into dst — the "crash
// image" a kill point leaves behind.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGroupCommitKillPoints is the crash-consistency proof for group
// commit. It stages a deterministic 3-record batch exactly as three
// concurrent writers would, snapshots the data directory at both kill
// points of commitBatch (after the batch Write, before the Sync; and
// after the Sync, before any waiter is released), then recovers from
// those images — including torn truncations of the written-but-unsynced
// batch at every frame boundary and at random interior offsets:
//
//   - the acknowledged prefix (everything before the batch) is never
//     lost,
//   - a torn batch tail truncates cleanly at a frame boundary — the
//     recovered records are exactly the whole frames before the cut,
//   - the synced-but-unacknowledged image recovers the full batch
//     byte-identically to the primary's post-commit state,
//   - every recovered store stays writable.
func TestGroupCommitKillPoints(t *testing.T) {
	master := t.TempDir()
	s := openDurable(t, durableConfig(master))
	ackedIDs := []string{"a", "b", "c"}
	for i, id := range ackedIDs {
		if _, err := s.AppendReviews(id, "Item "+id, phoneReviews[i:i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(master, "*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v (err %v)", segs, err)
	}
	segName := filepath.Base(segs[0])
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	ackedBytes := fi.Size()

	// Stage the batch by hand — three independent items, logged
	// timestamps fixed so every recovery reproduces them exactly.
	p := s.persist
	batchIDs := []string{"g1", "g2", "g3"}
	ts := time.Date(2026, 8, 8, 1, 2, 3, 0, time.UTC)
	var batch []*commitReq
	var frameEnds []int64 // on-disk end offset of each batch frame
	off := ackedBytes
	for i, id := range batchIDs {
		reviews := []extract.RawReview{{
			ID:     "r-" + id,
			Text:   phoneReviews[i].Text,
			Rating: phoneReviews[i].Rating,
		}}
		rt := s.rt.Load()
		annotated := rt.Pipeline.AnnotateReviews(reviews, 0)
		req, err := newCommitReq(opAppend, id, "Item "+id, ts.Add(time.Duration(i)*time.Second), reviews, annotated, rt.Version)
		if err != nil {
			t.Fatal(err)
		}
		off += int64(wal.FrameSize(len(req.payload)))
		frameEnds = append(frameEnds, off)
		batch = append(batch, req)
	}

	stageDirs := map[commitStage]string{
		stageWritten: t.TempDir(),
		stageSynced:  t.TempDir(),
	}
	p.testCommitHook = func(st commitStage) { copyDir(t, master, stageDirs[st]) }
	p.commitBatch(batch)
	p.testCommitHook = nil
	for _, r := range batch {
		if r.err != nil {
			t.Fatalf("batch commit: %v", r.err)
		}
		if r.stats.Generation == 0 {
			t.Fatalf("batch record %s not applied: %+v", r.id, r.stats)
		}
	}
	masterState := observe(t, s)
	masterStats := make(map[string]string)
	for _, it := range s.List() {
		masterStats[it.ID] = marshal(t, it)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Kill point 2: batch durable, no waiter released. Recovery must
	// replay the whole batch and land byte-identical to the primary.
	s2 := openDurable(t, durableConfig(stageDirs[stageSynced]))
	rec, _ := s2.Recovery()
	if want := len(ackedIDs) + len(batchIDs); rec.ReplayedRecords != want {
		t.Fatalf("stageSynced: replayed %d records, want %d", rec.ReplayedRecords, want)
	}
	if got := observe(t, s2); got != masterState {
		t.Fatalf("stageSynced recovery diverged from primary:\ngot:  %s\nwant: %s", got, masterState)
	}
	s2.Close()

	// Kill point 1: batch written, not synced. A real crash here can
	// persist any byte prefix of the batch; simulate torn tails at every
	// frame boundary (±1) plus random interior offsets.
	data, err := os.ReadFile(filepath.Join(stageDirs[stageWritten], segName))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != frameEnds[len(frameEnds)-1] {
		t.Fatalf("stageWritten image is %d bytes, want %d", len(data), frameEnds[len(frameEnds)-1])
	}
	cuts := []int64{ackedBytes}
	for _, end := range frameEnds {
		cuts = append(cuts, end-1, end)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 24; i++ {
		cuts = append(cuts, ackedBytes+rng.Int63n(int64(len(data))-ackedBytes+1))
	}
	for _, cut := range cuts {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s3 := openDurable(t, durableConfig(dir))
		rec, _ := s3.Recovery()
		// Truncation must land on a frame boundary: the recovered batch
		// suffix is exactly the whole frames before the cut.
		wholeFrames := 0
		for _, end := range frameEnds {
			if end <= cut {
				wholeFrames++
			}
		}
		if want := len(ackedIDs) + wholeFrames; rec.ReplayedRecords != want {
			t.Fatalf("cut=%d: replayed %d records, want %d (acked %d + %d whole batch frames)",
				cut, rec.ReplayedRecords, want, len(ackedIDs), wholeFrames)
		}
		// No acknowledged append missing, and every recovered item —
		// acked or batch prefix — matches the primary's final state
		// byte for byte (the batch items are independent, so a prefix
		// recovery reproduces them exactly: same generations, logged
		// timestamps, same corpus).
		wantIDs := append(append([]string{}, ackedIDs...), batchIDs[:wholeFrames]...)
		list := s3.List()
		if len(list) != len(wantIDs) {
			t.Fatalf("cut=%d: recovered %d items, want %d (%v)", cut, len(list), len(wantIDs), wantIDs)
		}
		for _, it := range list {
			if got, want := marshal(t, it), masterStats[it.ID]; got != want {
				t.Fatalf("cut=%d: item %s diverged:\ngot:  %s\nwant: %s", cut, it.ID, got, want)
			}
		}
		if _, err := s3.AppendReviews("resume", "", phoneReviews[:1]); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		s3.Close()
	}
}

// TestGroupCommitCloseRace: writers racing Close either get their
// append acknowledged or an errStoreClosed-style refusal — never a
// hang, never a lost acknowledged write. The reopened store must hold
// exactly the acknowledged appends (Close drains the staged queue, so
// logged == acknowledged).
func TestGroupCommitCloseRace(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, durableConfig(dir))
	const writers = 8
	acked := make([]int, writers)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("item-%d", w)
			for i := 0; ; i++ {
				rv := phoneReviews[i%len(phoneReviews)]
				_, err := s.AppendReviews(id, "", []extract.RawReview{{
					ID: fmt.Sprintf("w%d-r%d", w, i), Text: rv.Text, Rating: rv.Rating,
				}})
				if err != nil {
					if !errors.Is(err, errStoreClosed) && !errors.Is(err, wal.ErrClosed) {
						errs <- fmt.Errorf("writer %d: unexpected close error: %w", w, err)
					}
					return
				}
				acked[w] = i + 1
			}
		}(w)
	}
	time.Sleep(30 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s2 := openDurable(t, durableConfig(dir))
	defer s2.Close()
	for w := 0; w < writers; w++ {
		if acked[w] == 0 {
			continue
		}
		st, ok := s2.ItemStats(fmt.Sprintf("item-%d", w))
		if !ok {
			t.Fatalf("writer %d: %d acknowledged appends but item missing after reopen", w, acked[w])
		}
		if st.NumReviews != acked[w] {
			t.Fatalf("writer %d: reopened store holds %d reviews, want exactly %d acknowledged",
				w, st.NumReviews, acked[w])
		}
	}
}

// TestGroupCommitReplicaConvergence is the -race stress test for the
// batched write path: many goroutines append (and delete) against one
// FsyncAlways store while a follower concurrently tails the WAL via
// wal.Tail — woken by the per-batch AppendNotify — and applies every
// frame to an in-memory replica. The replica must converge to a
// byte-identical observable state with no duplicate or missing
// sequence numbers (ApplyReplicated rejects any gap).
func TestGroupCommitReplicaConvergence(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.SnapshotEvery = -1 // keep the whole WAL: the tail must never hit ErrCompacted
	s := openDurable(t, cfg)

	rcfg := testConfig()
	rcfg.Replica = true
	replica, err := New(rcfg)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 8
	const perWriter = 20
	var wg sync.WaitGroup
	writerErrs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("item-%d", w%4) // contended: several writers share an item
				rv := phoneReviews[(w+i)%len(phoneReviews)]
				if _, err := s.AppendReviews(id, "", []extract.RawReview{{
					ID: fmt.Sprintf("w%d-r%d", w, i), Text: rv.Text, Rating: rv.Rating,
				}}); err != nil {
					writerErrs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				// Writer 0 also churns a short-lived item so deletes flow
				// through the same batches.
				if w == 0 && i%5 == 0 {
					victim := fmt.Sprintf("victim-%d", i)
					if _, err := s.AppendReviews(victim, "", []extract.RawReview{{ID: victim, Text: rv.Text}}); err != nil {
						writerErrs <- err
						return
					}
					if _, err := s.Delete(victim); err != nil {
						writerErrs <- err
						return
					}
				}
			}
		}(w)
	}
	writersDone := make(chan struct{})
	go func() { wg.Wait(); close(writersDone) }()

	// The follower: tail raw frames concurrently with the writers and
	// apply them in sequence order.
	tailErr := make(chan error, 1)
	go func() {
		tailErr <- func() error {
			tail, err := s.ReplTail(0)
			if err != nil {
				return err
			}
			defer tail.Close()
			deadline := time.After(30 * time.Second)
			for {
				notify, err := s.ReplNotify() // arm before reading: no missed wakeups
				if err != nil {
					return err
				}
				frames, count, first, err := tail.Next(1 << 20)
				if err != nil {
					return err
				}
				if count > 0 {
					if first != replica.AppliedSeq()+1 {
						return fmt.Errorf("tail jumped: got first seq %d, applied %d", first, replica.AppliedSeq())
					}
					fr := wal.NewFrameReader(bytes.NewReader(frames))
					for {
						seq, payload, err := fr.Next()
						if err == io.EOF {
							break
						}
						if err != nil {
							return err
						}
						if err := replica.ApplyReplicated(seq, payload); err != nil {
							return err
						}
					}
					continue
				}
				// Caught up: done once the writers are and nothing is pending.
				select {
				case <-writersDone:
					if replica.AppliedSeq() == s.Stats().WALLastSeq {
						return nil
					}
				default:
				}
				select {
				case <-notify:
				case <-time.After(50 * time.Millisecond):
				case <-deadline:
					return fmt.Errorf("follower timed out at seq %d of %d",
						replica.AppliedSeq(), s.Stats().WALLastSeq)
				}
			}
		}()
	}()

	<-writersDone
	close(writerErrs)
	for err := range writerErrs {
		t.Fatal(err)
	}
	if err := <-tailErr; err != nil {
		t.Fatal(err)
	}
	if err := s.PersistErr(); err != nil {
		t.Fatal(err)
	}
	if got, want := replica.AppliedSeq(), s.Stats().WALLastSeq; got != want {
		t.Fatalf("replica applied %d of %d records", got, want)
	}
	if primary, rep := observe(t, s), observe(t, replica); primary != rep {
		t.Fatalf("replica diverged from primary:\nprimary: %s\nreplica: %s", primary, rep)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
