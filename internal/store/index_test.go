package store

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"osars/internal/extract"
	"osars/internal/model"
)

// manyPhoneReviews fabricates n raw reviews by cycling the fixture
// texts with fresh IDs, so appends keep extending the corpus.
func manyPhoneReviews(n int) []extract.RawReview {
	out := make([]extract.RawReview, n)
	for i := range out {
		base := phoneReviews[i%len(phoneReviews)]
		out[i] = extract.RawReview{ID: fmt.Sprintf("m%d", i), Text: base.Text, Rating: base.Rating}
	}
	return out
}

// requireSameSummary compares the solver-determined parts of two
// summaries (selection, cost, content) while ignoring provenance that
// legitimately differs across stores.
func requireSameSummary(t *testing.T, got, want *Summary, label string) {
	t.Helper()
	if !reflect.DeepEqual(got.Indices, want.Indices) {
		t.Fatalf("%s: Indices = %v, want %v", label, got.Indices, want.Indices)
	}
	if got.Cost != want.Cost || got.NumPairs != want.NumPairs || got.K != want.K {
		t.Fatalf("%s: cost/pairs/k = (%v,%d,%d), want (%v,%d,%d)",
			label, got.Cost, got.NumPairs, got.K, want.Cost, want.NumPairs, want.K)
	}
	if !reflect.DeepEqual(got.Pairs, want.Pairs) ||
		!reflect.DeepEqual(got.Sentences, want.Sentences) ||
		!reflect.DeepEqual(got.ReviewIDs, want.ReviewIDs) ||
		!reflect.DeepEqual(got.Concepts, want.Concepts) {
		t.Fatalf("%s: summary content diverged:\n got %+v\nwant %+v", label, got, want)
	}
}

// TestIndexedSummariesMatchCold is the store-level equivalence check:
// with appends interleaved between solves, an indexed store must
// return byte-identical greedy summaries to a store running with the
// index disabled (cold rebuild every solve), at every granularity.
func TestIndexedSummariesMatchCold(t *testing.T) {
	cfgWarm := testConfig()
	cfgWarm.MaxCacheEntries = -1
	cfgCold := testConfig()
	cfgCold.MaxCacheEntries = -1
	cfgCold.DisableCoverageIndex = true
	warm, err := New(cfgWarm)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := New(cfgCold)
	if err != nil {
		t.Fatal(err)
	}

	raws := manyPhoneReviews(12)
	grans := []model.Granularity{
		model.GranularityPairs, model.GranularitySentences, model.GranularityReviews,
	}
	for i := range raws {
		for _, s := range []*Store{warm, cold} {
			if _, err := s.AppendReviews("p1", "Acme", raws[i:i+1]); err != nil {
				t.Fatal(err)
			}
		}
		for _, g := range grans {
			for _, k := range []int{2, 5} {
				sw, _, err := warm.Summary("p1", k, g, MethodGreedy)
				if err != nil {
					t.Fatal(err)
				}
				sc, _, err := cold.Summary("p1", k, g, MethodGreedy)
				if err != nil {
					t.Fatal(err)
				}
				requireSameSummary(t, sw, sc, fmt.Sprintf("n=%d/%v/k=%d", i+1, g, k))
			}
		}
	}

	st := warm.Stats()
	if st.IndexRebuilds == 0 {
		t.Fatalf("no lazy index rebuild recorded: %+v", st)
	}
	if st.IndexMerges == 0 {
		t.Fatalf("no append-path index merges recorded: %+v", st)
	}
	if st.IndexWarmHits == 0 {
		t.Fatalf("repeated same-k solves over appends never hit warm-start: %+v", st)
	}
	if cs := cold.Stats(); cs.IndexRebuilds != 0 || cs.IndexMerges != 0 || cs.IndexWarmHits != 0 || cs.IndexWarmFallbacks != 0 {
		t.Fatalf("disabled-index store recorded index activity: %+v", cs)
	}
}

// TestIndexInvalidatedOnOntologySwap: a hot swap re-annotates the
// corpus lazily, so the index built over the old annotations must be
// discarded with them — the post-swap summary must equal what a fresh
// store under the new runtime computes.
func TestIndexInvalidatedOnOntologySwap(t *testing.T) {
	v1 := phoneRuntime(t, 0.5)
	v2 := phoneRuntime(t, 0.9)
	s, err := New(Config{Runtime: v1, MaxCacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	raws := manyPhoneReviews(8)
	if _, err := s.AppendReviews("p1", "Acme", raws); err != nil {
		t.Fatal(err)
	}
	// Build and use the v1 index.
	if _, _, err := s.Summary("p1", 3, model.GranularitySentences, MethodGreedy); err != nil {
		t.Fatal(err)
	}
	rebuildsBefore := s.Stats().IndexRebuilds

	if err := s.ActivateOntology(v2); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Summary("p1", 3, model.GranularitySentences, MethodGreedy)
	if err != nil {
		t.Fatal(err)
	}

	fresh, err := New(Config{Runtime: v2, MaxCacheEntries: -1, DisableCoverageIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.AppendReviews("p1", "Acme", raws); err != nil {
		t.Fatal(err)
	}
	want, _, err := fresh.Summary("p1", 3, model.GranularitySentences, MethodGreedy)
	if err != nil {
		t.Fatal(err)
	}
	requireSameSummary(t, got, want, "post-swap")
	if got.OntologyVersion != v2.Version {
		t.Fatalf("post-swap summary version = %q, want %q", got.OntologyVersion, v2.Version)
	}
	if after := s.Stats().IndexRebuilds; after <= rebuildsBefore {
		t.Fatalf("swap did not force an index rebuild: before=%d after=%d", rebuildsBefore, after)
	}
}

// TestIndexLazyRebuildAfterRecovery: indexes are never persisted, so a
// store recovered from disk must rebuild them lazily at first solve —
// and the recovered indexed summary must match the pre-crash one.
func TestIndexLazyRebuildAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.MaxCacheEntries = -1
	cfg.DataDir = dir
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendReviews("p1", "Acme", manyPhoneReviews(8)); err != nil {
		t.Fatal(err)
	}
	want, _, err := s.Summary("p1", 3, model.GranularityPairs, MethodGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, _, err := s2.Summary("p1", 3, model.GranularityPairs, MethodGreedy)
	if err != nil {
		t.Fatal(err)
	}
	requireSameSummary(t, got, want, "recovered")
	if st := s2.Stats(); st.IndexRebuilds == 0 {
		t.Fatalf("recovered store solved without a lazy index rebuild: %+v", st)
	}
}

// TestReannotationRaceInvalidatesIndex drives the itemAt optimistic
// retry branch against a concurrent append (run it under -race): the
// solve blocks after re-annotating a stale snapshot, an append bumps
// the generation underneath, and the publish must retry against the
// new corpus — with the final summary identical to a cold solve over
// the full post-append corpus.
func TestReannotationRaceInvalidatesIndex(t *testing.T) {
	v1 := phoneRuntime(t, 0.5)
	v2 := phoneRuntime(t, 0.9)
	s, err := New(Config{Runtime: v1, MaxCacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	raws := manyPhoneReviews(6)
	if _, err := s.AppendReviews("p1", "Acme", raws[:4]); err != nil {
		t.Fatal(err)
	}
	// Warm the v1 index so the swap has something to invalidate.
	if _, _, err := s.Summary("p1", 2, model.GranularitySentences, MethodGreedy); err != nil {
		t.Fatal(err)
	}
	if err := s.ActivateOntology(v2); err != nil {
		t.Fatal(err)
	}

	// First post-swap solve re-annotates. The hook fires between the
	// off-lock annotation and the optimistic publish; racing an append
	// through that window forces the e2.gen != gen retry.
	appended := make(chan struct{})
	var once sync.Once
	s.testAnnotateHook = func(id string) {
		once.Do(func() {
			if _, err := s.AppendReviews("p1", "", raws[4:]); err != nil {
				t.Error(err)
			}
			close(appended)
		})
	}
	got, _, err := s.Summary("p1", 2, model.GranularitySentences, MethodGreedy)
	if err != nil {
		t.Fatal(err)
	}
	<-appended
	s.testAnnotateHook = nil

	// The retried solve must have seen the full six-review corpus under
	// v2 annotations.
	fresh, err := New(Config{Runtime: v2, MaxCacheEntries: -1, DisableCoverageIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.AppendReviews("p1", "Acme", raws); err != nil {
		t.Fatal(err)
	}
	want, _, err := fresh.Summary("p1", 2, model.GranularitySentences, MethodGreedy)
	if err != nil {
		t.Fatal(err)
	}
	requireSameSummary(t, got, want, "raced re-annotation")

	// And the store stays coherent afterwards: further appends + indexed
	// solves still match cold.
	if _, err := s.AppendReviews("p1", "", manyPhoneReviews(2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Summary("p1", 2, model.GranularitySentences, MethodGreedy); err != nil {
		t.Fatal(err)
	}
}
