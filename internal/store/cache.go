package store

import (
	"container/list"
	"sync"

	"osars/internal/obs"
)

// lruCache is the generation-aware summary cache: a plain LRU over
// cacheKey → *Summary with both an entry-count and an approximate
// byte budget. Generations make invalidation implicit — appending
// reviews to an item bumps its generation, so all cache keys minted
// for the old corpus simply stop being requested and age out of the
// LRU; nothing is ever served stale.
type lruCache struct {
	mu         sync.Mutex
	maxEntries int        // ≤ 0 disables the cache entirely
	maxBytes   int64      // ≤ 0 means no byte budget
	ll         *list.List // front = most recently used
	m          map[cacheKey]*list.Element
	bytes      int64
	evictions  uint64
	evicted    *obs.Counter // optional mirror of evictions (nil-safe)
}

type lruEntry struct {
	key  cacheKey
	sum  *Summary
	size int64
}

func newLRU(maxEntries int, maxBytes int64) *lruCache {
	return &lruCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		m:          make(map[cacheKey]*list.Element),
	}
}

// Get returns the cached summary for key, marking it most recently
// used.
func (c *lruCache) Get(key cacheKey) (*Summary, bool) {
	if c.maxEntries <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).sum, true
}

// Add inserts sum under key and evicts from the cold end until both
// budgets hold. A summary alone larger than the byte budget is not
// cached at all (it would immediately evict everything else for a
// single-use entry).
func (c *lruCache) Add(key cacheKey, sum *Summary) {
	if c.maxEntries <= 0 {
		return
	}
	size := summarySize(key, sum)
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok { // racing solver already cached it
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, sum: sum, size: size})
	c.bytes += size
	for (c.ll.Len() > c.maxEntries) || (c.maxBytes > 0 && c.bytes > c.maxBytes && c.ll.Len() > 1) {
		c.removeElement(c.ll.Back())
		c.evictions++
		c.evicted.Inc()
	}
}

// PurgeItem drops every cached summary of one item (used by Delete so
// a deleted corpus releases its memory immediately instead of aging
// out).
func (c *lruCache) PurgeItem(id string) {
	if c.maxEntries <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.m {
		if key.id == id {
			c.removeElement(el)
		}
	}
}

// PurgeAll empties the cache (used when a replica installs a full
// snapshot: every cached summary belongs to the replaced corpus).
func (c *lruCache) PurgeAll() {
	if c.maxEntries <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.m = make(map[cacheKey]*list.Element)
	c.bytes = 0
}

func (c *lruCache) removeElement(el *list.Element) {
	e := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.m, e.key)
	c.bytes -= e.size
}

func (c *lruCache) Len() int {
	if c.maxEntries <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *lruCache) Bytes() int64 {
	if c.maxEntries <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// itemEntries counts the cached summaries of one item (test helper
// for the delete-purges-cache invariant).
func (c *lruCache) itemEntries(id string) int {
	if c.maxEntries <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key := range c.m {
		if key.id == id {
			n++
		}
	}
	return n
}

func (c *lruCache) Evictions() uint64 {
	if c.maxEntries <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// summarySize approximates the resident size of one cache entry:
// struct headers plus the backing arrays of the selection slices and
// the bytes of every retained string.
func summarySize(key cacheKey, sum *Summary) int64 {
	const structOverhead = 192 // Summary + lruEntry + list.Element + map slot
	n := int64(structOverhead)
	n += int64(len(key.id)) + int64(len(key.ver)) + int64(len(sum.ItemID))
	n += int64(8 * len(sum.Indices))
	n += int64(16 * len(sum.Pairs))
	n += int64(16 * (len(sum.Sentences) + len(sum.ReviewIDs) + len(sum.Concepts))) // string headers
	for _, s := range sum.Sentences {
		n += int64(len(s))
	}
	for _, id := range sum.ReviewIDs {
		n += int64(len(id))
	}
	for _, c := range sum.Concepts {
		n += int64(len(c))
	}
	n += int64(len(sum.Ontology)) + int64(len(sum.OntologyVersion))
	return n
}
