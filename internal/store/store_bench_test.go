package store

import (
	"fmt"
	"testing"

	"osars/internal/dataset"
	"osars/internal/extract"
	"osars/internal/model"
)

// benchCorpus returns the largest item of the small synthetic
// cell-phone corpus as raw reviews, mirroring the stateless service's
// per-request payload.
func benchCorpus(b *testing.B) []extract.RawReview {
	b.Helper()
	c := dataset.Generate(dataset.SmallCellPhoneConfig(7))
	best := 0
	for i := range c.Items {
		if len(c.Items[i].Reviews) > len(c.Items[best].Reviews) {
			best = i
		}
	}
	docs := c.Items[best].Reviews
	out := make([]extract.RawReview, len(docs))
	for i, d := range docs {
		out[i] = extract.RawReview{ID: d.ID, Text: d.Text, Rating: d.Rating}
	}
	return out
}

func benchStore(b *testing.B) *Store {
	b.Helper()
	s, err := New(testConfigBench())
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func testConfigBench() Config {
	ont := dataset.CellPhoneOntology()
	return Config{
		Metric:   model.Metric{Ont: ont, Epsilon: 0.5},
		Pipeline: extract.NewPipeline(extract.NewMatcher(ont), nil),
	}
}

// BenchmarkSummarizeCold is the stateless baseline: every iteration
// annotates the full corpus from scratch and solves — exactly what
// POST /v1/summarize costs per request.
func BenchmarkSummarizeCold(b *testing.B) {
	reviews := benchCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := benchStore(b)
		if _, err := s.AppendReviews("p", "Phone", reviews); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Summary("p", 5, model.GranularitySentences, MethodGreedy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummaryWarm reads an unchanged item repeatedly: the
// generation-keyed cache answers without annotation or a coverage
// solve. The acceptance bar is ≥10× over BenchmarkSummarizeCold; in
// practice it is orders of magnitude.
func BenchmarkSummaryWarm(b *testing.B) {
	reviews := benchCorpus(b)
	s := benchStore(b)
	if _, err := s.AppendReviews("p", "Phone", reviews); err != nil {
		b.Fatal(err)
	}
	if _, _, err := s.Summary("p", 5, model.GranularitySentences, MethodGreedy); err != nil {
		b.Fatal(err) // prime the cache
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, cached, err := s.Summary("p", 5, model.GranularitySentences, MethodGreedy)
		if err != nil || !cached || len(sum.Sentences) != 5 {
			b.Fatalf("warm read: cached=%v err=%v", cached, err)
		}
	}
}

// BenchmarkAppendThenSummary is the incremental write path: one new
// review is annotated (not the whole corpus) and the summary re-solved
// at the new generation. Setup rebuilds the base corpus outside the
// timer each iteration so the measured op is exactly append(1)+solve.
func BenchmarkAppendThenSummary(b *testing.B) {
	reviews := benchCorpus(b)
	base, extra := reviews[:len(reviews)-1], reviews[len(reviews)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := benchStore(b)
		if _, err := s.AppendReviews("p", "Phone", base); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Summary("p", 5, model.GranularitySentences, MethodGreedy); err != nil {
			b.Fatal(err)
		}
		extra.ID = fmt.Sprintf("extra-%d", i)
		b.StartTimer()
		if _, err := s.AppendReviews("p", "", []extract.RawReview{extra}); err != nil {
			b.Fatal(err)
		}
		sum, cached, err := s.Summary("p", 5, model.GranularitySentences, MethodGreedy)
		if err != nil || cached {
			b.Fatalf("append+read: cached=%v err=%v sum=%v", cached, err, sum)
		}
	}
}
