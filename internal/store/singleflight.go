package store

import "sync"

// flightGroup deduplicates concurrent identical summary computations:
// N goroutines asking for the same (item, generation, k, granularity,
// method) trigger exactly one coverage solve; the other N-1 block and
// share the leader's result. This is the classic singleflight pattern
// (golang.org/x/sync/singleflight), hand-rolled on cacheKey so the
// repository stays dependency-free.
type flightGroup struct {
	mu sync.Mutex
	m  map[cacheKey]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val *Summary
	err error
}

// Do runs fn under key, ensuring only one execution is in flight for
// the key at a time. shared reports whether the caller received
// another goroutine's result instead of running fn itself.
func (g *flightGroup) Do(key cacheKey, fn func() (*Summary, error)) (val *Summary, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[cacheKey]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, true, c.err
	}
	c := new(flightCall)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		c.wg.Done()
	}()
	c.val, c.err = fn()
	return c.val, false, c.err
}
