package store

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"osars/internal/extract"
	"osars/internal/model"
)

// TestConcurrentStress hammers one store with mixed AppendReviews /
// Summary / Delete / List traffic on overlapping items. It is designed
// to run under -race (the CI runs this package with the detector on)
// and it asserts the store's freshness contract: a single-writer item
// never observes a summary for a generation other than the one its
// last append produced — i.e. cache generations never serve stale
// summaries.
func TestConcurrentStress(t *testing.T) {
	s := testStore(t)
	shared := []string{"itemA", "itemB", "itemC"}
	texts := []string{
		"The screen is excellent and the resolution is amazing.",
		"The battery is awful. The battery life is terrible.",
		"Great camera and a decent price.",
		"The speaker is too quiet but the design is gorgeous.",
	}
	grans := []model.Granularity{
		model.GranularityPairs, model.GranularitySentences, model.GranularityReviews,
	}

	const (
		appenders = 4
		readers   = 6
		deleters  = 2
		iters     = 25
	)
	var wg sync.WaitGroup

	// Writers: append 1-2 reviews to a random shared item per
	// iteration.
	for w := 0; w < appenders; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				id := shared[rng.Intn(len(shared))]
				n := 1 + rng.Intn(2)
				revs := make([]extract.RawReview, n)
				for j := range revs {
					revs[j] = extract.RawReview{
						ID:     fmt.Sprintf("w%d-i%d-%d", seed, i, j),
						Text:   texts[rng.Intn(len(texts))],
						Rating: rng.Float64()*2 - 1,
					}
				}
				if _, err := s.AppendReviews(id, "", revs); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(int64(w + 1))
	}

	// Readers: random summaries over the shared items; ErrNotFound is
	// expected while deleters are active.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < iters; i++ {
				id := shared[rng.Intn(len(shared))]
				sum, _, err := s.Summary(id, 1+rng.Intn(3), grans[rng.Intn(len(grans))], MethodGreedy)
				if err != nil {
					if !errors.Is(err, ErrNotFound) {
						t.Errorf("summary: %v", err)
						return
					}
					continue
				}
				if sum.ItemID != id || sum.Cost < 0 {
					t.Errorf("implausible summary %+v", sum)
					return
				}
				s.List()
				s.Stats()
			}
		}(int64(r + 1))
	}

	// Deleters: occasionally drop a shared item (never the solo item
	// below — it must stay single-writer).
	for d := 0; d < deleters; d++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(200 + seed))
			for i := 0; i < iters; i++ {
				s.Delete(shared[rng.Intn(len(shared))])
			}
		}(int64(d + 1))
	}

	// Freshness witness: ONE writer owns item "solo" (readers above
	// never touch it, deleters never delete it). After every append the
	// observed summary generation must equal the append's generation
	// and must cover exactly the reviews appended so far — a stale
	// cache entry would fail both.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			st, err := s.AppendReviews("solo", "", []extract.RawReview{{
				ID:   fmt.Sprintf("solo-%d", i),
				Text: texts[i%len(texts)],
			}})
			if err != nil {
				t.Errorf("solo append: %v", err)
				return
			}
			sum, _, err := s.Summary("solo", 1000, model.GranularityReviews, MethodGreedy)
			if err != nil {
				t.Errorf("solo summary: %v", err)
				return
			}
			if sum.Generation != st.Generation {
				t.Errorf("stale summary: generation %d, appended generation %d",
					sum.Generation, st.Generation)
				return
			}
			if len(sum.ReviewIDs) != i+1 {
				t.Errorf("stale summary: %d reviews covered, %d appended",
					len(sum.ReviewIDs), i+1)
				return
			}
		}
	}()

	wg.Wait()

	// Post-conditions: the solo item holds every appended review, and
	// the counters are coherent.
	item, _, ok := s.Item("solo")
	if !ok || len(item.Reviews) != iters {
		t.Fatalf("solo item = %v (ok=%v)", item, ok)
	}
	st := s.Stats()
	if st.Appends == 0 || st.Solves == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CacheMisses < st.Solves {
		t.Fatalf("more solves than misses: %+v", st)
	}
}
