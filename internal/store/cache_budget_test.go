package store

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"osars/internal/extract"
	"osars/internal/model"
)

// TestCacheByteBudgetConcurrent exercises the LRU's BYTE budget (not
// just the entry budget) under concurrent append + summarize traffic.
// The entry budget is set far above what the workload can produce, so
// every eviction on this run is byte-budget-driven; the test asserts
// the byte invariant continuously from racing observer goroutines and
// is designed to run under -race (the CI runs this package with the
// detector on).
func TestCacheByteBudgetConcurrent(t *testing.T) {
	const maxBytes = 4 << 10 // 4 KiB: a handful of summaries at most
	cfg := testConfig()
	cfg.MaxCacheEntries = 1 << 20 // entry budget can never bind
	cfg.MaxCacheBytes = maxBytes
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	items := []string{"a", "b", "c", "d"}
	texts := []string{
		"The screen is excellent and the resolution is amazing.",
		"The battery is awful. The battery life is terrible.",
		"Great camera and a decent price. The speaker is too quiet.",
		"The design is gorgeous but the price is outrageous.",
	}
	grans := []model.Granularity{
		model.GranularityPairs, model.GranularitySentences, model.GranularityReviews,
	}

	const (
		writers = 3
		readers = 6
		iters   = 40
	)
	var wg, owg sync.WaitGroup
	var stop atomic.Bool

	// Byte-budget observers: the invariant must hold at every instant,
	// not just at the end.
	for o := 0; o < 2; o++ {
		owg.Add(1)
		go func() {
			defer owg.Done()
			for !stop.Load() {
				if got := s.cache.Bytes(); got > maxBytes {
					t.Errorf("cache bytes %d exceed budget %d", got, maxBytes)
					return
				}
			}
		}()
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				id := items[rng.Intn(len(items))]
				if _, err := s.AppendReviews(id, "", []extract.RawReview{{
					ID:   fmt.Sprintf("w%d-%d", seed, i),
					Text: texts[rng.Intn(len(texts))],
				}}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(int64(w + 1))
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < iters; i++ {
				// Varying k and granularity fans the key space out so
				// the byte budget actually has to evict.
				_, _, err := s.Summary(items[rng.Intn(len(items))],
					1+rng.Intn(6), grans[rng.Intn(len(grans))], MethodGreedy)
				if err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("summary: %v", err)
					return
				}
			}
		}(int64(r + 1))
	}

	wg.Wait()
	stop.Store(true)
	owg.Wait()

	st := s.Stats()
	if st.CacheBytes > maxBytes {
		t.Fatalf("final cache bytes %d exceed budget %d", st.CacheBytes, maxBytes)
	}
	if st.CacheEvictions == 0 {
		t.Fatalf("byte budget never evicted (bytes=%d, entries=%d) — budget path not exercised",
			st.CacheBytes, st.CacheEntries)
	}
	if st.CacheEntries == 0 && st.Solves > 0 {
		t.Fatalf("cache ended empty after %d solves", st.Solves)
	}
}
