package baselines

import (
	"testing"

	"osars/internal/dataset"
	"osars/internal/extract"
	"osars/internal/model"
	"osars/internal/ontology"
	"osars/internal/sentiment"
)

// testItem builds an item with known sentences/pairs.
func testItem(t *testing.T) (*model.Item, map[string]ontology.ConceptID) {
	t.Helper()
	var b ontology.Builder
	ids := map[string]ontology.ConceptID{}
	ids["phone"] = b.AddConcept("phone")
	ids["screen"] = b.Child(ids["phone"], "screen")
	ids["battery"] = b.Child(ids["phone"], "battery")
	ids["camera"] = b.Child(ids["phone"], "camera")
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_ = o
	mk := func(txt string, pairs ...model.Pair) model.Sentence {
		return model.Sentence{Text: txt, Pairs: pairs}
	}
	item := &model.Item{
		ID: "p",
		Reviews: []model.Review{
			{Sentences: []model.Sentence{
				mk("The screen is great", model.Pair{Concept: ids["screen"], Sentiment: 0.75}),  // 0
				mk("The screen is amazing", model.Pair{Concept: ids["screen"], Sentiment: 1}),   // 1
				mk("The battery is bad", model.Pair{Concept: ids["battery"], Sentiment: -0.75}), // 2
			}},
			{Sentences: []model.Sentence{
				mk("Screen looks nice", model.Pair{Concept: ids["screen"], Sentiment: 0.5}),  // 3
				mk("The camera is awful", model.Pair{Concept: ids["camera"], Sentiment: -1}), // 4
				mk("I bought it last week"), // 5
				mk("The screen is okay", model.Pair{Concept: ids["screen"], Sentiment: 0.25}), // 6
			}},
		},
	}
	return item, ids
}

func TestMostPopularPicksFrequentAspects(t *testing.T) {
	item, _ := testItem(t)
	sel := MostPopular{}.SelectSentences(item, 2)
	if len(sel) != 2 {
		t.Fatalf("selected %v", sel)
	}
	// (screen, +) occurs in 4 sentences — must be represented first, by
	// its first holder (sentence 0).
	if sel[0] != 0 {
		t.Fatalf("first pick = %d, want 0 (most popular aspect's first sentence)", sel[0])
	}
}

func TestMostPopularNoDuplicates(t *testing.T) {
	item, _ := testItem(t)
	sel := MostPopular{}.SelectSentences(item, 7)
	if len(sel) != 7 {
		t.Fatalf("selected %d, want all 7", len(sel))
	}
	seen := map[int]bool{}
	for _, si := range sel {
		if seen[si] {
			t.Fatalf("duplicate %d in %v", si, sel)
		}
		seen[si] = true
	}
}

func TestProportionalPrefersExtremeSentences(t *testing.T) {
	item, _ := testItem(t)
	sel := Proportional{}.SelectSentences(item, 2)
	if len(sel) != 2 {
		t.Fatalf("selected %v", sel)
	}
	// (screen,+) has 4 of 6 mentions → gets ≥1 slot; its most extreme
	// sentence is index 1 (sentiment 1.0).
	found := false
	for _, si := range sel {
		if si == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("selection %v missing the most extreme screen sentence (1)", sel)
	}
}

func TestProportionalFillsWhenNoPairs(t *testing.T) {
	item := &model.Item{Reviews: []model.Review{{Sentences: []model.Sentence{
		{Text: "a"}, {Text: "b"}, {Text: "c"},
	}}}}
	sel := Proportional{}.SelectSentences(item, 2)
	if len(sel) != 2 || sel[0] != 0 || sel[1] != 1 {
		t.Fatalf("fill failed: %v", sel)
	}
}

func TestGraphBaselinesRankAndBound(t *testing.T) {
	item, _ := testItem(t)
	for _, s := range []Selector{TextRank{}, LexRank{}, LSA{}} {
		sel := s.SelectSentences(item, 3)
		if len(sel) != 3 {
			t.Fatalf("%s selected %v", s.Name(), sel)
		}
		seen := map[int]bool{}
		for _, si := range sel {
			if si < 0 || si >= 7 || seen[si] {
				t.Fatalf("%s bad selection %v", s.Name(), sel)
			}
			seen[si] = true
		}
	}
}

func TestTextRankPrefersCentralSentence(t *testing.T) {
	// Sentences 0-3 all mention "screen quality"; sentence 4 is an
	// outlier. The top pick must not be the outlier.
	item := &model.Item{Reviews: []model.Review{{Sentences: []model.Sentence{
		{Text: "the screen quality is great"},
		{Text: "great screen quality overall"},
		{Text: "screen quality could be better"},
		{Text: "amazing screen quality here"},
		{Text: "delivery van arrived late yesterday"},
	}}}}
	sel := TextRank{}.SelectSentences(item, 1)
	if len(sel) != 1 || sel[0] == 4 {
		t.Fatalf("TextRank picked the outlier: %v", sel)
	}
}

func TestLSATopicsParameter(t *testing.T) {
	item, _ := testItem(t)
	a := LSA{Topics: 1}.SelectSentences(item, 2)
	b := LSA{Topics: 3}.SelectSentences(item, 2)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("LSA selections: %v, %v", a, b)
	}
}

func TestSelectorsOnEmptyItem(t *testing.T) {
	empty := &model.Item{}
	for _, s := range All() {
		if sel := s.SelectSentences(empty, 3); len(sel) != 0 {
			t.Fatalf("%s selected %v from empty item", s.Name(), sel)
		}
	}
}

func TestAllNamesDistinct(t *testing.T) {
	names := map[string]bool{}
	for _, s := range All() {
		if names[s.Name()] {
			t.Fatalf("duplicate name %q", s.Name())
		}
		names[s.Name()] = true
	}
	if len(names) != 5 {
		t.Fatalf("want 5 baselines, got %d", len(names))
	}
}

func TestBaselinesOnGeneratedItem(t *testing.T) {
	// End-to-end smoke: run every baseline on a generated phone item.
	c := dataset.Generate(dataset.SmallCellPhoneConfig(5))
	p := extract.NewPipeline(extract.NewMatcher(c.Ont), sentiment.Lexicon{})
	var raws []extract.RawReview
	for _, r := range c.Items[0].Reviews[:20] {
		raws = append(raws, extract.RawReview{ID: r.ID, Text: r.Text, Rating: r.Rating})
	}
	item := p.AnnotateItem(c.Items[0].ID, c.Items[0].Name, raws)
	n := item.NumSentences()
	for _, s := range All() {
		sel := s.SelectSentences(item, 5)
		if len(sel) != 5 {
			t.Fatalf("%s selected %d sentences", s.Name(), len(sel))
		}
		for _, si := range sel {
			if si < 0 || si >= n {
				t.Fatalf("%s selected out-of-range %d", s.Name(), si)
			}
		}
	}
}

func TestRankerPrefixMatchesSelect(t *testing.T) {
	item, _ := testItem(t)
	for _, s := range []Selector{TextRank{}, LexRank{}, LSA{}} {
		ranker, ok := s.(Ranker)
		if !ok {
			t.Fatalf("%s does not implement Ranker", s.Name())
		}
		ranking := ranker.RankSentences(item)
		if len(ranking) != 7 {
			t.Fatalf("%s ranking covers %d of 7 sentences", s.Name(), len(ranking))
		}
		for k := 0; k <= 7; k++ {
			want := prefix(ranking, k)
			got := s.SelectSentences(item, k)
			if len(got) != len(want) {
				t.Fatalf("%s k=%d: select %v vs prefix %v", s.Name(), k, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s k=%d: select %v vs prefix %v", s.Name(), k, got, want)
				}
			}
		}
	}
}
