// Package baselines implements the five unsupervised summarizers the
// paper compares against (§5.3, Table 2):
//
//   - MostPopular — Hu & Liu (2004), adapted to pick one representative
//     sentence for each of the k most frequent aspect-polarity pairs;
//   - Proportional — Blair-Goldensohn et al. (2008): aspect-polarity
//     pairs chosen proportionally to frequency, each represented by its
//     most extremely polarized sentence;
//   - TextRank — Mihalcea & Tarau (2004): PageRank over a word-overlap
//     sentence graph;
//   - LexRank — Erkan & Radev (2004): PageRank over a thresholded
//     TF-IDF-cosine sentence graph;
//   - LSA — Steinberger & Ježek (2004): sentence salience from the SVD
//     of the term-sentence matrix.
//
// Every baseline implements Selector: given an item, pick k sentences
// (indices into the item's global sentence order, the same order
// coverage.SentenceGroups uses).
package baselines

import (
	"math"
	"sort"

	"osars/internal/linalg"
	"osars/internal/model"
	"osars/internal/ontology"
	"osars/internal/text"
)

// Selector picks k summary sentences from an item.
type Selector interface {
	// Name identifies the method in experiment output.
	Name() string
	// SelectSentences returns up to k distinct sentence indices.
	SelectSentences(item *model.Item, k int) []int
}

// Ranker is an optional fast path for selectors whose k-sentence
// summary is a prefix of one fixed ranking (TextRank, LexRank, LSA).
// Sweeps over k compute the ranking once and slice prefixes.
type Ranker interface {
	// RankSentences orders all sentence indices best-first.
	RankSentences(item *model.Item) []int
}

// flatSentences returns the item's sentences in global order.
func flatSentences(item *model.Item) []*model.Sentence {
	var out []*model.Sentence
	for ri := range item.Reviews {
		for si := range item.Reviews[ri].Sentences {
			out = append(out, &item.Reviews[ri].Sentences[si])
		}
	}
	return out
}

// aspectKey is a (concept, polarity) pair; polarity is +1 / -1
// (neutral sentiment counts as positive, matching Hu & Liu's binary
// classification).
type aspectKey struct {
	concept  ontology.ConceptID
	positive bool
}

func keyOf(p model.Pair) aspectKey {
	return aspectKey{concept: p.Concept, positive: p.Sentiment >= 0}
}

// MostPopular is the Hu & Liu adaptation described in §5.3: count
// (concept, polarity) occurrences over sentences, select the k most
// popular pairs and return one containing sentence for each.
type MostPopular struct{}

// Name implements Selector.
func (MostPopular) Name() string { return "most popular" }

// SelectSentences implements Selector.
func (MostPopular) SelectSentences(item *model.Item, k int) []int {
	sentences := flatSentences(item)
	counts := map[aspectKey]int{}
	holders := map[aspectKey][]int{}
	for si, s := range sentences {
		seen := map[aspectKey]bool{}
		for _, p := range s.Pairs {
			key := keyOf(p)
			if !seen[key] {
				seen[key] = true
				counts[key]++
				holders[key] = append(holders[key], si)
			}
		}
	}
	ranked := rankKeys(counts)
	used := make(map[int]bool)
	var out []int
	for _, key := range ranked {
		if len(out) == k {
			break
		}
		for _, si := range holders[key] {
			if !used[si] {
				used[si] = true
				out = append(out, si)
				break
			}
		}
	}
	return fill(out, used, len(sentences), k)
}

// Proportional is the Blair-Goldensohn et al. adaptation described in
// §5.3: allocate the k slots across (concept, polarity) pairs
// proportionally to their frequency (largest-remainder rounding), then
// represent each slot with the yet-unused sentence whose sentiment is
// most extreme for that pair.
type Proportional struct{}

// Name implements Selector.
func (Proportional) Name() string { return "proportional" }

// SelectSentences implements Selector.
func (Proportional) SelectSentences(item *model.Item, k int) []int {
	sentences := flatSentences(item)
	counts := map[aspectKey]int{}
	type holder struct {
		si      int
		extreme float64
	}
	holders := map[aspectKey][]holder{}
	for si, s := range sentences {
		best := map[aspectKey]float64{}
		for _, p := range s.Pairs {
			key := keyOf(p)
			if math.Abs(p.Sentiment) >= math.Abs(best[key]) {
				best[key] = p.Sentiment
			}
		}
		for key, v := range best {
			counts[key]++
			holders[key] = append(holders[key], holder{si: si, extreme: math.Abs(v)})
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return fill(nil, map[int]bool{}, len(sentences), k)
	}
	// Largest-remainder apportionment of k slots.
	ranked := rankKeys(counts)
	type quota struct {
		key   aspectKey
		base  int
		fract float64
	}
	quotas := make([]quota, len(ranked))
	assigned := 0
	for i, key := range ranked {
		exact := float64(k) * float64(counts[key]) / float64(total)
		quotas[i] = quota{key: key, base: int(exact), fract: exact - math.Floor(exact)}
		assigned += quotas[i].base
	}
	sort.SliceStable(quotas, func(i, j int) bool { return quotas[i].fract > quotas[j].fract })
	for i := 0; assigned < k && i < len(quotas); i++ {
		quotas[i].base++
		assigned++
	}
	// Most-extreme unused sentence per slot.
	for _, key := range ranked {
		hs := holders[key]
		sort.SliceStable(hs, func(i, j int) bool { return hs[i].extreme > hs[j].extreme })
		holders[key] = hs
	}
	used := map[int]bool{}
	var out []int
	for _, q := range quotas {
		for slot := 0; slot < q.base; slot++ {
			for _, h := range holders[q.key] {
				if !used[h.si] {
					used[h.si] = true
					out = append(out, h.si)
					break
				}
			}
			if len(out) == k {
				return out
			}
		}
	}
	return fill(out, used, len(sentences), k)
}

// rankKeys orders aspect keys by descending count with deterministic
// ties (concept id, then positive-first).
func rankKeys(counts map[aspectKey]int) []aspectKey {
	keys := make([]aspectKey, 0, len(counts))
	for key := range counts {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if counts[a] != counts[b] {
			return counts[a] > counts[b]
		}
		if a.concept != b.concept {
			return a.concept < b.concept
		}
		return a.positive && !b.positive
	})
	return keys
}

// fill pads a selection with the earliest unused sentences when a
// method ran out of candidates before reaching k.
func fill(out []int, used map[int]bool, n, k int) []int {
	for si := 0; si < n && len(out) < k; si++ {
		if !used[si] {
			used[si] = true
			out = append(out, si)
		}
	}
	return out
}

// rankByScore orders all indices by descending score, deterministic on
// ties (lower index first).
func rankByScore(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return scores[idx[i]] > scores[idx[j]] })
	return idx
}

// prefix returns the first k ranked indices in ascending index order
// (matching the original document order, as extractive summarizers
// present them).
func prefix(ranking []int, k int) []int {
	if k > len(ranking) {
		k = len(ranking)
	}
	out := append([]int(nil), ranking[:k]...)
	sort.Ints(out)
	return out
}

// TextRank ranks sentences by PageRank over the word-overlap
// similarity graph of Mihalcea & Tarau (2004).
type TextRank struct {
	// Damping for PageRank (default 0.85 when zero).
	Damping float64
}

// Name implements Selector.
func (TextRank) Name() string { return "TextRank" }

// SelectSentences implements Selector.
func (t TextRank) SelectSentences(item *model.Item, k int) []int {
	return prefix(t.RankSentences(item), k)
}

// RankSentences implements Ranker.
func (t TextRank) RankSentences(item *model.Item) []int {
	d := t.Damping
	if d == 0 {
		d = 0.85
	}
	sentences := flatSentences(item)
	n := len(sentences)
	toks := make([][]string, n)
	for i, s := range sentences {
		toks[i] = text.Tokenize(s.Text)
	}
	w := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sim := text.WordOverlap(toks[i], toks[j], true, true)
			if sim > 0 {
				w.Set(i, j, sim)
				w.Set(j, i, sim)
			}
		}
	}
	scores := linalg.PageRank(w, d, 1e-9, 200)
	return rankByScore(scores)
}

// LexRank ranks sentences by PageRank over the binary
// cosine-similarity graph of Erkan & Radev (2004).
type LexRank struct {
	// Threshold for connecting two sentences (default 0.1 when zero).
	Threshold float64
	// Damping for PageRank (default 0.85 when zero).
	Damping float64
}

// Name implements Selector.
func (LexRank) Name() string { return "LexRank" }

// SelectSentences implements Selector.
func (l LexRank) SelectSentences(item *model.Item, k int) []int {
	return prefix(l.RankSentences(item), k)
}

// RankSentences implements Ranker.
func (l LexRank) RankSentences(item *model.Item) []int {
	th := l.Threshold
	if th == 0 {
		th = 0.1
	}
	d := l.Damping
	if d == 0 {
		d = 0.85
	}
	sentences := flatSentences(item)
	n := len(sentences)
	toks := make([][]string, n)
	for i, s := range sentences {
		toks[i] = text.Tokenize(s.Text)
	}
	vec := text.NewVectorizer(toks, text.VectorizerOptions{Stem: true, DropStopwords: true})
	vecs := make([]text.SparseVec, n)
	for i := range toks {
		vecs[i] = vec.Transform(toks[i])
	}
	w := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if text.CosineSimilarity(vecs[i], vecs[j]) >= th {
				w.Set(i, j, 1)
				w.Set(j, i, 1)
			}
		}
	}
	scores := linalg.PageRank(w, d, 1e-9, 200)
	return rankByScore(scores)
}

// LSA ranks sentences by the Steinberger & Ježek (2004) salience: the
// length of each sentence's row of V·Σ restricted to the strongest r
// latent topics of the term-sentence matrix's SVD.
type LSA struct {
	// Topics caps the latent dimensions used (default 3).
	Topics int
}

// Name implements Selector.
func (LSA) Name() string { return "LSA" }

// SelectSentences implements Selector.
func (l LSA) SelectSentences(item *model.Item, k int) []int {
	return prefix(l.RankSentences(item), k)
}

// RankSentences implements Ranker.
func (l LSA) RankSentences(item *model.Item) []int {
	sentences := flatSentences(item)
	n := len(sentences)
	if n == 0 {
		return nil
	}
	toks := make([][]string, n)
	for i, s := range sentences {
		toks[i] = text.Tokenize(s.Text)
	}
	vec := text.NewVectorizer(toks, text.VectorizerOptions{Stem: true, DropStopwords: true})
	terms := vec.VocabSize()
	if terms == 0 {
		return rankByScore(make([]float64, n))
	}
	// Term-sentence matrix A: terms × sentences.
	a := linalg.NewMatrix(terms, n)
	for j := range toks {
		sv := vec.Transform(toks[j])
		for t, idx := range sv.Idx {
			a.Set(int(idx), j, sv.Val[t])
		}
	}
	res := linalg.SVD(a)
	r := l.Topics
	if r <= 0 {
		r = 3
	}
	if r > len(res.S) {
		r = len(res.S)
	}
	scores := make([]float64, n)
	for j := 0; j < n; j++ {
		s := 0.0
		for t := 0; t < r; t++ {
			v := res.V.At(j, t) * res.S[t]
			s += v * v
		}
		scores[j] = math.Sqrt(s)
	}
	return rankByScore(scores)
}

// All returns the five baselines in the paper's Table 2 order.
func All() []Selector {
	return []Selector{MostPopular{}, Proportional{}, TextRank{}, LexRank{}, LSA{}}
}
