package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestGoldenExposition pins the exposition format byte-for-byte:
// HELP/TYPE lines, sorted families and children, the cumulative
// _bucket/_sum/_count triple, and label-value escaping.
func TestGoldenExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("osars_test_events_total", "Total events.").Add(42)

	gv := reg.GaugeVec("osars_test_temperature", "Current temperature.", "room")
	gv.With("kitchen").Set(-3)
	gv.With("lab\"A\"\\\nx").Set(7) // exercises ", \ and newline escaping

	hv := reg.HistogramVec("osars_test_latency_seconds", "Latency.", []float64{0.25, 0.5, 1}, "route")
	h := hv.With("/v1/items/{id}")
	for _, v := range []float64{0.25, 0.5, 0.5, 2} { // exact in binary: stable _sum
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition mismatch\n--- got ---\n%s\n--- want (%s) ---\n%s", buf.Bytes(), golden, want)
	}
}

// TestHistogramBuckets checks bucket assignment semantics: v <= upper
// lands in the bucket, boundaries inclusive, overflow in +Inf.
func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "", []float64{1, 2})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3} {
		h.Observe(v)
	}
	got := []uint64{h.counts[0].Load(), h.counts[1].Load(), h.counts[2].Load()}
	if got[0] != 2 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("bucket counts = %v, want [2 2 1]", got)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 8 {
		t.Fatalf("Sum = %g, want 8", h.Sum())
	}
}

// TestNilSafety: a nil registry hands out nil instruments and every
// instrument method on a nil receiver is a no-op. This is the
// contract that lets call sites instrument unconditionally.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("c", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h", "", nil)
	cv := reg.CounterVec("cv", "", "l")
	gv := reg.GaugeVec("gv", "", "l")
	hv := reg.HistogramVec("hv", "", nil, "l")
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(-1)
	h.Observe(3)
	h.ObserveSince(time.Now())
	cv.With("x").Inc()
	gv.With("x").Set(2)
	hv.With("x").Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var sl *SlowLog
	sl.Record("GET", "/x", 200, time.Second, 0, -1) // must not panic
}

// TestRegistryIdempotentAndConflicts: same name+type returns the same
// underlying instrument; a type conflict panics.
func TestRegistryIdempotentAndConflicts(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("osars_x_total", "")
	b := reg.Counter("osars_x_total", "")
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("re-registration must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type conflict")
		}
	}()
	reg.Gauge("osars_x_total", "")
}

// TestObserveZeroAllocs is the hard gate on the hot path: a histogram
// Observe (and counter Inc) must not allocate.
func TestObserveZeroAllocs(t *testing.T) {
	reg := NewRegistry()
	h := reg.HistogramVec("h", "", DefBuckets, "route").With("/v1/items")
	c := reg.CounterVec("c", "", "route").With("/v1/items")
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v per op, want 0", n)
	}
}

// TestConcurrentObserveWhileScraping hammers ONE histogram from 16
// goroutines while a scraper renders the registry the whole time
// (run under -race in CI). Afterwards the histogram must account for
// every observation exactly once.
func TestConcurrentObserveWhileScraping(t *testing.T) {
	const (
		goroutines = 16
		perG       = 5000
	)
	reg := NewRegistry()
	h := reg.Histogram("osars_race_seconds", "", DefBuckets)
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
			if !strings.Contains(buf.String(), "osars_race_seconds_count") {
				t.Error("scrape missing histogram count")
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG+i) * 1e-6)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	scrapes.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("Count = %d, want %d", got, goroutines*perG)
	}
}

// TestSlowLogThresholdAndFormat checks gating and the one-line logfmt
// shape.
func TestSlowLogThresholdAndFormat(t *testing.T) {
	var lines []string
	reg := NewRegistry()
	sl := &SlowLog{
		Threshold: 10 * time.Millisecond,
		Logf:      func(f string, a ...any) { lines = append(lines, fmt.Sprintf(f, a...)) },
		Slow:      reg.Counter("slow_total", ""),
	}
	sl.Record("GET", "/v1/items/{id}/summary", 200, 5*time.Millisecond, 0, 2) // under threshold
	sl.Record("PUT", "/v1/items/{id}/reviews", 429, 150*time.Millisecond, 120*time.Millisecond, 3)
	if len(lines) != 1 {
		t.Fatalf("lines = %v, want exactly one", lines)
	}
	want := "slow-request method=PUT route=/v1/items/{id}/reviews status=429 duration=150.0ms queue_wait=120.0ms shard=3"
	if lines[0] != want {
		t.Fatalf("line = %q, want %q", lines[0], want)
	}
	if sl.Slow.Value() != 1 {
		t.Fatalf("slow counter = %d, want 1", sl.Slow.Value())
	}
}
