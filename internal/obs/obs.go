// Package obs is the dependency-free observability core for the OSARS
// serving stack: a metrics Registry holding Counter, Gauge and
// fixed-bucket Histogram instruments, Prometheus text-format
// exposition (prom.go), and a threshold-gated slow-request log
// (slowlog.go).
//
// Design constraints, in order:
//
//  1. The hot path must cost nothing measurable. Observe/Inc/Add are
//     a handful of atomic operations — no locks, no maps, no
//     allocation. A Histogram.Observe is one linear bucket scan plus
//     one atomic bucket increment plus one CAS loop for the sum
//     (benchmarked at ~10ns, 0 allocs/op; see bench_test.go).
//  2. Labels are pre-interned. A labelled instrument is obtained ONCE
//     at construction time via Vec.With(values...) — which takes a
//     lock and renders the label string — and the returned child is
//     then used forever. Request paths never touch a map.
//  3. Every instrument method is nil-receiver safe. Call sites are
//     written unconditionally; when observability is disabled the
//     instruments are nil pointers and every call is a single
//     predictable branch. This also makes a nil *Registry a valid
//     "disabled" registry: its constructors return nil instruments.
//
// Metric names follow osars_<layer>_<name>_<unit> (see DESIGN.md
// "Observability architecture").
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency buckets in seconds: 100µs to 10s
// in a roughly-2.5× geometric ladder. The low end resolves cache-hit
// and in-memory append latencies (tens of µs land in the first
// bucket), the 1–25ms middle resolves fsyncs and cold solves, and the
// tail catches queue-wait pileups and stalled replicas.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are power-of-two count buckets (batch sizes, queue
// depths): the interesting questions are "is batching happening at
// all" (1 vs >1) and "how close to the writer count / queue bound",
// both answered on a log2 scale.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Counter is a monotonically increasing uint64. The zero value is
// ready to use; a nil *Counter discards all updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value. The zero value is ready to
// use; a nil *Gauge discards all updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with lock-free Observe. The
// bucket layout is immutable after construction; counts[i] is the
// number of observations v with upper[i-1] < v <= upper[i], and the
// final slot counts the +Inf overflow. The total count is derived at
// exposition time by summing buckets, so Observe pays for exactly one
// bucket increment plus the sum accumulation.
type Histogram struct {
	upper  []float64       // ascending upper bounds, +Inf excluded
	counts []atomic.Uint64 // len(upper)+1, last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
}

// Observe records one value. Nil-safe, lock-free, allocation-free.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	lo := 0
	for lo < len(h.upper) && v > h.upper[lo] {
		lo++
	}
	h.counts[lo].Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start. On a nil
// receiver it returns before calling time.Since, so disabled call
// sites pay only the branch.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labelled instance of a family; exactly one of the
// instrument pointers is non-nil, matching the family type.
type child struct {
	labelBody string // rendered `k="v",k2="v2"`, "" for unlabelled
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
}

// family is one named metric: type, help, label schema and the set of
// interned children.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64 // histogramType only

	mu       sync.Mutex
	children map[string]*child
	order    []*child // insertion order; sorted at exposition
}

// intern returns the child for the given label values, creating it on
// first use. Callers hold the result; this is the only locked path.
func (f *family) intern(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var b strings.Builder
	for i, v := range values {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(f.labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(v))
		b.WriteByte('"')
	}
	c := &child{labelBody: b.String()}
	switch f.typ {
	case counterType:
		c.counter = &Counter{}
	case gaugeType:
		c.gauge = &Gauge{}
	case histogramType:
		h := &Histogram{upper: f.buckets}
		h.counts = make([]atomic.Uint64, len(f.buckets)+1)
		c.hist = h
	}
	f.children[key] = c
	f.order = append(f.order, c)
	return c
}

// Registry holds metric families and renders them (prom.go). A nil
// *Registry is a valid disabled registry: every constructor returns a
// nil instrument and exposition renders nothing.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register returns the family for name, creating it on first use and
// panicking on a type or label-schema conflict (always a programming
// error: names are compile-time constants in this codebase).
func (r *Registry) register(name, help string, typ metricType, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with conflicting type or labels", name))
		}
		return f
	}
	if typ == histogramType {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic(fmt.Sprintf("obs: metric %q buckets not strictly ascending", name))
			}
		}
		buckets = append([]float64(nil), buckets...)
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, counterType, nil, nil).intern(nil).counter
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, gaugeType, nil, nil).intern(nil).gauge
}

// Histogram registers (or fetches) an unlabelled histogram. A nil or
// empty buckets slice selects DefBuckets; on re-registration the
// first bucket layout wins.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, histogramType, nil, buckets).intern(nil).hist
}

// CounterVec is a counter family with labels; With interns children.
type CounterVec struct{ fam *family }

// GaugeVec is a gauge family with labels; With interns children.
type GaugeVec struct{ fam *family }

// HistogramVec is a histogram family with labels; With interns
// children.
type HistogramVec struct{ fam *family }

// CounterVec registers (or fetches) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.register(name, help, counterType, labels, nil)}
}

// GaugeVec registers (or fetches) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.register(name, help, gaugeType, labels, nil)}
}

// HistogramVec registers (or fetches) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{fam: r.register(name, help, histogramType, labels, buckets)}
}

// With interns and returns the child counter for the label values.
// Construction-time only: it locks and may allocate. Nil-safe.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.intern(values).counter
}

// With interns and returns the child gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.fam.intern(values).gauge
}

// With interns and returns the child histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.fam.intern(values).hist
}

// sortedFamilies snapshots the family set ordered by name.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedChildren snapshots a family's children ordered by label body.
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	kids := append([]*child(nil), f.order...)
	f.mu.Unlock()
	sort.Slice(kids, func(i, j int) bool { return kids[i].labelBody < kids[j].labelBody })
	return kids
}
