// Slow-request log: one structured line per request whose end-to-end
// duration crosses a threshold. The line is plain logfmt so it greps
// and parses without a collector:
//
//	slow-request method=GET route=/v1/items/{id}/summary status=200 duration=152ms queue_wait=101ms shard=3
//
// shard is -1 when the serving store has no shard notion (stateless
// or unsharded). queue_wait is the time spent parked in an admission
// queue (0 for ungated routes and fast-path admissions).
package obs

import (
	"fmt"
	"log"
	"time"
)

// SlowLog emits the slow-request line. A nil *SlowLog, or a
// non-positive Threshold, disables logging; Record stays cheap either
// way (one branch plus one duration compare).
type SlowLog struct {
	// Threshold is the minimum end-to-end duration that gets logged.
	Threshold time.Duration
	// Logf receives the formatted line; log.Printf when nil.
	Logf func(format string, args ...any)
	// Slow counts emitted lines (optional; nil-safe).
	Slow *Counter
}

// Record logs one request if it crossed the threshold.
func (l *SlowLog) Record(method, route string, status int, duration, queueWait time.Duration, shard int) {
	if l == nil || l.Threshold <= 0 || duration < l.Threshold {
		return
	}
	l.Slow.Inc()
	logf := l.Logf
	if logf == nil {
		logf = log.Printf
	}
	logf("slow-request method=%s route=%s status=%d duration=%s queue_wait=%s shard=%d",
		method, route, status, fmtDuration(duration), fmtDuration(queueWait), shard)
}

// fmtDuration renders with millisecond-ish precision so lines stay
// readable (time.Duration.String emits full ns noise).
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}
