package obs

import (
	"testing"
	"time"
)

// BenchmarkHistogramObserve is the hot-path cost of one latency
// observation against the 16-bucket default layout — the per-request
// overhead every instrumented stage pays. Gate: <20ns, 0 allocs/op
// (allocs are also hard-asserted by TestObserveZeroAllocs and the
// bench-smoke CI job).
func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.HistogramVec("osars_bench_seconds", "", DefBuckets, "route").With("/v1/items/{id}/summary")
	// Typical request-latency mix: mostly sub-5ms with a slow tail.
	vals := [8]float64{0.0002, 0.0004, 0.0008, 0.003, 0.0006, 0.0011, 0.0003, 0.02}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(vals[i&7])
	}
}

// BenchmarkHistogramObserveParallel is the contended variant: every P
// hammers the same histogram, modelling one hot route across all
// serving goroutines.
func BenchmarkHistogramObserveParallel(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("osars_bench_seconds", "", DefBuckets)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 0.003
		for pb.Next() {
			h.Observe(v)
		}
	})
}

// BenchmarkCounterInc: the cheapest instrument, for reference.
func BenchmarkCounterInc(b *testing.B) {
	reg := NewRegistry()
	c := reg.CounterVec("osars_bench_total", "", "route").With("/v1/items")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkObserveSinceDisabled: the cost instrumented call sites pay
// when observability is off (nil instrument) — must be ~1ns: a nil
// check, no time.Now.
func BenchmarkObserveSinceDisabled(b *testing.B) {
	var h *Histogram
	start := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(start)
	}
}
