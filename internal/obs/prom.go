// Prometheus text-format exposition (format version 0.0.4). The
// renderer walks a point-in-time snapshot of the registry: families
// sorted by name, children sorted by label body, histograms expanded
// into the cumulative _bucket/_sum/_count triple. Individual values
// are read with atomic loads, so scraping is safe concurrently with
// the hot path and never blocks it — a scrape may observe a bucket
// increment before the matching sum update (and vice versa), which
// Prometheus tolerates by design.
package obs

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeSample writes one `name{labels} value` line, merging extra
// label pairs (the histogram le) with the child's interned body.
func writeSample(w *bufio.Writer, name, labelBody, extra, value string) {
	w.WriteString(name)
	if labelBody != "" || extra != "" {
		w.WriteByte('{')
		w.WriteString(labelBody)
		if labelBody != "" && extra != "" {
			w.WriteByte(',')
		}
		w.WriteString(extra)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

// WritePrometheus renders every registered family in text exposition
// format. A nil registry renders nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ.String())
		bw.WriteByte('\n')
		for _, c := range f.sortedChildren() {
			switch f.typ {
			case counterType:
				writeSample(bw, f.name, c.labelBody, "", strconv.FormatUint(c.counter.Value(), 10))
			case gaugeType:
				writeSample(bw, f.name, c.labelBody, "", strconv.FormatInt(c.gauge.Value(), 10))
			case histogramType:
				h := c.hist
				var cum uint64
				for i, ub := range h.upper {
					cum += h.counts[i].Load()
					writeSample(bw, f.name+"_bucket", c.labelBody,
						`le="`+formatFloat(ub)+`"`, strconv.FormatUint(cum, 10))
				}
				cum += h.counts[len(h.upper)].Load()
				writeSample(bw, f.name+"_bucket", c.labelBody, `le="+Inf"`, strconv.FormatUint(cum, 10))
				writeSample(bw, f.name+"_sum", c.labelBody, "", formatFloat(h.Sum()))
				writeSample(bw, f.name+"_count", c.labelBody, "", strconv.FormatUint(cum, 10))
			}
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the exposition on GET/HEAD.
// Safe to mount on any mux, including the pprof listener.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		r.WritePrometheus(w)
	})
}
