package text

import (
	"math"
	"sort"
)

// SparseVec is a sparse feature vector sorted by term index.
type SparseVec struct {
	Idx []int32
	Val []float64
}

// Norm returns the Euclidean norm.
func (v SparseVec) Norm() float64 {
	s := 0.0
	for _, x := range v.Val {
		s += x * x
	}
	return math.Sqrt(s)
}

// CosineSimilarity returns the cosine of two sparse vectors (0 when
// either is empty).
func CosineSimilarity(a, b SparseVec) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	dot := 0.0
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] < b.Idx[j]:
			i++
		case a.Idx[i] > b.Idx[j]:
			j++
		default:
			dot += a.Val[i] * b.Val[j]
			i++
			j++
		}
	}
	return dot / (na * nb)
}

// Vectorizer builds TF-IDF vectors over a corpus of tokenized
// documents. Construct with NewVectorizer, which fixes the vocabulary
// and document frequencies; Transform then maps any token list into
// the fixed space.
type Vectorizer struct {
	vocab map[string]int32
	idf   []float64
	// Stemmed controls whether tokens are stemmed before lookup; it
	// must match the flag used at construction.
	Stemmed bool
	// DropStopwords mirrors the construction-time stopword handling.
	DropStopwords bool
}

// VectorizerOptions configure corpus preprocessing.
type VectorizerOptions struct {
	// Stem applies Porter stemming to every token.
	Stem bool
	// DropStopwords removes stopwords before counting.
	DropStopwords bool
	// MinDocFreq drops terms appearing in fewer documents (default 1).
	MinDocFreq int
}

// NewVectorizer scans the corpus (one token slice per document) and
// learns vocabulary + smoothed IDF: idf(t) = ln((1+N)/(1+df)) + 1.
func NewVectorizer(corpus [][]string, opt VectorizerOptions) *Vectorizer {
	if opt.MinDocFreq <= 0 {
		opt.MinDocFreq = 1
	}
	v := &Vectorizer{
		vocab:         make(map[string]int32),
		Stemmed:       opt.Stem,
		DropStopwords: opt.DropStopwords,
	}
	df := map[string]int{}
	for _, doc := range corpus {
		seen := map[string]bool{}
		for _, tok := range doc {
			t := v.prep(tok)
			if t == "" || seen[t] {
				continue
			}
			seen[t] = true
			df[t]++
		}
	}
	terms := make([]string, 0, len(df))
	for t, n := range df {
		if n >= opt.MinDocFreq {
			terms = append(terms, t)
		}
	}
	sort.Strings(terms) // deterministic vocabulary ids
	n := len(corpus)
	v.idf = make([]float64, len(terms))
	for i, t := range terms {
		v.vocab[t] = int32(i)
		v.idf[i] = math.Log(float64(1+n)/float64(1+df[t])) + 1
	}
	return v
}

func (v *Vectorizer) prep(tok string) string {
	if v.DropStopwords && IsStopword(tok) {
		return ""
	}
	if v.Stemmed {
		return Stem(tok)
	}
	return tok
}

// VocabSize reports the number of learned terms.
func (v *Vectorizer) VocabSize() int { return len(v.idf) }

// Transform maps a tokenized document to its TF-IDF vector. Unknown
// terms are ignored.
func (v *Vectorizer) Transform(doc []string) SparseVec {
	counts := map[int32]float64{}
	for _, tok := range doc {
		t := v.prep(tok)
		if t == "" {
			continue
		}
		if id, ok := v.vocab[t]; ok {
			counts[id]++
		}
	}
	out := SparseVec{
		Idx: make([]int32, 0, len(counts)),
		Val: make([]float64, 0, len(counts)),
	}
	for id := range counts {
		out.Idx = append(out.Idx, id)
	}
	sort.Slice(out.Idx, func(i, j int) bool { return out.Idx[i] < out.Idx[j] })
	for _, id := range out.Idx {
		out.Val = append(out.Val, counts[id]*v.idf[id])
	}
	return out
}

// WordOverlap returns the TextRank sentence-similarity measure: the
// number of shared distinct (prepped) tokens normalized by
// log|A| + log|B| (Mihalcea & Tarau 2004). Returns 0 for sentences
// with fewer than 2 tokens after preprocessing.
func WordOverlap(a, b []string, stem, dropStop bool) float64 {
	prep := func(doc []string) map[string]bool {
		out := map[string]bool{}
		for _, tok := range doc {
			if dropStop && IsStopword(tok) {
				continue
			}
			if stem {
				tok = Stem(tok)
			}
			if tok != "" {
				out[tok] = true
			}
		}
		return out
	}
	sa, sb := prep(a), prep(b)
	if len(sa) < 2 || len(sb) < 2 {
		return 0
	}
	shared := 0
	for t := range sa {
		if sb[t] {
			shared++
		}
	}
	if shared == 0 {
		return 0
	}
	return float64(shared) / (math.Log(float64(len(sa))) + math.Log(float64(len(sb))))
}
