package text

import "strings"

// Stem reduces an English word to its stem with the classic Porter
// (1980) algorithm. Input should be a lowercase token; words of length
// ≤ 2 are returned unchanged, as the original algorithm specifies.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	// Work on a stack buffer when the word fits (one spare byte for the
	// 'e' step1b can append); every step below mutates the buffer in
	// place or reslices it, so the only possible heap allocation is the
	// final string — and that is skipped when stemming was an identity,
	// the common case on review text.
	var arr [60]byte
	var w []byte
	if len(word) < len(arr) {
		w = append(arr[:0], word...)
	} else {
		w = make([]byte, 0, len(word)+1)
		w = append(w, word...)
	}
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	if string(w) == word { // compiler-optimized comparison: no alloc
		return word
	}
	return string(w)
}

// isCons reports whether w[i] is a consonant in Porter's sense: a
// vowel is a, e, i, o, u, or y preceded by a consonant.
func isCons(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	default:
		return true
	}
}

// measure returns m, the number of VC sequences in w[0:len].
func measure(w []byte) int {
	m := 0
	i := 0
	n := len(w)
	// Skip initial consonants.
	for i < n && isCons(w, i) {
		i++
	}
	for i < n {
		// In vowels.
		for i < n && !isCons(w, i) {
			i++
		}
		if i >= n {
			break
		}
		m++
		for i < n && isCons(w, i) {
			i++
		}
	}
	return m
}

func hasVowel(w []byte) bool {
	for i := range w {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleCons reports whether w ends with a double consonant.
func endsDoubleCons(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isCons(w, n-1)
}

// endsCVC reports whether w ends consonant-vowel-consonant where the
// final consonant is not w, x or y.
func endsCVC(w []byte) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isCons(w, n-3) || isCons(w, n-2) || !isCons(w, n-1) {
		return false
	}
	switch w[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(w []byte, s string) bool {
	return len(w) >= len(s) && string(w[len(w)-len(s):]) == s
}

// replaceIf replaces suffix s by r when the stem before s has measure
// > m0. Returns the new word and whether a rule fired.
func replaceIf(w []byte, s, r string, m0 int) ([]byte, bool) {
	if !hasSuffix(w, s) {
		return w, false
	}
	stem := w[:len(w)-len(s)]
	if measure(stem) > m0 {
		// In-place: w is always Stem's private buffer and every rule's
		// replacement is no longer than its suffix, so the append stays
		// within the backing array.
		return append(stem, r...), true
	}
	return w, true // suffix matched; rule consumed even if not applied
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2]
	case hasSuffix(w, "ies"):
		return w[:len(w)-2]
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w[:len(w)-3]) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	fired := false
	if hasSuffix(w, "ed") && hasVowel(w[:len(w)-2]) {
		w = w[:len(w)-2]
		fired = true
	} else if hasSuffix(w, "ing") && hasVowel(w[:len(w)-3]) {
		w = w[:len(w)-3]
		fired = true
	}
	if !fired {
		return w
	}
	switch {
	case hasSuffix(w, "at"), hasSuffix(w, "bl"), hasSuffix(w, "iz"):
		return append(w, 'e')
	case endsDoubleCons(w) && !hasSuffix(w, "l") && !hasSuffix(w, "s") && !hasSuffix(w, "z"):
		return w[:len(w)-1]
	case measure(w) == 1 && endsCVC(w):
		return append(w, 'e')
	}
	return w
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w[:len(w)-1]) {
		w[len(w)-1] = 'i' // in place: w is Stem's private buffer
	}
	return w
}

var step2Rules = []struct{ s, r string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
	{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
	{"alli", "al"}, {"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"},
	{"ization", "ize"}, {"ation", "ate"}, {"ator", "ate"},
	{"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"},
	{"biliti", "ble"},
}

func step2(w []byte) []byte {
	for _, rule := range step2Rules {
		if hasSuffix(w, rule.s) {
			out, _ := replaceIf(w, rule.s, rule.r, 0)
			return out
		}
	}
	return w
}

var step3Rules = []struct{ s, r string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, rule := range step3Rules {
		if hasSuffix(w, rule.s) {
			out, _ := replaceIf(w, rule.s, rule.r, 0)
			return out
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive",
	"ize",
}

func step4(w []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(w, s) {
			continue
		}
		stem := w[:len(w)-len(s)]
		if s == "ion" {
			if len(stem) > 0 && (stem[len(stem)-1] == 's' || stem[len(stem)-1] == 't') && measure(stem) > 1 {
				return stem
			}
			return w
		}
		if measure(stem) > 1 {
			return stem
		}
		return w
	}
	return w
}

func step5a(w []byte) []byte {
	if hasSuffix(w, "e") {
		stem := w[:len(w)-1]
		m := measure(stem)
		if m > 1 || (m == 1 && !endsCVC(stem)) {
			return stem
		}
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w) > 1 && endsDoubleCons(w) && strings.HasSuffix(string(w), "ll") {
		return w[:len(w)-1]
	}
	return w
}
