package text

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzTokenize: no panic, tokens are lowercase, and tokens contain no
// separator characters.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"", "Hello, World!", "don't stop", "touch-screen", "3.5 stars",
		"ünïcödé rev1ew", "a-", "-a", "''", "日本語のレビュー", "a\x00b",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				t.Fatal("empty token")
			}
			if tok != strings.ToLower(tok) {
				t.Fatalf("token %q not lowercase", tok)
			}
			for _, r := range tok {
				if unicode.IsSpace(r) || r == '.' || r == ',' || r == '!' {
					t.Fatalf("token %q contains separator", tok)
				}
			}
		}
	})
}

// FuzzSplitSentences: no panic, output pieces are trimmed and
// non-empty, and every non-space rune of the input appears in order in
// the concatenated output.
func FuzzSplitSentences(f *testing.F) {
	for _, seed := range []string{
		"", "One. Two!", "Dr. Smith is great.", "3.5 stars...",
		"Really?! Yes.", "line\nbreak", "…", ". . .",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		parts := SplitSentences(s)
		for _, p := range parts {
			if p == "" || strings.TrimSpace(p) != p {
				t.Fatalf("untrimmed or empty sentence %q", p)
			}
		}
		// Content preservation: non-space runes survive in order.
		var want, got []rune
		for _, r := range s {
			if !unicode.IsSpace(r) {
				want = append(want, r)
			}
		}
		for _, p := range parts {
			for _, r := range p {
				if !unicode.IsSpace(r) {
					got = append(got, r)
				}
			}
		}
		if string(want) != string(got) {
			t.Fatalf("content changed:\n in: %q\nout: %q", string(want), string(got))
		}
	})
}

// FuzzStem: no panic, output non-longer than input for ASCII words,
// and ≤2-rune words pass through unchanged.
func FuzzStem(f *testing.F) {
	for _, seed := range []string{
		"", "a", "running", "caresses", "sky", "yyyy", "ss", "ies",
		"agreed", "controlling", "ational",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		out := Stem(s)
		if len(s) <= 2 && out != s {
			t.Fatalf("short word changed: %q → %q", s, out)
		}
		if len(out) > len(s)+1 {
			// Porter may add back an 'e' (step 1b), never more.
			t.Fatalf("stem grew: %q → %q", s, out)
		}
	})
}
