// Package text provides the text-processing primitives the extraction
// pipeline and the baseline summarizers share: tokenization, sentence
// splitting, stopwords, Porter stemming and TF-IDF vectorization.
package text

import (
	"strings"
	"unicode"
)

// Tokenize lowercases s and splits it into word tokens. Letters and
// digits are kept; an apostrophe is kept when surrounded by letters
// ("don't"), as is an internal hyphen ("touch-screen" stays one
// token); everything else separates tokens.
//
// Pure-ASCII input (the overwhelmingly common case for review text)
// takes a byte-wise fast path that slices tokens straight out of s —
// no []rune conversion, no per-rune builder writes, and zero
// allocations per token unless the token contains an uppercase letter.
// Any non-ASCII byte falls back to the rune-exact path; both paths
// produce identical output on ASCII input.
func Tokenize(s string) []string {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return tokenizeRunes(s)
		}
	}
	return tokenizeASCII(s)
}

func isASCIILetter(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isASCIIAlnum(c byte) bool {
	return isASCIILetter(c) || (c >= '0' && c <= '9')
}

// tokenizeASCII is the byte-wise fast path. Tokens with no uppercase
// letters are substrings of s (alloc-free); others are lowered through
// a single reused buffer.
func tokenizeASCII(s string) []string {
	var tokens []string // lazily sized on first flush; nil when no tokens
	var buf []byte      // lazily sized; reused across uppercase tokens
	start := -1         // current token start in s; -1 when between tokens
	hasUpper := false
	flush := func(end int) {
		if start < 0 {
			return
		}
		if tokens == nil {
			tokens = make([]string, 0, len(s)/6+1)
		}
		if hasUpper {
			buf = buf[:0]
			for k := start; k < end; k++ {
				c := s[k]
				if c >= 'A' && c <= 'Z' {
					c |= 0x20
				}
				buf = append(buf, c)
			}
			tokens = append(tokens, string(buf))
		} else {
			tokens = append(tokens, s[start:end])
		}
		start = -1
		hasUpper = false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case isASCIIAlnum(c):
			if start < 0 {
				start = i
			}
			if c >= 'A' && c <= 'Z' {
				hasUpper = true
			}
		case (c == '\'' || c == '-') && start >= 0 && i+1 < len(s) && isASCIILetter(s[i+1]):
			// Internal apostrophe/hyphen: stays part of the token.
		default:
			flush(i)
		}
	}
	flush(len(s))
	return tokens
}

// tokenizeRunes is the rune-exact reference path, used whenever the
// input contains a non-ASCII byte.
func tokenizeRunes(s string) []string {
	var tokens []string
	var cur strings.Builder
	runes := []rune(s)
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, cur.String())
			cur.Reset()
		}
	}
	for i, r := range runes {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			cur.WriteRune(unicode.ToLower(r))
		case (r == '\'' || r == '-') && cur.Len() > 0 && i+1 < len(runes) && unicode.IsLetter(runes[i+1]):
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// abbreviations that a period does not terminate a sentence after.
var abbreviations = map[string]bool{
	"dr": true, "mr": true, "mrs": true, "ms": true, "prof": true,
	"st": true, "jr": true, "sr": true, "vs": true, "etc": true,
	"e.g": true, "i.e": true, "inc": true, "ltd": true, "co": true,
	"approx": true, "dept": true, "apt": true, "no": true, "vol": true,
}

// SplitSentences splits raw review text into sentences. It terminates
// on '.', '!' and '?' unless the period follows a known abbreviation,
// a single capital letter (an initial), or sits between digits (a
// decimal number). Newlines also terminate sentences, which matches
// how review sites render paragraphs.
//
// Pure-ASCII input takes a byte-wise fast path whose emitted sentences
// are trimmed substrings of s — the only allocations are the result
// slice's growth. Non-ASCII input falls back to the rune-exact path;
// both produce identical output on ASCII input.
func SplitSentences(s string) []string {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return splitSentencesRunes(s)
		}
	}
	return splitSentencesASCII(s)
}

func splitSentencesASCII(s string) []string {
	var out []string
	start := 0
	emit := func(end int) {
		seg := strings.TrimSpace(s[start:end])
		if seg != "" {
			out = append(out, seg)
		}
		start = end
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\n':
			emit(i + 1)
		case '!', '?':
			// Absorb runs like "!!" or "?!".
			j := i
			for j+1 < len(s) && (s[j+1] == '!' || s[j+1] == '?') {
				j++
			}
			emit(j + 1)
			i = j
		case '.':
			// Decimal number: 3.5
			if i > 0 && i+1 < len(s) && isASCIIDigit(s[i-1]) && isASCIIDigit(s[i+1]) {
				continue
			}
			// Ellipsis: treat "..." as one terminator.
			j := i
			for j+1 < len(s) && s[j+1] == '.' {
				j++
			}
			word := trailingWordASCII(s[start:i])
			if j == i && (isAbbrevFold(word) || isInitialASCII(word)) {
				continue
			}
			emit(j + 1)
			i = j
		}
	}
	emit(len(s))
	return out
}

func isASCIIDigit(c byte) bool { return c >= '0' && c <= '9' }

// trailingWordASCII is trailingWord over a byte string: the word
// (letters and internal periods, for "e.g") immediately preceding the
// current position, with at most one trailing period stripped. The
// result is a substring of s — no allocation.
func trailingWordASCII(s string) string {
	i := len(s)
	for i > 0 && (isASCIILetter(s[i-1]) || s[i-1] == '.') {
		i--
	}
	w := s[i:]
	if strings.HasSuffix(w, ".") {
		w = w[:len(w)-1]
	}
	return w
}

// isAbbrevFold reports whether word case-insensitively matches a known
// abbreviation, without allocating (the lowercase copy lives on the
// stack and the map lookup's string conversion is compiler-elided).
func isAbbrevFold(word string) bool {
	const maxAbbrev = 8 // longest entry is "approx" (6)
	if len(word) > maxAbbrev {
		return false
	}
	var buf [maxAbbrev]byte
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c >= 'A' && c <= 'Z' {
			c |= 0x20
		}
		buf[i] = c
	}
	return abbreviations[string(buf[:len(word)])]
}

func isInitialASCII(word string) bool {
	return len(word) == 1 && word[0] >= 'A' && word[0] <= 'Z'
}

// splitSentencesRunes is the rune-exact reference path, used whenever
// the input contains a non-ASCII byte.
func splitSentencesRunes(s string) []string {
	var out []string
	runes := []rune(s)
	start := 0
	emit := func(end int) {
		seg := strings.TrimSpace(string(runes[start:end]))
		if seg != "" {
			out = append(out, seg)
		}
		start = end
	}
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		switch r {
		case '\n':
			emit(i + 1)
		case '!', '?':
			// Absorb runs like "!!" or "?!".
			j := i
			for j+1 < len(runes) && (runes[j+1] == '!' || runes[j+1] == '?') {
				j++
			}
			emit(j + 1)
			i = j
		case '.':
			// Decimal number: 3.5
			if i > 0 && i+1 < len(runes) && unicode.IsDigit(runes[i-1]) && unicode.IsDigit(runes[i+1]) {
				continue
			}
			// Ellipsis: treat "..." as one terminator.
			j := i
			for j+1 < len(runes) && runes[j+1] == '.' {
				j++
			}
			word := trailingWord(runes[start:i])
			if j == i && (abbreviations[strings.ToLower(word)] || isInitial(word)) {
				continue
			}
			emit(j + 1)
			i = j
		}
	}
	emit(len(runes))
	return out
}

// trailingWord returns the word immediately preceding the current
// position (letters and internal periods, for "e.g").
func trailingWord(runes []rune) string {
	end := len(runes)
	i := end
	for i > 0 && (unicode.IsLetter(runes[i-1]) || runes[i-1] == '.') {
		i--
	}
	return strings.TrimSuffix(string(runes[i:end]), ".")
}

func isInitial(word string) bool {
	r := []rune(word)
	return len(r) == 1 && unicode.IsUpper(r[0])
}

// stopwords is a compact English stopword list tuned for product and
// provider reviews (pronouns, determiners, auxiliaries, common
// prepositions). Sentiment-bearing words are intentionally absent.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "this": true, "that": true,
	"these": true, "those": true, "i": true, "me": true, "my": true,
	"mine": true, "we": true, "us": true, "our": true, "ours": true,
	"you": true, "your": true, "yours": true, "he": true, "him": true,
	"his": true, "she": true, "her": true, "hers": true, "it": true,
	"its": true, "they": true, "them": true, "their": true,
	"theirs": true, "what": true, "which": true, "who": true,
	"whom": true, "whose": true, "am": true, "is": true, "are": true,
	"was": true, "were": true, "be": true, "been": true, "being": true,
	"have": true, "has": true, "had": true, "having": true, "do": true,
	"does": true, "did": true, "doing": true, "will": true,
	"would": true, "shall": true, "should": true, "can": true,
	"could": true, "may": true, "might": true, "must": true, "of": true,
	"at": true, "by": true, "for": true, "with": true, "about": true,
	"against": true, "between": true, "into": true, "through": true,
	"during": true, "before": true, "after": true, "above": true,
	"below": true, "to": true, "from": true, "up": true, "down": true,
	"in": true, "out": true, "on": true, "off": true, "over": true,
	"under": true, "again": true, "further": true, "then": true,
	"once": true, "here": true, "there": true, "when": true,
	"where": true, "why": true, "how": true, "all": true, "any": true,
	"both": true, "each": true, "few": true, "more": true, "most": true,
	"other": true, "some": true, "such": true, "only": true,
	"own": true, "same": true, "so": true, "than": true, "too": true,
	"s": true, "t": true, "just": true, "don": true, "now": true,
	"and": true, "but": true, "if": true, "or": true, "because": true,
	"as": true, "until": true, "while": true, "also": true, "got": true,
	"get": true, "go": true, "went": true, "one": true, "two": true,
}

// IsStopword reports whether the (lowercased) token is a stopword.
func IsStopword(tok string) bool { return stopwords[tok] }

// RemoveStopwords filters a token slice in a new slice.
func RemoveStopwords(tokens []string) []string {
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if !stopwords[t] {
			out = append(out, t)
		}
	}
	return out
}
