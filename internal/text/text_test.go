package text

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"don't stop", []string{"don't", "stop"}},
		{"touch-screen phone", []string{"touch-screen", "phone"}},
		{"5.5 inch display", []string{"5", "5", "inch", "display"}},
		{"", nil},
		{"   ", nil},
		{"A+B", []string{"a", "b"}},
		{"trailing-", []string{"trailing"}},
		{"rock'", []string{"rock"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSplitSentences(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Great phone. Bad battery!", []string{"Great phone.", "Bad battery!"}},
		{"Dr. Smith is great. I recommend him.", []string{"Dr. Smith is great.", "I recommend him."}},
		{"It costs 3.5 dollars. Cheap!", []string{"It costs 3.5 dollars.", "Cheap!"}},
		{"Really?! Yes.", []string{"Really?!", "Yes."}},
		{"Wait... what. Ok", []string{"Wait...", "what.", "Ok"}},
		{"line one\nline two", []string{"line one", "line two"}},
		{"J. Doe was here.", []string{"J. Doe was here."}},
		{"", nil},
		{"no terminator", []string{"no terminator"}},
	}
	for _, c := range cases {
		if got := SplitSentences(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitSentences(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStopwords(t *testing.T) {
	if !IsStopword("the") || IsStopword("display") {
		t.Fatal("IsStopword wrong")
	}
	got := RemoveStopwords([]string{"the", "display", "is", "great"})
	if !reflect.DeepEqual(got, []string{"display", "great"}) {
		t.Fatalf("RemoveStopwords = %v", got)
	}
}

func TestPorterStemmerKnownPairs(t *testing.T) {
	// Classic vectors from Porter's paper and reference
	// implementations.
	cases := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWordsUnchanged(t *testing.T) {
	for _, w := range []string{"", "a", "is", "ox"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestQuickStemIdempotentEnough(t *testing.T) {
	// Stemming the review-domain vocabulary twice equals stemming once
	// for the overwhelming majority of words; check a fixed vocabulary
	// rather than random strings (Porter is not idempotent on
	// adversarial inputs, and neither is the reference algorithm).
	words := []string{
		"batteries", "screens", "charging", "displays", "doctors",
		"recommended", "excellent", "disappointed", "amazing",
		"waiting", "experience", "friendly",
		"knowledgeable", "comfortable", "helpful", "listening",
	}
	for _, w := range words {
		once := Stem(w)
		twice := Stem(once)
		if once != twice {
			t.Errorf("Stem not stable on %q: %q → %q", w, once, twice)
		}
	}
}

func TestVectorizerTFIDF(t *testing.T) {
	corpus := [][]string{
		{"great", "screen", "great"},
		{"bad", "battery"},
		{"screen", "battery"},
	}
	v := NewVectorizer(corpus, VectorizerOptions{})
	if v.VocabSize() != 4 {
		t.Fatalf("VocabSize = %d, want 4", v.VocabSize())
	}
	vec := v.Transform([]string{"great", "great", "unknown"})
	if len(vec.Idx) != 1 {
		t.Fatalf("Transform kept %d terms, want 1", len(vec.Idx))
	}
	// tf = 2, idf = ln(4/2)+1.
	want := 2 * (math.Log(4.0/2.0) + 1)
	if math.Abs(vec.Val[0]-want) > 1e-12 {
		t.Fatalf("tfidf = %v, want %v", vec.Val[0], want)
	}
}

func TestVectorizerMinDocFreq(t *testing.T) {
	corpus := [][]string{{"common", "rare"}, {"common"}}
	v := NewVectorizer(corpus, VectorizerOptions{MinDocFreq: 2})
	if v.VocabSize() != 1 {
		t.Fatalf("VocabSize = %d, want 1", v.VocabSize())
	}
	if vec := v.Transform([]string{"rare"}); len(vec.Idx) != 0 {
		t.Fatal("dropped term leaked through Transform")
	}
}

func TestVectorizerStemAndStopwords(t *testing.T) {
	corpus := [][]string{{"the", "batteries", "are", "failing"}}
	v := NewVectorizer(corpus, VectorizerOptions{Stem: true, DropStopwords: true})
	if v.VocabSize() != 2 { // batteri, fail
		t.Fatalf("VocabSize = %d, want 2", v.VocabSize())
	}
	vec := v.Transform([]string{"battery", "fails", "the"})
	if len(vec.Idx) != 2 {
		t.Fatalf("stemmed lookup failed: %v", vec)
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := SparseVec{Idx: []int32{0, 2}, Val: []float64{1, 1}}
	b := SparseVec{Idx: []int32{0, 1}, Val: []float64{1, 1}}
	if got := CosineSimilarity(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("cos = %v, want 0.5", got)
	}
	if got := CosineSimilarity(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self cos = %v, want 1", got)
	}
	empty := SparseVec{}
	if CosineSimilarity(a, empty) != 0 {
		t.Fatal("cos with empty must be 0")
	}
}

func TestQuickCosineBounds(t *testing.T) {
	clamp := func(v float64) float64 {
		// Keep magnitudes sane so the dot product cannot overflow.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Remainder(v, 1e6)
	}
	f := func(av, bv []float64) bool {
		a := SparseVec{}
		for i, v := range av {
			if v = clamp(v); v != 0 {
				a.Idx = append(a.Idx, int32(i))
				a.Val = append(a.Val, v)
			}
		}
		b := SparseVec{}
		for i, v := range bv {
			if v = clamp(v); v != 0 {
				b.Idx = append(b.Idx, int32(i))
				b.Val = append(b.Val, v)
			}
		}
		c := CosineSimilarity(a, b)
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWordOverlap(t *testing.T) {
	a := []string{"the", "screen", "is", "great"}
	b := []string{"great", "screen", "indeed"}
	got := WordOverlap(a, b, false, true)
	// After stopword removal: {screen, great} vs {great, screen,
	// indeed} → 2 shared / (ln 2 + ln 3).
	want := 2 / (math.Log(2) + math.Log(3))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("WordOverlap = %v, want %v", got, want)
	}
	if WordOverlap([]string{"one"}, b, false, false) != 0 {
		t.Fatal("short sentence must yield 0")
	}
	if WordOverlap(a, []string{"nothing", "shared", "here"}, false, true) != 0 {
		t.Fatal("disjoint sentences must yield 0")
	}
}
