package ontoreg

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"osars/internal/ontology"
)

// randomDAG builds a random rooted multi-parent DAG with n concepts.
// Every concept beyond the root links to 1-3 earlier concepts, so the
// graph is acyclic and single-rooted by construction but exercises
// shared subtrees and diamond shapes.
func randomDAG(t *testing.T, rng *rand.Rand, n int) *ontology.Ontology {
	t.Helper()
	var b ontology.Builder
	ids := make([]ontology.ConceptID, 0, n)
	ids = append(ids, b.AddConcept("root", "device"))
	for i := 1; i < n; i++ {
		var syns []string
		if rng.Intn(2) == 0 {
			syns = append(syns, fmt.Sprintf("syn-%d", i))
		}
		id := b.AddConcept(fmt.Sprintf("concept-%d", i), syns...)
		parents := 1 + rng.Intn(3)
		for p := 0; p < parents; p++ {
			if err := b.AddEdge(ids[rng.Intn(len(ids))], id); err != nil {
				t.Fatal(err)
			}
		}
		ids = append(ids, id)
	}
	ont, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ont
}

func randomLexicon(rng *rand.Rand) map[string]float64 {
	lex := make(map[string]float64)
	for i, n := 0, rng.Intn(20); i < n; i++ {
		// Quantized polarities so the JSON float round-trip is exact.
		lex[fmt.Sprintf("word-%d", rng.Intn(100))] = float64(rng.Intn(21)-10) / 10
	}
	return lex
}

// TestRoundTripRandomDAGs is the codec property test: for random
// multi-parent DAGs and lexicons, Encode→Decode must reproduce the
// entry exactly — same version, same canonical payload, same graph
// shape — and decoding must be idempotent.
func TestRoundTripRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 50; iter++ {
		ont := randomDAG(t, rng, 2+rng.Intn(60))
		lex := randomLexicon(rng)
		eps := float64(1+rng.Intn(10)) / 10
		e, err := NewEntry("dom", ont, lex, eps)
		if err != nil {
			t.Fatalf("iter %d: NewEntry: %v", iter, err)
		}
		got, err := Decode(e.Payload())
		if err != nil {
			t.Fatalf("iter %d: Decode: %v", iter, err)
		}
		if got.Version != e.Version {
			t.Fatalf("iter %d: version changed across round trip: %s -> %s", iter, e.Version, got.Version)
		}
		if !bytes.Equal(got.Payload(), e.Payload()) {
			t.Fatalf("iter %d: canonical payload not stable across round trip", iter)
		}
		if got.Name != e.Name || got.Epsilon != e.Epsilon {
			t.Fatalf("iter %d: identity changed: %q ε=%v -> %q ε=%v", iter, e.Name, e.Epsilon, got.Name, got.Epsilon)
		}
		if got.Ontology.Len() != ont.Len() || got.Ontology.NumEdges() != ont.NumEdges() ||
			got.Ontology.MaxDepth() != ont.MaxDepth() {
			t.Fatalf("iter %d: graph shape changed: %v -> %v", iter, ont, got.Ontology)
		}
		if len(got.Lexicon) != len(lex) {
			t.Fatalf("iter %d: lexicon size changed: %d -> %d", iter, len(lex), len(got.Lexicon))
		}
		for w, v := range lex {
			if got.Lexicon[w] != v {
				t.Fatalf("iter %d: lexicon[%q] = %v, want %v", iter, w, got.Lexicon[w], v)
			}
		}
	}
}

// TestVersionIgnoresFormatting: the version hashes the CANONICAL
// encoding, so whitespace and field order in the uploaded file must
// not change it — and any semantic change must.
func TestVersionIgnoresFormatting(t *testing.T) {
	ont := randomDAG(t, rand.New(rand.NewSource(7)), 20)
	e, err := NewEntry("phone", ont, map[string]float64{"great": 0.9}, 0.5)
	if err != nil {
		t.Fatal(err)
	}

	var indented bytes.Buffer
	if err := json.Indent(&indented, e.Payload(), "", "    "); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(indented.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != e.Version {
		t.Fatalf("re-indented upload changed the version: %s -> %s", e.Version, got.Version)
	}

	// Field order: rebuild the top-level object in a different key order.
	var m map[string]json.RawMessage
	if err := json.Unmarshal(e.Payload(), &m); err != nil {
		t.Fatal(err)
	}
	reordered := fmt.Sprintf(`{"lexicon":%s,"ontology":%s,"epsilon":%s,"name":%s,"schema":%s}`,
		m["lexicon"], m["ontology"], m["epsilon"], m["name"], m["schema"])
	got2, err := Decode([]byte(reordered))
	if err != nil {
		t.Fatal(err)
	}
	if got2.Version != e.Version {
		t.Fatalf("reordered upload changed the version: %s -> %s", e.Version, got2.Version)
	}

	// Semantic changes must move the version.
	if e2, err := NewEntry("phone", ont, map[string]float64{"great": 0.8}, 0.5); err != nil || e2.Version == e.Version {
		t.Fatalf("lexicon change did not move the version (err=%v)", err)
	}
	if e3, err := NewEntry("phone", ont, map[string]float64{"great": 0.9}, 0.7); err != nil || e3.Version == e.Version {
		t.Fatalf("epsilon change did not move the version (err=%v)", err)
	}
}

func entryDoc(mutate func(m map[string]any)) []byte {
	m := map[string]any{
		"schema":  Schema,
		"name":    "dom",
		"epsilon": 0.5,
		"ontology": map[string]any{
			"concepts": []map[string]any{
				{"name": "root"},
				{"name": "screen", "parents": []int{0}},
			},
		},
	}
	if mutate != nil {
		mutate(m)
	}
	data, err := json.Marshal(m)
	if err != nil {
		panic(err)
	}
	return data
}

func TestDecodeRejections(t *testing.T) {
	cases := []struct {
		name    string
		data    []byte
		wantSub string
	}{
		{"not json", []byte("{torn"), "parse entry"},
		{"wrong schema", entryDoc(func(m map[string]any) { m["schema"] = "osars-ontology/v0" }), "unknown entry schema"},
		{"missing schema", entryDoc(func(m map[string]any) { delete(m, "schema") }), "unknown entry schema"},
		{"bad name slash", entryDoc(func(m map[string]any) { m["name"] = "a/b" }), "invalid entry name"},
		{"bad name at", entryDoc(func(m map[string]any) { m["name"] = "a@b" }), "invalid entry name"},
		{"empty name", entryDoc(func(m map[string]any) { m["name"] = "" }), "invalid entry name"},
		{"long name", entryDoc(func(m map[string]any) { m["name"] = strings.Repeat("x", maxNameLen+1) }), "invalid entry name"},
		{"missing ontology", entryDoc(func(m map[string]any) { delete(m, "ontology") }), "ontology is required"},
		{"null ontology", entryDoc(func(m map[string]any) { m["ontology"] = nil }), "ontology is required"},
		{"negative epsilon", entryDoc(func(m map[string]any) { m["epsilon"] = -0.5 }), "epsilon must be positive"},
		{"lexicon out of range", entryDoc(func(m map[string]any) { m["lexicon"] = map[string]float64{"great": 2} }), "outside [-1, +1]"},
		{"lexicon empty word", entryDoc(func(m map[string]any) { m["lexicon"] = map[string]float64{"": 0.5} }), "empty word"},
		{"duplicate concept", entryDoc(func(m map[string]any) {
			m["ontology"] = map[string]any{"concepts": []map[string]any{
				{"name": "root"}, {"name": "root", "parents": []int{0}},
			}}
		}), "duplicate concept"},
		{"edge to unknown concept", entryDoc(func(m map[string]any) {
			m["ontology"] = map[string]any{"concepts": []map[string]any{
				{"name": "root"}, {"name": "screen", "parents": []int{5}},
			}}
		}), "unknown concept"},
		{"cycle", entryDoc(func(m map[string]any) {
			// root -> a -> b -> a: every non-root concept has a parent but
			// a and b form a cycle under the root.
			m["ontology"] = map[string]any{"concepts": []map[string]any{
				{"name": "root"},
				{"name": "a", "parents": []int{0, 2}},
				{"name": "b", "parents": []int{1}},
			}}
		}), "cycle"},
		{"multiple roots", entryDoc(func(m map[string]any) {
			m["ontology"] = map[string]any{"concepts": []map[string]any{
				{"name": "root"}, {"name": "other root"},
			}}
		}), "multiple roots"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.data)
			if err == nil {
				t.Fatalf("Decode accepted %s", tc.data)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestNewEntryDefaults(t *testing.T) {
	ont := randomDAG(t, rand.New(rand.NewSource(1)), 5)
	e, err := NewEntry("dom", ont, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Epsilon != DefaultEpsilon {
		t.Fatalf("epsilon 0 compiled to %v, want default %v", e.Epsilon, DefaultEpsilon)
	}
	if len(e.Version) != 16 {
		t.Fatalf("version %q is not 16 hex chars", e.Version)
	}
	again, err := NewEntry("dom", ont, nil, DefaultEpsilon)
	if err != nil {
		t.Fatal(err)
	}
	if again.Version != e.Version {
		t.Fatalf("identical entries got different versions: %s vs %s", e.Version, again.Version)
	}
	rt := e.Runtime()
	if rt.Name != "dom" || rt.Version != e.Version || rt.Metric.Ont != ont || rt.Pipeline == nil || len(rt.Payload) == 0 {
		t.Fatalf("compiled runtime = %+v", rt)
	}
}
