package ontoreg

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testEntry(t *testing.T, name string, seed int64, eps float64) *Entry {
	t.Helper()
	e, err := NewEntry(name, randomDAG(t, rand.New(rand.NewSource(seed)), 10), nil, eps)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRegistryRegisterLookupList(t *testing.T) {
	r := NewRegistry(RegistryOptions{})
	phoneV1 := testEntry(t, "phone", 1, 0.5)
	phoneV2 := testEntry(t, "phone", 1, 0.7) // same DAG, new ε → new version
	doctor := testEntry(t, "doctor", 2, 0.5)
	for _, e := range []*Entry{phoneV1, phoneV2, doctor} {
		if _, err := r.Register(e); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}

	// Bare name resolves to the latest registered version.
	if e, rt, ok := r.Lookup("phone"); !ok || e.Version != phoneV2.Version || rt.Version != phoneV2.Version {
		t.Fatalf("Lookup(phone) = %v ok=%v, want latest %s", e, ok, phoneV2.Version)
	}
	// name@version pins one.
	if e, _, ok := r.Lookup("phone@" + phoneV1.Version); !ok || e.Version != phoneV1.Version {
		t.Fatalf("Lookup(phone@%s) failed", phoneV1.Version)
	}
	if _, _, ok := r.Lookup("phone@nope"); ok {
		t.Fatal("Lookup resolved a bogus version")
	}
	if _, _, ok := r.Lookup("tablet"); ok {
		t.Fatal("Lookup resolved an unregistered name")
	}

	// Re-registering the identical entry is idempotent and keeps the
	// compiled runtime.
	rt1, err := r.Register(phoneV2)
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := r.Register(phoneV2)
	if err != nil {
		t.Fatal(err)
	}
	if rt1 != rt2 || r.Len() != 3 {
		t.Fatalf("re-register was not idempotent (len=%d)", r.Len())
	}

	list := r.List()
	if len(list) != 3 {
		t.Fatalf("List = %d rows, want 3", len(list))
	}
	if list[0].Name != "doctor" || list[1].Name != "phone" || list[2].Name != "phone" {
		t.Fatalf("List order = %v", list)
	}
	for _, info := range list {
		wantLatest := info.Version != phoneV1.Version
		if info.Latest != wantLatest {
			t.Fatalf("row %s@%s: Latest=%v, want %v", info.Name, info.Version, info.Latest, wantLatest)
		}
	}

	// Active marker follows SetActive.
	if r.Active() != nil {
		t.Fatal("fresh registry has an active runtime")
	}
	_, rt, _ := r.Lookup("doctor")
	r.SetActive(rt)
	for _, info := range r.List() {
		if info.Active != (info.Name == "doctor") {
			t.Fatalf("row %s@%s: Active=%v", info.Name, info.Version, info.Active)
		}
	}
}

func TestRegistryPersistAndLoadDir(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry(RegistryOptions{Dir: dir})
	phone := testEntry(t, "phone", 3, 0.5)
	doctor := testEntry(t, "doctor", 4, 0.6)
	if _, err := r.Register(phone); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(doctor); err != nil {
		t.Fatal(err)
	}

	// A fresh registry over the same directory restores both entries
	// with identical versions (the file holds the canonical encoding).
	r2 := NewRegistry(RegistryOptions{Dir: dir})
	n, err := r2.LoadDir()
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if n != 2 || r2.Len() != 2 {
		t.Fatalf("LoadDir loaded %d entries (len %d), want 2", n, r2.Len())
	}
	if e, _, ok := r2.Lookup("phone"); !ok || e.Version != phone.Version {
		t.Fatalf("reloaded phone = %v, want version %s", e, phone.Version)
	}
	if e, _, ok := r2.Lookup("doctor@" + doctor.Version); !ok || e.Epsilon != 0.6 {
		t.Fatalf("reloaded doctor = %v", e)
	}
}

// TestLoadDirTornFile: a torn or corrupt entry file is skipped and
// reported, every valid file still loads, and the active runtime is
// untouched — a bad upload can never take down what is serving.
func TestLoadDirTornFile(t *testing.T) {
	dir := t.TempDir()
	seed := NewRegistry(RegistryOptions{Dir: dir})
	good := testEntry(t, "phone", 5, 0.5)
	if _, err := seed.Register(good); err != nil {
		t.Fatal(err)
	}
	// Torn write: a valid payload truncated mid-file.
	torn := good.Payload()[:len(good.Payload())/2]
	if err := os.WriteFile(filepath.Join(dir, "torn.json"), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	// Structurally valid JSON that fails validation (cyclic DAG).
	bad := entryDoc(func(m map[string]any) {
		m["name"] = "cyclic"
		m["ontology"] = map[string]any{"concepts": []map[string]any{
			{"name": "root"},
			{"name": "a", "parents": []int{0, 2}},
			{"name": "b", "parents": []int{1}},
		}}
	})
	if err := os.WriteFile(filepath.Join(dir, "cyclic.json"), bad, 0o644); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry(RegistryOptions{Dir: dir})
	active := testEntry(t, "serving", 6, 0.5).Runtime()
	r.SetActive(active)

	n, err := r.LoadDir()
	if err == nil {
		t.Fatal("LoadDir swallowed the torn and invalid files")
	}
	if !strings.Contains(err.Error(), "torn.json") || !strings.Contains(err.Error(), "cyclic.json") {
		t.Fatalf("joined error %q does not name both bad files", err)
	}
	if n != 1 {
		t.Fatalf("loaded %d entries, want the 1 valid one", n)
	}
	if _, _, ok := r.Lookup("phone"); !ok {
		t.Fatal("valid entry did not survive the partial load")
	}
	if _, _, ok := r.Lookup("cyclic"); ok {
		t.Fatal("invalid entry was registered")
	}
	if r.Active() != active {
		t.Fatal("partial load disturbed the active runtime")
	}
}
