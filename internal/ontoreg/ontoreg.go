// Package ontoreg is the ontology-and-lexicon lifecycle subsystem:
// a JSON on-disk format bundling a concept DAG with a graded opinion
// lexicon and a sentiment threshold, content-hash versioning of those
// bundles, and a registry of named entries with an atomically swappable
// active runtime.
//
// Everything the paper's metric computes — pair distance (Def. 1),
// summary cost (Def. 2) — is defined RELATIVE to an ontology and a
// sentiment scale, and every annotated pair carries a ConceptID that is
// a dense index into one specific ontology. Swapping the ontology is
// therefore not a config reload: it changes the meaning of every cached
// summary and every stored annotation. This package gives that swap a
// safe shape:
//
//   - An Entry is the loadable unit: name + ε + ontology + lexicon,
//     validated on decode (cycles, duplicate concepts, unknown edge
//     targets and out-of-range polarities are rejected before anything
//     can be activated).
//   - The Version of an entry is a content hash over its canonical
//     encoding: two uploads with the same semantics get the same
//     version regardless of field order or whitespace, and the version
//     participates in summary-cache keys so a summary solved under one
//     ontology can never answer a request under another.
//   - A Runtime is the entry compiled for serving — metric, matcher,
//     extraction pipeline — built once per entry and shared behind an
//     atomic pointer; in-flight requests keep the runtime they started
//     with while new requests see the new one.
package ontoreg

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"osars/internal/extract"
	"osars/internal/model"
	"osars/internal/ontology"
	"osars/internal/sentiment"
)

// Schema identifies the entry file format.
const Schema = "osars-ontology/v1"

// DefaultEpsilon is the sentiment threshold used when an entry omits
// it (the paper's §5.3 elbow).
const DefaultEpsilon = 0.5

// maxNameLen bounds entry names (they become file names and URL path
// segments).
const maxNameLen = 100

// Entry is one validated ontology bundle: the unit the registry
// stores, the admin API uploads and the WAL logs on activation.
// Entries are immutable after construction.
type Entry struct {
	// Name identifies the entry in the registry ([a-zA-Z0-9._-]+).
	Name string
	// Epsilon is the Definition-1 sentiment threshold ε.
	Epsilon float64
	// Ontology is the validated concept DAG.
	Ontology *ontology.Ontology
	// Lexicon maps opinion words to prior polarities in [-1, +1].
	// Empty means the built-in lexicon.
	Lexicon map[string]float64
	// Version is the content hash of the canonical encoding (16 hex
	// chars): identical semantics → identical version.
	Version string

	payload []byte // canonical encoding, hashed into Version
}

// entryJSON is the on-disk / on-wire shape of an Entry.
type entryJSON struct {
	Schema   string             `json:"schema"`
	Name     string             `json:"name"`
	Epsilon  float64            `json:"epsilon"`
	Ontology *ontology.Ontology `json:"ontology"`
	Lexicon  map[string]float64 `json:"lexicon,omitempty"`
}

// entryProbe reads the cheap fields before the ontology is validated,
// so a wrong schema is reported as a schema error, not an ontology one.
type entryProbe struct {
	Schema   string             `json:"schema"`
	Name     string             `json:"name"`
	Epsilon  float64            `json:"epsilon"`
	Ontology json.RawMessage    `json:"ontology"`
	Lexicon  map[string]float64 `json:"lexicon"`
}

// validName reports whether the entry name is registry- and
// filesystem-safe: non-empty, ≤ maxNameLen, [a-zA-Z0-9._-] only (no
// path separators, no "@" — that is the name/version delimiter).
func validName(name string) bool {
	if name == "" || len(name) > maxNameLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// NewEntry validates and canonicalizes an in-process ontology bundle.
// epsilon 0 means DefaultEpsilon; a nil or empty lexicon means the
// built-in one.
func NewEntry(name string, ont *ontology.Ontology, lexicon map[string]float64, epsilon float64) (*Entry, error) {
	if !validName(name) {
		return nil, fmt.Errorf("ontoreg: invalid entry name %q (want 1-%d chars of [a-zA-Z0-9._-])", name, maxNameLen)
	}
	if ont == nil {
		return nil, fmt.Errorf("ontoreg: entry %q: ontology is required", name)
	}
	if epsilon == 0 {
		epsilon = DefaultEpsilon
	}
	if epsilon < 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return nil, fmt.Errorf("ontoreg: entry %q: epsilon must be positive and finite, got %v", name, epsilon)
	}
	for w, v := range lexicon {
		if w == "" {
			return nil, fmt.Errorf("ontoreg: entry %q: lexicon has an empty word", name)
		}
		if v < -1 || v > 1 || math.IsNaN(v) {
			return nil, fmt.Errorf("ontoreg: entry %q: lexicon word %q has polarity %v outside [-1, +1]", name, w, v)
		}
	}
	e := &Entry{Name: name, Epsilon: epsilon, Ontology: ont, Lexicon: lexicon}
	// Canonical encoding: encoding/json sorts map keys and the
	// ontology's MarshalJSON emits concepts in ID order, so semantically
	// identical entries byte-compare equal — the hash is a true content
	// version.
	payload, err := json.Marshal(entryJSON{
		Schema:   Schema,
		Name:     e.Name,
		Epsilon:  e.Epsilon,
		Ontology: e.Ontology,
		Lexicon:  e.Lexicon,
	})
	if err != nil {
		return nil, fmt.Errorf("ontoreg: encode entry %q: %w", name, err)
	}
	sum := sha256.Sum256(payload)
	e.payload = payload
	e.Version = hex.EncodeToString(sum[:8])
	return e, nil
}

// Decode parses and validates an entry file. Every structural error —
// wrong schema, bad name, cyclic or multi-root ontology, duplicate
// concept names, edges to unknown concepts, out-of-range polarities —
// is rejected here, so anything that makes it into a registry can be
// activated safely. The returned entry is re-canonicalized: its
// Version does not depend on the input's formatting.
func Decode(data []byte) (*Entry, error) {
	var probe entryProbe
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("ontoreg: parse entry: %w", err)
	}
	if probe.Schema != Schema {
		return nil, fmt.Errorf("ontoreg: unknown entry schema %q (want %q)", probe.Schema, Schema)
	}
	if len(probe.Ontology) == 0 || string(probe.Ontology) == "null" {
		return nil, fmt.Errorf("ontoreg: entry %q: ontology is required", probe.Name)
	}
	ont := new(ontology.Ontology)
	if err := json.Unmarshal(probe.Ontology, ont); err != nil {
		return nil, fmt.Errorf("ontoreg: entry %q: %w", probe.Name, err)
	}
	return NewEntry(probe.Name, ont, probe.Lexicon, probe.Epsilon)
}

// Payload returns the canonical encoding (what Version hashes, what
// the registry persists and what the WAL logs on activation). The
// returned bytes are shared and must not be mutated.
func (e *Entry) Payload() []byte { return e.payload }

// Runtime is an entry compiled for serving: the Definition-1/2 metric
// and the extraction pipeline, plus the identity needed for cache keys
// and WAL records. A Runtime is immutable and safe to share; the store
// publishes the active one behind an atomic pointer.
type Runtime struct {
	// Name and Version identify the entry this runtime was built from.
	// Config-born runtimes (ConfigRuntime) use "config" for both.
	Name    string
	Version string
	// Epsilon is the threshold baked into Metric.
	Epsilon float64
	// Metric is the pair-distance / summary-cost metric.
	Metric model.Metric
	// Pipeline annotates raw reviews under this ontology and lexicon.
	Pipeline *extract.Pipeline
	// Payload is the canonical entry encoding, logged to the WAL when
	// this runtime is activated on a durable store. Nil for runtimes
	// that cannot be serialized (custom estimators via ConfigRuntime) —
	// those can serve, but not be durably activated.
	Payload []byte
}

// Runtime compiles the entry: matcher over the entry's ontology,
// lexicon estimator over the entry's word table (built-in when empty).
func (e *Entry) Runtime() *Runtime {
	var est sentiment.Estimator = sentiment.Lexicon{Table: e.Lexicon}
	return &Runtime{
		Name:     e.Name,
		Version:  e.Version,
		Epsilon:  e.Epsilon,
		Metric:   model.Metric{Ont: e.Ontology, Epsilon: e.Epsilon},
		Pipeline: extract.NewPipeline(extract.NewMatcher(e.Ontology), est),
		Payload:  e.payload,
	}
}

// ConfigVersion is the Name/Version of runtimes built directly from an
// externally constructed metric + pipeline (no entry to hash).
const ConfigVersion = "config"

// ConfigRuntime wraps an externally built metric and pipeline as a
// runtime. It serves like any other but carries no payload, so a
// durable store refuses to activate it — use a registry entry for
// that.
func ConfigRuntime(m model.Metric, p *extract.Pipeline) *Runtime {
	return &Runtime{
		Name:     ConfigVersion,
		Version:  ConfigVersion,
		Epsilon:  m.Epsilon,
		Metric:   m,
		Pipeline: p,
	}
}
