// Registry of named, versioned ontology entries with optional
// directory persistence and an atomically readable active runtime.
package ontoreg

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"osars/internal/obs"
)

// RegistryOptions configures a Registry.
type RegistryOptions struct {
	// Dir, when non-empty, persists every registered entry as
	// <Dir>/<name>.json (atomic temp+rename) and lets LoadDir restore
	// the registry at boot. Empty keeps the registry in memory.
	Dir string
	// Obs, when non-nil, registers the lifecycle instruments (entry
	// gauge, upload/load-error counters, reload count + latency, the
	// active-version info gauge).
	Obs *obs.Registry
}

// Registry holds named entries, each addressable as "name" (latest
// upload wins) or "name@version" (every version registered stays
// addressable). Runtimes are compiled eagerly on Register, so
// activation is a pointer swap, not a matcher build. Safe for
// concurrent use.
type Registry struct {
	mu       sync.Mutex
	latest   map[string]*Entry   // by name: most recently registered
	byVer    map[string]*Entry   // by "name@version"
	runtimes map[string]*Runtime // by "name@version", built on Register
	dir      string

	active atomic.Pointer[Runtime]

	m regMetrics
}

// regMetrics is the registry's interned instruments; the zero value
// (nil instruments) is free to record into.
type regMetrics struct {
	entries       *obs.Gauge
	uploads       *obs.Counter
	loadErrors    *obs.Counter
	reloads       *obs.Counter
	reloadSeconds *obs.Histogram
	activeInfo    *obs.GaugeVec
	// prevActive is the last info-gauge child set to 1; cleared to 0 on
	// the next activation. Guarded by mu.
	prevActive *obs.Gauge
}

// NewRegistry builds an empty registry. Call LoadDir afterwards to
// restore a persisted one.
func NewRegistry(opts RegistryOptions) *Registry {
	r := &Registry{
		latest:   make(map[string]*Entry),
		byVer:    make(map[string]*Entry),
		runtimes: make(map[string]*Runtime),
		dir:      opts.Dir,
	}
	if reg := opts.Obs; reg != nil {
		r.m = regMetrics{
			entries: reg.Gauge("osars_onto_entries",
				"Distinct (name, version) ontology entries in the registry."),
			uploads: reg.Counter("osars_onto_uploads_total",
				"Ontology entries registered (uploads plus boot-time dir loads)."),
			loadErrors: reg.Counter("osars_onto_load_errors_total",
				"Entry files that failed to decode or validate (torn writes, schema errors)."),
			reloads: reg.Counter("osars_onto_reloads_total",
				"Ontology activations (hot swaps of the active runtime)."),
			reloadSeconds: reg.Histogram("osars_onto_reload_seconds",
				"Activation latency in seconds (lookup through store swap).", nil),
			activeInfo: reg.GaugeVec("osars_onto_active_info",
				"1 for the active ontology's (name, version) label pair, 0 for previously active ones.",
				"name", "version"),
		}
	}
	return r
}

// Dir returns the persistence directory ("" when memory-only).
func (r *Registry) Dir() string { return r.dir }

// versionKey joins a name and version into the byVer map key.
func versionKey(name, version string) string { return name + "@" + version }

// Register validates nothing (the entry was validated at construction)
// but compiles its runtime, indexes it under both its name and its
// name@version, and — when the registry has a directory — persists the
// canonical encoding as <dir>/<name>.json. Re-registering an identical
// entry is an idempotent no-op. Returns the entry's compiled runtime.
func (r *Registry) Register(e *Entry) (*Runtime, error) {
	return r.register(e, true)
}

func (r *Registry) register(e *Entry, persist bool) (*Runtime, error) {
	if e == nil {
		return nil, errors.New("ontoreg: Register(nil)")
	}
	key := versionKey(e.Name, e.Version)
	r.mu.Lock()
	rt, known := r.runtimes[key]
	if !known {
		rt = e.Runtime()
		r.runtimes[key] = rt
		r.byVer[key] = e
	}
	r.latest[e.Name] = e
	n := len(r.byVer)
	r.mu.Unlock()
	r.m.entries.Set(int64(n))
	if !known {
		r.m.uploads.Inc()
	}
	if persist && r.dir != "" {
		if err := r.save(e); err != nil {
			return rt, fmt.Errorf("ontoreg: persist entry %q: %w", e.Name, err)
		}
	}
	return rt, nil
}

// save writes the entry's canonical encoding atomically: a torn write
// can only ever leave a stale complete file or a dangling temp file,
// never a half-written <name>.json.
func (r *Registry) save(e *Entry) error {
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(r.dir, e.Name+".json")
	tmp, err := os.CreateTemp(r.dir, e.Name+"-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(e.payload, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadDir loads every *.json entry file from the registry's directory
// (sorted, so load order is deterministic). Files that fail to decode
// or validate — torn writes, schema mismatches, invalid DAGs — are
// skipped and reported in the joined error; everything else still
// loads, and the active runtime is never touched, so a bad upload or a
// torn file can not take down what is already serving. Returns the
// number of entries loaded.
func (r *Registry) LoadDir() (int, error) {
	if r.dir == "" {
		return 0, nil
	}
	dirents, err := os.ReadDir(r.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("ontoreg: read dir %s: %w", r.dir, err)
	}
	names := make([]string, 0, len(dirents))
	for _, de := range dirents {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		names = append(names, de.Name())
	}
	sort.Strings(names)
	loaded := 0
	var errs []error
	for _, name := range names {
		path := filepath.Join(r.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			r.m.loadErrors.Inc()
			errs = append(errs, fmt.Errorf("%s: %w", path, err))
			continue
		}
		e, err := Decode(data)
		if err != nil {
			r.m.loadErrors.Inc()
			errs = append(errs, fmt.Errorf("%s: %w", path, err))
			continue
		}
		if _, err := r.register(e, false); err != nil {
			errs = append(errs, err)
			continue
		}
		loaded++
	}
	return loaded, errors.Join(errs...)
}

// Lookup resolves "name" (latest registered) or "name@version" to its
// entry and compiled runtime.
func (r *Registry) Lookup(ref string) (*Entry, *Runtime, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var e *Entry
	if strings.Contains(ref, "@") {
		e = r.byVer[ref]
	} else {
		e = r.latest[ref]
	}
	if e == nil {
		return nil, nil, false
	}
	return e, r.runtimes[versionKey(e.Name, e.Version)], true
}

// Len returns the number of distinct (name, version) entries.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byVer)
}

// EntryInfo is one registry entry's listing row.
type EntryInfo struct {
	Name         string  `json:"name"`
	Version      string  `json:"version"`
	Concepts     int     `json:"concepts"`
	Edges        int     `json:"edges"`
	MaxDepth     int     `json:"max_depth"`
	LexiconWords int     `json:"lexicon_words"`
	Epsilon      float64 `json:"epsilon"`
	// Latest marks the version a bare-name lookup resolves to.
	Latest bool `json:"latest"`
	// Active marks the registry's active runtime (SetActive).
	Active bool `json:"active,omitempty"`
}

// List returns every (name, version) entry, sorted by name then
// version.
func (r *Registry) List() []EntryInfo {
	act := r.active.Load()
	r.mu.Lock()
	out := make([]EntryInfo, 0, len(r.byVer))
	for _, e := range r.byVer {
		info := EntryInfo{
			Name:         e.Name,
			Version:      e.Version,
			Concepts:     e.Ontology.Len(),
			Edges:        e.Ontology.NumEdges(),
			MaxDepth:     e.Ontology.MaxDepth(),
			LexiconWords: len(e.Lexicon),
			Epsilon:      e.Epsilon,
			Latest:       r.latest[e.Name] == e,
		}
		if act != nil && act.Name == e.Name && act.Version == e.Version {
			info.Active = true
		}
		out = append(out, info)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version < out[j].Version
	})
	return out
}

// Active returns the registry's active runtime (nil until SetActive).
// On serving nodes the STORE's active runtime is authoritative — it is
// the one recovered from the WAL and advanced by replication; the
// registry's pointer tracks what this node last activated locally.
func (r *Registry) Active() *Runtime { return r.active.Load() }

// SetActive records rt as the registry's active runtime.
func (r *Registry) SetActive(rt *Runtime) { r.active.Store(rt) }

// RecordActivation instruments one completed activation: reload count,
// latency, and the active-version info gauge (the previous version's
// child drops to 0 so a scrape always shows exactly one live pair).
func (r *Registry) RecordActivation(rt *Runtime, d time.Duration) {
	r.m.reloads.Inc()
	r.m.reloadSeconds.Observe(d.Seconds())
	if r.m.activeInfo == nil {
		return
	}
	r.mu.Lock()
	if r.m.prevActive != nil {
		r.m.prevActive.Set(0)
	}
	g := r.m.activeInfo.With(rt.Name, rt.Version)
	g.Set(1)
	r.m.prevActive = g
	r.mu.Unlock()
}
