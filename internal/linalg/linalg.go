// Package linalg provides the small dense linear-algebra kernel the
// baselines and the sentiment estimator need: matrices, one-sided
// Jacobi SVD (for the LSA summarizer), PageRank power iteration (for
// TextRank/LexRank) and a conjugate-gradient solver (for ridge
// regression). Everything is stdlib-only and deterministic.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: NewMatrix(%d, %d)", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// MulVec computes dst = M·x. dst must have length Rows, x length Cols.
func (m *Matrix) MulVec(x, dst []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("linalg: MulVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// Mul returns M·B as a new matrix.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic("linalg: Mul dimension mismatch")
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for kk, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.Row(kk)
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out
}

// Dot returns x·y.
func Dot(x, y []float64) float64 {
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns ‖x‖₂.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Axpy computes y += a·x in place.
func Axpy(a float64, x, y []float64) {
	for i, v := range x {
		y[i] += a * v
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// SVDResult holds a thin singular value decomposition A = U·diag(S)·Vᵀ
// with singular values sorted in descending order. U is m×r, V is n×r
// where r = min(m, n).
type SVDResult struct {
	U *Matrix
	S []float64
	V *Matrix
}

// SVD computes the thin SVD of A by one-sided Jacobi rotations
// (Hestenes method). It is O(mn²·sweeps) and intended for the modest
// term-sentence matrices of the LSA baseline, not for large-scale use.
func SVD(a *Matrix) *SVDResult {
	transposed := false
	work := a.Clone()
	if work.Rows < work.Cols {
		work = work.T()
		transposed = true
	}
	m, n := work.Rows, work.Cols

	// Column-major copy for cache-friendly column ops.
	cols := make([][]float64, n)
	for j := 0; j < n; j++ {
		cols[j] = make([]float64, m)
		for i := 0; i < m; i++ {
			cols[j][i] = work.At(i, j)
		}
	}
	v := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		v.Set(j, j, 1)
	}

	const maxSweeps = 60
	const eps = 1e-12
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				alpha := Dot(cols[p], cols[p])
				beta := Dot(cols[q], cols[q])
				gamma := Dot(cols[p], cols[q])
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				off += gamma * gamma
				// Jacobi rotation zeroing the (p,q) inner product.
				zeta := (beta - alpha) / (2 * gamma)
				t := sign(zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					cp, cq := cols[p][i], cols[q][i]
					cols[p][i] = c*cp - s*cq
					cols[q][i] = s*cp + c*cq
				}
				for i := 0; i < n; i++ {
					vp, vq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if off < eps {
			break
		}
	}

	// Singular values and left vectors.
	s := make([]float64, n)
	u := NewMatrix(m, n)
	order := make([]int, n)
	for j := 0; j < n; j++ {
		s[j] = Norm2(cols[j])
		order[j] = j
	}
	// Sort descending by singular value (stable insertion sort: n is
	// small).
	for i := 1; i < n; i++ {
		for k := i; k > 0 && s[order[k]] > s[order[k-1]]; k-- {
			order[k], order[k-1] = order[k-1], order[k]
		}
	}
	sorted := make([]float64, n)
	vOut := NewMatrix(n, n)
	for rank, j := range order {
		sorted[rank] = s[j]
		if s[j] > 1e-300 {
			inv := 1 / s[j]
			for i := 0; i < m; i++ {
				u.Set(i, rank, cols[j][i]*inv)
			}
		}
		for i := 0; i < n; i++ {
			vOut.Set(i, rank, v.At(i, j))
		}
	}

	if transposed {
		// A = (U S Vᵀ)ᵀ of the transposed problem: swap U and V.
		return &SVDResult{U: vOut, S: sorted, V: u}
	}
	return &SVDResult{U: u, S: sorted, V: vOut}
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// PageRank runs power iteration on a weighted undirected (or directed)
// graph given as an adjacency matrix W, where W[i][j] ≥ 0 is the weight
// of the edge from i to j. It returns the stationary scores of the
// damped random walk used by TextRank and LexRank:
//
//	r_i = (1−d)/n + d·Σ_j W_ji·r_j / outWeight_j
//
// Dangling nodes (zero out-weight) distribute uniformly.
func PageRank(w *Matrix, damping, tol float64, maxIter int) []float64 {
	if w.Rows != w.Cols {
		panic("linalg: PageRank needs a square matrix")
	}
	n := w.Rows
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		row := w.Row(i)
		s := 0.0
		for _, v := range row {
			if v < 0 {
				panic("linalg: PageRank weights must be nonnegative")
			}
			s += v
		}
		out[i] = s
	}
	r := make([]float64, n)
	next := make([]float64, n)
	for i := range r {
		r[i] = 1 / float64(n)
	}
	for iter := 0; iter < maxIter; iter++ {
		base := (1 - damping) / float64(n)
		dangling := 0.0
		for j := 0; j < n; j++ {
			if out[j] == 0 {
				dangling += r[j]
			}
		}
		base += damping * dangling / float64(n)
		for i := range next {
			next[i] = base
		}
		for j := 0; j < n; j++ {
			if out[j] == 0 {
				continue
			}
			share := damping * r[j] / out[j]
			row := w.Row(j)
			for i, v := range row {
				if v != 0 {
					next[i] += share * v
				}
			}
		}
		diff := 0.0
		for i := range r {
			diff += math.Abs(next[i] - r[i])
		}
		r, next = next, r
		if diff < tol {
			break
		}
	}
	return r
}

// CG solves the symmetric positive-definite system A·x = b by the
// conjugate-gradient method, where apply computes dst = A·x without
// materializing A. It returns after maxIter iterations or when the
// residual norm falls below tol·‖b‖.
func CG(apply func(x, dst []float64), b []float64, tol float64, maxIter int) []float64 {
	n := len(b)
	x := make([]float64, n)
	r := append([]float64(nil), b...) // r = b - A·0
	p := append([]float64(nil), b...)
	ap := make([]float64, n)
	rs := Dot(r, r)
	bnorm := Norm2(b)
	if bnorm == 0 {
		return x
	}
	for iter := 0; iter < maxIter; iter++ {
		if math.Sqrt(rs) <= tol*bnorm {
			break
		}
		apply(p, ap)
		alpha := rs / Dot(p, ap)
		Axpy(alpha, p, x)
		Axpy(-alpha, ap, r)
		rsNew := Dot(r, r)
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return x
}
