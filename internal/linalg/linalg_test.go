package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 2)
	m.Add(1, 1, 3)
	if m.At(0, 2) != 2 || m.At(1, 1) != 3 {
		t.Fatal("Set/Add/At wrong")
	}
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 0) != 2 || tr.At(1, 1) != 3 {
		t.Fatal("transpose wrong")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestMulVecAndMul(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 0, -1}
	dst := make([]float64, 2)
	a.MulVec(x, dst)
	if dst[0] != -2 || dst[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", dst)
	}
	b := NewMatrix(3, 2)
	copy(b.Data, []float64{1, 0, 0, 1, 1, 1})
	c := a.Mul(b)
	want := []float64{4, 5, 10, 11}
	for i, v := range want {
		if math.Abs(c.Data[i]-v) > 1e-12 {
			t.Fatalf("Mul = %v, want %v", c.Data, want)
		}
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{3, 4}
	if Dot(x, x) != 25 || Norm2(x) != 5 {
		t.Fatal("Dot/Norm2 wrong")
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Fatalf("Scale = %v", y)
	}
}

func checkSVD(t *testing.T, a *Matrix) {
	t.Helper()
	res := SVD(a)
	r := len(res.S)
	if res.U.Rows != a.Rows || res.U.Cols != r || res.V.Rows != a.Cols || res.V.Cols != r {
		t.Fatalf("SVD shapes wrong: U %dx%d V %dx%d r %d", res.U.Rows, res.U.Cols, res.V.Rows, res.V.Cols, r)
	}
	// Singular values sorted descending and nonnegative.
	for i := 0; i < r; i++ {
		if res.S[i] < -1e-12 {
			t.Fatalf("negative singular value %v", res.S[i])
		}
		if i > 0 && res.S[i] > res.S[i-1]+1e-9 {
			t.Fatalf("singular values not sorted: %v", res.S)
		}
	}
	// Reconstruction: A ≈ U·diag(S)·Vᵀ.
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			s := 0.0
			for k := 0; k < r; k++ {
				s += res.U.At(i, k) * res.S[k] * res.V.At(j, k)
			}
			if math.Abs(s-a.At(i, j)) > 1e-7*(1+math.Abs(a.At(i, j))) {
				t.Fatalf("reconstruction (%d,%d) = %v, want %v", i, j, s, a.At(i, j))
			}
		}
	}
	// Orthonormal columns of V (always square n×r with r = min(m,n) ≤ n).
	for p := 0; p < r; p++ {
		for q := p; q < r; q++ {
			s := 0.0
			for i := 0; i < res.V.Rows; i++ {
				s += res.V.At(i, p) * res.V.At(i, q)
			}
			want := 0.0
			if p == q {
				want = 1
			}
			if math.Abs(s-want) > 1e-8 {
				t.Fatalf("VᵀV(%d,%d) = %v, want %v", p, q, s, want)
			}
		}
	}
}

func TestSVDKnown(t *testing.T) {
	// diag(3, 2) embedded in 2×2.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 3)
	a.Set(1, 1, 2)
	res := SVD(a)
	if math.Abs(res.S[0]-3) > 1e-10 || math.Abs(res.S[1]-2) > 1e-10 {
		t.Fatalf("S = %v, want [3 2]", res.S)
	}
	checkSVD(t, a)
}

func TestSVDTallAndWide(t *testing.T) {
	tall := NewMatrix(5, 3)
	rng := rand.New(rand.NewSource(1))
	for i := range tall.Data {
		tall.Data[i] = rng.NormFloat64()
	}
	checkSVD(t, tall)
	wide := tall.T()
	checkSVD(t, wide)
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: second singular value must be ~0.
	a := NewMatrix(3, 3)
	u := []float64{1, 2, 3}
	v := []float64{4, 5, 6}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, u[i]*v[j])
		}
	}
	res := SVD(a)
	if res.S[1] > 1e-8 || res.S[2] > 1e-8 {
		t.Fatalf("rank-1 matrix has S = %v", res.S)
	}
	checkSVD(t, a)
}

func TestQuickSVDReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(8)
		n := 1 + rng.Intn(8)
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = math.Round(rng.NormFloat64()*100) / 100
		}
		res := SVD(a)
		r := len(res.S)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < r; k++ {
					s += res.U.At(i, k) * res.S[k] * res.V.At(j, k)
				}
				if math.Abs(s-a.At(i, j)) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPageRankUniformOnSymmetric(t *testing.T) {
	// Complete graph with equal weights → uniform ranks.
	n := 4
	w := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				w.Set(i, j, 1)
			}
		}
	}
	r := PageRank(w, 0.85, 1e-12, 500)
	for i := 1; i < n; i++ {
		if math.Abs(r[i]-r[0]) > 1e-9 {
			t.Fatalf("ranks not uniform: %v", r)
		}
	}
	sum := 0.0
	for _, v := range r {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ranks sum to %v, want 1", sum)
	}
}

func TestPageRankHub(t *testing.T) {
	// Star: center 0 connected to 1,2,3. Center must rank highest.
	w := NewMatrix(4, 4)
	for i := 1; i < 4; i++ {
		w.Set(0, i, 1)
		w.Set(i, 0, 1)
	}
	r := PageRank(w, 0.85, 1e-12, 500)
	for i := 1; i < 4; i++ {
		if r[0] <= r[i] {
			t.Fatalf("hub rank %v not above leaf %v", r[0], r[i])
		}
	}
}

func TestPageRankDangling(t *testing.T) {
	// Node 1 has no out-edges; ranks must still sum to 1.
	w := NewMatrix(2, 2)
	w.Set(0, 1, 1)
	r := PageRank(w, 0.85, 1e-12, 500)
	if math.Abs(r[0]+r[1]-1) > 1e-9 {
		t.Fatalf("ranks sum to %v", r[0]+r[1])
	}
	if r[1] <= r[0] {
		t.Fatalf("sink should outrank source: %v", r)
	}
}

func TestPageRankEmptyAndPanics(t *testing.T) {
	if r := PageRank(NewMatrix(0, 0), 0.85, 1e-9, 10); r != nil {
		t.Fatal("empty graph should return nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-square")
		}
	}()
	PageRank(NewMatrix(2, 3), 0.85, 1e-9, 10)
}

func TestCGSolvesSPD(t *testing.T) {
	// A = [[4,1],[1,3]], b = [1,2] → x = (1/11, 7/11).
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{4, 1, 1, 3})
	apply := func(x, dst []float64) { a.MulVec(x, dst) }
	x := CG(apply, []float64{1, 2}, 1e-12, 100)
	if math.Abs(x[0]-1.0/11) > 1e-9 || math.Abs(x[1]-7.0/11) > 1e-9 {
		t.Fatalf("CG = %v, want (1/11, 7/11)", x)
	}
}

func TestCGZeroRHS(t *testing.T) {
	apply := func(x, dst []float64) { copy(dst, x) }
	x := CG(apply, []float64{0, 0, 0}, 1e-10, 10)
	for _, v := range x {
		if v != 0 {
			t.Fatalf("CG(0) = %v", x)
		}
	}
}

func TestQuickCGRandomSPD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		// A = BᵀB + I is SPD.
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		bt := b.T()
		a := bt.Mul(b)
		for i := 0; i < n; i++ {
			a.Add(i, i, 1)
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x := CG(func(v, dst []float64) { a.MulVec(v, dst) }, rhs, 1e-12, 20*n)
		// Check residual.
		res := make([]float64, n)
		a.MulVec(x, res)
		for i := range res {
			if math.Abs(res[i]-rhs[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
