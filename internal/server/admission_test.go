package server

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"osars"
	"osars/internal/dataset"
)

// TestLimiterFastPath pins that free slots admit immediately and
// release frees the slot.
func TestLimiterFastPath(t *testing.T) {
	l := newLimiter(2, 4, time.Second)
	var releases []func()
	for i := 0; i < 2; i++ {
		rel, v, _ := l.acquire(context.Background())
		if v != admitted {
			t.Fatalf("acquire %d: verdict %v", i, v)
		}
		releases = append(releases, rel)
	}
	if got := l.stats(); got.Inflight != 2 || got.Admitted != 2 {
		t.Fatalf("stats = %+v", got)
	}
	for _, rel := range releases {
		rel()
	}
	if got := l.stats(); got.Inflight != 0 {
		t.Fatalf("inflight after release = %d", got.Inflight)
	}
}

// TestLimiterQueueFullSheds pins immediate 429-class shedding once
// both the slots and the wait queue are saturated.
func TestLimiterQueueFullSheds(t *testing.T) {
	l := newLimiter(1, 1, time.Minute) // 1 slot, 1 queue seat
	rel, v, _ := l.acquire(context.Background())
	if v != admitted {
		t.Fatalf("first acquire verdict %v", v)
	}
	// Occupy the single queue seat with a goroutine that will wait.
	entered := make(chan struct{})
	done := make(chan verdict, 1)
	go func() {
		close(entered)
		_, v, _ := l.acquire(context.Background())
		done <- v
	}()
	<-entered
	// Busy-wait until the seat registers (the goroutine increments
	// queued before it blocks).
	for i := 0; l.queued.Load() == 0; i++ {
		if i > 1000 {
			t.Fatal("queued waiter never registered")
		}
		time.Sleep(time.Millisecond)
	}
	if _, v, _ := l.acquire(context.Background()); v != shedFull {
		t.Fatalf("overflow acquire verdict %v, want shedFull", v)
	}
	rel() // frees the slot → the queued waiter is admitted
	if v := <-done; v != admitted {
		t.Fatalf("queued waiter verdict %v, want admitted", v)
	}
	l.release()
	st := l.stats()
	if st.ShedQueueFull != 1 || st.QueueHighWater != 1 || st.Admitted != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestLimiterTimeoutAndCancel pins the two queue-eviction paths: the
// deadline and the request context.
func TestLimiterTimeoutAndCancel(t *testing.T) {
	l := newLimiter(1, 4, 20*time.Millisecond)
	rel, v, _ := l.acquire(context.Background())
	if v != admitted {
		t.Fatalf("verdict %v", v)
	}
	defer rel()
	if _, v, _ := l.acquire(context.Background()); v != shedTimeout {
		t.Fatalf("verdict %v, want shedTimeout", v)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	if _, v, _ := l.acquire(ctx); v != shedCanceled {
		t.Fatalf("verdict %v, want shedCanceled", v)
	}
	st := l.stats()
	if st.ShedTimeout != 1 || st.ShedCanceled != 1 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestNilLimiterUnlimited pins that an unconfigured class admits
// everything.
func TestNilLimiterUnlimited(t *testing.T) {
	var l *limiter
	for i := 0; i < 100; i++ {
		rel, v, _ := l.acquire(context.Background())
		if v != admitted {
			t.Fatalf("verdict %v", v)
		}
		rel()
	}
}

// admissionServer builds an in-memory store-backed server with a tiny
// solve budget.
func admissionServer(t *testing.T, cfg AdmissionConfig) *Server {
	t.Helper()
	sum, err := osars.New(osars.Config{Ontology: dataset.CellPhoneOntology()})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithStore(sum, sum.NewStore(osars.StoreOptions{Shards: 2}))
	srv.ConfigureAdmission(cfg)
	return srv
}

// TestServerShedsWith429RetryAfter saturates the solve class and pins
// the shed contract: 429, a Retry-After header, a JSON error body —
// never a hung or dropped connection.
func TestServerShedsWith429RetryAfter(t *testing.T) {
	srv := admissionServer(t, AdmissionConfig{
		MaxInflightSolves: 1,
		MaxQueue:          1,
		QueueWait:         10 * time.Millisecond,
	})
	if w := do(t, srv, http.MethodPut, "/v1/items/p1/reviews", AppendReviewsRequest{
		Reviews: []RawReview{{ID: "r1", Text: "The screen is excellent. The battery is awful."}},
	}); w.Code != http.StatusOK {
		t.Fatalf("append: %d %s", w.Code, w.Body.String())
	}
	// Hold the only solve slot directly, then hit the endpoint: the
	// request waits ≤ QueueWait and must then shed.
	rel, v, _ := srv.admission.solves.acquire(context.Background())
	if v != admitted {
		t.Fatalf("setup acquire verdict %v", v)
	}
	w := do(t, srv, http.MethodGet, "/v1/items/p1/summary?k=1", nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated solve: code %d body %s", w.Code, w.Body.String())
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	var er errorResponse
	decode(t, w, &er)
	if er.Error == "" {
		t.Fatal("429 without a JSON error body")
	}
	// Reads are a separate class: item stats must still be served
	// while the solve class is saturated.
	if w := do(t, srv, http.MethodGet, "/v1/items/p1", nil); w.Code != http.StatusOK {
		t.Fatalf("read while solves saturated: %d %s", w.Code, w.Body.String())
	}
	// And /v1/stats (never gated) must report the shed.
	w = do(t, srv, http.MethodGet, "/v1/stats", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("stats: %d", w.Code)
	}
	var stats StatsResponse
	decode(t, w, &stats)
	if stats.Admission.Solves.ShedTimeout != 1 {
		t.Fatalf("admission stats = %+v, want 1 shed", stats.Admission.Solves)
	}
	if stats.Store == nil || stats.Store.Shards != 2 || len(stats.Store.PerShard) != 2 {
		t.Fatalf("store stats missing shard breakdown: %+v", stats.Store)
	}
	rel()
	// Capacity restored: the same request now succeeds.
	if w := do(t, srv, http.MethodGet, "/v1/items/p1/summary?k=1", nil); w.Code != http.StatusOK {
		t.Fatalf("after release: %d %s", w.Code, w.Body.String())
	}
}

// TestServerAdmitsUnderConcurrency floods a tightly limited server
// and pins the invariant that every request gets exactly one of
// 200 or 429 — no hangs, no empty replies — and that at least one of
// each occurs under saturation.
func TestServerAdmitsUnderConcurrency(t *testing.T) {
	srv := admissionServer(t, AdmissionConfig{
		MaxInflightSolves: 1,
		MaxQueue:          2,
		QueueWait:         5 * time.Millisecond,
	})
	if w := do(t, srv, http.MethodPut, "/v1/items/p1/reviews", AppendReviewsRequest{
		Reviews: []RawReview{
			{ID: "r1", Text: "The screen is excellent. The battery is awful."},
			{ID: "r2", Text: "Amazing screen resolution! The battery life is terrible."},
		},
	}); w.Code != http.StatusOK {
		t.Fatalf("append: %d", w.Code)
	}
	// Occupy the slot so concurrent requests queue and shed
	// deterministically.
	rel, _, _ := srv.admission.solves.acquire(context.Background())
	const n = 16
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := do(t, srv, http.MethodGet, "/v1/items/p1/summary?k=1", nil)
			codes[i] = w.Code
		}(i)
	}
	wg.Wait()
	rel()
	shed := 0
	for i, c := range codes {
		if c != http.StatusTooManyRequests {
			t.Fatalf("request %d: code %d, want 429 while slot held", i, c)
		}
		shed++
	}
	if shed != n {
		t.Fatalf("shed %d of %d", shed, n)
	}
	// After release everything flows again.
	if w := do(t, srv, http.MethodGet, "/v1/items/p1/summary?k=1", nil); w.Code != http.StatusOK {
		t.Fatalf("post-saturation request: %d", w.Code)
	}
}
