// Package server exposes the summarizer as a small JSON-over-HTTP
// service, the deployment shape a review site would embed the library
// in. It is stdlib-only (net/http) and stateless: every request
// carries the item's raw reviews; annotation and selection run per
// request against the server's configured ontology.
//
// Endpoints:
//
//	GET  /healthz        → 200 "ok"
//	GET  /v1/ontology    → the configured ontology as JSON
//	POST /v1/summarize   → SummarizeRequest → SummarizeResponse
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"osars"
)

// SummarizeRequest is the POST /v1/summarize body.
type SummarizeRequest struct {
	ItemID   string      `json:"item_id"`
	ItemName string      `json:"item_name"`
	Reviews  []RawReview `json:"reviews"`
	// K is the summary size (required, ≥ 1).
	K int `json:"k"`
	// Granularity: "pairs", "sentences" (default) or "reviews".
	Granularity string `json:"granularity"`
	// Method: "greedy" (default), "rr", "ilp" or "local-search".
	Method string `json:"method"`
}

// RawReview is one review in a request.
type RawReview struct {
	ID     string  `json:"id"`
	Text   string  `json:"text"`
	Rating float64 `json:"rating"`
}

// SummarizeResponse is the POST /v1/summarize reply.
type SummarizeResponse struct {
	ItemID      string     `json:"item_id"`
	Granularity string     `json:"granularity"`
	Method      string     `json:"method"`
	Cost        float64    `json:"cost"`
	NumPairs    int        `json:"num_pairs"`
	Pairs       []PairJSON `json:"pairs,omitempty"`
	Sentences   []string   `json:"sentences,omitempty"`
	ReviewIDs   []string   `json:"review_ids,omitempty"`
	ElapsedMS   float64    `json:"elapsed_ms"`
}

// PairJSON renders a concept-sentiment pair with its concept name.
type PairJSON struct {
	Concept   string  `json:"concept"`
	Sentiment float64 `json:"sentiment"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

// Server handles the HTTP API around one Summarizer. Create with New;
// it implements http.Handler.
type Server struct {
	sum *osars.Summarizer
	mux *http.ServeMux
	// MaxReviews rejects oversized requests (default 10000).
	MaxReviews int
}

// New builds the handler.
func New(s *osars.Summarizer) *Server {
	srv := &Server{sum: s, mux: http.NewServeMux(), MaxReviews: 10000}
	srv.mux.HandleFunc("/healthz", srv.handleHealth)
	srv.mux.HandleFunc("/v1/ontology", srv.handleOntology)
	srv.mux.HandleFunc("/v1/summarize", srv.handleSummarize)
	return srv
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleOntology(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.sum.Metric().Ont)
}

func (s *Server) handleSummarize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req SummarizeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if req.K < 1 {
		writeError(w, http.StatusBadRequest, "k must be ≥ 1")
		return
	}
	if len(req.Reviews) == 0 {
		writeError(w, http.StatusBadRequest, "reviews must be non-empty")
		return
	}
	if len(req.Reviews) > s.MaxReviews {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("too many reviews (%d > %d)", len(req.Reviews), s.MaxReviews))
		return
	}
	gran, err := osars.ParseGranularity(req.Granularity)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	method, err := osars.ParseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	reviews := make([]osars.Review, len(req.Reviews))
	for i, rr := range req.Reviews {
		reviews[i] = osars.Review{ID: rr.ID, Text: rr.Text, Rating: rr.Rating}
	}
	start := time.Now()
	item := s.sum.AnnotateItem(req.ItemID, req.ItemName, reviews)
	summary, err := s.sum.Summarize(item, req.K, gran, method)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := SummarizeResponse{
		ItemID:      req.ItemID,
		Granularity: gran.String(),
		Method:      method.String(),
		Cost:        summary.Cost,
		NumPairs:    len(item.Pairs()),
		Sentences:   summary.Sentences,
		ReviewIDs:   summary.ReviewIDs,
		ElapsedMS:   float64(time.Since(start).Microseconds()) / 1000,
	}
	for _, p := range summary.Pairs {
		resp.Pairs = append(resp.Pairs, PairJSON{
			Concept:   s.sum.Metric().Ont.Name(p.Concept),
			Sentiment: p.Sentiment,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		return
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
