// Package server exposes the summarizer as a small JSON-over-HTTP
// service, the deployment shape a review site would embed the library
// in. It is stdlib-only (net/http) and offers two modes side by side:
//
//   - a stateless endpoint, where every request carries the item's raw
//     reviews and annotation + selection run per request; and
//   - a stateful item API backed by osars.Store, where reviews are
//     ingested incrementally (only new reviews are annotated) and
//     summary reads are answered from a generation-aware LRU cache,
//     deduplicating concurrent identical solves via singleflight.
//
// Endpoints:
//
//	GET    /healthz                  → 200 "ok" (liveness: the process serves)
//	GET    /readyz                   → 200 {"status":"ready","ontology":{...}} | 503
//	GET    /v1/ontology              → the ACTIVE ontology as JSON
//	POST   /v1/summarize             → SummarizeRequest → SummarizeResponse (stateless)
//	PUT    /v1/items/{id}/reviews    → AppendReviewsRequest → item stats (append-only ingest)
//	GET    /v1/items/{id}            → item stats
//	GET    /v1/items/{id}/summary    → ?k=&granularity=&method= → ItemSummaryResponse
//	GET    /v1/items                 → ListItemsResponse (all items + store counters)
//	DELETE /v1/items/{id}            → {"deleted": true}
//	GET    /v1/stats                 → StatsResponse (store + admission counters)
//	GET    /metrics                  → Prometheus text exposition (404 until ConfigureObservability)
//
// Ontology lifecycle admin API (404 until ConfigureOntologies):
//
//	GET    /v1/ontologies                  → ListOntologiesResponse (registry listing + active)
//	PUT    /v1/ontologies/{name}           → upload an osars-ontology/v1 entry file
//	GET    /v1/ontologies/{name}           → the entry's canonical JSON ({name} may be name@version)
//	POST   /v1/ontologies/{name}/activate  → hot-swap the store's active runtime (?version= pins one)
//
// The store behind the item API may be sharded (osars.StoreOptions
// .Shards > 1): routing is invisible here — the Store interface hides
// it — but GET /v1/stats exposes the per-shard breakdown.
//
// Overload behavior: with admission control configured
// (ConfigureAdmission), solve-class endpoints (POST /v1/summarize,
// GET /v1/items/{id}/summary) and cheap-read endpoints are admitted
// through separate bounded concurrency limits with a bounded wait
// queue; excess load is shed fast with 429 + Retry-After instead of
// piling up goroutines until everything is slow.
//
// Replication roles: a primary mounts the WAL stream endpoints under
// /v1/repl/ (HandleRepl); a replica additionally rejects local writes
// (SetPrimary makes PUT/DELETE answer 403 naming the primary) and
// gates /readyz on its replication lag (ConfigureReadiness). Both
// roles can boot asynchronously — BeginBoot/FinishBoot let the
// listener accept traffic (503 on stateful endpoints, /readyz not
// ready) while the store still recovers its WAL.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"osars"
)

// SummarizeRequest is the POST /v1/summarize body.
type SummarizeRequest struct {
	ItemID   string      `json:"item_id"`
	ItemName string      `json:"item_name"`
	Reviews  []RawReview `json:"reviews"`
	// K is the summary size (required, ≥ 1).
	K int `json:"k"`
	// Granularity: "pairs", "sentences" (default) or "reviews".
	Granularity string `json:"granularity"`
	// Method: "greedy" (default), "rr", "ilp" or "local-search".
	Method string `json:"method"`
	// Ontology selects the domain to annotate and solve under: a
	// registry reference, "name" (latest) or "name@version". Empty uses
	// the active runtime. Requires ConfigureOntologies.
	Ontology string `json:"ontology,omitempty"`
}

// RawReview is one review in a request.
type RawReview struct {
	ID     string  `json:"id"`
	Text   string  `json:"text"`
	Rating float64 `json:"rating"`
}

// SummarizeResponse is the POST /v1/summarize reply.
type SummarizeResponse struct {
	ItemID      string     `json:"item_id"`
	Granularity string     `json:"granularity"`
	Method      string     `json:"method"`
	Cost        float64    `json:"cost"`
	NumPairs    int        `json:"num_pairs"`
	Pairs       []PairJSON `json:"pairs,omitempty"`
	Sentences   []string   `json:"sentences,omitempty"`
	ReviewIDs   []string   `json:"review_ids,omitempty"`
	// Ontology and OntologyVersion identify the runtime the summary was
	// annotated and solved under.
	Ontology        string  `json:"ontology,omitempty"`
	OntologyVersion string  `json:"ontology_version,omitempty"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

// PairJSON renders a concept-sentiment pair with its concept name.
type PairJSON struct {
	Concept   string  `json:"concept"`
	Sentiment float64 `json:"sentiment"`
}

// AppendReviewsRequest is the PUT /v1/items/{id}/reviews body.
// Appending zero reviews creates (or renames) the item.
type AppendReviewsRequest struct {
	ItemName string      `json:"item_name"`
	Reviews  []RawReview `json:"reviews"`
}

// ItemSummaryResponse is the GET /v1/items/{id}/summary reply: the
// stateless response shape plus the corpus generation the summary was
// solved at and whether it was served without a new solve.
type ItemSummaryResponse struct {
	SummarizeResponse
	Generation uint64 `json:"generation"`
	Cached     bool   `json:"cached"`
}

// ListItemsResponse is the GET /v1/items reply.
type ListItemsResponse struct {
	Items []osars.ItemStats `json:"items"`
	Stats osars.StoreStats  `json:"stats"`
}

// StatsResponse is the GET /v1/stats reply: store counters (including
// the per-shard breakdown for sharded stores) plus the admission-
// control counters, so load shedding is observable without a
// debugger. Store is omitted when the server runs stateless.
// PersistError surfaces the store's most recent background
// fsync/snapshot failure — a store that can no longer persist looks
// healthy on every read path, so it must be visible here.
type StatsResponse struct {
	Store        *osars.StoreStats `json:"store,omitempty"`
	Admission    AdmissionStats    `json:"admission"`
	PersistError string            `json:"persist_error,omitempty"`
	// Ontology is the serving runtime's identity (the store's active
	// runtime, or the summarizer's in stateless mode).
	Ontology *OntologyInfo `json:"ontology,omitempty"`
}

// errorResponse is every non-2xx body. Primary is set on the 403 a
// read-only replica returns for writes: it names the node that does
// accept them.
type errorResponse struct {
	Error   string `json:"error"`
	Primary string `json:"primary,omitempty"`
}

// Server handles the HTTP API around one Summarizer and (optionally)
// one Store. Create with New or NewWithStore; it implements
// http.Handler.
type Server struct {
	sum   *osars.Summarizer
	store osars.Store
	mux   *http.ServeMux
	// onto, when non-nil (ConfigureOntologies), enables the ontology
	// lifecycle admin API and per-request ontology selection.
	onto *osars.OntologyRegistry
	// admission, when non-nil, gates the solve and read endpoint
	// classes (see admission.go). Configure before serving traffic.
	admission *admission
	// booting is true between BeginBoot and FinishBoot: the stateful
	// endpoints answer 503 and /readyz is not ready. FinishBoot
	// publishes s.store before clearing it, so handlers that observe
	// booting == false see the fully constructed store.
	booting atomic.Bool
	// primary, when set (SetPrimary), marks this node a read-only
	// replica: PUT/DELETE answer 403 naming this URL. Set before
	// serving traffic.
	primary string
	// readyProbe, when set (ConfigureReadiness), adds a condition to
	// /readyz beyond boot completion (e.g. replication lag). Set before
	// serving traffic.
	readyProbe func() error
	// obsM, when non-nil (ConfigureObservability), arms the per-route
	// instruments, GET /metrics and the slow-request log. Set before
	// serving traffic.
	obsM *serverMetrics
	// routes collects every instrumented route's placeholder metrics,
	// armed by ConfigureObservability (routes register first).
	routes []*routeMetrics
	// MaxReviews rejects oversized requests (default 10000).
	MaxReviews int
	// MaxBodyBytes bounds request bodies (default 64 MiB). Larger
	// bodies get 413.
	MaxBodyBytes int64
}

// New builds the handler with a default Store (default cache budgets).
func New(s *osars.Summarizer) *Server {
	return NewWithStore(s, s.NewStore(osars.StoreOptions{}))
}

// NewWithStore builds the handler around an explicit Store (which may
// be sharded). A nil store disables the stateful /v1/items endpoints
// (they answer 404).
func NewWithStore(s *osars.Summarizer, st osars.Store) *Server {
	srv := &Server{
		sum:          s,
		store:        st,
		mux:          http.NewServeMux(),
		MaxReviews:   10000,
		MaxBodyBytes: 64 << 20,
	}
	srv.handle("/healthz", srv.handleHealth)
	srv.handle("/readyz", srv.handleReady)
	srv.handle("/v1/ontology", srv.handleOntology)
	srv.handle("/v1/summarize", srv.admit(solveClass, srv.handleSummarize))
	srv.handle("PUT /v1/items/{id}/reviews", srv.handleAppendReviews)
	srv.handle("GET /v1/items/{id}/summary", srv.admit(solveClass, srv.handleItemSummary))
	srv.handle("GET /v1/items/{id}", srv.admit(readClass, srv.handleItemStats))
	srv.handle("GET /v1/items", srv.admit(readClass, srv.handleListItems))
	srv.handle("DELETE /v1/items/{id}", srv.handleDeleteItem)
	srv.handle("GET /v1/stats", srv.handleStats)
	// The ontology admin API is instrumented (handle) but deliberately
	// NOT admission-gated (no admit wrapper): an operator must be able
	// to upload or roll back an ontology exactly when the server is
	// saturated and shedding solve traffic.
	srv.handle("GET /v1/ontologies", srv.handleListOntologies)
	srv.handle("GET /v1/ontologies/{name}", srv.handleGetOntology)
	srv.handle("PUT /v1/ontologies/{name}", srv.handlePutOntology)
	srv.handle("POST /v1/ontologies/{name}/activate", srv.handleActivateOntology)
	// Deliberately NOT wrapped in handle(): scraping must not show up
	// in the request metrics, and must never be admission- or boot-
	// gated (handleMetrics answers 404 until ConfigureObservability).
	srv.mux.HandleFunc("GET /metrics", srv.handleMetrics)
	return srv
}

// ConfigureAdmission arms admission control. Call once, before the
// server starts handling traffic; a zero config (all limits ≤ 0)
// leaves every class unlimited. /healthz, /v1/stats and the ingest
// endpoints are never gated: health checks and observability must
// work exactly when the server is saturated, and ingestion backs up
// on the store's own WAL ordering instead.
func (s *Server) ConfigureAdmission(cfg AdmissionConfig) {
	s.admission = newAdmission(cfg)
	if m := s.obsM; m != nil {
		s.admission.armObs(m.reg)
	}
}

// Store returns the backing store (nil in stateless-only mode or
// while booting).
func (s *Server) Store() osars.Store {
	if s.booting.Load() {
		return nil
	}
	return s.store
}

// BeginBoot puts the server in boot mode: the stateful endpoints
// answer 503 "recovering" and /readyz is not ready until FinishBoot.
// Call before the listener starts, so a slow WAL recovery does not
// keep /healthz (and the whole port) from answering.
func (s *Server) BeginBoot() { s.booting.Store(true) }

// FinishBoot installs the recovered store and leaves boot mode. Safe
// to call while requests are in flight: the store write is published
// by the atomic flag clear.
func (s *Server) FinishBoot(st osars.Store) {
	s.store = st
	s.booting.Store(false)
}

// SetPrimary marks this node a read-only replica: the write endpoints
// (PUT /v1/items/{id}/reviews, DELETE /v1/items/{id}) answer 403 with
// a JSON body naming primaryURL. Call before serving traffic.
func (s *Server) SetPrimary(primaryURL string) { s.primary = primaryURL }

// ConfigureReadiness adds a probe to /readyz beyond boot completion:
// non-nil errors turn into 503 with the error text (e.g. "replication
// lag 1200 seqs exceeds 100"). Call before serving traffic.
func (s *Server) ConfigureReadiness(probe func() error) { s.readyProbe = probe }

// HandleRepl mounts h on the /v1/repl/ subtree (the primary's stream/
// snapshot/status endpoints, or the replica's status endpoint). Call
// before serving traffic. Replication endpoints are never admission-
// gated: shedding the stream under load would make replicas fall
// further behind exactly when read scale-out matters most.
func (s *Server) HandleRepl(h http.Handler) { s.mux.Handle("/v1/repl/", h) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReady is the load-balancer signal, distinct from /healthz:
// liveness says "don't restart me", readiness says "route traffic to
// me". A node recovering its WAL at boot, or a replica lagging beyond
// its configured bound, is alive but should receive no reads yet.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.booting.Load() {
		writeError(w, http.StatusServiceUnavailable, "store recovering (boot in progress)")
		return
	}
	if s.readyProbe != nil {
		if err := s.readyProbe(); err != nil {
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
	}
	rt := s.activeRuntime()
	writeJSON(w, http.StatusOK, ReadyResponse{
		Status:   "ready",
		Ontology: OntologyInfo{Name: rt.Name, Version: rt.Version},
	})
}

func (s *Server) handleOntology(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.activeRuntime().Metric.Ont)
}

// decodeBody decodes a JSON request body under the byte budget,
// writing the error response itself (413 for an over-limit body — the
// http.MaxBytesError used to be swallowed into a generic 400 — and 400
// for malformed JSON). Reports whether decoding succeeded.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	limit := s.MaxBodyBytes
	if limit <= 0 {
		limit = 64 << 20
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return false
	}
	return true
}

func (s *Server) handleSummarize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req SummarizeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.K < 1 {
		writeError(w, http.StatusBadRequest, "k must be ≥ 1")
		return
	}
	if len(req.Reviews) == 0 {
		writeError(w, http.StatusBadRequest, "reviews must be non-empty")
		return
	}
	if len(req.Reviews) > s.MaxReviews {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("too many reviews (%d > %d)", len(req.Reviews), s.MaxReviews))
		return
	}
	gran, err := osars.ParseGranularity(req.Granularity)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	method, err := osars.ParseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Pin the request's runtime once: the active one, or — for
	// multi-domain serving — the registry entry the request names.
	rt := s.activeRuntime()
	if req.Ontology != "" {
		if s.onto == nil {
			writeError(w, http.StatusBadRequest, "no ontology registry configured (per-request ontology selection is off)")
			return
		}
		_, reqRT, ok := s.onto.Lookup(req.Ontology)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("unknown ontology %q", req.Ontology))
			return
		}
		rt = reqRT
	}

	start := time.Now()
	item := s.sum.AnnotateItemWith(rt, req.ItemID, req.ItemName, toReviews(req.Reviews))
	summary, err := s.sum.SummarizeWith(rt, item, req.K, gran, method)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := SummarizeResponse{
		ItemID:          req.ItemID,
		Granularity:     gran.String(),
		Method:          method.String(),
		Cost:            summary.Cost,
		NumPairs:        len(item.Pairs()),
		Sentences:       summary.Sentences,
		ReviewIDs:       summary.ReviewIDs,
		Ontology:        rt.Name,
		OntologyVersion: rt.Version,
		ElapsedMS:       float64(time.Since(start).Microseconds()) / 1000,
	}
	for _, p := range summary.Pairs {
		resp.Pairs = append(resp.Pairs, PairJSON{
			Concept:   rt.Metric.Ont.Name(p.Concept),
			Sentiment: p.Sentiment,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// requireStore answers 503 while boot recovery runs and 404 when the
// server was built without a store.
func (s *Server) requireStore(w http.ResponseWriter) bool {
	if s.booting.Load() {
		writeError(w, http.StatusServiceUnavailable, "store recovering (boot in progress)")
		return false
	}
	if s.store == nil {
		writeError(w, http.StatusNotFound, "stateful item API disabled (server runs stateless)")
		return false
	}
	return true
}

// requireWritable answers 403 on the write endpoints of a read-only
// replica, naming the primary that does accept writes.
func (s *Server) requireWritable(w http.ResponseWriter) bool {
	if s.primary != "" {
		writeJSON(w, http.StatusForbidden, errorResponse{
			Error:   "this node is a read-only replica; send writes to the primary",
			Primary: s.primary,
		})
		return false
	}
	return true
}

func (s *Server) handleAppendReviews(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) || !s.requireWritable(w) {
		return
	}
	var req AppendReviewsRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Reviews) > s.MaxReviews {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("too many reviews (%d > %d)", len(req.Reviews), s.MaxReviews))
		return
	}
	stats, err := s.store.AppendReviews(r.PathValue("id"), req.ItemName, toReviews(req.Reviews))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

func (s *Server) handleItemSummary(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	q := r.URL.Query()
	k, err := strconv.Atoi(q.Get("k"))
	if err != nil || k < 1 {
		writeError(w, http.StatusBadRequest, "query parameter k must be an integer ≥ 1")
		return
	}
	gran, err := osars.ParseGranularity(q.Get("granularity"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	method, err := osars.ParseMethod(q.Get("method"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	start := time.Now()
	sum, cached, err := osars.SummarizeStored(s.store, r.PathValue("id"), k, gran, method)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, osars.ErrItemNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}
	resp := ItemSummaryResponse{
		SummarizeResponse: SummarizeResponse{
			ItemID:          sum.ItemID,
			Granularity:     gran.String(),
			Method:          method.String(),
			Cost:            sum.Cost,
			NumPairs:        sum.NumPairs,
			Sentences:       sum.Sentences,
			ReviewIDs:       sum.ReviewIDs,
			Ontology:        sum.Ontology,
			OntologyVersion: sum.OntologyVersion,
			ElapsedMS:       float64(time.Since(start).Microseconds()) / 1000,
		},
		Generation: sum.Generation,
		Cached:     cached,
	}
	// Concept names were captured at solve time under the SOLVING
	// ontology (store.Summary.Concepts) — resolving the ConceptIDs here
	// against the currently active ontology would be wrong the moment an
	// activation lands between solve and render.
	for i, p := range sum.Pairs {
		pj := PairJSON{Sentiment: p.Sentiment}
		if i < len(sum.Concepts) {
			pj.Concept = sum.Concepts[i]
		} else {
			pj.Concept = s.activeRuntime().Metric.Ont.Name(p.Concept)
		}
		resp.Pairs = append(resp.Pairs, pj)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleItemStats(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	stats, ok := s.store.ItemStats(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, osars.ErrItemNotFound.Error())
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

func (s *Server) handleListItems(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	writeJSON(w, http.StatusOK, ListItemsResponse{
		Items: s.store.List(),
		Stats: s.store.Stats(),
	})
}

func (s *Server) handleDeleteItem(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) || !s.requireWritable(w) {
		return
	}
	id := r.PathValue("id")
	deleted, err := s.store.Delete(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !deleted {
		writeError(w, http.StatusNotFound, osars.ErrItemNotFound.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"deleted": true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{Admission: s.admission.stats()}
	rt := s.activeRuntime()
	resp.Ontology = &OntologyInfo{Name: rt.Name, Version: rt.Version}
	if store := s.Store(); store != nil {
		st := store.Stats()
		resp.Store = &st
		if err := store.PersistErr(); err != nil {
			resp.PersistError = err.Error()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func toReviews(in []RawReview) []osars.Review {
	out := make([]osars.Review, len(in))
	for i, rr := range in {
		out[i] = osars.Review{ID: rr.ID, Text: rr.Text, Rating: rr.Rating}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		return
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
