package server

import (
	"errors"
	"net/http"
	"testing"

	"osars"
	"osars/internal/dataset"
)

func newSum(t *testing.T) *osars.Summarizer {
	t.Helper()
	s, err := osars.New(osars.Config{Ontology: dataset.CellPhoneOntology()})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestReadyzBootLifecycle: /readyz (and the stateful endpoints) must
// answer 503 between BeginBoot and FinishBoot, while /healthz keeps
// answering 200 the whole time — liveness and readiness are different
// questions.
func TestReadyzBootLifecycle(t *testing.T) {
	sum := newSum(t)
	srv := NewWithStore(sum, nil)
	srv.BeginBoot()

	if w := do(t, srv, http.MethodGet, "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("/healthz during boot = %d, want 200", w.Code)
	}
	if w := do(t, srv, http.MethodGet, "/readyz", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during boot = %d, want 503", w.Code)
	}
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/items"},
		{http.MethodGet, "/v1/items/p1"},
		{http.MethodGet, "/v1/items/p1/summary?k=2"},
		{http.MethodGet, "/v1/stats"},
	} {
		w := do(t, srv, probe.method, probe.path, nil)
		if probe.path == "/v1/stats" {
			// Stats stays reachable (observability during boot) but
			// must not touch the absent store.
			if w.Code != http.StatusOK {
				t.Fatalf("%s during boot = %d, want 200", probe.path, w.Code)
			}
			continue
		}
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s %s during boot = %d, want 503", probe.method, probe.path, w.Code)
		}
	}

	srv.FinishBoot(sum.NewStore(osars.StoreOptions{}))
	if w := do(t, srv, http.MethodGet, "/readyz", nil); w.Code != http.StatusOK {
		t.Fatalf("/readyz after boot = %d: %s", w.Code, w.Body.String())
	}
	if w := do(t, srv, http.MethodGet, "/v1/items", nil); w.Code != http.StatusOK {
		t.Fatalf("/v1/items after boot = %d", w.Code)
	}
}

// TestReadyzProbe: a configured readiness probe (the replica lag
// check) gates /readyz after boot.
func TestReadyzProbe(t *testing.T) {
	sum := newSum(t)
	srv := New(sum)
	probeErr := errors.New("replication lag 5000 records exceeds -max-lag-for-ready=100")
	srv.ConfigureReadiness(func() error { return probeErr })

	w := do(t, srv, http.MethodGet, "/readyz", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with failing probe = %d, want 503", w.Code)
	}
	var e errorResponse
	decode(t, w, &e)
	if e.Error != probeErr.Error() {
		t.Fatalf("/readyz error = %q, want the probe error", e.Error)
	}

	probeErr = nil
	if w := do(t, srv, http.MethodGet, "/readyz", nil); w.Code != http.StatusOK {
		t.Fatalf("/readyz with passing probe = %d", w.Code)
	}
	// Probes never gate liveness.
	if w := do(t, srv, http.MethodGet, "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("/healthz = %d", w.Code)
	}
}

// persistErrStore wraps a Store, injecting a persistence failure.
type persistErrStore struct {
	osars.Store
	err error
}

func (p persistErrStore) PersistErr() error { return p.err }

// TestStatsSurfacesPersistError: a background fsync/snapshot failure
// must show up in GET /v1/stats — the read path looks healthy when
// the disk is not.
func TestStatsSurfacesPersistError(t *testing.T) {
	sum := newSum(t)
	srv := NewWithStore(sum, persistErrStore{
		Store: sum.NewStore(osars.StoreOptions{}),
		err:   errors.New("wal sync: no space left on device"),
	})
	w := do(t, srv, http.MethodGet, "/v1/stats", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/stats = %d", w.Code)
	}
	var resp StatsResponse
	decode(t, w, &resp)
	if resp.PersistError != "wal sync: no space left on device" {
		t.Fatalf("persist_error = %q", resp.PersistError)
	}

	// And a healthy store reports no error at all.
	healthy := NewWithStore(sum, sum.NewStore(osars.StoreOptions{}))
	w = do(t, healthy, http.MethodGet, "/v1/stats", nil)
	var clean StatsResponse
	decode(t, w, &clean)
	if clean.PersistError != "" {
		t.Fatalf("healthy persist_error = %q", clean.PersistError)
	}
}

// TestReadOnlyReplicaRejectsWrites: SetPrimary turns the write
// endpoints into 403s that name the primary, while reads keep working.
func TestReadOnlyReplicaRejectsWrites(t *testing.T) {
	sum := newSum(t)
	st := sum.NewStore(osars.StoreOptions{})
	if _, err := st.AppendReviews("p1", "Phone", []osars.Review{{ID: "r1", Text: "The screen is excellent."}}); err != nil {
		t.Fatal(err)
	}
	srv := NewWithStore(sum, st)
	srv.SetPrimary("http://primary:8080")

	w := do(t, srv, http.MethodPut, "/v1/items/p1/reviews", AppendReviewsRequest{
		Reviews: []RawReview{{ID: "r2", Text: "more"}},
	})
	if w.Code != http.StatusForbidden {
		t.Fatalf("PUT on replica = %d, want 403", w.Code)
	}
	var e errorResponse
	decode(t, w, &e)
	if e.Primary != "http://primary:8080" {
		t.Fatalf("403 body = %+v, want the primary URL", e)
	}
	if w := do(t, srv, http.MethodDelete, "/v1/items/p1", nil); w.Code != http.StatusForbidden {
		t.Fatalf("DELETE on replica = %d, want 403", w.Code)
	}
	// Reads still serve.
	if w := do(t, srv, http.MethodGet, "/v1/items/p1", nil); w.Code != http.StatusOK {
		t.Fatalf("GET on replica = %d: %s", w.Code, w.Body.String())
	}
	if w := do(t, srv, http.MethodGet, "/v1/items/p1/summary?k=1", nil); w.Code != http.StatusOK {
		t.Fatalf("summary on replica = %d: %s", w.Code, w.Body.String())
	}
}
