package server

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"osars"
	"osars/internal/obs"
)

// obsServer builds a sharded stateful server with admission control
// and an armed metric registry.
func obsServer(t *testing.T, cfg AdmissionConfig) (*Server, *obs.Registry) {
	t.Helper()
	srv := admissionServer(t, cfg)
	reg := osars.NewMetricsRegistry()
	srv.ConfigureObservability(ObservabilityConfig{Metrics: reg})
	return srv, reg
}

func scrape(t *testing.T, srv http.Handler) (int, string) {
	t.Helper()
	w := do(t, srv, http.MethodGet, "/metrics", nil)
	return w.Code, w.Body.String()
}

func TestMetricsDisabledAnswers404(t *testing.T) {
	srv := testServer(t)
	code, body := scrape(t, srv)
	if code != http.StatusNotFound || !strings.Contains(body, "metrics disabled") {
		t.Fatalf("unconfigured /metrics = %d %q", code, body)
	}
}

// TestStatsAndMetricsNeverGated pins the observability invariant: the
// endpoints you need to diagnose an overloaded or booting server must
// answer 200 exactly then. Both admission classes are saturated (slot
// held, queue full of parked waiters) and the server is additionally
// put in boot mode — /v1/stats and /metrics serve throughout.
func TestStatsAndMetricsNeverGated(t *testing.T) {
	srv, _ := obsServer(t, AdmissionConfig{
		MaxInflightSolves: 1,
		MaxInflightReads:  1,
		MaxQueue:          1,
		QueueWait:         2 * time.Second,
	})
	// Hold the only slot of each class, then park one waiter per class
	// so the queues are full too: every gated endpoint now sheds.
	for _, lim := range []*limiter{srv.admission.solves, srv.admission.reads} {
		rel, v, _ := lim.acquire(context.Background())
		if v != admitted {
			t.Fatalf("setup acquire verdict %v", v)
		}
		defer rel()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			lim.acquire(ctx) // parks until cancel
		}()
		defer wg.Wait()
		waitQueued(t, lim, 1)
	}
	if w := do(t, srv, http.MethodGet, "/v1/items", nil); w.Code != http.StatusTooManyRequests {
		t.Fatalf("read class not saturated: %d", w.Code)
	}
	if w := do(t, srv, http.MethodGet, "/v1/stats", nil); w.Code != http.StatusOK {
		t.Fatalf("/v1/stats under saturation: %d %s", w.Code, w.Body.String())
	}
	if code, body := scrape(t, srv); code != http.StatusOK ||
		!strings.Contains(body, "osars_admission_shed_total") {
		t.Fatalf("/metrics under saturation: %d %q", code, body)
	}
	// And during boot: the stateful endpoints answer 503, but stats
	// and metrics still serve.
	srv.BeginBoot()
	defer srv.FinishBoot(srv.store)
	if w := do(t, srv, http.MethodGet, "/v1/stats", nil); w.Code != http.StatusOK {
		t.Fatalf("/v1/stats during boot: %d", w.Code)
	}
	if code, _ := scrape(t, srv); code != http.StatusOK {
		t.Fatalf("/metrics during boot: %d", code)
	}
}

func waitQueued(t *testing.T, l *limiter, n int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for l.queued.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", n, l.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShedBodyReportsQueueDepth pins the 429 body contract: a request
// shed because the queue is full reports the depth of that queue, so
// a client can tell a momentary burst from a standing backlog.
func TestShedBodyReportsQueueDepth(t *testing.T) {
	srv, _ := obsServer(t, AdmissionConfig{
		MaxInflightSolves: 1,
		MaxQueue:          1,
		QueueWait:         2 * time.Second,
	})
	lim := srv.admission.solves
	rel, v, _ := lim.acquire(context.Background())
	if v != admitted {
		t.Fatalf("setup acquire verdict %v", v)
	}
	// Park one waiter to fill the queue, then shed a second request.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		lim.acquire(ctx)
	}()
	waitQueued(t, lim, 1)
	w := do(t, srv, http.MethodPost, "/v1/summarize", validRequest())
	cancel()
	wg.Wait()
	rel()
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("full queue: code %d body %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var shed shedResponse
	decode(t, w, &shed)
	if shed.Error == "" || shed.QueueDepth != 1 || shed.RetryAfterSeconds < 1 {
		t.Fatalf("shed body = %+v, want queue_depth 1 and a retry hint", shed)
	}
}

// TestRouteMetricsRecorded drives a few requests and checks the
// exposition: per-route request counters, status-class counters, the
// latency histogram count and a settled in-flight gauge.
func TestRouteMetricsRecorded(t *testing.T) {
	srv, _ := obsServer(t, AdmissionConfig{})
	if w := do(t, srv, http.MethodGet, "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	if w := do(t, srv, http.MethodPost, "/v1/summarize", validRequest()); w.Code != http.StatusOK {
		t.Fatalf("summarize: %d %s", w.Code, w.Body.String())
	}
	if w := do(t, srv, http.MethodGet, "/v1/items/nope", nil); w.Code != http.StatusNotFound {
		t.Fatalf("missing item: %d", w.Code)
	}
	code, body := scrape(t, srv)
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		`osars_http_requests_total{route="/healthz"} 1`,
		`osars_http_requests_total{route="/v1/summarize"} 1`,
		`osars_http_responses_total{route="/healthz",class="2xx"} 1`,
		`osars_http_responses_total{route="/v1/items/{id}",class="4xx"} 1`,
		`osars_http_request_seconds_count{route="/v1/summarize"} 1`,
		`osars_http_inflight_requests 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}
}

// TestSlowLogEmitsOverHTTP wires a 1ns threshold (everything is slow)
// and checks one structured line per request, with the route pattern —
// not the concrete path — and a shard for item routes.
func TestSlowLogEmitsOverHTTP(t *testing.T) {
	srv := admissionServer(t, AdmissionConfig{})
	var mu sync.Mutex
	var lines []string
	srv.ConfigureObservability(ObservabilityConfig{
		SlowRequestThreshold: time.Nanosecond,
		SlowLogf: func(format string, args ...interface{}) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	if w := do(t, srv, http.MethodPut, "/v1/items/p1/reviews", AppendReviewsRequest{
		Reviews: []RawReview{{ID: "r1", Text: "The screen is excellent."}},
	}); w.Code != http.StatusOK {
		t.Fatalf("append: %d %s", w.Code, w.Body.String())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("slow log lines = %d, want 1: %q", len(lines), lines)
	}
	line := lines[0]
	if !strings.Contains(line, "method=PUT") ||
		!strings.Contains(line, "route=/v1/items/{id}/reviews") ||
		!strings.Contains(line, "status=200") ||
		strings.Contains(line, "shard=-1") {
		t.Fatalf("slow log line = %q", line)
	}
}
