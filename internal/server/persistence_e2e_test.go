package server

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"osars"
	"osars/internal/dataset"
)

// durableServer builds a store-backed server rooted at dir (the
// handler a `osars-serve -data-dir dir` process would run), with the
// given shard count (the handler a `-shards n` process would run).
func durableServer(t *testing.T, dir string, shards int) (*Server, osars.Store) {
	t.Helper()
	sum, err := osars.New(osars.Config{Ontology: dataset.CellPhoneOntology()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sum.OpenStore(osars.StoreOptions{DataDir: dir, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return NewWithStore(sum, st), st
}

// itemsBody extracts the deterministic part of a GET /v1/items reply:
// the item list, re-marshalled (store counters such as cache hits are
// legitimately reset by a restart and are excluded).
func itemsBody(t *testing.T, srv *Server) string {
	t.Helper()
	w := do(t, srv, http.MethodGet, "/v1/items", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("list status %d: %s", w.Code, w.Body.String())
	}
	var resp ListItemsResponse
	decode(t, w, &resp)
	data, err := json.Marshal(resp.Items)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// summaryBody extracts the deterministic part of a GET summary reply:
// everything except the wall-clock ElapsedMS and the Cached flag
// (a restarted server starts with a cold cache by design).
func summaryBody(t *testing.T, srv *Server, path string) string {
	t.Helper()
	w := do(t, srv, http.MethodGet, path, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("summary %s status %d: %s", path, w.Code, w.Body.String())
	}
	var resp ItemSummaryResponse
	decode(t, w, &resp)
	resp.ElapsedMS = 0
	resp.Cached = false
	data, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestServerRestartByteIdentical is the end-to-end restart acceptance
// test: ingest reviews over HTTP, hard-stop the server (without a
// graceful close), restart against the same data directory, and every
// item listing and summary must come back byte-identical. It runs
// against the single-partition store and a 4-shard store (per-shard
// WAL directories, parallel recovery); both must behave identically.
func TestServerRestartByteIdentical(t *testing.T) {
	t.Run("shards=1", func(t *testing.T) { testRestartByteIdentical(t, 1) })
	t.Run("shards=4", func(t *testing.T) { testRestartByteIdentical(t, 4) })
}

func testRestartByteIdentical(t *testing.T, shards int) {
	dir := t.TempDir()
	srv1, _ := durableServer(t, dir, shards)

	for _, req := range []struct {
		id   string
		body AppendReviewsRequest
	}{
		{"p1", AppendReviewsRequest{ItemName: "Acme Phone", Reviews: []RawReview{
			{ID: "r1", Text: "The screen is excellent. The battery is awful.", Rating: 0.2},
			{ID: "r2", Text: "Amazing screen resolution! The battery life is terrible."},
		}}},
		{"p1", AppendReviewsRequest{Reviews: []RawReview{
			{ID: "r3", Text: "Great camera and a decent price.", Rating: 0.8},
		}}},
		{"p2", AppendReviewsRequest{ItemName: "Bolt", Reviews: []RawReview{
			{ID: "r4", Text: "The speaker is too quiet but the design is gorgeous.", Rating: 0.4},
		}}},
		{"gone", AppendReviewsRequest{ItemName: "Doomed", Reviews: []RawReview{
			{ID: "r5", Text: "The price is outrageous."},
		}}},
	} {
		if w := do(t, srv1, http.MethodPut, "/v1/items/"+req.id+"/reviews", req.body); w.Code != http.StatusOK {
			t.Fatalf("append %s: %d %s", req.id, w.Code, w.Body.String())
		}
	}
	// Summarize (warms the cache) and then delete one item: the
	// restarted server must not resurrect it.
	if w := do(t, srv1, http.MethodGet, "/v1/items/gone/summary?k=1", nil); w.Code != http.StatusOK {
		t.Fatalf("summary gone: %d", w.Code)
	}
	if w := do(t, srv1, http.MethodDelete, "/v1/items/gone", nil); w.Code != http.StatusOK {
		t.Fatalf("delete gone: %d %s", w.Code, w.Body.String())
	}

	paths := []string{
		"/v1/items/p1/summary?k=3",
		"/v1/items/p1/summary?k=2&granularity=pairs",
		"/v1/items/p2/summary?k=1&granularity=reviews",
	}
	wantItems := itemsBody(t, srv1)
	wantSums := make([]string, len(paths))
	for i, p := range paths {
		wantSums[i] = summaryBody(t, srv1, p)
	}
	// Hard stop: the first server's store is simply abandoned —
	// FsyncAlways already put every acknowledged write on disk.

	srv2, st2 := durableServer(t, dir, shards)
	defer st2.Close()
	if rec, ok := st2.Recovery(); !ok || rec.ReplayedRecords == 0 {
		t.Fatalf("restarted store recovery = %+v ok=%v", rec, ok)
	}
	if got := itemsBody(t, srv2); got != wantItems {
		t.Fatalf("GET /v1/items diverged after restart:\npre:  %s\npost: %s", wantItems, got)
	}
	for i, p := range paths {
		if got := summaryBody(t, srv2, p); got != wantSums[i] {
			t.Fatalf("GET %s diverged after restart:\npre:  %s\npost: %s", p, wantSums[i], got)
		}
	}
	if w := do(t, srv2, http.MethodGet, "/v1/items/gone", nil); w.Code != http.StatusNotFound {
		t.Fatalf("deleted item resurrected after restart: %d %s", w.Code, w.Body.String())
	}
	if w := do(t, srv2, http.MethodGet, "/v1/items/gone/summary?k=1", nil); w.Code != http.StatusNotFound {
		t.Fatalf("summary of deleted item after restart: %d %s", w.Code, w.Body.String())
	}
}

// normalizeItems zeros the bookkeeping fields that legitimately
// differ between two SEPARATE ingests of the same corpus: CreatedAt/
// UpdatedAt are wall-clock and Generation is an opaque per-shard
// token (each shard mints its own counter). Everything else — IDs,
// names, ordering, review/sentence/pair counts — must match exactly.
func normalizeItems(t *testing.T, body string) string {
	t.Helper()
	var items []osars.ItemStats
	if err := json.Unmarshal([]byte(body), &items); err != nil {
		t.Fatal(err)
	}
	for i := range items {
		items[i].Generation = 0
		items[i].CreatedAt = time.Time{}
		items[i].UpdatedAt = time.Time{}
	}
	data, err := json.Marshal(items)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// normalizeSummary zeros the generation of a summary reply (see
// normalizeItems); the selected content and cost must match exactly.
func normalizeSummary(t *testing.T, body string) string {
	t.Helper()
	var resp ItemSummaryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	resp.Generation = 0
	data, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestShardedMatchesUnshardedOverHTTP ingests the same corpus into an
// unsharded and an 8-shard durable server and pins that listings and
// summaries are identical up to wall-clock timestamps and shard-local
// generation tokens: partitioning must be invisible to clients.
func TestShardedMatchesUnshardedOverHTTP(t *testing.T) {
	flat, flatStore := durableServer(t, t.TempDir(), 1)
	defer flatStore.Close()
	sharded, shardedStore := durableServer(t, t.TempDir(), 8)
	defer shardedStore.Close()

	texts := []string{
		"The screen is excellent. The battery is awful.",
		"Amazing screen resolution! The battery life is terrible.",
		"Great camera and a decent price.",
		"The speaker is too quiet but the design is gorgeous.",
	}
	for i := 0; i < 24; i++ {
		id := "item-" + string(rune('a'+i%7)) + "-" + string(rune('0'+i%3))
		body := AppendReviewsRequest{Reviews: []RawReview{
			{ID: "r" + string(rune('0'+i%10)), Text: texts[i%len(texts)], Rating: float64(i%5) / 4},
		}}
		for _, srv := range []*Server{flat, sharded} {
			if w := do(t, srv, http.MethodPut, "/v1/items/"+id+"/reviews", body); w.Code != http.StatusOK {
				t.Fatalf("append %s: %d %s", id, w.Code, w.Body.String())
			}
		}
	}
	got := normalizeItems(t, itemsBody(t, sharded))
	want := normalizeItems(t, itemsBody(t, flat))
	if got != want {
		t.Fatalf("sharded GET /v1/items diverged from unsharded:\nflat:    %s\nsharded: %s", want, got)
	}
	for _, p := range []string{
		"/v1/items/item-a-0/summary?k=2",
		"/v1/items/item-b-1/summary?k=1&granularity=pairs",
		"/v1/items/item-c-2/summary?k=1&granularity=reviews",
	} {
		got := normalizeSummary(t, summaryBody(t, sharded, p))
		want := normalizeSummary(t, summaryBody(t, flat, p))
		if got != want {
			t.Fatalf("sharded GET %s diverged from unsharded:\nflat:    %s\nsharded: %s", p, want, got)
		}
	}
}

// TestShardLayoutPinned pins that a durable sharded directory refuses
// to reopen with a different shard count: silently rerouting items
// would make parts of the corpus unreachable.
func TestShardLayoutPinned(t *testing.T) {
	dir := t.TempDir()
	_, st := durableServer(t, dir, 4)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := osars.New(osars.Config{Ontology: dataset.CellPhoneOntology()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sum.OpenStore(osars.StoreOptions{DataDir: dir, Shards: 8}); err == nil {
		t.Fatal("reopening a 4-shard data dir with 8 shards succeeded; want layout error")
	}
}
