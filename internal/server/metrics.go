// HTTP-layer observability: per-route request counters, status-class
// counters, latency histograms, an in-flight gauge and the structured
// slow-request log, plus the GET /metrics exposition endpoint.
//
// The wiring problem here is ordering: routes are registered in
// NewWithStore, but the registry only arrives later via
// ConfigureObservability (the same "call before serving traffic"
// contract as ConfigureAdmission). So every route gets a routeMetrics
// placeholder at registration time, and configuration "arms" the
// placeholders by interning their instruments. Until then — and
// forever, when observability is off — the instrument pointers are nil
// and the obs package's nil-receiver no-ops make every record a single
// branch.
package server

import (
	"net/http"
	"strings"
	"time"

	"osars/internal/obs"
)

// ObservabilityConfig arms the server's metrics and slow-request log.
type ObservabilityConfig struct {
	// Metrics, when non-nil, registers the HTTP-layer instruments and
	// enables GET /metrics (Prometheus text exposition of the whole
	// registry — hand the same registry to StoreOptions.Metrics and the
	// replication follower so one scrape covers every layer). Nil
	// leaves /metrics answering 404.
	Metrics *obs.Registry
	// SlowRequestThreshold, when > 0, logs one structured line for
	// every request at least this slow (method, route, status,
	// duration, queue wait, shard). Zero disables the slow log.
	SlowRequestThreshold time.Duration
	// SlowLogf receives slow-request lines (default log.Printf).
	SlowLogf func(format string, args ...interface{})
}

// serverMetrics is the armed observability state; a nil *serverMetrics
// on the Server means ConfigureObservability was never called.
type serverMetrics struct {
	reg      *obs.Registry
	handler  http.Handler // the registry's exposition handler
	inflight *obs.Gauge
	slow     *obs.SlowLog
}

// routeMetrics is one registered route's instruments. Zero until
// ConfigureObservability arms it. Two registrations sharing a path
// (GET and DELETE /v1/items/{id}) intern the same children, so their
// series aggregate across methods — the route label stays low-
// cardinality and method shows up in the slow log instead.
type routeMetrics struct {
	route    string
	requests *obs.Counter
	classes  [5]*obs.Counter // 1xx..5xx
	seconds  *obs.Histogram
}

var statusClasses = [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// ConfigureObservability arms the HTTP instruments, the /metrics
// endpoint and the slow-request log. Call once, before the server
// starts handling traffic (order relative to ConfigureAdmission does
// not matter — each call arms the other's half if it is already
// there).
func (s *Server) ConfigureObservability(cfg ObservabilityConfig) {
	m := &serverMetrics{reg: cfg.Metrics}
	if reg := cfg.Metrics; reg != nil {
		m.handler = reg.Handler()
		m.inflight = reg.Gauge("osars_http_inflight_requests",
			"Requests currently being handled (all instrumented routes).")
		requests := reg.CounterVec("osars_http_requests_total",
			"Requests handled, per route pattern.", "route")
		responses := reg.CounterVec("osars_http_responses_total",
			"Responses written, per route pattern and status class.", "route", "class")
		seconds := reg.HistogramVec("osars_http_request_seconds",
			"Request handling latency in seconds (including admission queue wait), per route pattern.",
			nil, "route")
		for _, rm := range s.routes {
			rm.requests = requests.With(rm.route)
			rm.seconds = seconds.With(rm.route)
			for i, class := range statusClasses {
				rm.classes[i] = responses.With(rm.route, class)
			}
		}
	}
	if cfg.SlowRequestThreshold > 0 {
		var slowN *obs.Counter
		if cfg.Metrics != nil {
			slowN = cfg.Metrics.Counter("osars_http_slow_requests_total",
				"Requests that exceeded the slow-request threshold.")
		}
		m.slow = &obs.SlowLog{
			Threshold: cfg.SlowRequestThreshold,
			Logf:      cfg.SlowLogf,
			Slow:      slowN,
		}
	}
	s.obsM = m
	if s.admission != nil {
		s.admission.armObs(cfg.Metrics)
	}
}

// handle registers pattern on the mux with the route-level
// instrumentation wrapper. The route label is the pattern minus any
// method prefix ("PUT /v1/items/{id}/reviews" → "/v1/items/{id}/
// reviews"), keeping label cardinality at one series per pattern.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	route := pattern
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		route = pattern[i+1:]
	}
	s.mux.HandleFunc(pattern, s.instrument(route, h))
}

// instrument wraps h with the per-route instruments. It sits OUTSIDE
// the admission wrapper, so the latency histogram includes queue wait
// and shed 429s are counted like any other response. When
// observability was never configured the wrapper is one nil check.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	rm := &routeMetrics{route: route}
	s.routes = append(s.routes, rm)
	return func(w http.ResponseWriter, r *http.Request) {
		m := s.obsM
		if m == nil {
			h(w, r)
			return
		}
		start := time.Now()
		m.inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		m.inflight.Add(-1)
		dur := time.Since(start)
		rm.requests.Inc()
		status := sw.Status()
		if c := status/100 - 1; c >= 0 && c < len(rm.classes) {
			rm.classes[c].Inc()
		}
		rm.seconds.Observe(dur.Seconds())
		if slow := m.slow; slow != nil && dur >= slow.Threshold {
			slow.Record(r.Method, route, status, dur, sw.queueWait, s.shardOf(r))
		}
	}
}

// statusWriter captures the response status for the route counters and
// carries the admission queue wait from the admit wrapper out to the
// slow log.
type statusWriter struct {
	http.ResponseWriter
	status    int
	wrote     bool
	queueWait time.Duration
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

// Status is the written status; a handler that never wrote implicitly
// answered 200.
func (w *statusWriter) Status() int {
	if !w.wrote {
		return http.StatusOK
	}
	return w.status
}

// Unwrap keeps http.ResponseController features (flush, hijack,
// deadlines) reachable through the wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// shardOf resolves the shard owning the request's item, for the slow
// log; -1 when the route carries no {id}, the store is absent, or the
// store is unsharded. Only called for requests already past the slow
// threshold, so the extra hash never touches the fast path.
func (s *Server) shardOf(r *http.Request) int {
	id := r.PathValue("id")
	if id == "" {
		return -1
	}
	if sh, ok := s.Store().(interface{ ShardFor(string) int }); ok {
		return sh.ShardFor(id)
	}
	return -1
}

// handleMetrics serves the Prometheus exposition. Never admission- or
// boot-gated: metrics must be scrapeable exactly when the server is
// saturated or still recovering its WAL.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.obsM
	if m == nil || m.handler == nil {
		writeError(w, http.StatusNotFound, "metrics disabled (start with -metrics)")
		return
	}
	m.handler.ServeHTTP(w, r)
}
