// Ontology lifecycle admin API: upload, inspect and hot-activate
// versioned ontology entries on a running server. The endpoints are
// enabled by ConfigureOntologies and live OFF the admission-gated
// path — rolling an ontology back must work while the server sheds
// solve traffic.
//
// Division of labor: the REGISTRY (osars.OntologyRegistry) is node-
// local catalog state — uploads land there on primaries and replicas
// alike. The STORE's active runtime is the replicated, durable truth:
// activation goes through the store's WAL, survives restart and ships
// to followers through the repl stream, which is why replicas refuse
// local activation (403) but accept uploads.
package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"osars"
	"osars/internal/store"
)

// OntologyInfo identifies one ontology runtime in API responses.
type OntologyInfo struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

// ReadyResponse is the 200 body of /readyz.
type ReadyResponse struct {
	Status   string       `json:"status"`
	Ontology OntologyInfo `json:"ontology"`
}

// ListOntologiesResponse is the GET /v1/ontologies reply.
type ListOntologiesResponse struct {
	Entries []osars.OntologyEntryInfo `json:"entries"`
	// Active is the serving runtime (the store's, on stateful nodes).
	Active OntologyInfo `json:"active"`
}

// UploadOntologyResponse is the PUT /v1/ontologies/{name} reply.
type UploadOntologyResponse struct {
	Name    string `json:"name"`
	Version string `json:"version"`
	// Created is false when this exact (name, version) was already
	// registered (idempotent re-upload).
	Created bool `json:"created"`
}

// ActivateOntologyResponse is the POST /v1/ontologies/{name}/activate
// reply.
type ActivateOntologyResponse struct {
	Active OntologyInfo `json:"active"`
	// Swapped is false when the named version was already active.
	Swapped   bool    `json:"swapped"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// ConfigureOntologies arms the ontology lifecycle admin API and
// per-request ontology selection with the given registry. Call before
// serving traffic.
func (s *Server) ConfigureOntologies(reg *osars.OntologyRegistry) { s.onto = reg }

// activeRuntime resolves the runtime requests serve under, in
// authority order: the store's active runtime (WAL-recovered,
// replication-advanced), then the registry's locally activated one,
// then the summarizer's config-time runtime.
func (s *Server) activeRuntime() *osars.OntologyRuntime {
	if !s.booting.Load() && s.store != nil {
		return s.store.ActiveRuntime()
	}
	if s.onto != nil {
		if rt := s.onto.Active(); rt != nil {
			return rt
		}
	}
	return s.sum.Runtime()
}

// requireRegistry answers 404 when ConfigureOntologies was never
// called.
func (s *Server) requireRegistry(w http.ResponseWriter) bool {
	if s.onto == nil {
		writeError(w, http.StatusNotFound, "ontology registry disabled (start with -ontology-dir or ConfigureOntologies)")
		return false
	}
	return true
}

func (s *Server) handleListOntologies(w http.ResponseWriter, r *http.Request) {
	if !s.requireRegistry(w) {
		return
	}
	rt := s.activeRuntime()
	writeJSON(w, http.StatusOK, ListOntologiesResponse{
		Entries: s.onto.List(),
		Active:  OntologyInfo{Name: rt.Name, Version: rt.Version},
	})
}

// handleGetOntology serves the entry's canonical encoding — the exact
// bytes whose hash is the version, suitable for re-upload to another
// node. {name} accepts "name" (latest) or "name@version".
func (s *Server) handleGetOntology(w http.ResponseWriter, r *http.Request) {
	if !s.requireRegistry(w) {
		return
	}
	ref := r.PathValue("name")
	e, _, ok := s.onto.Lookup(ref)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown ontology %q", ref))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Etag", `"`+e.Version+`"`)
	w.WriteHeader(http.StatusOK)
	w.Write(e.Payload())
}

// handlePutOntology uploads one osars-ontology/v1 entry file. The body
// is validated end to end (schema, DAG, lexicon polarities) before it
// can be registered, and the path name must match the entry's own name
// so a registry can never hold an entry under a name its payload
// disputes. Uploads are accepted on replicas too — the registry is
// node-local; only ACTIVATION is primary-only.
func (s *Server) handlePutOntology(w http.ResponseWriter, r *http.Request) {
	if !s.requireRegistry(w) {
		return
	}
	limit := s.MaxBodyBytes
	if limit <= 0 {
		limit = 64 << 20
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	e, err := osars.DecodeOntologyEntry(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if name := r.PathValue("name"); e.Name != name {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("entry is named %q but was uploaded to %q", e.Name, name))
		return
	}
	created := true
	if _, _, known := s.onto.Lookup(e.Name + "@" + e.Version); known {
		created = false
	}
	if _, err := s.onto.Register(e); err != nil {
		// Registered in memory but not persisted — surface it, the
		// upload will not survive a restart.
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, UploadOntologyResponse{Name: e.Name, Version: e.Version, Created: created})
}

// handleActivateOntology hot-swaps the store's active runtime to the
// named entry (latest version, or ?version= pins one). The swap is
// atomic: in-flight requests finish on the runtime they pinned, new
// requests see the new one, stored items re-annotate lazily. On a
// durable store the activation is WAL-logged before it applies, so it
// survives restart and replicates.
func (s *Server) handleActivateOntology(w http.ResponseWriter, r *http.Request) {
	if !s.requireRegistry(w) || !s.requireStore(w) || !s.requireWritable(w) {
		return
	}
	ref := r.PathValue("name")
	if v := r.URL.Query().Get("version"); v != "" {
		ref += "@" + v
	}
	_, rt, ok := s.onto.Lookup(ref)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown ontology %q", ref))
		return
	}
	cur := s.store.ActiveRuntime()
	swapped := cur.Name != rt.Name || cur.Version != rt.Version
	start := time.Now()
	if err := s.store.ActivateOntology(rt); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, store.ErrReadOnly) {
			status = http.StatusForbidden
		}
		writeError(w, status, err.Error())
		return
	}
	elapsed := time.Since(start)
	s.onto.SetActive(rt)
	if swapped {
		s.onto.RecordActivation(rt, elapsed)
	}
	writeJSON(w, http.StatusOK, ActivateOntologyResponse{
		Active:    OntologyInfo{Name: rt.Name, Version: rt.Version},
		Swapped:   swapped,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
	})
}
