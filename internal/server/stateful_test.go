package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"osars"
	"osars/internal/dataset"
)

// do issues one request with an optional JSON body.
func do(t *testing.T, srv http.Handler, method, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	var rdr *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rdr = bytes.NewReader(data)
	} else {
		rdr = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rdr)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

func decode(t *testing.T, w *httptest.ResponseRecorder, v interface{}) {
	t.Helper()
	if err := json.Unmarshal(w.Body.Bytes(), v); err != nil {
		t.Fatalf("decode %q: %v", w.Body.String(), err)
	}
}

func TestItemLifecycle(t *testing.T) {
	srv := testServer(t)

	// 1. Append two reviews (creates the item).
	w := do(t, srv, http.MethodPut, "/v1/items/p1/reviews", AppendReviewsRequest{
		ItemName: "Acme Phone",
		Reviews: []RawReview{
			{ID: "r1", Text: "The screen is excellent. The battery is awful."},
			{ID: "r2", Text: "Amazing screen resolution! The battery life is terrible."},
		},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("append status %d: %s", w.Code, w.Body.String())
	}
	var stats osars.ItemStats
	decode(t, w, &stats)
	if stats.ID != "p1" || stats.NumReviews != 2 || stats.NumPairs == 0 || stats.Generation == 0 {
		t.Fatalf("append stats = %+v", stats)
	}

	// 2. First summary read: solved, not cached.
	w = do(t, srv, http.MethodGet, "/v1/items/p1/summary?k=2", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("summary status %d: %s", w.Code, w.Body.String())
	}
	var sum ItemSummaryResponse
	decode(t, w, &sum)
	if sum.Cached || sum.Generation != stats.Generation || len(sum.Sentences) != 2 {
		t.Fatalf("first summary = %+v", sum)
	}

	// 3. Second identical read: served from the generation cache.
	w = do(t, srv, http.MethodGet, "/v1/items/p1/summary?k=2", nil)
	var sum2 ItemSummaryResponse
	decode(t, w, &sum2)
	if !sum2.Cached || sum2.Cost != sum.Cost {
		t.Fatalf("second summary = %+v", sum2)
	}

	// 4. Incremental append bumps the generation and invalidates.
	w = do(t, srv, http.MethodPut, "/v1/items/p1/reviews", AppendReviewsRequest{
		Reviews: []RawReview{{ID: "r3", Text: "Great camera and a decent price."}},
	})
	var stats2 osars.ItemStats
	decode(t, w, &stats2)
	if stats2.NumReviews != 3 || stats2.Generation <= stats.Generation || stats2.Name != "Acme Phone" {
		t.Fatalf("second append stats = %+v", stats2)
	}
	w = do(t, srv, http.MethodGet, "/v1/items/p1/summary?k=2&granularity=reviews&method=greedy", nil)
	var sum3 ItemSummaryResponse
	decode(t, w, &sum3)
	if sum3.Cached || sum3.Generation != stats2.Generation || len(sum3.ReviewIDs) != 2 {
		t.Fatalf("post-append summary = %+v", sum3)
	}

	// 5. Item stats and listing.
	w = do(t, srv, http.MethodGet, "/v1/items/p1", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("item stats status %d", w.Code)
	}
	w = do(t, srv, http.MethodGet, "/v1/items", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("list status %d: %s", w.Code, w.Body.String())
	}
	var list ListItemsResponse
	decode(t, w, &list)
	if len(list.Items) != 1 || list.Items[0].ID != "p1" {
		t.Fatalf("list = %+v", list)
	}
	if list.Stats.CacheHits == 0 || list.Stats.Solves == 0 || list.Stats.Appends != 2 {
		t.Fatalf("store stats = %+v", list.Stats)
	}

	// 6. Delete, then everything 404s.
	w = do(t, srv, http.MethodDelete, "/v1/items/p1", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("delete status %d: %s", w.Code, w.Body.String())
	}
	for _, path := range []string{"/v1/items/p1", "/v1/items/p1/summary?k=2"} {
		if w := do(t, srv, http.MethodGet, path, nil); w.Code != http.StatusNotFound {
			t.Fatalf("GET %s after delete = %d", path, w.Code)
		}
	}
	if w := do(t, srv, http.MethodDelete, "/v1/items/p1", nil); w.Code != http.StatusNotFound {
		t.Fatalf("double delete = %d", w.Code)
	}
}

func TestItemSummaryAllMethodsAndGranularities(t *testing.T) {
	srv := testServer(t)
	do(t, srv, http.MethodPut, "/v1/items/p1/reviews", AppendReviewsRequest{
		Reviews: validRequest().Reviews,
	})
	for _, g := range []string{"pairs", "sentences", "reviews"} {
		for _, m := range []string{"greedy", "rr", "ilp", "local-search"} {
			path := fmt.Sprintf("/v1/items/p1/summary?k=2&granularity=%s&method=%s", g, m)
			w := do(t, srv, http.MethodGet, path, nil)
			if w.Code != http.StatusOK {
				t.Fatalf("%s/%s: status %d: %s", g, m, w.Code, w.Body.String())
			}
			var sum ItemSummaryResponse
			decode(t, w, &sum)
			switch g {
			case "pairs":
				if len(sum.Pairs) != 2 || sum.Pairs[0].Concept == "" {
					t.Fatalf("%s/%s: pairs = %+v", g, m, sum.Pairs)
				}
			case "sentences":
				if len(sum.Sentences) != 2 {
					t.Fatalf("%s/%s: sentences = %v", g, m, sum.Sentences)
				}
			case "reviews":
				if len(sum.ReviewIDs) != 2 {
					t.Fatalf("%s/%s: reviews = %v", g, m, sum.ReviewIDs)
				}
			}
		}
	}
}

func TestItemSummaryValidation(t *testing.T) {
	srv := testServer(t)
	do(t, srv, http.MethodPut, "/v1/items/p1/reviews", AppendReviewsRequest{
		Reviews: validRequest().Reviews,
	})
	cases := []struct {
		path   string
		status int
	}{
		{"/v1/items/p1/summary", http.StatusBadRequest},     // missing k
		{"/v1/items/p1/summary?k=0", http.StatusBadRequest}, // k < 1
		{"/v1/items/p1/summary?k=x", http.StatusBadRequest}, // non-integer k
		{"/v1/items/p1/summary?k=2&granularity=words", http.StatusBadRequest},
		{"/v1/items/p1/summary?k=2&method=magic", http.StatusBadRequest},
		{"/v1/items/ghost/summary?k=2", http.StatusNotFound},
	}
	for _, c := range cases {
		w := do(t, srv, http.MethodGet, c.path, nil)
		if w.Code != c.status {
			t.Errorf("%s: status = %d, want %d (%s)", c.path, w.Code, c.status, w.Body.String())
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: missing error body: %s", c.path, w.Body.String())
		}
	}
}

func TestAppendReviewsValidation(t *testing.T) {
	srv := testServer(t)
	srv.MaxReviews = 2
	w := do(t, srv, http.MethodPut, "/v1/items/p1/reviews", AppendReviewsRequest{
		Reviews: validRequest().Reviews, // 3 reviews > 2
	})
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("too many reviews status = %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodPut, "/v1/items/p1/reviews", strings.NewReader("{nope"))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d", rec.Code)
	}
}

// TestOversizedBody413 pins the satellite fix: a body over
// MaxBodyBytes used to surface as "400 invalid JSON" because the
// http.MaxBytesReader error was swallowed by the JSON decoder; it must
// be a 413.
func TestOversizedBody413(t *testing.T) {
	srv := testServer(t)
	srv.MaxBodyBytes = 64
	big := validRequest()
	big.Reviews[0].Text = strings.Repeat("the screen is great. ", 50)
	for _, c := range []struct {
		method, path string
	}{
		{http.MethodPost, "/v1/summarize"},
		{http.MethodPut, "/v1/items/p1/reviews"},
	} {
		w := do(t, srv, c.method, c.path, big)
		if w.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s %s: status = %d, want 413 (%s)", c.method, c.path, w.Code, w.Body.String())
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || !strings.Contains(e.Error, "exceeds") {
			t.Errorf("%s %s: error body = %s", c.method, c.path, w.Body.String())
		}
	}
}

// TestHealthzRejectsNonGET pins the other consistency satellite:
// /healthz and /v1/ontology both refuse non-GET verbs with a JSON 405.
func TestHealthzRejectsNonGET(t *testing.T) {
	srv := testServer(t)
	for _, path := range []string{"/healthz", "/v1/ontology"} {
		w := do(t, srv, http.MethodPost, path, map[string]string{"x": "y"})
		if w.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status = %d, want 405", path, w.Code)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("POST %s: missing JSON error body: %s", path, w.Body.String())
		}
	}
}

func TestStatelessModeDisablesItems(t *testing.T) {
	s, err := osars.New(osars.Config{Ontology: dataset.CellPhoneOntology()})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithStore(s, nil)
	if srv.Store() != nil {
		t.Fatal("expected nil store")
	}
	w := do(t, srv, http.MethodPut, "/v1/items/p1/reviews", AppendReviewsRequest{
		Reviews: validRequest().Reviews,
	})
	if w.Code != http.StatusNotFound {
		t.Fatalf("stateless append status = %d", w.Code)
	}
	// The stateless endpoint still works.
	w = do(t, srv, http.MethodPost, "/v1/summarize", validRequest())
	if w.Code != http.StatusOK {
		t.Fatalf("stateless summarize status = %d: %s", w.Code, w.Body.String())
	}
}
