package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"osars"
	"osars/internal/dataset"
	"osars/internal/ontology"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	s, err := osars.New(osars.Config{Ontology: dataset.CellPhoneOntology()})
	if err != nil {
		t.Fatal(err)
	}
	return New(s)
}

func post(t *testing.T, srv http.Handler, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

func validRequest() SummarizeRequest {
	return SummarizeRequest{
		ItemID:   "p1",
		ItemName: "Acme Phone",
		Reviews: []RawReview{
			{ID: "r1", Text: "The screen is excellent. The battery is awful."},
			{ID: "r2", Text: "Amazing screen resolution! The battery life is terrible."},
			{ID: "r3", Text: "Great camera and a decent price."},
		},
		K: 2,
	}
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", w.Code, w.Body.String())
	}
}

func TestSummarizeSentences(t *testing.T) {
	srv := testServer(t)
	w := post(t, srv, "/v1/summarize", validRequest())
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp SummarizeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Sentences) != 2 || resp.Granularity != "sentences" || resp.Method != "greedy" {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.NumPairs < 4 || resp.Cost < 0 {
		t.Fatalf("implausible resp = %+v", resp)
	}
}

func TestSummarizeAllMethodsAndGranularities(t *testing.T) {
	srv := testServer(t)
	for _, g := range []string{"pairs", "sentences", "reviews"} {
		for _, m := range []string{"greedy", "rr", "ilp", "local-search"} {
			req := validRequest()
			req.Granularity = g
			req.Method = m
			w := post(t, srv, "/v1/summarize", req)
			if w.Code != http.StatusOK {
				t.Fatalf("%s/%s: status %d: %s", g, m, w.Code, w.Body.String())
			}
			var resp SummarizeResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			switch g {
			case "pairs":
				if len(resp.Pairs) != 2 {
					t.Fatalf("%s/%s: pairs = %v", g, m, resp.Pairs)
				}
				if resp.Pairs[0].Concept == "" {
					t.Fatalf("%s/%s: concept name missing", g, m)
				}
			case "sentences":
				if len(resp.Sentences) != 2 {
					t.Fatalf("%s/%s: sentences = %v", g, m, resp.Sentences)
				}
			case "reviews":
				if len(resp.ReviewIDs) != 2 {
					t.Fatalf("%s/%s: reviews = %v", g, m, resp.ReviewIDs)
				}
			}
		}
	}
}

func TestSummarizeValidation(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		name   string
		mutate func(*SummarizeRequest)
		status int
	}{
		{"zero k", func(r *SummarizeRequest) { r.K = 0 }, http.StatusBadRequest},
		{"no reviews", func(r *SummarizeRequest) { r.Reviews = nil }, http.StatusBadRequest},
		{"bad granularity", func(r *SummarizeRequest) { r.Granularity = "words" }, http.StatusBadRequest},
		{"bad method", func(r *SummarizeRequest) { r.Method = "magic" }, http.StatusBadRequest},
	}
	for _, c := range cases {
		req := validRequest()
		c.mutate(&req)
		w := post(t, srv, "/v1/summarize", req)
		if w.Code != c.status {
			t.Errorf("%s: status = %d, want %d (%s)", c.name, w.Code, c.status, w.Body.String())
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: missing error body: %s", c.name, w.Body.String())
		}
	}
}

func TestSummarizeRejectsOversized(t *testing.T) {
	srv := testServer(t)
	srv.MaxReviews = 2
	req := validRequest() // has 3 reviews
	w := post(t, srv, "/v1/summarize", req)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", w.Code)
	}
}

func TestSummarizeBadJSONAndVerb(t *testing.T) {
	srv := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/summarize", strings.NewReader("{not json"))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d", w.Code)
	}
	req = httptest.NewRequest(http.MethodGet, "/v1/summarize", nil)
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", w.Code)
	}
}

func TestOntologyEndpoint(t *testing.T) {
	srv := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/v1/ontology", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var ont ontology.Ontology
	if err := json.Unmarshal(w.Body.Bytes(), &ont); err != nil {
		t.Fatalf("ontology not round-trippable: %v", err)
	}
	if ont.Len() < 60 {
		t.Fatalf("ontology too small: %v", &ont)
	}
	// Wrong verb.
	req = httptest.NewRequest(http.MethodPost, "/v1/ontology", nil)
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST ontology status = %d", w.Code)
	}
}
