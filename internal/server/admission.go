// Admission control for the serving path: per-endpoint-class
// concurrency limits with a bounded wait queue and load shedding.
//
// A summarization service has two very different request classes:
// cheap reads (item stats, listings) that touch only map lookups, and
// expensive solves (stateless summarize, cache-miss stored summaries)
// that run annotation and a coverage solve. Under overload, unbounded
// concurrency makes everything slow at once — goroutines pile up,
// memory grows with the backlog, and every client eventually times
// out. Admission control inverts that: each class admits at most N
// requests at a time, a bounded queue absorbs short bursts (evicting
// waiters on deadline or client disconnect), and once the queue is
// full the server sheds load immediately with 429 + Retry-After — a
// fast, actionable answer instead of a hung connection.
package server

import (
	"context"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"osars/internal/obs"
)

// Admission defaults.
const (
	// DefaultQueueWait is how long a request may wait for an admission
	// slot before being shed.
	DefaultQueueWait = 1 * time.Second
	// defaultQueuePerSlot sizes the wait queue as a multiple of the
	// concurrency limit when AdmissionConfig.MaxQueue is zero.
	defaultQueuePerSlot = 4
)

// AdmissionConfig tunes the server's per-class admission control.
// Zero-valued limits leave a class unlimited (the pre-admission
// behavior).
type AdmissionConfig struct {
	// MaxInflightSolves bounds concurrently running solve-class
	// requests (POST /v1/summarize and GET /v1/items/{id}/summary).
	// ≤ 0 means unlimited.
	MaxInflightSolves int
	// MaxInflightReads bounds concurrently running cheap-read
	// requests (GET /v1/items and GET /v1/items/{id}). ≤ 0 means
	// unlimited. Reads are so cheap that the default leaves them
	// unlimited; the knob exists for pathological listing storms.
	MaxInflightReads int
	// MaxQueue bounds how many requests per class may wait for a slot
	// (default 4× the class limit). Beyond it requests are shed
	// immediately with 429.
	MaxQueue int
	// QueueWait is the longest a request may wait for a slot before
	// being shed with 429 (default DefaultQueueWait). The request's
	// own context cancelling (client disconnect, server shutdown)
	// evicts it from the queue early.
	QueueWait time.Duration
}

// verdict is the outcome of one admission attempt.
type verdict int

const (
	admitted     verdict = iota // run; caller must release()
	shedFull                    // queue full → 429 now
	shedTimeout                 // waited QueueWait without a slot → 429
	shedCanceled                // client/server context fired while queued
)

// limiter is one endpoint class's admission state: a slot semaphore, a
// bounded wait-queue counter and shed/observability counters.
type limiter struct {
	limit    int
	slots    chan struct{}
	maxQueue int64
	wait     time.Duration

	queued        atomic.Int64
	queueHigh     atomic.Int64
	admitted      atomic.Uint64
	shedFullN     atomic.Uint64
	shedTimeoutN  atomic.Uint64
	shedCanceledN atomic.Uint64

	// lobs mirrors the counters above into the metric registry once
	// armObs runs; the zero value (nil instruments) is free to record
	// into, so acquire never branches on "is observability on".
	lobs limiterObs
}

// limiterObs is one class's interned admission instruments.
type limiterObs struct {
	admitted *obs.Counter
	queuedN  *obs.Counter
	shed     [3]*obs.Counter // indexed by verdict - shedFull
	depth    *obs.Histogram  // queue depth observed at enqueue
	waitHist *obs.Histogram  // time spent queued (queued requests only)
}

// shedReasons maps verdict - shedFull to the shed counter's reason
// label.
var shedReasons = [3]string{"queue_full", "timeout", "canceled"}

// armObs interns the admission instruments for both classes. Nil
// receiver and nil registry are no-ops.
func (a *admission) armObs(reg *obs.Registry) {
	if a == nil || reg == nil {
		return
	}
	a.solves.armObs(reg, "solves")
	a.reads.armObs(reg, "reads")
}

func (l *limiter) armObs(reg *obs.Registry, class string) {
	if l == nil {
		return
	}
	l.lobs = limiterObs{
		admitted: reg.CounterVec("osars_admission_admitted_total",
			"Requests that got an admission slot.", "class").With(class),
		queuedN: reg.CounterVec("osars_admission_queued_total",
			"Requests that had to wait in the admission queue.", "class").With(class),
		depth: reg.HistogramVec("osars_admission_queue_depth",
			"Queue depth observed by each request at enqueue time.",
			obs.SizeBuckets, "class").With(class),
		waitHist: reg.HistogramVec("osars_admission_queue_wait_seconds",
			"Time queued requests spent waiting for a slot, whatever the outcome.",
			nil, "class").With(class),
	}
	shed := reg.CounterVec("osars_admission_shed_total",
		"Requests shed with 429, per reason.", "class", "reason")
	for i, reason := range shedReasons {
		l.lobs.shed[i] = shed.With(class, reason)
	}
}

// newLimiter builds a class limiter; limit ≤ 0 returns nil (the nil
// limiter admits everything).
func newLimiter(limit, maxQueue int, wait time.Duration) *limiter {
	if limit <= 0 {
		return nil
	}
	if maxQueue <= 0 {
		maxQueue = limit * defaultQueuePerSlot
	}
	if wait <= 0 {
		wait = DefaultQueueWait
	}
	return &limiter{
		limit:    limit,
		slots:    make(chan struct{}, limit),
		maxQueue: int64(maxQueue),
		wait:     wait,
	}
}

// acquire tries to admit one request: immediately when a slot is
// free, after a bounded queue wait otherwise. On admitted the caller
// MUST call release exactly once; on every other verdict release is
// nil. waited is the time spent in the queue (zero on the fast path
// and on queue-full sheds) — it feeds the slow log's queue_wait field.
func (l *limiter) acquire(ctx context.Context) (release func(), v verdict, waited time.Duration) {
	if l == nil {
		return func() {}, admitted, 0
	}
	// Fast path: free slot, no queueing, no clock read.
	select {
	case l.slots <- struct{}{}:
		l.admitted.Add(1)
		l.lobs.admitted.Inc()
		return l.release, admitted, 0
	default:
	}
	// Queue, bounded. The increment-then-check keeps the check
	// race-free: overshooting readers self-correct by decrementing.
	q := l.queued.Add(1)
	if q > l.maxQueue {
		l.queued.Add(-1)
		l.shedFullN.Add(1)
		l.lobs.shed[0].Inc() // queue_full
		return nil, shedFull, 0
	}
	// Track the deepest queue seen (observability: a rising high-water
	// mark under steady traffic means the limit is too low or solves
	// got slower).
	for {
		h := l.queueHigh.Load()
		if q <= h || l.queueHigh.CompareAndSwap(h, q) {
			break
		}
	}
	l.lobs.queuedN.Inc()
	l.lobs.depth.Observe(float64(q))
	enq := time.Now()
	timer := time.NewTimer(l.wait)
	defer timer.Stop()
	defer l.queued.Add(-1)
	record := func(v verdict) time.Duration {
		waited := time.Since(enq)
		l.lobs.waitHist.Observe(waited.Seconds())
		if v == admitted {
			l.lobs.admitted.Inc()
		} else {
			l.lobs.shed[v-shedFull].Inc()
		}
		return waited
	}
	select {
	case l.slots <- struct{}{}:
		l.admitted.Add(1)
		return l.release, admitted, record(admitted)
	case <-timer.C:
		l.shedTimeoutN.Add(1)
		return nil, shedTimeout, record(shedTimeout)
	case <-ctx.Done():
		l.shedCanceledN.Add(1)
		return nil, shedCanceled, record(shedCanceled)
	}
}

func (l *limiter) release() { <-l.slots }

// ClassStats is one admission class's observable state.
type ClassStats struct {
	// Limit is the configured concurrency bound (0 = unlimited).
	Limit int `json:"limit"`
	// Inflight is the number of currently admitted requests.
	Inflight int `json:"inflight"`
	// Queued is the number of requests currently waiting for a slot.
	Queued int `json:"queued"`
	// QueueHighWater is the deepest wait queue observed since boot.
	QueueHighWater int `json:"queue_high_water"`
	// Admitted counts requests that got a slot.
	Admitted uint64 `json:"admitted"`
	// ShedQueueFull counts requests shed immediately because the wait
	// queue was full.
	ShedQueueFull uint64 `json:"shed_queue_full"`
	// ShedTimeout counts requests shed after waiting QueueWait.
	ShedTimeout uint64 `json:"shed_timeout"`
	// ShedCanceled counts queued requests whose client went away.
	ShedCanceled uint64 `json:"shed_canceled"`
}

func (l *limiter) stats() ClassStats {
	if l == nil {
		return ClassStats{}
	}
	return ClassStats{
		Limit:          l.limit,
		Inflight:       len(l.slots),
		Queued:         int(l.queued.Load()),
		QueueHighWater: int(l.queueHigh.Load()),
		Admitted:       l.admitted.Load(),
		ShedQueueFull:  l.shedFullN.Load(),
		ShedTimeout:    l.shedTimeoutN.Load(),
		ShedCanceled:   l.shedCanceledN.Load(),
	}
}

// AdmissionStats is the per-class admission breakdown served by
// GET /v1/stats.
type AdmissionStats struct {
	Solves ClassStats `json:"solves"`
	Reads  ClassStats `json:"reads"`
}

// admission owns the server's class limiters.
type admission struct {
	solves *limiter
	reads  *limiter
	wait   time.Duration
}

func newAdmission(cfg AdmissionConfig) *admission {
	wait := cfg.QueueWait
	if wait <= 0 {
		wait = DefaultQueueWait
	}
	return &admission{
		solves: newLimiter(cfg.MaxInflightSolves, cfg.MaxQueue, wait),
		reads:  newLimiter(cfg.MaxInflightReads, cfg.MaxQueue, wait),
		wait:   wait,
	}
}

func (a *admission) stats() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	return AdmissionStats{Solves: a.solves.stats(), Reads: a.reads.stats()}
}

// retryAfterSeconds is the Retry-After hint on shed responses: the
// queue wait rounded up to a whole second (at least 1) — by then at
// least one full queue generation has drained.
func (a *admission) retryAfterSeconds() int {
	secs := int((a.wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// shedResponse is the 429 body: the queue depth at shed time lets a
// client (or operator reading an error sample) tell a momentary burst
// from a deep standing backlog, and the retry hint is machine-readable
// without parsing the Retry-After header.
type shedResponse struct {
	Error             string `json:"error"`
	QueueDepth        int    `json:"queue_depth"`
	RetryAfterSeconds int    `json:"retry_after_seconds"`
}

// admit wraps a handler with one class limiter. Shed requests get
// 429 + Retry-After and never reach the handler; a queued request
// whose client disconnected gets nothing (the connection is gone).
// The queue wait is deposited on the instrumentation's statusWriter
// (when present) so the slow log can report it.
func (s *Server) admit(class func(*admission) *limiter, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		a := s.admission
		if a == nil {
			h(w, r)
			return
		}
		lim := class(a)
		release, v, waited := lim.acquire(r.Context())
		if sw, ok := w.(*statusWriter); ok {
			sw.queueWait = waited
		}
		switch v {
		case admitted:
			defer release()
			h(w, r)
		case shedFull, shedTimeout:
			retry := a.retryAfterSeconds()
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			writeJSON(w, http.StatusTooManyRequests, shedResponse{
				Error:             "server is at capacity; retry later",
				QueueDepth:        int(lim.queued.Load()),
				RetryAfterSeconds: retry,
			})
		case shedCanceled:
			// The client is gone; nothing useful can be written.
		}
	}
}

func solveClass(a *admission) *limiter { return a.solves }
func readClass(a *admission) *limiter  { return a.reads }
