package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"osars"
	"osars/internal/dataset"
)

// entryPayload builds an uploadable osars-ontology/v1 file for the
// cell-phone ontology; eps differentiates versions.
func entryPayload(t *testing.T, name string, eps float64) (*osars.OntologyEntry, []byte) {
	t.Helper()
	e, err := osars.NewOntologyEntry(name, dataset.CellPhoneOntology(), nil, eps)
	if err != nil {
		t.Fatal(err)
	}
	return e, e.Payload()
}

// ontoServer is a stateful server with the lifecycle admin API armed.
func ontoServer(t *testing.T) (*Server, osars.Store, *osars.OntologyRegistry) {
	t.Helper()
	sum, err := osars.New(osars.Config{Ontology: dataset.CellPhoneOntology()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sum.OpenStore(osars.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := NewWithStore(sum, st)
	reg := osars.NewOntologyRegistry(osars.OntologyRegistryOptions{})
	srv.ConfigureOntologies(reg)
	return srv, st, reg
}

// doRaw issues one request with a raw byte body.
func doRaw(t *testing.T, srv http.Handler, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

func TestOntologyAPIDisabledWithoutRegistry(t *testing.T) {
	srv := testServer(t) // no ConfigureOntologies
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/ontologies"},
		{http.MethodGet, "/v1/ontologies/phone"},
		{http.MethodPut, "/v1/ontologies/phone"},
		{http.MethodPost, "/v1/ontologies/phone/activate"},
	} {
		if w := doRaw(t, srv, probe.method, probe.path, nil); w.Code != http.StatusNotFound {
			t.Fatalf("%s %s without a registry: status %d", probe.method, probe.path, w.Code)
		}
	}
}

func TestOntologyLifecycleAPI(t *testing.T) {
	srv, st, _ := ontoServer(t)
	e2, payload2 := entryPayload(t, "phone", 0.9)
	bootVersion := st.ActiveRuntime().Version

	// Upload: 201 on first sight, 200 on the idempotent re-upload.
	w := doRaw(t, srv, http.MethodPut, "/v1/ontologies/phone", payload2)
	if w.Code != http.StatusCreated {
		t.Fatalf("upload status %d: %s", w.Code, w.Body.String())
	}
	var up UploadOntologyResponse
	decode(t, w, &up)
	if up.Name != "phone" || up.Version != e2.Version || !up.Created {
		t.Fatalf("upload response = %+v", up)
	}
	w = doRaw(t, srv, http.MethodPut, "/v1/ontologies/phone", payload2)
	if w.Code != http.StatusOK {
		t.Fatalf("re-upload status %d: %s", w.Code, w.Body.String())
	}
	decode(t, w, &up)
	if up.Created {
		t.Fatal("re-upload claimed Created")
	}

	// Path/name mismatch and invalid bodies are rejected before the
	// registry sees them.
	if w := doRaw(t, srv, http.MethodPut, "/v1/ontologies/tablet", payload2); w.Code != http.StatusBadRequest {
		t.Fatalf("name-mismatch upload status %d", w.Code)
	}
	if w := doRaw(t, srv, http.MethodPut, "/v1/ontologies/phone", []byte("{torn")); w.Code != http.StatusBadRequest {
		t.Fatalf("torn upload status %d", w.Code)
	}

	// GET returns the canonical bytes (re-uploadable elsewhere).
	w = doRaw(t, srv, http.MethodGet, "/v1/ontologies/phone@"+e2.Version, nil)
	if w.Code != http.StatusOK || !bytes.Equal(w.Body.Bytes(), payload2) {
		t.Fatalf("download: status %d, bytes match %v", w.Code, bytes.Equal(w.Body.Bytes(), payload2))
	}
	if w := doRaw(t, srv, http.MethodGet, "/v1/ontologies/nope", nil); w.Code != http.StatusNotFound {
		t.Fatalf("download of unknown entry: status %d", w.Code)
	}

	// List shows the upload; the active runtime is still the boot one.
	var list ListOntologiesResponse
	w = doRaw(t, srv, http.MethodGet, "/v1/ontologies", nil)
	decode(t, w, &list)
	if len(list.Entries) != 1 || list.Entries[0].Version != e2.Version {
		t.Fatalf("list entries = %+v", list.Entries)
	}
	if list.Active.Version != bootVersion {
		t.Fatalf("list active = %+v, want boot version %s", list.Active, bootVersion)
	}

	// Ingest an item, then hot-activate: no restart, no data loss.
	w = do(t, srv, http.MethodPut, "/v1/items/p1/reviews", AppendReviewsRequest{
		ItemName: "Acme Phone",
		Reviews:  []RawReview{{ID: "r1", Text: "The screen is excellent. The battery is awful."}},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("append status %d: %s", w.Code, w.Body.String())
	}

	if w := doRaw(t, srv, http.MethodPost, "/v1/ontologies/nope/activate", nil); w.Code != http.StatusNotFound {
		t.Fatalf("activate unknown: status %d", w.Code)
	}
	if w := doRaw(t, srv, http.MethodPost, "/v1/ontologies/phone/activate?version=beef", nil); w.Code != http.StatusNotFound {
		t.Fatalf("activate unknown version: status %d", w.Code)
	}
	w = doRaw(t, srv, http.MethodPost, "/v1/ontologies/phone/activate", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("activate status %d: %s", w.Code, w.Body.String())
	}
	var act ActivateOntologyResponse
	decode(t, w, &act)
	if act.Active.Version != e2.Version || !act.Swapped {
		t.Fatalf("activate response = %+v", act)
	}
	if rt := st.ActiveRuntime(); rt.Version != e2.Version {
		t.Fatalf("store runtime after activate = %s, want %s", rt.Version, e2.Version)
	}
	// Re-activation reports Swapped=false.
	w = doRaw(t, srv, http.MethodPost, "/v1/ontologies/phone/activate", nil)
	decode(t, w, &act)
	if act.Swapped {
		t.Fatal("re-activation claimed a swap")
	}

	// The stored item now solves — and is labeled — under the new
	// version (the pre-swap cache cannot answer).
	w = do(t, srv, http.MethodGet, "/v1/items/p1/summary?k=2", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("summary status %d: %s", w.Code, w.Body.String())
	}
	var sum ItemSummaryResponse
	decode(t, w, &sum)
	if sum.OntologyVersion != e2.Version || sum.Ontology != "phone" {
		t.Fatalf("post-swap summary runtime = %s@%s, want phone@%s", sum.Ontology, sum.OntologyVersion, e2.Version)
	}

	// /readyz and /v1/stats report the active identity.
	var ready ReadyResponse
	w = doRaw(t, srv, http.MethodGet, "/readyz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("readyz status %d", w.Code)
	}
	decode(t, w, &ready)
	if ready.Ontology.Name != "phone" || ready.Ontology.Version != e2.Version {
		t.Fatalf("readyz ontology = %+v", ready.Ontology)
	}
	var stats StatsResponse
	w = doRaw(t, srv, http.MethodGet, "/v1/stats", nil)
	decode(t, w, &stats)
	if stats.Ontology == nil || stats.Ontology.Version != e2.Version {
		t.Fatalf("stats ontology = %+v", stats.Ontology)
	}
	if stats.Store == nil || stats.Store.ActiveOntologyVersion != e2.Version {
		t.Fatalf("stats store ontology = %+v", stats.Store)
	}
}

// TestSummarizePerRequestOntology: the stateless endpoint may pin a
// registered domain per call; the active runtime is untouched.
func TestSummarizePerRequestOntology(t *testing.T) {
	srv, st, reg := ontoServer(t)
	e2, _ := entryPayload(t, "phone-strict", 0.9)
	if _, err := reg.Register(e2); err != nil {
		t.Fatal(err)
	}
	before := st.ActiveRuntime().Version

	req := SummarizeRequest{
		ItemID:   "p1",
		K:        2,
		Ontology: "phone-strict",
		Reviews:  []RawReview{{ID: "r1", Text: "The screen is excellent. The battery is awful."}},
	}
	w := do(t, srv, http.MethodPost, "/v1/summarize", req)
	if w.Code != http.StatusOK {
		t.Fatalf("summarize status %d: %s", w.Code, w.Body.String())
	}
	var resp SummarizeResponse
	decode(t, w, &resp)
	if resp.Ontology != "phone-strict" || resp.OntologyVersion != e2.Version {
		t.Fatalf("per-request runtime = %s@%s, want phone-strict@%s", resp.Ontology, resp.OntologyVersion, e2.Version)
	}
	if st.ActiveRuntime().Version != before {
		t.Fatal("per-request selection moved the active runtime")
	}

	req.Ontology = "nope"
	if w := do(t, srv, http.MethodPost, "/v1/summarize", req); w.Code != http.StatusNotFound {
		t.Fatalf("unknown per-request ontology: status %d: %s", w.Code, w.Body.String())
	}

	// Without a registry, naming an ontology is a client error, not a
	// silent fallback to the active one.
	plain := testServer(t)
	w = do(t, plain, http.MethodPost, "/v1/summarize", req)
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), "registry") {
		t.Fatalf("ontology selection without registry: status %d: %s", w.Code, w.Body.String())
	}
}
