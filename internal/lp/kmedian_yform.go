package lp

import (
	"fmt"
	"math"
)

import "osars/internal/coverage"

// NewKMedianModelYForm builds the paper's §4.2 program literally, with
// one y_{p,q} variable per coverage edge and explicit y ≤ x rows:
//
//	minimize   Σ_{(p,q)∈E} y_pq·d(p,q)
//	s.t.       x_r = 1;  Σ_{p∈P\{r}} x_p = k;
//	           Σ_{p:(p,q)∈E} y_pq = 1  ∀q ∈ W;
//	           0 ≤ y_pq ≤ x_p;  x ∈ [0,1]
//
// It is exactly equivalent to NewKMedianModel's layer-cake form — the
// equivalence is asserted by tests and measured by the
// BenchmarkAblationILPForm benches — but has Θ(|E|) rows instead of
// Θ(|W|·levels), so the compact form is the production default.
func NewKMedianModelYForm(g *coverage.Graph, k int) *KMedianModel {
	if k < 0 || k > g.NumCandidates {
		panic(fmt.Sprintf("lp: k = %d out of range [0, %d]", k, g.NumCandidates))
	}
	m := &KMedianModel{
		Problem: NewProblem(),
		XVars:   make([]int, g.NumCandidates),
		K:       k,
	}
	for u := range m.XVars {
		m.XVars[u] = m.Problem.AddVar(0, 0, 1)
	}
	xRoot := m.Problem.AddVar(0, 1, 1) // x_r fixed to 1

	// One assignment row per pair, one VUB row per edge.
	for w := range g.Pairs {
		mult := float64(g.Weight[w])
		D := float64(g.RootDist[w]) * mult
		var asgIdx []int32
		var asgCoef []float64
		g.Coverers(w, func(u, dist int) bool {
			y := m.Problem.AddVar(float64(dist)*mult, 0, Inf)
			// y_uw ≤ x_u  ⇔  y_uw − x_u ≤ 0
			m.Problem.AddRow(LE, 0,
				[]int32{int32(y), int32(m.XVars[u])},
				[]float64{1, -1})
			asgIdx = append(asgIdx, int32(y))
			asgCoef = append(asgCoef, 1)
			return true
		})
		// Root edge: y_rw ≤ x_r with weight D.
		yr := m.Problem.AddVar(D, 0, Inf)
		m.Problem.AddRow(LE, 0, []int32{int32(yr), int32(xRoot)}, []float64{1, -1})
		asgIdx = append(asgIdx, int32(yr))
		asgCoef = append(asgCoef, 1)
		m.Problem.AddRow(EQ, 1, asgIdx, asgCoef)
	}

	idx := make([]int32, len(m.XVars))
	coef := make([]float64, len(m.XVars))
	for u, v := range m.XVars {
		idx[u] = int32(v)
		coef[u] = 1
	}
	m.Problem.AddRow(EQ, float64(k), idx, coef)
	return m
}

// ModelSizes reports rows/columns of a built model, for the form
// comparison in EXPERIMENTS.md.
func (m *KMedianModel) ModelSizes() (rows, cols int) {
	return m.Problem.NumRows(), m.Problem.NumVars()
}

// verifyFormsAgree is a debug helper comparing both formulations'
// LP optima; exported tests use it on random instances.
func verifyFormsAgree(g *coverage.Graph, k int) error {
	z := NewKMedianModel(g, k)
	y := NewKMedianModelYForm(g, k)
	zres, err := z.SolveLP(nil)
	if err != nil {
		return fmt.Errorf("z-form LP: %w", err)
	}
	yres, err := y.SolveLP(nil)
	if err != nil {
		return fmt.Errorf("y-form LP: %w", err)
	}
	if math.Abs(zres.Objective-yres.Objective) > 1e-5*(1+math.Abs(zres.Objective)) {
		return fmt.Errorf("LP optima differ: z-form %v, y-form %v", zres.Objective, yres.Objective)
	}
	return nil
}
