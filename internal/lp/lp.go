// Package lp is a self-contained linear-programming and mixed-integer
// solver, standing in for the Gurobi library the paper uses (§4.2,
// §5.1). It implements:
//
//   - a dense full-tableau bounded-variable primal simplex with a
//     two-phase start, Dantzig pricing and a Bland anti-cycling
//     fallback (lp.go);
//   - a best-first branch-and-bound MIP solver on top of the LP
//     relaxation (mip.go);
//   - a k-medians model builder that converts a coverage graph into
//     the paper's §4.2 integer program (kmedian.go).
//
// The solver is exact in the sense the experiments need: it returns an
// optimal basic solution of the LP relaxation (for randomized rounding,
// §4.3) and the optimal integer solution (for the ILP baseline, §4.2).
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a row comparison operator.
type Op int8

// Row operators.
const (
	LE Op = iota // ≤
	GE           // ≥
	EQ           // =
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Inf is the bound value representing ±infinity.
var Inf = math.Inf(1)

// Problem is an LP in the form
//
//	minimize    obj · v
//	subject to  row_i · v  (≤ | ≥ | =)  rhs_i   for every row
//	            lo ≤ v ≤ up
//
// Build one with NewProblem, AddVar and AddRow, then call Solve.
type Problem struct {
	obj  []float64
	lo   []float64
	up   []float64
	rows []row
}

type row struct {
	idx  []int32
	coef []float64
	op   Op
	rhs  float64
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// NumVars reports the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.obj) }

// NumRows reports the number of constraint rows added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddVar appends a variable with the given objective coefficient and
// bounds (use -Inf / Inf for unbounded sides) and returns its index.
// At least one bound must be finite.
func (p *Problem) AddVar(obj, lo, up float64) int {
	if lo > up {
		panic(fmt.Sprintf("lp: AddVar lo %v > up %v", lo, up))
	}
	if math.IsInf(lo, -1) && math.IsInf(up, 1) {
		panic("lp: free variables are not supported")
	}
	p.obj = append(p.obj, obj)
	p.lo = append(p.lo, lo)
	p.up = append(p.up, up)
	return len(p.obj) - 1
}

// SetBounds tightens or relaxes the bounds of variable v (used by
// branch-and-bound to fix binaries).
func (p *Problem) SetBounds(v int, lo, up float64) {
	if lo > up {
		panic(fmt.Sprintf("lp: SetBounds lo %v > up %v", lo, up))
	}
	p.lo[v] = lo
	p.up[v] = up
}

// Bounds returns the current bounds of variable v.
func (p *Problem) Bounds(v int) (lo, up float64) { return p.lo[v], p.up[v] }

// AddRow appends the constraint Σ coef[i]·v[idx[i]] (op) rhs. Indices
// must be distinct and in range.
func (p *Problem) AddRow(op Op, rhs float64, idx []int32, coef []float64) {
	if len(idx) != len(coef) {
		panic("lp: AddRow len(idx) != len(coef)")
	}
	for _, j := range idx {
		if int(j) >= len(p.obj) || j < 0 {
			panic(fmt.Sprintf("lp: AddRow index %d out of range", j))
		}
	}
	r := row{idx: append([]int32(nil), idx...), coef: append([]float64(nil), coef...), op: op, rhs: rhs}
	p.rows = append(p.rows, r)
}

// Status reports the outcome of Solve.
type Status int8

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of Solve. X has one entry per variable added
// with AddVar. Objective is meaningful only when Status == Optimal.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	Iters     int
}

// Options tune the simplex. The zero value picks sensible defaults.
type Options struct {
	// MaxIters caps total pivots across both phases (default 50·(m+n)).
	MaxIters int
	// Tol is the feasibility/optimality tolerance (default 1e-7).
	Tol float64
	// Bland forces Bland's rule from the first pivot (slow but
	// cycle-proof); by default Dantzig pricing is used with an
	// automatic Bland fallback after long degenerate stretches.
	Bland bool
}

const (
	atLower int8 = iota
	atUpper
	basic
)

// simplex is the working state of one solve.
type simplex struct {
	m, n    int // rows, total columns (structural + slack + artificial)
	nStruct int
	nSlack  int
	tab     []float64 // m×n tableau, row-major: B⁻¹A
	beta    []float64 // current values of basic variables, per row
	d       []float64 // reduced costs, per column
	cost    []float64 // current phase objective, per column
	lo, up  []float64
	vstat   []int8
	bas     []int // basis: column of the basic variable of each row
	tol     float64
	bland   bool
	degen   int // consecutive degenerate pivots (Bland trigger)
	iters   int
	maxIt   int
}

// Solve runs the two-phase bounded-variable simplex.
func (p *Problem) Solve(opt *Options) (*Solution, error) {
	var o Options
	if opt != nil {
		o = *opt
	}
	if o.Tol == 0 {
		o.Tol = 1e-7
	}
	m := len(p.rows)
	nStruct := len(p.obj)
	n := nStruct + m + m // structural + one slack per row + one artificial per row
	if o.MaxIters == 0 {
		o.MaxIters = 50 * (m + n)
		if o.MaxIters < 2000 {
			o.MaxIters = 2000
		}
	}
	s := &simplex{
		m: m, n: n, nStruct: nStruct, nSlack: m,
		tab:   make([]float64, m*n),
		beta:  make([]float64, m),
		d:     make([]float64, n),
		cost:  make([]float64, n),
		lo:    make([]float64, n),
		up:    make([]float64, n),
		vstat: make([]int8, n),
		bas:   make([]int, m),
		tol:   o.Tol,
		bland: o.Bland,
		maxIt: o.MaxIters,
	}
	copy(s.lo, p.lo)
	copy(s.up, p.up)

	// Slack bounds encode the row operator: row·v + slack = rhs.
	for i, r := range p.rows {
		j := nStruct + i
		switch r.op {
		case LE:
			s.lo[j], s.up[j] = 0, Inf
		case GE:
			s.lo[j], s.up[j] = math.Inf(-1), 0
		case EQ:
			s.lo[j], s.up[j] = 0, 0
		}
	}

	// Nonbasic start: every structural & slack variable at a finite
	// bound (prefer lower).
	val := func(j int) float64 {
		switch s.vstat[j] {
		case atLower:
			return s.lo[j]
		case atUpper:
			return s.up[j]
		}
		return 0
	}
	for j := 0; j < nStruct+m; j++ {
		if !math.IsInf(s.lo[j], -1) {
			s.vstat[j] = atLower
		} else {
			s.vstat[j] = atUpper
		}
	}

	// Fill tableau columns: structural coefficients and +1 slacks.
	for i, r := range p.rows {
		rowOff := i * n
		for t, j := range r.idx {
			s.tab[rowOff+int(j)] += r.coef[t]
		}
		s.tab[rowOff+nStruct+i] = 1
	}

	// Residuals decide artificial signs; artificials form the basis.
	for i, r := range p.rows {
		rowOff := i * n
		resid := r.rhs
		for j := 0; j < nStruct+m; j++ {
			if c := s.tab[rowOff+j]; c != 0 {
				resid -= c * val(j)
			}
		}
		aj := nStruct + m + i
		s.lo[aj], s.up[aj] = 0, Inf
		sign := 1.0
		if resid < 0 {
			sign = -1
		}
		// Scale the whole row so the artificial column is +1 and the
		// artificial's value (= scaled residual) is nonnegative.
		if sign < 0 {
			for j := 0; j < n; j++ {
				s.tab[rowOff+j] = -s.tab[rowOff+j]
			}
			resid = -resid
		}
		s.tab[rowOff+aj] = 1
		s.vstat[aj] = basic
		s.bas[i] = aj
		s.beta[i] = resid
	}

	// Phase 1: minimize the sum of artificials.
	for i := 0; i < m; i++ {
		s.cost[nStruct+m+i] = 1
	}
	s.initReducedCosts()
	st := s.iterate()
	if st == IterLimit {
		return &Solution{Status: IterLimit, Iters: s.iters}, errors.New("lp: phase-1 iteration limit")
	}
	if st == Unbounded {
		return nil, errors.New("lp: phase-1 unbounded (internal error)")
	}
	if phase1 := s.objValue(val); phase1 > 1e3*s.tol {
		return &Solution{Status: Infeasible, Iters: s.iters}, nil
	}

	// Phase 2: pin artificials to zero and switch to the real costs.
	for i := 0; i < m; i++ {
		j := nStruct + m + i
		s.lo[j], s.up[j] = 0, 0
		s.cost[j] = 0
		if s.vstat[j] == atUpper {
			s.vstat[j] = atLower
		}
	}
	for j := 0; j < nStruct; j++ {
		s.cost[j] = p.obj[j]
	}
	for j := nStruct; j < nStruct+m; j++ {
		s.cost[j] = 0
	}
	s.initReducedCosts()
	s.degen = 0
	st = s.iterate()

	sol := &Solution{Status: st, Iters: s.iters, X: make([]float64, nStruct)}
	for j := 0; j < nStruct; j++ {
		sol.X[j] = val(j)
	}
	for i, j := range s.bas {
		if j < nStruct {
			sol.X[j] = s.beta[i]
		}
	}
	// Clamp tiny bound violations from floating-point drift.
	for j := range sol.X {
		if sol.X[j] < p.lo[j] {
			sol.X[j] = p.lo[j]
		}
		if sol.X[j] > p.up[j] {
			sol.X[j] = p.up[j]
		}
	}
	obj := 0.0
	for j, x := range sol.X {
		obj += p.obj[j] * x
	}
	sol.Objective = obj
	if st == IterLimit {
		return sol, errors.New("lp: phase-2 iteration limit")
	}
	return sol, nil
}

// initReducedCosts computes d = cost - cost_B·(B⁻¹A) from scratch.
func (s *simplex) initReducedCosts() {
	copy(s.d, s.cost)
	for i, bj := range s.bas {
		cb := s.cost[bj]
		if cb == 0 {
			continue
		}
		rowOff := i * s.n
		for j := 0; j < s.n; j++ {
			s.d[j] -= cb * s.tab[rowOff+j]
		}
	}
	// The reduced cost of a basic variable is exactly zero; enforce it
	// to keep pricing honest under drift.
	for _, bj := range s.bas {
		s.d[bj] = 0
	}
}

func (s *simplex) objValue(val func(int) float64) float64 {
	obj := 0.0
	for j := 0; j < s.n; j++ {
		if s.cost[j] == 0 {
			continue
		}
		if s.vstat[j] == basic {
			continue
		}
		obj += s.cost[j] * val(j)
	}
	for i, bj := range s.bas {
		obj += s.cost[bj] * s.beta[i]
	}
	return obj
}

// iterate runs primal pivots until optimal/unbounded/limit.
func (s *simplex) iterate() Status {
	for ; s.iters < s.maxIt; s.iters++ {
		useBland := s.bland || s.degen > 2*(s.m+1)
		j, dir := s.price(useBland)
		if j < 0 {
			return Optimal
		}
		st := s.pivot(j, dir, useBland)
		if st != 0 {
			return st
		}
	}
	return IterLimit
}

// price selects an entering column and its movement direction
// (+1 increase from lower, -1 decrease from upper), or (-1, 0) when
// optimal.
func (s *simplex) price(useBland bool) (enter int, dir float64) {
	best, bestViol := -1, s.tol
	for j := 0; j < s.n; j++ {
		var viol, dj float64
		switch s.vstat[j] {
		case atLower:
			if s.lo[j] == s.up[j] {
				continue // fixed variable can never improve
			}
			dj = s.d[j]
			viol = -dj
		case atUpper:
			if s.lo[j] == s.up[j] {
				continue
			}
			dj = s.d[j]
			viol = dj
		default:
			continue
		}
		if viol > bestViol {
			if useBland {
				return j, entDir(s.vstat[j])
			}
			best, bestViol = j, viol
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, entDir(s.vstat[best])
}

func entDir(st int8) float64 {
	if st == atLower {
		return 1
	}
	return -1
}

// pivot moves entering column j in direction dir as far as bounds
// allow, performing either a bound flip or a basis exchange. Returns
// Unbounded if nothing blocks, 0 otherwise.
func (s *simplex) pivot(j int, dir float64, useBland bool) Status {
	// Ratio test.
	tBound := s.up[j] - s.lo[j] // entering hits its own far bound
	tBest := tBound
	leave := -1
	leaveToUpper := false
	for i := 0; i < s.m; i++ {
		a := s.tab[i*s.n+j]
		if a > -1e-11 && a < 1e-11 {
			continue
		}
		coef := dir * a
		bj := s.bas[i]
		var t float64
		var toUpper bool
		if coef > 0 {
			if math.IsInf(s.lo[bj], -1) {
				continue
			}
			t = (s.beta[i] - s.lo[bj]) / coef
		} else {
			if math.IsInf(s.up[bj], 1) {
				continue
			}
			t = (s.beta[i] - s.up[bj]) / coef
			toUpper = true
		}
		if t < 0 {
			t = 0 // numerical drift: basic slightly out of bounds
		}
		if t > tBest+1e-12 {
			continue
		}
		if leave < 0 || t < tBest-1e-12 {
			tBest, leave, leaveToUpper = t, i, toUpper
			continue
		}
		// Tie-break among blocking rows: Bland picks the smallest
		// variable index (anti-cycling); default picks the largest
		// pivot magnitude (numerical stability).
		swap := false
		if useBland {
			swap = bj < s.bas[leave]
		} else {
			swap = math.Abs(a) > math.Abs(s.tab[leave*s.n+j])
		}
		if swap {
			if t < tBest {
				tBest = t
			}
			leave, leaveToUpper = i, toUpper
		}
	}

	if leave < 0 {
		// Nothing blocks except possibly the entering bound itself.
		if math.IsInf(tBound, 1) {
			return Unbounded
		}
		// Bound flip: entering jumps to its other bound.
		s.applyStep(j, dir, tBound)
		if s.vstat[j] == atLower {
			s.vstat[j] = atUpper
		} else {
			s.vstat[j] = atLower
		}
		s.degen = 0
		return 0
	}

	if tBest <= s.tol {
		s.degen++
	} else {
		s.degen = 0
	}

	// Basis exchange: entering j replaces basic variable of row
	// `leave`.
	s.applyStep(j, dir, tBest)
	out := s.bas[leave]
	if leaveToUpper {
		s.vstat[out] = atUpper
	} else {
		s.vstat[out] = atLower
	}

	// Row reduce so column j becomes the unit vector of row `leave`.
	rowOff := leave * s.n
	piv := s.tab[rowOff+j]
	inv := 1 / piv
	for t := 0; t < s.n; t++ {
		s.tab[rowOff+t] *= inv
	}
	s.tab[rowOff+j] = 1 // exact
	enteringVal := s.enterVal(j, dir, tBest)
	for i := 0; i < s.m; i++ {
		if i == leave {
			continue
		}
		f := s.tab[i*s.n+j]
		if f == 0 {
			continue
		}
		off := i * s.n
		for t := 0; t < s.n; t++ {
			s.tab[off+t] -= f * s.tab[rowOff+t]
		}
		s.tab[off+j] = 0 // exact
	}
	if f := s.d[j]; f != 0 {
		for t := 0; t < s.n; t++ {
			s.d[t] -= f * s.tab[rowOff+t]
		}
		s.d[j] = 0
	}
	s.bas[leave] = j
	s.vstat[j] = basic
	s.beta[leave] = enteringVal
	return 0
}

// applyStep advances entering variable j by step t in direction dir,
// updating all basic values.
func (s *simplex) applyStep(j int, dir, t float64) {
	if t == 0 {
		return
	}
	for i := 0; i < s.m; i++ {
		a := s.tab[i*s.n+j]
		if a != 0 {
			s.beta[i] -= dir * t * a
		}
	}
}

// enterVal is the value the entering variable takes after moving t.
func (s *simplex) enterVal(j int, dir, t float64) float64 {
	if dir > 0 {
		return s.lo[j] + t
	}
	return s.up[j] - t
}
