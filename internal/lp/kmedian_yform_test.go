package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickYFormMatchesZFormLP: the two formulations have identical
// LP-relaxation optima on random instances — the correctness claim
// behind using the compact z-form in production.
func TestQuickYFormMatchesZFormLP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomInstance(rng, 10, 10)
		for k := 0; k <= 3 && k <= g.NumCandidates; k++ {
			if err := verifyFormsAgree(g, k); err != nil {
				t.Logf("seed %d k %d: %v", seed, k, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestYFormILPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		g := randomInstance(rng, 9, 8)
		for k := 0; k <= 2 && k <= g.NumCandidates; k++ {
			m := NewKMedianModelYForm(g, k)
			res, err := m.SolveILP(nil, nil)
			if err != nil {
				t.Fatalf("trial %d k %d: %v", trial, k, err)
			}
			want := bruteForceOpt(g, k)
			if math.Abs(res.Objective-want) > 1e-6 {
				t.Fatalf("trial %d k %d: y-form ILP %v, brute force %v", trial, k, res.Objective, want)
			}
		}
	}
}

func TestYFormIsLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomInstance(rng, 20, 40)
	z := NewKMedianModel(g, 3)
	y := NewKMedianModelYForm(g, 3)
	zr, zc := z.ModelSizes()
	yr, yc := y.ModelSizes()
	if yr <= zr || yc <= zc {
		t.Fatalf("expected y-form (%dx%d) to dominate z-form (%dx%d)", yr, yc, zr, zc)
	}
}

func TestYFormPanicsOnBadK(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomInstance(rng, 6, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKMedianModelYForm(g, g.NumCandidates+1)
}
