package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func near(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimplexTextbook(t *testing.T) {
	// max 3a + 5b s.t. a ≤ 4, 2b ≤ 12, 3a + 2b ≤ 18 (Dantzig's
	// classic): optimum 36 at (2, 6). As minimization: min -3a-5b.
	p := NewProblem()
	a := p.AddVar(-3, 0, Inf)
	b := p.AddVar(-5, 0, Inf)
	p.AddRow(LE, 4, []int32{int32(a)}, []float64{1})
	p.AddRow(LE, 12, []int32{int32(b)}, []float64{2})
	p.AddRow(LE, 18, []int32{int32(a), int32(b)}, []float64{3, 2})
	sol := solveOK(t, p)
	if !near(sol.Objective, -36) || !near(sol.X[a], 2) || !near(sol.X[b], 6) {
		t.Fatalf("got obj %v at %v, want -36 at (2,6)", sol.Objective, sol.X)
	}
}

func TestSimplexEquality(t *testing.T) {
	// min x + 2y s.t. x + y = 10, x ≤ 4 → x=4, y=6, obj 16.
	p := NewProblem()
	x := p.AddVar(1, 0, 4)
	y := p.AddVar(2, 0, Inf)
	p.AddRow(EQ, 10, []int32{int32(x), int32(y)}, []float64{1, 1})
	sol := solveOK(t, p)
	if !near(sol.Objective, 16) || !near(sol.X[x], 4) || !near(sol.X[y], 6) {
		t.Fatalf("got obj %v at %v, want 16 at (4,6)", sol.Objective, sol.X)
	}
}

func TestSimplexGE(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 5, x ≥ 1 → (5,0)? x+y≥5 with obj 2x+3y:
	// prefer x: x=5,y=0 obj 10.
	p := NewProblem()
	x := p.AddVar(2, 1, Inf)
	y := p.AddVar(3, 0, Inf)
	p.AddRow(GE, 5, []int32{int32(x), int32(y)}, []float64{1, 1})
	sol := solveOK(t, p)
	if !near(sol.Objective, 10) || !near(sol.X[x], 5) {
		t.Fatalf("got obj %v at %v, want 10 at (5,0)", sol.Objective, sol.X)
	}
}

func TestSimplexUpperBoundedVars(t *testing.T) {
	// min -(x+y+z), x,y,z ∈ [0,1], x + y + z ≤ 2 → obj -2.
	p := NewProblem()
	vars := []int32{}
	for i := 0; i < 3; i++ {
		vars = append(vars, int32(p.AddVar(-1, 0, 1)))
	}
	p.AddRow(LE, 2, vars, []float64{1, 1, 1})
	sol := solveOK(t, p)
	if !near(sol.Objective, -2) {
		t.Fatalf("obj = %v, want -2", sol.Objective)
	}
	sum := sol.X[0] + sol.X[1] + sol.X[2]
	if !near(sum, 2) {
		t.Fatalf("Σx = %v, want 2", sum)
	}
}

func TestSimplexNegativeLowerBound(t *testing.T) {
	// min x s.t. x ≥ -3 (lower bound), x + y = 0, y ≤ 2 → x = -2.
	p := NewProblem()
	x := p.AddVar(1, -3, Inf)
	y := p.AddVar(0, 0, 2)
	p.AddRow(EQ, 0, []int32{int32(x), int32(y)}, []float64{1, 1})
	sol := solveOK(t, p)
	if !near(sol.Objective, -2) || !near(sol.X[x], -2) || !near(sol.X[y], 2) {
		t.Fatalf("got obj %v at %v, want -2 at (-2,2)", sol.Objective, sol.X)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1, 0, 1)
	p.AddRow(GE, 5, []int32{int32(x)}, []float64{1})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSimplexInfeasibleEquality(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, 0, 1)
	y := p.AddVar(0, 0, 1)
	p.AddRow(EQ, 1, []int32{int32(x), int32(y)}, []float64{1, 1})
	p.AddRow(EQ, 3, []int32{int32(x), int32(y)}, []float64{1, 1})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(-1, 0, Inf)
	y := p.AddVar(0, 0, 1)
	p.AddRow(GE, 0, []int32{int32(x), int32(y)}, []float64{1, 1})
	sol, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Beale's classic cycling example (with Dantzig pricing and no
	// safeguards the tableau cycles). Optimal value -0.05.
	p := NewProblem()
	x1 := p.AddVar(-0.75, 0, Inf)
	x2 := p.AddVar(150, 0, Inf)
	x3 := p.AddVar(-0.02, 0, Inf)
	x4 := p.AddVar(6, 0, Inf)
	idx := []int32{int32(x1), int32(x2), int32(x3), int32(x4)}
	p.AddRow(LE, 0, idx, []float64{0.25, -60, -0.04, 9})
	p.AddRow(LE, 0, idx, []float64{0.5, -90, -0.02, 3})
	p.AddRow(LE, 1, []int32{int32(x3)}, []float64{1})
	sol := solveOK(t, p)
	if !near(sol.Objective, -0.05) {
		t.Fatalf("obj = %v, want -0.05", sol.Objective)
	}
}

func TestSimplexBlandOption(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(-1, 0, 3)
	y := p.AddVar(-2, 0, 4)
	p.AddRow(LE, 5, []int32{int32(x), int32(y)}, []float64{1, 1})
	sol, err := p.Solve(&Options{Bland: true})
	if err != nil {
		t.Fatal(err)
	}
	if !near(sol.Objective, -9) { // y=4, x=1
		t.Fatalf("obj = %v, want -9", sol.Objective)
	}
}

func TestSimplexFixedVariable(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1, 2, 2) // fixed at 2
	y := p.AddVar(1, 0, Inf)
	p.AddRow(GE, 5, []int32{int32(x), int32(y)}, []float64{1, 1})
	sol := solveOK(t, p)
	if !near(sol.X[x], 2) || !near(sol.X[y], 3) {
		t.Fatalf("got %v, want (2,3)", sol.X)
	}
}

func TestSimplexRejectsFreeVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for free variable")
		}
	}()
	NewProblem().AddVar(1, math.Inf(-1), Inf)
}

func TestSimplexRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lo > up")
		}
	}()
	NewProblem().AddVar(1, 2, 1)
}

func TestSetBoundsAndResolve(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(-1, 0, 10)
	p.AddRow(LE, 7, []int32{int32(x)}, []float64{1})
	sol := solveOK(t, p)
	if !near(sol.X[x], 7) {
		t.Fatalf("x = %v, want 7", sol.X[x])
	}
	p.SetBounds(x, 0, 3)
	sol = solveOK(t, p)
	if !near(sol.X[x], 3) {
		t.Fatalf("after SetBounds x = %v, want 3", sol.X[x])
	}
	if lo, up := p.Bounds(x); lo != 0 || up != 3 {
		t.Fatalf("Bounds = (%v,%v), want (0,3)", lo, up)
	}
}

func TestMIPKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c ≤ 6, binary.
	// Best: a + c (weight 5, value 17); b + c (6, 20) ✓.
	p := NewProblem()
	a := p.AddVar(-10, 0, 1)
	b := p.AddVar(-13, 0, 1)
	c := p.AddVar(-7, 0, 1)
	p.AddRow(LE, 6, []int32{int32(a), int32(b), int32(c)}, []float64{3, 4, 2})
	sol, err := SolveMIP(p, []int{a, b, c}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !near(sol.Objective, -20) {
		t.Fatalf("MIP obj = %v (%v), want -20", sol.Objective, sol.Status)
	}
	if !near(sol.X[b], 1) || !near(sol.X[c], 1) || !near(sol.X[a], 0) {
		t.Fatalf("MIP x = %v, want (0,1,1)", sol.X)
	}
}

func TestMIPSetCover(t *testing.T) {
	// Universe {1..4}; sets S0={1,2}, S1={2,3}, S2={3,4}, S3={1,4},
	// S4={1,2,3}. Min cover: {S4, S2} (or {S0,S2}) → size 2.
	p := NewProblem()
	var vars []int
	for i := 0; i < 5; i++ {
		vars = append(vars, p.AddVar(1, 0, 1))
	}
	membership := [][]int{{0, 3, 4}, {0, 1, 4}, {1, 2, 4}, {2, 3}}
	for _, sets := range membership {
		idx := make([]int32, len(sets))
		coef := make([]float64, len(sets))
		for i, s := range sets {
			idx[i] = int32(vars[s])
			coef[i] = 1
		}
		p.AddRow(GE, 1, idx, coef)
	}
	sol, err := SolveMIP(p, vars, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !near(sol.Objective, 2) {
		t.Fatalf("set cover obj = %v, want 2", sol.Objective)
	}
}

func TestMIPInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1, 0, 1)
	p.AddRow(GE, 2, []int32{int32(x)}, []float64{1})
	sol, err := SolveMIP(p, []int{x}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestMIPFractionalGapForcesBranching(t *testing.T) {
	// min -(x+y) s.t. 2x + 2y ≤ 3, binary: LP relax gives 1.5 sum,
	// integer optimum picks exactly one → obj -1.
	p := NewProblem()
	x := p.AddVar(-1, 0, 1)
	y := p.AddVar(-1, 0, 1)
	p.AddRow(LE, 3, []int32{int32(x), int32(y)}, []float64{2, 2})
	sol, err := SolveMIP(p, []int{x, y}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !near(sol.Objective, -1) {
		t.Fatalf("obj = %v, want -1", sol.Objective)
	}
	if sol.Nodes < 1 {
		t.Fatalf("expected at least the root node, got %d", sol.Nodes)
	}
}

func TestMIPRestoresBounds(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(-1, 0, 1)
	y := p.AddVar(-1, 0, 1)
	p.AddRow(LE, 3, []int32{int32(x), int32(y)}, []float64{2, 2})
	if _, err := SolveMIP(p, []int{x, y}, nil); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{x, y} {
		if lo, up := p.Bounds(v); lo != 0 || up != 1 {
			t.Fatalf("bounds of %d not restored: (%v,%v)", v, lo, up)
		}
	}
}

func TestMIPIncumbentPruning(t *testing.T) {
	// Incumbent equal to the optimum: solver proves optimality and
	// returns nil X with the incumbent objective.
	p := NewProblem()
	x := p.AddVar(1, 0, 1)
	y := p.AddVar(1, 0, 1)
	p.AddRow(GE, 1, []int32{int32(x), int32(y)}, []float64{1, 1})
	inc := 1.0
	sol, err := SolveMIP(p, []int{x, y}, &MIPOptions{Incumbent: &inc})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !near(sol.Objective, 1) {
		t.Fatalf("got %v obj %v, want optimal 1", sol.Status, sol.Objective)
	}
	if sol.X != nil {
		t.Fatalf("expected nil X when incumbent is optimal, got %v", sol.X)
	}
}

func TestFractionalIsIntegral(t *testing.T) {
	if !FractionalIsIntegral([]float64{0, 1, 1.0000000001, -0.0000000001}, 1e-6) {
		t.Fatal("near-integral vector rejected")
	}
	if FractionalIsIntegral([]float64{0.5}, 1e-6) {
		t.Fatal("fractional vector accepted")
	}
}

func TestMIPGeneralIntegerDeepBranching(t *testing.T) {
	// max x + 2y s.t. 3x + 4y ≤ 10.5, x,y ∈ {0..5}. The LP relaxation
	// is fractional at several nodes and the same variable must be
	// branched more than once along a path (general integers, not
	// binaries), exercising the bound-override merging and the open
	// node heap. Optimum: 4 (e.g. x=0,y=2 or x=2,y=1).
	p := NewProblem()
	x := p.AddVar(-1, 0, 5)
	y := p.AddVar(-2, 0, 5)
	p.AddRow(LE, 10.5, []int32{int32(x), int32(y)}, []float64{3, 4})
	sol, err := SolveMIP(p, []int{x, y}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !near(sol.Objective, -4) {
		t.Fatalf("got %v obj %v, want optimal -4", sol.Status, sol.Objective)
	}
	for _, v := range []int{x, y} {
		if f := sol.X[v] - math.Floor(sol.X[v]); f > 1e-6 && f < 1-1e-6 {
			t.Fatalf("non-integral solution %v", sol.X)
		}
	}
	if sol.Nodes < 2 {
		t.Fatalf("expected real branching, got %d nodes", sol.Nodes)
	}
}

func TestMIPHarderGeneralInteger(t *testing.T) {
	// A small integer program with an awkward LP polytope: maximize
	// 5a + 4b + 3c s.t. 2a+3b+c ≤ 5, 4a+b+2c ≤ 11, 3a+4b+2c ≤ 8 with
	// a,b,c ∈ {0..3}. Integer optimum 13 at (1,0,...): enumerate —
	// a=1,b=0,c=3: rows 2+0+3=5 ✓, 4+0+6=10 ✓, 3+0+6=9 >8 ✗.
	// a=2,b=0,c=1: 5 ✓, 10 ✓, 8 ✓ → value 13.
	p := NewProblem()
	a := p.AddVar(-5, 0, 3)
	b := p.AddVar(-4, 0, 3)
	c := p.AddVar(-3, 0, 3)
	idx := []int32{int32(a), int32(b), int32(c)}
	p.AddRow(LE, 5, idx, []float64{2, 3, 1})
	p.AddRow(LE, 11, idx, []float64{4, 1, 2})
	p.AddRow(LE, 8, idx, []float64{3, 4, 2})
	sol, err := SolveMIP(p, []int{a, b, c}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !near(sol.Objective, -13) {
		t.Fatalf("got %v obj %v, want -13", sol.Status, sol.Objective)
	}
}

func TestOpAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Fatal("Op strings wrong")
	}
	if Op(9).String() == "" {
		t.Fatal("unknown Op should stringify")
	}
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterLimit: "iteration-limit",
	} {
		if s.String() != want {
			t.Fatalf("Status %d = %q", s, s.String())
		}
	}
	if Status(9).String() == "" {
		t.Fatal("unknown Status should stringify")
	}
}

func TestMIPRandomKnapsacksMatchBruteForce(t *testing.T) {
	// Random 10-item binary knapsacks keep several open nodes in the
	// best-first frontier (exercising the node heap) and are checked
	// against exhaustive enumeration.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		n := 10
		values := make([]float64, n)
		weights := make([]float64, n)
		wsum := 0.0
		for i := 0; i < n; i++ {
			values[i] = 1 + math.Round(rng.Float64()*90)/10
			weights[i] = 1 + math.Round(rng.Float64()*90)/10
			wsum += weights[i]
		}
		cap := math.Round(wsum * 0.4)

		p := NewProblem()
		idx := make([]int32, n)
		coef := make([]float64, n)
		vars := make([]int, n)
		for i := 0; i < n; i++ {
			vars[i] = p.AddVar(-values[i], 0, 1)
			idx[i] = int32(vars[i])
			coef[i] = weights[i]
		}
		p.AddRow(LE, cap, idx, coef)
		sol, err := SolveMIP(p, vars, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Brute force over all 2^10 subsets.
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			w, v := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w += weights[i]
					v += values[i]
				}
			}
			if w <= cap && v > best {
				best = v
			}
		}
		if !near(sol.Objective, -best) {
			t.Fatalf("trial %d: MIP %v, brute force %v", trial, -sol.Objective, best)
		}
	}
}
