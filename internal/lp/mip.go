package lp

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// MIPOptions tune the branch-and-bound solver. The zero value picks
// defaults suitable for the summarization ILPs.
type MIPOptions struct {
	// MaxNodes caps the number of explored nodes (default 20000).
	MaxNodes int
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// Incumbent, when non-nil, provides a known feasible objective
	// value used to prune from the start (e.g. from the greedy
	// algorithm). Gap pruning uses Incumbent-1e-9.
	Incumbent *float64
	// LP options forwarded to every node solve.
	LP Options
}

// MIPSolution is the result of SolveMIP.
type MIPSolution struct {
	Status    Status
	Objective float64
	X         []float64
	Nodes     int
	LPIters   int
}

// bbNode is one open branch-and-bound node: a set of bound overrides
// relative to the root problem.
type bbNode struct {
	bound  float64 // LP relaxation objective (lower bound)
	fixLo  []float64
	fixUp  []float64
	fixVar []int
}

type nodeHeap []*bbNode

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*bbNode)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// SolveMIP minimizes the problem with the listed variables restricted
// to integer values, by best-first branch and bound over the LP
// relaxation. The problem's variable bounds are restored before
// returning. All integer variables must have finite bounds.
func SolveMIP(p *Problem, intVars []int, opt *MIPOptions) (*MIPSolution, error) {
	var o MIPOptions
	if opt != nil {
		o = *opt
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 20000
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	for _, v := range intVars {
		if math.IsInf(p.lo[v], -1) || math.IsInf(p.up[v], 1) {
			return nil, fmt.Errorf("lp: integer variable %d must have finite bounds", v)
		}
	}

	// Preserve root bounds so node overrides can be undone.
	savedLo := append([]float64(nil), p.lo...)
	savedUp := append([]float64(nil), p.up...)
	defer func() {
		copy(p.lo, savedLo)
		copy(p.up, savedUp)
	}()

	best := math.Inf(1)
	if o.Incumbent != nil {
		best = *o.Incumbent
	}
	var bestX []float64

	res := &MIPSolution{Status: Infeasible}
	solveNode := func(nd *bbNode) (*Solution, error) {
		copy(p.lo, savedLo)
		copy(p.up, savedUp)
		for i, v := range nd.fixVar {
			p.lo[v] = nd.fixLo[i]
			p.up[v] = nd.fixUp[i]
		}
		sol, err := p.Solve(&o.LP)
		if sol != nil {
			res.LPIters += sol.Iters
		}
		return sol, err
	}

	// mostFractional picks the branch variable; returns -1 if the
	// relaxation is already integral.
	mostFractional := func(x []float64) int {
		pick, worst := -1, o.IntTol
		for _, v := range intVars {
			f := x[v] - math.Floor(x[v])
			if f > 0.5 {
				f = 1 - f
			}
			if f > worst {
				pick, worst = v, f
			}
		}
		return pick
	}

	open := &nodeHeap{}
	root := &bbNode{}
	rootSol, err := solveNode(root)
	if err != nil {
		return nil, err
	}
	switch rootSol.Status {
	case Infeasible:
		return res, nil
	case Unbounded:
		return nil, errors.New("lp: MIP relaxation unbounded")
	}
	root.bound = rootSol.Objective
	heap.Push(open, root)
	pending := map[*bbNode]*Solution{root: rootSol}

	for open.Len() > 0 {
		if res.Nodes >= o.MaxNodes {
			res.Status = IterLimit
			res.Objective = best
			res.X = bestX
			return res, errors.New("lp: MIP node limit reached")
		}
		nd := heap.Pop(open).(*bbNode)
		res.Nodes++
		sol := pending[nd]
		delete(pending, nd)
		if sol == nil {
			s, err := solveNode(nd)
			if err != nil {
				return nil, err
			}
			if s.Status != Optimal {
				continue
			}
			sol = s
			nd.bound = s.Objective
		}
		if nd.bound >= best-1e-9 {
			continue // bounded out (best-first: all remaining nodes too, but cheap to keep draining)
		}
		bv := mostFractional(sol.X)
		if bv < 0 {
			// Integral: new incumbent.
			if sol.Objective < best-1e-9 {
				best = sol.Objective
				bestX = append([]float64(nil), sol.X...)
			}
			continue
		}
		fl := math.Floor(sol.X[bv])
		for side := 0; side < 2; side++ {
			child := &bbNode{
				fixVar: append(append([]int(nil), nd.fixVar...), bv),
				fixLo:  append(append([]float64(nil), nd.fixLo...), 0),
				fixUp:  append(append([]float64(nil), nd.fixUp...), 0),
			}
			last := len(child.fixVar) - 1
			if side == 0 { // x ≤ floor
				child.fixLo[last] = savedLo[bv]
				child.fixUp[last] = fl
				if anyOverride(nd, bv) {
					child.fixLo[last], child.fixUp[last] = overrideRange(nd, bv, savedLo[bv], savedUp[bv])
					child.fixUp[last] = math.Min(child.fixUp[last], fl)
				}
			} else { // x ≥ floor+1
				child.fixLo[last] = fl + 1
				child.fixUp[last] = savedUp[bv]
				if anyOverride(nd, bv) {
					clo, cup := overrideRange(nd, bv, savedLo[bv], savedUp[bv])
					child.fixLo[last] = math.Max(clo, fl+1)
					child.fixUp[last] = cup
				}
			}
			if child.fixLo[last] > child.fixUp[last] {
				continue // empty domain
			}
			csol, err := solveNode(child)
			if err != nil {
				return nil, err
			}
			if csol.Status != Optimal {
				continue
			}
			child.bound = csol.Objective
			if child.bound >= best-1e-9 {
				continue
			}
			if iv := mostFractional(csol.X); iv < 0 {
				if csol.Objective < best-1e-9 {
					best = csol.Objective
					bestX = append([]float64(nil), csol.X...)
				}
				continue
			}
			heap.Push(open, child)
			pending[child] = csol
		}
	}

	if bestX == nil {
		if o.Incumbent != nil && !math.IsInf(best, 1) {
			// The externally provided incumbent was already optimal;
			// report its value with no X (caller already has it).
			res.Status = Optimal
			res.Objective = best
			return res, nil
		}
		res.Status = Infeasible
		return res, nil
	}
	res.Status = Optimal
	res.Objective = best
	res.X = bestX
	return res, nil
}

func anyOverride(nd *bbNode, v int) bool {
	for _, fv := range nd.fixVar {
		if fv == v {
			return true
		}
	}
	return false
}

// overrideRange returns the tightest bound override for v along the
// node's fix list (later entries are tighter).
func overrideRange(nd *bbNode, v int, lo, up float64) (float64, float64) {
	for i, fv := range nd.fixVar {
		if fv == v {
			lo, up = nd.fixLo[i], nd.fixUp[i]
		}
	}
	return lo, up
}
