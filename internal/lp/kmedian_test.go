package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"osars/internal/coverage"
	"osars/internal/model"
	"osars/internal/ontology"
)

// randomInstance builds a random DAG ontology plus a pair multiset and
// returns its pairs-granularity coverage graph.
func randomInstance(rng *rand.Rand, maxConcepts, maxPairs int) *coverage.Graph {
	var b ontology.Builder
	n := 2 + rng.Intn(maxConcepts-1)
	ids := make([]ontology.ConceptID, n)
	for i := 0; i < n; i++ {
		ids[i] = b.AddConcept("c" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676)))
		if i > 0 {
			b.AddEdge(ids[rng.Intn(i)], ids[i])
			if i >= 2 && rng.Intn(4) == 0 {
				b.AddEdge(ids[rng.Intn(i)], ids[i])
			}
		}
	}
	o, err := b.Build()
	if err != nil {
		panic(err)
	}
	P := make([]model.Pair, 1+rng.Intn(maxPairs))
	for i := range P {
		P[i] = model.Pair{Concept: ids[rng.Intn(n)], Sentiment: math.Round(rng.Float64()*20-10) / 10}
	}
	return coverage.BuildPairs(model.Metric{Ont: o, Epsilon: 0.5}, P)
}

// bruteForceOpt enumerates all size-k candidate subsets.
func bruteForceOpt(g *coverage.Graph, k int) float64 {
	n := g.NumCandidates
	sel := make([]int, k)
	best := math.Inf(1)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			if c := g.CostOf(sel); c < best {
				best = c
			}
			return
		}
		for i := start; i <= n-(k-depth); i++ {
			sel[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return best
}

func TestKMedianILPMatchesBruteForceSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		g := randomInstance(rng, 10, 9)
		for k := 0; k <= 3 && k <= g.NumCandidates; k++ {
			m := NewKMedianModel(g, k)
			res, err := m.SolveILP(nil, nil)
			if err != nil {
				t.Fatalf("trial %d k %d: %v", trial, k, err)
			}
			want := bruteForceOpt(g, k)
			if math.Abs(res.Objective-want) > 1e-6 {
				t.Fatalf("trial %d k %d: ILP %v, brute force %v", trial, k, res.Objective, want)
			}
			if res.Selected != nil {
				if got := g.CostOf(res.Selected); math.Abs(got-res.Objective) > 1e-6 {
					t.Fatalf("trial %d k %d: selection cost %v != objective %v", trial, k, got, res.Objective)
				}
			}
		}
	}
}

func TestKMedianLPIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomInstance(rng, 12, 10)
		k := 1 + rng.Intn(3)
		if k > g.NumCandidates {
			k = g.NumCandidates
		}
		m := NewKMedianModel(g, k)
		lpRes, err := m.SolveLP(nil)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceOpt(g, k)
		if lpRes.Objective > want+1e-6 {
			t.Fatalf("trial %d: LP bound %v exceeds integer optimum %v", trial, lpRes.Objective, want)
		}
		// Σ x = k must hold for the fractional solution too.
		sum := 0.0
		for _, x := range lpRes.X {
			sum += x
		}
		if math.Abs(sum-float64(k)) > 1e-6 {
			t.Fatalf("trial %d: Σx = %v, want %d", trial, sum, k)
		}
		for _, x := range lpRes.X {
			if x < -1e-9 || x > 1+1e-9 {
				t.Fatalf("trial %d: x out of [0,1]: %v", trial, x)
			}
		}
	}
}

func TestKMedianKZeroAndFull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomInstance(rng, 8, 8)
	// k = 0: optimum is the empty-summary cost (everything to root).
	m := NewKMedianModel(g, 0)
	res, err := m.SolveILP(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-g.EmptyCost()) > 1e-6 {
		t.Fatalf("k=0 objective %v, want empty cost %v", res.Objective, g.EmptyCost())
	}
	// k = all: selecting everything is optimal and costs CostOf(all).
	all := make([]int, g.NumCandidates)
	for i := range all {
		all[i] = i
	}
	m = NewKMedianModel(g, g.NumCandidates)
	res, err = m.SolveILP(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-g.CostOf(all)) > 1e-6 {
		t.Fatalf("k=n objective %v, want %v", res.Objective, g.CostOf(all))
	}
}

func TestKMedianPanicsOnBadK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomInstance(rng, 6, 5)
	for _, k := range []int{-1, g.NumCandidates + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("k=%d: expected panic", k)
				}
			}()
			NewKMedianModel(g, k)
		}()
	}
}

func TestKMedianIncumbentSpeedsProof(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomInstance(rng, 10, 9)
	k := 2
	if k > g.NumCandidates {
		k = g.NumCandidates
	}
	opt := bruteForceOpt(g, k)
	m := NewKMedianModel(g, k)
	res, err := m.SolveILP(&opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-opt) > 1e-6 {
		t.Fatalf("objective %v, want %v", res.Objective, opt)
	}
}

// Property: on random instances the ILP optimum is between the LP bound
// and the cost of any specific feasible selection.
func TestQuickKMedianSandwich(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomInstance(rng, 9, 8)
		k := 1 + rng.Intn(2)
		if k > g.NumCandidates {
			k = g.NumCandidates
		}
		m := NewKMedianModel(g, k)
		lpRes, err := m.SolveLP(nil)
		if err != nil {
			t.Logf("LP: %v", err)
			return false
		}
		ilpRes, err := m.SolveILP(nil, nil)
		if err != nil {
			t.Logf("ILP: %v", err)
			return false
		}
		if lpRes.Objective > ilpRes.Objective+1e-6 {
			t.Logf("LP %v > ILP %v", lpRes.Objective, ilpRes.Objective)
			return false
		}
		// Any greedy-ish feasible pick is an upper bound.
		sel := make([]int, 0, k)
		for i := 0; i < k; i++ {
			sel = append(sel, i)
		}
		if ilpRes.Objective > g.CostOf(sel)+1e-6 {
			t.Logf("ILP %v > feasible %v", ilpRes.Objective, g.CostOf(sel))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
