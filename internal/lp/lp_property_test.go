package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomLP builds a small random LP with box-bounded variables and a
// mix of row types that is guaranteed feasible: we first draw a
// feasible point z inside the boxes, then set each row's rhs so z
// satisfies it.
func randomLP(rng *rand.Rand) (*Problem, []float64) {
	n := 1 + rng.Intn(6)
	m := 1 + rng.Intn(6)
	p := NewProblem()
	z := make([]float64, n)
	for j := 0; j < n; j++ {
		lo := math.Round(rng.NormFloat64()*5*2) / 2
		up := lo + math.Round(rng.Float64()*10*2)/2
		p.AddVar(math.Round(rng.NormFloat64()*4*2)/2, lo, up)
		z[j] = lo + rng.Float64()*(up-lo)
	}
	for i := 0; i < m; i++ {
		var idx []int32
		var coef []float64
		lhs := 0.0
		for j := 0; j < n; j++ {
			if rng.Intn(2) == 0 {
				c := math.Round(rng.NormFloat64()*3*2) / 2
				if c == 0 {
					continue
				}
				idx = append(idx, int32(j))
				coef = append(coef, c)
				lhs += c * z[j]
			}
		}
		if len(idx) == 0 {
			continue
		}
		switch rng.Intn(3) {
		case 0:
			p.AddRow(LE, lhs+rng.Float64()*3, idx, coef)
		case 1:
			p.AddRow(GE, lhs-rng.Float64()*3, idx, coef)
		default:
			p.AddRow(EQ, lhs, idx, coef)
		}
	}
	return p, z
}

// feasible checks x against all rows and bounds within tol.
func feasible(p *Problem, x []float64, tol float64) bool {
	for j := range x {
		if x[j] < p.lo[j]-tol || x[j] > p.up[j]+tol {
			return false
		}
	}
	for _, r := range p.rows {
		lhs := 0.0
		for t, j := range r.idx {
			lhs += r.coef[t] * x[j]
		}
		switch r.op {
		case LE:
			if lhs > r.rhs+tol {
				return false
			}
		case GE:
			if lhs < r.rhs-tol {
				return false
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > tol {
				return false
			}
		}
	}
	return true
}

func objective(p *Problem, x []float64) float64 {
	s := 0.0
	for j, c := range p.obj {
		s += c * x[j]
	}
	return s
}

// TestQuickSimplexFeasibleAndDominant: on random feasible LPs the
// solver must return Optimal (never Infeasible — a feasible point
// exists by construction), the returned point must be feasible, and no
// random feasible perturbation may beat its objective.
func TestQuickSimplexFeasibleAndDominant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, z := randomLP(rng)
		sol, err := p.Solve(nil)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if sol.Status == Infeasible {
			t.Logf("seed %d: declared infeasible but %v is feasible", seed, z)
			return false
		}
		if sol.Status == Unbounded {
			return true // legitimately unbounded below; nothing to check
		}
		if !feasible(p, sol.X, 1e-6) {
			t.Logf("seed %d: solution infeasible: %v", seed, sol.X)
			return false
		}
		// The constructed point z must not beat the reported optimum.
		if objective(p, z) < sol.Objective-1e-6 {
			t.Logf("seed %d: z beats optimum: %v < %v", seed, objective(p, z), sol.Objective)
			return false
		}
		// Nor any random line-search from the optimum toward feasible
		// points.
		for trial := 0; trial < 20; trial++ {
			y := make([]float64, len(sol.X))
			for j := range y {
				y[j] = p.lo[j] + rng.Float64()*(p.up[j]-p.lo[j])
			}
			// Project toward z's feasibility region by blending; only
			// test when actually feasible.
			for _, alpha := range []float64{0.25, 0.5, 0.75, 1} {
				cand := make([]float64, len(y))
				for j := range y {
					cand[j] = alpha*z[j] + (1-alpha)*y[j]
				}
				if feasible(p, cand, 1e-9) && objective(p, cand) < sol.Objective-1e-6 {
					t.Logf("seed %d: feasible point beats optimum: %v < %v",
						seed, objective(p, cand), sol.Objective)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSimplexBlandAgreesWithDantzig: both pivot rules must reach
// the same optimal objective.
func TestQuickSimplexBlandAgreesWithDantzig(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := randomLP(rng)
		a, errA := p.Solve(&Options{Bland: false})
		b, errB := p.Solve(&Options{Bland: true})
		if errA != nil || errB != nil {
			t.Logf("seed %d: %v / %v", seed, errA, errB)
			return false
		}
		if a.Status != b.Status {
			t.Logf("seed %d: status %v vs %v", seed, a.Status, b.Status)
			return false
		}
		if a.Status == Optimal && math.Abs(a.Objective-b.Objective) > 1e-6*(1+math.Abs(a.Objective)) {
			t.Logf("seed %d: objectives %v vs %v", seed, a.Objective, b.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
