package lp

import (
	"fmt"
	"math"
	"sort"

	"osars/internal/coverage"
)

// KMedianModel is the paper's §4.2 integer program
//
//	minimize   Σ_{(p,q)∈E} y_pq·d(p,q)
//	s.t.       x_r = 1;  Σ_{p∈P\{r}} x_p = k;
//	           Σ_{p:(p,q)∈E} y_pq = 1  ∀q;   0 ≤ y_pq ≤ x_p;
//	           x_p ∈ {0,1}
//
// expressed in the equivalent layer-cake ("z") form, which has one
// binary x per candidate but no y variables:
//
//	minimize   const + Σ_{q,level} weight·z_{q,level}
//	s.t.       z_{q,level} + Σ_{p covers q within level} x_p ≥ 1
//	           Σ_p x_p = k;   0 ≤ x ≤ 1;   z ≥ 0
//
// The two forms have identical optima both for the LP relaxation and
// for integral x: for fixed x the optimal y assigns each pair q
// greedily to its nearest coverers, and the resulting cost equals
// Σ_{d=0}^{D_q-1} max(0, 1 − Σ_{p: d(p,q)≤d} x_p) because distances
// are integral and the root (always selected, at distance D_q =
// depth(q)) caps every sum at 1. Adjacent distance levels with
// identical coverer sets are merged into a single z variable with the
// level count as its objective weight, keeping the model small.
type KMedianModel struct {
	// Problem is the built LP; callers may inspect but not modify it.
	Problem *Problem
	// XVars[u] is the variable index of candidate u's indicator.
	XVars []int
	// Constant is the objective offset from levels no candidate can
	// cover (only the root covers them).
	Constant float64
	// K is the summary size the model was built for.
	K int
}

// NewKMedianModel builds the model for selecting k candidates from the
// coverage graph. It panics if k is out of range [0, NumCandidates].
func NewKMedianModel(g *coverage.Graph, k int) *KMedianModel {
	if k < 0 || k > g.NumCandidates {
		panic(fmt.Sprintf("lp: k = %d out of range [0, %d]", k, g.NumCandidates))
	}
	m := &KMedianModel{
		Problem: NewProblem(),
		XVars:   make([]int, g.NumCandidates),
		K:       k,
	}
	for u := range m.XVars {
		m.XVars[u] = m.Problem.AddVar(0, 0, 1)
	}

	type coverer struct {
		cand int32
		dist int32
	}
	var covs []coverer
	var rowIdx []int32
	var rowCoef []float64
	for w := range g.Pairs {
		D := int(g.RootDist[w])
		mult := int(g.Weight[w]) // pair multiplicity (1 unless deduped)
		if D == 0 || mult == 0 {
			continue // a root-concept pair costs 0 regardless of F
		}
		covs = covs[:0]
		g.Coverers(w, func(u, dist int) bool {
			if dist < D { // a coverer at distance ≥ D never beats the root
				covs = append(covs, coverer{int32(u), int32(dist)})
			}
			return true
		})
		sort.Slice(covs, func(i, j int) bool { return covs[i].dist < covs[j].dist })
		if len(covs) == 0 {
			m.Constant += float64(D * mult)
			continue
		}
		// Levels before the first coverer distance are uncoverable.
		m.Constant += float64(int(covs[0].dist) * mult)
		rowIdx = rowIdx[:0]
		rowCoef = rowCoef[:0]
		i := 0
		for i < len(covs) {
			delta := int(covs[i].dist)
			// Absorb all coverers at this distance into the prefix set.
			for i < len(covs) && int(covs[i].dist) == delta {
				rowIdx = append(rowIdx, int32(m.XVars[covs[i].cand]))
				rowCoef = append(rowCoef, 1)
				i++
			}
			next := D
			if i < len(covs) {
				next = int(covs[i].dist)
			}
			weight := (next - delta) * mult
			if weight <= 0 {
				continue
			}
			z := m.Problem.AddVar(float64(weight), 0, Inf)
			idx := append(append([]int32(nil), rowIdx...), int32(z))
			coef := append(append([]float64(nil), rowCoef...), 1)
			m.Problem.AddRow(GE, 1, idx, coef)
		}
	}

	// Cardinality: Σ x = k.
	idx := make([]int32, len(m.XVars))
	coef := make([]float64, len(m.XVars))
	for u, v := range m.XVars {
		idx[u] = int32(v)
		coef[u] = 1
	}
	m.Problem.AddRow(EQ, float64(k), idx, coef)
	return m
}

// LPResult is the fractional solution of the relaxation.
type LPResult struct {
	// X[u] is the fractional indicator of candidate u (Σ X = k).
	X []float64
	// Objective is the LP optimum including the constant offset; it is
	// a lower bound on the optimal integral summary cost.
	Objective float64
	Iters     int
}

// SolveLP solves the LP relaxation (the input to randomized rounding,
// §4.3).
func (m *KMedianModel) SolveLP(opt *Options) (*LPResult, error) {
	sol, err := m.Problem.Solve(opt)
	if err != nil {
		return nil, fmt.Errorf("lp: k-median LP: %w", err)
	}
	if sol.Status != Optimal {
		return nil, fmt.Errorf("lp: k-median LP status %v", sol.Status)
	}
	r := &LPResult{X: make([]float64, len(m.XVars)), Objective: sol.Objective + m.Constant, Iters: sol.Iters}
	for u, v := range m.XVars {
		r.X[u] = sol.X[v]
	}
	return r, nil
}

// ILPResult is the exact integer solution.
type ILPResult struct {
	// Selected are the chosen candidate indices (len k), or nil when
	// an externally supplied incumbent was proven optimal.
	Selected []int
	// Objective is the optimal summary cost.
	Objective float64
	Nodes     int
	LPIters   int
}

// SolveILP solves the integer program exactly by branch and bound.
// incumbent, when non-nil, is a known feasible cost (e.g. the greedy
// summary's) used for pruning; if the optimum ties it, Selected is nil
// and the caller should keep its incumbent summary.
func (m *KMedianModel) SolveILP(incumbent *float64, opt *MIPOptions) (*ILPResult, error) {
	var o MIPOptions
	if opt != nil {
		o = *opt
	}
	if incumbent != nil {
		inc := *incumbent - m.Constant
		o.Incumbent = &inc
	}
	sol, err := SolveMIP(m.Problem, m.XVars, &o)
	if err != nil {
		return nil, fmt.Errorf("lp: k-median ILP: %w", err)
	}
	if sol.Status != Optimal {
		return nil, fmt.Errorf("lp: k-median ILP status %v", sol.Status)
	}
	r := &ILPResult{Objective: sol.Objective + m.Constant, Nodes: sol.Nodes, LPIters: sol.LPIters}
	if sol.X != nil {
		for u, v := range m.XVars {
			if sol.X[v] > 0.5 {
				r.Selected = append(r.Selected, u)
			}
		}
		if len(r.Selected) != m.K {
			return nil, fmt.Errorf("lp: k-median ILP selected %d candidates, want %d", len(r.Selected), m.K)
		}
	}
	return r, nil
}

// FractionalIsIntegral reports whether an LP solution is already
// integral within tol (common for k-median instances, in which case
// branch and bound terminates at the root).
func FractionalIsIntegral(x []float64, tol float64) bool {
	for _, v := range x {
		if f := v - math.Floor(v); f > tol && f < 1-tol {
			return false
		}
	}
	return true
}
