// Ontology replication e2e: an activation on the primary is one WAL
// record like any other — it must ship through the replication stream,
// swap the replica's active runtime in apply order relative to the
// appends around it, and survive a replica that bootstraps from a
// shipped snapshot. Run with -race.
package repl_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"osars"
	"osars/internal/dataset"
	"osars/internal/server"
)

func phoneEntry(t *testing.T, eps float64) *osars.OntologyEntry {
	t.Helper()
	e, err := osars.NewOntologyEntry("phone", dataset.CellPhoneOntology(), nil, eps)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// putEntry uploads an entry file over HTTP.
func putEntry(t *testing.T, baseURL string, e *osars.OntologyEntry) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodPut, baseURL+"/v1/ontologies/"+e.Name, bytes.NewReader(e.Payload()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("upload %s: %d %s", e.Name, resp.StatusCode, data)
	}
}

// TestOntologyActivationReplicates: upload + activate on the primary
// with NO restart anywhere; the replica must converge to the same
// active version through the WAL stream and label its summaries with
// it, while refusing local activation.
func TestOntologyActivationReplicates(t *testing.T) {
	opts := osars.StoreOptions{Shards: 2}
	p := startPrimary(t, t.TempDir(), opts)
	defer p.st.Close()
	p.srv.ConfigureOntologies(osars.NewOntologyRegistry(osars.OntologyRegistryOptions{}))
	ph := httptest.NewServer(p.srv)
	defer ph.Close()

	rep := startReplica(t, t.TempDir(), opts, ph.URL)
	defer rep.stop()
	rep.srv.ConfigureOntologies(osars.NewOntologyRegistry(osars.OntologyRegistryOptions{}))

	// Ingest under the boot runtime, then hot-swap on the primary.
	ingest(t, ph.URL, 8, 2, 0)
	e2 := phoneEntry(t, 0.9)
	putEntry(t, ph.URL, e2)
	resp, err := http.Post(ph.URL+"/v1/ontologies/phone/activate", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("activate: %d %s", resp.StatusCode, data)
	}
	// More appends AFTER the swap: the replica must apply them under
	// the new runtime, which requires the activation record to land in
	// stream order.
	ingest(t, ph.URL, 8, 1, 1)

	waitConverged(t, p.src, rep.tgt)
	rt := rep.st.ActiveRuntime()
	if rt.Name != "phone" || rt.Version != e2.Version {
		t.Fatalf("replica runtime = %s@%s, want phone@%s", rt.Name, rt.Version, e2.Version)
	}
	if !bytes.Equal(rt.Payload, e2.Payload()) {
		t.Fatal("replica's active entry payload is not byte-identical to the uploaded one")
	}

	// A replica read solves — and is labeled — under the replicated
	// version.
	var sum server.ItemSummaryResponse
	if err := json.Unmarshal(readBody(t, rep.hs.URL, "/v1/items/item-00/summary?k=2"), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.OntologyVersion != e2.Version {
		t.Fatalf("replica summary version = %q, want %q", sum.OntologyVersion, e2.Version)
	}

	// Upload to the replica's local registry is fine; ACTIVATION there
	// is not — the active version is primary-owned, replicated state.
	e3 := phoneEntry(t, 0.3)
	putEntry(t, rep.hs.URL, e3)
	resp, err = http.Post(rep.hs.URL+"/v1/ontologies/phone/activate", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica activate: %d %s, want 403", resp.StatusCode, data)
	}
	if rep.st.ActiveRuntime().Version != e2.Version {
		t.Fatal("rejected activation still moved the replica's runtime")
	}
}

// TestOntologyActivationViaSnapshotBootstrap: a replica that starts
// AFTER the primary compacted the activation record into a snapshot
// must adopt the active version from the shipped snapshot.
func TestOntologyActivationViaSnapshotBootstrap(t *testing.T) {
	opts := osars.StoreOptions{SnapshotEvery: -1}
	p := startPrimary(t, t.TempDir(), opts)
	defer p.st.Close()
	p.srv.ConfigureOntologies(osars.NewOntologyRegistry(osars.OntologyRegistryOptions{}))
	ph := httptest.NewServer(p.srv)
	defer ph.Close()

	ingest(t, ph.URL, 4, 2, 0)
	e2 := phoneEntry(t, 0.9)
	putEntry(t, ph.URL, e2)
	if resp, err := http.Post(ph.URL+"/v1/ontologies/phone/activate", "application/json", nil); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("activate: %d", resp.StatusCode)
		}
	}
	// Snapshot + compact: the WAL no longer holds the activation, only
	// the snapshot does.
	if err := p.st.Snapshot(); err != nil {
		t.Fatal(err)
	}

	rep := startReplica(t, t.TempDir(), osars.StoreOptions{}, ph.URL)
	defer rep.stop()
	waitConverged(t, p.src, rep.tgt)
	if rt := rep.st.ActiveRuntime(); rt.Version != e2.Version {
		t.Fatalf("snapshot-bootstrapped replica runtime = %s@%s, want %s", rt.Name, rt.Version, e2.Version)
	}
	var sum server.ItemSummaryResponse
	if err := json.Unmarshal(readBody(t, rep.hs.URL, "/v1/items/item-00/summary?k=2"), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.OntologyVersion != e2.Version {
		t.Fatalf("replica summary version = %q, want %q", sum.OntologyVersion, e2.Version)
	}
}
