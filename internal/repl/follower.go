// Replica-side replication: the Follower runs one catch-up loop per
// shard, pulling WAL frames from the primary's stream endpoint and
// applying them through the store's replicated-apply path. Each loop
// implements the catch-up state machine from the package comment
// (tailing ↔ bootstrapping) with jittered exponential backoff around
// connection failures, and publishes per-shard lag for /v1/repl/status
// and the readiness probe.
package repl

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"osars/internal/obs"
	"osars/internal/wal"
)

// Follower shard states, as reported in ShardLag.State.
const (
	// StateConnecting: no successful stream yet (or reconnecting after
	// an error).
	StateConnecting = "connecting"
	// StateTailing: streaming frames (or caught up and long-polling).
	StateTailing = "tailing"
	// StateBootstrapping: installing a snapshot after falling behind
	// the primary's compaction horizon.
	StateBootstrapping = "bootstrapping"
)

// FollowerConfig configures StartFollower.
type FollowerConfig struct {
	// PrimaryURL is the primary's base URL, e.g. "http://primary:8080".
	PrimaryURL string
	// Target is the replica store the shipped records apply to.
	Target *Target
	// Client is the HTTP client for all primary requests; nil uses a
	// default with sane stream timeouts.
	Client *http.Client
	// MaxStreamBytes is the per-request max_bytes hint (0: primary
	// default).
	MaxStreamBytes int
	// Wait is the long-poll idle wait requested per stream
	// (0: primary default).
	Wait time.Duration
	// Logf, when non-nil, receives follower lifecycle messages.
	Logf func(format string, args ...any)
	// Obs, when non-nil, registers per-shard replication instruments
	// (applied-seq, lag and state gauges, shipped frames/bytes and
	// backoff counters) in this registry.
	Obs *obs.Registry
}

// shardReplMetrics is one shard's interned replication instruments
// (all nil when FollowerConfig.Obs is nil — every call no-ops).
type shardReplMetrics struct {
	applied  *obs.Gauge
	lag      *obs.Gauge
	state    *obs.Gauge
	frames   *obs.Counter
	bytes    *obs.Counter
	backoffs *obs.Counter
}

// stateCode maps follower states to the osars_repl_state gauge value.
func stateCode(state string) int64 {
	switch state {
	case StateTailing:
		return 1
	case StateBootstrapping:
		return 2
	default: // StateConnecting
		return 0
	}
}

// newReplMetrics interns every shard's instruments up front so the
// apply loop never touches the registry.
func newReplMetrics(reg *obs.Registry, shards int) []shardReplMetrics {
	ms := make([]shardReplMetrics, shards)
	if reg == nil {
		return ms
	}
	applied := reg.GaugeVec("osars_repl_applied_seq",
		"Newest primary WAL sequence applied locally, per shard.", "shard")
	lag := reg.GaugeVec("osars_repl_lag_seqs",
		"Sequences behind the primary at last contact (-1 before the first successful contact).", "shard")
	state := reg.GaugeVec("osars_repl_state",
		"Catch-up state: 0=connecting, 1=tailing, 2=bootstrapping.", "shard")
	frames := reg.CounterVec("osars_repl_frames_applied_total",
		"WAL frames applied since the follower started (a bootstrap snapshot counts as one).", "shard")
	bytes := reg.CounterVec("osars_repl_shipped_bytes_total",
		"Bytes shipped from the primary and applied locally.", "shard")
	backoffs := reg.CounterVec("osars_repl_backoffs_total",
		"Reconnect backoffs (stream or handshake failures).", "shard")
	for i := range ms {
		sh := strconv.Itoa(i)
		ms[i] = shardReplMetrics{
			applied:  applied.With(sh),
			lag:      lag.With(sh),
			state:    state.With(sh),
			frames:   frames.With(sh),
			bytes:    bytes.With(sh),
			backoffs: backoffs.With(sh),
		}
	}
	return ms
}

// ShardLag is one shard's replication position as seen by the
// follower, reported by Follower.Lag and /v1/repl/status on a replica.
type ShardLag struct {
	Shard int    `json:"shard"`
	State string `json:"state"`
	// AppliedSeq is the newest sequence applied locally; PrimaryNextSeq
	// is the primary's next append position the last time this shard
	// heard from it.
	AppliedSeq     uint64 `json:"applied_seq"`
	PrimaryNextSeq uint64 `json:"primary_next_seq"`
	// LagSeqs = PrimaryNextSeq-1 - AppliedSeq at the last contact
	// (math.MaxUint64 before the first successful contact).
	LagSeqs  uint64 `json:"lag_seqs"`
	LagBytes int64  `json:"lag_bytes"`
	// FramesApplied and BytesApplied count everything shipped since the
	// follower started (bootstrap snapshots count as one "frame").
	FramesApplied uint64 `json:"frames_applied"`
	BytesApplied  int64  `json:"bytes_applied"`
	// LastError is the most recent per-shard failure, cleared by the
	// next successful stream.
	LastError string `json:"last_error,omitempty"`
}

// Follower drives the per-shard catch-up loops. Create with
// StartFollower; Stop to shut down.
type Follower struct {
	cfg    FollowerConfig
	client *http.Client
	base   string

	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu   sync.Mutex
	lags []ShardLag

	// metrics has one entry per shard (zero-valued, hence no-op, when
	// no registry was configured). Gauges are synced inside update so
	// every lag mutation is reflected; counters advance by the delta
	// the mutation produced.
	metrics []shardReplMetrics
}

// StartFollower validates the primary handshake asynchronously and
// starts one catch-up goroutine per shard. It returns immediately: a
// primary that is down at start is retried with backoff like any other
// failure, so replica boot order does not matter.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Target == nil || cfg.Target.NumShards() == 0 {
		return nil, fmt.Errorf("repl: follower needs a replica target")
	}
	base := strings.TrimRight(cfg.PrimaryURL, "/")
	if _, err := url.Parse(base); err != nil || base == "" {
		return nil, fmt.Errorf("repl: bad primary URL %q", cfg.PrimaryURL)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{} // stream responses are long-lived: no global timeout
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{
		cfg:     cfg,
		client:  client,
		base:    base,
		cancel:  cancel,
		lags:    make([]ShardLag, cfg.Target.NumShards()),
		metrics: newReplMetrics(cfg.Obs, cfg.Target.NumShards()),
	}
	for i := range f.lags {
		f.lags[i] = ShardLag{Shard: i, State: StateConnecting, LagSeqs: math.MaxUint64}
		f.metrics[i].lag.Set(-1)
	}
	for i := 0; i < cfg.Target.NumShards(); i++ {
		f.wg.Add(1)
		go f.runShard(ctx, i)
	}
	return f, nil
}

// Stop terminates every shard loop and waits for them to exit.
func (f *Follower) Stop() {
	f.cancel()
	f.wg.Wait()
}

// Lag returns the current per-shard replication positions.
func (f *Follower) Lag() []ShardLag {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]ShardLag, len(f.lags))
	copy(out, f.lags)
	return out
}

// MaxLagSeqs returns the worst per-shard sequence lag — the readiness
// signal. It is math.MaxUint64 until every shard has heard from the
// primary at least once, so a replica is never "ready" on stale
// information.
func (f *Follower) MaxLagSeqs() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var worst uint64
	for i := range f.lags {
		if f.lags[i].LagSeqs > worst {
			worst = f.lags[i].LagSeqs
		}
	}
	return worst
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// update mutates one shard's lag under the lock and mirrors the
// result into that shard's gauges/counters, so the metrics can never
// drift from what /v1/repl/status reports.
func (f *Follower) update(shard int, fn func(*ShardLag)) {
	f.mu.Lock()
	l := &f.lags[shard]
	prevFrames, prevBytes := l.FramesApplied, l.BytesApplied
	fn(l)
	snap := *l
	f.mu.Unlock()

	m := &f.metrics[shard]
	m.applied.Set(int64(snap.AppliedSeq))
	m.state.Set(stateCode(snap.State))
	if snap.LagSeqs == math.MaxUint64 {
		m.lag.Set(-1) // no contact yet: lag unknown, not zero
	} else {
		m.lag.Set(int64(snap.LagSeqs))
	}
	m.frames.Add(snap.FramesApplied - prevFrames)
	if d := snap.BytesApplied - prevBytes; d > 0 {
		m.bytes.Add(uint64(d))
	}
}

// Backoff bounds for reconnects.
const (
	backoffMin = 100 * time.Millisecond
	backoffMax = 5 * time.Second
)

// runShard is the per-shard catch-up loop.
func (f *Follower) runShard(ctx context.Context, shard int) {
	defer f.wg.Done()
	rng := rand.New(rand.NewSource(int64(shard)*2654435761 + 1))
	backoff := backoffMin
	handshook := false
	for ctx.Err() == nil {
		if !handshook {
			if err := f.handshake(ctx); err != nil {
				f.fail(ctx, shard, &backoff, rng, fmt.Errorf("handshake: %w", err))
				continue
			}
			handshook = true
		}
		progressed, err := f.streamOnce(ctx, shard)
		if err != nil {
			if gone, ok := err.(*goneError); ok {
				f.update(shard, func(l *ShardLag) { l.State = StateBootstrapping })
				if berr := f.bootstrap(ctx, shard, gone); berr != nil {
					f.fail(ctx, shard, &backoff, rng, fmt.Errorf("bootstrap: %w", berr))
				} else {
					backoff = backoffMin
				}
				continue
			}
			// A connection cut after real progress is routine (primary
			// restart, balancer idle timeout): reconnect immediately once.
			if progressed {
				backoff = backoffMin
			}
			f.fail(ctx, shard, &backoff, rng, err)
			continue
		}
		backoff = backoffMin
	}
}

// fail records err and sleeps the jittered backoff (context-aware).
func (f *Follower) fail(ctx context.Context, shard int, backoff *time.Duration, rng *rand.Rand, err error) {
	if ctx.Err() != nil {
		return
	}
	f.update(shard, func(l *ShardLag) {
		l.State = StateConnecting
		l.LastError = err.Error()
	})
	f.metrics[shard].backoffs.Inc()
	f.logf("repl: shard %d: %v (retrying in ~%v)", shard, err, *backoff)
	d := *backoff + time.Duration(rng.Int63n(int64(*backoff)/2+1))
	*backoff *= 2
	if *backoff > backoffMax {
		*backoff = backoffMax
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// handshake verifies the primary's topology matches ours: same shard
// count and placement hash seed, or the shipped sequence spaces would
// interleave items incompatibly.
func (f *Follower) handshake(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.base+"/v1/repl/status", nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("primary status: %s", httpError(resp))
	}
	var status StatusResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&status); err != nil {
		return fmt.Errorf("decode primary status: %w", err)
	}
	if status.Shards != f.cfg.Target.NumShards() {
		return fmt.Errorf("topology mismatch: primary has %d shards, replica %d", status.Shards, f.cfg.Target.NumShards())
	}
	if status.HashSeed != f.cfg.Target.HashSeed() {
		return fmt.Errorf("topology mismatch: primary hash seed %d, replica %d", status.HashSeed, f.cfg.Target.HashSeed())
	}
	return nil
}

// goneError carries the 410 bootstrap hint.
type goneError struct {
	oldestSeq   uint64
	snapshotSeq uint64
}

func (e *goneError) Error() string {
	return fmt.Sprintf("compacted past (oldest retained %d, snapshot at %d)", e.oldestSeq, e.snapshotSeq)
}

// streamOnce opens one stream request and applies every frame it
// carries. It returns whether any frame was applied, and an error for
// anything but a cleanly ended response.
func (f *Follower) streamOnce(ctx context.Context, shard int) (progressed bool, err error) {
	st := f.cfg.Target.Shard(shard)
	after := st.AppliedSeq()
	q := url.Values{}
	q.Set("shard", strconv.Itoa(shard))
	q.Set("after", strconv.FormatUint(after, 10))
	if f.cfg.MaxStreamBytes > 0 {
		q.Set("max_bytes", strconv.Itoa(f.cfg.MaxStreamBytes))
	}
	if f.cfg.Wait > 0 {
		q.Set("wait", f.cfg.Wait.String())
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.base+"/v1/repl/stream?"+q.Encode(), nil)
	if err != nil {
		return false, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		var body errorBody
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body)
		return false, &goneError{oldestSeq: body.OldestSeq, snapshotSeq: body.SnapshotSeq}
	default:
		return false, fmt.Errorf("stream: %s", httpError(resp))
	}

	primaryNext, _ := strconv.ParseUint(resp.Header.Get(HeaderNextSeq), 10, 64)
	pendingBytes, _ := strconv.ParseInt(resp.Header.Get(HeaderPendingBytes), 10, 64)
	f.update(shard, func(l *ShardLag) {
		l.State = StateTailing
		l.LastError = ""
		l.AppliedSeq = after
		if primaryNext > 0 {
			l.PrimaryNextSeq = primaryNext
			l.LagSeqs = primaryNext - 1 - after
			l.LagBytes = pendingBytes
		}
	})

	fr := wal.NewFrameReader(resp.Body)
	for {
		seq, payload, err := fr.Next()
		if err == io.EOF {
			return progressed, nil
		}
		if err != nil {
			// A mid-frame cut after progress is a dropped connection;
			// anything on a pristine stream (or a CRC failure) is worth
			// logging as an error either way.
			return progressed, fmt.Errorf("stream read: %w", err)
		}
		// The frame's own CRC was just verified; apply it. The store
		// re-checks sequence contiguity.
		if err := st.ApplyReplicated(seq, payload); err != nil {
			return progressed, fmt.Errorf("apply seq %d: %w", seq, err)
		}
		progressed = true
		applied := seq
		frameBytes := int64(wal.FrameSize(len(payload)))
		f.update(shard, func(l *ShardLag) {
			l.AppliedSeq = applied
			l.FramesApplied++
			l.BytesApplied += frameBytes
			if l.PrimaryNextSeq > applied {
				l.LagSeqs = l.PrimaryNextSeq - 1 - applied
			} else {
				l.LagSeqs = 0
			}
		})
	}
}

// bootstrap downloads the primary's latest snapshot for the shard and
// installs it, rebasing the replica past the compaction horizon.
func (f *Follower) bootstrap(ctx context.Context, shard int, gone *goneError) error {
	st := f.cfg.Target.Shard(shard)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		f.base+"/v1/repl/snapshot?shard="+strconv.Itoa(shard), nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("snapshot: %s", httpError(resp))
	}
	seq, err := strconv.ParseUint(resp.Header.Get(HeaderSnapshotSeq), 10, 64)
	if err != nil || seq == 0 {
		return fmt.Errorf("snapshot response missing %s", HeaderSnapshotSeq)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("snapshot download: %w", err)
	}
	payload, err := wal.DecodeSnapshot(raw)
	if err != nil {
		return fmt.Errorf("snapshot verify: %w", err)
	}
	if err := st.InstallSnapshot(seq, payload); err != nil {
		return err
	}
	f.logf("repl: shard %d: bootstrapped from snapshot at seq %d (%d bytes)", shard, seq, len(raw))
	f.update(shard, func(l *ShardLag) {
		l.AppliedSeq = seq
		l.FramesApplied++
		l.BytesApplied += int64(len(raw))
		l.LastError = ""
	})
	return nil
}

// httpError summarizes a non-2xx response, preferring the JSON error
// body the repl endpoints emit.
func httpError(resp *http.Response) string {
	var body errorBody
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err == nil && body.Error != "" {
		return fmt.Sprintf("%s: %s", resp.Status, body.Error)
	}
	return resp.Status
}

// ReplicaStatusResponse is the GET /v1/repl/status reply of a replica.
type ReplicaStatusResponse struct {
	Role    string     `json:"role"`
	Primary string     `json:"primary"`
	Shards  int        `json:"shards"`
	Lag     []ShardLag `json:"per_shard"`
}

// ReplicaHandler serves GET /v1/repl/status on a replica, reporting
// per-shard lag. Like PrimaryHandler it mounts detached and is armed
// with Attach once the store and follower exist.
type ReplicaHandler struct {
	mu       sync.Mutex
	follower *Follower
	primary  string
}

// NewReplicaHandler returns a handler with no follower attached.
func NewReplicaHandler() *ReplicaHandler { return &ReplicaHandler{} }

// Attach arms the handler with the running follower.
func (h *ReplicaHandler) Attach(f *Follower, primaryURL string) {
	h.mu.Lock()
	h.follower = f
	h.primary = primaryURL
	h.mu.Unlock()
}

// ServeHTTP implements http.Handler for the replica's /v1/repl/ subtree.
func (h *ReplicaHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "use GET"})
		return
	}
	if r.URL.Path != "/v1/repl/status" {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown replication endpoint (this node is a replica)"})
		return
	}
	h.mu.Lock()
	f, primary := h.follower, h.primary
	h.mu.Unlock()
	if f == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "replication follower not ready (boot recovery in progress)"})
		return
	}
	writeJSON(w, http.StatusOK, ReplicaStatusResponse{
		Role:    "replica",
		Primary: primary,
		Shards:  len(f.Lag()),
		Lag:     f.Lag(),
	})
}
