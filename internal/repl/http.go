// Primary-side HTTP surface of replication: the streaming WAL
// endpoint, the snapshot bootstrap endpoint and the status endpoint.
// Mounted under /v1/repl/ by the serving layer.
//
//	GET /v1/repl/status                                  → StatusResponse
//	GET /v1/repl/stream?shard=N&after=S[&max_bytes&wait] → raw WAL frames (chunked)
//	GET /v1/repl/snapshot?shard=N                        → raw snapshot container
//
// Stream semantics: the response body is a back-to-back sequence of
// WAL frames (the exact on-disk framing) for records with seq > after,
// flushed as they are read. When the tail catches up with the log the
// handler blocks on the WAL's append notification and keeps streaming
// new records as they land; the response ends cleanly after `wait` of
// idleness or once ~max_bytes have been sent, and the follower simply
// reconnects with its advanced cursor. A follower whose cursor was
// compacted past gets 410 Gone plus the snapshot seq to bootstrap
// from; a follower ahead of the primary (data loss on the primary)
// gets 409 so the operator hears about it instead of a silent stall.
package repl

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"osars/internal/store"
	"osars/internal/wal"
)

// Stream protocol headers.
const (
	// HeaderNextSeq carries the primary's next append sequence for the
	// shard at response time — the follower derives its lag from it.
	HeaderNextSeq = "X-Osars-Repl-Next-Seq"
	// HeaderPendingBytes carries the on-disk bytes the follower still
	// has to catch up on at response time.
	HeaderPendingBytes = "X-Osars-Repl-Pending-Bytes"
	// HeaderSnapshotSeq carries the sequence a shipped snapshot covers.
	HeaderSnapshotSeq = "X-Osars-Repl-Snapshot-Seq"
)

// Defaults for the stream handler knobs.
const (
	// DefaultMaxStreamBytes caps one stream response; the follower
	// reconnects afterwards (also refreshing its lag measurements).
	DefaultMaxStreamBytes = 32 << 20
	// DefaultStreamWait is how long a caught-up stream stays open
	// waiting for new appends before ending the response.
	DefaultStreamWait = 20 * time.Second
	// maxStreamWait bounds the client-requested wait.
	maxStreamWait = 60 * time.Second
	// streamBatchBytes is the per-read batch the handler pulls from the
	// tail before flushing.
	streamBatchBytes = 1 << 20
)

// StatusResponse is the GET /v1/repl/status reply of a primary.
type StatusResponse struct {
	Role     string        `json:"role"`
	Shards   int           `json:"shards"`
	HashSeed uint64        `json:"hash_seed,omitempty"`
	PerShard []ShardStatus `json:"per_shard"`
}

// ShardStatus is one shard's position in a primary StatusResponse.
type ShardStatus struct {
	Shard int `json:"shard"`
	store.ReplStatus
}

// errorBody is every non-2xx JSON reply of the repl endpoints.
type errorBody struct {
	Error string `json:"error"`
	// OldestSeq and SnapshotSeq accompany 410 Gone: the retention
	// horizon and the snapshot the follower must bootstrap from.
	OldestSeq   uint64 `json:"oldest_seq,omitempty"`
	SnapshotSeq uint64 `json:"snapshot_seq,omitempty"`
}

// PrimaryHandler serves the replication endpoints of a primary. It is
// constructed detached (so it can be mounted before the store finishes
// boot recovery) and armed with Attach; until then every endpoint
// answers 503.
type PrimaryHandler struct {
	src atomic.Pointer[Source]

	// MaxStreamBytes caps one stream response
	// (default DefaultMaxStreamBytes).
	MaxStreamBytes int
	// StreamWait is the default idle wait of a caught-up stream
	// (default DefaultStreamWait; the client can lower it per request).
	StreamWait time.Duration
}

// NewPrimaryHandler returns a handler with no source attached.
func NewPrimaryHandler() *PrimaryHandler { return &PrimaryHandler{} }

// Attach arms the handler with the primary's replication source. Safe
// to call while requests are in flight (boot completes under traffic).
func (h *PrimaryHandler) Attach(src *Source) { h.src.Store(src) }

// ServeHTTP implements http.Handler for the /v1/repl/ subtree.
func (h *PrimaryHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "use GET"})
		return
	}
	src := h.src.Load()
	if src == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "replication source not ready (boot recovery in progress)"})
		return
	}
	switch r.URL.Path {
	case "/v1/repl/status":
		h.handleStatus(w, src)
	case "/v1/repl/stream":
		h.handleStream(w, r, src)
	case "/v1/repl/snapshot":
		h.handleSnapshot(w, r, src)
	default:
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown replication endpoint"})
	}
}

func (h *PrimaryHandler) handleStatus(w http.ResponseWriter, src *Source) {
	resp := StatusResponse{Role: "primary", Shards: src.NumShards(), HashSeed: src.HashSeed()}
	for i := 0; i < src.NumShards(); i++ {
		st, err := src.Shard(i).ReplStatus()
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: fmt.Sprintf("shard %d: %v", i, err)})
			return
		}
		resp.PerShard = append(resp.PerShard, ShardStatus{Shard: i, ReplStatus: st})
	}
	writeJSON(w, http.StatusOK, resp)
}

// shardParam parses and bounds the ?shard= parameter.
func shardParam(r *http.Request, n int) (int, error) {
	raw := r.URL.Query().Get("shard")
	if raw == "" {
		raw = "0"
	}
	i, err := strconv.Atoi(raw)
	if err != nil || i < 0 {
		return 0, fmt.Errorf("bad shard %q", raw)
	}
	if i >= n {
		return 0, fmt.Errorf("shard %d out of range (primary has %d)", i, n)
	}
	return i, nil
}

func (h *PrimaryHandler) handleStream(w http.ResponseWriter, r *http.Request, src *Source) {
	q := r.URL.Query()
	shardIdx, err := shardParam(r, src.NumShards())
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	after, err := strconv.ParseUint(q.Get("after"), 10, 64)
	if err != nil && q.Get("after") != "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad after sequence"})
		return
	}
	maxBytes := h.MaxStreamBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxStreamBytes
	}
	if raw := q.Get("max_bytes"); raw != "" {
		if v, err := strconv.Atoi(raw); err == nil && v > 0 && v < maxBytes {
			maxBytes = v
		}
	}
	wait := h.StreamWait
	if wait <= 0 {
		wait = DefaultStreamWait
	}
	if raw := q.Get("wait"); raw != "" {
		if d, err := time.ParseDuration(raw); err == nil && d >= 0 && d < maxStreamWait {
			wait = d
		}
	}

	st := src.Shard(shardIdx)
	status, err := st.ReplStatus()
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	if after >= status.NextSeq {
		writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf(
			"replica is ahead of the primary (after=%d, primary next seq %d): the primary lost history or the replica followed a different deployment",
			after, status.NextSeq)})
		return
	}
	tail, err := st.ReplTail(after)
	if err == wal.ErrCompacted {
		writeJSON(w, http.StatusGone, errorBody{
			Error:       fmt.Sprintf("records after %d were compacted (oldest retained %d); bootstrap from the snapshot", after, status.OldestSeq),
			OldestSeq:   status.OldestSeq,
			SnapshotSeq: status.SnapshotSeq,
		})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	defer tail.Close()

	pendingSeqs, pendingBytes := tail.Pending()
	_ = pendingSeqs
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HeaderNextSeq, strconv.FormatUint(status.NextSeq, 10))
	w.Header().Set(HeaderPendingBytes, strconv.FormatInt(pendingBytes, 10))
	w.WriteHeader(http.StatusOK)

	rc := http.NewResponseController(w)
	sent := 0
	idleDeadline := time.Now().Add(wait)
	for sent < maxBytes {
		batch := streamBatchBytes
		if rem := maxBytes - sent; rem < batch {
			batch = rem
		}
		frames, n, _, err := tail.Next(batch)
		if err != nil {
			// Compacted mid-stream or read failure: end the response;
			// the follower's reconnect sees the authoritative status.
			return
		}
		if n > 0 {
			// Keep long streams alive past the server's write timeout:
			// the deadline is per batch, not per response.
			_ = rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
			if _, err := w.Write(frames); err != nil {
				return
			}
			_ = rc.Flush()
			sent += len(frames)
			idleDeadline = time.Now().Add(wait)
			continue
		}
		// Caught up: block until the next append, the idle deadline or
		// the client going away.
		notify, err := st.ReplNotify()
		if err != nil {
			return
		}
		idle := time.NewTimer(time.Until(idleDeadline))
		select {
		case <-notify:
			idle.Stop()
		case <-idle.C:
			return
		case <-r.Context().Done():
			idle.Stop()
			return
		}
	}
}

func (h *PrimaryHandler) handleSnapshot(w http.ResponseWriter, r *http.Request, src *Source) {
	shardIdx, err := shardParam(r, src.NumShards())
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	raw, seq, ok, err := src.Shard(shardIdx).ReplSnapshotRaw()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no snapshot available yet"})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HeaderSnapshotSeq, strconv.FormatUint(seq, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
