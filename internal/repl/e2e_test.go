// End-to-end replication tests: a primary serving real HTTP ingests
// under concurrent load while a replica tails its WAL streams; after
// the load drains the replica must answer the read API byte-identical
// to the primary. Also covered: replica restart mid-stream (resume
// from the last locally durable sequence), snapshot bootstrap after
// the primary compacted past the follower, write rejection on the
// replica, and a kill/restart chaos round for both roles. Run with
// -race.
package repl_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"osars"
	"osars/internal/dataset"
	"osars/internal/repl"
	"osars/internal/server"
)

func newSummarizer(t *testing.T) *osars.Summarizer {
	t.Helper()
	sum, err := osars.New(osars.Config{Ontology: dataset.CellPhoneOntology()})
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// primaryNode is a primary store + HTTP server with the replication
// endpoints mounted.
type primaryNode struct {
	st  osars.Store
	srv *server.Server
	src *repl.Source
}

func startPrimary(t *testing.T, dir string, opts osars.StoreOptions) *primaryNode {
	t.Helper()
	opts.DataDir = dir
	sum := newSummarizer(t)
	st, err := sum.OpenStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewWithStore(sum, st)
	ph := repl.NewPrimaryHandler()
	srv.HandleRepl(ph)
	src, err := repl.NewSource(st)
	if err != nil {
		t.Fatal(err)
	}
	ph.Attach(src)
	return &primaryNode{st: st, srv: srv, src: src}
}

// replicaNode is a replica store + follower + HTTP server.
type replicaNode struct {
	st       osars.Store
	srv      *server.Server
	tgt      *repl.Target
	follower *repl.Follower
	hs       *httptest.Server
}

func startReplica(t *testing.T, dir string, opts osars.StoreOptions, primaryURL string) *replicaNode {
	t.Helper()
	opts.DataDir = dir
	opts.Replica = true
	sum := newSummarizer(t)
	st, err := sum.OpenStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewWithStore(sum, st)
	srv.SetPrimary(primaryURL)
	tgt, err := repl.NewTarget(st)
	if err != nil {
		t.Fatal(err)
	}
	f, err := repl.StartFollower(repl.FollowerConfig{
		PrimaryURL: primaryURL,
		Target:     tgt,
		Wait:       100 * time.Millisecond, // fast reconnect cycles in tests
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	rh := repl.NewReplicaHandler()
	rh.Attach(f, primaryURL)
	srv.HandleRepl(rh)
	return &replicaNode{st: st, srv: srv, tgt: tgt, follower: f, hs: httptest.NewServer(srv)}
}

func (r *replicaNode) stop() {
	r.hs.Close()
	r.follower.Stop()
	r.st.Close()
}

// waitConverged polls until every replica shard has applied everything
// the primary has logged.
func waitConverged(t *testing.T, src *repl.Source, tgt *repl.Target) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		caught := true
		for i := 0; i < src.NumShards(); i++ {
			st, err := src.Shard(i).ReplStatus()
			if err != nil {
				t.Fatal(err)
			}
			if tgt.Shard(i).AppliedSeq() != st.NextSeq-1 {
				caught = false
				break
			}
		}
		if caught {
			return
		}
		if time.Now().After(deadline) {
			for i := 0; i < src.NumShards(); i++ {
				st, _ := src.Shard(i).ReplStatus()
				t.Logf("shard %d: primary next %d, replica applied %d", i, st.NextSeq, tgt.Shard(i).AppliedSeq())
			}
			t.Fatal("replica did not converge")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

var reviewTexts = []string{
	"The screen is excellent. The battery is awful.",
	"Amazing screen resolution! The battery life is terrible.",
	"Great camera and a decent price.",
	"The speaker is too quiet but the design is gorgeous.",
}

// ingest PUTs perItem review batches for each of n items concurrently.
func ingest(t *testing.T, baseURL string, n, perItem, round int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	sem := make(chan struct{}, 8)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			for j := 0; j < perItem; j++ {
				body, _ := json.Marshal(server.AppendReviewsRequest{
					ItemName: fmt.Sprintf("Item %d", i),
					Reviews: []server.RawReview{{
						ID:     fmt.Sprintf("r%d-%d-%d", round, i, j),
						Text:   reviewTexts[(i+j)%len(reviewTexts)],
						Rating: float64((i+j)%5) / 4,
					}},
				})
				req, _ := http.NewRequest(http.MethodPut,
					fmt.Sprintf("%s/v1/items/item-%02d/reviews", baseURL, i), bytes.NewReader(body))
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("ingest item %d: %d %s", i, resp.StatusCode, data)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// readBody GETs path and returns the body, failing on non-200.
func readBody(t *testing.T, baseURL, path string) []byte {
	t.Helper()
	resp, err := http.Get(baseURL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", path, resp.StatusCode, data)
	}
	return data
}

// itemsJSON returns the deterministic part of GET /v1/items (the item
// list; store counters differ between nodes by design).
func itemsJSON(t *testing.T, baseURL string) string {
	t.Helper()
	var resp server.ListItemsResponse
	if err := json.Unmarshal(readBody(t, baseURL, "/v1/items"), &resp); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(resp.Items)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// summaryJSON returns the deterministic part of one item's summary
// (ElapsedMS is wall clock; Cached differs between a primary that just
// solved and a replica with a cold cache).
func summaryJSON(t *testing.T, baseURL, id string) string {
	t.Helper()
	var resp server.ItemSummaryResponse
	if err := json.Unmarshal(readBody(t, baseURL, "/v1/items/"+id+"/summary?k=2"), &resp); err != nil {
		t.Fatal(err)
	}
	resp.ElapsedMS = 0
	resp.Cached = false
	data, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// assertIdentical compares the full read surface of the two nodes:
// the item listing and every item's summary must be byte-identical.
func assertIdentical(t *testing.T, primaryURL, replicaURL string, items int) {
	t.Helper()
	if p, r := itemsJSON(t, primaryURL), itemsJSON(t, replicaURL); p != r {
		t.Fatalf("item listings differ:\nprimary: %s\nreplica: %s", p, r)
	}
	for i := 0; i < items; i++ {
		id := fmt.Sprintf("item-%02d", i)
		if p, r := summaryJSON(t, primaryURL, id), summaryJSON(t, replicaURL, id); p != r {
			t.Fatalf("summary %s differs:\nprimary: %s\nreplica: %s", id, p, r)
		}
	}
}

// TestReplicationConvergesUnderLoad is the headline acceptance test: a
// 4-shard primary ingests under concurrent HTTP load while a 4-shard
// replica tails all four WAL streams; after the load drains the
// replica's item listing and per-item summaries are byte-identical to
// the primary's, and writes to the replica are rejected with 403
// naming the primary.
func TestReplicationConvergesUnderLoad(t *testing.T) {
	const items = 16
	p := startPrimary(t, t.TempDir(), osars.StoreOptions{Shards: 4})
	defer p.st.Close()
	phs := httptest.NewServer(p.srv)
	defer phs.Close()

	r := startReplica(t, t.TempDir(), osars.StoreOptions{Shards: 4}, phs.URL)
	defer r.stop()

	// Ingest while the replica is already tailing: frames ship live.
	ingest(t, phs.URL, items, 4, 0)
	waitConverged(t, p.src, r.tgt)
	assertIdentical(t, phs.URL, r.hs.URL, items)

	// The replica refuses writes, pointing at the primary.
	body, _ := json.Marshal(server.AppendReviewsRequest{Reviews: []server.RawReview{{ID: "x", Text: "nope"}}})
	req, _ := http.NewRequest(http.MethodPut, r.hs.URL+"/v1/items/item-00/reviews", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica write status = %d, want 403", resp.StatusCode)
	}
	var e struct {
		Error   string `json:"error"`
		Primary string `json:"primary"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Primary != phs.URL || e.Error == "" {
		t.Fatalf("replica 403 body = %+v, want primary %s", e, phs.URL)
	}

	// DELETE is rejected the same way.
	req, _ = http.NewRequest(http.MethodDelete, r.hs.URL+"/v1/items/item-00", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusForbidden {
		t.Fatalf("replica delete status = %d, want 403", resp2.StatusCode)
	}

	// The replica's status endpoint reports per-shard lag.
	var status struct {
		Role   string          `json:"role"`
		Shards int             `json:"shards"`
		Lag    []repl.ShardLag `json:"per_shard"`
	}
	if err := json.Unmarshal(readBody(t, r.hs.URL, "/v1/repl/status"), &status); err != nil {
		t.Fatal(err)
	}
	if status.Role != "replica" || status.Shards != 4 || len(status.Lag) != 4 {
		t.Fatalf("replica status = %+v", status)
	}
	if status.Lag[0].FramesApplied == 0 {
		t.Fatalf("shard 0 applied no frames: %+v", status.Lag[0])
	}
}

// TestReplicaRestartResumes: a replica killed mid-stream and reopened
// from the same directory resumes from its last locally durable
// sequence (not from zero) and converges on the rest.
func TestReplicaRestartResumes(t *testing.T) {
	const items = 8
	p := startPrimary(t, t.TempDir(), osars.StoreOptions{Shards: 2})
	defer p.st.Close()
	phs := httptest.NewServer(p.srv)
	defer phs.Close()

	rdir := t.TempDir()
	r := startReplica(t, rdir, osars.StoreOptions{Shards: 2}, phs.URL)
	ingest(t, phs.URL, items, 2, 0)
	waitConverged(t, p.src, r.tgt)

	// Kill the replica (follower + store) mid-deployment.
	r.stop()

	// More writes land while the replica is down.
	ingest(t, phs.URL, items, 2, 1)

	// Reopen from the same directory: the local WAL already holds the
	// first batch, so the new follower resumes past it.
	r2 := startReplica(t, rdir, osars.StoreOptions{Shards: 2}, phs.URL)
	defer r2.stop()
	var resumed uint64
	for i := 0; i < 2; i++ {
		resumed += r2.tgt.Shard(i).AppliedSeq()
	}
	if resumed == 0 {
		t.Fatal("reopened replica lost its applied position (resumed from zero)")
	}
	waitConverged(t, p.src, r2.tgt)
	assertIdentical(t, phs.URL, r2.hs.URL, items)
}

// TestSnapshotBootstrap: a follower whose cursor was compacted past on
// the primary recovers via the snapshot endpoint, then tails the
// remaining records.
func TestSnapshotBootstrap(t *testing.T) {
	const items = 6
	// Tiny segments + eager snapshots so compaction actually removes
	// the early records.
	p := startPrimary(t, t.TempDir(), osars.StoreOptions{
		SnapshotEvery:   8,
		WALSegmentBytes: 512,
	})
	defer p.st.Close()
	phs := httptest.NewServer(p.srv)
	defer phs.Close()

	ingest(t, phs.URL, items, 4, 0)
	// Force a snapshot + compaction; the WAL must no longer start at 1.
	if err := p.st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st, err := p.src.Shard(0).ReplStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.OldestSeq <= 1 {
		t.Fatalf("compaction kept the whole log (oldest %d); the bootstrap path is not exercised", st.OldestSeq)
	}
	if st.SnapshotSeq == 0 {
		t.Fatal("no snapshot recorded after Snapshot()")
	}

	// A brand-new replica starts at after=0 — compacted past — and must
	// bootstrap from the snapshot before tailing.
	r := startReplica(t, t.TempDir(), osars.StoreOptions{}, phs.URL)
	defer r.stop()
	waitConverged(t, p.src, r.tgt)
	assertIdentical(t, phs.URL, r.hs.URL, items)

	// More live writes still flow after the bootstrap.
	ingest(t, phs.URL, items, 1, 1)
	waitConverged(t, p.src, r.tgt)
	assertIdentical(t, phs.URL, r.hs.URL, items)
}

// TestReplicationChaos kills and restarts the replica mid-stream and
// restarts the primary underneath a running follower (same URL, new
// store instance), with ingest interleaved throughout. The end state
// must still be byte-identical. This is the test the CI
// replication-chaos job runs under -race.
func TestReplicationChaos(t *testing.T) {
	const items = 10
	pdir := t.TempDir()
	p := startPrimary(t, pdir, osars.StoreOptions{Shards: 2})

	// A stable front URL whose backend handler we can swap, so the
	// follower survives a primary "process restart" (new store + new
	// handler, same address) like it would behind a real balancer.
	var backend atomic.Pointer[http.Handler]
	setBackend := func(h http.Handler) { backend.Store(&h) }
	setBackend(p.srv)
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*backend.Load()).ServeHTTP(w, r)
	}))
	defer front.Close()

	rdir := t.TempDir()
	r := startReplica(t, rdir, osars.StoreOptions{Shards: 2}, front.URL)

	ingest(t, front.URL, items, 2, 0)

	// Round 1: kill the replica mid-stream, write more, restart it.
	r.stop()
	ingest(t, front.URL, items, 2, 1)
	r = startReplica(t, rdir, osars.StoreOptions{Shards: 2}, front.URL)

	// Round 2: restart the primary under the running follower. While
	// it is down the front answers 503 and the follower backs off.
	setBackend(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"primary restarting"}`, http.StatusServiceUnavailable)
	}))
	if err := p.st.Close(); err != nil {
		t.Fatal(err)
	}
	p = startPrimary(t, pdir, osars.StoreOptions{Shards: 2})
	defer p.st.Close()
	setBackend(p.srv)

	ingest(t, front.URL, items, 2, 2)
	waitConverged(t, p.src, r.tgt)
	assertIdentical(t, front.URL, r.hs.URL, items)
	r.stop()
}
