// Live observability end-to-end: a durable sharded primary ingests
// under concurrent HTTP load while a replica tails its WAL, each node
// exposing its own /metrics. After convergence the primary's scrape
// must carry the store/WAL/group-commit series and the replica's the
// replication series with zero lag. Run with -race: the scrapes race
// the writers and the follower on purpose.
package repl_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"osars"
	"osars/internal/repl"
	"osars/internal/server"
)

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("exposition content type %q", ct)
	}
	return string(body)
}

func TestMetricsEndToEndPrimaryReplica(t *testing.T) {
	primReg := osars.NewMetricsRegistry()
	prim := startPrimary(t, t.TempDir(), osars.StoreOptions{Shards: 2, Metrics: primReg})
	defer prim.st.Close()
	prim.srv.ConfigureObservability(server.ObservabilityConfig{Metrics: primReg})
	primHS := httptest.NewServer(prim.srv)
	defer primHS.Close()

	replReg := osars.NewMetricsRegistry()
	replSum := newSummarizer(t)
	replSt, err := replSum.OpenStore(osars.StoreOptions{
		Shards: 2, DataDir: t.TempDir(), Replica: true, Metrics: replReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	replSrv := server.NewWithStore(replSum, replSt)
	replSrv.SetPrimary(primHS.URL)
	replSrv.ConfigureObservability(server.ObservabilityConfig{Metrics: replReg})
	tgt, err := repl.NewTarget(replSt)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := repl.StartFollower(repl.FollowerConfig{
		PrimaryURL: primHS.URL,
		Target:     tgt,
		Wait:       100 * time.Millisecond,
		Logf:       t.Logf,
		Obs:        replReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Stop()
	replHS := httptest.NewServer(replSrv)
	defer replHS.Close()

	// Concurrent ingest over real HTTP: parallel writers give the
	// group-commit path a chance to batch, and the scrapes below race
	// them under -race.
	const writers, perWriter = 8, 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				body := strings.NewReader(`{"reviews":[{"id":"r1","text":"The screen is excellent. The battery is awful."}]}`)
				req, err := http.NewRequest(http.MethodPut,
					fmt.Sprintf("%s/v1/items/w%d-i%d/reviews", primHS.URL, w, i), body)
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("append: %d", resp.StatusCode)
				}
			}
			// Scrape mid-load too: exposition must be safe against
			// concurrent observation.
			scrapeMetrics(t, primHS.URL)
		}(w)
	}
	wg.Wait()
	waitConverged(t, prim.src, tgt)

	primBody := scrapeMetrics(t, primHS.URL)
	for _, want := range []string{
		"osars_store_commit_batch_size_count{shard=",
		"osars_store_append_seconds_count{shard=",
		"osars_wal_fsync_seconds_count{shard=",
		"osars_wal_bytes_written_total{shard=",
		`osars_http_requests_total{route="/v1/items/{id}/reviews"} ` + fmt.Sprint(writers*perWriter),
	} {
		if !strings.Contains(primBody, want) {
			t.Errorf("primary exposition missing %q", want)
		}
	}

	// The replica's lag gauges settle to 0 once the follower's own
	// status update lands (it can trail the store's applied seq by one
	// scheduling beat, hence the poll).
	deadline := time.Now().Add(10 * time.Second)
	var replBody string
	for {
		replBody = scrapeMetrics(t, replHS.URL)
		if strings.Contains(replBody, `osars_repl_lag_seqs{shard="0"} 0`) &&
			strings.Contains(replBody, `osars_repl_lag_seqs{shard="1"} 0`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica lag gauges never reached 0:\n%s", replBody)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, want := range []string{
		`osars_repl_frames_applied_total{shard="0"}`,
		`osars_repl_frames_applied_total{shard="1"}`,
		"osars_repl_shipped_bytes_total{shard=",
		`osars_repl_state{shard="0"} 1`, // tailing
		"osars_repl_applied_seq{shard=",
	} {
		if !strings.Contains(replBody, want) {
			t.Errorf("replica exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("primary exposition:\n%s\nreplica exposition:\n%s", primBody, replBody)
	}
}
