// Package repl is the read-replica replication subsystem: it ships
// write-ahead-log frames from a primary to read replicas over HTTP,
// multiplying read/summary capacity horizontally while reusing the
// durability machinery the store already trusts (CRC32C frames,
// contiguous sequence numbers, snapshot-then-replay recovery).
//
// Topology: one primary (a durable store, sharded or not) and N
// replicas. Each shard's WAL is an independent, contiguously numbered
// record stream, so replication is simply "per shard, ship every frame
// after the replica's last applied sequence":
//
//	                       GET /v1/repl/stream?shard=i&after=S
//	primary WAL shard i  ────────────────────────────────────▶  replica shard i
//	(wal.Tail over the      chunked raw WAL frames               ApplyReplicated:
//	 segment files,         (identical byte framing)             local WAL append
//	 concurrent with                                             + applyWalRecord
//	 appends)
//
// The wire format IS the on-disk format: the primary's Tail reads raw
// frames straight out of the segment files and the replica re-verifies
// each frame's CRC32C before applying it, so a disk-to-wire-to-disk
// round trip never re-encodes anything.
//
// Catch-up state machine (per shard, driven by the Follower):
//
//	tailing ──(410 Gone: primary compacted past us)──▶ bootstrapping
//	   ▲          GET /v1/repl/snapshot?shard=i              │
//	   │          InstallSnapshot(seq, payload)              │
//	   └──────────────(resume tail after seq)────────────────┘
//
// with jittered exponential backoff around any connection failure.
// Consistency: replicas are eventually consistent — a read may trail
// the primary by the replication lag, which /v1/repl/status reports
// per shard in sequences and bytes so a load balancer (via /readyz and
// -max-lag-for-ready) can stop routing to a cold or wedged follower.
package repl

import (
	"fmt"

	"osars/internal/shard"
	"osars/internal/store"
)

// Source is the primary side: per-shard access to the WAL streams and
// snapshots being shipped. Build one with NewSource around the serving
// store (sharded or not).
type Source struct {
	shards   []*store.Store
	hashSeed uint64
}

// NewSource wraps a durable primary store. Accepts the two concrete
// store types behind the public osars.Store interface.
func NewSource(st any) (*Source, error) {
	switch v := st.(type) {
	case *store.Store:
		if _, err := v.ReplStatus(); err != nil {
			return nil, fmt.Errorf("repl: primary: %w", err)
		}
		return &Source{shards: []*store.Store{v}}, nil
	case *shard.ShardedStore:
		src := &Source{hashSeed: v.HashSeed()}
		for i := 0; i < v.NumShards(); i++ {
			sh := v.Shard(i)
			if _, err := sh.ReplStatus(); err != nil {
				return nil, fmt.Errorf("repl: primary shard %d: %w", i, err)
			}
			src.shards = append(src.shards, sh)
		}
		return src, nil
	default:
		return nil, fmt.Errorf("repl: unsupported store type %T", st)
	}
}

// NumShards returns the number of independent WAL streams.
func (s *Source) NumShards() int { return len(s.shards) }

// HashSeed returns the sharded placement seed (0 for unsharded).
func (s *Source) HashSeed() uint64 { return s.hashSeed }

// Shard returns the store behind stream i.
func (s *Source) Shard(i int) *store.Store { return s.shards[i] }

// Target is the replica side: per-shard apply access to a store opened
// with Replica mode. Build one with NewTarget.
type Target struct {
	shards   []*store.Store
	hashSeed uint64
}

// NewTarget wraps a replica store (every shard must be in replica
// mode).
func NewTarget(st any) (*Target, error) {
	switch v := st.(type) {
	case *store.Store:
		if !v.Replica() {
			return nil, fmt.Errorf("repl: target store is not in replica mode")
		}
		return &Target{shards: []*store.Store{v}}, nil
	case *shard.ShardedStore:
		tgt := &Target{hashSeed: v.HashSeed()}
		for i := 0; i < v.NumShards(); i++ {
			sh := v.Shard(i)
			if !sh.Replica() {
				return nil, fmt.Errorf("repl: target shard %d is not in replica mode", i)
			}
			tgt.shards = append(tgt.shards, sh)
		}
		return tgt, nil
	default:
		return nil, fmt.Errorf("repl: unsupported store type %T", st)
	}
}

// NumShards returns the number of shard streams the target consumes.
func (t *Target) NumShards() int { return len(t.shards) }

// HashSeed returns the sharded placement seed (0 for unsharded).
func (t *Target) HashSeed() uint64 { return t.hashSeed }

// Shard returns the replica store behind stream i.
func (t *Target) Shard(i int) *store.Store { return t.shards[i] }
