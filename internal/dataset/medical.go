package dataset

import (
	"fmt"
	"math/rand"

	"osars/internal/ontology"
)

// MedicalOntologyConfig sizes the synthetic SNOMED-CT-like ontology.
// The real SNOMED CT has >300,000 concepts; the summarization layer
// only touches the small populated region around the concepts reviews
// mention, so the default reproduces that region's structure (depth,
// fan-out, multi-parent DAG edges, small average ancestor count)
// without the full terminology.
type MedicalOntologyConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// BranchDomains is the level-1 fan-out (default: all built-in
	// clinical domains).
	BranchDomains int
	// ConditionsPerDomain controls mid-level size (default 12).
	ConditionsPerDomain int
	// VariantsPerCondition controls leaf fan-out (default 4).
	VariantsPerCondition int
	// MultiParentProb is the chance a condition also attaches to a
	// second domain, making the hierarchy a proper DAG (default 0.15).
	MultiParentProb float64
}

func (c *MedicalOntologyConfig) defaults() {
	if c.ConditionsPerDomain <= 0 {
		c.ConditionsPerDomain = 12
	}
	if c.VariantsPerCondition <= 0 {
		c.VariantsPerCondition = 4
	}
	if c.MultiParentProb <= 0 {
		c.MultiParentProb = 0.15
	}
}

// clinicalDomains are the level-1 concepts under the root, mixing the
// medical-condition and care-experience aspects that dominate doctor
// reviews.
var clinicalDomains = []struct {
	name     string
	synonyms []string
}{
	{"heart disease", []string{"cardiac condition", "cardiovascular disease"}},
	{"diabetes care", []string{"diabetes management", "blood sugar care"}},
	{"orthopedic care", []string{"bone and joint care"}},
	{"dermatology care", []string{"skin care", "skin condition"}},
	{"surgery", []string{"surgical procedure", "operation"}},
	{"pain management", []string{"pain treatment", "chronic pain care"}},
	{"mental health care", []string{"behavioral health"}},
	{"pregnancy care", []string{"prenatal care", "obstetric care"}},
	{"pediatric care", []string{"child care", "children's care"}},
	{"cancer treatment", []string{"oncology care", "tumor treatment"}},
	{"allergy treatment", []string{"allergy care"}},
	{"digestive health", []string{"gastrointestinal care", "stomach care"}},
	{"bedside manner", []string{"doctor's manner", "doctor attitude"}},
	{"office experience", []string{"office visit", "clinic experience"}},
	{"billing", []string{"billing process", "insurance handling"}},
	{"staff", []string{"office staff", "front desk"}},
	{"wait time", []string{"waiting time", "wait"}},
	{"communication", []string{"doctor communication"}},
	{"diagnosis", []string{"diagnostic skill"}},
	{"medication management", []string{"prescription management"}},
	{"follow up", []string{"follow-up care", "aftercare"}},
	{"scheduling", []string{"appointment scheduling", "booking"}},
}

var conditionQualifiers = []string{
	"chronic", "acute", "severe", "mild", "recurrent", "early stage",
	"advanced", "post operative", "pediatric", "adult onset",
	"seasonal", "persistent",
}

var variantQualifiers = []string{
	"type a", "type b", "stage one", "stage two", "left side",
	"right side", "upper", "lower", "primary", "secondary",
}

// MedicalOntology generates the synthetic hierarchy: root "clinical
// concern" → domains → qualified conditions → qualified variants, with
// occasional second parents creating DAG (not tree) structure. Concept
// counts: 1 + D + D·C + D·C·V.
func MedicalOntology(cfg MedicalOntologyConfig) *ontology.Ontology {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	nd := cfg.BranchDomains
	if nd <= 0 || nd > len(clinicalDomains) {
		nd = len(clinicalDomains)
	}
	var b ontology.Builder
	root := b.AddConcept("clinical concern", "health concern")

	domains := make([]ontology.ConceptID, nd)
	for i := 0; i < nd; i++ {
		d := clinicalDomains[i]
		domains[i] = b.Child(root, d.name, d.synonyms...)
	}
	for i := 0; i < nd; i++ {
		dname := clinicalDomains[i].name
		for c := 0; c < cfg.ConditionsPerDomain; c++ {
			q := conditionQualifiers[c%len(conditionQualifiers)]
			cname := fmt.Sprintf("%s %s", q, dname)
			cond := b.Child(domains[i], cname)
			// DAG edge: some conditions also belong to a second domain
			// ("chronic heart disease" is also a "pain management"
			// concern etc.).
			if rng.Float64() < cfg.MultiParentProb {
				other := domains[rng.Intn(nd)]
				if other != domains[i] {
					if err := b.AddEdge(other, cond); err != nil {
						panic(err)
					}
				}
			}
			for v := 0; v < cfg.VariantsPerCondition; v++ {
				vq := variantQualifiers[(c+v)%len(variantQualifiers)]
				b.Child(cond, fmt.Sprintf("%s %s %s", vq, q, dname))
			}
		}
	}
	o, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("dataset: medical ontology invalid: %v", err))
	}
	return o
}
