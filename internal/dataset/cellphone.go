// Package dataset provides the synthetic substitutes for the paper's
// two proprietary corpora (§5.1, Table 1): vitals.com doctor reviews
// with the SNOMED CT ontology, and Amazon cell-phone reviews with the
// manually built aspect hierarchy of Fig 3. Generators are
// deterministic given a seed and reproduce the corpus statistics the
// paper reports (review counts per item, sentences per review,
// skewed aspect popularity, mixed graded sentiment).
package dataset

import (
	"fmt"

	"osars/internal/ontology"
)

// CellPhoneOntology reconstructs the manually built cell-phone aspect
// hierarchy of Fig 3: a root "phone" with major aspect groups and the
// ~100 most popular extracted aspects nested beneath them. Synonyms
// are the surface forms the review generator and the concept matcher
// share.
func CellPhoneOntology() *ontology.Ontology {
	var b ontology.Builder
	phone := b.AddConcept("phone", "device", "handset")

	// Display group.
	screen := b.Child(phone, "screen", "display")
	b.Child(screen, "screen size", "display size")
	b.Child(screen, "screen resolution", "resolution")
	b.Child(screen, "screen brightness", "brightness")
	b.Child(screen, "screen color", "display color", "color accuracy")
	b.Child(screen, "touchscreen", "touch screen", "touch response")
	b.Child(screen, "screen glass", "gorilla glass")
	viewing := b.Child(screen, "viewing angle")
	_ = viewing

	// Battery group.
	battery := b.Child(phone, "battery")
	b.Child(battery, "battery life")
	charging := b.Child(battery, "charging", "charger")
	b.Child(charging, "fast charging", "quick charge")
	b.Child(charging, "wireless charging")
	b.Child(battery, "battery drain", "standby drain")

	// Camera group.
	camera := b.Child(phone, "camera")
	b.Child(camera, "picture quality", "photo quality", "image quality")
	b.Child(camera, "front camera", "selfie camera")
	b.Child(camera, "rear camera", "back camera")
	b.Child(camera, "video recording", "video quality")
	b.Child(camera, "camera flash", "flash")
	b.Child(camera, "zoom")
	b.Child(camera, "low light performance", "night mode")

	// Audio group.
	audio := b.Child(phone, "audio", "sound")
	b.Child(audio, "speaker", "speakers")
	b.Child(audio, "volume", "loudness")
	b.Child(audio, "headphone jack", "audio jack")
	b.Child(audio, "call quality", "voice quality")
	b.Child(audio, "microphone", "mic")

	// Performance group.
	perf := b.Child(phone, "performance", "speed")
	b.Child(perf, "processor", "cpu", "chipset")
	b.Child(perf, "memory", "ram")
	b.Child(perf, "storage", "internal storage")
	b.Child(perf, "gaming performance", "gaming")
	b.Child(perf, "multitasking")
	b.Child(perf, "lag", "stutter")

	// Software group.
	software := b.Child(phone, "software", "os")
	b.Child(software, "android version", "android")
	b.Child(software, "user interface", "ui", "launcher")
	b.Child(software, "updates", "software update", "security update")
	b.Child(software, "bloatware", "preinstalled apps")
	b.Child(software, "apps", "applications")

	// Connectivity group.
	conn := b.Child(phone, "connectivity", "connection")
	b.Child(conn, "wifi", "wi-fi")
	b.Child(conn, "bluetooth")
	b.Child(conn, "signal", "reception", "signal strength")
	b.Child(conn, "gps", "navigation")
	simSlot := b.Child(conn, "sim slot", "sim card", "dual sim")
	_ = simSlot
	b.Child(conn, "nfc")

	// Build & design group.
	design := b.Child(phone, "design", "build")
	b.Child(design, "build quality", "construction")
	b.Child(design, "size", "dimensions")
	b.Child(design, "weight")
	b.Child(design, "look", "appearance", "style")
	b.Child(design, "buttons", "button", "power button")
	b.Child(design, "fingerprint sensor", "fingerprint reader", "fingerprint scanner")
	b.Child(design, "case", "back cover")
	b.Child(design, "durability")

	// Price & value group.
	price := b.Child(phone, "price", "cost")
	b.Child(price, "value", "value for money", "bang for the buck")
	b.Child(price, "deal", "discount")

	// Service & logistics group.
	service := b.Child(phone, "service", "customer service")
	b.Child(service, "warranty")
	b.Child(service, "shipping", "delivery")
	b.Child(service, "packaging", "box")
	b.Child(service, "seller", "vendor")
	b.Child(service, "return process", "refund process", "returns")

	// Accessories group.
	acc := b.Child(phone, "accessories")
	b.Child(acc, "included charger", "charger included")
	b.Child(acc, "earbuds", "earphones", "headphones")
	b.Child(acc, "screen protector")
	b.Child(acc, "cable", "usb cable", "charging cable")

	o, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("dataset: cell-phone ontology invalid: %v", err))
	}
	return o
}
