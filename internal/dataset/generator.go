package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"osars/internal/ontology"
)

// Domain selects the template bank the text generator uses.
type Domain int

// The two review domains of the paper's evaluation (§5.1).
const (
	DomainDoctor Domain = iota
	DomainPhone
	DomainRestaurant
)

// CorpusConfig sizes a synthetic review corpus. Presets matching
// Table 1 are DoctorConfig and CellPhoneConfig; the Small variants are
// for tests and examples.
type CorpusConfig struct {
	Seed         int64
	Domain       Domain
	NumItems     int
	TotalReviews int
	// MinReviews / MaxReviews bound reviews per item (Table 1 rows 3-4).
	MinReviews, MaxReviews int
	// MeanSentences is the average sentences per review (Table 1 row 5).
	MeanSentences float64
	// SkewSigma is the log-normal spread of per-item review counts
	// (phones are much more skewed than doctors).
	SkewSigma float64
	// ConceptMentionProb is the chance a sentence carries an aspect
	// mention (the rest is filler).
	ConceptMentionProb float64
	// TwoConceptProb is the chance a mention sentence carries two
	// aspects.
	TwoConceptProb float64
	// ZipfExponent shapes aspect popularity (weight ∝ 1/rank^e).
	ZipfExponent float64
}

// DoctorConfig is the Table 1 doctor-review corpus: 1000 items, 68686
// reviews, 43-354 reviews per item, 4.87 sentences per review.
func DoctorConfig(seed int64) CorpusConfig {
	return CorpusConfig{
		Seed: seed, Domain: DomainDoctor,
		NumItems: 1000, TotalReviews: 68686,
		MinReviews: 43, MaxReviews: 354,
		MeanSentences: 4.87, SkewSigma: 0.45,
		ConceptMentionProb: 0.75, TwoConceptProb: 0.2,
		ZipfExponent: 1.05,
	}
}

// CellPhoneConfig is the Table 1 cell-phone corpus: 60 items, 33578
// reviews, 102-3200 reviews per item, 3.81 sentences per review.
func CellPhoneConfig(seed int64) CorpusConfig {
	return CorpusConfig{
		Seed: seed, Domain: DomainPhone,
		NumItems: 60, TotalReviews: 33578,
		MinReviews: 102, MaxReviews: 3200,
		MeanSentences: 3.81, SkewSigma: 1.1,
		ConceptMentionProb: 0.8, TwoConceptProb: 0.25,
		ZipfExponent: 0.95,
	}
}

// SmallDoctorConfig is a downscaled doctor corpus for tests/examples.
func SmallDoctorConfig(seed int64) CorpusConfig {
	c := DoctorConfig(seed)
	c.NumItems = 12
	c.TotalReviews = 600
	c.MinReviews = 20
	c.MaxReviews = 90
	return c
}

// SmallCellPhoneConfig is a downscaled phone corpus for tests/examples.
func SmallCellPhoneConfig(seed int64) CorpusConfig {
	c := CellPhoneConfig(seed)
	c.NumItems = 8
	c.TotalReviews = 400
	c.MinReviews = 25
	c.MaxReviews = 120
	return c
}

// RawReviewDoc is one generated, unprocessed review.
type RawReviewDoc struct {
	ID     string  `json:"id"`
	Text   string  `json:"text"`
	Stars  int     `json:"stars"`
	Rating float64 `json:"rating"` // stars normalized to [-1, +1]
}

// RawItem is one generated item with its latent per-aspect ground
// truth (useful for validating the sentiment estimators; the
// experiments themselves use only the extracted pairs, as the paper
// does).
type RawItem struct {
	ID      string                         `json:"id"`
	Name    string                         `json:"name"`
	Reviews []RawReviewDoc                 `json:"reviews"`
	Truth   map[ontology.ConceptID]float64 `json:"truth,omitempty"`
}

// Corpus is a generated dataset: the ontology plus raw items.
type Corpus struct {
	Ont   *ontology.Ontology
	Items []RawItem
}

// opinion banks: adjectives grouped by the exact prior strength they
// carry in the sentiment lexicon, so the lexicon estimator recovers
// the intended sentence sentiment. Domain-specific words are split out
// so "broken" never describes a doctor's bedside manner.
type bank struct {
	val   float64
	words []string
}

var sharedBanks = []bank{
	{+1.0, []string{"excellent", "amazing", "outstanding", "superb", "perfect", "fantastic", "wonderful", "awesome"}},
	{+0.75, []string{"great", "impressive", "terrific", "remarkable"}},
	{+0.5, []string{"good", "nice", "solid", "clean", "pleasant"}},
	{+0.25, []string{"fine", "decent", "okay", "adequate", "acceptable", "fair"}},
	{-0.4, []string{"dull", "late"}},
	{-0.5, []string{"slow", "mediocre", "weak", "wrong"}},
	{-0.75, []string{"bad", "poor", "disappointing"}},
	{-1.0, []string{"terrible", "horrible", "awful", "dreadful", "unacceptable"}},
}

var doctorBanks = []bank{
	{+0.75, []string{"caring", "compassionate", "knowledgeable"}},
	{+0.7, []string{"thorough", "attentive", "friendly", "courteous", "professional"}},
	{+0.6, []string{"comfortable", "helpful", "patient", "gentle", "kind", "efficient", "prompt"}},
	{-0.5, []string{"uncomfortable", "rushed"}},
	{-0.7, []string{"careless", "painful", "frustrating"}},
	{-0.75, []string{"arrogant", "dismissive"}},
	{-0.8, []string{"rude", "unprofessional"}},
}

var phoneBanks = []bank{
	{+0.7, []string{"vivid", "crisp"}},
	{+0.6, []string{"sleek", "snappy", "responsive", "smooth", "sharp", "reliable", "durable", "sturdy"}},
	{+0.5, []string{"fast", "quick", "easy", "clear", "affordable", "bright"}},
	{-0.4, []string{"expensive", "cheap", "dim"}},
	{-0.5, []string{"blurry", "grainy", "scratched"}},
	{-0.6, []string{"laggy", "flimsy", "annoying"}},
	{-0.7, []string{"glitchy", "buggy", "unreliable", "faulty"}},
	{-0.75, []string{"broken"}},
	{-0.8, []string{"defective", "crappy"}},
}

var doctorFillers = []string{
	"I have been a patient here for two years.",
	"The office is near the mall downtown.",
	"I scheduled my appointment online.",
	"My whole family comes here now.",
	"Parking was straightforward.",
	"I was referred by a coworker.",
	"The waiting room had plenty of chairs.",
	"I go twice a year for checkups.",
	"The location moved last spring.",
	"They take most insurance plans.",
}

var phoneFillers = []string{
	"I bought it last month from this listing.",
	"This is my second one of these.",
	"It came in a small box.",
	"I use it daily for work and travel.",
	"Switched over from my old model.",
	"Set up took about ten minutes.",
	"I paired it with my old accessories.",
	"Ordered on Monday, arrived Thursday.",
	"My daughter has the same model.",
	"I read a lot of reviews before buying.",
}

// generator carries per-corpus state.
type generator struct {
	cfg      CorpusConfig
	rng      *rand.Rand
	ont      *ontology.Ontology
	concepts []ontology.ConceptID // mentionable (non-root), popularity order
	cumZipf  []float64
	banks    []bank
	fillers  []string
}

// Generate builds a deterministic corpus for the config. The ontology
// is the Fig 3 hierarchy for phones and the synthetic SNOMED-like
// hierarchy for doctors.
func Generate(cfg CorpusConfig) *Corpus {
	var ont *ontology.Ontology
	switch cfg.Domain {
	case DomainDoctor:
		ont = MedicalOntology(MedicalOntologyConfig{Seed: cfg.Seed})
	case DomainPhone:
		ont = CellPhoneOntology()
	case DomainRestaurant:
		ont = RestaurantOntology()
	default:
		panic(fmt.Sprintf("dataset: unknown domain %d", cfg.Domain))
	}
	return GenerateWithOntology(cfg, ont)
}

// GenerateWithOntology generates reviews over a caller-provided
// ontology (any rooted DAG whose concept names should appear in text).
func GenerateWithOntology(cfg CorpusConfig, ont *ontology.Ontology) *Corpus {
	g := &generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		ont: ont,
	}
	switch cfg.Domain {
	case DomainDoctor:
		g.banks = append(append([]bank{}, sharedBanks...), doctorBanks...)
		g.fillers = doctorFillers
	case DomainRestaurant:
		g.banks = append(append([]bank{}, sharedBanks...), restaurantBanks...)
		g.fillers = restaurantFillers
	default:
		g.banks = append(append([]bank{}, sharedBanks...), phoneBanks...)
		g.fillers = phoneFillers
	}

	// Popularity ranking: shuffle non-root concepts deterministically,
	// then weight by Zipf over the shuffled rank.
	for id := ontology.ConceptID(0); int(id) < ont.Len(); id++ {
		if id != ont.Root() {
			g.concepts = append(g.concepts, id)
		}
	}
	g.rng.Shuffle(len(g.concepts), func(i, j int) {
		g.concepts[i], g.concepts[j] = g.concepts[j], g.concepts[i]
	})
	g.cumZipf = make([]float64, len(g.concepts))
	sum := 0.0
	for i := range g.concepts {
		sum += 1 / math.Pow(float64(i+2), cfg.ZipfExponent)
		g.cumZipf[i] = sum
	}

	counts := allocateCounts(g.rng, cfg.NumItems, cfg.TotalReviews, cfg.MinReviews, cfg.MaxReviews, cfg.SkewSigma)
	corpus := &Corpus{Ont: ont}
	for i := 0; i < cfg.NumItems; i++ {
		corpus.Items = append(corpus.Items, g.item(i, counts[i]))
	}
	return corpus
}

func (g *generator) itemName(i int) string {
	switch g.cfg.Domain {
	case DomainDoctor:
		return fmt.Sprintf("Dr. %s %s", firstNames[i%len(firstNames)], lastNames[(i/len(firstNames))%len(lastNames)])
	case DomainRestaurant:
		return fmt.Sprintf("%s Table %d", restaurantNames[i%len(restaurantNames)], 1+i)
	default:
		return fmt.Sprintf("Axion %s %d", phoneSeries[i%len(phoneSeries)], 100+i)
	}
}

var firstNames = []string{
	"Alice", "Brian", "Carmen", "David", "Elena", "Frank", "Grace",
	"Hassan", "Irene", "James", "Karen", "Luis", "Maria", "Nathan",
	"Olivia", "Peter", "Quinn", "Rosa", "Samuel", "Teresa",
}

var lastNames = []string{
	"Anderson", "Brooks", "Chen", "Diaz", "Evans", "Foster", "Garcia",
	"Huang", "Ivanov", "Johnson", "Kim", "Lopez", "Miller", "Nguyen",
	"Okafor", "Patel", "Quintero", "Rossi", "Smith", "Torres",
	"Ueda", "Vargas", "Williams", "Xu", "Young", "Zhang",
}

var phoneSeries = []string{"Nova", "Pulse", "Edge", "Prime", "Zen", "Volt", "Aero", "Core"}

// item generates one item with nReviews reviews.
func (g *generator) item(idx, nReviews int) RawItem {
	item := RawItem{
		ID:    fmt.Sprintf("item-%04d", idx),
		Name:  g.itemName(idx),
		Truth: map[ontology.ConceptID]float64{},
	}
	// Latent item quality, skewed positive like real review sites.
	quality := clamp(g.rng.NormFloat64()*0.45 + 0.35)
	for r := 0; r < nReviews; r++ {
		item.Reviews = append(item.Reviews, g.review(&item, quality, r))
	}
	return item
}

// truthFor lazily draws the latent sentiment of a concept for an item.
func (g *generator) truthFor(item *RawItem, quality float64, c ontology.ConceptID) float64 {
	if s, ok := item.Truth[c]; ok {
		return s
	}
	s := clamp(quality + g.rng.NormFloat64()*0.35)
	item.Truth[c] = s
	return s
}

func (g *generator) review(item *RawItem, quality float64, idx int) RawReviewDoc {
	n := 1 + poisson(g.rng, g.cfg.MeanSentences-1)
	var sentences []string
	sentSum, sentN := 0.0, 0
	for s := 0; s < n; s++ {
		if g.rng.Float64() >= g.cfg.ConceptMentionProb {
			sentences = append(sentences, g.fillers[g.rng.Intn(len(g.fillers))])
			continue
		}
		c1 := g.sampleConcept()
		s1 := clamp(g.truthFor(item, quality, c1) + g.rng.NormFloat64()*0.2)
		if g.rng.Float64() < g.cfg.TwoConceptProb {
			c2 := g.sampleConcept()
			if c2 != c1 {
				s2 := clamp(g.truthFor(item, quality, c2) + g.rng.NormFloat64()*0.2)
				sentences = append(sentences, g.twoConceptSentence(c1, s1, c2, s2))
				sentSum += (s1 + s2) / 2
				sentN++
				continue
			}
		}
		sentences = append(sentences, g.oneConceptSentence(c1, s1))
		sentSum += s1
		sentN++
	}
	avg := quality
	if sentN > 0 {
		avg = sentSum / float64(sentN)
	}
	stars := int(math.Round((clamp(avg+g.rng.NormFloat64()*0.15)+1)*2)) + 1
	if stars < 1 {
		stars = 1
	}
	if stars > 5 {
		stars = 5
	}
	return RawReviewDoc{
		ID:     fmt.Sprintf("%s-r%04d", item.ID, idx),
		Text:   strings.Join(sentences, " "),
		Stars:  stars,
		Rating: float64(stars-3) / 2,
	}
}

// sampleConcept draws a concept by Zipf popularity.
func (g *generator) sampleConcept() ontology.ConceptID {
	total := g.cumZipf[len(g.cumZipf)-1]
	r := g.rng.Float64() * total
	lo, hi := 0, len(g.cumZipf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cumZipf[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return g.concepts[lo]
}

// surface picks the concept's name or one of its synonyms.
func (g *generator) surface(c ontology.ConceptID) string {
	syn := g.ont.Synonyms(c)
	if len(syn) > 0 && g.rng.Float64() < 0.35 {
		return syn[g.rng.Intn(len(syn))]
	}
	return g.ont.Name(c)
}

// adjectiveFor picks an opinion adjective whose lexicon strength is
// closest to the target sentiment, with ties broken randomly among
// near-equal banks.
func (g *generator) adjectiveFor(target float64) (word string, val float64) {
	bestDist := math.Inf(1)
	var cands []bank
	for _, b := range g.banks {
		d := math.Abs(b.val - target)
		switch {
		case d < bestDist-0.049:
			bestDist = d
			cands = cands[:0]
			cands = append(cands, b)
		case d <= bestDist+0.049:
			cands = append(cands, b)
		}
	}
	b := cands[g.rng.Intn(len(cands))]
	return b.words[g.rng.Intn(len(b.words))], b.val
}

func (g *generator) oneConceptSentence(c ontology.ConceptID, target float64) string {
	name := g.surface(c)
	adj, _ := g.adjectiveFor(target)
	switch g.rng.Intn(5) {
	case 0:
		return fmt.Sprintf("The %s is %s.", name, adj)
	case 1:
		return fmt.Sprintf("The %s was %s.", name, adj)
	case 2:
		return fmt.Sprintf("%s %s.", capitalize(adj), name)
	case 3:
		return fmt.Sprintf("I found the %s to be %s.", name, adj)
	default:
		return fmt.Sprintf("Honestly the %s seemed %s to me.", name, adj)
	}
}

func (g *generator) twoConceptSentence(c1 ontology.ConceptID, s1 float64, c2 ontology.ConceptID, s2 float64) string {
	n1, n2 := g.surface(c1), g.surface(c2)
	a1, _ := g.adjectiveFor(s1)
	a2, _ := g.adjectiveFor(s2)
	if (s1 > 0) != (s2 > 0) {
		return fmt.Sprintf("The %s is %s but the %s is %s.", n1, a1, n2, a2)
	}
	if g.rng.Intn(2) == 0 {
		return fmt.Sprintf("The %s is %s and the %s is %s.", n1, a1, n2, a2)
	}
	return fmt.Sprintf("Both the %s and the %s are %s.", n1, n2, a1)
}

// allocateCounts draws per-item review counts from a clamped
// log-normal and adjusts them to sum exactly to total. When feasible,
// the least-reviewed item is pinned to min and the most-reviewed to
// max, so the generated corpus reproduces Table 1's min/max rows
// exactly (43/354 for doctors, 102/3200 for phones).
func allocateCounts(rng *rand.Rand, n, total, min, max int, sigma float64) []int {
	if n <= 0 {
		return nil
	}
	if total < n*min {
		total = n * min
	}
	if total > n*max {
		total = n * max
	}
	counts := make([]int, n)
	free := n // items the repair loop may adjust, prefix [pinned..n)
	pinned := 0
	// Pin the extremes when the remainder stays feasible.
	if n >= 2 && total-min-max >= (n-2)*min && total-min-max <= (n-2)*max {
		counts[0] = min
		counts[1] = max
		pinned = 2
		free = n - 2
		total -= min + max
	}
	if free == 0 {
		return counts
	}
	w := make([]float64, free)
	sum := 0.0
	for i := range w {
		w[i] = math.Exp(rng.NormFloat64() * sigma)
		sum += w[i]
	}
	cur := 0
	for i := 0; i < free; i++ {
		c := int(math.Round(w[i] / sum * float64(total)))
		if c < min {
			c = min
		}
		if c > max {
			c = max
		}
		counts[pinned+i] = c
		cur += c
	}
	// Repair the total by bumping unpinned items within their bounds.
	for cur != total {
		i := pinned + rng.Intn(free)
		if cur < total && counts[i] < max {
			counts[i]++
			cur++
		} else if cur > total && counts[i] > min {
			counts[i]--
			cur--
		}
	}
	// Don't leave the pinned extremes at fixed positions: shuffle.
	rng.Shuffle(n, func(i, j int) { counts[i], counts[j] = counts[j], counts[i] })
	return counts
}

// poisson samples Po(λ) by Knuth's method (λ is small here).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func clamp(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}
