package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"osars/internal/ontology"
)

// WriteItemsJSONL streams the corpus items as one JSON object per
// line, the interchange format the CLI tools consume.
func WriteItemsJSONL(w io.Writer, items []RawItem) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range items {
		if err := enc.Encode(&items[i]); err != nil {
			return fmt.Errorf("dataset: encode item %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadItemsJSONL reads items back from the JSONL stream.
func ReadItemsJSONL(r io.Reader) ([]RawItem, error) {
	var items []RawItem
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var it RawItem
		if err := dec.Decode(&it); err == io.EOF {
			return items, nil
		} else if err != nil {
			return nil, fmt.Errorf("dataset: decode item %d: %w", len(items), err)
		}
		items = append(items, it)
	}
}

// SaveCorpus writes the ontology (JSON) and items (JSONL) to two
// files.
func SaveCorpus(c *Corpus, ontPath, itemsPath string) error {
	ontData, err := json.Marshal(c.Ont)
	if err != nil {
		return fmt.Errorf("dataset: marshal ontology: %w", err)
	}
	if err := os.WriteFile(ontPath, ontData, 0o644); err != nil {
		return err
	}
	f, err := os.Create(itemsPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteItemsJSONL(f, c.Items); err != nil {
		return err
	}
	return f.Close()
}

// LoadCorpus reads a corpus saved by SaveCorpus.
func LoadCorpus(ontPath, itemsPath string) (*Corpus, error) {
	ontData, err := os.ReadFile(ontPath)
	if err != nil {
		return nil, err
	}
	var ont ontology.Ontology
	if err := json.Unmarshal(ontData, &ont); err != nil {
		return nil, fmt.Errorf("dataset: unmarshal ontology: %w", err)
	}
	f, err := os.Open(itemsPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	items, err := ReadItemsJSONL(f)
	if err != nil {
		return nil, err
	}
	return &Corpus{Ont: &ont, Items: items}, nil
}
