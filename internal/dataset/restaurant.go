package dataset

import "fmt"

import "osars/internal/ontology"

// RestaurantOntology is an aspect hierarchy for local-service
// (restaurant) reviews — the domain of the "proportional" baseline's
// original paper (Blair-Goldensohn et al. 2008). It demonstrates that
// the framework is domain-agnostic: any rooted aspect DAG plugs in.
func RestaurantOntology() *ontology.Ontology {
	var b ontology.Builder
	root := b.AddConcept("restaurant", "place", "spot")

	food := b.Child(root, "food", "meal", "dishes")
	b.Child(food, "taste", "flavor")
	b.Child(food, "portion size", "portions", "serving size")
	b.Child(food, "freshness", "fresh ingredients")
	b.Child(food, "menu", "menu selection", "menu variety")
	b.Child(food, "appetizers", "starters")
	b.Child(food, "desserts", "dessert")
	b.Child(food, "drinks", "beverages", "cocktails")
	b.Child(food, "coffee", "espresso")
	b.Child(food, "presentation", "plating")

	service := b.Child(root, "service", "staff")
	b.Child(service, "waiter", "server", "waitress")
	b.Child(service, "wait time", "waiting time", "wait")
	b.Child(service, "attentiveness", "attention")
	b.Child(service, "host", "hostess", "front desk")
	b.Child(service, "speed of service", "service speed")

	ambiance := b.Child(root, "ambiance", "atmosphere", "vibe")
	b.Child(ambiance, "decor", "interior", "decoration")
	b.Child(ambiance, "noise level", "noise", "loudness")
	b.Child(ambiance, "lighting")
	b.Child(ambiance, "seating", "tables", "booths")
	b.Child(ambiance, "cleanliness", "clean bathrooms")
	b.Child(ambiance, "music")

	value := b.Child(root, "value", "prices", "price")
	b.Child(value, "portions for the price", "value for money")
	b.Child(value, "happy hour", "specials", "deals")

	logistics := b.Child(root, "logistics", "convenience")
	b.Child(logistics, "location", "neighborhood")
	b.Child(logistics, "parking", "parking lot")
	b.Child(logistics, "reservations", "booking")
	b.Child(logistics, "takeout", "delivery", "to-go")
	b.Child(logistics, "hours", "opening hours")

	o, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("dataset: restaurant ontology invalid: %v", err))
	}
	return o
}

// RestaurantConfig is a synthetic local-services corpus in the shape
// of a city guide's restaurant listings: 40 venues, heavily skewed
// review counts, short reviews.
func RestaurantConfig(seed int64) CorpusConfig {
	return CorpusConfig{
		Seed: seed, Domain: DomainRestaurant,
		NumItems: 40, TotalReviews: 12000,
		MinReviews: 30, MaxReviews: 1500,
		MeanSentences: 3.2, SkewSigma: 1.0,
		ConceptMentionProb: 0.8, TwoConceptProb: 0.25,
		ZipfExponent: 0.9,
	}
}

// SmallRestaurantConfig is the test/example-sized variant.
func SmallRestaurantConfig(seed int64) CorpusConfig {
	c := RestaurantConfig(seed)
	c.NumItems = 6
	c.TotalReviews = 300
	c.MinReviews = 25
	c.MaxReviews = 90
	return c
}

var restaurantBanks = []bank{
	{+0.9, []string{"love", "adore"}},
	{+0.75, []string{"delightful", "terrific", "marvelous"}},
	{+0.6, []string{"enjoyed", "comfortable", "efficient", "prompt"}},
	{+0.5, []string{"pleasant", "clean", "fast", "affordable"}},
	{-0.4, []string{"noisy", "expensive", "late", "dull"}},
	{-0.5, []string{"slow", "dirty", "mediocre", "uncomfortable", "rushed"}},
	{-0.6, []string{"annoying", "unhappy"}},
	{-0.8, []string{"rude", "pathetic"}},
}

var restaurantFillers = []string{
	"We came in on a Friday night.",
	"I have walked past this place for years.",
	"Our group of four sat by the window.",
	"We ordered the chef's recommendation.",
	"It was my sister's birthday dinner.",
	"They were busy but found us a table.",
	"We paid by card and split the bill.",
	"The menu is posted outside the door.",
	"I had read about it in the city guide.",
	"We will see how the new location does.",
}

var restaurantNames = []string{
	"Cedar", "Harvest", "Juniper", "Lantern", "Meadow", "Nonna's",
	"Olive", "Pier", "Quince", "Rustic", "Saffron", "Tandoor",
}
