package dataset

import (
	"fmt"

	"osars/internal/text"
)

// Stats are the Table 1 dataset characteristics.
type Stats struct {
	NumItems           int
	NumReviews         int
	MinReviewsPerItem  int
	MaxReviewsPerItem  int
	AvgSentencesPerRev float64
}

// ComputeStats derives Table 1 rows from a corpus, counting sentences
// with the same splitter the extraction pipeline uses.
func ComputeStats(c *Corpus) Stats {
	s := Stats{NumItems: len(c.Items), MinReviewsPerItem: 1 << 30}
	totalSentences := 0
	for i := range c.Items {
		n := len(c.Items[i].Reviews)
		s.NumReviews += n
		if n < s.MinReviewsPerItem {
			s.MinReviewsPerItem = n
		}
		if n > s.MaxReviewsPerItem {
			s.MaxReviewsPerItem = n
		}
		for _, r := range c.Items[i].Reviews {
			totalSentences += len(text.SplitSentences(r.Text))
		}
	}
	if s.NumItems == 0 {
		s.MinReviewsPerItem = 0
	}
	if s.NumReviews > 0 {
		s.AvgSentencesPerRev = float64(totalSentences) / float64(s.NumReviews)
	}
	return s
}

// Table1Row renders the stats as one column of the paper's Table 1.
func (s Stats) Table1Row(label string) string {
	return fmt.Sprintf("%-28s items=%d reviews=%d min/item=%d max/item=%d avg-sentences=%.2f",
		label, s.NumItems, s.NumReviews, s.MinReviewsPerItem, s.MaxReviewsPerItem, s.AvgSentencesPerRev)
}
