package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"osars/internal/extract"
	"osars/internal/ontology"
	"osars/internal/sentiment"
	"osars/internal/text"
)

func TestCellPhoneOntologyShape(t *testing.T) {
	o := CellPhoneOntology()
	if o.Len() < 60 {
		t.Fatalf("phone ontology too small: %d concepts", o.Len())
	}
	if o.MaxDepth() < 2 || o.MaxDepth() > 4 {
		t.Fatalf("phone ontology depth = %d, want 2-4 (Fig 3 shape)", o.MaxDepth())
	}
	if name := o.Name(o.Root()); name != "phone" {
		t.Fatalf("root = %q, want phone", name)
	}
	// Spot-check Fig 3 structure: screen resolution under screen.
	res, ok := o.Lookup("screen resolution")
	if !ok {
		t.Fatal("screen resolution missing")
	}
	scr, _ := o.Lookup("screen")
	if !o.IsAncestorOf(scr, res) {
		t.Fatal("screen is not an ancestor of screen resolution")
	}
}

func TestMedicalOntologyShape(t *testing.T) {
	o := MedicalOntology(MedicalOntologyConfig{Seed: 1})
	// 1 + 22 domains + 22*12 conditions + 22*12*4 variants = 1343.
	if o.Len() != 1343 {
		t.Fatalf("medical ontology size = %d, want 1343", o.Len())
	}
	if o.MaxDepth() != 3 {
		t.Fatalf("depth = %d, want 3", o.MaxDepth())
	}
	// Multi-parent edges exist (DAG, not tree).
	if o.NumEdges() <= o.Len()-1 {
		t.Fatalf("edges = %d, want > %d (multi-parent DAG)", o.NumEdges(), o.Len()-1)
	}
	// Average ancestors stays small — the §4.1 near-linearity premise.
	if avg := o.AvgAncestors(); avg > 6 {
		t.Fatalf("avg ancestors = %v, want small", avg)
	}
}

func TestMedicalOntologyDeterministic(t *testing.T) {
	a := MedicalOntology(MedicalOntologyConfig{Seed: 7})
	b := MedicalOntology(MedicalOntologyConfig{Seed: 7})
	if a.Len() != b.Len() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed gave different ontologies")
	}
	c := MedicalOntology(MedicalOntologyConfig{Seed: 8})
	if a.NumEdges() == c.NumEdges() {
		t.Log("different seeds gave same edge count (possible but unlikely)")
	}
}

func TestAllocateCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	counts := allocateCounts(rng, 100, 6868, 43, 354, 0.45)
	sum := 0
	for _, c := range counts {
		if c < 43 || c > 354 {
			t.Fatalf("count %d out of [43,354]", c)
		}
		sum += c
	}
	if sum != 6868 {
		t.Fatalf("total = %d, want 6868", sum)
	}
}

func TestAllocateCountsEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := allocateCounts(rng, 0, 100, 1, 10, 1); got != nil {
		t.Fatal("n=0 should give nil")
	}
	// Infeasible total gets clamped to n*min.
	counts := allocateCounts(rng, 5, 1, 10, 20, 1)
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != 50 {
		t.Fatalf("clamped total = %d, want 50", sum)
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += poisson(rng, 3.87)
	}
	mean := float64(sum) / n
	if math.Abs(mean-3.87) > 0.1 {
		t.Fatalf("poisson mean = %v, want ≈3.87", mean)
	}
	if poisson(rng, 0) != 0 {
		t.Fatal("poisson(0) != 0")
	}
}

func TestGenerateSmallDoctorCorpus(t *testing.T) {
	c := Generate(SmallDoctorConfig(11))
	s := ComputeStats(c)
	if s.NumItems != 12 || s.NumReviews != 600 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MinReviewsPerItem < 20 || s.MaxReviewsPerItem > 90 {
		t.Fatalf("review bounds violated: %+v", s)
	}
	if s.AvgSentencesPerRev < 3.8 || s.AvgSentencesPerRev > 6 {
		t.Fatalf("avg sentences = %v, want ≈4.87", s.AvgSentencesPerRev)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(SmallCellPhoneConfig(42))
	b := Generate(SmallCellPhoneConfig(42))
	if len(a.Items) != len(b.Items) {
		t.Fatal("same seed, different item counts")
	}
	for i := range a.Items {
		if len(a.Items[i].Reviews) != len(b.Items[i].Reviews) {
			t.Fatalf("item %d review counts differ", i)
		}
		for j := range a.Items[i].Reviews {
			if a.Items[i].Reviews[j].Text != b.Items[i].Reviews[j].Text {
				t.Fatalf("item %d review %d text differs", i, j)
			}
		}
	}
}

func TestGeneratedTextIsExtractable(t *testing.T) {
	// The whole point of the generator: the pipeline must recover
	// concept-sentiment pairs from the synthetic text.
	c := Generate(SmallCellPhoneConfig(7))
	p := extract.NewPipeline(extract.NewMatcher(c.Ont), sentiment.Lexicon{})
	totalPairs, totalSentences := 0, 0
	for _, it := range c.Items[:3] {
		for _, r := range it.Reviews {
			rev := p.AnnotateReview(r.ID, r.Text, r.Rating)
			totalSentences += len(rev.Sentences)
			totalPairs += len(rev.Pairs())
		}
	}
	if totalPairs == 0 {
		t.Fatal("no pairs extracted from generated text")
	}
	// Mention probability is 0.8; with two-concept sentences the pair
	// rate should comfortably exceed 0.5 per sentence.
	rate := float64(totalPairs) / float64(totalSentences)
	if rate < 0.5 {
		t.Fatalf("pair rate = %v pairs/sentence, want ≥ 0.5", rate)
	}
}

func TestGeneratedSentimentRecoverable(t *testing.T) {
	// Extracted sentence sentiments should correlate strongly with the
	// generator's latent truth.
	c := Generate(SmallCellPhoneConfig(19))
	p := extract.NewPipeline(extract.NewMatcher(c.Ont), sentiment.Lexicon{})
	var sumErr float64
	var n int
	for _, it := range c.Items[:3] {
		for _, r := range it.Reviews {
			rev := p.AnnotateReview(r.ID, r.Text, r.Rating)
			for _, pair := range rev.Pairs() {
				truth, ok := it.Truth[pair.Concept]
				if !ok {
					continue
				}
				sumErr += math.Abs(pair.Sentiment - truth)
				n++
			}
		}
	}
	if n == 0 {
		t.Fatal("no truth-matched pairs")
	}
	mae := sumErr / float64(n)
	// Noise per sentence is σ≈0.2 plus bank quantization plus
	// two-concept averaging; MAE ≈ 0.3 is expected, 0.55 would mean
	// the text does not encode the sentiment.
	if mae > 0.55 {
		t.Fatalf("sentiment MAE vs truth = %v, too high", mae)
	}
}

func TestStarsConsistentWithRating(t *testing.T) {
	c := Generate(SmallDoctorConfig(3))
	for _, it := range c.Items {
		for _, r := range it.Reviews {
			if r.Stars < 1 || r.Stars > 5 {
				t.Fatalf("stars = %d", r.Stars)
			}
			if want := float64(r.Stars-3) / 2; r.Rating != want {
				t.Fatalf("rating %v inconsistent with stars %d", r.Rating, r.Stars)
			}
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	c := Generate(SmallCellPhoneConfig(13))
	var buf bytes.Buffer
	if err := WriteItemsJSONL(&buf, c.Items[:4]); err != nil {
		t.Fatal(err)
	}
	back, err := ReadItemsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 4 {
		t.Fatalf("read %d items, want 4", len(back))
	}
	for i := range back {
		if back[i].ID != c.Items[i].ID || len(back[i].Reviews) != len(c.Items[i].Reviews) {
			t.Fatalf("item %d mismatch", i)
		}
	}
}

func TestSaveLoadCorpus(t *testing.T) {
	dir := t.TempDir()
	c := Generate(SmallCellPhoneConfig(23))
	ontPath := filepath.Join(dir, "ont.json")
	itemsPath := filepath.Join(dir, "items.jsonl")
	if err := SaveCorpus(c, ontPath, itemsPath); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCorpus(ontPath, itemsPath)
	if err != nil {
		t.Fatal(err)
	}
	if back.Ont.Len() != c.Ont.Len() || len(back.Items) != len(c.Items) {
		t.Fatal("corpus round trip mismatch")
	}
	// Concept IDs must survive so saved truth maps stay valid.
	if back.Ont.Name(3) != c.Ont.Name(3) {
		t.Fatal("concept IDs not stable across save/load")
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(&Corpus{Ont: CellPhoneOntology()})
	if s.NumItems != 0 || s.NumReviews != 0 || s.MinReviewsPerItem != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
	if s.Table1Row("x") == "" {
		t.Fatal("Table1Row empty")
	}
}

func TestSurfaceFormsMatchable(t *testing.T) {
	// Every concept name and synonym in both ontologies must be
	// findable by the matcher when embedded in a sentence.
	for _, o := range []*ontology.Ontology{CellPhoneOntology(), MedicalOntology(MedicalOntologyConfig{Seed: 2})} {
		m := extract.NewMatcher(o)
		for id := ontology.ConceptID(0); int(id) < o.Len(); id++ {
			if id == o.Root() {
				continue
			}
			sentence := "the " + o.Name(id) + " is great"
			found := false
			for _, mt := range m.MatchTokens(text.Tokenize(sentence)) {
				if mt.Concept == id || o.IsAncestorOf(mt.Concept, id) || o.IsAncestorOf(id, mt.Concept) {
					found = true
				}
			}
			if !found {
				t.Fatalf("concept %q not matchable in its own sentence", o.Name(id))
			}
		}
	}
}

func TestAllocateCountsPinsExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	counts := allocateCounts(rng, 60, 33578, 102, 3200, 1.1)
	lo, hi, sum := counts[0], counts[0], 0
	for _, c := range counts {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
		sum += c
	}
	if lo != 102 || hi != 3200 {
		t.Fatalf("min/max = %d/%d, want pinned 102/3200", lo, hi)
	}
	if sum != 33578 {
		t.Fatalf("total = %d, want 33578", sum)
	}
}

func TestFullConfigsMatchTable1Bounds(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpora are slow in -short mode")
	}
	for _, tc := range []struct {
		cfg      CorpusConfig
		items    int
		reviews  int
		min, max int
	}{
		{DoctorConfig(1), 1000, 68686, 43, 354},
		{CellPhoneConfig(1), 60, 33578, 102, 3200},
	} {
		c := Generate(tc.cfg)
		s := ComputeStats(c)
		if s.NumItems != tc.items || s.NumReviews != tc.reviews {
			t.Fatalf("%+v: got %d items / %d reviews", tc.cfg.Domain, s.NumItems, s.NumReviews)
		}
		if s.MinReviewsPerItem != tc.min || s.MaxReviewsPerItem != tc.max {
			t.Fatalf("%+v: min/max = %d/%d, want %d/%d", tc.cfg.Domain,
				s.MinReviewsPerItem, s.MaxReviewsPerItem, tc.min, tc.max)
		}
	}
}

func TestRestaurantOntologyShape(t *testing.T) {
	o := RestaurantOntology()
	if o.Len() < 30 {
		t.Fatalf("restaurant ontology too small: %d", o.Len())
	}
	food, ok := o.Lookup("food")
	if !ok {
		t.Fatal("food missing")
	}
	taste, ok := o.Lookup("taste")
	if !ok || !o.IsAncestorOf(food, taste) {
		t.Fatal("taste should sit under food")
	}
}

func TestRestaurantCorpusExtractable(t *testing.T) {
	c := Generate(SmallRestaurantConfig(5))
	s := ComputeStats(c)
	if s.NumItems != 6 || s.NumReviews != 300 {
		t.Fatalf("stats = %+v", s)
	}
	p := extract.NewPipeline(extract.NewMatcher(c.Ont), sentiment.Lexicon{})
	pairs := 0
	for _, it := range c.Items[:2] {
		for _, r := range it.Reviews {
			rev := p.AnnotateReview(r.ID, r.Text, r.Rating)
			pairs += len(rev.Pairs())
		}
	}
	if pairs == 0 {
		t.Fatal("no pairs extracted from restaurant reviews")
	}
}
