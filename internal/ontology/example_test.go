package ontology_test

import (
	"fmt"

	"osars/internal/ontology"
)

// Example builds a small aspect hierarchy and queries it.
func Example() {
	var b ontology.Builder
	phone := b.AddConcept("phone")
	screen := b.Child(phone, "screen", "display")
	resolution := b.Child(screen, "screen resolution")
	b.Child(phone, "battery")
	ont, err := b.Build()
	if err != nil {
		panic(err)
	}

	fmt.Println(ont)
	fmt.Println("depth of resolution:", ont.Depth(resolution))
	fmt.Println("screen is ancestor of resolution:", ont.IsAncestorOf(screen, resolution))

	w := ontology.NewAncestorWalker(ont)
	w.Walk(resolution, func(a ontology.ConceptID, dist int) bool {
		fmt.Printf("  %s at %d\n", ont.Name(a), dist)
		return true
	})
	// Output:
	// Ontology(4 concepts, 3 edges, depth 2)
	// depth of resolution: 2
	// screen is ancestor of resolution: true
	//   screen resolution at 0
	//   screen at 1
	//   phone at 2
}
