// Package ontology implements the hierarchical concept ontology (a
// rooted DAG) that the summarization framework is built on (paper §2).
//
// Concepts are nodes; a directed edge points from a more general
// concept (parent) to a more specific one (child), as in the
// "part-whole" / "is-a" relations of SNOMED CT, WordNet or ConceptNet.
// A concept may have several parents (SNOMED CT is a DAG, not a tree),
// but the ontology has exactly one root from which every concept is
// reachable.
//
// The summarization algorithms need two graph primitives:
//
//   - Depth(c): the shortest-path length from the root to c, which is
//     the coverage distance d(r, c) of the root (Definition 1).
//   - ancestor iteration with shortest up-distances (§4.1 second pass),
//     provided in two forms: a flattened CSR ancestor closure computed
//     once at Build time (Ancestors, the hot path — the paper's own
//     scalability argument is that "the average number of ancestors per
//     concept is small", so the closure is cheap to store), and
//     AncestorWalker, the original per-walk BFS kept as the ablation
//     reference.
package ontology

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// ConceptID is a dense index identifying a concept within one Ontology.
// IDs are assigned in the order concepts are added to the Builder and
// are stable across Build, MarshalJSON and UnmarshalJSON.
type ConceptID int32

// None is the invalid concept ID.
const None ConceptID = -1

type node struct {
	name     string
	synonyms []string
	parents  []ConceptID
	children []ConceptID
	depth    int32 // shortest-path length from the root
}

// Ontology is an immutable rooted concept DAG. Construct one with a
// Builder or by unmarshaling JSON. All methods are safe for concurrent
// use.
type Ontology struct {
	nodes    []node
	byName   map[string]ConceptID
	root     ConceptID
	numEdges int
	maxDepth int32

	// Ancestor closure in CSR layout, precomputed at Build time. Row c
	// spans ancID/ancDist[ancIdx[c]:ancIdx[c+1]] and holds c itself
	// (up-distance 0) followed by every strict ancestor of c in BFS
	// order, each with its shortest up-distance. BFS order means
	// distances within a row are non-decreasing — the property the
	// coverage builder's first-hit-wins dedup relies on.
	ancIdx  []int32
	ancID   []ConceptID
	ancDist []int32
}

// Builder accumulates concepts and edges and validates them into an
// Ontology. The zero value is ready to use.
type Builder struct {
	nodes  []node
	byName map[string]ConceptID
}

// AddConcept registers a concept under a canonical name with optional
// synonyms and returns its ID. Adding a name twice returns the existing
// ID (synonyms of later calls are merged).
func (b *Builder) AddConcept(name string, synonyms ...string) ConceptID {
	if b.byName == nil {
		b.byName = make(map[string]ConceptID)
	}
	key := normalize(name)
	if id, ok := b.byName[key]; ok {
		b.nodes[id].synonyms = mergeSynonyms(b.nodes[id].synonyms, synonyms)
		return id
	}
	id := ConceptID(len(b.nodes))
	b.nodes = append(b.nodes, node{name: name, synonyms: mergeSynonyms(nil, synonyms)})
	b.byName[key] = id
	return id
}

// AddEdge records that parent is a direct generalization of child.
// Duplicate edges are ignored. Self-loops are rejected.
func (b *Builder) AddEdge(parent, child ConceptID) error {
	if parent == child {
		return fmt.Errorf("ontology: self-loop on concept %d (%s)", parent, b.nodes[parent].name)
	}
	if int(parent) >= len(b.nodes) || int(child) >= len(b.nodes) || parent < 0 || child < 0 {
		return fmt.Errorf("ontology: edge (%d -> %d) references unknown concept", parent, child)
	}
	for _, c := range b.nodes[parent].children {
		if c == child {
			return nil
		}
	}
	b.nodes[parent].children = append(b.nodes[parent].children, child)
	b.nodes[child].parents = append(b.nodes[child].parents, parent)
	return nil
}

// Child is a convenience that adds a concept (if new) and links it
// under parent in one call.
func (b *Builder) Child(parent ConceptID, name string, synonyms ...string) ConceptID {
	id := b.AddConcept(name, synonyms...)
	if err := b.AddEdge(parent, id); err != nil {
		// AddEdge only fails on self-loops or unknown IDs, which Child
		// cannot produce with a valid parent; surface misuse loudly.
		panic(err)
	}
	return id
}

// Build validates the accumulated graph and returns the immutable
// ontology. It fails if the graph is empty, has a cycle, has zero or
// multiple roots, or has concepts unreachable from the root.
func (b *Builder) Build() (*Ontology, error) {
	if len(b.nodes) == 0 {
		return nil, fmt.Errorf("ontology: no concepts")
	}
	root := None
	for id := range b.nodes {
		if len(b.nodes[id].parents) == 0 {
			if root != None {
				return nil, fmt.Errorf("ontology: multiple roots: %q and %q",
					b.nodes[root].name, b.nodes[id].name)
			}
			root = ConceptID(id)
		}
	}
	if root == None {
		return nil, fmt.Errorf("ontology: no root (every concept has a parent, so there is a cycle)")
	}
	o := &Ontology{
		nodes:  make([]node, len(b.nodes)),
		byName: make(map[string]ConceptID, len(b.byName)),
		root:   root,
	}
	copy(o.nodes, b.nodes)
	for k, v := range b.byName {
		o.byName[k] = v
	}
	if err := o.checkAcyclic(); err != nil {
		return nil, err
	}
	if err := o.computeDepths(); err != nil {
		return nil, err
	}
	for id := range o.nodes {
		o.numEdges += len(o.nodes[id].children)
		// Deterministic adjacency order regardless of insertion order.
		sortIDs(o.nodes[id].children)
		sortIDs(o.nodes[id].parents)
	}
	o.buildAncestorClosure()
	return o, nil
}

// buildAncestorClosure flattens every concept's ancestor set (self +
// strict ancestors, BFS order, shortest up-distances) into one CSR
// block. Must run after adjacency sorting so rows are deterministic.
func (o *Ontology) buildAncestorClosure() {
	w := NewAncestorWalker(o)
	o.ancIdx = make([]int32, len(o.nodes)+1)
	// Expect ≥2 entries per concept (self + root) on average; grow from
	// there instead of reallocating from zero.
	o.ancID = make([]ConceptID, 0, 2*len(o.nodes))
	o.ancDist = make([]int32, 0, 2*len(o.nodes))
	for id := range o.nodes {
		o.ancIdx[id] = int32(len(o.ancID))
		w.Walk(ConceptID(id), func(a ConceptID, d int) bool {
			o.ancID = append(o.ancID, a)
			o.ancDist = append(o.ancDist, int32(d))
			return true
		})
	}
	o.ancIdx[len(o.nodes)] = int32(len(o.ancID))
}

// Ancestors returns the precomputed closure row of c: c itself first
// (up-distance 0), then every strict ancestor of c in BFS order with
// its shortest up-distance, so distances are non-decreasing. The
// returned slices alias the ontology's internal storage and must not
// be modified. This is the allocation-free hot-path replacement for
// AncestorWalker.Walk.
func (o *Ontology) Ancestors(c ConceptID) (ids []ConceptID, dists []int32) {
	lo, hi := o.ancIdx[c], o.ancIdx[c+1]
	return o.ancID[lo:hi], o.ancDist[lo:hi]
}

// NumAncestors reports the number of strict ancestors of c.
func (o *Ontology) NumAncestors(c ConceptID) int {
	return int(o.ancIdx[c+1]-o.ancIdx[c]) - 1
}

// ClosureSize reports the total number of closure entries across all
// concepts (a memory diagnostic; near-linear in Len() when the average
// ancestor count is small, per §4.1).
func (o *Ontology) ClosureSize() int { return len(o.ancID) }

func sortIDs(ids []ConceptID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func (o *Ontology) checkAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, len(o.nodes))
	// Iterative DFS with an explicit stack; ontologies can be deep.
	type frame struct {
		id   ConceptID
		next int
	}
	var stack []frame
	for start := range o.nodes {
		if color[start] != white {
			continue
		}
		stack = append(stack[:0], frame{id: ConceptID(start)})
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			children := o.nodes[f.id].children
			if f.next < len(children) {
				c := children[f.next]
				f.next++
				switch color[c] {
				case white:
					color[c] = gray
					stack = append(stack, frame{id: c})
				case gray:
					return fmt.Errorf("ontology: cycle through %q", o.nodes[c].name)
				}
				continue
			}
			color[f.id] = black
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}

// computeDepths runs BFS from the root so depth = shortest-path length.
func (o *Ontology) computeDepths() error {
	for id := range o.nodes {
		o.nodes[id].depth = -1
	}
	queue := make([]ConceptID, 0, len(o.nodes))
	queue = append(queue, o.root)
	o.nodes[o.root].depth = 0
	for i := 0; i < len(queue); i++ {
		u := queue[i]
		for _, c := range o.nodes[u].children {
			if o.nodes[c].depth == -1 {
				o.nodes[c].depth = o.nodes[u].depth + 1
				queue = append(queue, c)
				if o.nodes[c].depth > o.maxDepth {
					o.maxDepth = o.nodes[c].depth
				}
			}
		}
	}
	for id := range o.nodes {
		if o.nodes[id].depth == -1 {
			return fmt.Errorf("ontology: concept %q unreachable from root %q",
				o.nodes[id].name, o.nodes[o.root].name)
		}
	}
	return nil
}

// Len reports the number of concepts.
func (o *Ontology) Len() int { return len(o.nodes) }

// NumEdges reports the number of parent→child edges.
func (o *Ontology) NumEdges() int { return o.numEdges }

// Root returns the unique root concept.
func (o *Ontology) Root() ConceptID { return o.root }

// MaxDepth returns Δ, the maximum shortest-path depth of any concept
// (used in the greedy approximation bound, Theorem 4).
func (o *Ontology) MaxDepth() int { return int(o.maxDepth) }

// Name returns the canonical name of c.
func (o *Ontology) Name(c ConceptID) string { return o.nodes[c].name }

// Synonyms returns the synonym list of c (never mutated by the caller).
func (o *Ontology) Synonyms(c ConceptID) []string { return o.nodes[c].synonyms }

// Lookup finds a concept by canonical name (case- and space-insensitive).
func (o *Ontology) Lookup(name string) (ConceptID, bool) {
	id, ok := o.byName[normalize(name)]
	return id, ok
}

// Parents returns the direct generalizations of c.
func (o *Ontology) Parents(c ConceptID) []ConceptID { return o.nodes[c].parents }

// Children returns the direct specializations of c.
func (o *Ontology) Children(c ConceptID) []ConceptID { return o.nodes[c].children }

// Depth returns the shortest-path length from the root to c. By
// Definition 1 this is the coverage distance d(r, c) of the root.
func (o *Ontology) Depth(c ConceptID) int { return int(o.nodes[c].depth) }

// IsAncestorOf reports whether a is a (strict or equal) ancestor of c,
// i.e. c is reachable from a following parent→child edges. A concept is
// considered an ancestor of itself with distance 0, matching the
// convention of Definition 1 where a pair can cover a pair with the
// same concept.
func (o *Ontology) IsAncestorOf(a, c ConceptID) bool {
	return o.UpDistance(c, a) >= 0
}

// UpDistance returns the shortest-path length from ancestor a down to
// c (equivalently, from c up to a), or -1 if a is not an ancestor of c.
func (o *Ontology) UpDistance(c, a ConceptID) int {
	// Scan the precomputed closure row: ancestor sets are small (§4.1),
	// so a linear probe beats any transient BFS and allocates nothing.
	ids, dists := o.Ancestors(c)
	for i, id := range ids {
		if id == a {
			return int(dists[i])
		}
	}
	return -1
}

// Descendants returns all concepts reachable from c (including c),
// in BFS order.
func (o *Ontology) Descendants(c ConceptID) []ConceptID {
	seen := make(map[ConceptID]bool, 16)
	queue := []ConceptID{c}
	seen[c] = true
	for i := 0; i < len(queue); i++ {
		for _, ch := range o.nodes[queue[i]].children {
			if !seen[ch] {
				seen[ch] = true
				queue = append(queue, ch)
			}
		}
	}
	return queue
}

// AvgAncestors returns the average number of strict ancestors per
// concept. The paper (§4.1) relies on this being small for the
// initialization phase to be near-linear in |P|.
func (o *Ontology) AvgAncestors() float64 {
	// Each closure row holds the concept itself plus its strict
	// ancestors, so the strict-ancestor total is ClosureSize − Len.
	return float64(len(o.ancID)-len(o.nodes)) / float64(len(o.nodes))
}

// AncestorWalker iterates the ancestors of a concept together with
// their shortest up-distances, reusing scratch buffers across walks.
// It implements the second pass of the initialization phase (§4.1):
// "for each pair p = (c, s), iterate over the ancestors of c in the
// DAG". The hot path now reads the precomputed closure via Ancestors;
// the walker is kept as the ablation reference (it is also what the
// closure itself is built from, so the two are equal by construction —
// the equivalence tests assert it anyway). A walker is NOT safe for
// concurrent use; create one per goroutine.
type AncestorWalker struct {
	o     *Ontology
	dist  []int32
	stamp []uint32
	cur   uint32
	queue []ConceptID
}

// NewAncestorWalker returns a walker over o.
func NewAncestorWalker(o *Ontology) *AncestorWalker {
	return &AncestorWalker{
		o:     o,
		dist:  make([]int32, len(o.nodes)),
		stamp: make([]uint32, len(o.nodes)),
	}
}

// Walk calls visit(ancestor, upDistance) for c itself (distance 0) and
// every strict ancestor of c in BFS order (so distances are
// non-decreasing and each is the shortest up-distance). Iteration stops
// early if visit returns false.
func (w *AncestorWalker) Walk(c ConceptID, visit func(anc ConceptID, dist int) bool) {
	w.cur++
	if w.cur == 0 { // stamp wrapped; reset
		for i := range w.stamp {
			w.stamp[i] = 0
		}
		w.cur = 1
	}
	w.queue = append(w.queue[:0], c)
	w.stamp[c] = w.cur
	w.dist[c] = 0
	for i := 0; i < len(w.queue); i++ {
		u := w.queue[i]
		if !visit(u, int(w.dist[u])) {
			return
		}
		for _, p := range w.o.nodes[u].parents {
			if w.stamp[p] != w.cur {
				w.stamp[p] = w.cur
				w.dist[p] = w.dist[u] + 1
				w.queue = append(w.queue, p)
			}
		}
	}
}

// jsonOntology is the serialization schema: nodes in ID order with
// parent links (children are derivable).
type jsonOntology struct {
	Concepts []jsonConcept `json:"concepts"`
}

type jsonConcept struct {
	Name     string   `json:"name"`
	Synonyms []string `json:"synonyms,omitempty"`
	Parents  []int32  `json:"parents,omitempty"`
}

// MarshalJSON encodes the ontology; IDs are preserved as positions.
func (o *Ontology) MarshalJSON() ([]byte, error) {
	enc := jsonOntology{Concepts: make([]jsonConcept, len(o.nodes))}
	for id, n := range o.nodes {
		jc := jsonConcept{Name: n.name, Synonyms: n.synonyms}
		for _, p := range n.parents {
			jc.Parents = append(jc.Parents, int32(p))
		}
		enc.Concepts[id] = jc
	}
	return json.Marshal(enc)
}

// UnmarshalJSON decodes and re-validates an ontology.
func (o *Ontology) UnmarshalJSON(data []byte) error {
	var dec jsonOntology
	if err := json.Unmarshal(data, &dec); err != nil {
		return err
	}
	var b Builder
	ids := make([]ConceptID, len(dec.Concepts))
	for i, jc := range dec.Concepts {
		ids[i] = b.AddConcept(jc.Name, jc.Synonyms...)
		if int(ids[i]) != i {
			return fmt.Errorf("ontology: duplicate concept name %q", jc.Name)
		}
	}
	for i, jc := range dec.Concepts {
		for _, p := range jc.Parents {
			if err := b.AddEdge(ConceptID(p), ids[i]); err != nil {
				return err
			}
		}
	}
	built, err := b.Build()
	if err != nil {
		return err
	}
	*o = *built
	return nil
}

// String returns a short description like "Ontology(3021 concepts,
// 3395 edges, depth 7)".
func (o *Ontology) String() string {
	return fmt.Sprintf("Ontology(%d concepts, %d edges, depth %d)", o.Len(), o.NumEdges(), o.MaxDepth())
}

func normalize(name string) string {
	return strings.Join(strings.Fields(strings.ToLower(name)), " ")
}

func mergeSynonyms(dst, add []string) []string {
	for _, s := range add {
		dup := false
		for _, have := range dst {
			if normalize(have) == normalize(s) {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, s)
		}
	}
	return dst
}
