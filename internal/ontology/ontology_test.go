package ontology

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildDiamond constructs:
//
//	  root
//	 /    \
//	a      b
//	 \    /
//	  ab        (two parents: a DAG, not a tree)
//	  |
//	  leaf
func buildDiamond(t *testing.T) (*Ontology, map[string]ConceptID) {
	t.Helper()
	var b Builder
	ids := map[string]ConceptID{}
	ids["root"] = b.AddConcept("root")
	ids["a"] = b.Child(ids["root"], "a")
	ids["b"] = b.Child(ids["root"], "b")
	ids["ab"] = b.Child(ids["a"], "ab")
	if err := b.AddEdge(ids["b"], ids["ab"]); err != nil {
		t.Fatal(err)
	}
	ids["leaf"] = b.Child(ids["ab"], "leaf")
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return o, ids
}

func TestBuildDiamond(t *testing.T) {
	o, ids := buildDiamond(t)
	if o.Root() != ids["root"] {
		t.Fatalf("Root = %d, want %d", o.Root(), ids["root"])
	}
	if o.Len() != 5 {
		t.Fatalf("Len = %d, want 5", o.Len())
	}
	if o.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5", o.NumEdges())
	}
	wantDepth := map[string]int{"root": 0, "a": 1, "b": 1, "ab": 2, "leaf": 3}
	for name, d := range wantDepth {
		if got := o.Depth(ids[name]); got != d {
			t.Errorf("Depth(%s) = %d, want %d", name, got, d)
		}
	}
	if o.MaxDepth() != 3 {
		t.Fatalf("MaxDepth = %d, want 3", o.MaxDepth())
	}
}

func TestAncestry(t *testing.T) {
	o, ids := buildDiamond(t)
	cases := []struct {
		anc, desc string
		dist      int
	}{
		{"root", "leaf", 3},
		{"root", "root", 0},
		{"a", "leaf", 2},
		{"b", "leaf", 2},
		{"ab", "leaf", 1},
		{"leaf", "leaf", 0},
		{"a", "b", -1},    // siblings
		{"leaf", "a", -1}, // wrong direction
	}
	for _, c := range cases {
		if got := o.UpDistance(ids[c.desc], ids[c.anc]); got != c.dist {
			t.Errorf("UpDistance(%s, %s) = %d, want %d", c.desc, c.anc, got, c.dist)
		}
		want := c.dist >= 0
		if got := o.IsAncestorOf(ids[c.anc], ids[c.desc]); got != want {
			t.Errorf("IsAncestorOf(%s, %s) = %v, want %v", c.anc, c.desc, got, want)
		}
	}
}

func TestAncestorWalkerShortestDistances(t *testing.T) {
	o, ids := buildDiamond(t)
	got := map[ConceptID]int{}
	w := NewAncestorWalker(o)
	w.Walk(ids["leaf"], func(a ConceptID, d int) bool {
		got[a] = d
		return true
	})
	want := map[ConceptID]int{
		ids["leaf"]: 0, ids["ab"]: 1, ids["a"]: 2, ids["b"]: 2, ids["root"]: 3,
	}
	if len(got) != len(want) {
		t.Fatalf("visited %d ancestors, want %d: %v", len(got), len(want), got)
	}
	for a, d := range want {
		if got[a] != d {
			t.Errorf("ancestor %s: dist %d, want %d", o.Name(a), got[a], d)
		}
	}
}

func TestAncestorWalkerEarlyStop(t *testing.T) {
	o, ids := buildDiamond(t)
	n := 0
	w := NewAncestorWalker(o)
	w.Walk(ids["leaf"], func(ConceptID, int) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("visited %d, want early stop at 2", n)
	}
}

func TestAncestorWalkerReuse(t *testing.T) {
	o, ids := buildDiamond(t)
	w := NewAncestorWalker(o)
	for i := 0; i < 10; i++ {
		count := 0
		w.Walk(ids["leaf"], func(ConceptID, int) bool { count++; return true })
		if count != 5 {
			t.Fatalf("walk %d visited %d, want 5", i, count)
		}
		count = 0
		w.Walk(ids["a"], func(ConceptID, int) bool { count++; return true })
		if count != 2 {
			t.Fatalf("walk %d from a visited %d, want 2", i, count)
		}
	}
}

func TestCycleRejected(t *testing.T) {
	var b Builder
	r := b.AddConcept("r")
	x := b.Child(r, "x")
	y := b.Child(x, "y")
	if err := b.AddEdge(y, x); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a cyclic graph")
	}
}

func TestMultipleRootsRejected(t *testing.T) {
	var b Builder
	b.AddConcept("r1")
	b.AddConcept("r2")
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted two roots")
	}
}

func TestEmptyRejected(t *testing.T) {
	var b Builder
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted empty graph")
	}
}

func TestNoRootRejected(t *testing.T) {
	var b Builder
	x := b.AddConcept("x")
	y := b.AddConcept("y")
	if err := b.AddEdge(x, y); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(y, x); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted rootless 2-cycle")
	}
}

func TestSelfLoopRejected(t *testing.T) {
	var b Builder
	x := b.AddConcept("x")
	if err := b.AddEdge(x, x); err == nil {
		t.Fatal("AddEdge accepted a self-loop")
	}
}

func TestDuplicateConceptMergesSynonyms(t *testing.T) {
	var b Builder
	a := b.AddConcept("Screen", "display")
	a2 := b.AddConcept("screen", "monitor", "display")
	if a != a2 {
		t.Fatalf("duplicate name produced distinct IDs %d, %d", a, a2)
	}
	b2 := b.AddConcept("root")
	if err := b.AddEdge(b2, a); err != nil {
		t.Fatal(err)
	}
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	syn := o.Synonyms(a)
	if len(syn) != 2 {
		t.Fatalf("synonyms = %v, want [display monitor]", syn)
	}
}

func TestLookup(t *testing.T) {
	o, ids := buildDiamond(t)
	if id, ok := o.Lookup("  AB "); !ok || id != ids["ab"] {
		t.Fatalf("Lookup(AB) = %d,%v", id, ok)
	}
	if _, ok := o.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) succeeded")
	}
}

func TestDescendants(t *testing.T) {
	o, ids := buildDiamond(t)
	d := o.Descendants(ids["a"])
	want := map[ConceptID]bool{ids["a"]: true, ids["ab"]: true, ids["leaf"]: true}
	if len(d) != len(want) {
		t.Fatalf("Descendants(a) = %v, want 3 nodes", d)
	}
	for _, id := range d {
		if !want[id] {
			t.Errorf("unexpected descendant %s", o.Name(id))
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	o, ids := buildDiamond(t)
	data, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	var back Ontology
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != o.Len() || back.NumEdges() != o.NumEdges() || back.MaxDepth() != o.MaxDepth() {
		t.Fatalf("round trip mismatch: %v vs %v", &back, o)
	}
	for name, id := range ids {
		got, ok := back.Lookup(name)
		if !ok || got != id {
			t.Errorf("Lookup(%s) after round trip = %d,%v want %d", name, got, ok, id)
		}
		if back.Depth(got) != o.Depth(id) {
			t.Errorf("Depth(%s) after round trip = %d, want %d", name, back.Depth(got), o.Depth(id))
		}
	}
}

func TestAvgAncestors(t *testing.T) {
	o, _ := buildDiamond(t)
	// strict ancestors: root 0, a 1, b 1, ab 3, leaf 4 → avg 9/5
	if got, want := o.AvgAncestors(), 9.0/5.0; got != want {
		t.Fatalf("AvgAncestors = %v, want %v", got, want)
	}
}

// randomDAG builds a random rooted DAG where node i>0 picks parents
// among nodes < i, guaranteeing acyclicity and a single root.
func randomDAG(rng *rand.Rand, n int) (*Ontology, error) {
	var b Builder
	ids := make([]ConceptID, n)
	for i := 0; i < n; i++ {
		ids[i] = b.AddConcept(string(rune('A'+i%26)) + "-" + string(rune('0'+i/26%10)) + "-" + itoa(i))
	}
	for i := 1; i < n; i++ {
		nParents := 1 + rng.Intn(2)
		for j := 0; j < nParents; j++ {
			if err := b.AddEdge(ids[rng.Intn(i)], ids[i]); err != nil {
				return nil, err
			}
		}
	}
	return b.Build()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}

// TestQuickWalkerMatchesUpDistance checks on random DAGs that the
// walker's BFS distances agree with the independent UpDistance query.
func TestQuickWalkerMatchesUpDistance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		o, err := randomDAG(rng, n)
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		w := NewAncestorWalker(o)
		for c := ConceptID(0); int(c) < o.Len(); c++ {
			seen := map[ConceptID]int{}
			w.Walk(c, func(a ConceptID, d int) bool { seen[a] = d; return true })
			for a, d := range seen {
				if got := o.UpDistance(c, a); got != d {
					t.Logf("UpDistance(%d,%d) = %d, walker %d", c, a, got, d)
					return false
				}
			}
			// Depth must equal the walker's distance to the root.
			if seen[o.Root()] != o.Depth(c) {
				t.Logf("depth mismatch for %d", c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDepthsMonotone checks that every child is exactly one deeper
// than its shallowest parent (BFS depth property).
func TestQuickDepthsMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o, err := randomDAG(rng, 2+rng.Intn(60))
		if err != nil {
			return false
		}
		for c := ConceptID(0); int(c) < o.Len(); c++ {
			if c == o.Root() {
				continue
			}
			min := 1 << 30
			for _, p := range o.Parents(c) {
				if o.Depth(p) < min {
					min = o.Depth(p)
				}
			}
			if o.Depth(c) != min+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDeepChainStress guards against recursion/perf pathologies on a
// 5000-deep chain ontology: build, walk and query must all work.
func TestDeepChainStress(t *testing.T) {
	var b Builder
	prev := b.AddConcept("c0")
	root := prev
	const depth = 5000
	for i := 1; i <= depth; i++ {
		prev = b.Child(prev, "c"+itoa(i))
	}
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if o.MaxDepth() != depth {
		t.Fatalf("MaxDepth = %d, want %d", o.MaxDepth(), depth)
	}
	leaf := prev
	if o.Depth(leaf) != depth {
		t.Fatalf("Depth(leaf) = %d", o.Depth(leaf))
	}
	if got := o.UpDistance(leaf, root); got != depth {
		t.Fatalf("UpDistance = %d", got)
	}
	w := NewAncestorWalker(o)
	count := 0
	w.Walk(leaf, func(ConceptID, int) bool { count++; return true })
	if count != depth+1 {
		t.Fatalf("walk visited %d, want %d", count, depth+1)
	}
	if len(o.Descendants(root)) != depth+1 {
		t.Fatal("Descendants wrong on chain")
	}
}
