package ontology

import (
	"math/rand"
	"testing"
)

// walkPairs collects an AncestorWalker walk as (id, dist) pairs.
func walkPairs(o *Ontology, c ConceptID) (ids []ConceptID, dists []int32) {
	w := NewAncestorWalker(o)
	w.Walk(c, func(anc ConceptID, dist int) bool {
		ids = append(ids, anc)
		dists = append(dists, int32(dist))
		return true
	})
	return ids, dists
}

// requireClosureMatchesWalker asserts that the precomputed closure row
// of every concept equals a fresh AncestorWalker BFS: same ancestors,
// same order, same shortest up-distances.
func requireClosureMatchesWalker(t *testing.T, o *Ontology) {
	t.Helper()
	total := 0
	for c := ConceptID(0); int(c) < o.Len(); c++ {
		wantIDs, wantDists := walkPairs(o, c)
		gotIDs, gotDists := o.Ancestors(c)
		if len(gotIDs) != len(wantIDs) || len(gotDists) != len(wantDists) {
			t.Fatalf("concept %d (%s): closure row has %d entries, walker %d",
				c, o.Name(c), len(gotIDs), len(wantIDs))
		}
		for i := range wantIDs {
			if gotIDs[i] != wantIDs[i] || gotDists[i] != wantDists[i] {
				t.Fatalf("concept %d (%s), entry %d: closure (%d,%d) != walker (%d,%d)",
					c, o.Name(c), i, gotIDs[i], gotDists[i], wantIDs[i], wantDists[i])
			}
		}
		// NumAncestors counts strict ancestors: the row minus self.
		if n := o.NumAncestors(c); n != len(wantIDs)-1 {
			t.Fatalf("NumAncestors(%d) = %d, want %d", c, n, len(wantIDs)-1)
		}
		if gotIDs[0] != c || gotDists[0] != 0 {
			t.Fatalf("concept %d: closure row must start with (self, 0), got (%d,%d)",
				c, gotIDs[0], gotDists[0])
		}
		for i := 1; i < len(gotDists); i++ {
			if gotDists[i] < gotDists[i-1] {
				t.Fatalf("concept %d: closure distances not non-decreasing: %v", c, gotDists)
			}
		}
		total += len(gotIDs)
	}
	if total != o.ClosureSize() {
		t.Fatalf("ClosureSize = %d, want %d", o.ClosureSize(), total)
	}
}

func TestClosureMatchesWalkerDiamond(t *testing.T) {
	o, _ := buildDiamond(t)
	requireClosureMatchesWalker(t, o)
}

// TestClosureMatchesWalkerRandomDAG fuzzes random layered DAGs where
// every non-root node draws 1–3 parents from earlier layers, so
// multi-parent shortest-path dedup is hit constantly.
func TestClosureMatchesWalkerRandomDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		var b Builder
		n := 2 + rng.Intn(40)
		ids := make([]ConceptID, n)
		ids[0] = b.AddConcept("c0")
		for i := 1; i < n; i++ {
			// First parent keeps the DAG rooted and acyclic (edges only
			// from lower-numbered nodes).
			p := rng.Intn(i)
			ids[i] = b.Child(ids[p], nodeName(i))
			for extra := rng.Intn(3); extra > 0; extra-- {
				q := rng.Intn(i)
				if q != p {
					if err := b.AddEdge(ids[q], ids[i]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		o, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		requireClosureMatchesWalker(t, o)
	}
}

func nodeName(i int) string {
	return "c" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// TestUpDistanceMatchesWalker cross-checks the closure-backed
// UpDistance against walker-derived distances on the diamond.
func TestUpDistanceMatchesWalker(t *testing.T) {
	o, ids := buildDiamond(t)
	for _, c := range ids {
		seen := map[ConceptID]int{}
		w := NewAncestorWalker(o)
		w.Walk(c, func(anc ConceptID, dist int) bool {
			seen[anc] = dist
			return true
		})
		for _, a := range ids {
			want, ok := seen[a]
			if !ok {
				want = -1
			}
			if got := o.UpDistance(c, a); got != want {
				t.Fatalf("UpDistance(%s, %s) = %d, want %d", o.Name(c), o.Name(a), got, want)
			}
		}
	}
}
