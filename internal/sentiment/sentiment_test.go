package sentiment

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"osars/internal/text"
)

func TestLexiconBasicPolarity(t *testing.T) {
	var l Lexicon
	cases := []struct {
		sentence string
		sign     float64 // expected sign, 0 = neutral
	}{
		{"The screen is excellent", +1},
		{"The battery is terrible", -1},
		{"I visited on Tuesday", 0},
		{"Great doctor, great staff", +1},
		{"The screen cracked and the speaker died", -1},
	}
	for _, c := range cases {
		got := l.Score(c.sentence)
		switch {
		case c.sign > 0 && got <= 0:
			t.Errorf("Score(%q) = %v, want positive", c.sentence, got)
		case c.sign < 0 && got >= 0:
			t.Errorf("Score(%q) = %v, want negative", c.sentence, got)
		case c.sign == 0 && got != 0:
			t.Errorf("Score(%q) = %v, want 0", c.sentence, got)
		}
	}
}

func TestLexiconGradedStrength(t *testing.T) {
	var l Lexicon
	weak := l.Score("The screen is decent")
	strong := l.Score("The screen is excellent")
	if !(strong > weak && weak > 0) {
		t.Fatalf("graded strengths wrong: excellent=%v decent=%v", strong, weak)
	}
	mild := l.Score("The battery is mediocre")
	severe := l.Score("The battery is atrocious")
	if !(severe < mild && mild < 0) {
		t.Fatalf("graded negatives wrong: atrocious=%v mediocre=%v", severe, mild)
	}
}

func TestLexiconIntensifier(t *testing.T) {
	var l Lexicon
	plain := l.Score("The phone is good")
	boosted := l.Score("The phone is very good")
	damped := l.Score("The phone is somewhat good")
	if !(boosted > plain && plain > damped && damped > 0) {
		t.Fatalf("intensifiers wrong: very=%v plain=%v somewhat=%v", boosted, plain, damped)
	}
}

func TestLexiconNegation(t *testing.T) {
	var l Lexicon
	pos := l.Score("The camera is good")
	neg := l.Score("The camera is not good")
	if pos <= 0 || neg >= 0 {
		t.Fatalf("negation flip failed: good=%v not-good=%v", pos, neg)
	}
	// Shifted negation: "not good" is weaker than "awful".
	if math.Abs(neg) >= math.Abs(l.Score("The camera is awful")) {
		t.Fatalf("negated positive should be weaker than strong negative")
	}
	// Negation across the window boundary does not flip.
	far := l.Score("not the one with the slightest chance of a good outcome")
	_ = far // just must not panic; window semantics checked above
}

func TestLexiconNegatedNegative(t *testing.T) {
	var l Lexicon
	// "not bad" must be (mildly) positive.
	if got := l.Score("It is not bad"); got <= 0 {
		t.Fatalf("Score(not bad) = %v, want positive", got)
	}
}

func TestLexiconClampAndBounds(t *testing.T) {
	var l Lexicon
	got := l.Score("extremely awesome absolutely perfect incredibly amazing")
	if got > 1 || got < -1 {
		t.Fatalf("score out of bounds: %v", got)
	}
	if got < 0.9 {
		t.Fatalf("gushing review scored only %v", got)
	}
}

func TestQuickLexiconBounds(t *testing.T) {
	words := []string{"great", "terrible", "not", "very", "screen",
		"battery", "the", "is", "good", "bad", "somewhat", "excellent"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12)
		toks := make([]string, n)
		for i := range toks {
			toks[i] = words[rng.Intn(len(words))]
		}
		s := Lexicon{}.EstimateSentence(toks)
		return s >= -1 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHasOpinionWordAndPolarity(t *testing.T) {
	if !HasOpinionWord([]string{"the", "great", "phone"}) {
		t.Fatal("HasOpinionWord missed 'great'")
	}
	if HasOpinionWord([]string{"the", "phone"}) {
		t.Fatal("HasOpinionWord false positive")
	}
	if v, ok := Polarity("excellent"); !ok || v != 1.0 {
		t.Fatalf("Polarity(excellent) = %v,%v", v, ok)
	}
	if _, ok := Polarity("phone"); ok {
		t.Fatal("Polarity(phone) should miss")
	}
	seeds := SeedOpinionWords()
	if len(seeds) < 100 {
		t.Fatalf("seed lexicon too small: %d", len(seeds))
	}
	seeds["great"] = -5 // must be a copy
	if v, _ := Polarity("great"); v == -5 {
		t.Fatal("SeedOpinionWords leaked internal map")
	}
}

func trainSet() []Example {
	positives := []string{
		"this phone is excellent and the screen is amazing",
		"great battery life and wonderful display",
		"the doctor was caring and thorough",
		"fantastic camera, love the pictures",
		"best purchase ever, highly recommend",
		"superb build quality and fast performance",
		"staff was friendly and helpful",
		"very happy with the treatment",
	}
	negatives := []string{
		"this phone is terrible and the screen is awful",
		"horrible battery life and poor display",
		"the doctor was rude and dismissive",
		"worst purchase ever, avoid it",
		"the camera is blurry and the speaker crackles",
		"cheap flimsy build and slow performance",
		"staff was unhelpful and the wait was long",
		"very disappointed with the treatment",
	}
	var ex []Example
	for _, s := range positives {
		ex = append(ex, Example{Tokens: text.Tokenize(s), Target: 1})
	}
	for _, s := range negatives {
		ex = append(ex, Example{Tokens: text.Tokenize(s), Target: -1})
	}
	return ex
}

func TestRidgeLearnsPolarity(t *testing.T) {
	r, err := TrainRidge(trainSet(), RidgeOptions{Stem: true})
	if err != nil {
		t.Fatal(err)
	}
	pos := r.EstimateSentence(text.Tokenize("excellent screen and great battery"))
	neg := r.EstimateSentence(text.Tokenize("terrible screen and awful battery"))
	if pos <= 0 {
		t.Fatalf("positive test sentence scored %v", pos)
	}
	if neg >= 0 {
		t.Fatalf("negative test sentence scored %v", neg)
	}
	if pos <= neg {
		t.Fatalf("ordering wrong: pos %v ≤ neg %v", pos, neg)
	}
}

func TestRidgeGeneralizesViaStemming(t *testing.T) {
	r, err := TrainRidge(trainSet(), RidgeOptions{Stem: true})
	if err != nil {
		t.Fatal(err)
	}
	// "recommending" never appears, but "recommend" does; stemming
	// should map them together.
	got := r.EstimateSentence(text.Tokenize("highly recommending this"))
	if got <= 0 {
		t.Fatalf("stemmed generalization failed: %v", got)
	}
}

func TestRidgeBoundsAndEmpty(t *testing.T) {
	r, err := TrainRidge(trainSet(), RidgeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.EstimateSentence(nil); got < -1 || got > 1 {
		t.Fatalf("empty sentence out of bounds: %v", got)
	}
	for _, s := range []string{"screen", "awful awful awful awful", "zzz unknown tokens"} {
		if got := r.EstimateSentence(text.Tokenize(s)); got < -1 || got > 1 {
			t.Fatalf("out of bounds for %q: %v", s, got)
		}
	}
}

func TestRidgeRejectsEmptyTraining(t *testing.T) {
	if _, err := TrainRidge(nil, RidgeOptions{}); err == nil {
		t.Fatal("expected error for empty training set")
	}
}

func TestRidgeBiasIsMeanForConstantTargets(t *testing.T) {
	ex := []Example{
		{Tokens: []string{"alpha"}, Target: 0.5},
		{Tokens: []string{"beta"}, Target: 0.5},
	}
	r, err := TrainRidge(ex, RidgeOptions{Lambda: 100}) // heavy shrinkage → ~bias only
	if err != nil {
		t.Fatal(err)
	}
	got := r.EstimateSentence([]string{"gamma-unseen"})
	if math.Abs(got-0.5) > 0.05 {
		t.Fatalf("unseen-token prediction %v, want ≈ bias 0.5", got)
	}
}

func TestEstimatorInterface(t *testing.T) {
	var _ Estimator = Lexicon{}
	r, err := TrainRidge(trainSet(), RidgeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var _ Estimator = r
}
