package sentiment

import (
	"fmt"
	"hash/fnv"
	"math"

	"osars/internal/linalg"
	"osars/internal/text"
)

// Ridge is the supervised estimator: a hashed bag-of-words ridge
// regression trained on (sentence, rating) examples, substituting for
// the paper's doc2vec-embedding + regression pipeline (§5.1). Feature
// hashing keeps the model fixed-size and vocabulary-free, mirroring
// how doc2vec gives a fixed-size representation.
type Ridge struct {
	weights []float64
	dim     int
	bias    float64
	stem    bool
}

var _ Estimator = (*Ridge)(nil)

// RidgeOptions configure training.
type RidgeOptions struct {
	// Dim is the hashed feature dimension (default 1<<13).
	Dim int
	// Lambda is the L2 regularization strength (default 1.0).
	Lambda float64
	// Stem applies Porter stemming to tokens before hashing
	// (default true via NewRidge).
	Stem bool
	// MaxIter bounds conjugate-gradient iterations (default 200).
	MaxIter int
}

// Example is one training sentence with its target sentiment in
// [-1, +1] (typically the normalized star rating of the containing
// review, the weak supervision the paper's regression uses).
type Example struct {
	Tokens []string
	Target float64
}

// TrainRidge fits the regression by solving the normal equations
// (XᵀX + λI)w = Xᵀy with conjugate gradient; X is never materialized.
func TrainRidge(examples []Example, opt RidgeOptions) (*Ridge, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("sentiment: no training examples")
	}
	if opt.Dim <= 0 {
		opt.Dim = 1 << 13
	}
	if opt.Lambda <= 0 {
		opt.Lambda = 1.0
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 200
	}
	r := &Ridge{dim: opt.Dim, stem: opt.Stem}

	// Bias = mean target; the regression fits residuals.
	mean := 0.0
	for _, ex := range examples {
		mean += ex.Target
	}
	mean /= float64(len(examples))
	r.bias = mean

	// Pre-hash every document once.
	docs := make([]text.SparseVec, len(examples))
	for i, ex := range examples {
		docs[i] = r.features(ex.Tokens)
	}

	// rhs = Xᵀ(y − mean)
	rhs := make([]float64, opt.Dim)
	for i, ex := range examples {
		resid := ex.Target - mean
		for j, idx := range docs[i].Idx {
			rhs[idx] += docs[i].Val[j] * resid
		}
	}

	// apply(v) = XᵀX·v + λ·v
	tmp := make([]float64, len(examples))
	apply := func(v, dst []float64) {
		for i := range tmp {
			s := 0.0
			for j, idx := range docs[i].Idx {
				s += docs[i].Val[j] * v[idx]
			}
			tmp[i] = s
		}
		for d := range dst {
			dst[d] = opt.Lambda * v[d]
		}
		for i := range tmp {
			if tmp[i] == 0 {
				continue
			}
			for j, idx := range docs[i].Idx {
				dst[idx] += docs[i].Val[j] * tmp[i]
			}
		}
	}
	r.weights = linalg.CG(apply, rhs, 1e-8, opt.MaxIter)
	return r, nil
}

// features hashes tokens (stemmed if configured, stopwords dropped)
// into a normalized sparse vector. A signed second hash reduces
// collision bias, the standard "hashing trick" construction.
func (r *Ridge) features(tokens []string) text.SparseVec {
	counts := map[int32]float64{}
	prev := ""
	for _, tok := range tokens {
		if text.IsStopword(tok) && !negators[tok] {
			prev = ""
			continue
		}
		t := tok
		if r.stem {
			t = text.Stem(tok)
		}
		idx, sign := r.hash(t)
		counts[idx] += sign
		// Bigram with the previous kept token captures "not good".
		if prev != "" {
			bidx, bsign := r.hash(prev + "_" + t)
			counts[bidx] += bsign
		}
		prev = t
	}
	vec := text.SparseVec{}
	norm := 0.0
	for _, v := range counts {
		norm += v * v
	}
	if norm == 0 {
		return vec
	}
	norm = math.Sqrt(norm)
	// Deterministic order.
	idxs := make([]int32, 0, len(counts))
	for idx := range counts {
		idxs = append(idxs, idx)
	}
	sortInt32(idxs)
	for _, idx := range idxs {
		vec.Idx = append(vec.Idx, idx)
		vec.Val = append(vec.Val, counts[idx]/norm)
	}
	return vec
}

func (r *Ridge) hash(s string) (int32, float64) {
	h := fnv.New64a()
	h.Write([]byte(s))
	v := h.Sum64()
	idx := int32(v % uint64(r.dim))
	sign := 1.0
	if (v>>63)&1 == 1 {
		sign = -1
	}
	return idx, sign
}

// EstimateSentence predicts the sentiment of a tokenized sentence,
// clamped to [-1, +1].
func (r *Ridge) EstimateSentence(tokens []string) float64 {
	vec := r.features(tokens)
	s := r.bias
	for j, idx := range vec.Idx {
		s += vec.Val[j] * r.weights[idx]
	}
	return clamp(s)
}

func sortInt32(a []int32) {
	// Insertion sort: feature sets per sentence are tiny.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
