// Package sentiment estimates the sentiment of a review sentence on
// the continuous scale [-1, +1] the framework requires (§2, §5.1).
//
// The paper computes sentence sentiment with doc2vec embeddings fed to
// a trained regression; it also notes (§6) that "any of these methods
// can be plugged into our framework". This package provides two
// interchangeable estimators behind the Estimator interface:
//
//   - Lexicon: an unsupervised opinion-lexicon scorer with negation
//     and intensifier handling (the Taboada et al. 2011 family);
//   - Ridge: a supervised hashed bag-of-words ridge regression trained
//     on review star ratings (the doc2vec-regression substitute).
package sentiment

import (
	"osars/internal/pos"
	"osars/internal/text"
)

// Estimator maps a tokenized sentence to a sentiment in [-1, +1].
type Estimator interface {
	EstimateSentence(tokens []string) float64
}

// opinionLexicon maps opinion words to prior polarities in [-1, +1].
// Strengths follow the usual graded-lexicon convention: ±1.0 extreme,
// ±0.75 strong, ±0.5 moderate, ±0.25 mild.
var opinionLexicon = map[string]float64{
	// strong positive
	"excellent": 1.0, "amazing": 1.0, "outstanding": 1.0, "superb": 1.0,
	"perfect": 1.0, "fantastic": 1.0, "wonderful": 1.0, "awesome": 1.0,
	"phenomenal": 1.0, "exceptional": 1.0, "brilliant": 1.0,
	"stunning": 1.0, "flawless": 1.0, "best": 1.0, "incredible": 1.0,
	"love": 0.9, "loved": 0.9, "loves": 0.9, "adore": 0.9,
	"great": 0.75, "impressive": 0.75, "beautiful": 0.75,
	"delightful": 0.75, "terrific": 0.75, "marvelous": 0.75,
	"superior": 0.75, "remarkable": 0.75, "gorgeous": 0.75,
	"caring": 0.75, "compassionate": 0.75, "thorough": 0.7,
	"knowledgeable": 0.75, "attentive": 0.7, "friendly": 0.7,
	"courteous": 0.7, "professional": 0.7, "recommend": 0.7,
	"recommended": 0.7, "happy": 0.7, "pleased": 0.7, "vivid": 0.7,
	"crisp": 0.7, "sleek": 0.6, "snappy": 0.6, "responsive": 0.6,
	"smooth": 0.6, "sharp": 0.6, "bright": 0.5, "comfortable": 0.6,
	"helpful": 0.6, "patient": 0.6, "gentle": 0.6, "kind": 0.6,
	"good": 0.5, "nice": 0.5, "solid": 0.5, "reliable": 0.6,
	"durable": 0.6, "sturdy": 0.6, "fast": 0.5, "quick": 0.5,
	"clean": 0.5, "clear": 0.5, "affordable": 0.5, "worth": 0.5,
	"pleasant": 0.5, "satisfied": 0.5, "fine": 0.25, "decent": 0.25,
	"okay": 0.25, "ok": 0.25, "adequate": 0.25, "acceptable": 0.25,
	"fair": 0.25, "works": 0.3, "worked": 0.3, "liked": 0.4,
	"like": 0.3, "likes": 0.3, "easy": 0.5, "smart": 0.5,
	"convenient": 0.5, "useful": 0.5, "handy": 0.4, "enjoy": 0.6,
	"enjoyed": 0.6, "glad": 0.5, "thank": 0.5, "thanks": 0.5,
	"grateful": 0.7, "accurate": 0.5, "efficient": 0.6,
	"punctual": 0.6, "prompt": 0.6, "listens": 0.6, "listened": 0.6,
	"spotless": 0.8, "immaculate": 0.8, "top-notch": 0.9,
	"first-rate": 0.9, "stellar": 0.9, "magnificent": 0.9,
	"splendid": 0.8, "refreshing": 0.6, "charming": 0.6,
	"cozy": 0.5, "inviting": 0.5, "generous": 0.6, "tasty": 0.6,
	"delicious": 0.8, "scrumptious": 0.9, "flavorful": 0.7,
	"attentively": 0.6, "seamless": 0.7, "intuitive": 0.6,
	"robust": 0.6, "premium": 0.5, "polished": 0.6, "silky": 0.6,
	"elegant":  0.6,
	"painless": 0.5, "hassle-free": 0.6, "worthwhile": 0.5,
	"dependable": 0.6, "trustworthy": 0.7, "honest": 0.6,
	"skilled": 0.6, "skillful": 0.6, "experienced": 0.5,
	"respectful": 0.6, "reassuring": 0.6, "empathetic": 0.7,
	"painstaking": 0.5, "meticulous": 0.7, "diligent": 0.6,

	// strong negative
	"terrible": -1.0, "horrible": -1.0, "awful": -1.0, "worst": -1.0,
	"atrocious": -1.0, "abysmal": -1.0, "dreadful": -1.0,
	"unacceptable": -1.0, "garbage": -1.0, "useless": -0.9,
	"hate": -0.9, "hated": -0.9, "disgusting": -0.9, "nightmare": -0.9,
	"incompetent": -0.9, "negligent": -0.9, "malpractice": -1.0,
	"scam": -0.9, "fraud": -0.9, "dangerous": -0.8,
	"bad": -0.75, "poor": -0.75, "disappointing": -0.75,
	"disappointed": -0.75, "defective": -0.8, "broken": -0.75,
	"rude": -0.8, "arrogant": -0.75, "dismissive": -0.75,
	"unprofessional": -0.8, "careless": -0.7, "painful": -0.7,
	"misdiagnosed": -0.9, "overpriced": -0.6, "expensive": -0.4,
	"laggy": -0.6, "glitchy": -0.7, "buggy": -0.7, "slow": -0.5,
	"flimsy": -0.6, "cheap": -0.4, "unreliable": -0.7, "crappy": -0.8,
	"mediocre": -0.5, "faulty": -0.7, "cracked": -0.6,
	"scratched": -0.5, "annoying": -0.6, "frustrating": -0.7,
	"frustrated": -0.6, "upset": -0.6, "angry": -0.7, "avoid": -0.7,
	"problem": -0.4, "problems": -0.4, "issue": -0.3, "issues": -0.3,
	"dull": -0.4, "dim": -0.4, "blurry": -0.5, "grainy": -0.5,
	"noisy": -0.4, "heavy": -0.25, "bulky": -0.3, "weak": -0.5,
	"dirty": -0.5, "late": -0.4, "wrong": -0.5, "worse": -0.6,
	"difficult": -0.4, "hard": -0.25, "waste": -0.7, "wasted": -0.7,
	"returned": -0.4, "refund": -0.5, "complaint": -0.5,
	"complained": -0.5, "died": -0.6, "dies": -0.6, "dying": -0.5,
	"drains": -0.5, "drained": -0.5, "overheats": -0.6,
	"overheating": -0.6, "freezes": -0.6, "froze": -0.6,
	"crashes": -0.7, "crashed": -0.7, "stopped": -0.4, "failed": -0.7,
	"fails": -0.6, "failure": -0.7, "error": -0.4, "errors": -0.4,
	"uncomfortable": -0.5, "unhappy": -0.6, "mad": -0.6,
	"impossible": -0.6, "never-again": -0.8, "regret": -0.7,
	"lousy": -0.7, "pathetic": -0.8, "insulting": -0.7,
	"condescending": -0.7, "unhelpful": -0.6, "ignored": -0.6,
	"rushed": -0.5, "unresponsive": -0.6,
	"filthy": -0.8, "greasy": -0.5, "stale": -0.6, "bland": -0.5,
	"soggy": -0.5, "undercooked": -0.7, "overcooked": -0.6,
	"burnt": -0.6, "inedible": -0.9, "tasteless": -0.6,
	"cramped": -0.5, "shabby": -0.5, "rundown": -0.6,
	"sketchy": -0.6, "chaotic": -0.6, "disorganized": -0.6,
	"understaffed": -0.5, "overbooked": -0.5, "overcrowded": -0.5,
	"clunky": -0.5, "convoluted": -0.5, "confusing": -0.5,
	"misleading": -0.7, "deceptive": -0.8, "dishonest": -0.8,
	"shoddy": -0.7, "subpar": -0.6, "lackluster": -0.5,
	"forgettable": -0.4, "underwhelming": -0.5, "overrated": -0.5,
	"smelly": -0.6, "leaky": -0.6, "wobbly": -0.5,
	"unstable": -0.6, "fragile": -0.5, "brittle": -0.5,
	"outdated": -0.4, "obsolete": -0.5, "sluggish": -0.5,
	"unbearable": -0.8, "infuriating": -0.8, "appalling": -0.9,
	"disgraceful": -0.8, "shameful": -0.7, "inexcusable": -0.8,
}

// intensifiers scale the following opinion word.
var intensifiers = map[string]float64{
	"very": 1.3, "really": 1.3, "extremely": 1.6, "incredibly": 1.6,
	"absolutely": 1.5, "totally": 1.4, "super": 1.4, "so": 1.3,
	"highly": 1.4, "exceptionally": 1.6, "remarkably": 1.4,
	"quite": 1.15, "pretty": 1.1, "fairly": 0.9, "somewhat": 0.6,
	"slightly": 0.5, "a-bit": 0.6, "rather": 1.1, "too": 1.2,
	"mildly": 0.6, "moderately": 0.75, "barely": 0.4, "almost": 0.8,
}

// negators flip (and dampen) the following opinion word: "not great"
// is weaker than "awful", so the flip multiplies by −0.75 rather than
// −1 (the shifted-negation finding of Taboada et al.).
var negators = map[string]bool{
	"not": true, "never": true, "no": true, "nothing": true,
	"neither": true, "nor": true, "cannot": true, "can't": true,
	"cant": true, "don't": true, "dont": true, "didn't": true,
	"didnt": true, "doesn't": true, "doesnt": true, "isn't": true,
	"isnt": true, "wasn't": true, "wasnt": true, "won't": true,
	"wont": true, "wouldn't": true, "wouldnt": true, "aren't": true,
	"arent": true, "weren't": true, "werent": true, "hardly": true,
	"without": true, "lacks": true, "lacking": true, "lack": true,
}

const negationFlip = -0.75

// negationWindow is how many tokens a negator reaches forward.
const negationWindow = 3

// Lexicon is the unsupervised estimator. The zero value is ready to
// use and safe for concurrent use.
type Lexicon struct {
	// Table, when non-empty, replaces the built-in opinion lexicon's
	// word→polarity table (values in [-1, +1]). Intensifiers and
	// negators are structural English and stay shared. The zero value
	// keeps the built-in behavior. The map must not be mutated after
	// the Lexicon is in use.
	Table map[string]float64
}

var _ Estimator = Lexicon{}

// lexicon returns the effective word→polarity table.
func (l Lexicon) lexicon() map[string]float64 {
	if len(l.Table) > 0 {
		return l.Table
	}
	return opinionLexicon
}

// Score is a convenience for scoring raw text (tokenizes first).
func (l Lexicon) Score(sentence string) float64 {
	return l.EstimateSentence(text.Tokenize(sentence))
}

// EstimateSentence scores a tokenized sentence: each opinion word
// contributes its prior polarity, scaled by a preceding intensifier
// and flipped by a preceding negator within the negation window; the
// sentence score is the average contribution clamped to [-1, +1].
// Sentences without opinion words score 0 (neutral).
func (l Lexicon) EstimateSentence(tokens []string) float64 {
	lex := l.lexicon()
	total := 0.0
	n := 0
	for i, tok := range tokens {
		prior, ok := lex[tok]
		if !ok {
			continue
		}
		score := prior
		// Look back for an intensifier chain and a negator.
		scale := 1.0
		negated := false
		for back := 1; back <= negationWindow && i-back >= 0; back++ {
			prev := tokens[i-back]
			if back == 1 {
				if mult, ok := intensifiers[prev]; ok {
					scale = mult
					continue
				}
			}
			if negators[prev] {
				negated = true
				break
			}
			// Stop scanning past another content word.
			if _, isOpinion := lex[prev]; isOpinion {
				break
			}
			if tg := pos.TagWord(prev); tg == pos.Noun || tg == pos.Verb {
				break
			}
		}
		score *= scale
		if negated {
			score *= negationFlip
		}
		total += score
		n++
	}
	if n == 0 {
		return 0
	}
	avg := total / float64(n)
	return clamp(avg)
}

func clamp(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}

// HasOpinionWord reports whether any token carries a lexicon polarity
// (used by double propagation to seed opinion words).
func HasOpinionWord(tokens []string) bool {
	for _, t := range tokens {
		if _, ok := opinionLexicon[t]; ok {
			return true
		}
	}
	return false
}

// Polarity returns the prior polarity of a single word and whether it
// is in the opinion lexicon.
func Polarity(word string) (float64, bool) {
	v, ok := opinionLexicon[word]
	return v, ok
}

// SeedOpinionWords returns a copy of the opinion lexicon's words with
// their polarities, for seeding double propagation.
func SeedOpinionWords() map[string]float64 {
	out := make(map[string]float64, len(opinionLexicon))
	for w, v := range opinionLexicon {
		out[w] = v
	}
	return out
}
