package sentiment_test

import (
	"fmt"

	"osars/internal/sentiment"
	"osars/internal/text"
)

// Example scores review sentences with the unsupervised lexicon
// estimator, showing graded strengths, intensifiers and negation.
func Example() {
	var l sentiment.Lexicon
	for _, s := range []string{
		"The screen is decent",
		"The screen is good",
		"The screen is very good",
		"The screen is excellent",
		"The screen is not good",
		"The screen is awful",
	} {
		fmt.Printf("%+.3f  %s\n", l.Score(s), s)
	}
	// Output:
	// +0.250  The screen is decent
	// +0.500  The screen is good
	// +0.650  The screen is very good
	// +1.000  The screen is excellent
	// -0.375  The screen is not good
	// -1.000  The screen is awful
}

// ExampleTrainRidge fits the supervised estimator on star-labeled
// reviews and scores unseen text.
func ExampleTrainRidge() {
	examples := []sentiment.Example{
		{Tokens: text.Tokenize("excellent phone, love the screen"), Target: 1},
		{Tokens: text.Tokenize("great battery and great camera"), Target: 1},
		{Tokens: text.Tokenize("terrible phone, hate the screen"), Target: -1},
		{Tokens: text.Tokenize("awful battery and awful camera"), Target: -1},
	}
	r, err := sentiment.TrainRidge(examples, sentiment.RidgeOptions{Stem: true})
	if err != nil {
		panic(err)
	}
	pos := r.EstimateSentence(text.Tokenize("excellent battery"))
	neg := r.EstimateSentence(text.Tokenize("terrible camera"))
	fmt.Println("positive sentence scores above negative:", pos > neg)
	// Output: positive sentence scores above negative: true
}
