package summarize_test

import (
	"fmt"

	"osars/internal/coverage"
	"osars/internal/model"
	"osars/internal/ontology"
	"osars/internal/summarize"
)

// Example selects the 2 most representative concept-sentiment pairs of
// a small multiset with the greedy algorithm (Algorithm 2).
func Example() {
	var b ontology.Builder
	phone := b.AddConcept("phone")
	screen := b.Child(phone, "screen")
	res := b.Child(screen, "resolution")
	battery := b.Child(phone, "battery")
	ont, err := b.Build()
	if err != nil {
		panic(err)
	}

	// Three positive screen-side mentions and two negative battery
	// mentions: a good 2-summary covers one of each side. The deep
	// resolution pairs are worth more to cover (root distance 2), so
	// greedy picks a resolution pair, then a battery pair.
	P := []model.Pair{
		{Concept: screen, Sentiment: 0.8},
		{Concept: res, Sentiment: 0.7},
		{Concept: res, Sentiment: 0.9},
		{Concept: battery, Sentiment: -0.9},
		{Concept: battery, Sentiment: -0.8},
	}
	g := coverage.BuildPairs(model.Metric{Ont: ont, Epsilon: 0.5}, P)
	result := summarize.Greedy(g, 2)
	for _, idx := range result.Selected {
		p := P[idx]
		fmt.Printf("%s = %+.1f\n", ont.Name(p.Concept), p.Sentiment)
	}
	fmt.Println("cost:", result.Cost)
	// Output:
	// resolution = +0.7
	// battery = -0.9
	// cost: 1
}
