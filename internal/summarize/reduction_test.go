package summarize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"osars/internal/coverage"
)

func TestReductionPaperExampleDirection(t *testing.T) {
	// S0={0,1}, S1={1,2}, S2={2,3}: universe {0..3}, m=3, n=4.
	// {S0,S2} is a cover of size 2 → t = 3·3 + 4 − 2·2 = 9.
	inst := SetCoverInstance{Universe: 4, Sets: [][]int{{0, 1}, {1, 2}, {2, 3}}}
	r, err := NewReduction(inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Target != 9 {
		t.Fatalf("target = %v, want 9", r.Target)
	}
	g := coverage.BuildPairs(r.Metric, r.Pairs)
	opt := BruteForce(g, 2)
	if opt.Cost > r.Target {
		t.Fatalf("optimal cost %v exceeds target %v despite existing cover", opt.Cost, r.Target)
	}
	// Selecting exactly the cᵢ pairs of the cover must achieve t.
	sel := []int{r.CPair[0], r.CPair[2]}
	if got := g.CostOf(sel); got != r.Target {
		t.Fatalf("cover selection cost = %v, want target %v", got, r.Target)
	}
}

func TestReductionNoCoverDirection(t *testing.T) {
	// Disjoint singletons: no cover of size 1 for a 2-element universe.
	inst := SetCoverInstance{Universe: 2, Sets: [][]int{{0}, {1}}}
	r, err := NewReduction(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := coverage.BuildPairs(r.Metric, r.Pairs)
	opt := BruteForce(g, 1)
	if opt.Cost <= r.Target {
		t.Fatalf("cost %v ≤ target %v but no size-1 cover exists", opt.Cost, r.Target)
	}
}

func TestReductionRejectsUncoveredElement(t *testing.T) {
	inst := SetCoverInstance{Universe: 3, Sets: [][]int{{0, 1}}}
	if _, err := NewReduction(inst, 1); err == nil {
		t.Fatal("expected error for element in no set")
	}
}

func TestReductionRejectsBadK(t *testing.T) {
	inst := SetCoverInstance{Universe: 1, Sets: [][]int{{0}}}
	if _, err := NewReduction(inst, 5); err == nil {
		t.Fatal("expected error for k > m")
	}
}

func TestReductionRejectsOutOfRangeElement(t *testing.T) {
	inst := SetCoverInstance{Universe: 2, Sets: [][]int{{0, 5}}}
	if _, err := NewReduction(inst, 1); err == nil {
		t.Fatal("expected error for out-of-range element")
	}
}

func TestCoverFromSummary(t *testing.T) {
	inst := SetCoverInstance{Universe: 3, Sets: [][]int{{0, 1}, {1, 2}, {0, 2}}}
	r, err := NewReduction(inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	sel := []int{r.CPair[1], r.CPair[2], len(r.Pairs) - 1} // two c pairs + one d pair
	cover := r.CoverFromSummary(sel)
	if len(cover) != 2 || !inst.IsCover(cover) {
		t.Fatalf("CoverFromSummary = %v, want cover {1,2}", cover)
	}
}

func TestIsCoverAndHasCoverOfSize(t *testing.T) {
	inst := SetCoverInstance{Universe: 4, Sets: [][]int{{0, 1}, {2}, {3}, {2, 3}}}
	if !inst.IsCover([]int{0, 3}) {
		t.Fatal("IsCover({0,3}) = false")
	}
	if inst.IsCover([]int{0, 1}) {
		t.Fatal("IsCover({0,1}) = true")
	}
	if !inst.HasCoverOfSize(2) {
		t.Fatal("HasCoverOfSize(2) = false")
	}
	if inst.HasCoverOfSize(1) {
		t.Fatal("HasCoverOfSize(1) = true")
	}
	if inst.HasCoverOfSize(9) {
		t.Fatal("HasCoverOfSize(9) = true for k > m")
	}
}

// TestQuickTheorem1 verifies the NP-hardness reduction on random Set
// Cover instances: a size-k cover exists iff the optimal size-k
// summary of the gadget costs at most t = 3m + n − 2k (both directions
// of the Theorem 1 proof).
func TestQuickTheorem1(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(4)
		inst := SetCoverInstance{Universe: n, Sets: make([][]int, m)}
		covered := make([]bool, n)
		for i := range inst.Sets {
			for u := 0; u < n; u++ {
				if rng.Intn(2) == 0 {
					inst.Sets[i] = append(inst.Sets[i], u)
					covered[u] = true
				}
			}
		}
		// Patch any uncovered element into a random set so the gadget
		// is well-formed.
		for u, c := range covered {
			if !c {
				i := rng.Intn(m)
				inst.Sets[i] = append(inst.Sets[i], u)
			}
		}
		for k := 1; k <= m; k++ {
			r, err := NewReduction(inst, k)
			if err != nil {
				t.Logf("reduction: %v", err)
				return false
			}
			g := coverage.BuildPairs(r.Metric, r.Pairs)
			opt := BruteForce(g, k)
			hasCover := inst.HasCoverOfSize(k)
			if hasCover != (opt.Cost <= r.Target) {
				t.Logf("seed %d k %d: hasCover=%v but opt=%v target=%v", seed, k, hasCover, opt.Cost, r.Target)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
