// Package summarize implements the paper's three summary-selection
// algorithms (§4) over a precomputed coverage graph:
//
//   - Greedy (§4.4, Algorithm 2): submodular greedy with an indexed
//     max-heap and neighbor-of-neighbor key updates; Wolsey's bound
//     (Theorem 4) applies.
//   - RandomizedRounding (§4.3, Algorithm 1): solve the LP relaxation,
//     then sample k candidates without replacement from x/‖x‖₁; the
//     bound of Theorem 3 applies.
//   - ILP (§4.2): exact optimum by branch and bound on the k-medians
//     integer program.
//
// All three work at any granularity (pairs, sentences, whole reviews)
// because the granularity is fixed earlier, when the coverage graph is
// built (§4.5). BruteForce is a test oracle for tiny instances.
package summarize

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"osars/internal/coverage"
	"osars/internal/lp"
	"osars/internal/pq"
)

// Result is a computed summary: the selected candidate indices (in
// selection order for Greedy, ascending otherwise) and the exact
// Definition-2 cost of the selection.
type Result struct {
	Selected []int
	Cost     float64

	// Diagnostics, populated by the algorithm that produced the
	// result; zero when not applicable.

	// LPIters counts simplex pivots (RR and ILP).
	LPIters int
	// Nodes counts branch-and-bound nodes (ILP).
	Nodes int
	// LPObjective is the fractional lower bound (RR).
	LPObjective float64
}

func checkK(g *coverage.Graph, k int) {
	if k < 0 || k > g.NumCandidates {
		panic(fmt.Sprintf("summarize: k = %d out of range [0, %d]", k, g.NumCandidates))
	}
}

// greedyScratch is the pooled per-solve state of Greedy: the current
// pair distances, the initial key vector and the indexed heap. Slices
// grow monotonically and are reused across solves, so a server solving
// cache misses in a loop allocates only the returned Result.
type greedyScratch struct {
	curDist []int32
	keys    []float64
	heap    *pq.Max
}

var greedyPool = sync.Pool{New: func() any { return new(greedyScratch) }}

// Greedy runs Algorithm 2: start from F = {root}, repeat k times
// adding the candidate with the largest cost reduction δ(p, F), chosen
// by an indexed max-heap whose keys are updated incrementally through
// the covered pairs' coverer lists (the "neighbors of neighbors" of
// the selected candidate). The inner loops walk the graph's CSR rows
// directly (CoveredRow/CoverersRow) rather than through the Covered /
// Coverers closures, and all scratch state is pooled.
func Greedy(g *coverage.Graph, k int) *Result {
	checkK(g, k)
	n := g.NumCandidates

	s := greedyPool.Get().(*greedyScratch)
	defer greedyPool.Put(s)

	// curDist[w] = current distance from F ∪ {root} to pair w.
	if cap(s.curDist) < len(g.Pairs) {
		s.curDist = make([]int32, len(g.Pairs))
	}
	curDist := s.curDist[:len(g.Pairs)]
	copy(curDist, g.RootDist)

	// Initial keys: δ(u, {root}) = Σ_w max(0, RootDist[w] − d(u,w)).
	// With F = {root}, curDist[w] − d is never negative (d ≤ RootDist
	// by Definition 1), but keep the guard for safety with weighted
	// duplicate edges.
	if cap(s.keys) < n {
		s.keys = make([]float64, n)
	}
	keys := s.keys[:n]
	for u := 0; u < n; u++ {
		gain := 0
		pairsRow, distsRow := g.CoveredRow(u)
		for i, w := range pairsRow {
			if diff := curDist[w] - distsRow[i]; diff > 0 {
				gain += int(diff) * int(g.Weight[w])
			}
		}
		keys[u] = float64(gain)
	}
	if s.heap == nil {
		s.heap = pq.NewMax(n)
	} else {
		s.heap.Reset(n)
	}
	heap := s.heap
	heap.BuildFrom(keys)

	res := &Result{Selected: make([]int, 0, k)}
	for len(res.Selected) < k {
		u, _ := heap.PopMax()
		res.Selected = append(res.Selected, u)
		// Tighten covered pairs and adjust affected coverers' keys.
		pairsRow, distsRow := g.CoveredRow(u)
		for i, w := range pairsRow {
			d := distsRow[i]
			old := curDist[w]
			if d >= old {
				continue
			}
			weight := int(g.Weight[w])
			cands, cdists := g.CoverersRow(int(w))
			for j, q32 := range cands {
				q := int(q32)
				if !heap.Contains(q) {
					continue
				}
				dq := cdists[j]
				oldContrib := old - dq
				if oldContrib < 0 {
					oldContrib = 0
				}
				newContrib := d - dq
				if newContrib < 0 {
					newContrib = 0
				}
				if delta := int(newContrib) - int(oldContrib); delta != 0 {
					heap.Update(q, heap.Key(q)+float64(delta*weight))
				}
			}
			curDist[w] = d
		}
	}
	total := 0
	for w, d := range curDist {
		total += int(d) * int(g.Weight[w])
	}
	res.Cost = float64(total)
	return res
}

// GreedyWarm is Greedy restructured for warm, append-mostly serving:
// the same selection as the cold run, computed lazily.
//
//   - Key initialization: when the graph carries maintained initial
//     gains (Graph.InitGains, present on index-frozen graphs), the
//     O(|E|) initialization scan becomes an O(|U|) copy.
//   - Selection: lazy (CELF-style) instead of eager. Stored heap keys
//     are upper bounds — a candidate's gain only shrinks as F grows
//     (submodularity), and keys are only ever set to a formerly exact
//     gain. Pop the max, recompute its exact gain over its covered
//     row; if the gain still equals the stored key the pop is the true
//     argmax and is selected, otherwise the candidate is pushed back
//     with the refreshed key. This skips Greedy's
//     neighbor-of-neighbor key maintenance entirely — nothing ever
//     touches the backward adjacency.
//
// The result is IDENTICAL to Greedy's on every input, ties included:
// a fresh pop's key bounds every other stored key and therefore every
// other true gain, so its candidate has maximal gain; and an
// equal-gain candidate with a smaller index either sits fresh in the
// heap (the indexed heap breaks key ties by smaller index, so it pops
// first) or sits stale with a larger key (it pops even earlier,
// refreshes to the tied key, reinserts, and again wins the index
// tie-break). Equivalence is fuzzed against cold Greedy across batch-
// and index-built graphs.
//
// prev — the previous solve's selection at the same (k, granularity)
// — is compared step by step; warm reports whether it survived the
// corpus delta. A false return (nil prev, shorter prev, or a
// divergence caused by the delta) is the fallback case the store
// counts, not a different answer.
func GreedyWarm(g *coverage.Graph, k int, prev *Result) (res *Result, warm bool) {
	checkK(g, k)
	n := g.NumCandidates

	s := greedyPool.Get().(*greedyScratch)
	defer greedyPool.Put(s)

	if cap(s.curDist) < len(g.Pairs) {
		s.curDist = make([]int32, len(g.Pairs))
	}
	curDist := s.curDist[:len(g.Pairs)]
	copy(curDist, g.RootDist)

	if cap(s.keys) < n {
		s.keys = make([]float64, n)
	}
	keys := s.keys[:n]
	if gains := g.InitGains(); gains != nil {
		// Index-frozen graph: the initial keys were maintained at merge
		// time (unit weights by construction of the index).
		for u := 0; u < n; u++ {
			keys[u] = float64(gains[u])
		}
	} else {
		for u := 0; u < n; u++ {
			gain := 0
			pairsRow, distsRow := g.CoveredRow(u)
			for i, w := range pairsRow {
				if diff := curDist[w] - distsRow[i]; diff > 0 {
					gain += int(diff) * int(g.Weight[w])
				}
			}
			keys[u] = float64(gain)
		}
	}
	if s.heap == nil {
		s.heap = pq.NewMax(n)
	} else {
		s.heap.Reset(n)
	}
	heap := s.heap
	heap.BuildFrom(keys)

	warm = prev != nil && len(prev.Selected) >= k
	res = &Result{Selected: make([]int, 0, k)}
	for len(res.Selected) < k {
		u, key := heap.PopMax()
		// Exact gain of u against the current distances. Gains are
		// integers, keys are exact float64 images of integers, so the
		// freshness test is an exact comparison, not a tolerance.
		gain := 0
		pairsRow, distsRow := g.CoveredRow(u)
		for i, w := range pairsRow {
			if diff := curDist[w] - distsRow[i]; diff > 0 {
				gain += int(diff) * int(g.Weight[w])
			}
		}
		if float64(gain) != key {
			heap.Push(u, float64(gain))
			continue
		}
		if warm && prev.Selected[len(res.Selected)] != u {
			warm = false
		}
		res.Selected = append(res.Selected, u)
		for i, w := range pairsRow {
			if d := distsRow[i]; d < curDist[w] {
				curDist[w] = d
			}
		}
	}
	total := 0
	for w, d := range curDist {
		total += int(d) * int(g.Weight[w])
	}
	res.Cost = float64(total)
	return res, warm
}

// GreedyRebuild is the ablation variant of Greedy (DESIGN.md ablation
// 1): instead of incremental neighbor-of-neighbor key updates it
// recomputes every candidate's gain and rebuilds the heap after each
// selection. Same output, asymptotically slower.
func GreedyRebuild(g *coverage.Graph, k int) *Result {
	checkK(g, k)
	n := g.NumCandidates
	curDist := make([]int32, len(g.Pairs))
	copy(curDist, g.RootDist)
	selected := make([]bool, n)
	res := &Result{Selected: make([]int, 0, k)}
	for len(res.Selected) < k {
		bestU, bestGain := -1, -1.0
		for u := 0; u < n; u++ {
			if selected[u] {
				continue
			}
			gain := 0.0
			g.Covered(u, func(w, d int) bool {
				if diff := int(curDist[w]) - d; diff > 0 {
					gain += float64(diff * int(g.Weight[w]))
				}
				return true
			})
			if gain > bestGain {
				bestU, bestGain = u, gain
			}
		}
		selected[bestU] = true
		res.Selected = append(res.Selected, bestU)
		g.Covered(bestU, func(w, d int) bool {
			if int32(d) < curDist[w] {
				curDist[w] = int32(d)
			}
			return true
		})
	}
	total := 0
	for w, d := range curDist {
		total += int(d) * int(g.Weight[w])
	}
	res.Cost = float64(total)
	return res
}

// RandomizedRounding runs Algorithm 1: solve the LP relaxation of the
// k-medians program, then draw k candidates without replacement from
// the distribution q(p) = x_p / Σ x_p. The rng makes runs reproducible;
// lpOpt may be nil for defaults.
func RandomizedRounding(g *coverage.Graph, k int, rng *rand.Rand, lpOpt *lp.Options) (*Result, error) {
	checkK(g, k)
	m := lp.NewKMedianModel(g, k)
	lpRes, err := m.SolveLP(lpOpt)
	if err != nil {
		return nil, fmt.Errorf("summarize: randomized rounding: %w", err)
	}
	sel := sampleWithoutReplacement(lpRes.X, k, rng)
	sort.Ints(sel)
	return &Result{
		Selected:    sel,
		Cost:        g.CostOf(sel),
		LPIters:     lpRes.Iters,
		LPObjective: lpRes.Objective,
	}, nil
}

// sampleWithoutReplacement draws k indices from the weight vector w
// without replacement (weights of drawn indices are removed before the
// next draw), matching Algorithm 1's "sample one pair without
// replacement from q" loop.
func sampleWithoutReplacement(w []float64, k int, rng *rand.Rand) []int {
	weights := append([]float64(nil), w...)
	total := 0.0
	for i, x := range weights {
		if x < 0 {
			weights[i] = 0
			continue
		}
		total += x
	}
	out := make([]int, 0, k)
	taken := make([]bool, len(weights))
	for len(out) < k {
		if total <= 1e-12 {
			// Degenerate fractional mass (fewer than k positive
			// weights after numerical cleanup): fill deterministically
			// with the lowest untaken indices.
			for i := range weights {
				if !taken[i] {
					taken[i] = true
					out = append(out, i)
					if len(out) == k {
						break
					}
				}
			}
			break
		}
		r := rng.Float64() * total
		pick := -1
		for i, x := range weights {
			if taken[i] || x <= 0 {
				continue
			}
			r -= x
			if r <= 0 {
				pick = i
				break
			}
		}
		if pick < 0 { // float roundoff: take the last positive weight
			for i := len(weights) - 1; i >= 0; i-- {
				if !taken[i] && weights[i] > 0 {
					pick = i
					break
				}
			}
		}
		taken[pick] = true
		out = append(out, pick)
		total -= weights[pick]
		weights[pick] = 0
	}
	return out
}

// RandomizedRoundingBest is the multi-trial extension of Algorithm 1:
// the LP relaxation is solved once, the rounding step is repeated
// `trials` times, and the cheapest sampled summary is kept. The paper
// rounds once; this variant trades a little selection time for the
// variance reduction measured by BenchmarkAblationRRTrials.
func RandomizedRoundingBest(g *coverage.Graph, k, trials int, rng *rand.Rand, lpOpt *lp.Options) (*Result, error) {
	checkK(g, k)
	if trials < 1 {
		trials = 1
	}
	m := lp.NewKMedianModel(g, k)
	lpRes, err := m.SolveLP(lpOpt)
	if err != nil {
		return nil, fmt.Errorf("summarize: randomized rounding: %w", err)
	}
	best := &Result{Cost: math.Inf(1), LPIters: lpRes.Iters, LPObjective: lpRes.Objective}
	var cs coverage.CostScratch // one scratch across all trials
	for t := 0; t < trials; t++ {
		sel := sampleWithoutReplacement(lpRes.X, k, rng)
		if c := g.CostOfWith(&cs, sel); c < best.Cost {
			sort.Ints(sel)
			best.Selected = sel
			best.Cost = c
		}
	}
	return best, nil
}

// ILP computes the exact optimal summary (§4.2). It first runs Greedy
// to obtain an incumbent, which both prunes the branch-and-bound tree
// and serves as the answer when the tree proves the greedy summary
// already optimal. mipOpt may be nil for defaults.
func ILP(g *coverage.Graph, k int, mipOpt *lp.MIPOptions) (*Result, error) {
	checkK(g, k)
	inc := Greedy(g, k)
	m := lp.NewKMedianModel(g, k)
	// Nodes tying the incumbent are pruned, so nil Selected from the
	// solver means the greedy summary is optimal and we return it.
	incObj := inc.Cost
	res, err := m.SolveILP(&incObj, mipOpt)
	if err != nil {
		return nil, fmt.Errorf("summarize: ILP: %w", err)
	}
	out := &Result{LPIters: res.LPIters, Nodes: res.Nodes}
	if res.Selected == nil || res.Objective >= inc.Cost-1e-9 {
		sel := append([]int(nil), inc.Selected...)
		sort.Ints(sel)
		out.Selected = sel
		out.Cost = inc.Cost
		return out, nil
	}
	out.Selected = res.Selected
	out.Cost = g.CostOf(res.Selected)
	if math.Abs(out.Cost-res.Objective) > 1e-6 {
		return nil, fmt.Errorf("summarize: ILP objective %v disagrees with selection cost %v", res.Objective, out.Cost)
	}
	return out, nil
}

// BruteForce enumerates all size-k subsets; exponential, test oracle
// only.
func BruteForce(g *coverage.Graph, k int) *Result {
	checkK(g, k)
	n := g.NumCandidates
	sel := make([]int, k)
	best := math.Inf(1)
	var bestSel []int
	var cs coverage.CostScratch
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			if c := g.CostOfWith(&cs, sel); c < best {
				best = c
				bestSel = append(bestSel[:0], sel...)
			}
			return
		}
		for i := start; i <= n-(k-depth); i++ {
			sel[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return &Result{Selected: append([]int(nil), bestSel...), Cost: best}
}

// Algorithm names the three methods for harness configuration.
type Algorithm int

// The paper's three algorithms (§4), in the order of Figs 4-5.
const (
	AlgILP Algorithm = iota
	AlgRR
	AlgGreedy
)

func (a Algorithm) String() string {
	switch a {
	case AlgILP:
		return "ILP"
	case AlgRR:
		return "RR"
	case AlgGreedy:
		return "Greedy"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Run dispatches to the selected algorithm with default options. The
// rng is used only by AlgRR.
func Run(a Algorithm, g *coverage.Graph, k int, rng *rand.Rand) (*Result, error) {
	switch a {
	case AlgILP:
		return ILP(g, k, nil)
	case AlgRR:
		return RandomizedRounding(g, k, rng, nil)
	case AlgGreedy:
		return Greedy(g, k), nil
	default:
		return nil, fmt.Errorf("summarize: unknown algorithm %v", a)
	}
}
