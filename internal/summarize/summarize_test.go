package summarize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"osars/internal/coverage"
	"osars/internal/model"
	"osars/internal/ontology"
)

// randomGraph builds a random pairs-granularity coverage instance.
func randomGraph(rng *rand.Rand, maxConcepts, maxPairs int) *coverage.Graph {
	var b ontology.Builder
	n := 2 + rng.Intn(maxConcepts-1)
	ids := make([]ontology.ConceptID, n)
	for i := 0; i < n; i++ {
		ids[i] = b.AddConcept("c" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)))
		if i > 0 {
			b.AddEdge(ids[rng.Intn(i)], ids[i])
			if i >= 2 && rng.Intn(4) == 0 {
				b.AddEdge(ids[rng.Intn(i)], ids[i])
			}
		}
	}
	o, err := b.Build()
	if err != nil {
		panic(err)
	}
	P := make([]model.Pair, 1+rng.Intn(maxPairs))
	for i := range P {
		P[i] = model.Pair{Concept: ids[rng.Intn(n)], Sentiment: math.Round(rng.Float64()*20-10) / 10}
	}
	return coverage.BuildPairs(model.Metric{Ont: o, Epsilon: 0.5}, P)
}

// randomGroupGraph builds a random sentences-style instance.
func randomGroupGraph(rng *rand.Rand) *coverage.Graph {
	g := randomGraph(rng, 12, 24)
	P := g.Pairs
	var groups [][]model.Pair
	for i := 0; i < len(P); {
		j := i + 1 + rng.Intn(3)
		if j > len(P) {
			j = len(P)
		}
		groups = append(groups, P[i:j])
		i = j
	}
	return coverage.BuildGroups(g.Metric, groups, P)
}

func TestGreedyPicksHighestGainFirst(t *testing.T) {
	// root -> a -> b; pairs: (a,.5) covers (b,.6) and itself; picking
	// (a,.5) first saves 1 (b) + 1 (a itself) = 2 vs (b,.6)'s 1.
	var bld ontology.Builder
	root := bld.AddConcept("root")
	a := bld.Child(root, "a")
	bc := bld.Child(a, "b")
	o, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	P := []model.Pair{{Concept: a, Sentiment: 0.5}, {Concept: bc, Sentiment: 0.6}}
	g := coverage.BuildPairs(model.Metric{Ont: o, Epsilon: 0.5}, P)
	res := Greedy(g, 1)
	if len(res.Selected) != 1 || res.Selected[0] != 0 {
		t.Fatalf("Greedy selected %v, want [0]", res.Selected)
	}
	// Cost: a covered at 0, b covered at 1 → 1.
	if res.Cost != 1 {
		t.Fatalf("Greedy cost = %v, want 1", res.Cost)
	}
}

func TestGreedyCostMatchesGraphCost(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng, 14, 20)
		for _, k := range []int{0, 1, 3} {
			if k > g.NumCandidates {
				continue
			}
			res := Greedy(g, k)
			if len(res.Selected) != k {
				t.Fatalf("trial %d: selected %d, want %d", trial, len(res.Selected), k)
			}
			if got := g.CostOf(res.Selected); got != res.Cost {
				t.Fatalf("trial %d k %d: reported cost %v, recomputed %v", trial, k, res.Cost, got)
			}
		}
	}
}

// Property: the incremental-heap greedy and the rebuild-everything
// greedy report identical costs (selections may differ only on exact
// gain ties, but tie-breaking is by candidate id in both).
func TestQuickGreedyMatchesRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 12, 18)
		k := rng.Intn(g.NumCandidates + 1)
		a := Greedy(g, k)
		b := GreedyRebuild(g, k)
		if a.Cost != b.Cost {
			t.Logf("cost mismatch: %v vs %v (k=%d)", a.Cost, b.Cost, k)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestILPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 10, 9)
		for k := 0; k <= 3 && k <= g.NumCandidates; k++ {
			ilp, err := ILP(g, k, nil)
			if err != nil {
				t.Fatalf("trial %d k %d: %v", trial, k, err)
			}
			bf := BruteForce(g, k)
			if math.Abs(ilp.Cost-bf.Cost) > 1e-9 {
				t.Fatalf("trial %d k %d: ILP %v, brute force %v", trial, k, ilp.Cost, bf.Cost)
			}
			if len(ilp.Selected) != k {
				t.Fatalf("trial %d k %d: ILP selected %d", trial, k, len(ilp.Selected))
			}
		}
	}
}

func TestILPOnGroupGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		g := randomGroupGraph(rng)
		k := 1 + rng.Intn(2)
		if k > g.NumCandidates {
			k = g.NumCandidates
		}
		ilp, err := ILP(g, k, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bf := BruteForce(g, k)
		if math.Abs(ilp.Cost-bf.Cost) > 1e-9 {
			t.Fatalf("trial %d: ILP %v, brute force %v", trial, ilp.Cost, bf.Cost)
		}
	}
}

func TestGreedyNeverBeatsILPAndStaysClose(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 12, 14)
		k := 1 + rng.Intn(3)
		if k > g.NumCandidates {
			k = g.NumCandidates
		}
		greedy := Greedy(g, k)
		opt := BruteForce(g, k)
		if greedy.Cost < opt.Cost-1e-9 {
			t.Fatalf("trial %d: greedy %v beat optimal %v", trial, greedy.Cost, opt.Cost)
		}
	}
}

func TestRandomizedRoundingValidAndReproducible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 12, 16)
	k := 2
	if k > g.NumCandidates {
		k = g.NumCandidates
	}
	r1, err := RandomizedRounding(g, k, rand.New(rand.NewSource(99)), nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RandomizedRounding(g, k, rand.New(rand.NewSource(99)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Selected) != k {
		t.Fatalf("RR selected %d, want %d", len(r1.Selected), k)
	}
	for i := range r1.Selected {
		if r1.Selected[i] != r2.Selected[i] {
			t.Fatalf("RR not reproducible: %v vs %v", r1.Selected, r2.Selected)
		}
	}
	seen := map[int]bool{}
	for _, u := range r1.Selected {
		if seen[u] {
			t.Fatalf("RR selected %d twice", u)
		}
		seen[u] = true
		if u < 0 || u >= g.NumCandidates {
			t.Fatalf("RR selected out-of-range %d", u)
		}
	}
	// LP objective is a lower bound on the realized cost.
	if r1.Cost < r1.LPObjective-1e-6 {
		t.Fatalf("RR cost %v below LP bound %v", r1.Cost, r1.LPObjective)
	}
}

func TestRandomizedRoundingNearOptimalOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomGraph(rng, 14, 22)
	k := 3
	if k > g.NumCandidates {
		k = g.NumCandidates
	}
	opt := BruteForce(g, k)
	sum := 0.0
	const runs = 30
	for i := 0; i < runs; i++ {
		r, err := RandomizedRounding(g, k, rand.New(rand.NewSource(int64(i))), nil)
		if err != nil {
			t.Fatal(err)
		}
		sum += r.Cost
	}
	avg := sum / runs
	// The paper reports RR within 1-2% of optimal on its instances;
	// on tiny random instances we allow a loose factor but it must be
	// in the right ballpark (and never below optimal).
	if avg < opt.Cost-1e-9 {
		t.Fatalf("average RR cost %v below optimum %v", avg, opt.Cost)
	}
	if opt.Cost > 0 && avg > 3*opt.Cost+3 {
		t.Fatalf("average RR cost %v too far above optimum %v", avg, opt.Cost)
	}
}

func TestSampleWithoutReplacementDegenerateWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Only 1 positive weight but k = 3: deterministic fill must kick in.
	got := sampleWithoutReplacement([]float64{0, 1, 0, 0}, 3, rng)
	if len(got) != 3 {
		t.Fatalf("sampled %d, want 3", len(got))
	}
	seen := map[int]bool{}
	for _, i := range got {
		if seen[i] {
			t.Fatalf("duplicate sample %d in %v", i, got)
		}
		seen[i] = true
	}
	if !seen[1] {
		t.Fatalf("the one positive-weight index was not sampled: %v", got)
	}
}

func TestRunDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 10, 12)
	k := 2
	if k > g.NumCandidates {
		k = g.NumCandidates
	}
	for _, a := range []Algorithm{AlgILP, AlgRR, AlgGreedy} {
		res, err := Run(a, g, k, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if len(res.Selected) != k {
			t.Fatalf("%v: selected %d, want %d", a, len(res.Selected), k)
		}
	}
	if _, err := Run(Algorithm(42), g, k, nil); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAlgorithmString(t *testing.T) {
	if AlgILP.String() != "ILP" || AlgRR.String() != "RR" || AlgGreedy.String() != "Greedy" {
		t.Fatal("algorithm names wrong")
	}
}

func TestCheckKPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 6, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k out of range")
		}
	}()
	Greedy(g, g.NumCandidates+1)
}

func TestRandomizedRoundingBestNeverWorseThanSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 14, 24)
		k := 2
		if k > g.NumCandidates {
			k = g.NumCandidates
		}
		single, err := RandomizedRounding(g, k, rand.New(rand.NewSource(int64(trial))), nil)
		if err != nil {
			t.Fatal(err)
		}
		multi, err := RandomizedRoundingBest(g, k, 8, rand.New(rand.NewSource(int64(trial))), nil)
		if err != nil {
			t.Fatal(err)
		}
		// The multi-trial variant's first sample equals the single run
		// (same rng stream), so best-of-8 can only improve on it.
		if multi.Cost > single.Cost+1e-9 {
			t.Fatalf("trial %d: best-of-8 cost %v worse than single %v", trial, multi.Cost, single.Cost)
		}
		if len(multi.Selected) != k {
			t.Fatalf("trial %d: selected %v", trial, multi.Selected)
		}
		// Never beats the optimum.
		if opt := BruteForce(g, k); multi.Cost < opt.Cost-1e-9 {
			t.Fatalf("trial %d: RR-best %v below optimum %v", trial, multi.Cost, opt.Cost)
		}
	}
}

func TestRandomizedRoundingBestClampsTrials(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 8, 8)
	res, err := RandomizedRoundingBest(g, 1, 0, rand.New(rand.NewSource(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 1 {
		t.Fatalf("selected %v", res.Selected)
	}
}

// TestWeightedGraphMatchesExpandedMultiset: greedy and ILP on a
// quantized (weighted) graph must report the same optimal costs as on
// the expanded multiset graph.
func TestWeightedGraphMatchesExpandedMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		full := randomGraph(rng, 10, 16)
		q, _ := coverage.BuildPairsQuantized(full.Metric, full.Pairs, 0.1)
		k := 2
		if k > q.NumCandidates {
			k = q.NumCandidates
		}
		// ILP optima agree (the quantized instance has the same optimal
		// cost because sentiments are already on the 0.1 grid and any
		// multiset selection maps to a unique-pair selection of equal
		// cost and vice versa).
		fullOpt, err := ILP(full, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		qOpt, err := ILP(q, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fullOpt.Cost-qOpt.Cost) > 1e-9 {
			t.Fatalf("trial %d: multiset ILP %v, weighted ILP %v", trial, fullOpt.Cost, qOpt.Cost)
		}
		// Greedy on the weighted graph is still a valid upper bound and
		// its reported cost matches CostOf.
		gr := Greedy(q, k)
		if got := q.CostOf(gr.Selected); got != gr.Cost {
			t.Fatalf("trial %d: weighted greedy cost %v, recomputed %v", trial, gr.Cost, got)
		}
		if gr.Cost < qOpt.Cost-1e-9 {
			t.Fatalf("trial %d: weighted greedy %v beat optimum %v", trial, gr.Cost, qOpt.Cost)
		}
	}
}

// quantize is a test helper building the weighted variant of a graph.
func quantize(g *coverage.Graph) (*coverage.Graph, []int) {
	return coverage.BuildPairsQuantized(g.Metric, g.Pairs, 0.1)
}

// TestQuickTheorem4GreedyBound verifies Wolsey's guarantee as the
// paper states it (Theorem 4): the size-k greedy summary costs at most
// opt_{k'}(P) where k' = ⌊k / H(Δ·n)⌋, H the harmonic number and Δ the
// maximum ontology depth. (The bound is loose — k' is usually much
// smaller than k — but it must never be violated.)
func TestQuickTheorem4GreedyBound(t *testing.T) {
	harmonic := func(n int) float64 {
		h := 0.0
		for i := 1; i <= n; i++ {
			h += 1 / float64(i)
		}
		return h
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 10, 10)
		n := len(g.Pairs)
		delta := g.Metric.Ont.MaxDepth()
		if delta < 1 {
			delta = 1
		}
		for k := 1; k <= 6 && k <= g.NumCandidates; k++ {
			kPrime := int(math.Floor(float64(k) / harmonic(delta*n)))
			if kPrime < 0 {
				kPrime = 0
			}
			if kPrime > g.NumCandidates {
				kPrime = g.NumCandidates
			}
			greedy := Greedy(g, k)
			optKPrime := BruteForce(g, kPrime)
			if greedy.Cost > optKPrime.Cost+1e-9 {
				t.Logf("seed %d k %d k' %d: greedy %v > opt_{k'} %v",
					seed, k, kPrime, greedy.Cost, optKPrime.Cost)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
