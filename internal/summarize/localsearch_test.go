package summarize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLocalSearchNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 14, 24)
		k := 1 + rng.Intn(4)
		if k > g.NumCandidates {
			k = g.NumCandidates
		}
		greedy := Greedy(g, k)
		ls := LocalSearch(g, k, nil)
		if ls.Cost > greedy.Cost+1e-9 {
			t.Fatalf("trial %d: local search %v worse than greedy %v", trial, ls.Cost, greedy.Cost)
		}
		if len(ls.Selected) != k {
			t.Fatalf("trial %d: selected %v", trial, ls.Selected)
		}
		if got := g.CostOf(ls.Selected); math.Abs(got-ls.Cost) > 1e-9 {
			t.Fatalf("trial %d: reported %v, recomputed %v", trial, ls.Cost, got)
		}
	}
}

func TestLocalSearchNeverBeatsOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 10, 10)
		k := 1 + rng.Intn(3)
		if k > g.NumCandidates {
			k = g.NumCandidates
		}
		ls := LocalSearch(g, k, nil)
		opt := BruteForce(g, k)
		if ls.Cost < opt.Cost-1e-9 {
			t.Fatalf("trial %d: local search %v below optimum %v", trial, ls.Cost, opt.Cost)
		}
	}
}

// Property: the result is a genuine 1-swap local optimum — no single
// swap improves the cost.
func TestQuickLocalSearchIsLocalOptimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 10, 12)
		k := 1 + rng.Intn(3)
		if k > g.NumCandidates {
			k = g.NumCandidates
		}
		res := LocalSearch(g, k, nil)
		inSel := make(map[int]bool, k)
		for _, u := range res.Selected {
			inSel[u] = true
		}
		for _, u := range res.Selected {
			for v := 0; v < g.NumCandidates; v++ {
				if inSel[v] {
					continue
				}
				swapped := make([]int, 0, k)
				for _, s := range res.Selected {
					if s != u {
						swapped = append(swapped, s)
					}
				}
				swapped = append(swapped, v)
				if g.CostOf(swapped) < res.Cost-1e-6 {
					t.Logf("seed %d: swap (%d→%d) improves %v to %v", seed, u, v, res.Cost, g.CostOf(swapped))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalSearchKZero(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 8, 8)
	res := LocalSearch(g, 0, nil)
	if len(res.Selected) != 0 || res.Cost != g.EmptyCost() {
		t.Fatalf("k=0 result = %+v", res)
	}
}

func TestLocalSearchOnWeightedGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	full := randomGraph(rng, 12, 20)
	q, _ := quantize(full)
	k := 2
	if k > q.NumCandidates {
		k = q.NumCandidates
	}
	res := LocalSearch(q, k, nil)
	if got := q.CostOf(res.Selected); math.Abs(got-res.Cost) > 1e-9 {
		t.Fatalf("weighted local search cost %v, recomputed %v", res.Cost, got)
	}
}
